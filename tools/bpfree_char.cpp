//===- tools/bpfree_char.cpp - Branch predictability observatory CLI ------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one suite workload, captures its branch trace, and characterizes
/// every branch site: entropy and history-conditioned entropy, H2P
/// classification, and the predictor-by-class misprediction table — the
/// dynamic Table-2 analogue over predictability classes instead of
/// loop/non-loop buckets.
///
///   $ bpfree_char --workload treesort
///   $ bpfree_char --workload hashbits --dataset 1 --top 20
///   $ bpfree_char --workload fsmdispatch --json fsm.char.json
///   $ bpfree_char --validate fsm.char.json
///
/// --hard-bits / --moderate-bits / --min-execs / --hard-share override
/// the classification thresholds. --validate re-reads a previously
/// written bpfree-char-v1 document and runs the full schema check
/// (class-count conservation, per-site class consistency) without
/// executing anything — the CI gate.
///
//===----------------------------------------------------------------------===//

#include "ipbc/Characterize.h"
#include "workloads/Driver.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace bpfree;

namespace {

int usage(const char *Prog) {
  std::cerr << "usage: " << Prog
            << " --workload NAME [--dataset I] [--top N] [--json FILE]\n"
               "       "
            << Prog
            << " [--min-execs N] [--hard-bits X] [--moderate-bits X]"
               " [--hard-share X]\n       "
            << Prog << " --validate FILE\n\nworkloads:";
  for (const Workload &W : workloadSuite())
    std::cerr << " " << W.Name;
  std::cerr << "\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  const char *WorkloadName = nullptr;
  const char *JsonPath = nullptr;
  const char *ValidatePath = nullptr;
  size_t DatasetIdx = 0;
  size_t TopN = 10;
  CharThresholds Thresholds;

  for (int I = 1; I < argc; ++I) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::cerr << Flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--workload") == 0)
      WorkloadName = needValue("--workload");
    else if (std::strcmp(argv[I], "--dataset") == 0)
      DatasetIdx = std::strtoul(needValue("--dataset"), nullptr, 10);
    else if (std::strcmp(argv[I], "--top") == 0)
      TopN = std::strtoul(needValue("--top"), nullptr, 10);
    else if (std::strcmp(argv[I], "--json") == 0)
      JsonPath = needValue("--json");
    else if (std::strcmp(argv[I], "--validate") == 0)
      ValidatePath = needValue("--validate");
    else if (std::strcmp(argv[I], "--min-execs") == 0)
      Thresholds.MinExecs = std::strtoull(needValue("--min-execs"), nullptr, 10);
    else if (std::strcmp(argv[I], "--hard-bits") == 0)
      Thresholds.HardBits = std::strtod(needValue("--hard-bits"), nullptr);
    else if (std::strcmp(argv[I], "--moderate-bits") == 0)
      Thresholds.ModerateBits =
          std::strtod(needValue("--moderate-bits"), nullptr);
    else if (std::strcmp(argv[I], "--hard-share") == 0)
      Thresholds.HardShare = std::strtod(needValue("--hard-share"), nullptr);
    else
      return usage(argv[0]);
  }

  if (ValidatePath) {
    Expected<CharReport> R = readCharJson(ValidatePath);
    if (!R) {
      std::cerr << "validation failed: " << R.error().render() << "\n";
      return 1;
    }
    std::cout << "ok: '" << ValidatePath << "' is a valid bpfree-char-v1"
              << " document (" << R->NumSites << " sites, hard share "
              << 100.0 * R->hardShare() << "%, "
              << (R->h2p() ? "H2P" : "regular") << ")\n";
    return 0;
  }

  if (!WorkloadName)
    return usage(argv[0]);
  const Workload *W = findWorkload(WorkloadName);
  if (!W) {
    std::cerr << "unknown workload '" << WorkloadName << "'\n";
    return 2;
  }
  if (DatasetIdx >= W->Datasets.size()) {
    std::cerr << "dataset index out of range (have " << W->Datasets.size()
              << ")\n";
    return 2;
  }

  // One capture interpretation, no edge profile: characterization reads
  // the trace, not the profile.
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  Expected<std::unique_ptr<WorkloadRun>> RunOrErr =
      runWorkload(*W, DatasetIdx, {}, RO);
  if (!RunOrErr) {
    std::cerr << "run failed: " << RunOrErr.error().renderWithKind() << "\n";
    return 1;
  }
  std::unique_ptr<WorkloadRun> Run = RunOrErr.takeValue();

  CharOptions CO;
  CO.Thresholds = Thresholds;
  CO.Workload = W->Name;
  CO.Dataset = Run->dataset().Name;
  Expected<CharReport> R = characterizeTrace(*Run->Ctx, *Run->Trace, CO);
  if (!R) {
    std::cerr << "characterize failed: " << R.error().render() << "\n";
    return 1;
  }
  std::cout << renderCharReport(*R, TopN);
  if (JsonPath) {
    if (!writeCharJson(*R, JsonPath)) {
      std::cerr << "cannot write '" << JsonPath << "'\n";
      return 1;
    }
    std::cout << "\nwrote " << JsonPath << "\n";
  }
  return 0;
}
