//===- tools/bpfree_explain.cpp - Prediction provenance CLI ---------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one suite workload, captures its branch trace, and explains the
/// combined predictor over it: the dynamic per-heuristic accuracy table
/// (the run-time analogue of the paper's Table 3), the misprediction
/// hotspot list with source locations, and optionally the
/// bpfree-explain-v1 JSON document.
///
///   $ bpfree_explain --workload treesort
///   $ bpfree_explain --workload circuit --dataset 1 --top 20
///   $ bpfree_explain --workload lisp --json lisp.explain.json
///   $ bpfree_explain --validate lisp.explain.json
///
/// --validate re-reads a previously written document and runs the full
/// schema check (required keys, non-negative counts, bucket-sum
/// conservation) without executing anything — the CI gate.
///
//===----------------------------------------------------------------------===//

#include "ipbc/Attribution.h"
#include "ipbc/Characterize.h"
#include "workloads/Driver.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace bpfree;

namespace {

int usage(const char *Prog) {
  std::cerr << "usage: " << Prog
            << " --workload NAME [--dataset I] [--top N] [--json FILE]\n"
               "       [--characterize[=N]] [--characterize-json FILE]\n"
               "       "
            << Prog << " --validate FILE\n\nworkloads:";
  for (const Workload &W : workloadSuite())
    std::cerr << " " << W.Name;
  std::cerr << "\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  const char *WorkloadName = nullptr;
  const char *JsonPath = nullptr;
  const char *ValidatePath = nullptr;
  const char *CharJsonPath = nullptr;
  bool Characterize = false;
  size_t CharTopN = 10;
  size_t DatasetIdx = 0;
  size_t TopN = 10;

  for (int I = 1; I < argc; ++I) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::cerr << Flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--workload") == 0)
      WorkloadName = needValue("--workload");
    else if (std::strcmp(argv[I], "--dataset") == 0)
      DatasetIdx = std::strtoul(needValue("--dataset"), nullptr, 10);
    else if (std::strcmp(argv[I], "--top") == 0)
      TopN = std::strtoul(needValue("--top"), nullptr, 10);
    else if (std::strcmp(argv[I], "--json") == 0)
      JsonPath = needValue("--json");
    else if (std::strcmp(argv[I], "--validate") == 0)
      ValidatePath = needValue("--validate");
    else if (std::strcmp(argv[I], "--characterize") == 0)
      Characterize = true;
    else if (std::strncmp(argv[I], "--characterize=", 15) == 0) {
      Characterize = true;
      CharTopN = std::strtoul(argv[I] + 15, nullptr, 10);
    } else if (std::strcmp(argv[I], "--characterize-json") == 0) {
      Characterize = true;
      CharJsonPath = needValue("--characterize-json");
    } else
      return usage(argv[0]);
  }

  if (ValidatePath) {
    Expected<ExplainReport> R = readExplainJson(ValidatePath);
    if (!R) {
      std::cerr << "validation failed: " << R.error().render() << "\n";
      return 1;
    }
    std::cout << "ok: '" << ValidatePath << "' is a valid bpfree-explain-v1"
              << " document (" << R->Mispredicts << " mispredicts across "
              << R->Hotspots.size() << " hotspot entries)\n";
    return 0;
  }

  if (!WorkloadName)
    return usage(argv[0]);
  const Workload *W = findWorkload(WorkloadName);
  if (!W) {
    std::cerr << "unknown workload '" << WorkloadName << "'\n";
    return 2;
  }
  if (DatasetIdx >= W->Datasets.size()) {
    std::cerr << "dataset index out of range (have " << W->Datasets.size()
              << ")\n";
    return 2;
  }

  // One capture interpretation, no edge profile: attribution joins the
  // trace against statically captured provenance, so the profile would
  // be dead weight.
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  Expected<std::unique_ptr<WorkloadRun>> RunOrErr =
      runWorkload(*W, DatasetIdx, {}, RO);
  if (!RunOrErr) {
    std::cerr << "run failed: " << RunOrErr.error().renderWithKind() << "\n";
    return 1;
  }
  std::unique_ptr<WorkloadRun> Run = RunOrErr.takeValue();

  ExplainOptions EO;
  EO.Workload = W->Name;
  EO.Dataset = Run->dataset().Name;
  Expected<ExplainReport> R = explainTrace(*Run->Ctx, *Run->Trace, EO);
  if (!R) {
    std::cerr << "explain failed: " << R.error().render() << "\n";
    return 1;
  }
  std::cout << renderExplainReport(*R, TopN);
  if (JsonPath) {
    if (!writeExplainJson(*R, JsonPath)) {
      std::cerr << "cannot write '" << JsonPath << "'\n";
      return 1;
    }
    std::cout << "\nwrote " << JsonPath << "\n";
  }

  // Under --characterize, the same captured trace also feeds the
  // predictability observatory — one capture, both reports.
  if (Characterize) {
    CharOptions CO;
    CO.Workload = W->Name;
    CO.Dataset = Run->dataset().Name;
    Expected<CharReport> CR = characterizeTrace(*Run->Ctx, *Run->Trace, CO);
    if (!CR) {
      std::cerr << "characterize failed: " << CR.error().render() << "\n";
      return 1;
    }
    std::cout << "\n" << renderCharReport(*CR, CharTopN);
    if (CharJsonPath) {
      if (!writeCharJson(*CR, CharJsonPath)) {
        std::cerr << "cannot write '" << CharJsonPath << "'\n";
        return 1;
      }
      std::cout << "\nwrote " << CharJsonPath << "\n";
    }
  }
  return 0;
}
