//===- tools/bpfree_trace.cpp - Durable trace store CLI -------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line surface over the bpfree-trace-v1 store: capture a suite
/// workload's branch trace to disk, inspect and verify a store, replay
/// one against the perfect predictor, and deterministically damage one
/// for recovery drills.
///
///   $ bpfree_trace capture --workload treesort -o treesort.trace
///   $ bpfree_trace info treesort.trace
///   $ bpfree_trace verify treesort.trace --workload treesort
///   $ bpfree_trace replay treesort.trace --workload treesort
///   $ bpfree_trace replay treesort.trace --dynamic panel
///   $ bpfree_trace corrupt treesort.trace --corrupt-byte 64:0x01
///
/// verify's exit status is the CI contract: 0 for a complete store (and
/// a matching module when --workload is given), 3 for a damaged store
/// that degraded to a recovered prefix, 1 for a file the reader rejects
/// outright, 2 for usage errors. corrupt exists so chaos scripts can
/// flip exactly one byte (or shear the tail) and assert the reader's
/// verdict instead of hoping dd got the offset right.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/DynamicReplay.h"
#include "ipbc/TraceReplay.h"
#include "predict/DynamicPredictors.h"
#include "vm/TraceStore.h"
#include "workloads/Driver.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <unistd.h>

using namespace bpfree;

namespace {

int usage(const char *Prog) {
  std::cerr
      << "usage: " << Prog
      << " capture --workload NAME -o FILE [--dataset I] [--max-bytes N]\n"
         "                        [--spill] [--fail-write-after N]\n"
         "                        [--truncate-at-close N] [--fault-seed S]\n"
         "       "
      << Prog
      << " info FILE\n"
         "       "
      << Prog
      << " verify FILE [--workload NAME] [--flip-bits K] [--fault-seed S]\n"
         "       "
      << Prog
      << " replay FILE --workload NAME [--dataset I] [--jobs N]\n"
         "       "
      << Prog
      << " replay FILE --dynamic SPEC [--workload NAME] [--jobs N]\n"
         "         SPEC: '+'-separated dynamic predictors, or 'panel' for\n"
         "         the standard zoo — bimodal[:N|:site], gshare[:W[,L2]],\n"
         "         gag:W, gap:W,L2, pag:L1,W, pap:L1,W,L2|pap:site,W,\n"
         "         2lev:L1,W,L2, tournament[:META]\n"
         "       "
      << Prog << " corrupt FILE (--corrupt-byte OFF[:XOR] | --truncate-to N)\n";
  return 2;
}

/// Compiles suite workload \p Name; exits with a diagnostic when the
/// name is unknown or the (known-good) source fails to compile.
std::unique_ptr<ir::Module> compileWorkloadOrExit(const char *Name) {
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::cerr << "unknown workload '" << Name << "'\n";
    std::exit(2);
  }
  Expected<std::unique_ptr<ir::Module>> M = minic::compile(W->Source);
  if (!M) {
    std::cerr << "compile failed: " << M.error().render() << "\n";
    std::exit(1);
  }
  return M.takeValue();
}

void printStats(const TraceStoreReader &R) {
  const TraceStoreStats &S = R.stats();
  std::printf("store:          %s\n", R.path().c_str());
  std::printf("module hash:    %016" PRIx64 "\n", R.moduleHash());
  std::printf("flat blocks:    %" PRIu32 "\n", R.numBlocks());
  std::printf("chunks:         %" PRIu64 " valid, %" PRIu64
              " corrupt, %" PRIu64 " dropped\n",
              S.ValidChunks, S.CorruptChunks, S.DroppedChunks);
  std::printf("events:         %" PRIu64 " (%" PRIu64 " words)\n",
              S.RecoveredEvents, S.RecoveredWords);
  std::printf("total instrs:   %" PRIu64 "\n", R.totalInstrs());
  std::printf("footer:         %s\n", S.FooterValid ? "valid" : "missing");
  std::printf("status:         %s\n",
              R.complete() ? "complete"
                           : (S.Recovered ? "recovered prefix"
                                          : "incomplete"));
  if (!S.Detail.empty())
    std::printf("damage:         %s\n", S.Detail.c_str());
}

int runCapture(int argc, char **argv) {
  const char *WorkloadName = nullptr;
  const char *OutPath = nullptr;
  size_t DatasetIdx = 0;
  uint64_t MaxBytes = 0;
  bool Spill = false;
  IoFaultPlan Faults;
  for (int I = 2; I < argc; ++I) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::cerr << Flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--workload") == 0)
      WorkloadName = needValue("--workload");
    else if (std::strcmp(argv[I], "-o") == 0)
      OutPath = needValue("-o");
    else if (std::strcmp(argv[I], "--dataset") == 0)
      DatasetIdx = std::strtoul(needValue("--dataset"), nullptr, 10);
    else if (std::strcmp(argv[I], "--max-bytes") == 0)
      MaxBytes = std::strtoull(needValue("--max-bytes"), nullptr, 10);
    else if (std::strcmp(argv[I], "--spill") == 0)
      Spill = true;
    else if (std::strcmp(argv[I], "--fail-write-after") == 0)
      Faults.FailWriteAfterBytes =
          std::strtoull(needValue("--fail-write-after"), nullptr, 10);
    else if (std::strcmp(argv[I], "--truncate-at-close") == 0)
      Faults.TruncateAtClose =
          std::strtoull(needValue("--truncate-at-close"), nullptr, 10);
    else if (std::strcmp(argv[I], "--fault-seed") == 0)
      Faults.Seed = std::strtoull(needValue("--fault-seed"), nullptr, 10);
    else
      return usage(argv[0]);
  }
  if (!WorkloadName || !OutPath)
    return usage(argv[0]);
  const Workload *W = findWorkload(WorkloadName);
  if (!W) {
    std::cerr << "unknown workload '" << WorkloadName << "'\n";
    return 2;
  }

  // One capture interpretation, no edge profile: the store carries
  // everything replay needs (perfect directions included).
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  RO.TraceMaxBytes = MaxBytes;
  // Spill mode streams chunks to the store during the run (flat memory);
  // otherwise the trace is captured resident and persisted afterwards,
  // which is where the deterministic write faults can be armed.
  if (Spill)
    RO.TraceSpillPath = OutPath;
  Expected<std::unique_ptr<WorkloadRun>> RunOrErr =
      runWorkload(*W, DatasetIdx, {}, RO);
  if (!RunOrErr) {
    std::cerr << "run failed: " << RunOrErr.error().renderWithKind() << "\n";
    return 1;
  }
  std::unique_ptr<WorkloadRun> Run = RunOrErr.takeValue();
  for (const std::string &Warning : Run->Warnings)
    std::cerr << "warning: " << Warning << "\n";
  if (Spill) {
    if (Run->TraceFile.empty()) {
      std::cerr << "capture failed: the spill store was not sealed\n";
      return 1;
    }
  } else if (std::optional<Diag> D =
                 writeTraceFile(*Run->Trace, OutPath, Faults)) {
    std::cerr << "write failed: " << D->renderWithKind() << "\n";
    return 1;
  }
  std::printf("captured %" PRIu64 " events (%" PRIu64
              " instrs) from '%s' into '%s'\n",
              Run->Trace->numEvents(), Run->Trace->totalInstrs(),
              W->Name.c_str(), OutPath);
  return 0;
}

int runInfoOrVerify(int argc, char **argv, bool Verify) {
  const char *Path = nullptr;
  const char *WorkloadName = nullptr;
  IoFaultPlan Faults;
  for (int I = 2; I < argc; ++I) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::cerr << Flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--workload") == 0)
      WorkloadName = needValue("--workload");
    else if (std::strcmp(argv[I], "--flip-bits") == 0)
      Faults.FlipBitsOnRead = static_cast<uint32_t>(
          std::strtoul(needValue("--flip-bits"), nullptr, 10));
    else if (std::strcmp(argv[I], "--fault-seed") == 0)
      Faults.Seed = std::strtoull(needValue("--fault-seed"), nullptr, 10);
    else if (argv[I][0] != '-' && !Path)
      Path = argv[I];
    else
      return usage(argv[0]);
  }
  if (!Path)
    return usage(argv[0]);

  TraceStoreReader R;
  if (std::optional<Diag> D = R.open(Path, Faults)) {
    std::cerr << "open failed: " << D->renderWithKind() << "\n";
    return 1;
  }
  printStats(R);
  if (!Verify)
    return 0;
  if (WorkloadName) {
    std::unique_ptr<ir::Module> M = compileWorkloadOrExit(WorkloadName);
    if (std::optional<Diag> D = R.requireModule(*M)) {
      std::cerr << "module check failed: " << D->renderWithKind() << "\n";
      return 3;
    }
    std::printf("module:         matches workload '%s'\n", WorkloadName);
  }
  return R.complete() ? 0 : 3;
}

int runReplay(int argc, char **argv) {
  const char *Path = nullptr;
  const char *WorkloadName = nullptr;
  std::string DynamicSpec;
  unsigned Jobs = 0;
  for (int I = 2; I < argc; ++I) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::cerr << Flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--workload") == 0)
      WorkloadName = needValue("--workload");
    else if (std::strcmp(argv[I], "--dynamic") == 0)
      DynamicSpec = needValue("--dynamic");
    else if (std::strncmp(argv[I], "--dynamic=", 10) == 0)
      DynamicSpec = argv[I] + 10;
    else if (std::strcmp(argv[I], "--jobs") == 0)
      Jobs = static_cast<unsigned>(
          std::strtoul(needValue("--jobs"), nullptr, 10));
    else if (std::strcmp(argv[I], "--dataset") == 0)
      needValue("--dataset"); // accepted for symmetry; module is dataset-free
    else if (argv[I][0] != '-' && !Path)
      Path = argv[I];
    else
      return usage(argv[0]);
  }
  // The perfect-predictor replay needs the module for direction lookup;
  // dynamic replay learns directions from the event stream itself, so
  // --workload is optional there (when given it still gates on the
  // store/module hash match).
  if (!Path || (!WorkloadName && DynamicSpec.empty()))
    return usage(argv[0]);

  TraceStoreReader R;
  if (std::optional<Diag> D = R.open(Path)) {
    std::cerr << "open failed: " << D->renderWithKind() << "\n";
    return 1;
  }

  if (!DynamicSpec.empty()) {
    if (WorkloadName) {
      std::unique_ptr<ir::Module> M = compileWorkloadOrExit(WorkloadName);
      if (std::optional<Diag> D = R.requireModule(*M)) {
        std::cerr << "module check failed: " << D->renderWithKind() << "\n";
        return 1;
      }
    }
    Expected<std::vector<DynPredictorConfig>> Panel =
        parseDynamicSpec(DynamicSpec);
    if (!Panel) {
      std::cerr << "bad --dynamic spec: " << Panel.error().renderWithKind()
                << "\n";
      return 2;
    }
    Expected<std::vector<SequenceHistogram>> Hists =
        replayStoreDynamic(R, *Panel, Jobs);
    if (!Hists) {
      std::cerr << "replay rejected: " << Hists.error().renderWithKind()
                << "\n";
      return 1;
    }
    for (size_t P = 0; P < Hists->size(); ++P) {
      const SequenceHistogram &H = (*Hists)[P];
      std::printf("%-18s %12" PRIu64 " execs  %10" PRIu64
                  " breaks  miss %6.2f%%  ipbc avg %.1f\n",
                  (*Panel)[P].name().c_str(), H.BranchExecs, H.Breaks,
                  100.0 * H.missRate(), H.ipbcAverage());
    }
    return 0;
  }

  std::unique_ptr<ir::Module> M = compileWorkloadOrExit(WorkloadName);
  Expected<std::vector<uint8_t>> Dirs = perfectDirectionsFromStore(R, *M);
  if (!Dirs) {
    std::cerr << "replay rejected: " << Dirs.error().renderWithKind() << "\n";
    return 1;
  }
  std::vector<std::vector<uint8_t>> Panel;
  Panel.push_back(std::move(*Dirs));
  Expected<std::vector<SequenceHistogram>> Hists =
      replayStoreAll(R, std::move(Panel), Jobs);
  if (!Hists) {
    std::cerr << "replay failed: " << Hists.error().renderWithKind() << "\n";
    return 1;
  }
  const SequenceHistogram &H = (*Hists)[0];
  std::printf("replayed %" PRIu64 " events over %" PRIu64
              " instrs: %" PRIu64 " breaks, mean sequence %.1f instrs\n",
              H.BranchExecs, H.TotalInstrs, H.Breaks,
              H.Breaks ? static_cast<double>(H.TotalInstrs) /
                             static_cast<double>(H.Breaks + 1)
                       : static_cast<double>(H.TotalInstrs));
  return 0;
}

int runCorrupt(int argc, char **argv) {
  const char *Path = nullptr;
  const char *ByteSpec = nullptr;
  uint64_t TruncateTo = UINT64_MAX;
  for (int I = 2; I < argc; ++I) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::cerr << Flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--corrupt-byte") == 0)
      ByteSpec = needValue("--corrupt-byte");
    else if (std::strcmp(argv[I], "--truncate-to") == 0)
      TruncateTo = std::strtoull(needValue("--truncate-to"), nullptr, 10);
    else if (argv[I][0] != '-' && !Path)
      Path = argv[I];
    else
      return usage(argv[0]);
  }
  if (!Path || (!ByteSpec && TruncateTo == UINT64_MAX))
    return usage(argv[0]);

  if (ByteSpec) {
    // OFF[:XOR] — default mask 0xFF flips the whole byte; an explicit
    // mask (e.g. 64:0x01) flips exactly the named bits.
    char *End = nullptr;
    const uint64_t Off = std::strtoull(ByteSpec, &End, 0);
    uint8_t Mask = 0xFF;
    if (End && *End == ':')
      Mask = static_cast<uint8_t>(std::strtoul(End + 1, nullptr, 0));
    if (Mask == 0) {
      std::cerr << "--corrupt-byte: XOR mask 0 changes nothing\n";
      return 2;
    }
    std::FILE *F = std::fopen(Path, "r+b");
    if (!F) {
      std::cerr << "cannot open '" << Path << "' for writing\n";
      return 1;
    }
    unsigned char B;
    if (std::fseek(F, static_cast<long>(Off), SEEK_SET) != 0 ||
        std::fread(&B, 1, 1, F) != 1) {
      std::cerr << "offset " << Off << " is past the end of '" << Path
                << "'\n";
      std::fclose(F);
      return 1;
    }
    B = static_cast<unsigned char>(B ^ Mask);
    if (std::fseek(F, static_cast<long>(Off), SEEK_SET) != 0 ||
        std::fwrite(&B, 1, 1, F) != 1) {
      std::cerr << "write failed at offset " << Off << "\n";
      std::fclose(F);
      return 1;
    }
    std::fclose(F);
    std::printf("flipped byte %" PRIu64 " of '%s' with mask 0x%02X\n", Off,
                Path, Mask);
  }
  if (TruncateTo != UINT64_MAX) {
    std::FILE *F = std::fopen(Path, "r+b");
    if (!F || ftruncate(fileno(F), static_cast<off_t>(TruncateTo)) != 0) {
      std::cerr << "cannot truncate '" << Path << "'\n";
      if (F)
        std::fclose(F);
      return 1;
    }
    std::fclose(F);
    std::printf("truncated '%s' to %" PRIu64 " bytes\n", Path, TruncateTo);
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage(argv[0]);
  if (std::strcmp(argv[1], "capture") == 0)
    return runCapture(argc, argv);
  if (std::strcmp(argv[1], "info") == 0)
    return runInfoOrVerify(argc, argv, /*Verify=*/false);
  if (std::strcmp(argv[1], "verify") == 0)
    return runInfoOrVerify(argc, argv, /*Verify=*/true);
  if (std::strcmp(argv[1], "replay") == 0)
    return runReplay(argc, argv);
  if (std::strcmp(argv[1], "corrupt") == 0)
    return runCorrupt(argc, argv);
  return usage(argv[0]);
}
