//===- tests/TraceStoreTest.cpp - Durable trace store robustness ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durability contract of the bpfree-trace-v1 store, tested from
/// both ends. Fidelity: a persisted capture must stream back the exact
/// event sequence the resident trace held — compact words, escapes,
/// records straddling chunk frames — and replaying it must produce
/// histograms bit-identical to resident replay at every Jobs setting.
/// Robustness: every way a file can be damaged (flipped header bytes,
/// corrupt frame payloads, torn tails, bad footers, trailing garbage)
/// must degrade to the exact recovered prefix the format guarantees,
/// with the damage reported in TraceStoreStats, counted under
/// trace.store.* metrics, and refused by replay. The fixtures here
/// assert ground-truth chunk and event counts, not just "an error
/// happened" — the store's layout is deterministic, so the tests know
/// precisely where each byte lands.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/TraceReplay.h"
#include "predict/Heuristics.h"
#include "support/Crc32.h"
#include "support/Metrics.h"
#include "vm/FaultInjector.h"
#include "vm/TraceStore.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <unistd.h>
#include <vector>

using namespace bpfree;

namespace {

/// One decoded event, for stream comparisons.
using Event = std::tuple<uint32_t, bool, uint64_t>;

/// Unwraps an Expected whose inputs the test constructed to be valid; a
/// rejection is a test failure, reported with the diagnostic.
template <typename T> T take(Expected<T> E) {
  if (!E) {
    ADD_FAILURE() << "unexpected rejection: " << E.error().renderWithKind();
    return T{};
  }
  return E.takeValue();
}

/// Any module works for encoding tests: append() is driven directly with
/// synthetic events, bypassing the observer hook.
std::unique_ptr<ir::Module> anyModule() {
  return minic::compileOrDie(findWorkload("treesort")->Source);
}

/// A structurally different module, for module-hash mismatch tests.
std::unique_ptr<ir::Module> otherModule() {
  return minic::compileOrDie(findWorkload("lisp")->Source);
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "bpfree_store_" + Name;
}

bool fileExists(const std::string &Path) {
  if (std::FILE *F = std::fopen(Path.c_str(), "rb")) {
    std::fclose(F);
    return true;
  }
  return false;
}

uint64_t fileSize(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return 0;
  std::fseek(F, 0, SEEK_END);
  const long N = std::ftell(F);
  std::fclose(F);
  return N < 0 ? 0 : static_cast<uint64_t>(N);
}

std::string readAll(const std::string &Path) {
  std::string Out;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

/// Read-modify-write of one byte: the corruption primitive.
void xorByteAt(const std::string &Path, uint64_t Off, uint8_t Mask) {
  std::FILE *F = std::fopen(Path.c_str(), "r+b");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fseek(F, static_cast<long>(Off), SEEK_SET), 0);
  int C = std::fgetc(F);
  ASSERT_NE(C, EOF);
  ASSERT_EQ(std::fseek(F, static_cast<long>(Off), SEEK_SET), 0);
  std::fputc(static_cast<uint8_t>(C) ^ Mask, F);
  std::fclose(F);
}

void truncateTo(const std::string &Path, uint64_t Bytes) {
  ASSERT_EQ(::truncate(Path.c_str(), static_cast<off_t>(Bytes)), 0) << Path;
}

void appendBytes(const std::string &Path, const std::string &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  ASSERT_NE(F, nullptr) << Path;
  std::fwrite(Data.data(), 1, Data.size(), F);
  std::fclose(F);
}

/// Streams every event out of the store's recovered prefix through an
/// independent cursor — the same decode loop replay uses.
std::vector<Event> streamAll(const TraceStoreReader &R) {
  TraceStream S;
  std::optional<Diag> D = R.openStream(S);
  EXPECT_FALSE(D.has_value()) << (D ? D->renderWithKind() : "");
  std::vector<Event> Out;
  TraceDecoder Dec;
  const uint32_t *W = nullptr;
  for (;;) {
    Expected<uint64_t> N = S.next(W);
    if (!N) {
      ADD_FAILURE() << "stream failed: " << N.error().renderWithKind();
      return Out;
    }
    if (*N == 0)
      break;
    Dec.feed(W, *N, [&](uint32_t Idx, bool Taken, uint64_t Delta) {
      Out.emplace_back(Idx, Taken, Delta);
    });
  }
  EXPECT_FALSE(Dec.midRecord());
  return Out;
}

void expectHistogramsEqual(const SequenceHistogram &A,
                           const SequenceHistogram &B,
                           const std::string &What) {
  EXPECT_EQ(A.NumSequences, B.NumSequences) << What;
  EXPECT_EQ(A.SumLengths, B.SumLengths) << What;
  EXPECT_EQ(A.Breaks, B.Breaks) << What;
  EXPECT_EQ(A.TotalInstrs, B.TotalInstrs) << What;
  EXPECT_EQ(A.BranchExecs, B.BranchExecs) << What;
}

//===----------------------------------------------------------------------===//
// The two-chunk corruption fixture
//===----------------------------------------------------------------------===//
//
// 70000 compact events (one word each) fill chunk 0 exactly and leave a
// 4464-word chunk 1, so every structure's file offset is a compile-time
// constant and each fixture can flip or tear a byte at a *named*
// location, then assert the reader's verdict against ground truth.

constexpr uint64_t kHeaderBytes = 28;
constexpr uint64_t kFrameHeaderBytes = 16;
constexpr uint64_t kFooterBytes = 44;
constexpr uint64_t kFixtureEvents = 70000;
constexpr uint64_t kChunk0Words = BranchTrace::ChunkWords;
constexpr uint64_t kChunk1Words = kFixtureEvents - kChunk0Words;
constexpr uint64_t kFrame0PayloadOff = kHeaderBytes + kFrameHeaderBytes;
constexpr uint64_t kFrame1HeaderOff = kFrame0PayloadOff + kChunk0Words * 4;
constexpr uint64_t kFrame1PayloadOff = kFrame1HeaderOff + kFrameHeaderBytes;
constexpr uint64_t kFooterOff = kFrame1PayloadOff + kChunk1Words * 4;
constexpr uint64_t kFileBytes = kFooterOff + kFooterBytes;
/// The fixture's footer total-instruction count is deliberately offset
/// from the last event's instruction count, so tests can tell whether
/// totalInstrs() came from the footer or from the decoded-prefix
/// fallback.
constexpr uint64_t kFinalizeSlack = 12345;

struct StoreFixture {
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<BranchTrace> T;
  std::vector<Event> Events;
  uint64_t FinalIC = 0;
  std::string Path;
};

StoreFixture writeTwoChunkFixture(const std::string &Name) {
  StoreFixture F;
  F.M = anyModule();
  F.T = std::make_unique<BranchTrace>(*F.M);
  uint64_t IC = 0;
  for (uint64_t I = 0; I < kFixtureEvents; ++I) {
    const uint64_t Delta = I % 7 + 1;
    IC += Delta;
    const uint32_t Idx = static_cast<uint32_t>(I % 97);
    const bool Taken = (I & 1) != 0;
    F.T->append(Idx, Taken, IC);
    F.Events.emplace_back(Idx, Taken, Delta);
  }
  F.FinalIC = IC;
  F.T->finalize(IC + kFinalizeSlack);
  EXPECT_EQ(F.T->numEvents(), kFixtureEvents);
  EXPECT_EQ(F.T->storedWordCount(), kFixtureEvents); // all compact
  EXPECT_EQ(F.T->numChunks(), 2u);
  F.Path = tmpPath(Name);
  std::remove(F.Path.c_str());
  std::optional<Diag> D = writeTraceFile(*F.T, F.Path);
  EXPECT_FALSE(D.has_value()) << (D ? D->renderWithKind() : "");
  EXPECT_EQ(fileSize(F.Path), kFileBytes);
  return F;
}

//===----------------------------------------------------------------------===//
// CRC32C
//===----------------------------------------------------------------------===//

TEST(Crc32Test, KnownAnswer) {
  // The canonical CRC32C check value (iSCSI, RFC 3720 appendix B.4).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char *Data = "the quick brown fox jumps over the lazy dog";
  const size_t N = std::strlen(Data);
  const uint32_t Whole = crc32c(Data, N);
  for (size_t Split = 0; Split <= N; ++Split) {
    const uint32_t Piecewise =
        crc32c(Data + Split, N - Split, crc32c(Data, Split));
    EXPECT_EQ(Piecewise, Whole) << "split at " << Split;
  }
  EXPECT_NE(crc32c("abc", 3), crc32c("abd", 3));
}

//===----------------------------------------------------------------------===//
// Module fingerprinting
//===----------------------------------------------------------------------===//

TEST(TraceStoreTest, ModuleHashIsStructural) {
  auto A = anyModule(), B = anyModule(), C = otherModule();
  // Recompiling the same source gives the same structure, so the same
  // hash; a different program hashes differently.
  EXPECT_EQ(moduleTraceHash(*A), moduleTraceHash(*B));
  EXPECT_NE(moduleTraceHash(*A), moduleTraceHash(*C));
}

//===----------------------------------------------------------------------===//
// Writer lifecycle
//===----------------------------------------------------------------------===//

TEST(TraceStoreTest, WriterIsAtomicAndDiscardLeavesNothing) {
  const std::string Path = tmpPath("atomic.trace");
  std::remove(Path.c_str());
  const uint32_t Words[4] = {2u << 16 | (5u << 1) | 1u, 3u << 16 | (6u << 1),
                             4u << 16 | (7u << 1) | 1u, 5u << 16 | (8u << 1)};

  {
    // Mid-write, only the temp file exists: a reader can never observe a
    // half-written store at the final path.
    TraceWriter W;
    ASSERT_FALSE(W.open(Path, 0xABCDu, 16).has_value());
    EXPECT_TRUE(fileExists(Path + ".tmp"));
    EXPECT_FALSE(fileExists(Path));
    ASSERT_FALSE(W.appendChunk(Words, 4).has_value());
    W.discard();
    EXPECT_FALSE(fileExists(Path + ".tmp"));
    EXPECT_FALSE(fileExists(Path));
  }
  {
    // An abandoned writer (error path, early return) cleans up in its
    // destructor.
    TraceWriter W;
    ASSERT_FALSE(W.open(Path, 0xABCDu, 16).has_value());
    ASSERT_FALSE(W.appendChunk(Words, 4).has_value());
  }
  EXPECT_FALSE(fileExists(Path + ".tmp"));
  EXPECT_FALSE(fileExists(Path));
  {
    // finish() renames into place and removes the temp file.
    TraceWriter W;
    ASSERT_FALSE(W.open(Path, 0xABCDu, 16).has_value());
    ASSERT_FALSE(W.appendChunk(Words, 4).has_value());
    ASSERT_FALSE(W.finish(4, 14).has_value());
    EXPECT_EQ(W.chunksWritten(), 1u);
  }
  EXPECT_TRUE(fileExists(Path));
  EXPECT_FALSE(fileExists(Path + ".tmp"));

  TraceStoreReader R;
  ASSERT_FALSE(R.open(Path).has_value());
  EXPECT_TRUE(R.complete());
  EXPECT_EQ(R.numEvents(), 4u);
  EXPECT_EQ(R.totalInstrs(), 14u);
  EXPECT_EQ(R.moduleHash(), 0xABCDu);
  EXPECT_EQ(R.numBlocks(), 16u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Round-trips
//===----------------------------------------------------------------------===//

TEST(TraceStoreTest, TwoChunkRoundTripStreamsEveryEvent) {
  StoreFixture F = writeTwoChunkFixture("roundtrip.trace");
  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());

  EXPECT_TRUE(R.complete());
  const TraceStoreStats &S = R.stats();
  EXPECT_FALSE(S.Recovered);
  EXPECT_TRUE(S.FooterValid);
  EXPECT_EQ(S.Detail, "");
  EXPECT_EQ(S.ValidChunks, 2u);
  EXPECT_EQ(S.CorruptChunks, 0u);
  EXPECT_EQ(S.DroppedChunks, 0u);
  EXPECT_EQ(S.RecoveredEvents, kFixtureEvents);
  EXPECT_EQ(S.RecoveredWords, kFixtureEvents);
  EXPECT_EQ(R.numChunks(), 2u);
  EXPECT_EQ(R.moduleHash(), moduleTraceHash(*F.M));
  EXPECT_EQ(R.totalInstrs(), F.FinalIC + kFinalizeSlack);
  EXPECT_FALSE(R.requireModule(*F.M).has_value());

  EXPECT_EQ(streamAll(R), F.Events);
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, EscapeStraddlingFrameBoundarySurvivesDisk) {
  auto M = anyModule();
  BranchTrace T(*M);
  std::vector<Event> Expected;
  uint64_t IC = 0;
  // Fill to two words short of the first chunk, then append an escape:
  // its four words span two frames on disk and must decode as one event
  // through the stream's carry.
  for (size_t I = 0; I < BranchTrace::ChunkWords - 2; ++I) {
    IC += 1;
    T.append(7, false, IC);
    Expected.emplace_back(7u, false, 1);
  }
  IC += (1ull << 36) + 3;
  T.append(0x9000u, true, IC);
  Expected.emplace_back(0x9000u, true, (1ull << 36) + 3);
  for (size_t I = 0; I < 10; ++I) {
    IC += 2;
    T.append(11, I % 2 == 0, IC);
    Expected.emplace_back(11u, I % 2 == 0, 2);
  }
  T.finalize(IC);
  ASSERT_EQ(T.numChunks(), 2u);

  const std::string Path = tmpPath("straddle.trace");
  std::remove(Path.c_str());
  ASSERT_FALSE(writeTraceFile(T, Path).has_value());
  TraceStoreReader R;
  ASSERT_FALSE(R.open(Path).has_value());
  EXPECT_TRUE(R.complete());
  EXPECT_EQ(R.numEvents(), Expected.size());
  EXPECT_EQ(streamAll(R), Expected);
  std::remove(Path.c_str());
}

TEST(TraceStoreTest, SpillWritesTheIdenticalFileAtFlatMemory) {
  auto M = anyModule();
  const uint64_t NumEvents = 200000; // 3 full chunks + a tail
  const std::string SpillPath = tmpPath("spill.trace");
  const std::string ResidentPath = tmpPath("resident.trace");
  std::remove(SpillPath.c_str());
  std::remove(ResidentPath.c_str());

  // The spilling capture gets a one-chunk byte cap: if spilling ever let
  // a second chunk accumulate, the cap would trip and the zero-drop
  // assertion below would fail.
  BranchTrace S(*M, BranchTrace::ChunkWords * 4);
  ASSERT_FALSE(S.spillTo(SpillPath).has_value());
  BranchTrace Resident(*M);
  uint64_t IC = 0;
  for (uint64_t I = 0; I < NumEvents; ++I) {
    const uint64_t Delta = I % 11 + 1;
    IC += Delta;
    const uint32_t Idx = static_cast<uint32_t>(I % 89);
    S.append(Idx, (I & 1) != 0, IC);
    Resident.append(Idx, (I & 1) != 0, IC);
    EXPECT_LE(S.numChunks(), 1u); // flat memory ceiling
  }
  S.finalize(IC);
  Resident.finalize(IC);
  ASSERT_FALSE(S.closeSpill().has_value());
  ASSERT_FALSE(writeTraceFile(Resident, ResidentPath).has_value());

  EXPECT_FALSE(S.overflowed());
  EXPECT_EQ(S.droppedEvents(), 0u);
  EXPECT_EQ(S.numEvents(), NumEvents);
  EXPECT_TRUE(S.spilling());
  EXPECT_GE(S.spilledChunks(), 3u);

  // The store a capture spilled as it ran is bit-identical to the store
  // written from a fully resident twin: one format, one layout.
  const std::string SpillBytes = readAll(SpillPath);
  EXPECT_FALSE(SpillBytes.empty());
  EXPECT_EQ(SpillBytes, readAll(ResidentPath));

  // Resident replay of a spilled trace is refused — its chunks are on
  // disk — and the diagnostic points at the store.
  Expected<SequenceHistogram> E = replayTrace(S, std::vector<uint8_t>{});
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.error().Kind, ErrorKind::InvalidArgument);
  EXPECT_NE(E.error().Message.find(SpillPath), std::string::npos);

  // The store replays, and matches resident replay of the twin exactly.
  TraceStoreReader R;
  ASSERT_FALSE(R.open(SpillPath).has_value());
  EXPECT_TRUE(R.complete());
  EXPECT_EQ(R.numEvents(), NumEvents);
  const uint32_t NumBlocks = R.numBlocks();
  std::vector<uint8_t> Dirs(NumBlocks, DirTaken);
  expectHistogramsEqual(take(replayStore(R, Dirs)),
                        take(replayTrace(Resident, Dirs)),
                        "spilled store vs resident twin");

  std::remove(SpillPath.c_str());
  std::remove(ResidentPath.c_str());
}

//===----------------------------------------------------------------------===//
// Corruption fixtures: exact recovered-prefix ground truth
//===----------------------------------------------------------------------===//

TEST(TraceStoreTest, HeaderDamageRejectsTheFile) {
  StoreFixture F = writeTwoChunkFixture("header.trace");
  // Any flipped header byte (here: inside the module hash) breaks the
  // header checksum; nothing in the file can be trusted, so the open
  // itself fails.
  xorByteAt(F.Path, 9, 0x40);
  TraceStoreReader R;
  std::optional<Diag> D = R.open(F.Path);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, ErrorKind::CorruptData);
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, NonStoreFilesAreRejected) {
  const std::string Path = tmpPath("notastore.trace");
  std::remove(Path.c_str());
  appendBytes(Path, "this is not a bpfree trace store, but it is 40B+\n");
  {
    TraceStoreReader R;
    std::optional<Diag> D = R.open(Path);
    ASSERT_TRUE(D.has_value());
    EXPECT_EQ(D->Kind, ErrorKind::CorruptData);
  }
  truncateTo(Path, 10); // shorter than any header
  {
    TraceStoreReader R;
    std::optional<Diag> D = R.open(Path);
    ASSERT_TRUE(D.has_value());
    EXPECT_EQ(D->Kind, ErrorKind::CorruptData);
  }
  {
    TraceStoreReader R;
    std::optional<Diag> D = R.open(tmpPath("does_not_exist.trace"));
    ASSERT_TRUE(D.has_value());
    EXPECT_EQ(D->Kind, ErrorKind::InvalidArgument);
  }
  std::remove(Path.c_str());
}

TEST(TraceStoreTest, SecondChunkPayloadFlipRecoversFirstChunk) {
  StoreFixture F = writeTwoChunkFixture("payload1.trace");
  xorByteAt(F.Path, kFrame1PayloadOff + 100, 0x01);

  metrics::setEnabled(true);
  metrics::resetAll();
  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());

  const TraceStoreStats &S = R.stats();
  EXPECT_TRUE(S.Recovered);
  EXPECT_FALSE(S.FooterValid);
  EXPECT_FALSE(R.complete());
  EXPECT_EQ(S.ValidChunks, 1u);
  EXPECT_EQ(S.CorruptChunks, 1u);
  EXPECT_EQ(S.DroppedChunks, 0u);
  EXPECT_EQ(S.RecoveredEvents, kChunk0Words); // one event per word
  EXPECT_NE(S.Detail.find("chunk 1"), std::string::npos) << S.Detail;

  // The damage is tallied under trace.store.* so fleets of replays can
  // alarm on it.
  EXPECT_EQ(metrics::counter("trace.store.opens").value(), 1u);
  EXPECT_EQ(metrics::counter("trace.store.recovered_opens").value(), 1u);
  EXPECT_EQ(metrics::counter("trace.store.corrupt_chunks").value(), 1u);
  EXPECT_EQ(metrics::counter("trace.store.recovered_events").value(),
            kChunk0Words);
  metrics::setEnabled(false);

  // The recovered prefix is exactly the first chunk's events, and it
  // still streams cleanly.
  std::vector<Event> Prefix(F.Events.begin(),
                            F.Events.begin() + kChunk0Words);
  EXPECT_EQ(streamAll(R), Prefix);

  // Replay refuses a recovered prefix: it has no defined trailing
  // sequence, so histograms built from it would launder the damage.
  std::optional<Diag> V = validateStoreForReplay(R);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Kind, ErrorKind::CorruptData);
  Expected<SequenceHistogram> E =
      replayStore(R, std::vector<uint8_t>(R.numBlocks(), DirTaken));
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.error().Kind, ErrorKind::CorruptData);
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, FirstChunkPayloadFlipStrandsLaterChunks) {
  StoreFixture F = writeTwoChunkFixture("payload0.trace");
  xorByteAt(F.Path, kFrame0PayloadOff + 40, 0x80);

  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());
  const TraceStoreStats &S = R.stats();
  EXPECT_TRUE(S.Recovered);
  EXPECT_EQ(S.ValidChunks, 0u);
  EXPECT_EQ(S.CorruptChunks, 1u);
  // Chunk 1 verifies fine but sits beyond the damage: the delta-encoded
  // stream is broken at the gap, so the prefix contract drops it.
  EXPECT_EQ(S.DroppedChunks, 1u);
  EXPECT_EQ(S.RecoveredEvents, 0u);
  EXPECT_FALSE(S.FooterValid);
  EXPECT_TRUE(streamAll(R).empty());
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, TornPayloadTailRecoversChunkPrefix) {
  StoreFixture F = writeTwoChunkFixture("tornpayload.trace");
  truncateTo(F.Path, kFrame1PayloadOff + 100); // mid chunk-1 payload

  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());
  const TraceStoreStats &S = R.stats();
  EXPECT_TRUE(S.Recovered);
  EXPECT_EQ(S.ValidChunks, 1u);
  EXPECT_EQ(S.CorruptChunks, 1u);
  EXPECT_EQ(S.RecoveredEvents, kChunk0Words);
  EXPECT_FALSE(S.FooterValid);
  EXPECT_NE(S.Detail.find("torn chunk payload"), std::string::npos)
      << S.Detail;
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, TornFrameHeaderRecoversChunkPrefix) {
  StoreFixture F = writeTwoChunkFixture("tornheader.trace");
  truncateTo(F.Path, kFrame1HeaderOff + 8); // mid chunk-1 frame header

  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());
  const TraceStoreStats &S = R.stats();
  EXPECT_TRUE(S.Recovered);
  EXPECT_EQ(S.ValidChunks, 1u);
  EXPECT_EQ(S.CorruptChunks, 1u);
  EXPECT_EQ(S.RecoveredEvents, kChunk0Words);
  EXPECT_NE(S.Detail.find("torn frame"), std::string::npos) << S.Detail;
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, MissingFooterRecoversAllChunksButNotCompleteness) {
  StoreFixture F = writeTwoChunkFixture("nofooter.trace");
  truncateTo(F.Path, kFooterOff); // file ends exactly where FOOT began

  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());
  const TraceStoreStats &S = R.stats();
  EXPECT_TRUE(S.Recovered);
  EXPECT_FALSE(S.FooterValid);
  EXPECT_FALSE(R.complete());
  // Every chunk survived — only the seal is gone — so the whole stream
  // is recovered, but without the footer nothing vouches that this is
  // the *entire* capture, so replay must still refuse it.
  EXPECT_EQ(S.ValidChunks, 2u);
  EXPECT_EQ(S.CorruptChunks, 0u);
  EXPECT_EQ(S.RecoveredEvents, kFixtureEvents);
  EXPECT_NE(S.Detail.find("missing footer"), std::string::npos) << S.Detail;
  // Without a footer the total-instruction count falls back to the last
  // decoded branch, not the finalize() total the footer carried.
  EXPECT_EQ(R.totalInstrs(), F.FinalIC);
  EXPECT_TRUE(validateStoreForReplay(R).has_value());
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, FooterChecksumDamageRecoversAllChunks) {
  StoreFixture F = writeTwoChunkFixture("footer.trace");
  xorByteAt(F.Path, kFooterOff + 8, 0x04); // inside the event count

  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());
  const TraceStoreStats &S = R.stats();
  EXPECT_TRUE(S.Recovered);
  EXPECT_FALSE(S.FooterValid);
  EXPECT_EQ(S.ValidChunks, 2u);
  EXPECT_EQ(S.CorruptChunks, 0u);
  EXPECT_EQ(S.RecoveredEvents, kFixtureEvents);
  EXPECT_NE(S.Detail.find("footer checksum mismatch"), std::string::npos)
      << S.Detail;
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, TrailingGarbageAfterFooterIsDamage) {
  StoreFixture F = writeTwoChunkFixture("trailing.trace");
  appendBytes(F.Path, "junk appended by a confused process");

  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());
  const TraceStoreStats &S = R.stats();
  EXPECT_TRUE(S.Recovered);
  EXPECT_FALSE(R.complete());
  EXPECT_EQ(S.ValidChunks, 2u);
  EXPECT_EQ(S.RecoveredEvents, kFixtureEvents);
  EXPECT_NE(S.Detail.find("trailing bytes"), std::string::npos) << S.Detail;
  std::remove(F.Path.c_str());
}

TEST(TraceStoreTest, WrongModuleIsUsageErrorNotCorruption) {
  StoreFixture F = writeTwoChunkFixture("module.trace");
  auto Other = otherModule();

  TraceStoreReader R;
  ASSERT_FALSE(R.open(F.Path).has_value());
  // The file itself is pristine...
  EXPECT_TRUE(R.complete());
  EXPECT_FALSE(R.requireModule(*F.M).has_value());
  // ...it just belongs to different code: InvalidArgument, not
  // CorruptData, and the diagnostic names both fingerprints.
  std::optional<Diag> D = R.requireModule(*Other);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, ErrorKind::InvalidArgument);

  Expected<std::vector<uint8_t>> Dirs = perfectDirectionsFromStore(R, *Other);
  ASSERT_FALSE(Dirs.hasValue());
  EXPECT_EQ(Dirs.error().Kind, ErrorKind::InvalidArgument);
  std::remove(F.Path.c_str());
}

//===----------------------------------------------------------------------===//
// Injected I/O faults
//===----------------------------------------------------------------------===//

TEST(TraceStoreTest, InjectedWriteFailureLeavesNoFile) {
  StoreFixture F = writeTwoChunkFixture("unused.trace");
  std::remove(F.Path.c_str());
  const std::string Path = tmpPath("enospc.trace");
  std::remove(Path.c_str());

  std::optional<Diag> D =
      writeTraceFile(*F.T, Path, IoFaultPlan::failWriteAfter(1000));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, ErrorKind::Injected);
  // The failed write left nothing: no final file, no temp file.
  EXPECT_FALSE(fileExists(Path));
  EXPECT_FALSE(fileExists(Path + ".tmp"));
}

TEST(TraceStoreTest, InjectedWriteFailureAbandonsSpillCapture) {
  auto M = anyModule();
  const std::string Path = tmpPath("spillfail.trace");
  std::remove(Path.c_str());

  const IoFaultPlan Plan = IoFaultPlan::failWriteAfter(1000);
  BranchTrace T(*M, BranchTrace::ChunkWords * 4);
  ASSERT_FALSE(T.spillTo(Path, &Plan).has_value());
  uint64_t IC = 0;
  for (uint64_t I = 0; I < 200000; ++I) {
    IC += 1;
    T.append(static_cast<uint32_t>(I % 50), (I & 1) != 0, IC);
  }
  T.finalize(IC);
  // The first chunk flush hit the injected fault: the on-disk stream is
  // abandoned, the trace marks itself overflowed (its stored prefix is
  // truncated), and closeSpill reports the original failure.
  EXPECT_TRUE(T.overflowed());
  EXPECT_GT(T.droppedEvents(), 0u);
  std::optional<Diag> D = T.closeSpill();
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, ErrorKind::Injected);
  EXPECT_FALSE(fileExists(Path));
  EXPECT_FALSE(fileExists(Path + ".tmp"));
}

TEST(TraceStoreTest, InjectedTruncateAtCloseSurfacesAsRecovery) {
  StoreFixture F = writeTwoChunkFixture("unused2.trace");
  std::remove(F.Path.c_str());
  const std::string Path = tmpPath("torncl.trace");
  std::remove(Path.c_str());

  // The crash-while-flushing fault: the rename lands but the tail is
  // torn off. The writer itself reports success (the OS lied to it);
  // the reader's checksums catch it.
  ASSERT_FALSE(writeTraceFile(*F.T, Path,
                              IoFaultPlan::truncateAtClose(
                                  kFrame1PayloadOff + 100))
                   .has_value());
  TraceStoreReader R;
  ASSERT_FALSE(R.open(Path).has_value());
  EXPECT_TRUE(R.stats().Recovered);
  EXPECT_EQ(R.stats().ValidChunks, 1u);
  EXPECT_EQ(R.numEvents(), kChunk0Words);
  std::remove(Path.c_str());
}

TEST(TraceStoreTest, SeededBitRotNeverVerifiesClean) {
  StoreFixture F = writeTwoChunkFixture("bitrot.trace");
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    TraceStoreReader R;
    std::optional<Diag> D =
        R.open(F.Path, IoFaultPlan::flipBitsOnRead(4, Seed));
    // Wherever the seed lands the flips — header, frame, payload,
    // footer — the store must either be rejected outright or downgraded
    // from complete; rot never passes verification.
    if (!D.has_value()) {
      EXPECT_FALSE(R.complete()) << "seed " << Seed;
    }
  }
  std::remove(F.Path.c_str());
}

TEST(IoFaultPlanTest, FromSeedIsArmedAndDeterministic) {
  for (uint64_t Seed = 0; Seed < 16; ++Seed) {
    const IoFaultPlan A = IoFaultPlan::fromSeed(Seed, 1u << 20);
    const IoFaultPlan B = IoFaultPlan::fromSeed(Seed, 1u << 20);
    EXPECT_TRUE(A.armed()) << "seed " << Seed;
    EXPECT_EQ(A.describe(), B.describe()) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Replay equivalence on a real capture
//===----------------------------------------------------------------------===//

TEST(TraceStoreTest, RealCaptureReplaysBitIdenticallyFromDisk) {
  const Workload *W = findWorkload("treesort");
  ASSERT_NE(W, nullptr);
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  auto Run = runWorkloadOrExit(*W, 0, {}, RO);
  ASSERT_NE(Run->Trace, nullptr);
  const BranchTrace &T = *Run->Trace;

  const std::string Path = tmpPath("treesort.trace");
  std::remove(Path.c_str());
  ASSERT_FALSE(writeTraceFile(T, Path).has_value());
  TraceStoreReader R;
  ASSERT_FALSE(R.open(Path).has_value());
  ASSERT_TRUE(R.complete());
  ASSERT_FALSE(R.requireModule(*Run->M).has_value());
  EXPECT_EQ(R.numEvents(), T.numEvents());
  EXPECT_EQ(R.totalInstrs(), T.totalInstrs());

  // The perfect predictor derived by streaming the store equals the one
  // derived from the resident trace.
  const std::vector<uint8_t> Perfect =
      take(perfectDirectionsFromTrace(T));
  EXPECT_EQ(take(perfectDirectionsFromStore(R, *Run->M)), Perfect);

  // A three-way direction panel, replayed resident and from disk at
  // every Jobs setting: bit-identical histograms throughout.
  const uint32_t NumBlocks = R.numBlocks();
  std::vector<std::vector<uint8_t>> Panel;
  Panel.push_back(Perfect);
  Panel.emplace_back(NumBlocks, DirTaken);
  Panel.emplace_back(NumBlocks, DirFallthru);
  const std::vector<SequenceHistogram> FromMemory =
      take(replayTraceAll(T, Panel, 0));
  ASSERT_EQ(FromMemory.size(), Panel.size());
  for (unsigned Jobs : {0u, 1u, 2u, 4u, 8u}) {
    const std::vector<SequenceHistogram> FromDisk =
        take(replayStoreAll(R, Panel, Jobs));
    ASSERT_EQ(FromDisk.size(), FromMemory.size());
    for (size_t I = 0; I < FromDisk.size(); ++I)
      expectHistogramsEqual(FromDisk[I], FromMemory[I],
                            "panel " + std::to_string(I) + " at Jobs " +
                                std::to_string(Jobs));
  }
  expectHistogramsEqual(take(replayStore(R, Perfect)),
                        take(replayTrace(T, Perfect)), "single-lane");

  // Per-site attribution counts match too.
  const std::vector<SiteCounts> SiteMem =
      take(replaySiteCounts(T, Panel[1]));
  const std::vector<SiteCounts> SiteDisk =
      take(replayStoreSiteCounts(R, Panel[1]));
  ASSERT_EQ(SiteMem.size(), SiteDisk.size());
  for (size_t I = 0; I < SiteMem.size(); ++I) {
    EXPECT_EQ(SiteMem[I].Taken, SiteDisk[I].Taken) << "site " << I;
    EXPECT_EQ(SiteMem[I].Fallthru, SiteDisk[I].Fallthru) << "site " << I;
    EXPECT_EQ(SiteMem[I].Mispredicts, SiteDisk[I].Mispredicts)
        << "site " << I;
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Driver integration: spill stores and overflow warnings
//===----------------------------------------------------------------------===//

TEST(TraceStoreTest, DriverSealsSpillStoreAndHandsBackThePath) {
  const Workload *W = findWorkload("treesort");
  ASSERT_NE(W, nullptr);
  const std::string Path = tmpPath("driver_spill.trace");
  std::remove(Path.c_str());

  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  RO.TraceSpillPath = Path;
  auto Run = runWorkloadOrExit(*W, 0, {}, RO);
  ASSERT_NE(Run->Trace, nullptr);
  EXPECT_EQ(Run->TraceFile, Path);
  EXPECT_TRUE(Run->Warnings.empty());
  EXPECT_TRUE(Run->Trace->spilling());
  EXPECT_FALSE(Run->Trace->overflowed());

  TraceStoreReader R;
  ASSERT_FALSE(R.open(Path).has_value());
  EXPECT_TRUE(R.complete());
  EXPECT_EQ(R.numEvents(), Run->Trace->numEvents());
  ASSERT_FALSE(R.requireModule(*Run->M).has_value());
  std::remove(Path.c_str());
}

TEST(TraceStoreTest, DriverWarnsWhenTheTraceOverflowsItsCap) {
  const Workload *W = findWorkload("treesort");
  ASSERT_NE(W, nullptr);
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  // One chunk is far below treesort's ~44-chunk capture: the cap trips,
  // the run still completes, and the driver says so.
  RO.TraceMaxBytes = BranchTrace::ChunkWords * 4;
  auto Run = runWorkloadOrExit(*W, 0, {}, RO);
  ASSERT_NE(Run->Trace, nullptr);
  EXPECT_TRUE(Run->Trace->overflowed());
  EXPECT_GT(Run->Trace->droppedEvents(), 0u);
  ASSERT_EQ(Run->Warnings.size(), 1u);
  EXPECT_NE(Run->Warnings[0].find("overflowed"), std::string::npos)
      << Run->Warnings[0];
  EXPECT_EQ(Run->TraceFile, "");
}

} // namespace
