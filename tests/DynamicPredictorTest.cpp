//===- tests/DynamicPredictorTest.cpp - Dynamic-predictor zoo -------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two layers of evidence for the dynamic-predictor replay mode. The
/// predictor semantics (SimpleScalar bpred_* reference behavior —
/// flip-flop counter init, saturation bounds, two-level index math,
/// history aliasing, the tournament chooser's disagreement training) are
/// checked against a hand-rolled oracle written with deliberately
/// different machinery (sparse maps, modulo indexing, lazy counter
/// init). The replay pipeline (per-site event-stream decomposition,
/// trace sharding, the ordered partial merge) is checked against a naive
/// sequential replay of the same trace, and its determinism contract —
/// bit-identical histograms across Jobs values and resident-vs-disk
/// sources — is asserted directly, including traces whose escape records
/// straddle chunk (and therefore shard) boundaries.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/DynamicReplay.h"
#include "ipbc/TraceReplay.h"
#include "predict/DynamicPredictors.h"
#include "support/Metrics.h"
#include "vm/TraceStore.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

using namespace bpfree;

namespace {

std::unique_ptr<ir::Module> anyModule() {
  return minic::compileOrDie(findWorkload("treesort")->Source);
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "bpfree_dyn_" + Name;
}

void expectHistogramsEqual(const SequenceHistogram &A,
                           const SequenceHistogram &B,
                           const std::string &What) {
  EXPECT_EQ(A.NumSequences, B.NumSequences) << What;
  EXPECT_EQ(A.SumLengths, B.SumLengths) << What;
  EXPECT_EQ(A.Breaks, B.Breaks) << What;
  EXPECT_EQ(A.TotalInstrs, B.TotalInstrs) << What;
  EXPECT_EQ(A.BranchExecs, B.BranchExecs) << What;
}

//===----------------------------------------------------------------------===//
// The oracle: same reference semantics, deliberately different code
//===----------------------------------------------------------------------===//
//
// Sparse maps with lazily-materialized counters (the flip-flop init value
// is computed from the index's parity on first touch), modulo indexing
// instead of masks, plain ints instead of saturating bytes. If the real
// predictor and this agree event-for-event on adversarial streams, the
// table/index/update machinery in DynamicPredictors.cpp is doing what
// the comments claim.

int initCounter(uint64_t Index) { return Index % 2 == 0 ? 1 : 2; }

struct SparseCounters {
  std::map<uint64_t, int> C;
  int &at(uint64_t I) { return C.try_emplace(I, initCounter(I)).first->second; }
  bool predict(uint64_t I) { return at(I) >= 2; }
  void update(uint64_t I, bool Taken) {
    int &V = at(I);
    V = Taken ? std::min(3, V + 1) : std::max(0, V - 1);
  }
};

struct Oracle {
  explicit Oracle(const DynPredictorConfig &C) : Cfg(C) {}

  bool step(uint32_t Site, bool Taken) {
    switch (Cfg.Kind) {
    case DynKind::Bimodal: {
      const bool P = Bim.predict(bimIndex(Site));
      Bim.update(bimIndex(Site), Taken);
      return P;
    }
    case DynKind::TwoLevel:
    case DynKind::GShare: {
      const bool P = Two.predict(l2Index(Site));
      twoLevelUpdate(Site, Taken);
      return P;
    }
    case DynKind::Tournament: {
      const bool BimPred = Bim.predict(bimIndex(Site));
      const bool TwoPred = Two.predict(l2Index(Site));
      const bool Pred = Meta.predict(Site % Cfg.MetaEntries) ? TwoPred
                                                            : BimPred;
      if (BimPred != TwoPred)
        Meta.update(Site % Cfg.MetaEntries, TwoPred == Taken);
      Bim.update(bimIndex(Site), Taken);
      twoLevelUpdate(Site, Taken);
      return Pred;
    }
    }
    return false;
  }

private:
  uint64_t bimIndex(uint32_t Site) const {
    return Cfg.Entries == 0 && Cfg.Kind == DynKind::Bimodal
               ? Site
               : Site % Cfg.Entries;
  }

  uint64_t l2Index(uint32_t Site) {
    const uint32_t HistMask = (1u << Cfg.HistoryBits) - 1;
    if (Cfg.L1Entries == 0)
      return (static_cast<uint64_t>(Site) << Cfg.HistoryBits) |
             (Hist[Site] & HistMask);
    const uint32_t H = Hist[Site % Cfg.L1Entries] & HistMask;
    const uint32_t L2 = Cfg.L2Entries ? Cfg.L2Entries : (1u << Cfg.HistoryBits);
    // Same uint32 arithmetic as the implementation (the left shift may
    // wrap for large sites), resolved by modulo instead of a mask.
    const uint32_t I =
        Cfg.Kind == DynKind::GShare
            ? (((H ^ Site) & HistMask) | (Site << Cfg.HistoryBits))
            : (H | (Site << Cfg.HistoryBits));
    return I % L2;
  }

  void twoLevelUpdate(uint32_t Site, bool Taken) {
    Two.update(l2Index(Site), Taken);
    uint32_t &H =
        Hist[Cfg.L1Entries == 0 ? Site : Site % Cfg.L1Entries];
    H = ((H << 1) | static_cast<uint32_t>(Taken)) &
        ((1u << Cfg.HistoryBits) - 1);
  }

  DynPredictorConfig Cfg;
  SparseCounters Bim, Two, Meta;
  std::map<uint32_t, uint32_t> Hist;
};

/// Deterministic pseudorandom stream: xorshift64, fixed seed.
struct Rng {
  uint64_t S = 0x9E3779B97F4A7C15ull;
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
};

//===----------------------------------------------------------------------===//
// Predictor semantics
//===----------------------------------------------------------------------===//

TEST(DynamicPredictor, BimodalSaturationBoundaries) {
  DynPredictorConfig C;
  C.Kind = DynKind::Bimodal;
  C.Entries = 0; // per-site
  DynamicPredictor P(C, 1);
  // Site 0's counter starts weakly-not-taken (flip-flop entry 0 = 1):
  // the first prediction is not-taken, then the takens walk it to the
  // saturated top while predictions flip after one update.
  EXPECT_FALSE(P.predictAndUpdate(0, true)); // 1 -> 2
  EXPECT_TRUE(P.predictAndUpdate(0, true));  // 2 -> 3
  EXPECT_TRUE(P.predictAndUpdate(0, true));  // 3 -> 3 (saturated)
  EXPECT_TRUE(P.predictAndUpdate(0, true));  // still 3
  // Walking back down: two not-takens before the prediction flips, and
  // the bottom saturates at 0.
  EXPECT_TRUE(P.predictAndUpdate(0, false));  // 3 -> 2
  EXPECT_TRUE(P.predictAndUpdate(0, false));  // 2 -> 1
  EXPECT_FALSE(P.predictAndUpdate(0, false)); // 1 -> 0
  EXPECT_FALSE(P.predictAndUpdate(0, false)); // 0 -> 0 (saturated)
  EXPECT_FALSE(P.predictAndUpdate(0, true));  // 0 -> 1: still not-taken
}

TEST(DynamicPredictor, FlipFlopInitialState) {
  DynPredictorConfig C;
  C.Kind = DynKind::Bimodal;
  C.Entries = 4;
  DynamicPredictor P(C, 8);
  // First touch of each table entry sees the alternating weakly-not-
  // taken / weakly-taken pattern; sites 4..7 wrap onto the same entries.
  EXPECT_FALSE(P.predictAndUpdate(0, false));
  EXPECT_TRUE(P.predictAndUpdate(1, true));
  EXPECT_FALSE(P.predictAndUpdate(2, false));
  EXPECT_TRUE(P.predictAndUpdate(3, true));
}

TEST(DynamicPredictor, TabledBimodalAliasesSitesPerSiteDoesNot) {
  // A one-entry table is the aliasing limit: every site trains the same
  // counter. The per-site shape keeps them independent.
  DynPredictorConfig Tabled;
  Tabled.Kind = DynKind::Bimodal;
  Tabled.Entries = 1;
  DynPredictorConfig PerSite;
  PerSite.Kind = DynKind::Bimodal;
  PerSite.Entries = 0;
  DynamicPredictor T(Tabled, 16), S(PerSite, 16);
  for (int I = 0; I < 3; ++I) {
    T.predictAndUpdate(0, true);
    S.predictAndUpdate(0, true);
  }
  // Site 8 never executed. Tabled: the shared counter is saturated taken.
  // Per-site: entry 8 still holds its initial weakly-not-taken value.
  EXPECT_TRUE(T.predictAndUpdate(8, true));
  EXPECT_FALSE(S.predictAndUpdate(8, true));
}

TEST(DynamicPredictor, GAgLearnsAlternationBimodalCannot) {
  // A strict T,N,T,N... pattern defeats any 2-bit counter but is a
  // 1-deep history function: GAg(4) must become perfect after warmup.
  DynPredictorConfig Gag;
  Gag.Kind = DynKind::TwoLevel;
  Gag.L1Entries = 1;
  Gag.HistoryBits = 4;
  Gag.L2Entries = 0;
  DynPredictorConfig Bim;
  Bim.Kind = DynKind::Bimodal;
  Bim.Entries = 0;
  DynamicPredictor G(Gag, 1), B(Bim, 1);
  int GagHits = 0, BimHits = 0;
  for (int I = 0; I < 200; ++I) {
    const bool Taken = I % 2 == 0;
    const bool GP = G.predictAndUpdate(0, Taken);
    const bool BP = B.predictAndUpdate(0, Taken);
    if (I >= 100) {
      GagHits += GP == Taken;
      BimHits += BP == Taken;
    }
  }
  EXPECT_EQ(GagHits, 100);
  EXPECT_LE(BimHits, 50);
}

TEST(DynamicPredictor, TournamentChooserConvergesToBetterComponent) {
  // Same alternating stream: the two-level component learns it, the
  // bimodal component cannot, so the chooser must migrate to the
  // two-level side and the tournament must end up perfect too.
  DynPredictorConfig C;
  C.Kind = DynKind::Tournament;
  C.Entries = 4096;
  C.L1Entries = 1;
  C.HistoryBits = 12;
  C.MetaEntries = 4096;
  DynamicPredictor P(C, 1);
  int Hits = 0;
  for (int I = 0; I < 4400; ++I) {
    const bool Taken = I % 2 == 0;
    const bool Pred = P.predictAndUpdate(0, Taken);
    if (I >= 4300)
      Hits += Pred == Taken;
  }
  EXPECT_EQ(Hits, 100);
}

TEST(DynamicPredictor, PerSitePapIsolatesSites) {
  // Per-site-exact PAp: hammering site 0 must leave site 1's history and
  // counters untouched — its prediction sequence matches a predictor
  // that never saw site 0 at all.
  DynPredictorConfig C;
  C.Kind = DynKind::TwoLevel;
  C.L1Entries = 0;
  C.HistoryBits = 3;
  C.L2Entries = 0;
  DynamicPredictor Mixed(C, 2), Alone(C, 2);
  Rng R;
  for (int I = 0; I < 500; ++I) {
    Mixed.predictAndUpdate(0, (R.next() & 1) != 0);
    const bool Taken = I % 3 == 0;
    EXPECT_EQ(Mixed.predictAndUpdate(1, Taken),
              Alone.predictAndUpdate(1, Taken))
        << "site 1 diverged at event " << I;
  }
}

TEST(DynamicPredictor, DifferentialAgainstSparseOracle) {
  // Every panel shape, plus deliberately tiny tables that force heavy
  // aliasing, against the sparse-map oracle on a pseudorandom stream
  // with per-site bias (pure noise would never exercise the learned
  // paths).
  std::vector<DynPredictorConfig> Configs = standardDynamicPanel();
  {
    DynPredictorConfig C;
    C.Kind = DynKind::Bimodal;
    C.Entries = 8;
    Configs.push_back(C);
    C.Entries = 1; // the mask-degenerate table (regression: != per-site)
    Configs.push_back(C);
    C.Kind = DynKind::GShare;
    C.Entries = 4096;
    C.L1Entries = 1;
    C.HistoryBits = 3;
    C.L2Entries = 8;
    Configs.push_back(C);
    C.Kind = DynKind::TwoLevel;
    C.L1Entries = 2;
    C.HistoryBits = 3;
    C.L2Entries = 16;
    Configs.push_back(C);
    C.L1Entries = 0;
    C.HistoryBits = 2;
    C.L2Entries = 0;
    Configs.push_back(C);
    C.Kind = DynKind::Tournament;
    C.Entries = 16;
    C.L1Entries = 1;
    C.HistoryBits = 4;
    C.L2Entries = 0;
    C.MetaEntries = 8;
    Configs.push_back(C);
  }
  constexpr uint32_t NumSites = 50;
  for (const DynPredictorConfig &C : Configs) {
    ASSERT_FALSE(validateDynConfig(C)) << C.name();
    DynamicPredictor P(C, NumSites);
    Oracle O(C);
    Rng R;
    for (int I = 0; I < 20000; ++I) {
      const uint32_t Site = static_cast<uint32_t>(R.next() % NumSites);
      // Bias: low sites mostly taken, high sites mostly not, with noise.
      const bool Taken = (R.next() % 100) < (Site < 25 ? 80u : 20u);
      ASSERT_EQ(P.predictAndUpdate(Site, Taken), O.step(Site, Taken))
          << C.name() << " diverged from the oracle at event " << I;
    }
  }
}

//===----------------------------------------------------------------------===//
// Config validation and spec parsing
//===----------------------------------------------------------------------===//

TEST(DynamicPredictor, ValidationRejectsUnusableShapes) {
  DynPredictorConfig C;
  C.Kind = DynKind::Bimodal;
  C.Entries = 3; // not a power of two
  EXPECT_TRUE(validateDynConfig(C).has_value());

  C = {};
  C.Kind = DynKind::TwoLevel;
  C.HistoryBits = 0;
  EXPECT_TRUE(validateDynConfig(C).has_value());
  C.HistoryBits = 21; // above the index-math ceiling
  EXPECT_TRUE(validateDynConfig(C).has_value());

  C = {};
  C.Kind = DynKind::TwoLevel;
  C.L1Entries = 0; // per-site-exact
  C.HistoryBits = 17; // 1<<17 counters per site: rejected
  EXPECT_TRUE(validateDynConfig(C).has_value());
  C.HistoryBits = 4;
  C.L2Entries = 64; // per-site derives its table; must stay 0
  EXPECT_TRUE(validateDynConfig(C).has_value());

  C = {};
  C.Kind = DynKind::GShare;
  C.L1Entries = 4; // gshare history is global by definition
  EXPECT_TRUE(validateDynConfig(C).has_value());

  C = {};
  C.Kind = DynKind::Tournament;
  C.MetaEntries = 0;
  EXPECT_TRUE(validateDynConfig(C).has_value());
}

TEST(DynamicPredictor, SpecParserRoundTrips) {
  auto Panel = parseDynamicSpec("panel");
  ASSERT_TRUE(Panel.hasValue());
  const std::vector<DynPredictorConfig> Std = standardDynamicPanel();
  ASSERT_EQ(Panel->size(), Std.size());
  for (size_t I = 0; I < Std.size(); ++I)
    EXPECT_EQ((*Panel)[I].name(), Std[I].name());

  auto Mixed = parseDynamicSpec("bimodal:site+gshare:14+tournament:1024");
  ASSERT_TRUE(Mixed.hasValue());
  ASSERT_EQ(Mixed->size(), 3u);
  EXPECT_EQ((*Mixed)[0].name(), "bimodal[site]");
  EXPECT_TRUE((*Mixed)[0].perSiteDecomposable());
  EXPECT_EQ((*Mixed)[1].name(), "gshare[14]");
  EXPECT_EQ((*Mixed)[2].name(), "tourn[1024]");

  auto Pap = parseDynamicSpec("pap:site,6");
  ASSERT_TRUE(Pap.hasValue());
  EXPECT_EQ((*Pap)[0].name(), "pap[site/6]");
  EXPECT_TRUE((*Pap)[0].perSiteDecomposable());

  auto TwoLev = parseDynamicSpec("2lev:4,3,64+pag:1024,10+gap:8,65536");
  ASSERT_TRUE(TwoLev.hasValue());
  EXPECT_EQ((*TwoLev)[0].name(), "pap[4/3/64]");
  EXPECT_EQ((*TwoLev)[1].name(), "pag[1024/10]");
  EXPECT_EQ((*TwoLev)[2].name(), "gap[8/65536]");
}

TEST(DynamicPredictor, SpecParserRejectsMalformedTokens) {
  const char *Bad[] = {
      "",              // empty spec
      "bimodal+",      // trailing empty token
      "bogus",         // unknown name
      "bimodal:3",     // non-power-of-two table
      "bimodal:4,4",   // too many arguments
      "gshare:25",     // history above the ceiling
      "gag",           // missing W
      "gag:site",      // site sentinel where an integer is required: W=0
      "pag:0,4",       // pag with L1=0 (use pap:site,W)
      "pap:8,4",       // tabled pap needs an explicit L2
      "2lev:4,3",      // 2lev needs all three
      "tournament:12", // non-power-of-two chooser
      "bimodal:9999999999999", // overflows uint32
  };
  for (const char *Spec : Bad)
    EXPECT_FALSE(parseDynamicSpec(Spec).hasValue()) << "'" << Spec << "'";
}

//===----------------------------------------------------------------------===//
// Replay: sequential-oracle equivalence, sharding, determinism
//===----------------------------------------------------------------------===//

/// Naive reference replay: decode the trace in order, drive one
/// predictor sequentially with the scalar Breaks accounting replayTrace
/// uses. The sharded pipeline must reproduce this exactly.
SequenceHistogram naiveReplay(const BranchTrace &T,
                              const DynPredictorConfig &C,
                              uint32_t NumSites) {
  DynamicPredictor P(C, NumSites);
  SequenceHistogram H;
  uint64_t IC = 0, LastBreak = 0;
  T.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
    IC += Delta;
    ++H.BranchExecs;
    if (P.predictAndUpdate(Idx, Taken) != Taken) {
      H.record(IC - LastBreak);
      ++H.Breaks;
      LastBreak = IC;
    }
  });
  if (T.totalInstrs() > LastBreak)
    H.record(T.totalInstrs() - LastBreak);
  return H;
}

/// Synthetic multi-chunk trace: ~3 chunks of events over \p NumSites
/// sites with escape records (large deltas) planted so that one record
/// straddles the first chunk boundary — the carry case the shard
/// snapshots must attribute to the previous shard.
std::unique_ptr<BranchTrace> straddlingTrace(const ir::Module &M,
                                             uint32_t NumSites,
                                             uint64_t &MaxSite) {
  auto T = std::make_unique<BranchTrace>(M);
  Rng R;
  uint64_t IC = 0;
  MaxSite = 0;
  // 65534 compact words, then an escape record occupying words
  // 65534..65537 — two words in chunk 0, two in chunk 1.
  for (uint64_t I = 0; I < 65534; ++I) {
    const uint32_t Site = static_cast<uint32_t>(R.next() % NumSites);
    MaxSite = std::max<uint64_t>(MaxSite, Site);
    IC += 1 + (R.next() % 50);
    T->append(Site, (R.next() % 100) < (Site % 2 ? 75u : 30u), IC);
  }
  IC += 0x12345; // escape-sized delta
  T->append(7, true, IC);
  MaxSite = std::max<uint64_t>(MaxSite, 7);
  // Another 1.5 chunks of compact events with occasional escapes.
  for (uint64_t I = 0; I < 100000; ++I) {
    const uint32_t Site = static_cast<uint32_t>(R.next() % NumSites);
    MaxSite = std::max<uint64_t>(MaxSite, Site);
    IC += I % 4000 == 0 ? 0x20000 : 1 + (R.next() % 50);
    T->append(Site, (R.next() % 100) < (Site % 2 ? 75u : 30u), IC);
  }
  T->finalize(IC + 17); // trailing unbroken instructions
  return T;
}

TEST(DynamicReplay, MatchesNaiveSequentialReplay) {
  auto M = anyModule();
  uint64_t MaxSite = 0;
  auto T = straddlingTrace(*M, 40, MaxSite);
  const std::vector<DynPredictorConfig> Panel = standardDynamicPanel();
  auto Hists = replayTraceDynamic(*T, Panel, 4);
  ASSERT_TRUE(Hists.hasValue()) << Hists.error().render();
  ASSERT_EQ(Hists->size(), Panel.size());
  const uint32_t NumSites = static_cast<uint32_t>(MaxSite + 1);
  for (size_t P = 0; P < Panel.size(); ++P)
    expectHistogramsEqual((*Hists)[P], naiveReplay(*T, Panel[P], NumSites),
                          Panel[P].name() + " vs naive replay");
}

TEST(DynamicReplay, BitIdenticalAcrossJobs) {
  auto M = anyModule();
  uint64_t MaxSite = 0;
  auto T = straddlingTrace(*M, 40, MaxSite);
  const std::vector<DynPredictorConfig> Panel = standardDynamicPanel();
  auto Ref = replayTraceDynamic(*T, Panel, 1);
  ASSERT_TRUE(Ref.hasValue()) << Ref.error().render();
  for (unsigned Jobs : {2u, 4u, 8u}) {
    auto Got = replayTraceDynamic(*T, Panel, Jobs);
    ASSERT_TRUE(Got.hasValue()) << Got.error().render();
    for (size_t P = 0; P < Panel.size(); ++P)
      expectHistogramsEqual((*Ref)[P], (*Got)[P],
                            Panel[P].name() + " at jobs=" +
                                std::to_string(Jobs));
  }
}

TEST(DynamicReplay, ResidentAndStoreSourcesAgree) {
  auto M = anyModule();
  uint64_t MaxSite = 0;
  auto T = straddlingTrace(*M, 40, MaxSite);
  const std::string Path = tmpPath("roundtrip.trace");
  std::remove(Path.c_str());
  ASSERT_FALSE(writeTraceFile(*T, Path).has_value());
  TraceStoreReader Reader;
  ASSERT_FALSE(Reader.open(Path).has_value());

  const std::vector<DynPredictorConfig> Panel = standardDynamicPanel();
  auto Resident = replayTraceDynamic(*T, Panel, 4);
  auto Disk = replayStoreDynamic(Reader, Panel, 4);
  ASSERT_TRUE(Resident.hasValue()) << Resident.error().render();
  ASSERT_TRUE(Disk.hasValue()) << Disk.error().render();
  for (size_t P = 0; P < Panel.size(); ++P)
    expectHistogramsEqual((*Resident)[P], (*Disk)[P],
                          Panel[P].name() + " resident vs store");
  std::remove(Path.c_str());
}

TEST(DynamicReplay, RealWorkloadTraceAcrossJobsAndSources) {
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  auto Run = runWorkload(*findWorkload("treesort"), 0, {}, RO);
  ASSERT_TRUE(Run.hasValue()) << Run.error().render();
  const BranchTrace &T = *(*Run)->Trace;

  const std::vector<DynPredictorConfig> Panel = standardDynamicPanel();
  auto Ref = replayTraceDynamic(T, Panel, 1);
  ASSERT_TRUE(Ref.hasValue()) << Ref.error().render();
  // Sanity: the dynamic panel actually predicted (BranchExecs covers the
  // trace, breaks strictly between 0 and the event count for the real
  // predictors on a real workload).
  for (size_t P = 0; P < Panel.size(); ++P) {
    EXPECT_EQ((*Ref)[P].BranchExecs, T.numEvents()) << Panel[P].name();
    EXPECT_GT((*Ref)[P].Breaks, 0u) << Panel[P].name();
    EXPECT_LT((*Ref)[P].Breaks, T.numEvents()) << Panel[P].name();
  }

  auto Par = replayTraceDynamic(T, Panel, 8);
  ASSERT_TRUE(Par.hasValue()) << Par.error().render();
  for (size_t P = 0; P < Panel.size(); ++P)
    expectHistogramsEqual((*Ref)[P], (*Par)[P],
                          Panel[P].name() + " jobs 1 vs 8");

  const std::string Path = tmpPath("treesort.trace");
  std::remove(Path.c_str());
  ASSERT_FALSE(writeTraceFile(T, Path).has_value());
  TraceStoreReader Reader;
  ASSERT_FALSE(Reader.open(Path).has_value());
  auto Disk = replayStoreDynamic(Reader, Panel, 8);
  ASSERT_TRUE(Disk.hasValue()) << Disk.error().render();
  for (size_t P = 0; P < Panel.size(); ++P)
    expectHistogramsEqual((*Ref)[P], (*Disk)[P],
                          Panel[P].name() + " resident vs disk");
  std::remove(Path.c_str());
}

TEST(DynamicReplay, EmptyTraceYieldsOneUnbrokenSequence) {
  auto M = anyModule();
  BranchTrace T(*M);
  T.finalize(1000);
  auto Hists = replayTraceDynamic(T, standardDynamicPanel());
  ASSERT_TRUE(Hists.hasValue()) << Hists.error().render();
  for (const SequenceHistogram &H : *Hists) {
    EXPECT_EQ(H.TotalInstrs, 1000u);
    EXPECT_EQ(H.Breaks, 0u);
    EXPECT_EQ(H.BranchExecs, 0u);
    uint64_t Seqs = 0;
    for (uint64_t N : H.NumSequences)
      Seqs += N;
    EXPECT_EQ(Seqs, 1u);
  }
}

TEST(DynamicReplay, RejectsUnusableRequests) {
  auto M = anyModule();
  BranchTrace Unfinalized(*M);
  Unfinalized.append(0, true, 10);
  EXPECT_FALSE(
      replayTraceDynamic(Unfinalized, standardDynamicPanel()).hasValue());

  BranchTrace T(*M);
  T.append(0, true, 10);
  T.finalize(20);
  DynPredictorConfig BadCfg;
  BadCfg.Kind = DynKind::Bimodal;
  BadCfg.Entries = 3;
  EXPECT_FALSE(replayTraceDynamic(T, {BadCfg}).hasValue());

  std::vector<DynPredictorConfig> Oversized(MaxReplayPredictors + 1);
  EXPECT_FALSE(replayTraceDynamic(T, Oversized).hasValue());

  // An empty panel is not an error: nothing to replay, nothing returned.
  auto Empty = replayTraceDynamic(T, {});
  ASSERT_TRUE(Empty.hasValue());
  EXPECT_TRUE(Empty->empty());
}

TEST(DynamicReplay, BillsReplayDynamicMetrics) {
  metrics::setEnabled(true);
  metrics::resetAll();
  auto M = anyModule();
  BranchTrace T(*M);
  uint64_t IC = 0;
  for (uint32_t I = 0; I < 100; ++I) {
    IC += 5;
    T.append(I % 3, I % 2 == 0, IC);
  }
  T.finalize(IC + 5);
  auto Hists = replayTraceDynamic(T, standardDynamicPanel());
  ASSERT_TRUE(Hists.hasValue());
  EXPECT_EQ(metrics::counter("replay.dynamic.passes").value(), 1u);
  EXPECT_EQ(metrics::counter("replay.dynamic.events").value(), 100u);
  EXPECT_EQ(metrics::counter("replay.dynamic.predictors").value(),
            standardDynamicPanel().size());
  EXPECT_GT(metrics::counter("replay.dynamic.shards").value(), 0u);
  EXPECT_GT(metrics::counter("replay.dynamic.breaks").value(), 0u);
  metrics::setEnabled(false);
  metrics::resetAll();
}

} // namespace
