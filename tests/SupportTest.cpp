//===- tests/SupportTest.cpp - Support library tests ----------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace bpfree;

namespace {

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSeed) {
  Rng A(42), B(42), C(43);
  bool Differs = false;
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    if (VA != C.next())
      Differs = true;
  }
  EXPECT_TRUE(Differs);
}

TEST(RngTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u) << "all values of a small range appear";
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng R(11);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
    Sum += U;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02) << "roughly uniform";
}

TEST(RngTest, SplitmixIsAGoodCoin) {
  // The default predictor relies on splitmix64 parity being ~fair.
  int Heads = 0;
  for (uint64_t Key = 0; Key < 4000; ++Key)
    Heads += Rng::splitmix64(Key) & 1;
  EXPECT_GT(Heads, 1800);
  EXPECT_LT(Heads, 2200);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng R(5);
  uint64_t First = R.next();
  R.next();
  R.reseed(5);
  EXPECT_EQ(R.next(), First);
}

//===----------------------------------------------------------------------===//
// RunningStat
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, MeanAndStddev) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 2.0); // classic population-stddev example
}

TEST(StatisticsTest, EmptyAndSingle) {
  RunningStat S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.stddev(), 0.0);
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(StatisticsTest, NumericalStability) {
  RunningStat S;
  for (int I = 0; I < 10000; ++I)
    S.add(1e9 + (I % 2)); // tiny variance on a huge mean
  EXPECT_NEAR(S.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(S.stddev(), 0.5, 1e-6);
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"Name", "Value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "12345"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("| Name  |"), std::string::npos);
  EXPECT_NE(Out.find("| alpha |"), std::string::npos);
  EXPECT_NE(Out.find("|     1 |"), std::string::npos) << "numbers right-align";
  EXPECT_NE(Out.find("| 12345 |"), std::string::npos);
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter T({"A", "B", "C"});
  T.addRow({"x"});
  std::ostringstream OS;
  T.print(OS);
  // Every data row has the full column structure.
  std::string Out = OS.str();
  size_t Bars = 0;
  std::istringstream Lines(Out);
  std::string Line;
  while (std::getline(Lines, Line))
    if (Line.find("x") != std::string::npos)
      Bars = static_cast<size_t>(
          std::count(Line.begin(), Line.end(), '|'));
  EXPECT_EQ(Bars, 4u);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter T({"A"});
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"2"});
  std::ostringstream OS;
  T.print(OS);
  // Top, header, mid separator, bottom = 4 separator lines.
  std::string Out = OS.str();
  size_t Count = 0, Pos = 0;
  while ((Pos = Out.find("+---", Pos)) != std::string::npos) {
    ++Count;
    Pos += 4;
  }
  EXPECT_EQ(Count, 4u);
}

TEST(TablePrinterTest, PercentFormatting) {
  EXPECT_EQ(TablePrinter::formatPercent(0.264), "26");
  EXPECT_EQ(TablePrinter::formatPercent(0.031), "3.1");
  EXPECT_EQ(TablePrinter::formatPercent(0.0), "0");
  EXPECT_EQ(TablePrinter::formatPercent(1.0), "100");
  EXPECT_EQ(TablePrinter::formatPercent(0.095), "9.5");
  EXPECT_EQ(TablePrinter::formatPercent(0.0999), "10");
  EXPECT_EQ(TablePrinter::formatMissPair(0.26, 0.11), "26/11");
}

TEST(TablePrinterTest, DoubleFormatting) {
  EXPECT_EQ(TablePrinter::formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::formatDouble(2.0, 0), "2");
}

//===----------------------------------------------------------------------===//
// Diag / Expected
//===----------------------------------------------------------------------===//

TEST(ErrorTest, DiagRendering) {
  EXPECT_EQ(Diag("boom").render(), "boom");
  EXPECT_EQ(Diag("boom", 3, 7).render(), "3:7: boom");
}

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

// Container parsing recurses, so a hostile document a few hundred
// thousand brackets deep would overflow the stack without a depth
// ceiling. It must come back as an ordinary parse error instead.
TEST(JsonTest, DepthLimitRejectsPathologicalNesting) {
  std::string Deep(10000, '[');
  Deep.append(10000, ']');
  Expected<json::Value> E = json::parse(Deep, "hostile array document");
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.error().Kind, ErrorKind::InvalidArgument);

  std::string Objects;
  for (int I = 0; I < 10000; ++I)
    Objects += "{\"k\":";
  Objects += "0";
  for (int I = 0; I < 10000; ++I)
    Objects += "}";
  Expected<json::Value> O = json::parse(Objects, "hostile object document");
  ASSERT_FALSE(O.hasValue());
  EXPECT_EQ(O.error().Kind, ErrorKind::InvalidArgument);
}

TEST(JsonTest, DepthLimitAllowsReasonableNesting) {
  // Well inside the ceiling: 200 levels must still parse, and unwind to
  // the innermost value.
  constexpr int Depth = 200;
  std::string Doc(Depth, '[');
  Doc += "42";
  Doc.append(Depth, ']');
  Expected<json::Value> E = json::parse(Doc, "nested array document");
  ASSERT_TRUE(E.hasValue());
  const json::Value *V = &*E;
  for (int I = 0; I < Depth; ++I) {
    ASSERT_EQ(V->K, json::Value::Array);
    ASSERT_EQ(V->Arr.size(), 1u);
    V = &V->Arr[0];
  }
  EXPECT_EQ(V->K, json::Value::Number);
  EXPECT_EQ(V->Num, 42.0);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  constexpr size_t N = 100;
  std::vector<std::atomic<int>> Hits(N);
  parallelFor(4, N, [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

// An exception thrown by a body must reach the caller, not
// std::terminate the process — and identically in serial and parallel
// mode.
TEST(ThreadPoolTest, ParallelForRethrowsBodyException) {
  for (unsigned Jobs : {1u, 4u}) {
    bool Caught = false;
    try {
      parallelFor(Jobs, 16, [](size_t I) {
        if (I == 7)
          throw std::runtime_error("body failed");
      });
    } catch (const std::runtime_error &E) {
      Caught = true;
      EXPECT_STREQ(E.what(), "body failed");
    }
    EXPECT_TRUE(Caught) << "Jobs=" << Jobs;
  }
}

// A submit() failure mid-dispatch (queue allocation failure, simulated
// by the debug shim) must not deadlock the completion latch: the old
// code initialized the latch to the planned worker count and waited for
// decrements that could never come. Every index must still run exactly
// once — the workers that did get submitted drain the shared counter.
TEST(ThreadPoolTest, ParallelForSurvivesSubmitFailureMidDispatch) {
  constexpr size_t N = 64;
  // Fail the second submit: one worker made it in, the rest did not.
  for (int FailAfter : {1, 2}) {
    std::vector<std::atomic<int>> Hits(N);
    ThreadPool::debugFailSubmitAfter(FailAfter);
    parallelFor(4, N, [&](size_t I) { ++Hits[I]; });
    ThreadPool::debugFailSubmitAfter(-1);
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "FailAfter=" << FailAfter
                                   << " index " << I;
  }
}

// When not even the first submit succeeds, parallelFor must fall back
// to the serial loop on the calling thread — still running all N
// bodies, and still propagating a body exception directly.
TEST(ThreadPoolTest, ParallelForSerialFallbackWhenNoTaskSubmitted) {
  constexpr size_t N = 32;
  std::vector<std::atomic<int>> Hits(N);
  std::thread::id Caller = std::this_thread::get_id();
  ThreadPool::debugFailSubmitAfter(0);
  parallelFor(4, N, [&](size_t I) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    ++Hits[I];
  });
  ThreadPool::debugFailSubmitAfter(-1);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;

  ThreadPool::debugFailSubmitAfter(0);
  bool Caught = false;
  try {
    parallelFor(4, 8, [](size_t I) {
      if (I == 3)
        throw std::runtime_error("body failed");
    });
  } catch (const std::runtime_error &E) {
    Caught = true;
    EXPECT_STREQ(E.what(), "body failed");
  }
  ThreadPool::debugFailSubmitAfter(-1);
  EXPECT_TRUE(Caught);
}

// A body exception must still reach the caller when dispatch was also
// degraded by a submit failure.
TEST(ThreadPoolTest, ParallelForRethrowsBodyExceptionAfterSubmitFailure) {
  ThreadPool::debugFailSubmitAfter(2);
  bool Caught = false;
  try {
    parallelFor(4, 16, [](size_t I) {
      if (I == 5)
        throw std::runtime_error("body failed");
    });
  } catch (const std::runtime_error &E) {
    Caught = true;
    EXPECT_STREQ(E.what(), "body failed");
  }
  ThreadPool::debugFailSubmitAfter(-1);
  EXPECT_TRUE(Caught);
}

TEST(ErrorTest, ExpectedValueAndError) {
  Expected<int> V(42);
  ASSERT_TRUE(V.hasValue());
  EXPECT_EQ(*V, 42);

  Expected<int> E(Diag("nope", 1, 2));
  EXPECT_FALSE(E.hasValue());
  EXPECT_EQ(E.error().Message, "nope");
  EXPECT_FALSE(static_cast<bool>(E));
}

} // namespace
