//===- tests/FuzzTest.cpp - Differential fuzzing of the pipeline ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over randomly generated MiniC programs. A structured
/// generator produces programs together with a mirror evaluator, so
/// that lexer + parser + sema + codegen + simplify + interpreter are
/// checked end-to-end against an independent reference:
///
///  * the compiled program's exit value equals the mirror's result,
///  * execution is deterministic,
///  * the verifier accepts everything codegen produces,
///  * every static predictor stays within [perfect, 100%] miss.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "predict/Evaluation.h"
#include "support/Rng.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

using namespace bpfree;

namespace {

//===----------------------------------------------------------------------===//
// Expression generator with mirror evaluation
//===----------------------------------------------------------------------===//

/// Variables are fixed slots a..d (int64). The mirror uses the same
/// wraparound semantics as the VM (unsigned arithmetic, arithmetic
/// shift right, C-truncating division).
struct Env {
  int64_t Vars[4] = {0, 0, 0, 0};
};

constexpr const char *VarNames[4] = {"a", "b", "c", "d"};

struct GenExpr {
  enum Kind {
    Lit,
    Var,
    Add,
    Sub,
    MulK, ///< multiply by small literal (avoids overflow blowup)
    DivK, ///< divide by nonzero literal
    RemK, ///< remainder by nonzero literal
    AndOp,
    OrOp,
    XorOp,
    ShlK,
    ShrK,
    Lt,
    Le,
    Gt,
    Ge,
    EqOp,
    NeOp,
    Not,
    Neg,
    LogAnd,
    LogOr,
  } K = Lit;
  int64_t Value = 0; ///< literal / shift amount / divisor / var index
  std::unique_ptr<GenExpr> L, R;

  int64_t eval(const Env &E) const {
    auto U = [](int64_t X) { return static_cast<uint64_t>(X); };
    auto S = [](uint64_t X) { return static_cast<int64_t>(X); };
    switch (K) {
    case Lit:
      return Value;
    case Var:
      return E.Vars[Value];
    case Add:
      return S(U(L->eval(E)) + U(R->eval(E)));
    case Sub:
      return S(U(L->eval(E)) - U(R->eval(E)));
    case MulK:
      return S(U(L->eval(E)) * U(Value));
    case DivK:
      return L->eval(E) / Value; // Value != 0, != -1 by construction
    case RemK:
      return L->eval(E) % Value;
    case AndOp:
      return L->eval(E) & R->eval(E);
    case OrOp:
      return L->eval(E) | R->eval(E);
    case XorOp:
      return L->eval(E) ^ R->eval(E);
    case ShlK:
      return S(U(L->eval(E)) << Value);
    case ShrK:
      return L->eval(E) >> Value;
    case Lt:
      return L->eval(E) < R->eval(E) ? 1 : 0;
    case Le:
      return L->eval(E) <= R->eval(E) ? 1 : 0;
    case Gt:
      return L->eval(E) > R->eval(E) ? 1 : 0;
    case Ge:
      return L->eval(E) >= R->eval(E) ? 1 : 0;
    case EqOp:
      return L->eval(E) == R->eval(E) ? 1 : 0;
    case NeOp:
      return L->eval(E) != R->eval(E) ? 1 : 0;
    case Not:
      return L->eval(E) == 0 ? 1 : 0;
    case Neg:
      return S(~U(L->eval(E)) + 1);
    case LogAnd:
      return (L->eval(E) != 0 && R->eval(E) != 0) ? 1 : 0;
    case LogOr:
      return (L->eval(E) != 0 || R->eval(E) != 0) ? 1 : 0;
    }
    return 0;
  }

  void render(std::ostringstream &OS) const {
    auto Bin = [&](const char *Op) {
      OS << '(';
      L->render(OS);
      OS << ' ' << Op << ' ';
      R->render(OS);
      OS << ')';
    };
    switch (K) {
    case Lit:
      if (Value < 0) {
        OS << "(0 - " << -Value << ')';
      } else {
        OS << Value;
      }
      return;
    case Var:
      OS << VarNames[Value];
      return;
    case Add:
      return Bin("+");
    case Sub:
      return Bin("-");
    case MulK:
      OS << '(';
      L->render(OS);
      OS << " * " << Value << ')';
      return;
    case DivK:
      OS << '(';
      L->render(OS);
      OS << " / " << Value << ')';
      return;
    case RemK:
      OS << '(';
      L->render(OS);
      OS << " % " << Value << ')';
      return;
    case AndOp:
      return Bin("&");
    case OrOp:
      return Bin("|");
    case XorOp:
      return Bin("^");
    case ShlK:
      OS << '(';
      L->render(OS);
      OS << " << " << Value << ')';
      return;
    case ShrK:
      OS << '(';
      L->render(OS);
      OS << " >> " << Value << ')';
      return;
    case Lt:
      return Bin("<");
    case Le:
      return Bin("<=");
    case Gt:
      return Bin(">");
    case Ge:
      return Bin(">=");
    case EqOp:
      return Bin("==");
    case NeOp:
      return Bin("!=");
    case Not:
      OS << "(!";
      L->render(OS);
      OS << ')';
      return;
    case Neg:
      OS << "(-";
      L->render(OS);
      OS << ')';
      return;
    case LogAnd:
      return Bin("&&");
    case LogOr:
      return Bin("||");
    }
  }
};

std::unique_ptr<GenExpr> genExpr(Rng &R, int Depth) {
  auto E = std::make_unique<GenExpr>();
  if (Depth <= 0 || R.chance(0.25)) {
    if (R.chance(0.5)) {
      E->K = GenExpr::Lit;
      E->Value = R.range(-100, 100);
    } else {
      E->K = GenExpr::Var;
      E->Value = static_cast<int64_t>(R.below(4));
    }
    return E;
  }
  static const GenExpr::Kind Binary[] = {
      GenExpr::Add,  GenExpr::Sub,  GenExpr::AndOp,  GenExpr::OrOp,
      GenExpr::XorOp, GenExpr::Lt,  GenExpr::Le,     GenExpr::Gt,
      GenExpr::Ge,   GenExpr::EqOp, GenExpr::NeOp,   GenExpr::LogAnd,
      GenExpr::LogOr};
  static const GenExpr::Kind UnaryK[] = {GenExpr::Not, GenExpr::Neg};
  static const GenExpr::Kind Scaled[] = {GenExpr::MulK, GenExpr::DivK,
                                         GenExpr::RemK, GenExpr::ShlK,
                                         GenExpr::ShrK};
  double Pick = R.unit();
  if (Pick < 0.6) {
    E->K = Binary[R.below(std::size(Binary))];
    E->L = genExpr(R, Depth - 1);
    E->R = genExpr(R, Depth - 1);
  } else if (Pick < 0.8) {
    E->K = Scaled[R.below(std::size(Scaled))];
    E->L = genExpr(R, Depth - 1);
    switch (E->K) {
    case GenExpr::MulK:
      E->Value = R.range(-7, 7);
      if (E->Value == 0)
        E->Value = 3;
      break;
    case GenExpr::DivK:
    case GenExpr::RemK:
      E->Value = R.range(2, 17); // positive: no -1 or 0 divisors
      break;
    default:
      E->Value = R.range(0, 8);
      break;
    }
  } else {
    E->K = UnaryK[R.below(std::size(UnaryK))];
    E->L = genExpr(R, Depth - 1);
  }
  return E;
}

//===----------------------------------------------------------------------===//
// Statement generator with mirror execution
//===----------------------------------------------------------------------===//

struct GenStmt {
  enum Kind { Assign, AddAssign, IfElse, FixedLoop } K = Assign;
  int VarIdx = 0;
  std::unique_ptr<GenExpr> E;
  std::vector<GenStmt> Then, Else; ///< IfElse branches / loop body
  int TripCount = 0;

  void run(Env &Environment) const {
    auto U = [](int64_t X) { return static_cast<uint64_t>(X); };
    switch (K) {
    case Assign:
      Environment.Vars[VarIdx] = E->eval(Environment);
      return;
    case AddAssign:
      Environment.Vars[VarIdx] = static_cast<int64_t>(
          U(Environment.Vars[VarIdx]) + U(E->eval(Environment)));
      return;
    case IfElse:
      if (E->eval(Environment) != 0) {
        for (const GenStmt &S : Then)
          S.run(Environment);
      } else {
        for (const GenStmt &S : Else)
          S.run(Environment);
      }
      return;
    case FixedLoop:
      for (int I = 0; I < TripCount; ++I) {
        for (const GenStmt &S : Then)
          S.run(Environment);
      }
      return;
    }
  }

  void render(std::ostringstream &OS, int Indent, int &LoopId) const {
    std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    switch (K) {
    case Assign:
      OS << Pad << VarNames[VarIdx] << " = ";
      E->render(OS);
      OS << ";\n";
      return;
    case AddAssign:
      OS << Pad << VarNames[VarIdx] << " += ";
      E->render(OS);
      OS << ";\n";
      return;
    case IfElse:
      OS << Pad << "if (";
      E->render(OS);
      OS << ") {\n";
      for (const GenStmt &S : Then)
        S.render(OS, Indent + 1, LoopId);
      OS << Pad << "} else {\n";
      for (const GenStmt &S : Else)
        S.render(OS, Indent + 1, LoopId);
      OS << Pad << "}\n";
      return;
    case FixedLoop: {
      std::string Iter = "it" + std::to_string(LoopId++);
      OS << Pad << "{ int " << Iter << ";\n";
      OS << Pad << "for (" << Iter << " = 0; " << Iter << " < "
         << TripCount << "; " << Iter << " = " << Iter << " + 1) {\n";
      for (const GenStmt &S : Then)
        S.render(OS, Indent + 1, LoopId);
      OS << Pad << "} }\n";
      return;
    }
    }
  }
};

std::vector<GenStmt> genStmts(Rng &R, int Depth, size_t Count) {
  std::vector<GenStmt> Out;
  for (size_t I = 0; I < Count; ++I) {
    GenStmt S;
    double Pick = R.unit();
    if (Depth > 0 && Pick < 0.18) {
      S.K = GenStmt::IfElse;
      S.E = genExpr(R, 2);
      S.Then = genStmts(R, Depth - 1, 1 + R.below(2));
      S.Else = genStmts(R, Depth - 1, 1 + R.below(2));
    } else if (Depth > 0 && Pick < 0.33) {
      S.K = GenStmt::FixedLoop;
      S.TripCount = static_cast<int>(1 + R.below(6));
      S.Then = genStmts(R, Depth - 1, 1 + R.below(2));
    } else if (Pick < 0.66) {
      S.K = GenStmt::Assign;
      S.VarIdx = static_cast<int>(R.below(4));
      S.E = genExpr(R, 3);
    } else {
      S.K = GenStmt::AddAssign;
      S.VarIdx = static_cast<int>(R.below(4));
      S.E = genExpr(R, 3);
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

/// One random program: statements + final result expression.
struct GenProgram {
  std::vector<GenStmt> Stmts;
  std::unique_ptr<GenExpr> Result;

  int64_t mirror() const {
    Env E;
    for (const GenStmt &S : Stmts)
      S.run(E);
    return Result->eval(E);
  }

  std::string source() const {
    std::ostringstream OS;
    OS << "int main() {\n  int a = 0; int b = 0; int c = 0; int d = 0;\n";
    int LoopId = 0;
    for (const GenStmt &S : Stmts)
      S.render(OS, 1, LoopId);
    OS << "  return ";
    Result->render(OS);
    OS << ";\n}\n";
    return OS.str();
  }
};

GenProgram genProgram(Rng &R) {
  GenProgram P;
  P.Stmts = genStmts(R, 3, 3 + R.below(6));
  P.Result = genExpr(R, 3);
  return P;
}

//===----------------------------------------------------------------------===//
// The properties
//===----------------------------------------------------------------------===//

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, CompiledMatchesMirror) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 8; ++Trial) {
    GenProgram P = genProgram(R);
    std::string Src = P.source();
    auto M = minic::compile(Src);
    ASSERT_TRUE(M.hasValue())
        << M.error().render() << "\nprogram:\n" << Src;
    Interpreter Interp(**M);
    RunResult Run1 = Interp.run(Dataset());
    ASSERT_TRUE(Run1.ok()) << Run1.TrapMessage << "\nprogram:\n" << Src;
    EXPECT_EQ(Run1.ExitValue, P.mirror()) << "program:\n" << Src;

    RunResult Run2 = Interp.run(Dataset());
    EXPECT_EQ(Run1.ExitValue, Run2.ExitValue);
    EXPECT_EQ(Run1.InstrCount, Run2.InstrCount);
  }
}

TEST_P(FuzzTest, PredictorsBoundedByPerfect) {
  Rng R(GetParam() ^ 0xABCDEF);
  GenProgram P = genProgram(R);
  auto M = minic::compile(P.source());
  ASSERT_TRUE(M.hasValue());
  PredictionContext Ctx(**M);
  EdgeProfile Profile(**M);
  Interpreter Interp(**M);
  RunResult Run = Interp.run(Dataset(), {&Profile});
  ASSERT_TRUE(Run.ok());
  std::vector<BranchStats> Stats = collectBranchStats(Ctx, Profile);

  PerfectPredictor Perfect(Profile);
  Ratio PerfectMiss = evaluatePredictor(Perfect, Stats);
  BallLarusPredictor BL(Ctx);
  LoopRandPredictor LR(Ctx);
  AlwaysTakenPredictor Taken;
  RandomPredictor Rand(1);
  for (const StaticPredictor *Pred :
       std::initializer_list<const StaticPredictor *>{&BL, &LR, &Taken,
                                                      &Rand}) {
    Ratio Miss = evaluatePredictor(*Pred, Stats);
    EXPECT_GE(Miss.Num, PerfectMiss.Num) << Pred->name();
    EXPECT_LE(Miss.Num, Miss.Den) << Pred->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
