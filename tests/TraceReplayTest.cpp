//===- tests/TraceReplayTest.cpp - Trace capture/replay fidelity ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capture-once/replay-many contract has two halves, both tested
/// here. Encoding: the packed chunked stream must round-trip every event
/// exactly — compact words, four-word escapes (large index, large
/// delta), records straddling chunk boundaries, and truncation at the
/// byte cap must never leave a partial record. Semantics: replaying a
/// captured trace against a predictor's direction array must produce
/// histograms bit-identical to the online SequenceCollector observing
/// the same execution — for every predictor the paper's tables need,
/// across the whole workload suite, on both the interpreter's
/// specialized capture path and the virtual observer path (including
/// fault-injected runs, which force the latter).
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/Attribution.h"
#include "ipbc/TraceReplay.h"
#include "support/Metrics.h"
#include "vm/FaultInjector.h"
#include "vm/Interpreter.h"
#include "vm/TraceStore.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <tuple>
#include <vector>

using namespace bpfree;

namespace {

/// One decoded event, for stream comparisons.
using Event = std::tuple<uint32_t, bool, uint64_t>;

/// Unwraps an Expected whose inputs the test constructed to be valid; a
/// rejection is a test failure, reported with the diagnostic.
template <typename T> T take(Expected<T> E) {
  if (!E) {
    ADD_FAILURE() << "unexpected replay rejection: "
                  << E.error().renderWithKind();
    return T{};
  }
  return E.takeValue();
}

std::vector<Event> decodeAll(const BranchTrace &T) {
  std::vector<Event> Events;
  T.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
    Events.emplace_back(Idx, Taken, Delta);
  });
  return Events;
}

/// Any module works for encoding tests: append() is driven directly with
/// synthetic events, bypassing the observer hook.
std::unique_ptr<ir::Module> anyModule() {
  return minic::compileOrDie(findWorkload("treesort")->Source);
}

void expectHistogramsEqual(const SequenceHistogram &A,
                           const SequenceHistogram &B,
                           const std::string &What) {
  EXPECT_EQ(A.NumSequences, B.NumSequences) << What;
  EXPECT_EQ(A.SumLengths, B.SumLengths) << What;
  EXPECT_EQ(A.Breaks, B.Breaks) << What;
  EXPECT_EQ(A.TotalInstrs, B.TotalInstrs) << What;
  EXPECT_EQ(A.BranchExecs, B.BranchExecs) << What;
}

/// The 13 predictors the paper's tables draw on: the three graph
/// predictors, the naive trio, and each heuristic in isolation. Owns the
/// instances; view() yields the pointer list replay and collector take.
struct PredictorPanel {
  PredictorPanel(const PredictionContext &Ctx, const EdgeProfile &Profile)
      : Perfect(Profile), Heuristic(Ctx), LoopRand(Ctx) {
    All = {&LoopRand, &Heuristic, &Perfect, &Taken, &Fallthru, &Random};
    for (HeuristicKind K : paperOrder()) {
      Singles.push_back(std::make_unique<SingleHeuristicPredictor>(Ctx, K));
      All.push_back(Singles.back().get());
    }
  }

  PerfectPredictor Perfect;
  BallLarusPredictor Heuristic;
  LoopRandPredictor LoopRand;
  AlwaysTakenPredictor Taken;
  AlwaysFallthruPredictor Fallthru;
  RandomPredictor Random;
  std::vector<std::unique_ptr<SingleHeuristicPredictor>> Singles;
  std::vector<const StaticPredictor *> All;
};

//===----------------------------------------------------------------------===//
// Encoding round-trips
//===----------------------------------------------------------------------===//

TEST(BranchTrace, CompactRoundTrip) {
  auto M = anyModule();
  BranchTrace T(*M);
  // Small indices and deltas: every event must pack into one word.
  std::vector<Event> Expected;
  uint64_t IC = 0;
  for (uint32_t I = 0; I < 1000; ++I) {
    uint64_t Delta = (I * 7) % 0xFFFE + 1;
    IC += Delta;
    uint32_t Idx = I % 0x7FFF;
    bool Taken = (I % 3) == 0;
    T.append(Idx, Taken, IC);
    Expected.emplace_back(Idx, Taken, Delta);
  }
  T.finalize(IC);
  EXPECT_EQ(T.numEvents(), 1000u);
  EXPECT_EQ(T.numChunks(), 1u);
  EXPECT_FALSE(T.overflowed());
  EXPECT_EQ(decodeAll(T), Expected);
}

TEST(BranchTrace, EscapeLargeIndexAndDelta) {
  auto M = anyModule();
  BranchTrace T(*M);
  // Index above the 15-bit compact limit, delta at the escape threshold
  // (0xFFFF is reserved as the escape marker), and a delta above 32 bits
  // — all must survive the four-word escape exactly.
  std::vector<Event> Expected = {
      {0x8000u, true, 5},                   // index needs escape
      {3u, false, 0xFFFFu},                 // delta at escape threshold
      {0x7FFFu, true, 0xFFFEu},             // largest compact event
      {0xFFFFFFu, false, (1ull << 40) + 9}, // both fields escape
      {1u, true, 1},                        // compact after escapes
  };
  uint64_t IC = 0;
  for (const auto &[Idx, Taken, Delta] : Expected) {
    IC += Delta;
    T.append(Idx, Taken, IC);
  }
  T.finalize(IC);
  EXPECT_EQ(T.numEvents(), Expected.size());
  EXPECT_FALSE(T.overflowed());
  EXPECT_EQ(decodeAll(T), Expected);
}

TEST(BranchTrace, EscapeStraddlesChunkBoundary) {
  auto M = anyModule();
  BranchTrace T(*M);
  // Fill to two words short of the first chunk, then append an escape:
  // its four words must span both chunks and decode as one event.
  std::vector<Event> Expected;
  uint64_t IC = 0;
  for (size_t I = 0; I < BranchTrace::ChunkWords - 2; ++I) {
    IC += 1;
    T.append(7, false, IC);
    Expected.emplace_back(7u, false, 1);
  }
  IC += 1ull << 33;
  T.append(0x123456u, true, IC);
  Expected.emplace_back(0x123456u, true, 1ull << 33);
  IC += 2;
  T.append(9, true, IC);
  Expected.emplace_back(9u, true, 2);
  T.finalize(IC);
  EXPECT_EQ(T.numChunks(), 2u);
  EXPECT_FALSE(T.overflowed());
  EXPECT_EQ(decodeAll(T), Expected);
}

TEST(BranchTrace, OverflowTruncatesAtCap) {
  auto M = anyModule();
  // Cap at exactly one chunk: events past ChunkWords are dropped, the
  // trace flags itself, and the stored prefix still decodes cleanly.
  BranchTrace T(*M, BranchTrace::ChunkWords * 4);
  uint64_t IC = 0;
  const size_t Appended = BranchTrace::ChunkWords + 1000;
  for (size_t I = 0; I < Appended; ++I) {
    IC += 1;
    T.append(1, true, IC);
  }
  EXPECT_TRUE(T.overflowed());
  // Counters freeze at the stored prefix: numEvents() describes the
  // decodable stream, the truncated tail is tallied separately.
  EXPECT_EQ(T.numEvents(), BranchTrace::ChunkWords);
  EXPECT_EQ(T.droppedEvents(), Appended - BranchTrace::ChunkWords);
  EXPECT_EQ(T.bytes(), BranchTrace::ChunkWords * 4);
  EXPECT_EQ(decodeAll(T).size(), BranchTrace::ChunkWords);
  EXPECT_EQ(decodeAll(T).size(), T.numEvents());
}

TEST(BranchTrace, OverflowNeverSplitsEscapeRecord) {
  auto M = anyModule();
  BranchTrace T(*M, BranchTrace::ChunkWords * 4);
  // Two words of room left when a four-word escape arrives: the whole
  // record must be rolled back, not half-written.
  uint64_t IC = 0;
  for (size_t I = 0; I < BranchTrace::ChunkWords - 2; ++I) {
    IC += 1;
    T.append(1, true, IC);
  }
  IC += 1ull << 33;
  T.append(0x99999u, false, IC);
  EXPECT_TRUE(T.overflowed());
  // The rolled-back escape is one dropped event, and the stored count
  // excludes it — numEvents() and the decoded stream agree.
  EXPECT_EQ(T.numEvents(), BranchTrace::ChunkWords - 2);
  EXPECT_EQ(T.droppedEvents(), 1u);
  std::vector<Event> Decoded = decodeAll(T);
  ASSERT_EQ(Decoded.size(), BranchTrace::ChunkWords - 2);
  for (const auto &[Idx, Taken, Delta] : Decoded) {
    EXPECT_EQ(Idx, 1u);
    EXPECT_EQ(Delta, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Runtime validation: unsound traces are rejected, not walked
//===----------------------------------------------------------------------===//

/// Replay guards are runtime checks, not asserts: these tests hold in
/// release builds too, where an assert would compile out and the replay
/// loop would walk a truncated or unterminated stream.
TEST(TraceReplay, RejectsUnfinalizedTrace) {
  auto M = anyModule();
  BranchTrace T(*M);
  T.append(1, true, 1);
  // No finalize(): the trailing sequence has no defined end.
  ASSERT_TRUE(validateTraceForReplay(T).has_value());
  EXPECT_EQ(validateTraceForReplay(T)->Kind, ErrorKind::InvalidArgument);

  Expected<std::vector<uint8_t>> Dirs = perfectDirectionsFromTrace(T);
  ASSERT_FALSE(Dirs.hasValue());
  EXPECT_EQ(Dirs.error().Kind, ErrorKind::InvalidArgument);

  std::vector<uint8_t> Zeros(flatBlockOffsets(*M).back(), 0);
  Expected<SequenceHistogram> H = replayTrace(T, Zeros);
  ASSERT_FALSE(H.hasValue());
  EXPECT_EQ(H.error().Kind, ErrorKind::InvalidArgument);

  Expected<std::vector<SequenceHistogram>> Fused =
      replayTraceFused(T, {&Zeros});
  ASSERT_FALSE(Fused.hasValue());
  EXPECT_EQ(Fused.error().Kind, ErrorKind::InvalidArgument);

  std::vector<std::vector<uint8_t>> DirsVec{Zeros};
  Expected<std::vector<SequenceHistogram>> All =
      replayTraceAll(T, std::move(DirsVec));
  ASSERT_FALSE(All.hasValue());
  EXPECT_EQ(All.error().Kind, ErrorKind::InvalidArgument);
}

TEST(TraceReplay, RejectsOverflowedTrace) {
  auto M = anyModule();
  BranchTrace T(*M, BranchTrace::ChunkWords * 4);
  uint64_t IC = 0;
  for (size_t I = 0; I < BranchTrace::ChunkWords + 5; ++I) {
    IC += 1;
    T.append(1, true, IC);
  }
  T.finalize(IC);
  ASSERT_TRUE(T.overflowed());
  // Finalized but truncated: the stored stream is a prefix, so replay
  // must refuse it — the diagnostic names the stored and dropped counts.
  std::optional<Diag> D = validateTraceForReplay(T);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, ErrorKind::InvalidArgument);
  EXPECT_NE(D->Message.find("truncated"), std::string::npos);

  Expected<std::vector<uint8_t>> Dirs = perfectDirectionsFromTrace(T);
  ASSERT_FALSE(Dirs.hasValue());
  EXPECT_EQ(Dirs.error().Kind, ErrorKind::InvalidArgument);

  std::vector<uint8_t> Zeros(flatBlockOffsets(*M).back(), 0);
  Expected<SequenceHistogram> H = replayTrace(T, Zeros);
  ASSERT_FALSE(H.hasValue());
  EXPECT_EQ(H.error().Kind, ErrorKind::InvalidArgument);
}

TEST(TraceReplay, RejectsMisSizedDirectionArray) {
  auto M = anyModule();
  BranchTrace T(*M);
  T.append(1, true, 1);
  T.finalize(1);
  ASSERT_FALSE(validateTraceForReplay(T).has_value());
  std::vector<uint8_t> Wrong(3, 0); // module has far more blocks
  Expected<SequenceHistogram> H = replayTrace(T, Wrong);
  ASSERT_FALSE(H.hasValue());
  EXPECT_EQ(H.error().Kind, ErrorKind::InvalidArgument);
  Expected<std::vector<SequenceHistogram>> Fused =
      replayTraceFused(T, {&Wrong});
  ASSERT_FALSE(Fused.hasValue());
  EXPECT_EQ(Fused.error().Kind, ErrorKind::InvalidArgument);
}

//===----------------------------------------------------------------------===//
// Replay fidelity against the online collector
//===----------------------------------------------------------------------===//

/// For every suite workload: capture one trace on the interpreter's
/// specialized direct path (profile + trace observers only) and one on
/// the virtual observer path (riding next to the online collector), then
/// check (a) both paths captured the identical event stream, and (b)
/// replaying it reproduces the collector's histogram bit-for-bit for all
/// 13 panel predictors.
TEST(TraceReplay, DifferentialAcrossSuite) {
  for (const Workload &W : workloadSuite()) {
    SCOPED_TRACE(W.Name);
    auto M = minic::compileOrDie(W.Source);
    PredictionContext Ctx(*M);
    EdgeProfile Profile(*M);
    BranchTrace Direct(*M);

    // Direct path: EdgeProfile + BranchTrace is the specialized combo.
    Interpreter Interp(*M);
    RunResult RA = Interp.run(W.Datasets[0], {&Profile, &Direct});
    ASSERT_TRUE(RA.ok()) << RA.TrapMessage;
    Direct.finalize(RA.InstrCount);

    PredictorPanel Panel(Ctx, Profile);

    // Virtual path: the collector forces the generic observer loop, so
    // the ride-along trace exercises onCondBranch.
    SequenceCollector Collector(*M, Panel.All);
    BranchTrace Virtual(*M);
    RunResult RB = Interp.run(W.Datasets[0], {&Collector, &Virtual});
    ASSERT_TRUE(RB.ok()) << RB.TrapMessage;
    ASSERT_EQ(RA.InstrCount, RB.InstrCount);
    Collector.finalize(RB.InstrCount);
    Virtual.finalize(RB.InstrCount);

    EXPECT_EQ(Direct.numEvents(), Virtual.numEvents());
    EXPECT_EQ(decodeAll(Direct), decodeAll(Virtual));

    std::vector<SequenceHistogram> Replayed =
        take(replayTraceAll(Direct, Panel.All));
    ASSERT_EQ(Replayed.size(), Panel.All.size());
    for (size_t P = 0; P < Panel.All.size(); ++P)
      expectHistogramsEqual(Collector.histograms()[P], Replayed[P],
                            W.Name + " / " + Panel.All[P]->name());
  }
}

/// Replay fan-out must be Jobs-invariant: same histograms at 1, 2, and 4
/// workers.
TEST(TraceReplay, JobsSweepBitIdentical) {
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  PredictorPanel Panel(*Run->Ctx, *Run->Profile);
  std::vector<SequenceHistogram> J1 =
      take(replayTraceAll(*Run->Trace, Panel.All, 1));
  for (unsigned Jobs : {2u, 4u}) {
    std::vector<SequenceHistogram> JN =
        take(replayTraceAll(*Run->Trace, Panel.All, Jobs));
    ASSERT_EQ(J1.size(), JN.size());
    for (size_t P = 0; P < J1.size(); ++P)
      expectHistogramsEqual(J1[P], JN[P],
                            Panel.All[P]->name() + " @ Jobs=" +
                                std::to_string(Jobs));
  }
}

/// The trace subsumes the edge profile for IPBC work: the Perfect
/// predictor's directions derived from the trace alone must be
/// byte-identical to those derived from an EdgeProfile of the same
/// execution — including never-executed branches, where both sides fall
/// back to predict-taken (0 >= 0 under the majority-with-ties rule).
TEST(TraceReplay, PerfectDirectionsMatchProfileDerived) {
  for (const char *Name : {"treesort", "lisp", "circuit"}) {
    SCOPED_TRACE(Name);
    RunOptions RO;
    RO.CaptureTrace = true;
    auto Run = runWorkloadOrExit(*findWorkload(Name), 0, {}, RO);
    PerfectPredictor Perfect(*Run->Profile);
    EXPECT_EQ(take(perfectDirectionsFromTrace(*Run->Trace)),
              predictorDirections(*Run->M, Perfect));
  }
}

/// RunOptions::Profile = false is the pure-capture configuration: no
/// EdgeProfile, no BranchStats, same execution. The captured stream must
/// match a profiled capture's exactly, and the direction-array replay
/// overload (Perfect slot from the trace) must reproduce the
/// predictor-based replay bit-for-bit.
TEST(Driver, ProfileOffCapturesTraceOnly) {
  const Workload &W = *findWorkload("treesort");
  RunOptions Profiled;
  Profiled.CaptureTrace = true;
  auto Full = runWorkloadOrExit(W, 0, {}, Profiled);

  RunOptions TraceOnly;
  TraceOnly.CaptureTrace = true;
  TraceOnly.Profile = false;
  auto Bare = runWorkloadOrExit(W, 0, {}, TraceOnly);

  EXPECT_EQ(Bare->Profile, nullptr);
  EXPECT_TRUE(Bare->Stats.empty());
  ASSERT_NE(Bare->Trace, nullptr);
  EXPECT_TRUE(Bare->Trace->finalized());
  EXPECT_EQ(Bare->Result.InstrCount, Full->Result.InstrCount);
  EXPECT_EQ(decodeAll(*Bare->Trace), decodeAll(*Full->Trace));

  PredictorPanel Panel(*Full->Ctx, *Full->Profile);
  std::vector<SequenceHistogram> ViaPredictors =
      take(replayTraceAll(*Full->Trace, Panel.All));
  // Same panel order, but every direction array resolved without the
  // profile — Perfect's from the trace itself.
  std::vector<std::vector<uint8_t>> Dirs;
  Dirs.push_back(predictorDirections(*Bare->M, LoopRandPredictor(*Bare->Ctx)));
  Dirs.push_back(predictorDirections(*Bare->M, BallLarusPredictor(*Bare->Ctx)));
  Dirs.push_back(take(perfectDirectionsFromTrace(*Bare->Trace)));
  Dirs.push_back(predictorDirections(*Bare->M, AlwaysTakenPredictor()));
  Dirs.push_back(predictorDirections(*Bare->M, AlwaysFallthruPredictor()));
  Dirs.push_back(predictorDirections(*Bare->M, RandomPredictor()));
  for (HeuristicKind K : paperOrder())
    Dirs.push_back(
        predictorDirections(*Bare->M, SingleHeuristicPredictor(*Bare->Ctx, K)));
  std::vector<SequenceHistogram> ViaDirs =
      take(replayTraceAll(*Bare->Trace, std::move(Dirs)));
  ASSERT_EQ(ViaPredictors.size(), ViaDirs.size());
  for (size_t P = 0; P < ViaDirs.size(); ++P)
    expectHistogramsEqual(ViaPredictors[P], ViaDirs[P],
                          Panel.All[P]->name() + " via direction arrays");
}

//===----------------------------------------------------------------------===//
// Misprediction attribution (ipbc/Attribution.h) against replay
//===----------------------------------------------------------------------===//

/// The conservation invariant, on real workloads: charging every
/// executed branch to its deciding attribution bucket must account for
/// exactly the mispredicts the replay histogram counts as Breaks — no
/// loss, no double counting — and the histogram side must not depend on
/// the replay fan-out width.
TEST(Attribution, ConservationMatchesReplayBreaks) {
  for (const char *Name : {"treesort", "lisp", "circuit"}) {
    SCOPED_TRACE(Name);
    RunOptions RO;
    RO.CaptureTrace = true;
    RO.Profile = false;
    auto Run = runWorkloadOrExit(*findWorkload(Name), 0, {}, RO);

    ExplainReport R = take(explainTrace(*Run->Ctx, *Run->Trace));
    uint64_t BucketMispredicts = 0;
    uint64_t BucketExecs = 0;
    for (const BucketStats &B : R.Buckets) {
      BucketMispredicts += B.Mispredicts;
      BucketExecs += B.Execs;
    }
    EXPECT_EQ(BucketMispredicts, R.Mispredicts);
    EXPECT_EQ(BucketExecs, R.BranchExecs);

    BallLarusPredictor Heuristic(*Run->Ctx);
    std::vector<uint8_t> Dirs = predictorDirections(*Run->M, Heuristic);
    for (unsigned Jobs : {1u, 2u, 4u}) {
      std::vector<std::vector<uint8_t>> DirsVec{Dirs};
      std::vector<SequenceHistogram> H =
          take(replayTraceAll(*Run->Trace, std::move(DirsVec), Jobs));
      ASSERT_EQ(H.size(), 1u);
      EXPECT_EQ(H[0].Breaks, R.Mispredicts) << "Jobs=" << Jobs;
      EXPECT_EQ(H[0].BranchExecs, R.BranchExecs) << "Jobs=" << Jobs;
      EXPECT_EQ(H[0].TotalInstrs, R.TotalInstrs) << "Jobs=" << Jobs;
    }
  }
}

/// The hotspot list must agree with a brute-force recount straight off
/// the packed event stream: per-site taken/fallthru/miss tallies, the
/// identity of the worst site, and the sort order (miss count
/// descending, flat index ascending on ties).
TEST(Attribution, HotspotsMatchBruteForceRecount) {
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);

  ExplainReport R = take(explainTrace(*Run->Ctx, *Run->Trace));
  ASSERT_FALSE(R.Hotspots.empty());

  BallLarusPredictor Heuristic(*Run->Ctx);
  std::vector<uint8_t> Dirs = predictorDirections(*Run->M, Heuristic);
  struct Tally {
    uint64_t Taken = 0, Fallthru = 0, Miss = 0;
  };
  std::vector<Tally> Counts(Dirs.size());
  Run->Trace->forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    ASSERT_LT(Idx, Counts.size());
    Tally &T = Counts[Idx];
    (Taken ? T.Taken : T.Fallthru) += 1;
    // Direction encoding: DirTaken = 0, DirFallthru = 1.
    const bool PredictedTaken = Dirs[Idx] == 0;
    if (Taken != PredictedTaken)
      T.Miss += 1;
  });

  // Every hotspot entry's counts must match the recount, and the list
  // must contain exactly the sites with at least one miss.
  uint64_t SitesWithMisses = 0;
  for (const Tally &T : Counts)
    SitesWithMisses += T.Miss > 0 ? 1 : 0;
  EXPECT_EQ(R.Hotspots.size(), SitesWithMisses);
  uint64_t PrevMiss = UINT64_MAX;
  uint32_t PrevIdx = 0;
  for (const HotspotEntry &H : R.Hotspots) {
    ASSERT_LT(H.FlatIndex, Counts.size());
    const Tally &T = Counts[H.FlatIndex];
    EXPECT_EQ(H.Taken, T.Taken);
    EXPECT_EQ(H.Fallthru, T.Fallthru);
    EXPECT_EQ(H.Mispredicts, T.Miss);
    EXPECT_EQ(H.Predicted, Dirs[H.FlatIndex] == 0 ? DirTaken : DirFallthru);
    // Sort contract.
    if (H.Mispredicts == PrevMiss)
      EXPECT_GT(H.FlatIndex, PrevIdx);
    else
      EXPECT_LT(H.Mispredicts, PrevMiss);
    PrevMiss = H.Mispredicts;
    PrevIdx = H.FlatIndex;
  }

  // The top entry is the brute-force argmax (lowest index on ties).
  uint32_t BestIdx = 0;
  uint64_t BestMiss = 0;
  for (uint32_t I = 0; I < Counts.size(); ++I) {
    if (Counts[I].Miss > BestMiss) {
      BestMiss = Counts[I].Miss;
      BestIdx = I;
    }
  }
  EXPECT_EQ(R.Hotspots.front().FlatIndex, BestIdx);
  EXPECT_EQ(R.Hotspots.front().Mispredicts, BestMiss);
}

//===----------------------------------------------------------------------===//
// Widened replay kernel: wide vs legacy differential, ceiling
//===----------------------------------------------------------------------===//

/// Forces a replay kernel for one scope, restoring the Wide default on
/// exit so test order never matters.
struct KernelGuard {
  explicit KernelGuard(ReplayKernel K) { setReplayKernel(K); }
  ~KernelGuard() { setReplayKernel(ReplayKernel::Wide); }
};

/// For every suite workload: one capture, then the full 13-predictor
/// panel replayed under the wide kernel and under the legacy Narrow32
/// kernel — histograms must be bit-identical. This is the differential
/// that licenses keeping only the wide kernel on the default path.
TEST(TraceReplay, WideVsNarrowAcrossSuite) {
  for (const Workload &W : workloadSuite()) {
    SCOPED_TRACE(W.Name);
    RunOptions RO;
    RO.CaptureTrace = true;
    auto Run = runWorkloadOrExit(W, 0, {}, RO);
    PredictorPanel Panel(*Run->Ctx, *Run->Profile);
    std::vector<SequenceHistogram> Wide, Narrow;
    {
      KernelGuard G(ReplayKernel::Wide);
      Wide = take(replayTraceAll(*Run->Trace, Panel.All, 1));
    }
    {
      KernelGuard G(ReplayKernel::Narrow32);
      Narrow = take(replayTraceAll(*Run->Trace, Panel.All, 1));
    }
    ASSERT_EQ(Wide.size(), Narrow.size());
    for (size_t P = 0; P < Wide.size(); ++P)
      expectHistogramsEqual(Wide[P], Narrow[P],
                            W.Name + " / " + Panel.All[P]->name());
  }
}

/// Synthetic panels spanning every row width the kernel selects (1, 2,
/// and 4 words) and both sides of each width boundary: lane J is the
/// perfect direction array with a J-dependent stride of branches
/// flipped, so lanes are pairwise distinct and every lane index is
/// load-bearing. Each panel must replay bit-identically under the wide
/// and legacy kernels, and spot-checked lanes must match the
/// single-predictor replayTrace ground truth.
TEST(TraceReplay, WideKernelWidthSweep) {
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  std::vector<uint8_t> Perfect =
      take(perfectDirectionsFromTrace(*Run->Trace));

  auto makePanel = [&](size_t P) {
    std::vector<std::vector<uint8_t>> Dirs(P, Perfect);
    for (size_t J = 0; J < P; ++J)
      for (size_t B = J; B < Dirs[J].size(); B += 2 + J % 9)
        if (Dirs[J][B] != 0xFF)
          Dirs[J][B] ^= 1;
    return Dirs;
  };

  // 33 crosses the old u32-row ceiling; 64/65 and 128/129 straddle the
  // 1->2 and 2->4 word boundaries; 256 is the new ceiling itself.
  for (size_t P : {33u, 64u, 65u, 128u, 129u, 256u}) {
    SCOPED_TRACE("panel " + std::to_string(P));
    std::vector<std::vector<uint8_t>> Dirs = makePanel(P);
    std::vector<const std::vector<uint8_t> *> Ptrs;
    for (const auto &D : Dirs)
      Ptrs.push_back(&D);
    std::vector<SequenceHistogram> Wide, Narrow;
    {
      KernelGuard G(ReplayKernel::Wide);
      Wide = take(replayTraceFused(*Run->Trace, Ptrs));
    }
    {
      KernelGuard G(ReplayKernel::Narrow32);
      Narrow = take(replayTraceFused(*Run->Trace, Ptrs));
    }
    ASSERT_EQ(Wide.size(), P);
    ASSERT_EQ(Narrow.size(), P);
    for (size_t J = 0; J < P; ++J)
      expectHistogramsEqual(Wide[J], Narrow[J],
                            "lane " + std::to_string(J));
    // First, last, and one mid-word lane against the unfused kernel.
    for (size_t J : {size_t(0), P / 2, P - 1}) {
      SequenceHistogram Single = take(replayTrace(*Run->Trace, Dirs[J]));
      expectHistogramsEqual(Wide[J], Single,
                            "lane " + std::to_string(J) + " vs single");
    }
  }
}

/// Fan-out above the old 32-predictor ceiling must stay Jobs-invariant:
/// a 64-lane panel split across 1, 2, 4, and 7 workers (7 slices a
/// 64-lane panel into unequal groups) yields identical histograms.
TEST(TraceReplay, WidePanelJobsSweepBitIdentical) {
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  std::vector<uint8_t> Perfect =
      take(perfectDirectionsFromTrace(*Run->Trace));
  std::vector<std::vector<uint8_t>> Dirs(64, Perfect);
  for (size_t J = 0; J < Dirs.size(); ++J)
    for (size_t B = J; B < Dirs[J].size(); B += 3 + J % 7)
      if (Dirs[J][B] != 0xFF)
        Dirs[J][B] ^= 1;

  std::vector<std::vector<uint8_t>> D1 = Dirs;
  std::vector<SequenceHistogram> J1 =
      take(replayTraceAll(*Run->Trace, std::move(D1), 1));
  for (unsigned Jobs : {2u, 4u, 7u}) {
    std::vector<std::vector<uint8_t>> DN = Dirs;
    std::vector<SequenceHistogram> JN =
        take(replayTraceAll(*Run->Trace, std::move(DN), Jobs));
    ASSERT_EQ(J1.size(), JN.size());
    for (size_t P = 0; P < J1.size(); ++P)
      expectHistogramsEqual(J1[P], JN[P],
                            "lane " + std::to_string(P) + " @ Jobs=" +
                                std::to_string(Jobs));
  }
}

/// Store-backed replay must honor the kernel knob the same way: the
/// streamed words are the resident words, so wide and narrow disk
/// replays of a >32-lane panel are bit-identical to each other and to
/// the resident wide replay.
TEST(TraceReplay, StoreReplayWideVsNarrow) {
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  std::vector<uint8_t> Perfect =
      take(perfectDirectionsFromTrace(*Run->Trace));
  std::vector<std::vector<uint8_t>> Dirs(48, Perfect);
  for (size_t J = 0; J < Dirs.size(); ++J)
    for (size_t B = J; B < Dirs[J].size(); B += 2 + J % 5)
      if (Dirs[J][B] != 0xFF)
        Dirs[J][B] ^= 1;

  const std::string Path = ::testing::TempDir() + "bpfree_wide_replay";
  ASSERT_FALSE(writeTraceFile(*Run->Trace, Path).has_value());
  TraceStoreReader Reader;
  ASSERT_FALSE(Reader.open(Path).has_value());

  std::vector<std::vector<uint8_t>> DR = Dirs;
  std::vector<SequenceHistogram> Resident =
      take(replayTraceAll(*Run->Trace, std::move(DR), 1));
  for (ReplayKernel K : {ReplayKernel::Wide, ReplayKernel::Narrow32}) {
    KernelGuard G(K);
    std::vector<std::vector<uint8_t>> DS = Dirs;
    std::vector<SequenceHistogram> Disk =
        take(replayStoreAll(Reader, std::move(DS), 1));
    ASSERT_EQ(Disk.size(), Resident.size());
    for (size_t P = 0; P < Disk.size(); ++P)
      expectHistogramsEqual(
          Resident[P], Disk[P],
          std::string(K == ReplayKernel::Wide ? "wide" : "narrow") +
              " disk lane " + std::to_string(P));
  }
  std::remove(Path.c_str());
}

/// The predictor ceiling is a structured contract, not an assert: a
/// panel one past MaxReplayPredictors is rejected with InvalidArgument
/// (counted under "replay.rejected") by every fused entry point, for
/// every Jobs value — acceptance is decided on the TOTAL panel size
/// before the group split — while a panel of exactly the ceiling
/// replays correctly. 256 >= the issue's 128-predictor floor.
TEST(TraceReplay, PanelCeilingRejectedStructurally) {
  static_assert(MaxReplayPredictors >= 128,
                "widened kernel must lift the panel ceiling to >=128");
  auto M = anyModule();
  BranchTrace T(*M);
  uint64_t IC = 0;
  for (uint32_t I = 0; I < 64; ++I) {
    IC += 3;
    T.append(I % 7, (I % 3) == 0, IC);
  }
  T.finalize(IC);

  metrics::setEnabled(true);
  metrics::Counter &Rejected = metrics::counter("replay.rejected");
  const std::vector<uint8_t> Zeros(flatBlockOffsets(*M).back(), 0);

  // One past the ceiling: every entry point refuses, and the diagnostic
  // names the limit so callers know how to split.
  const size_t Over = MaxReplayPredictors + 1;
  {
    std::vector<const std::vector<uint8_t> *> Ptrs(Over, &Zeros);
    const uint64_t Before = Rejected.value();
    Expected<std::vector<SequenceHistogram>> R = replayTraceFused(T, Ptrs);
    ASSERT_FALSE(R.hasValue());
    EXPECT_EQ(R.error().Kind, ErrorKind::InvalidArgument);
    EXPECT_NE(R.error().Message.find("256"), std::string::npos);
    EXPECT_GT(Rejected.value(), Before);
  }
  for (unsigned Jobs : {1u, 4u}) {
    std::vector<std::vector<uint8_t>> Dirs(Over, Zeros);
    Expected<std::vector<SequenceHistogram>> R =
        replayTraceAll(T, std::move(Dirs), Jobs);
    ASSERT_FALSE(R.hasValue());
    EXPECT_EQ(R.error().Kind, ErrorKind::InvalidArgument) << Jobs;
  }
  {
    AlwaysTakenPredictor Taken;
    std::vector<const StaticPredictor *> Preds(Over, &Taken);
    Expected<std::vector<SequenceHistogram>> R = replayTraceAll(T, Preds);
    ASSERT_FALSE(R.hasValue());
    EXPECT_EQ(R.error().Kind, ErrorKind::InvalidArgument);
  }
  metrics::setEnabled(false);

  // Exactly the ceiling: accepted, and every lane's histogram matches
  // the single-predictor ground truth for its direction array.
  std::vector<std::vector<uint8_t>> Max(MaxReplayPredictors, Zeros);
  for (size_t J = 0; J < Max.size(); ++J)
    Max[J][J % Max[J].size()] ^= 1;
  std::vector<const std::vector<uint8_t> *> Ptrs;
  for (const auto &D : Max)
    Ptrs.push_back(&D);
  std::vector<SequenceHistogram> Hists = take(replayTraceFused(T, Ptrs));
  ASSERT_EQ(Hists.size(), MaxReplayPredictors);
  for (size_t J : {size_t(0), size_t(128), MaxReplayPredictors - 1}) {
    SequenceHistogram Single = take(replayTrace(T, Max[J]));
    expectHistogramsEqual(Hists[J], Single,
                          "ceiling lane " + std::to_string(J));
  }
}

/// The oversized-store rejection mirrors the resident one.
TEST(TraceReplay, StorePanelCeilingRejected) {
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  const std::string Path = ::testing::TempDir() + "bpfree_ceiling_store";
  ASSERT_FALSE(writeTraceFile(*Run->Trace, Path).has_value());
  TraceStoreReader Reader;
  ASSERT_FALSE(Reader.open(Path).has_value());
  std::vector<uint8_t> Zeros(flatBlockOffsets(*Run->M).back(), 0);
  std::vector<std::vector<uint8_t>> Dirs(MaxReplayPredictors + 1, Zeros);
  Expected<std::vector<SequenceHistogram>> R =
      replayStoreAll(Reader, std::move(Dirs), 2);
  ASSERT_FALSE(R.hasValue());
  EXPECT_EQ(R.error().Kind, ErrorKind::InvalidArgument);
  std::remove(Path.c_str());
}

/// Fault-injected runs use the instruction-observer interpreter loop and
/// end mid-execution; the trace captured alongside must still replay to
/// the collector's histograms, whatever prefix the fault left.
TEST(TraceReplay, FaultInjectedRunsStayBitIdentical) {
  for (const char *Name : {"treesort", "circuit"}) {
    for (uint64_t Seed : {1ull, 7ull, 42ull}) {
      SCOPED_TRACE(std::string(Name) + " seed " + std::to_string(Seed));
      const Workload &W = *findWorkload(Name);
      auto M = minic::compileOrDie(W.Source);
      PredictionContext Ctx(*M);
      EdgeProfile Profile(*M);

      BallLarusPredictor Heuristic(Ctx);
      LoopRandPredictor LoopRand(Ctx);
      RandomPredictor Random;
      std::vector<const StaticPredictor *> Preds{&LoopRand, &Heuristic,
                                                 &Random};
      SequenceCollector Collector(*M, Preds);
      BranchTrace Trace(*M);
      FaultInjector Injector(FaultPlan::fromSeed(Seed, 10'000, 2'000'000));

      Interpreter Interp(*M);
      RunResult R =
          Interp.run(W.Datasets[0], {&Collector, &Trace, &Injector});
      // The run may trap, exhaust a budget, or survive, depending on the
      // seeded action; the differential contract holds either way, over
      // however many instructions actually executed.
      Collector.finalize(R.InstrCount);
      Trace.finalize(R.InstrCount);

      std::vector<SequenceHistogram> Replayed =
          take(replayTraceAll(Trace, Preds));
      for (size_t P = 0; P < Preds.size(); ++P)
        expectHistogramsEqual(Collector.histograms()[P], Replayed[P],
                              Preds[P]->name());
    }
  }
}

} // namespace
