//===- tests/CharacterizeTest.cpp - Predictability observatory ------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evidence for the characterization pass (ipbc/Characterize.h) in four
/// layers: known-entropy synthetic streams whose statistics have closed
/// forms (all-taken, strict alternation, seeded coin flips), a naive
/// sequential oracle differential on a multi-chunk trace with a
/// shard-straddling escape record, the determinism contract (reports
/// bit-identical — doubles included — across Jobs values and for
/// resident vs. disk-backed sources), and class-count conservation on
/// real workloads including the adversarial H2P frontier. The
/// bpfree-char-v1 document is round-tripped and then tampered with in
/// every dimension the validator claims to check.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/Characterize.h"
#include "ipbc/DynamicReplay.h"
#include "predict/Provenance.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "vm/TraceStore.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

using namespace bpfree;

namespace {

std::unique_ptr<ir::Module> anyModule() {
  return minic::compileOrDie(findWorkload("treesort")->Source);
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "bpfree_char_" + Name;
}

/// Flat indices of the module's conditional branches — the only sites a
/// real trace can contain, and the only sites the provenance join can
/// resolve. Synthetic traces must draw from this set.
std::vector<uint32_t> branchSites(const PredictionContext &Ctx) {
  BallLarusPredictor P(Ctx);
  ProvenanceMap Prov(Ctx.getModule());
  P.setProvenanceSink(&Prov);
  predictorDirections(Ctx.getModule(), P);
  P.setProvenanceSink(nullptr);
  std::vector<uint32_t> Sites;
  for (uint32_t I = 0; I < Prov.numSlots(); ++I)
    if (Prov.get(I))
      Sites.push_back(I);
  return Sites;
}

const SiteCharacter *findSite(const CharReport &R, uint32_t Flat) {
  for (const SiteCharacter &S : R.Sites)
    if (S.FlatIndex == Flat)
      return &S;
  return nullptr;
}

void expectReportsIdentical(const CharReport &A, const CharReport &B,
                            const std::string &What) {
  EXPECT_EQ(A.TotalInstrs, B.TotalInstrs) << What;
  EXPECT_EQ(A.BranchExecs, B.BranchExecs) << What;
  EXPECT_EQ(A.NumSites, B.NumSites) << What;
  EXPECT_EQ(A.Shards, B.Shards) << What;
  for (unsigned C = 0; C < NumBranchClasses; ++C) {
    EXPECT_EQ(A.ClassSites[C], B.ClassSites[C]) << What;
    EXPECT_EQ(A.ClassExecs[C], B.ClassExecs[C]) << What;
  }
  ASSERT_EQ(A.Sites.size(), B.Sites.size()) << What;
  for (size_t I = 0; I < A.Sites.size(); ++I) {
    const SiteCharacter &X = A.Sites[I], &Y = B.Sites[I];
    EXPECT_EQ(X.FlatIndex, Y.FlatIndex) << What;
    EXPECT_EQ(X.Execs, Y.Execs) << What;
    EXPECT_EQ(X.Taken, Y.Taken) << What;
    EXPECT_EQ(X.Transitions, Y.Transitions) << What;
    EXPECT_EQ(X.MaxRun, Y.MaxRun) << What;
    // Bit-identical, not approximately equal: the doubles are part of
    // the determinism contract.
    EXPECT_EQ(X.Entropy, Y.Entropy) << What << " site " << X.FlatIndex;
    for (unsigned D = 0; D < NumCharDepths; ++D)
      EXPECT_EQ(X.CondEntropy[D], Y.CondEntropy[D])
          << What << " site " << X.FlatIndex << " depth " << D;
    EXPECT_EQ(X.PredictBits, Y.PredictBits) << What;
    EXPECT_EQ(X.Class, Y.Class) << What;
    EXPECT_EQ(X.Function, Y.Function) << What;
    EXPECT_EQ(X.Block, Y.Block) << What;
    EXPECT_EQ(X.Bucket, Y.Bucket) << What;
  }
  ASSERT_EQ(A.Predictors.size(), B.Predictors.size()) << What;
  for (size_t I = 0; I < A.Predictors.size(); ++I) {
    const ClassPredictorRow &X = A.Predictors[I], &Y = B.Predictors[I];
    EXPECT_EQ(X.Name, Y.Name) << What;
    EXPECT_EQ(X.Mispredicts, Y.Mispredicts) << What;
    for (unsigned C = 0; C < NumBranchClasses; ++C) {
      EXPECT_EQ(X.Classes[C].Sites, Y.Classes[C].Sites) << What;
      EXPECT_EQ(X.Classes[C].Execs, Y.Classes[C].Execs) << What;
      EXPECT_EQ(X.Classes[C].Mispredicts, Y.Classes[C].Mispredicts) << What;
    }
  }
}

void expectConservation(const CharReport &R, const std::string &What) {
  uint64_t Sites = 0, Execs = 0;
  for (unsigned C = 0; C < NumBranchClasses; ++C) {
    Sites += R.ClassSites[C];
    Execs += R.ClassExecs[C];
  }
  EXPECT_EQ(Sites, R.NumSites) << What;
  EXPECT_EQ(Execs, R.BranchExecs) << What;
  for (const ClassPredictorRow &Row : R.Predictors) {
    uint64_t RowSites = 0, RowExecs = 0, RowMiss = 0;
    for (unsigned C = 0; C < NumBranchClasses; ++C) {
      RowSites += Row.Classes[C].Sites;
      RowExecs += Row.Classes[C].Execs;
      RowMiss += Row.Classes[C].Mispredicts;
    }
    EXPECT_EQ(RowSites, R.NumSites) << What << " " << Row.Name;
    EXPECT_EQ(RowExecs, R.BranchExecs) << What << " " << Row.Name;
    EXPECT_EQ(RowMiss, Row.Mispredicts) << What << " " << Row.Name;
  }
}

//===----------------------------------------------------------------------===//
// Known-entropy streams
//===----------------------------------------------------------------------===//

TEST(Characterize, AllTakenSiteHasZeroEntropy) {
  auto M = anyModule();
  PredictionContext Ctx(*M);
  const std::vector<uint32_t> Sites = branchSites(Ctx);
  ASSERT_GE(Sites.size(), 3u);

  BranchTrace T(*M);
  uint64_t IC = 0;
  for (int I = 0; I < 5000; ++I) {
    IC += 3;
    T.append(Sites[0], true, IC);
  }
  T.finalize(IC + 1);

  auto R = characterizeTrace(Ctx, T);
  ASSERT_TRUE(R.hasValue()) << R.error().render();
  ASSERT_EQ(R->NumSites, 1u);
  const SiteCharacter *S = findSite(*R, Sites[0]);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Execs, 5000u);
  EXPECT_EQ(S->Taken, 5000u);
  EXPECT_EQ(S->Transitions, 0u);
  EXPECT_EQ(S->MaxRun, 5000u);
  EXPECT_EQ(S->Entropy, 0.0);
  for (unsigned D = 0; D < NumCharDepths; ++D)
    EXPECT_EQ(S->CondEntropy[D], 0.0);
  EXPECT_EQ(S->PredictBits, 0.0);
  EXPECT_EQ(S->Class, BranchClass::Easy);
  EXPECT_FALSE(S->Function.empty());
  EXPECT_FALSE(S->Bucket.empty());
}

TEST(Characterize, AlternationIsEasyDespiteFullMarginalEntropy) {
  auto M = anyModule();
  PredictionContext Ctx(*M);
  const std::vector<uint32_t> Sites = branchSites(Ctx);

  BranchTrace T(*M);
  uint64_t IC = 0;
  for (int I = 0; I < 5000; ++I) {
    IC += 2;
    T.append(Sites[1], I % 2 == 0, IC);
  }
  T.finalize(IC + 1);

  auto R = characterizeTrace(Ctx, T);
  ASSERT_TRUE(R.hasValue()) << R.error().render();
  const SiteCharacter *S = findSite(*R, Sites[1]);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Taken, 2500u);
  EXPECT_EQ(S->Transitions, 4999u);
  EXPECT_EQ(S->MaxRun, 1u);
  // A strict alternation has a full bit of marginal entropy but ZERO
  // bits left after one outcome of history — classification must see
  // through the marginal.
  EXPECT_NEAR(S->Entropy, 1.0, 1e-12);
  EXPECT_EQ(S->CondEntropy[0], 0.0);
  EXPECT_EQ(S->PredictBits, 0.0);
  EXPECT_EQ(S->Class, BranchClass::Easy);
}

TEST(Characterize, SeededCoinFlipsAreHard) {
  auto M = anyModule();
  PredictionContext Ctx(*M);
  const std::vector<uint32_t> Sites = branchSites(Ctx);

  BranchTrace T(*M);
  Rng R(0x9E3779B97F4A7C15ULL);
  uint64_t IC = 0;
  for (int I = 0; I < 20000; ++I) {
    IC += 2;
    T.append(Sites[2], R.next() & 1, IC);
  }
  T.finalize(IC + 1);

  auto Rep = characterizeTrace(Ctx, T);
  ASSERT_TRUE(Rep.hasValue()) << Rep.error().render();
  const SiteCharacter *S = findSite(*Rep, Sites[2]);
  ASSERT_NE(S, nullptr);
  EXPECT_GT(S->Entropy, 0.99);
  // No depth of the site's own history explains a coin: some sample
  // noise at depth 8 (256 contexts over 20k events), but nowhere near
  // the moderate threshold.
  EXPECT_GT(S->PredictBits, 0.9);
  EXPECT_EQ(S->Class, BranchClass::Hard);
}

TEST(Characterize, RareSitesAreEasyByFiat) {
  auto M = anyModule();
  PredictionContext Ctx(*M);
  const std::vector<uint32_t> Sites = branchSites(Ctx);

  // 20 random outcomes: far below MinExecs, so the class must be Easy
  // no matter how random the stream looks.
  BranchTrace T(*M);
  Rng R(42);
  uint64_t IC = 0;
  for (int I = 0; I < 20; ++I) {
    IC += 2;
    T.append(Sites[0], R.next() & 1, IC);
  }
  T.finalize(IC + 1);

  auto Rep = characterizeTrace(Ctx, T);
  ASSERT_TRUE(Rep.hasValue()) << Rep.error().render();
  const SiteCharacter *S = findSite(*Rep, Sites[0]);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Class, BranchClass::Easy);
}

//===----------------------------------------------------------------------===//
// Sequential-oracle differential
//===----------------------------------------------------------------------===//

/// Synthetic multi-chunk trace over real branch sites, with an escape
/// record straddling the first chunk boundary (the carry case the shard
/// snapshots must attribute to the previous shard).
std::unique_ptr<BranchTrace> straddlingTrace(const ir::Module &M,
                                             const std::vector<uint32_t> &Sites) {
  auto T = std::make_unique<BranchTrace>(M);
  Rng R;
  uint64_t IC = 0;
  for (uint64_t I = 0; I < 65534; ++I) {
    const uint32_t Site = Sites[R.next() % Sites.size()];
    IC += 1 + (R.next() % 50);
    T->append(Site, (R.next() % 100) < (Site % 2 ? 75u : 30u), IC);
  }
  IC += 0x12345; // escape-sized delta: words 65534..65537 straddle
  T->append(Sites[0], true, IC);
  for (uint64_t I = 0; I < 100000; ++I) {
    const uint32_t Site = Sites[R.next() % Sites.size()];
    IC += I % 4000 == 0 ? 0x20000 : 1 + (R.next() % 50);
    T->append(Site, (R.next() % 100) < (Site % 2 ? 75u : 30u), IC);
  }
  T->finalize(IC + 17);
  return T;
}

/// The oracle: one sequential decode into per-site outcome vectors,
/// then textbook statistics over each vector — deliberately different
/// machinery (std::map, bool vectors, a single linear walk) from the
/// sharded pipeline.
struct OracleStats {
  uint64_t Execs = 0, Taken = 0, Transitions = 0, MaxRun = 0;
  double Entropy = 0.0;
  double CondEntropy[NumCharDepths] = {0.0, 0.0, 0.0};
};

std::map<uint32_t, OracleStats> oracleStats(const BranchTrace &T) {
  std::map<uint32_t, std::vector<bool>> Streams;
  T.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    Streams[Idx].push_back(Taken);
  });
  auto H = [](double P) {
    return P <= 0.0 || P >= 1.0
               ? 0.0
               : -(P * std::log2(P) + (1 - P) * std::log2(1 - P));
  };
  std::map<uint32_t, OracleStats> Out;
  for (const auto &[Site, V] : Streams) {
    OracleStats &S = Out[Site];
    S.Execs = V.size();
    uint64_t Run = 0;
    for (size_t I = 0; I < V.size(); ++I) {
      S.Taken += V[I] ? 1 : 0;
      if (I > 0 && V[I] != V[I - 1]) {
        ++S.Transitions;
        S.MaxRun = std::max(S.MaxRun, Run);
        Run = 1;
      } else {
        ++Run;
      }
    }
    S.MaxRun = std::max(S.MaxRun, Run);
    S.Entropy = H(static_cast<double>(S.Taken) / static_cast<double>(S.Execs));
    for (unsigned DI = 0; DI < NumCharDepths; ++DI) {
      const unsigned D = CharDepths[DI];
      if (V.size() <= D)
        continue;
      std::map<uint32_t, std::pair<uint64_t, uint64_t>> Ctxs;
      uint32_t C = 0;
      const uint32_t Mask = (1u << D) - 1;
      for (size_t I = 0; I < V.size(); ++I) {
        if (I >= D) {
          auto &[N, K] = Ctxs[C];
          ++N;
          K += V[I] ? 1 : 0;
        }
        C = ((C << 1) | (V[I] ? 1 : 0)) & Mask;
      }
      const double Total = static_cast<double>(V.size() - D);
      for (const auto &[Ctx, NK] : Ctxs)
        S.CondEntropy[DI] +=
            (static_cast<double>(NK.first) / Total) *
            H(static_cast<double>(NK.second) /
              static_cast<double>(NK.first));
    }
  }
  return Out;
}

TEST(Characterize, MatchesSequentialOracleOnStraddlingTrace) {
  auto M = anyModule();
  PredictionContext Ctx(*M);
  const std::vector<uint32_t> Sites = branchSites(Ctx);
  auto T = straddlingTrace(*M, Sites);

  auto R = characterizeTrace(Ctx, *T, {{}, 4, "", ""});
  ASSERT_TRUE(R.hasValue()) << R.error().render();
  const std::map<uint32_t, OracleStats> Oracle = oracleStats(*T);
  ASSERT_EQ(R->Sites.size(), Oracle.size());
  EXPECT_EQ(R->BranchExecs, T->numEvents());
  for (const SiteCharacter &S : R->Sites) {
    auto It = Oracle.find(S.FlatIndex);
    ASSERT_NE(It, Oracle.end()) << "site " << S.FlatIndex;
    const OracleStats &O = It->second;
    EXPECT_EQ(S.Execs, O.Execs) << "site " << S.FlatIndex;
    EXPECT_EQ(S.Taken, O.Taken) << "site " << S.FlatIndex;
    EXPECT_EQ(S.Transitions, O.Transitions) << "site " << S.FlatIndex;
    EXPECT_EQ(S.MaxRun, O.MaxRun) << "site " << S.FlatIndex;
    EXPECT_NEAR(S.Entropy, O.Entropy, 1e-9) << "site " << S.FlatIndex;
    for (unsigned D = 0; D < NumCharDepths; ++D)
      EXPECT_NEAR(S.CondEntropy[D], O.CondEntropy[D], 1e-9)
          << "site " << S.FlatIndex << " depth " << CharDepths[D];
  }
  expectConservation(*R, "straddling trace");
}

//===----------------------------------------------------------------------===//
// Determinism: Jobs sweep and resident-vs-disk
//===----------------------------------------------------------------------===//

TEST(Characterize, BitIdenticalAcrossJobsAndSources) {
  auto M = anyModule();
  PredictionContext Ctx(*M);
  const std::vector<uint32_t> Sites = branchSites(Ctx);
  auto T = straddlingTrace(*M, Sites);

  auto Ref = characterizeTrace(Ctx, *T, {{}, 1, "", ""});
  ASSERT_TRUE(Ref.hasValue()) << Ref.error().render();
  for (unsigned Jobs : {2u, 4u, 8u}) {
    auto Got = characterizeTrace(Ctx, *T, {{}, Jobs, "", ""});
    ASSERT_TRUE(Got.hasValue()) << Got.error().render();
    expectReportsIdentical(*Ref, *Got, "jobs=" + std::to_string(Jobs));
  }

  const std::string Path = tmpPath("straddle.trace");
  std::remove(Path.c_str());
  ASSERT_FALSE(writeTraceFile(*T, Path).has_value());
  TraceStoreReader Reader;
  ASSERT_FALSE(Reader.open(Path).has_value());
  auto Disk = characterizeStore(Ctx, Reader, {{}, 4, "", ""});
  ASSERT_TRUE(Disk.hasValue()) << Disk.error().render();
  expectReportsIdentical(*Ref, *Disk, "resident vs disk");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Real workloads: conservation, cross-checks, the H2P frontier
//===----------------------------------------------------------------------===//

Expected<std::unique_ptr<WorkloadRun>> captureRun(const char *Name) {
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  return runWorkload(*findWorkload(Name), 0, {}, RO);
}

TEST(Characterize, ConservationHoldsOnRealWorkloads) {
  for (const char *Name : {"treesort", "hashbits", "fsmdispatch"}) {
    auto Run = captureRun(Name);
    ASSERT_TRUE(Run.hasValue()) << Name << ": " << Run.error().render();
    CharOptions CO;
    CO.Workload = Name;
    auto R = characterizeTrace(*(*Run)->Ctx, *(*Run)->Trace, CO);
    ASSERT_TRUE(R.hasValue()) << Name << ": " << R.error().render();
    EXPECT_EQ(R->BranchExecs, (*Run)->Trace->numEvents()) << Name;
    EXPECT_GT(R->NumSites, 5u) << Name;
    expectConservation(*R, Name);
  }
}

TEST(Characterize, DynamicRowsMatchHistogramBreaks) {
  auto Run = captureRun("treesort");
  ASSERT_TRUE(Run.hasValue()) << Run.error().render();
  auto R = characterizeTrace(*(*Run)->Ctx, *(*Run)->Trace, {});
  ASSERT_TRUE(R.hasValue()) << R.error().render();

  const std::vector<DynPredictorConfig> Panel = standardDynamicPanel();
  auto Hists = replayTraceDynamic(*(*Run)->Trace, Panel);
  ASSERT_TRUE(Hists.hasValue()) << Hists.error().render();
  // Rows are: combined static, perfect, then the panel in order. Each
  // dynamic row's total misses must equal the member's histogram
  // Breaks — the same trace, charged two independent ways.
  ASSERT_EQ(R->Predictors.size(), 2 + Panel.size());
  EXPECT_EQ(R->Predictors[0].Kind, "static");
  EXPECT_EQ(R->Predictors[1].Kind, "perfect");
  for (size_t P = 0; P < Panel.size(); ++P) {
    EXPECT_EQ(R->Predictors[2 + P].Name, Panel[P].name());
    EXPECT_EQ(R->Predictors[2 + P].Mispredicts, (*Hists)[P].Breaks)
        << Panel[P].name();
  }
  // Perfect static never beats per-class conservation but always beats
  // the combined heuristic in total.
  EXPECT_LE(R->Predictors[1].Mispredicts, R->Predictors[0].Mispredicts);
}

TEST(Characterize, AdversarialWorkloadsAreH2PAndTreesortIsNot) {
  std::map<std::string, bool> Verdicts;
  for (const char *Name : {"treesort", "hashbits"}) {
    auto Run = captureRun(Name);
    ASSERT_TRUE(Run.hasValue()) << Name << ": " << Run.error().render();
    auto R = characterizeTrace(*(*Run)->Ctx, *(*Run)->Trace, {});
    ASSERT_TRUE(R.hasValue()) << Name << ": " << R.error().render();
    Verdicts[Name] = R->h2p();
  }
  EXPECT_TRUE(Verdicts["hashbits"])
      << "the adversarial hash-bit workload must classify as H2P";
  EXPECT_FALSE(Verdicts["treesort"])
      << "a regular search workload must not classify as H2P";
}

//===----------------------------------------------------------------------===//
// Rejection, rendering, metrics
//===----------------------------------------------------------------------===//

TEST(Characterize, RejectsUnusableRequests) {
  auto M = anyModule();
  PredictionContext Ctx(*M);

  BranchTrace Unfinalized(*M);
  Unfinalized.append(0, true, 10);
  EXPECT_FALSE(characterizeTrace(Ctx, Unfinalized).hasValue());

  // A context over a different module than the trace captured.
  auto M2 = anyModule();
  PredictionContext Ctx2(*M2);
  BranchTrace T(*M);
  T.finalize(100);
  EXPECT_FALSE(characterizeTrace(Ctx2, T).hasValue());
}

TEST(Characterize, EmptyTraceYieldsEmptyReport) {
  auto M = anyModule();
  PredictionContext Ctx(*M);
  BranchTrace T(*M);
  T.finalize(1000);
  auto R = characterizeTrace(Ctx, T);
  ASSERT_TRUE(R.hasValue()) << R.error().render();
  EXPECT_EQ(R->NumSites, 0u);
  EXPECT_EQ(R->BranchExecs, 0u);
  EXPECT_FALSE(R->h2p());
  expectConservation(*R, "empty trace");
}

TEST(Characterize, RendersHeadlineAndTables) {
  auto Run = captureRun("treesort");
  ASSERT_TRUE(Run.hasValue()) << Run.error().render();
  CharOptions CO;
  CO.Workload = "treesort";
  auto R = characterizeTrace(*(*Run)->Ctx, *(*Run)->Trace, CO);
  ASSERT_TRUE(R.hasValue()) << R.error().render();
  const std::string Text = renderCharReport(*R, 5);
  EXPECT_NE(Text.find("characterize: treesort"), std::string::npos);
  EXPECT_NE(Text.find("hard share"), std::string::npos);
  EXPECT_NE(Text.find("moderate"), std::string::npos);
  EXPECT_NE(Text.find("Heuristic"), std::string::npos);
  EXPECT_NE(Text.find("hardest branches"), std::string::npos);
}

TEST(Characterize, BillsReplayCharMetrics) {
  metrics::setEnabled(true);
  metrics::resetAll();
  auto M = anyModule();
  PredictionContext Ctx(*M);
  const std::vector<uint32_t> Sites = branchSites(Ctx);
  BranchTrace T(*M);
  uint64_t IC = 0;
  for (int I = 0; I < 100; ++I) {
    IC += 5;
    T.append(Sites[I % 3], I % 2 == 0, IC);
  }
  T.finalize(IC + 5);
  auto R = characterizeTrace(Ctx, T);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(metrics::counter("replay.char.passes").value(), 1u);
  EXPECT_EQ(metrics::counter("replay.char.events").value(), 100u);
  EXPECT_EQ(metrics::counter("replay.char.sites").value(), 3u);
  EXPECT_GT(metrics::counter("replay.char.shards").value(), 0u);
  metrics::setEnabled(false);
  metrics::resetAll();
}

//===----------------------------------------------------------------------===//
// bpfree-char-v1 round-trip and tamper rejection
//===----------------------------------------------------------------------===//

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void spit(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path);
  Out << Content;
}

/// Writes a tampered copy of \p Doc with the first occurrence of \p From
/// replaced by \p To, and expects the validator to reject it.
void expectTamperRejected(const std::string &Doc, const std::string &From,
                          const std::string &To, const std::string &What) {
  const size_t Pos = Doc.find(From);
  ASSERT_NE(Pos, std::string::npos) << What << ": anchor '" << From
                                    << "' not found";
  std::string Bad = Doc;
  Bad.replace(Pos, From.size(), To);
  const std::string Path = tmpPath("tampered.json");
  spit(Path, Bad);
  EXPECT_FALSE(readCharJson(Path).hasValue()) << What;
  std::remove(Path.c_str());
}

TEST(Characterize, JsonRoundTripsAndRejectsTampering) {
  auto Run = captureRun("treesort");
  ASSERT_TRUE(Run.hasValue()) << Run.error().render();
  CharOptions CO;
  CO.Workload = "treesort";
  CO.Dataset = "ref";
  auto R = characterizeTrace(*(*Run)->Ctx, *(*Run)->Trace, CO);
  ASSERT_TRUE(R.hasValue()) << R.error().render();

  const std::string Path = tmpPath("treesort.char.json");
  ASSERT_TRUE(writeCharJson(*R, Path));
  auto Read = readCharJson(Path);
  ASSERT_TRUE(Read.hasValue()) << Read.error().render();
  EXPECT_EQ(Read->Workload, "treesort");
  EXPECT_EQ(Read->Dataset, "ref");
  expectReportsIdentical(*R, *Read, "json round trip");
  EXPECT_EQ(Read->hardShare(), R->hardShare());
  EXPECT_EQ(Read->h2p(), R->h2p());

  const std::string Doc = slurp(Path);
  expectTamperRejected(Doc, "bpfree-char-v1", "bpfree-char-v0",
                       "wrong schema tag");
  expectTamperRejected(
      Doc, "\"branch_execs\": " + std::to_string(R->BranchExecs),
      "\"branch_execs\": " + std::to_string(R->BranchExecs + 1),
      "class execs no longer sum to the trace total");
  expectTamperRejected(
      Doc, "\"num_sites\": " + std::to_string(R->NumSites),
      "\"num_sites\": " + std::to_string(R->NumSites + 1),
      "class sites no longer sum to the site total");
  expectTamperRejected(Doc, "\"h2p\": " + std::string(R->h2p() ? "true"
                                                               : "false"),
                       "\"h2p\": " + std::string(R->h2p() ? "false" : "true"),
                       "flipped H2P verdict");
  expectTamperRejected(Doc, "\"kind\": \"perfect\"", "\"kind\": \"oracle\"",
                       "unknown predictor kind");
  expectTamperRejected(Doc, "\"name\": \"moderate\"", "\"name\": \"medium\"",
                       "renamed class");
  // The first site's class is recomputable from its own statistics:
  // flipping it must fail even though every sum still balances.
  ASSERT_FALSE(R->Sites.empty());
  const SiteCharacter &S0 = R->Sites.front();
  const std::string ClassKey =
      std::string("\"class\": \"") + branchClassName(S0.Class) + "\"";
  const char *Other =
      S0.Class == BranchClass::Hard ? "easy" : "hard";
  expectTamperRejected(Doc, ClassKey,
                       std::string("\"class\": \"") + Other + "\"",
                       "site class contradicting its statistics");
  std::remove(Path.c_str());
}

TEST(Characterize, JsonTopNTruncatesSitesOnly) {
  auto Run = captureRun("treesort");
  ASSERT_TRUE(Run.hasValue()) << Run.error().render();
  auto R = characterizeTrace(*(*Run)->Ctx, *(*Run)->Trace, {});
  ASSERT_TRUE(R.hasValue()) << R.error().render();
  ASSERT_GT(R->Sites.size(), 3u);

  const std::string Path = tmpPath("top3.char.json");
  ASSERT_TRUE(writeCharJson(*R, Path, 3));
  auto Read = readCharJson(Path);
  // Truncation keeps the document valid: the class and predictor
  // tables are written in full, so conservation still checks out.
  ASSERT_TRUE(Read.hasValue()) << Read.error().render();
  EXPECT_EQ(Read->Sites.size(), 3u);
  EXPECT_EQ(Read->NumSites, R->NumSites);
  expectConservation(*Read, "truncated document");
  std::remove(Path.c_str());
}

} // namespace
