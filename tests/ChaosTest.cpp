//===- tests/ChaosTest.cpp - Fault-injection suite robustness -------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos tests for the recoverable pipeline: deterministic faults are
/// injected into suite workloads mid-run and the suite driver must
/// survive — completing the remaining workloads untouched, recording a
/// structured failure (kind, function, block, backtrace) for each
/// victim, and reproducing the exact same failure when replayed with
/// the same seed.
///
//===----------------------------------------------------------------------===//

#include "vm/FaultInjector.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

using namespace bpfree;

namespace {

/// Injects a trap into one suite workload mid-run; every other workload
/// must finish with results identical to a fault-free suite.
TEST(Chaos, SuiteSurvivesMidRunFault) {
  SuiteReport Baseline = runSuite();
  ASSERT_TRUE(Baseline.allOk()) << Baseline.renderFailures();
  ASSERT_GT(Baseline.Runs.size(), 2u);

  // Victim: a workload from the middle of the suite, fault at the
  // midpoint of its (deterministic) instruction stream.
  const WorkloadRun &VictimRun = *Baseline.Runs[Baseline.Runs.size() / 2];
  const std::string Victim = VictimRun.W->Name;
  const uint64_t MidPoint = VictimRun.Result.InstrCount / 2;
  ASSERT_GT(MidPoint, 0u);

  FaultInjector Injector(FaultPlan::atInstruction(MidPoint));
  SuiteOptions Opts;
  Opts.ExtraObservers =
      [&](const Workload &W) -> std::vector<ExecObserver *> {
    if (W.Name == Victim)
      return {&Injector};
    return {};
  };

  SuiteReport Report = runSuite({}, Opts);
  EXPECT_EQ(Report.Attempted, Baseline.Attempted);
  ASSERT_EQ(Report.Failures.size(), 1u) << Report.renderFailures();
  EXPECT_EQ(Report.Runs.size(), Baseline.Runs.size() - 1);
  EXPECT_TRUE(Injector.fired());

  // The failure record is structured and points into the victim.
  const WorkloadFailure *F = Report.failureFor(Victim);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Kind, ErrorKind::Injected);
  ASSERT_TRUE(F->Trap.has_value());
  EXPECT_FALSE(F->Trap->Function.empty());
  EXPECT_FALSE(F->Trap->Block.empty());
  EXPECT_FALSE(F->Trap->Backtrace.empty());
  EXPECT_EQ(F->Trap->Kind, ErrorKind::Injected);

  // Everyone else is bit-identical to the fault-free baseline.
  std::map<std::string, const WorkloadRun *> ByName;
  for (const auto &Run : Baseline.Runs)
    ByName[Run->W->Name] = Run.get();
  for (const auto &Run : Report.Runs) {
    const WorkloadRun *Ref = ByName[Run->W->Name];
    ASSERT_NE(Ref, nullptr) << Run->W->Name;
    EXPECT_EQ(Run->Result.InstrCount, Ref->Result.InstrCount)
        << Run->W->Name;
    EXPECT_EQ(Run->Result.ExitValue, Ref->Result.ExitValue)
        << Run->W->Name;
    EXPECT_EQ(Run->Result.Output, Ref->Result.Output) << Run->W->Name;
    EXPECT_EQ(Run->Stats.size(), Ref->Stats.size()) << Run->W->Name;
  }
}

/// Injects a fault into *every* workload (cycling through all four
/// actions); the suite must still complete and record every failure
/// accurately instead of dying on the first one.
TEST(Chaos, EveryWorkloadInjectedSuiteStillCompletes) {
  const FaultAction Actions[] = {FaultAction::Trap,
                                 FaultAction::ExhaustBudget,
                                 FaultAction::MemoryFault,
                                 FaultAction::FloodOutput};
  std::map<std::string, std::unique_ptr<FaultInjector>> Injectors;
  size_t Index = 0;
  for (const Workload &W : workloadSuite())
    Injectors[W.Name] = std::make_unique<FaultInjector>(
        FaultPlan::atInstruction(1, Actions[Index++ % 4]));

  SuiteOptions Opts;
  Opts.ExtraObservers =
      [&](const Workload &W) -> std::vector<ExecObserver *> {
    return {Injectors.at(W.Name).get()};
  };

  SuiteReport Report = runSuite({}, Opts);
  EXPECT_EQ(Report.Attempted, workloadSuite().size());
  EXPECT_TRUE(Report.Runs.empty());
  ASSERT_EQ(Report.Failures.size(), Report.Attempted);

  for (const WorkloadFailure &F : Report.Failures) {
    ASSERT_TRUE(Injectors.at(F.Workload)->fired()) << F.Workload;
    const FaultAction Action = Injectors.at(F.Workload)->plan().Action;
    ASSERT_TRUE(F.Trap.has_value()) << F.Workload;
    EXPECT_FALSE(F.Trap->Backtrace.empty()) << F.Workload;
    // Budget exhaustion surfaces through the ordinary budget machinery;
    // the other three are tagged as injected.
    if (Action == FaultAction::ExhaustBudget)
      EXPECT_EQ(F.Kind, ErrorKind::BudgetExceeded) << F.Workload;
    else
      EXPECT_EQ(F.Kind, ErrorKind::Injected) << F.Workload;
  }
}

/// The same seed must reproduce the same failure record bit-for-bit;
/// this is what makes chaos findings actionable.
TEST(Chaos, SeededFaultReplaysBitIdentically) {
  const Workload *W = findWorkload("treesort");
  ASSERT_NE(W, nullptr);

  auto RunOnce = [&](uint64_t Seed, WorkloadFailure &Failure,
                     uint64_t &FiredAt) {
    FaultInjector Injector(FaultPlan::fromSeed(Seed, 1000, 100000));
    RunOptions Opts;
    Opts.ExtraObservers = {&Injector};
    std::unique_ptr<WorkloadRun> Run =
        runWorkloadDetailed(*W, 0, {}, Opts, Failure);
    EXPECT_EQ(Run, nullptr) << "fault must fire inside the window";
    EXPECT_TRUE(Injector.fired());
    FiredAt = Injector.firedAt();
  };

  WorkloadFailure A, B;
  uint64_t FiredA = 0, FiredB = 0;
  RunOnce(0xC0FFEE, A, FiredA);
  RunOnce(0xC0FFEE, B, FiredB);

  EXPECT_EQ(FiredA, FiredB);
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.Message, B.Message);
  ASSERT_TRUE(A.Trap.has_value());
  ASSERT_TRUE(B.Trap.has_value());
  EXPECT_EQ(A.Trap->render(), B.Trap->render());
  EXPECT_EQ(A.Trap->InstrCount, B.Trap->InstrCount);
  EXPECT_EQ(A.Trap->Function, B.Trap->Function);
  EXPECT_EQ(A.Trap->BlockId, B.Trap->BlockId);
}

/// Every action maps onto the right RunStatus / ErrorKind through the
/// full driver path.
TEST(Chaos, ActionsMapToTaxonomy) {
  const Workload *W = findWorkload("treesort");
  ASSERT_NE(W, nullptr);

  struct Case {
    FaultAction Action;
    ErrorKind Kind;
  };
  const Case Cases[] = {
      {FaultAction::Trap, ErrorKind::Injected},
      {FaultAction::ExhaustBudget, ErrorKind::BudgetExceeded},
      {FaultAction::MemoryFault, ErrorKind::Injected},
      {FaultAction::FloodOutput, ErrorKind::Injected},
  };
  for (const Case &C : Cases) {
    FaultInjector Injector(FaultPlan::atInstruction(5000, C.Action));
    RunOptions Opts;
    Opts.ExtraObservers = {&Injector};
    WorkloadFailure Failure;
    std::unique_ptr<WorkloadRun> Run =
        runWorkloadDetailed(*W, 0, {}, Opts, Failure);
    EXPECT_EQ(Run, nullptr) << faultActionName(C.Action);
    EXPECT_EQ(Failure.Kind, C.Kind) << faultActionName(C.Action);
    ASSERT_TRUE(Failure.Trap.has_value()) << faultActionName(C.Action);
    // ExhaustBudget works by draining the real instruction budget, so
    // the trap records the budget, not the injection point.
    if (C.Action != FaultAction::ExhaustBudget) {
      EXPECT_EQ(Failure.Trap->InstrCount, 5000u)
          << faultActionName(C.Action);
    }
  }
}

/// Function-entry and intrinsic triggers hit the requested site, and the
/// trap backtrace shows the full call chain.
TEST(Chaos, StructuredTriggersAndBacktrace) {
  Workload W;
  W.Name = "chaos-mini";
  W.Description = "tiny program for trigger tests";
  W.FloatingPoint = false;
  W.Source = R"MC(
int helper(int x) {
  print_int(x);
  return x + 1;
}
int main() {
  int i = 0;
  int s = 0;
  while (i < 10) {
    s = helper(s);
    i = i + 1;
  }
  return s;
}
)MC";
  Dataset D;
  D.Name = "ref";
  W.Datasets.push_back(D);

  // Fire on the 4th activation of helper.
  {
    FaultInjector Injector(
        FaultPlan::onFunctionEntry("helper", FaultAction::Trap, 3));
    RunOptions Opts;
    Opts.ExtraObservers = {&Injector};
    WorkloadFailure Failure;
    EXPECT_EQ(runWorkloadDetailed(W, 0, {}, Opts, Failure), nullptr);
    ASSERT_TRUE(Failure.Trap.has_value());
    EXPECT_EQ(Failure.Trap->Function, "helper");
    ASSERT_EQ(Failure.Trap->Backtrace.size(), 2u);
    EXPECT_EQ(Failure.Trap->Backtrace[1].Function, "main");
    // helper printed exactly 3 times before dying on the 4th call:
    // "0", "1", "2".
    EXPECT_EQ(Injector.plan().Skip, 3u);
  }

  // Fire on the 2nd print_int intrinsic.
  {
    FaultInjector Injector(FaultPlan::onIntrinsic(
        ir::Intrinsic::PrintInt, FaultAction::Trap, 1));
    RunOptions Opts;
    Opts.ExtraObservers = {&Injector};
    WorkloadFailure Failure;
    EXPECT_EQ(runWorkloadDetailed(W, 0, {}, Opts, Failure), nullptr);
    EXPECT_TRUE(Injector.fired());
    ASSERT_TRUE(Failure.Trap.has_value());
    EXPECT_EQ(Failure.Trap->Function, "helper");
    EXPECT_EQ(Failure.Kind, ErrorKind::Injected);
  }

  // A plan that never matches leaves the run untouched.
  {
    FaultInjector Injector(
        FaultPlan::onFunctionEntry("no_such_function", FaultAction::Trap));
    RunOptions Opts;
    Opts.ExtraObservers = {&Injector};
    WorkloadFailure Failure;
    std::unique_ptr<WorkloadRun> Run =
        runWorkloadDetailed(W, 0, {}, Opts, Failure);
    ASSERT_NE(Run, nullptr) << Failure.render();
    EXPECT_FALSE(Injector.fired());
    EXPECT_EQ(Run->Result.ExitValue, 10);
  }
}

} // namespace
