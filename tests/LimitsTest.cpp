//===- tests/LimitsTest.cpp - RunLimits edge enforcement ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge-exact enforcement of every RunLimits knob: the instruction
/// budget at the boundary, call depth at N vs N+1, output truncation
/// and overflow trapping, null-page / out-of-bounds memory traps with
/// their structured TrapInfo, and the wall-clock watchdog.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/IRBuilder.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

RunResult runSource(const std::string &Src, RunLimits Limits = RunLimits()) {
  auto M = minic::compile(Src);
  EXPECT_TRUE(M.hasValue()) << (M ? "" : M.error().render());
  if (!M)
    return RunResult();
  Interpreter Interp(**M, Limits);
  return Interp.run(Dataset());
}

const char *CountedLoop = R"MC(
int main() {
  int i = 0;
  int s = 0;
  while (i < 50) {
    s = s + i;
    i = i + 1;
  }
  return s;
}
)MC";

TEST(InstructionBudget, ExactBoundary) {
  // Reference run without meaningful limits measures the exact count.
  RunResult Free = runSource(CountedLoop);
  ASSERT_TRUE(Free.ok());
  ASSERT_GT(Free.InstrCount, 0u);

  // A budget of exactly the program length must succeed...
  RunLimits AtLimit;
  AtLimit.MaxInstructions = Free.InstrCount;
  RunResult Exact = runSource(CountedLoop, AtLimit);
  EXPECT_TRUE(Exact.ok()) << Exact.TrapMessage;
  EXPECT_EQ(Exact.InstrCount, Free.InstrCount);

  // ...and one instruction less must fail as BudgetExceeded, with the
  // structured trap info naming where the budget ran out.
  RunLimits OneShort;
  OneShort.MaxInstructions = Free.InstrCount - 1;
  RunResult Cut = runSource(CountedLoop, OneShort);
  EXPECT_EQ(Cut.Status, RunStatus::BudgetExceeded);
  EXPECT_EQ(Cut.errorKind(), ErrorKind::BudgetExceeded);
  ASSERT_TRUE(Cut.Trap.has_value());
  EXPECT_EQ(Cut.Trap->Kind, ErrorKind::BudgetExceeded);
  EXPECT_EQ(Cut.Trap->Function, "main");
  EXPECT_EQ(Cut.Trap->InstrCount, Free.InstrCount - 1);
  EXPECT_FALSE(Cut.Trap->Backtrace.empty());
}

const char *Recurse20 = R"MC(
int f(int n) {
  if (n <= 1) {
    return 1;
  }
  return 1 + f(n - 1);
}
int main() {
  return f(20);
}
)MC";

TEST(CallDepth, BoundaryAtNandNPlus1) {
  // f(20) recursion peaks at 21 live frames: main plus f(20)..f(1).
  RunLimits Enough;
  Enough.MaxCallDepth = 21;
  RunResult Ok = runSource(Recurse20, Enough);
  EXPECT_TRUE(Ok.ok()) << Ok.TrapMessage;
  EXPECT_EQ(Ok.ExitValue, 20);

  RunLimits OneShort;
  OneShort.MaxCallDepth = 20;
  RunResult Cut = runSource(Recurse20, OneShort);
  EXPECT_EQ(Cut.Status, RunStatus::Trap);
  EXPECT_NE(Cut.TrapMessage.find("depth"), std::string::npos);
  ASSERT_TRUE(Cut.Trap.has_value());
  // The deepest pushed frame is f; the backtrace walks back to main.
  EXPECT_EQ(Cut.Trap->Function, "f");
  ASSERT_EQ(Cut.Trap->Backtrace.size(), 20u);
  EXPECT_EQ(Cut.Trap->Backtrace.back().Function, "main");
}

const char *Print1000Bytes = R"MC(
int main() {
  int i = 0;
  while (i < 100) {
    print_int(1234567890);
    i = i + 1;
  }
  return 0;
}
)MC";

TEST(OutputBudget, TruncatesByDefault) {
  RunLimits Limits;
  Limits.MaxOutputBytes = 100;
  RunResult R = runSource(Print1000Bytes, Limits);
  // Default policy: the run completes, prints past the budget are
  // dropped, and the truncation is flagged.
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_TRUE(R.OutputTruncated);
  EXPECT_LE(R.Output.size(), 100u);
  EXPECT_EQ(R.Output.size(), 100u) << "10-byte prints fill exactly 100";
}

TEST(OutputBudget, OverflowTrapsWhenEnabled) {
  RunLimits Limits;
  Limits.MaxOutputBytes = 100;
  Limits.TrapOnOutputOverflow = true;
  RunResult R = runSource(Print1000Bytes, Limits);
  EXPECT_EQ(R.Status, RunStatus::OutputOverflow);
  EXPECT_EQ(R.errorKind(), ErrorKind::OutputOverflow);
  ASSERT_TRUE(R.Trap.has_value());
  EXPECT_EQ(R.Trap->Function, "main");
  EXPECT_TRUE(R.OutputTruncated);
}

TEST(MemoryTraps, NullPageLoadHasTrapInfo) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Bld.retValue(Bld.load(ZeroReg, 0, MemWidth::I64));
  Interpreter Interp(M);
  RunResult R = Interp.run(Dataset());
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.TrapMessage.find("out of bounds"), std::string::npos);
  ASSERT_TRUE(R.Trap.has_value());
  EXPECT_EQ(R.Trap->Kind, ErrorKind::Trap);
  EXPECT_EQ(R.Trap->Function, "main");
  EXPECT_EQ(R.Trap->Block, "entry");
  ASSERT_EQ(R.Trap->Backtrace.size(), 1u);
}

TEST(MemoryTraps, OutOfBoundsStoreHasTrapInfo) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg Huge = Bld.loadImm(1ll << 60);
  Bld.store(Bld.loadImm(7), Huge, 0, MemWidth::I64);
  Bld.retValue(Bld.loadImm(0));
  Interpreter Interp(M);
  RunResult R = Interp.run(Dataset());
  EXPECT_EQ(R.Status, RunStatus::Trap);
  ASSERT_TRUE(R.Trap.has_value());
  EXPECT_EQ(R.Trap->Function, "main");
  EXPECT_EQ(R.Trap->InstrCount, R.InstrCount);
}

TEST(Watchdog, WallClockDeadlineFires) {
  // An endless loop that the instruction budget would not stop for a
  // long time; the watchdog has to end it.
  const char *Endless = R"MC(
int main() {
  int i = 1;
  while (i > 0) {
    i = i + 1;
  }
  return 0;
}
)MC";
  RunLimits Limits;
  Limits.MaxMillis = 30;
  RunResult R = runSource(Endless, Limits);
  EXPECT_EQ(R.Status, RunStatus::Timeout);
  EXPECT_EQ(R.errorKind(), ErrorKind::Timeout);
  ASSERT_TRUE(R.Trap.has_value());
  EXPECT_EQ(R.Trap->Kind, ErrorKind::Timeout);
  EXPECT_EQ(R.Trap->Function, "main");
}

TEST(Watchdog, DisabledByDefault) {
  RunResult R = runSource(CountedLoop);
  EXPECT_TRUE(R.ok());
  EXPECT_FALSE(R.Trap.has_value());
  EXPECT_FALSE(R.OutputTruncated);
}

} // namespace
