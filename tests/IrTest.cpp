//===- tests/IrTest.cpp - IR construction, printing, verification ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

TEST(RegTest, DedicatedRegisters) {
  EXPECT_TRUE(isDedicatedReg(ZeroReg));
  EXPECT_TRUE(isDedicatedReg(SpReg));
  EXPECT_TRUE(isDedicatedReg(GpReg));
  EXPECT_FALSE(isDedicatedReg(Reg(FirstVirtualReg)));
  EXPECT_FALSE(Reg().isValid());
  EXPECT_TRUE(ZeroReg.isValid());
}

TEST(ModuleTest, FunctionCreationAndLookup) {
  Module M;
  Function *F = M.createFunction("alpha", 2);
  Function *G = M.createFunction("beta", 0);
  EXPECT_EQ(F->getIndex(), 0u);
  EXPECT_EQ(G->getIndex(), 1u);
  EXPECT_EQ(M.findFunction("alpha"), F);
  EXPECT_EQ(M.findFunction("beta"), G);
  EXPECT_EQ(M.findFunction("gamma"), nullptr);
  EXPECT_EQ(M.numFunctions(), 2u);
  EXPECT_EQ(F->getNumParams(), 2u);
  EXPECT_EQ(F->getParamReg(0).Id, FirstVirtualReg);
  EXPECT_EQ(F->getParamReg(1).Id, FirstVirtualReg + 1);
}

TEST(ModuleTest, GlobalAllocationIsAligned) {
  Module M;
  uint32_t A = M.allocateGlobal(3);
  uint32_t B = M.allocateGlobal(8);
  EXPECT_EQ(A % 8, 0u);
  EXPECT_EQ(B % 8, 0u);
  EXPECT_GE(B, A + 3);
  EXPECT_GE(M.getGlobalSize(), B + 8);
}

TEST(ModuleTest, GlobalDataInitialization) {
  Module M;
  std::vector<uint8_t> Data = {1, 2, 3, 4};
  uint32_t Off = M.allocateGlobalData(Data);
  ASSERT_LE(Off + 4, M.getGlobalImage().size());
  EXPECT_EQ(M.getGlobalImage()[Off], 1);
  EXPECT_EQ(M.getGlobalImage()[Off + 3], 4);
}

TEST(ModuleTest, PatchGlobalImage) {
  Module M;
  uint32_t Off = M.allocateGlobal(8);
  uint64_t V = 0xDEADBEEF;
  M.patchGlobalImage(Off, &V, 8);
  uint64_t Read;
  std::memcpy(&Read, M.getGlobalImage().data() + Off, 8);
  EXPECT_EQ(Read, V);
}

/// Builds: entry -> (branch) -> left/right -> ret.
Function *buildDiamond(Module &M) {
  Function *F = M.createFunction("diamond", 1);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Left = F->createBlock("left");
  BasicBlock *Right = F->createBlock("right");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  B.condBranch(BranchOp::BGTZ, F->getParamReg(0), Reg(), Left, Right);
  B.setInsertBlock(Left);
  Reg One = B.loadImm(1);
  B.jump(Join);
  B.setInsertBlock(Right);
  B.loadImm(2);
  B.jump(Join);
  B.setInsertBlock(Join);
  B.retValue(One);
  return F;
}

TEST(IrBuilderTest, DiamondStructure) {
  Module M;
  Function *F = buildDiamond(M);
  EXPECT_EQ(F->numBlocks(), 4u);
  BasicBlock *Entry = F->getEntry();
  ASSERT_TRUE(Entry->isCondBranch());
  EXPECT_EQ(Entry->numSuccessors(), 2u);
  EXPECT_EQ(Entry->getSuccessor(0)->getName(), "left");
  EXPECT_EQ(Entry->getSuccessor(1)->getName(), "right");
  EXPECT_TRUE(F->getBlock(3)->isReturnBlock());
  EXPECT_EQ(F->countCondBranches(), 1u);
}

TEST(IrBuilderTest, PredecessorComputation) {
  Module M;
  Function *F = buildDiamond(M);
  auto Preds = F->computePredecessors();
  EXPECT_TRUE(Preds[0].empty());
  ASSERT_EQ(Preds[1].size(), 1u);
  ASSERT_EQ(Preds[2].size(), 1u);
  EXPECT_EQ(Preds[3].size(), 2u);
}

TEST(IrBuilderTest, UsesAndDefs) {
  Module M;
  Function *F = M.createFunction("f", 2);
  IRBuilder B(F);
  BasicBlock *BB = F->createBlock("entry");
  B.setInsertBlock(BB);
  Reg A = F->getParamReg(0), P1 = F->getParamReg(1);
  Reg Sum = B.add(A, P1);
  B.store(Sum, SpReg, 0, MemWidth::I64);
  Reg L = B.load(SpReg, 0, MemWidth::I64);
  B.retValue(L);

  const auto &Insts = BB->instructions();
  ASSERT_EQ(Insts.size(), 3u);

  std::vector<Reg> Uses;
  Insts[0].appendUses(Uses);
  ASSERT_EQ(Uses.size(), 2u);
  EXPECT_EQ(Uses[0], A);
  EXPECT_EQ(Uses[1], P1);
  EXPECT_EQ(Insts[0].def(), Sum);

  Uses.clear();
  Insts[1].appendUses(Uses); // store uses base + value
  ASSERT_EQ(Uses.size(), 2u);
  EXPECT_EQ(Uses[0], SpReg);
  EXPECT_EQ(Uses[1], Sum);
  EXPECT_FALSE(Insts[1].def().isValid());

  EXPECT_EQ(Insts[2].def(), L);
}

TEST(IrBuilderTest, ImmediateForm) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  B.setInsertBlock(F->createBlock("entry"));
  Reg R = B.addImm(F->getParamReg(0), 42);
  B.retValue(R);
  const Instruction &I = F->getEntry()->instructions()[0];
  EXPECT_TRUE(I.BIsImm);
  EXPECT_EQ(I.Imm, 42);
  std::vector<Reg> Uses;
  I.appendUses(Uses);
  EXPECT_EQ(Uses.size(), 1u) << "immediate operand must not count as a use";
}

TEST(IrBuilderTest, BlockContentPredicates) {
  Module M;
  Function *Callee = M.createFunction("callee", 0);
  {
    IRBuilder B(Callee);
    B.setInsertBlock(Callee->createBlock("entry"));
    B.ret();
  }
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *BB = F->createBlock("entry");
  B.setInsertBlock(BB);
  EXPECT_FALSE(BB->containsCall());
  EXPECT_FALSE(BB->containsStore());
  B.callVoid(Callee, {});
  EXPECT_TRUE(BB->containsCall());
  B.store(ZeroReg, SpReg, 0, MemWidth::I64);
  EXPECT_TRUE(BB->containsStore());
  // Intrinsic calls are not "function calls" for the Call heuristic.
  Function *G = M.createFunction("g", 0);
  IRBuilder BG(G);
  BasicBlock *GB = G->createBlock("entry");
  BG.setInsertBlock(GB);
  BG.callIntrinsicVoid(Intrinsic::PrintInt, {ZeroReg});
  EXPECT_FALSE(GB->containsCall());
}

TEST(VerifierTest, AcceptsWellFormedModule) {
  Module M;
  buildDiamond(M);
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Module M;
  Function *F = M.createFunction("f", 0);
  F->createBlock("entry");
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("missing terminator"), std::string::npos);
}

TEST(VerifierTest, RejectsIdenticalBranchSuccessors) {
  Module M;
  Function *F = M.createFunction("f", 1);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  Terminator &T = Entry->terminator();
  T.Kind = TermKind::CondBranch;
  T.BOp = BranchOp::BGTZ;
  T.Lhs = F->getParamReg(0);
  T.Taken = Next;
  T.Fallthru = Next;
  Entry->markTerminatorSet();
  IRBuilder B(F);
  B.setInsertBlock(Next);
  B.ret();
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("identical successors"), std::string::npos);
}

TEST(VerifierTest, RejectsFlagBranchWithoutCompare) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *B2 = F->createBlock("b");
  IRBuilder B(F);
  B.setInsertBlock(Entry);
  B.flagBranch(BranchOp::BC1T, A, B2);
  B.setInsertBlock(A);
  B.ret();
  B.setInsertBlock(B2);
  B.ret();
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("flag branch"), std::string::npos);
}

TEST(VerifierTest, RejectsBadCallArity) {
  Module M;
  Function *Callee = M.createFunction("callee", 2);
  {
    IRBuilder B(Callee);
    B.setInsertBlock(Callee->createBlock("entry"));
    B.ret();
  }
  Function *F = M.createFunction("f", 0);
  BasicBlock *Entry = F->createBlock("entry");
  Entry->instructions().emplace_back();
  Instruction &I = Entry->instructions().back();
  I.Op = Opcode::Call;
  I.CalleeIndex = Callee->getIndex();
  I.Args = {}; // wrong: needs 2
  IRBuilder B(F);
  B.setInsertBlock(Entry);
  // Bypassed builder, so terminator needs manual setup.
  Entry->terminator().Kind = TermKind::Return;
  Entry->markTerminatorSet();
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("passes 0 args"), std::string::npos);
}

TEST(PrinterTest, RendersInstructionsAndBlocks) {
  Module M;
  Function *F = buildDiamond(M);
  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("func diamond"), std::string::npos);
  EXPECT_NE(Text.find("bgtz"), std::string::npos);
  EXPECT_NE(Text.find("li"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
  EXPECT_NE(Text.find("left"), std::string::npos);
}

TEST(PrinterTest, OpcodeNamesAreStable) {
  EXPECT_STREQ(opcodeName(Opcode::Add), "add");
  EXPECT_STREQ(opcodeName(Opcode::FCmpEq), "c.eq.d");
  EXPECT_STREQ(branchOpName(BranchOp::BLEZ), "blez");
  EXPECT_STREQ(branchOpName(BranchOp::BC1F), "bc1f");
  EXPECT_STREQ(intrinsicName(Intrinsic::Malloc), "malloc");
}

} // namespace
