//===- tests/ProvenanceTest.cpp - Prediction provenance and explain -------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explain layer's static half: provenance capture must cover every
/// conditional branch, agree with predict() on the chosen direction,
/// and name the same deciding rule as responsibleHeuristic — with the
/// declined/applies masks consistent with re-running the heuristics by
/// hand. Plus the document side: the bpfree-explain-v1 JSON round-trips
/// losslessly, and the validator rejects tampered documents (wrong
/// schema, negative counts, broken conservation). The default policy's
/// own attribution bucket is pinned by a regression test on treesort, a
/// workload where most branch executions fall through to the default —
/// folding it into a heuristic bucket would break the 100% share
/// invariant.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/Attribution.h"
#include "ipbc/TraceReplay.h"
#include "vm/Decode.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

using namespace bpfree;

namespace {

/// Unwraps an Expected whose inputs the test constructed to be valid.
template <typename T> T take(Expected<T> E) {
  if (!E) {
    ADD_FAILURE() << "unexpected rejection: " << E.error().renderWithKind();
    return T{};
  }
  return E.takeValue();
}

/// Temp-file path unique to this process; removed on destruction.
class TempFile {
public:
  explicit TempFile(const std::string &Suffix)
      : P(::testing::TempDir() + "bpfree_provenance_" +
          std::to_string(::getpid()) + Suffix) {}
  ~TempFile() { std::remove(P.c_str()); }
  const std::string &path() const { return P; }

private:
  std::string P;
};

/// Compiled module + context + captured provenance for one workload.
struct Capture {
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<PredictionContext> Ctx;
  std::unique_ptr<BallLarusPredictor> P;
  std::unique_ptr<ProvenanceMap> Prov;
  std::vector<uint8_t> Dirs;

  explicit Capture(const std::string &WorkloadName) {
    M = minic::compileOrDie(findWorkload(WorkloadName)->Source);
    Ctx = std::make_unique<PredictionContext>(*M);
    P = std::make_unique<BallLarusPredictor>(*Ctx);
    Prov = std::make_unique<ProvenanceMap>(*M);
    P->setProvenanceSink(Prov.get());
    Dirs = predictorDirections(*M, *P);
    P->setProvenanceSink(nullptr);
  }
};

//===----------------------------------------------------------------------===//
// Capture coverage and consistency with the fast path
//===----------------------------------------------------------------------===//

TEST(Provenance, CoversEveryCondBranchAndOnlyThose) {
  for (const char *Name : {"treesort", "lisp", "circuit"}) {
    SCOPED_TRACE(Name);
    Capture C(Name);
    const std::vector<uint32_t> Offsets = flatBlockOffsets(*C.M);
    size_t CondBranches = 0;
    for (const auto &F : *C.M) {
      for (const auto &BB : *F) {
        const uint32_t Flat = Offsets[F->getIndex()] + BB->getId();
        const BranchProvenance *R = C.Prov->get(Flat);
        if (BB->isCondBranch()) {
          ++CondBranches;
          ASSERT_NE(R, nullptr) << BB->getName();
          EXPECT_EQ(R->BB, BB.get());
          EXPECT_EQ(R->FlatIndex, Flat);
        } else {
          EXPECT_EQ(R, nullptr) << BB->getName();
        }
      }
    }
    EXPECT_EQ(C.Prov->numRecords(), CondBranches);
    EXPECT_EQ(C.Prov->numSlots(), Offsets.back());
  }
}

/// The recording path must make the identical decision as the sink-less
/// fast path (Dirs came from the recording walk; predict() afterwards
/// runs the fast path), and every record's deciding bucket must agree
/// with responsibleHeuristic and with re-running the cascade by hand.
TEST(Provenance, RecordsAgreeWithFastPathAndCascade) {
  Capture C("treesort");
  const HeuristicOrder Order = C.P->getOrder();
  for (uint32_t Flat = 0; Flat < C.Prov->numSlots(); ++Flat) {
    const BranchProvenance *R = C.Prov->get(Flat);
    if (!R)
      continue;
    const ir::BasicBlock &BB = *R->BB;
    SCOPED_TRACE(BB.getParent()->getName() + ":" + BB.getName());
    // Chosen direction: identical to the direction array and to a
    // fresh fast-path predict().
    EXPECT_EQ(R->Chosen, C.Dirs[Flat] ? DirFallthru : DirTaken);
    EXPECT_EQ(R->Chosen, C.P->predict(BB));

    const FunctionContext &FC = C.Ctx->get(BB);
    EXPECT_EQ(R->IsLoopBranch, FC.Loops.isLoopBranch(&BB));
    // Masks never overlap: a declined heuristic by definition did not
    // apply.
    EXPECT_EQ(R->DeclinedMask & R->AppliesMask, 0u);
    EXPECT_EQ(R->AppliesMask,
              applyAllHeuristics(BB, FC, C.P->getConfig()).first);

    if (R->IsLoopBranch) {
      // The loop predictor decides before any heuristic is consulted.
      EXPECT_EQ(R->Bucket, LoopBucket);
      EXPECT_EQ(R->Priority, -1);
      EXPECT_EQ(R->DeclinedMask, 0u);
      continue;
    }
    std::optional<HeuristicKind> Responsible = C.P->responsibleHeuristic(BB);
    if (R->Bucket < NumHeuristics) {
      ASSERT_TRUE(Responsible.has_value());
      EXPECT_EQ(*Responsible, R->deciding());
      ASSERT_GE(R->Priority, 0);
      ASSERT_LT(static_cast<unsigned>(R->Priority), NumHeuristics);
      EXPECT_EQ(Order[R->Priority], R->deciding());
      EXPECT_NE(R->AppliesMask &
                    (1u << static_cast<unsigned>(R->deciding())),
                0u);
      // The declined set is exactly the higher-priority order prefix.
      uint8_t Expected = 0;
      for (int Pos = 0; Pos < R->Priority; ++Pos)
        Expected |= 1u << static_cast<unsigned>(Order[Pos]);
      EXPECT_EQ(R->DeclinedMask, Expected);
    } else {
      // Default bucket: the whole cascade declined, so nothing applies.
      EXPECT_EQ(R->Bucket, DefaultBucket);
      EXPECT_FALSE(Responsible.has_value());
      EXPECT_EQ(R->Priority, -1);
      EXPECT_EQ(R->AppliesMask, 0u);
      uint8_t AllOrdered = 0;
      for (HeuristicKind K : Order)
        AllOrdered |= 1u << static_cast<unsigned>(K);
      EXPECT_EQ(R->DeclinedMask, AllOrdered);
    }
  }
}

/// MiniC-compiled branches carry their source line into the provenance
/// record (Terminator::SrcLine), and the flat index resolves back to the
/// same site through siteForFlatIndex.
TEST(Provenance, SrcLinesAndSiteRoundTrip) {
  Capture C("treesort");
  size_t WithLine = 0;
  for (uint32_t Flat = 0; Flat < C.Prov->numSlots(); ++Flat) {
    const BranchProvenance *R = C.Prov->get(Flat);
    if (!R)
      continue;
    EXPECT_EQ(R->SrcLine, R->BB->terminator().SrcLine);
    WithLine += R->SrcLine > 0 ? 1 : 0;
    BranchSite Site = siteForFlatIndex(*C.M, Flat);
    ASSERT_TRUE(Site.valid());
    EXPECT_EQ(Site.BB, R->BB);
    EXPECT_EQ(Site.F, R->BB->getParent());
    EXPECT_EQ(Site.SrcLine, R->SrcLine);
  }
  // The frontend stamps every genBranch; a compiled workload's branches
  // all have real line numbers.
  EXPECT_EQ(WithLine, C.Prov->numRecords());
  EXPECT_GT(WithLine, 0u);
  // Out-of-range indices resolve to an invalid site, never a crash.
  EXPECT_FALSE(
      siteForFlatIndex(*C.M, static_cast<uint32_t>(C.Prov->numSlots()))
          .valid());
}

/// SingleHeuristicPredictor provenance: bucket K where the heuristic
/// fires, DefaultBucket (with K declined) on the coin-flip fallback.
TEST(Provenance, SingleHeuristicBuckets) {
  auto M = minic::compileOrDie(findWorkload("treesort")->Source);
  PredictionContext Ctx(*M);
  const std::vector<uint32_t> Offsets = flatBlockOffsets(*M);
  for (HeuristicKind K : {HeuristicKind::Opcode, HeuristicKind::Pointer}) {
    SCOPED_TRACE(heuristicName(K));
    SingleHeuristicPredictor P(Ctx, K);
    ProvenanceMap Prov(*M);
    P.setProvenanceSink(&Prov);
    std::vector<uint8_t> Dirs = predictorDirections(*M, P);
    P.setProvenanceSink(nullptr);
    for (uint32_t Flat = 0; Flat < Prov.numSlots(); ++Flat) {
      const BranchProvenance *R = Prov.get(Flat);
      if (!R)
        continue;
      EXPECT_EQ(R->Chosen, Dirs[Flat] ? DirFallthru : DirTaken);
      const bool Applied =
          (R->AppliesMask & (1u << static_cast<unsigned>(K))) != 0;
      if (Applied) {
        EXPECT_EQ(R->Bucket, static_cast<unsigned>(K));
        EXPECT_EQ(R->DeclinedMask, 0u);
      } else {
        EXPECT_EQ(R->Bucket, DefaultBucket);
        EXPECT_EQ(R->DeclinedMask, 1u << static_cast<unsigned>(K));
      }
      // A lone heuristic holds no cascade position — reporting priority
      // 0 here (the old behavior) forged a "won the cascade at the top
      // slot" claim the combined predictor never made.
      EXPECT_EQ(R->Priority, -1);
    }
  }
}

//===----------------------------------------------------------------------===//
// The bpfree-explain-v1 document
//===----------------------------------------------------------------------===//

TEST(ExplainJson, WriteReadRoundTrip) {
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  ExplainOptions EO;
  EO.Workload = "treesort";
  EO.Dataset = Run->dataset().Name;
  ExplainReport R = take(explainTrace(*Run->Ctx, *Run->Trace, EO));

  TempFile F("_explain.json");
  ASSERT_TRUE(writeExplainJson(R, F.path()));
  ExplainReport Read = take(readExplainJson(F.path()));

  EXPECT_EQ(Read.Workload, R.Workload);
  EXPECT_EQ(Read.Dataset, R.Dataset);
  EXPECT_EQ(Read.Predictor, R.Predictor);
  EXPECT_EQ(Read.Order, R.Order);
  EXPECT_EQ(Read.TotalInstrs, R.TotalInstrs);
  EXPECT_EQ(Read.BranchExecs, R.BranchExecs);
  EXPECT_EQ(Read.Mispredicts, R.Mispredicts);
  for (unsigned B = 0; B < NumAttrBuckets; ++B) {
    EXPECT_EQ(Read.Buckets[B].Name, R.Buckets[B].Name);
    EXPECT_EQ(Read.Buckets[B].StaticSites, R.Buckets[B].StaticSites);
    EXPECT_EQ(Read.Buckets[B].Execs, R.Buckets[B].Execs);
    EXPECT_EQ(Read.Buckets[B].Mispredicts, R.Buckets[B].Mispredicts);
  }
  ASSERT_EQ(Read.Hotspots.size(), R.Hotspots.size());
  for (size_t I = 0; I < R.Hotspots.size(); ++I) {
    const HotspotEntry &A = R.Hotspots[I];
    const HotspotEntry &B = Read.Hotspots[I];
    EXPECT_EQ(A.FlatIndex, B.FlatIndex);
    EXPECT_EQ(A.Function, B.Function);
    EXPECT_EQ(A.Block, B.Block);
    EXPECT_EQ(A.SrcLine, B.SrcLine);
    EXPECT_EQ(A.Bucket, B.Bucket);
    EXPECT_EQ(A.Priority, B.Priority);
    EXPECT_EQ(A.Predicted, B.Predicted);
    EXPECT_EQ(A.Taken, B.Taken);
    EXPECT_EQ(A.Fallthru, B.Fallthru);
    EXPECT_EQ(A.Mispredicts, B.Mispredicts);
  }

  // Truncated write: only the top hotspot survives, totals unchanged.
  TempFile Top("_explain_top1.json");
  ASSERT_TRUE(writeExplainJson(R, Top.path(), 1));
  ExplainReport Trunc = take(readExplainJson(Top.path()));
  ASSERT_EQ(Trunc.Hotspots.size(), std::min<size_t>(1, R.Hotspots.size()));
  EXPECT_EQ(Trunc.Mispredicts, R.Mispredicts);
}

/// A minimal hand-built valid document, mutated one field at a time:
/// each tampering must be rejected with a diagnostic naming the problem.
TEST(ExplainJson, ValidationRejectsTamperedDocuments) {
  auto docWith = [](const std::string &Schema, const std::string &Total,
                    const std::string &OpcodeExecs,
                    const std::string &OpcodeMiss,
                    const std::string &HotTaken, bool WithOrder) {
    std::string D = "{\n  \"schema\": \"" + Schema +
                    "\",\n  \"workload\": \"w\", \"dataset\": \"d\",\n"
                    "  \"predictor\": \"Heuristic\"";
    if (WithOrder)
      D += ", \"order\": \"Point>Call\"";
    D += ",\n  \"total_instrs\": 100, \"branch_execs\": 10,\n"
         "  \"mispredicts\": " +
         Total + ",\n  \"buckets\": [\n";
    for (unsigned B = 0; B < NumAttrBuckets; ++B) {
      const bool IsOpcode = std::string(attrBucketName(B)) == "Opcode";
      D += std::string("    {\"name\": \"") + attrBucketName(B) +
           "\", \"static_sites\": " + (IsOpcode ? "1" : "0") +
           ", \"execs\": " + (IsOpcode ? OpcodeExecs : "0") +
           ", \"mispredicts\": " + (IsOpcode ? OpcodeMiss : "0") + "}" +
           (B + 1 == NumAttrBuckets ? "\n" : ",\n");
    }
    D += "  ],\n  \"hotspots\": [\n"
         "    {\"flat_index\": 5, \"function\": \"f\", \"block\": \"b\",\n"
         "     \"line\": 3, \"bucket\": \"Opcode\", \"predicted\": "
         "\"taken\",\n     \"taken\": " +
         HotTaken + ", \"fallthru\": 7, \"mispredicts\": 3}\n  ]\n}\n";
    return D;
  };

  TempFile F("_tampered.json");
  auto validate = [&](const std::string &Doc) -> Expected<ExplainReport> {
    std::ofstream Out(F.path());
    Out << Doc;
    Out.close();
    return readExplainJson(F.path());
  };

  // The untampered baseline parses.
  const std::string Valid =
      docWith("bpfree-explain-v1", "3", "10", "3", "3", true);
  EXPECT_TRUE(validate(Valid).hasValue());

  struct Case {
    const char *What;
    std::string Doc;
    const char *ErrNeedle;
  } Cases[] = {
      {"wrong schema tag",
       docWith("bpfree-explain-v2", "3", "10", "3", "3", true),
       "not a bpfree-explain-v1"},
      {"negative count",
       docWith("bpfree-explain-v1", "-3", "10", "3", "3", true),
       "negative count"},
      {"broken conservation (total != bucket sum)",
       docWith("bpfree-explain-v1", "4", "10", "3", "3", true),
       "conservation violated"},
      {"bucket mispredicts exceed executions",
       docWith("bpfree-explain-v1", "3", "2", "3", "3", true),
       "more mispredicts than executions"},
      {"missing required key",
       docWith("bpfree-explain-v1", "3", "10", "3", "3", false),
       "missing field 'order'"},
      {"hotspot mispredicts exceed its executions",
       docWith("bpfree-explain-v1", "3", "10", "3", "-5", true),
       "negative count"},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.What);
    Expected<ExplainReport> R = validate(C.Doc);
    ASSERT_FALSE(R.hasValue());
    EXPECT_EQ(R.error().Kind, ErrorKind::InvalidArgument);
    EXPECT_NE(R.error().Message.find(C.ErrNeedle), std::string::npos)
        << R.error().Message;
  }

  // Wrong bucket count and wrong bucket name, tampered structurally.
  std::string EightBuckets = Valid;
  const size_t Cut = EightBuckets.find("    {\"name\": \"Default\"");
  ASSERT_NE(Cut, std::string::npos);
  // Drop the final bucket line and the comma ending the previous one,
  // keeping the previous line's newline so the array stays parseable.
  const size_t PrevComma = EightBuckets.rfind(",\n", Cut);
  ASSERT_NE(PrevComma, std::string::npos);
  EightBuckets.erase(PrevComma,
                     EightBuckets.find('\n', Cut) - PrevComma);
  Expected<ExplainReport> Short = validate(EightBuckets);
  ASSERT_FALSE(Short.hasValue());
  EXPECT_NE(Short.error().Message.find("buckets"), std::string::npos);

  std::string Renamed = Valid;
  const size_t Pos = Renamed.find("\"LoopPred\"");
  ASSERT_NE(Pos, std::string::npos);
  Renamed.replace(Pos, 10, "\"LoopHack\"");
  Expected<ExplainReport> Bad = validate(Renamed);
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.error().Message.find("named"), std::string::npos);

  // The (bucket, priority) pair on a hotspot must be a state the
  // predictors can actually produce. The baseline doc omits "priority",
  // which must read back as -1 (pre-priority documents stay valid).
  {
    Expected<ExplainReport> R = validate(Valid);
    ASSERT_TRUE(R.hasValue());
    ASSERT_EQ(R->Hotspots.size(), 1u);
    EXPECT_EQ(R->Hotspots[0].Priority, -1);
  }
  auto withHotspotBucket = [&](const std::string &Repl) {
    std::string D = Valid;
    const std::string Needle = "\"bucket\": \"Opcode\"";
    const size_t At = D.find(Needle);
    EXPECT_NE(At, std::string::npos);
    D.replace(At, Needle.size(), Repl);
    return D;
  };
  // A cascade position on a heuristic bucket is a legal state.
  EXPECT_TRUE(
      validate(withHotspotBucket("\"bucket\": \"Opcode\", \"priority\": 2"))
          .hasValue());
  struct PriorityCase {
    const char *What;
    const char *Repl;
    const char *ErrNeedle;
  } PriorityCases[] = {
      {"unknown bucket name", "\"bucket\": \"Bogus\"", "unknown bucket"},
      {"priority past the cascade",
       "\"bucket\": \"Opcode\", \"priority\": 99", "outside [-1"},
      {"priority below the sentinel",
       "\"bucket\": \"Opcode\", \"priority\": -2", "outside [-1"},
      {"loop bucket claiming a cascade position",
       "\"bucket\": \"LoopPred\", \"priority\": 3",
       "must carry priority -1"},
      {"default bucket claiming a cascade position",
       "\"bucket\": \"Default\", \"priority\": 0",
       "must carry priority -1"},
  };
  for (const PriorityCase &C : PriorityCases) {
    SCOPED_TRACE(C.What);
    Expected<ExplainReport> R = validate(withHotspotBucket(C.Repl));
    ASSERT_FALSE(R.hasValue());
    EXPECT_EQ(R.error().Kind, ErrorKind::InvalidArgument);
    EXPECT_NE(R.error().Message.find(C.ErrNeedle), std::string::npos)
        << R.error().Message;
  }
}

/// Satellite regression: the default policy is its own attribution
/// bucket. treesort is the canonical workload where most dynamic
/// branches fall to the default (no heuristic applies), so if the
/// default's sites were folded into a heuristic bucket — or dropped —
/// either the Default share would be zero here or the shares would no
/// longer sum to 100%.
TEST(Attribution, DefaultPolicyHasItsOwnBucket) {
  RunOptions RO;
  RO.CaptureTrace = true;
  RO.Profile = false;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  ExplainReport R = take(explainTrace(*Run->Ctx, *Run->Trace));

  const BucketStats &Default = R.Buckets[DefaultBucket];
  EXPECT_GT(Default.StaticSites, 0u);
  EXPECT_GT(Default.Execs, 0u);
  EXPECT_GT(Default.Mispredicts, 0u);
  // treesort's dominant bucket is the default, by a wide margin.
  EXPECT_GT(R.mispredictShare(DefaultBucket), 0.5);

  double ShareSum = 0.0;
  uint64_t MispredictSum = 0;
  for (unsigned B = 0; B < NumAttrBuckets; ++B) {
    ShareSum += R.mispredictShare(B);
    MispredictSum += R.Buckets[B].Mispredicts;
  }
  EXPECT_EQ(MispredictSum, R.Mispredicts);
  EXPECT_NEAR(ShareSum, 1.0, 1e-9);
}

} // namespace
