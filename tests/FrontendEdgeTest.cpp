//===- tests/FrontendEdgeTest.cpp - MiniC corner-case execution tests -----===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-level tests of MiniC corners: nested structs, arrays of
/// structs, pointer-to-pointer, struct fields of every kind, scoping,
/// conversion corners, operator interactions — the places where a
/// frontend quietly miscompiles.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace bpfree;

namespace {

int64_t run(const std::string &Src, Dataset Data = Dataset()) {
  auto M = minic::compile(Src);
  EXPECT_TRUE(M.hasValue()) << (M ? "" : M.error().render());
  if (!M)
    return -999999;
  Interpreter Interp(**M);
  RunResult R = Interp.run(Data);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return R.ExitValue;
}

TEST(FrontendEdge, NestedStructsByValue) {
  EXPECT_EQ(run("struct inner { int x; int y; };\n"
                "struct outer { int a; struct inner in; int b; };\n"
                "int main() {\n"
                "  struct outer o;\n"
                "  o.a = 1; o.in.x = 2; o.in.y = 3; o.b = 4;\n"
                "  return o.a * 1000 + o.in.x * 100 + o.in.y * 10 + o.b;\n"
                "}"),
            1234);
}

TEST(FrontendEdge, ArrayOfStructs) {
  EXPECT_EQ(run("struct pt { int x; int y; };\n"
                "struct pt pts[10];\n"
                "int main() {\n"
                "  int i;\n"
                "  for (i = 0; i < 10; i++) { pts[i].x = i; "
                "pts[i].y = i * i; }\n"
                "  return pts[7].x * 100 + pts[7].y;\n"
                "}"),
            749);
}

TEST(FrontendEdge, PointerToStructArrayElement) {
  EXPECT_EQ(run("struct pt { int x; int y; };\n"
                "struct pt pts[4];\n"
                "int main() {\n"
                "  struct pt *p = &pts[2];\n"
                "  p->x = 5; p->y = 7;\n"
                "  return pts[2].x * 10 + pts[2].y;\n"
                "}"),
            57);
}

TEST(FrontendEdge, PointerToPointer) {
  EXPECT_EQ(run("int main() {\n"
                "  int x = 3;\n"
                "  int *p = &x;\n"
                "  int **pp = &p;\n"
                "  **pp = 9;\n"
                "  return x + **pp;\n"
                "}"),
            18);
}

TEST(FrontendEdge, StructWithMixedFieldKinds) {
  EXPECT_EQ(run("struct rec { char tag; double w; int n; char name[3]; "
                "struct rec *next; };\n"
                "int main() {\n"
                "  struct rec r;\n"
                "  r.tag = 65; r.w = 2.5; r.n = 10;\n"
                "  r.name[0] = 104; r.name[1] = 105; r.name[2] = 0;\n"
                "  r.next = &r;\n"
                "  return (int)(r.w * (double)r.n) + r.tag + "
                "r.next->name[1];\n"
                "}"),
            25 + 65 + 105);
}

TEST(FrontendEdge, CharArithmeticAndComparison) {
  EXPECT_EQ(run("int main() {\n"
                "  char a = 'z'; char b = 'a';\n"
                "  int d = a - b;\n"
                "  if (a > b && b >= 'a' && a <= 'z') { return d; }\n"
                "  return -1;\n"
                "}"),
            25);
}

TEST(FrontendEdge, ForScopeShadowing) {
  EXPECT_EQ(run("int main() {\n"
                "  int i = 100; int s = 0;\n"
                "  for (int i = 0; i < 3; i++) { s += i; }\n"
                "  return s * 1000 + i;\n"
                "}"),
            3100);
}

TEST(FrontendEdge, DoubleToIntInConditions) {
  EXPECT_EQ(run("int main() {\n"
                "  double d = 0.4;\n"
                "  int hits = 0;\n"
                "  if (d) { hits += 1; }\n"        // 0.4 != 0.0
                "  d = 0.0;\n"
                "  if (d) { hits += 10; }\n"
                "  if (!d) { hits += 100; }\n"
                "  return hits;\n"
                "}"),
            101);
}

TEST(FrontendEdge, MixedIntDoubleComparisons) {
  EXPECT_EQ(run("int main() {\n"
                "  int i = 3; double d = 3.5; int s = 0;\n"
                "  if (i < d) { s += 1; }\n"
                "  if (d > i) { s += 10; }\n"
                "  if (i == 3.0) { s += 100; }\n"
                "  return s;\n"
                "}"),
            111);
}

TEST(FrontendEdge, CompoundAssignOnMemoryLValues) {
  EXPECT_EQ(run("int g = 5;\n"
                "int arr[3];\n"
                "int main() {\n"
                "  g += 2; g *= 3;\n"
                "  arr[1] = 4; arr[1] -= 1; arr[1] *= arr[1];\n"
                "  return g * 100 + arr[1];\n"
                "}"),
            2109);
}

TEST(FrontendEdge, CompoundAssignEvaluatesAddressOnce) {
  // a[next()] += 1 with a side-effecting index must bump exactly one
  // element.
  EXPECT_EQ(run("int calls = 0;\n"
                "int a[10];\n"
                "int next() { calls++; return calls; }\n"
                "int main() {\n"
                "  a[next()] += 5;\n"
                "  return calls * 100 + a[1];\n"
                "}"),
            105);
}

TEST(FrontendEdge, IncDecOnPointers) {
  EXPECT_EQ(run("int a[5];\n"
                "int main() {\n"
                "  int *p = a; int i;\n"
                "  for (i = 0; i < 5; i++) { a[i] = i * 10; }\n"
                "  p++;\n"       // -> a[1]
                "  ++p;\n"       // -> a[2]
                "  p--;\n"       // -> a[1]
                "  return *p + *(p + 3);\n" // 10 + 40
                "}"),
            50);
}

TEST(FrontendEdge, PostfixIncInExpression) {
  EXPECT_EQ(run("int a[4];\n"
                "int main() {\n"
                "  int i = 0;\n"
                "  a[i++] = 7;\n" // stores to a[0], i becomes 1
                "  a[i++] = 8;\n"
                "  return a[0] * 10 + a[1] + i;\n"
                "}"),
            7 * 10 + 8 + 2);
}

TEST(FrontendEdge, StringEscapes) {
  auto M = minic::compileOrDie(
      "int main() { print_str(\"a\\tb\\\\c\\\"d\\n\"); return 0; }");
  Interpreter Interp(*M);
  RunResult R = Interp.run(Dataset());
  EXPECT_EQ(R.Output, "a\tb\\c\"d\n");
}

TEST(FrontendEdge, NegativeLiteralsAndUnaryChains) {
  EXPECT_EQ(run("int main() { return -(-5) + - - -3 + ~~7 + !!9; }"),
            5 - 3 + 7 + 1);
}

TEST(FrontendEdge, SizeofValues) {
  EXPECT_EQ(run("struct s { char c; int n; double d; };\n"
                "int main() { return sizeof(int) + sizeof(char) * 100 + "
                "sizeof(double) * 10 + sizeof(struct s) + "
                "sizeof(int *) + sizeof(int [5]); }"),
            8 + 100 + 80 + 24 + 8 + 40);
}

TEST(FrontendEdge, RecursiveStructTraversalDepth) {
  // Deep recursion within the call-depth budget.
  EXPECT_EQ(run("struct n { int v; struct n *next; };\n"
                "int sum(struct n *p) { if (p == 0) { return 0; } "
                "return p->v + sum(p->next); }\n"
                "int main() {\n"
                "  struct n *head = 0; int i;\n"
                "  for (i = 1; i <= 1000; i++) {\n"
                "    struct n *e = malloc(sizeof(struct n));\n"
                "    e->v = i; e->next = head; head = e;\n"
                "  }\n"
                "  return sum(head) % 10007;\n"
                "}"),
            (1000 * 1001 / 2) % 10007);
}

TEST(FrontendEdge, GlobalDoubleInitializer) {
  EXPECT_EQ(run("double half = 0.5; double neg = -2.25; char c = 'x';\n"
                "int main() { return (int)(half * 8.0) + (int)(neg * "
                "-4.0) + c; }"),
            4 + 9 + 'x');
}

TEST(FrontendEdge, ShortCircuitSideEffects) {
  EXPECT_EQ(run("int calls = 0;\n"
                "int bump() { calls++; return 1; }\n"
                "int main() {\n"
                "  int r = 0;\n"
                "  if (0 && bump()) { r = 1; }\n"
                "  if (1 || bump()) { r += 2; }\n"
                "  if (bump() && bump()) { r += 4; }\n"
                "  return calls * 10 + r;\n"
                "}"),
            26);
}

TEST(FrontendEdge, WhileConditionWithSideEffectRunsOncePerTest) {
  // Rotated loops replicate the test *statically*; dynamically each
  // iteration must still evaluate the condition exactly once.
  EXPECT_EQ(run("int evals = 0;\n"
                "int check(int x) { evals++; return x < 5; }\n"
                "int main() {\n"
                "  int i = 0;\n"
                "  while (check(i)) { i++; }\n"
                "  return evals * 10 + i;\n"
                "}"),
            6 * 10 + 5);
}

TEST(FrontendEdge, BreakFromNestedLoops) {
  EXPECT_EQ(run("int main() {\n"
                "  int i; int j; int s = 0;\n"
                "  for (i = 0; i < 5; i++) {\n"
                "    for (j = 0; j < 5; j++) {\n"
                "      if (j == 2) { break; }\n"
                "      s += 1;\n"
                "    }\n"
                "    if (i == 3) { break; }\n"
                "  }\n"
                "  return s;\n" // i = 0..3, j = 0..1 each -> 8
                "}"),
            8);
}

TEST(FrontendEdge, ContinueInDoWhile) {
  EXPECT_EQ(run("int main() {\n"
                "  int i = 0; int s = 0;\n"
                "  do {\n"
                "    i++;\n"
                "    if (i % 2 == 0) { continue; }\n"
                "    s += i;\n"
                "  } while (i < 10);\n"
                "  return s;\n" // 1+3+5+7+9
                "}"),
            25);
}

TEST(FrontendEdge, CastPointerRoundTrip) {
  EXPECT_EQ(run("struct n { int v; };\n"
                "int main() {\n"
                "  struct n *p = malloc(sizeof(struct n));\n"
                "  char *raw = (char *)p;\n"
                "  struct n *q = (struct n *)raw;\n"
                "  q->v = 77;\n"
                "  return p->v;\n"
                "}"),
            77);
}

TEST(FrontendEdge, PointerDifferenceScaling) {
  EXPECT_EQ(run("double a[10];\n"
                "int main() {\n"
                "  double *p = a; double *q = &a[6];\n"
                "  return q - p;\n"
                "}"),
            6);
}

TEST(FrontendEdge, DeeplyNestedExpressions) {
  EXPECT_EQ(run("int main() { return ((((1 + 2) * (3 + 4)) - ((5 - 6) * "
                "(7 + 8))) << 1) / 3; }"),
            ((((1 + 2) * (3 + 4)) - ((5 - 6) * (7 + 8))) << 1) / 3);
}

TEST(FrontendEdge, CommentsEverywhere) {
  EXPECT_EQ(run("/* header */ int /* mid */ main() { // trailing\n"
                "  int x = 1; /* between */ x += 2;\n"
                "  return x; // done\n"
                "}"),
            3);
}

} // namespace
