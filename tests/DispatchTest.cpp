//===- tests/DispatchTest.cpp - Dispatch/fusion differential sweeps -------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded (computed-goto) dispatch loop and decode-time
/// superinstruction fusion are pure performance features: every
/// observable of a run — exit value, status, trap message, instruction
/// count, printed output, edge profile, captured branch trace — must be
/// bit-identical across all four (dispatch x fusion) configurations.
/// These tests enforce that differentially over the whole workload
/// suite, over trap and budget-exhaustion paths (where the threaded
/// loop's deferred limit check and terminator pseudo-ops must sync to
/// the exact same instruction), and over fault-injected runs (which
/// force the instruction-observer loop regardless of the knob).
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/IRBuilder.h"
#include "support/Metrics.h"
#include "vm/BranchTrace.h"
#include "vm/Decode.h"
#include "vm/EdgeProfile.h"
#include "vm/FaultInjector.h"
#include "vm/Interpreter.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace bpfree;

namespace {

/// Forces a dispatch mode for one scope, restoring the build default
/// (Threaded when available) on exit so test order never matters.
struct DispatchGuard {
  explicit DispatchGuard(DispatchMode M) { setDispatchMode(M); }
  ~DispatchGuard() { setDispatchMode(DispatchMode::Threaded); }
};

using Event = std::tuple<uint32_t, bool, uint64_t>;

std::vector<Event> decodeAll(const BranchTrace &T) {
  std::vector<Event> Events;
  T.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
    Events.emplace_back(Idx, Taken, Delta);
  });
  return Events;
}

/// Everything a run observably produced, for cross-config comparison.
struct RunSnapshot {
  RunResult Result;
  std::vector<Event> Trace;
  uint64_t BranchExecs = 0;
};

/// Runs \p W once under the given dispatch mode and fusion setting, with
/// the specialized profile + trace observer pair attached (the fast path
/// both loops specialize on).
RunSnapshot runConfig(const Workload &W, const ir::Module &M,
                      DispatchMode Mode, bool Fuse) {
  DispatchGuard G(Mode);
  DecodeOptions Opts;
  Opts.EnableFusion = Fuse;
  Interpreter Interp(M, RunLimits(), Opts);
  EdgeProfile Profile(M);
  BranchTrace Trace(M);
  RunSnapshot S;
  S.Result = Interp.run(W.Datasets[0], {&Profile, &Trace});
  Trace.finalize(S.Result.InstrCount);
  S.Trace = decodeAll(Trace);
  S.BranchExecs = Profile.totalBranchExecutions();
  return S;
}

void expectSnapshotsEqual(const RunSnapshot &A, const RunSnapshot &B,
                          const std::string &What) {
  EXPECT_EQ(A.Result.Status, B.Result.Status) << What;
  EXPECT_EQ(A.Result.ExitValue, B.Result.ExitValue) << What;
  EXPECT_EQ(A.Result.InstrCount, B.Result.InstrCount) << What;
  EXPECT_EQ(A.Result.Output, B.Result.Output) << What;
  EXPECT_EQ(A.Result.TrapMessage, B.Result.TrapMessage) << What;
  EXPECT_EQ(A.BranchExecs, B.BranchExecs) << What;
  EXPECT_EQ(A.Trace, B.Trace) << What;
}

//===----------------------------------------------------------------------===//
// Knob semantics
//===----------------------------------------------------------------------===//

TEST(Dispatch, KnobTracksAvailability) {
  DispatchGuard G(DispatchMode::Switch);
  EXPECT_EQ(dispatchMode(), DispatchMode::Switch);
  setDispatchMode(DispatchMode::Threaded);
  if (threadedDispatchAvailable())
    EXPECT_EQ(dispatchMode(), DispatchMode::Threaded);
  else
    EXPECT_EQ(dispatchMode(), DispatchMode::Switch);
}

//===----------------------------------------------------------------------===//
// Full-suite differential: 4 configurations, one observable contract
//===----------------------------------------------------------------------===//

/// For every suite workload: the switch + unfused configuration (the
/// portable baseline both features layer on) fixes the reference
/// observables; the other three configurations must reproduce them
/// exactly, including the captured event stream byte-for-byte.
TEST(Dispatch, DifferentialAcrossSuite) {
  for (const Workload &W : workloadSuite()) {
    SCOPED_TRACE(W.Name);
    auto M = minic::compileOrDie(W.Source);
    RunSnapshot Ref = runConfig(W, *M, DispatchMode::Switch, false);
    ASSERT_TRUE(Ref.Result.ok()) << Ref.Result.TrapMessage;
    expectSnapshotsEqual(Ref, runConfig(W, *M, DispatchMode::Switch, true),
                         "switch+fused");
    expectSnapshotsEqual(Ref,
                         runConfig(W, *M, DispatchMode::Threaded, false),
                         "threaded+unfused");
    expectSnapshotsEqual(Ref, runConfig(W, *M, DispatchMode::Threaded, true),
                         "threaded+fused");
  }
}

//===----------------------------------------------------------------------===//
// Trap and budget paths
//===----------------------------------------------------------------------===//

/// A trapping run must surface the identical trap (status, message,
/// instruction count) from every configuration — the threaded loop's
/// terminator pseudo-ops and mid-pair fusion gates must sync the machine
/// to the same faulting instruction the switch loop reports.
TEST(Dispatch, TrapsIdenticalAcrossConfigs) {
  using namespace bpfree::ir;
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg A = Bld.loadImm(5);
  Reg B = Bld.loadImm(7);
  Reg Sum = Bld.add(A, B); // fusible prefix before the fault
  Bld.retValue(Bld.load(Sum, 1ull << 61, MemWidth::I64));

  RunResult Ref;
  for (DispatchMode Mode : {DispatchMode::Switch, DispatchMode::Threaded}) {
    for (bool Fuse : {false, true}) {
      DispatchGuard G(Mode);
      DecodeOptions Opts;
      Opts.EnableFusion = Fuse;
      Interpreter Interp(M, RunLimits(), Opts);
      RunResult R = Interp.run(Dataset());
      EXPECT_EQ(R.Status, RunStatus::Trap);
      if (Mode == DispatchMode::Switch && !Fuse) {
        Ref = R;
        continue;
      }
      EXPECT_EQ(R.InstrCount, Ref.InstrCount);
      EXPECT_EQ(R.TrapMessage, Ref.TrapMessage);
    }
  }
}

/// Deterministic budget exhaustion: MaxInstructions must stop every
/// configuration at the same count with the same status, for budgets
/// landing on every phase of a fused pair and of a block's terminator.
TEST(Dispatch, BudgetStopsAtSameInstructionEverywhere) {
  const Workload &W = *findWorkload("treesort");
  auto M = minic::compileOrDie(W.Source);
  for (uint64_t Budget : {1ull, 2ull, 3ull, 1000ull, 1001ull, 99'999ull}) {
    SCOPED_TRACE("budget " + std::to_string(Budget));
    RunLimits Limits;
    Limits.MaxInstructions = Budget;
    RunResult Ref;
    for (DispatchMode Mode : {DispatchMode::Switch, DispatchMode::Threaded}) {
      for (bool Fuse : {false, true}) {
        DispatchGuard G(Mode);
        DecodeOptions Opts;
        Opts.EnableFusion = Fuse;
        Interpreter Interp(*M, Limits, Opts);
        RunResult R = Interp.run(W.Datasets[0]);
        if (Mode == DispatchMode::Switch && !Fuse) {
          Ref = R;
          EXPECT_EQ(R.Status, RunStatus::BudgetExceeded);
          continue;
        }
        EXPECT_EQ(R.Status, Ref.Status);
        EXPECT_EQ(R.InstrCount, Ref.InstrCount);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Fault-injected runs
//===----------------------------------------------------------------------===//

/// Per-instruction observers force the switch loop regardless of the
/// knob, and fusion must be invisible to them (the observer walk reports
/// defused opcodes). So a fault-injected run — whatever failure the seed
/// lands on, wherever it lands — must produce identical results and an
/// identical ride-along trace across all four configurations.
TEST(Dispatch, FaultInjectedRunsIdenticalAcrossConfigs) {
  for (const char *Name : {"treesort", "circuit"}) {
    for (uint64_t Seed : {3ull, 11ull, 42ull}) {
      SCOPED_TRACE(std::string(Name) + " seed " + std::to_string(Seed));
      const Workload &W = *findWorkload(Name);
      auto M = minic::compileOrDie(W.Source);
      RunResult Ref;
      std::vector<Event> RefTrace;
      for (DispatchMode Mode :
           {DispatchMode::Switch, DispatchMode::Threaded}) {
        for (bool Fuse : {false, true}) {
          DispatchGuard G(Mode);
          DecodeOptions Opts;
          Opts.EnableFusion = Fuse;
          Interpreter Interp(*M, RunLimits(), Opts);
          BranchTrace Trace(*M);
          FaultInjector Injector(
              FaultPlan::fromSeed(Seed, 10'000, 2'000'000));
          RunResult R = Interp.run(W.Datasets[0], {&Trace, &Injector});
          Trace.finalize(R.InstrCount);
          std::vector<Event> Events = decodeAll(Trace);
          if (Mode == DispatchMode::Switch && !Fuse) {
            Ref = R;
            RefTrace = std::move(Events);
            continue;
          }
          EXPECT_EQ(R.Status, Ref.Status);
          EXPECT_EQ(R.InstrCount, Ref.InstrCount);
          EXPECT_EQ(R.TrapMessage, Ref.TrapMessage);
          EXPECT_EQ(Events, RefTrace);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// FP compare + flag-branch fusion
//===----------------------------------------------------------------------===//

/// An FP compare that ends its block feeding a BC1T/BC1F flag branch
/// fuses into the FCmp*Br forms. The fused handler must still leave the
/// frame's FP condition flag set (budget-bail resumption re-reads it via
/// the plain terminator), so a budget sweep across the fusion gate has
/// to stop at the same instruction with the same outcome everywhere.
TEST(Dispatch, FpCompareBranchFusesAndMatches) {
  using namespace bpfree::ir;
  // A small FP loop: sums 0.25 until the sum exceeds a threshold read
  // through both BC1T and BC1F forms, so taken and not-taken flag
  // branches are exercised on every iteration.
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Check = F->createBlock("check");
  BasicBlock *Done = F->createBlock("done");
  Bld.setInsertBlock(Entry);
  Reg SumF = Bld.loadFImm(0.0);
  Reg Step = Bld.loadFImm(0.25);
  Reg Limit = Bld.loadFImm(100.0);
  Bld.jump(Loop);
  Bld.setInsertBlock(Loop);
  Reg Next = Bld.fbinop(Opcode::FAdd, SumF, Step);
  Bld.moveInto(SumF, Next);
  Bld.fcmp(Opcode::FCmpLt, SumF, Limit); // BC1T form (Fuse = 0)
  Bld.flagBranch(BranchOp::BC1T, Check, Done);
  Bld.setInsertBlock(Check);
  Bld.fcmp(Opcode::FCmpLe, Limit, SumF); // BC1F form (Fuse = 1)
  Bld.flagBranch(BranchOp::BC1F, Loop, Done);
  Bld.setInsertBlock(Done);
  Bld.retValue(Bld.funop(Opcode::CvtFI, SumF));

  // Decode-time rewrite happened: both trailing compares became the
  // fused flag-branch forms.
  DecodedModule DM = decodeModule(M);
  size_t FpFused = 0;
  for (const DecodedFunction &DF : DM.Functions)
    for (const DecodedBlock &DB : DF.Blocks)
      if (DB.NumInsts > 0) {
        const DOp Op = DB.Insts[DB.NumInsts - 1].Op;
        if (Op == DOp::FCmpEqBr || Op == DOp::FCmpLtBr ||
            Op == DOp::FCmpLeBr)
          ++FpFused;
      }
  EXPECT_EQ(FpFused, 2u);

  // Differential over the four configurations, unlimited and with
  // budgets chosen to land on the compare, the gate, and the branch.
  for (uint64_t Budget : {0ull, 5ull, 6ull, 7ull, 8ull, 9ull, 10ull}) {
    SCOPED_TRACE("budget " + std::to_string(Budget));
    RunLimits Limits;
    if (Budget)
      Limits.MaxInstructions = Budget;
    RunResult Ref;
    for (DispatchMode Mode : {DispatchMode::Switch, DispatchMode::Threaded}) {
      for (bool Fuse : {false, true}) {
        DispatchGuard G(Mode);
        DecodeOptions Opts;
        Opts.EnableFusion = Fuse;
        Interpreter Interp(M, Limits, Opts);
        RunResult R = Interp.run(Dataset());
        if (Mode == DispatchMode::Switch && !Fuse) {
          Ref = R;
          continue;
        }
        EXPECT_EQ(R.Status, Ref.Status);
        EXPECT_EQ(R.ExitValue, Ref.ExitValue);
        EXPECT_EQ(R.InstrCount, Ref.InstrCount);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Fusion accounting
//===----------------------------------------------------------------------===//

/// The "interp.fused_pairs" counter bills decode-time fusion: a fused
/// decode of a real workload must rewrite at least one pair, an unfused
/// decode must rewrite none.
TEST(Dispatch, FusedPairsMetricCountsRewrites) {
  metrics::setEnabled(true);
  metrics::Counter &Fused = metrics::counter("interp.fused_pairs");
  const Workload &W = *findWorkload("treesort");
  auto M = minic::compileOrDie(W.Source);

  const uint64_t Before = Fused.value();
  {
    DecodeOptions Opts;
    Opts.EnableFusion = false;
    Interpreter Unfused(*M, RunLimits(), Opts);
    EXPECT_EQ(Fused.value(), Before) << "unfused decode billed pairs";
  }
  {
    Interpreter Default(*M); // fusion defaults on
    EXPECT_GT(Fused.value(), Before) << "fused decode billed no pairs";
  }
  metrics::setEnabled(false);
}

} // namespace
