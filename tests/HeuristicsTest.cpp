//===- tests/HeuristicsTest.cpp - Unit tests for the 7 heuristics ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each heuristic is exercised on hand-built IR where the paper's
/// definition pins down the expected answer, including the negative
/// cases (property on both successors, postdomination defeats, GP
/// filter, call-between-load-and-branch).
///
//===----------------------------------------------------------------------===//

#include "predict/Heuristics.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// A module with one function under construction plus a callee for the
/// Call heuristic.
struct HeuristicFixture {
  Module M;
  Function *Callee;
  Function *F;
  IRBuilder B;

  HeuristicFixture()
      : Callee(M.createFunction("callee", 0)),
        F(M.createFunction("f", 2)), B(F) {
    IRBuilder CB(Callee);
    CB.setInsertBlock(Callee->createBlock("entry"));
    CB.ret();
  }

  Reg param(unsigned I) { return F->getParamReg(I); }

  FunctionContext context() { return FunctionContext(*F); }

  std::optional<Direction> apply(HeuristicKind K, const BasicBlock &BB,
                                 const HeuristicConfig &Config = {}) {
    FunctionContext Ctx(*F);
    return applyHeuristic(K, BB, Ctx, Config);
  }
};

//===----------------------------------------------------------------------===//
// Opcode heuristic
//===----------------------------------------------------------------------===//

TEST(OpcodeHeuristic, ZeroCompareBranches) {
  struct Case {
    BranchOp Op;
    std::optional<Direction> Expected;
  } Cases[] = {
      {BranchOp::BLTZ, DirFallthru},
      {BranchOp::BLEZ, DirFallthru},
      {BranchOp::BGTZ, DirTaken},
      {BranchOp::BGEZ, DirTaken},
      {BranchOp::BEQ, std::nullopt},
      {BranchOp::BNE, std::nullopt},
  };
  for (const auto &C : Cases) {
    HeuristicFixture H;
    BasicBlock *Entry = H.F->createBlock("entry");
    BasicBlock *T = H.F->createBlock("t");
    BasicBlock *E = H.F->createBlock("e");
    H.B.setInsertBlock(Entry);
    H.B.condBranch(C.Op, H.param(0), H.param(1), T, E);
    H.B.setInsertBlock(T);
    H.B.ret();
    H.B.setInsertBlock(E);
    H.B.ret();
    EXPECT_EQ(H.apply(HeuristicKind::Opcode, *Entry), C.Expected)
        << branchOpName(C.Op);
  }
}

TEST(OpcodeHeuristic, FpEqualityPredictedFalse) {
  for (bool UseBc1t : {true, false}) {
    HeuristicFixture H;
    BasicBlock *Entry = H.F->createBlock("entry");
    BasicBlock *T = H.F->createBlock("t");
    BasicBlock *E = H.F->createBlock("e");
    H.B.setInsertBlock(Entry);
    H.B.fcmp(Opcode::FCmpEq, H.param(0), H.param(1));
    H.B.flagBranch(UseBc1t ? BranchOp::BC1T : BranchOp::BC1F, T, E);
    H.B.setInsertBlock(T);
    H.B.ret();
    H.B.setInsertBlock(E);
    H.B.ret();
    // Equality is predicted false: bc1t falls through, bc1f is taken.
    EXPECT_EQ(H.apply(HeuristicKind::Opcode, *Entry),
              UseBc1t ? DirFallthru : DirTaken);
  }
}

TEST(OpcodeHeuristic, FpRelationalNotCovered) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *E = H.F->createBlock("e");
  H.B.setInsertBlock(Entry);
  H.B.fcmp(Opcode::FCmpLt, H.param(0), H.param(1));
  H.B.flagBranch(BranchOp::BC1T, T, E);
  H.B.setInsertBlock(T);
  H.B.ret();
  H.B.setInsertBlock(E);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Opcode, *Entry), std::nullopt)
      << "only FP *equality* tests are covered by the opcode heuristic";
}

//===----------------------------------------------------------------------===//
// Call heuristic
//===----------------------------------------------------------------------===//

/// entry: branch -> t | e; t contains a call then jumps to join; e jumps
/// to join; join returns.
TEST(CallHeuristic, AvoidsCallingSuccessor) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *E = H.F->createBlock("e");
  BasicBlock *Join = H.F->createBlock("join");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, E);
  H.B.setInsertBlock(T);
  H.B.callVoid(H.Callee, {});
  H.B.jump(Join);
  H.B.setInsertBlock(E);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Call, *Entry), DirFallthru)
      << "predict the successor without the call";
}

TEST(CallHeuristic, BothSuccessorsCallMeansNoPrediction) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *E = H.F->createBlock("e");
  BasicBlock *Join = H.F->createBlock("join");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, E);
  H.B.setInsertBlock(T);
  H.B.callVoid(H.Callee, {});
  H.B.jump(Join);
  H.B.setInsertBlock(E);
  H.B.callVoid(H.Callee, {});
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Call, *Entry), std::nullopt);
}

TEST(CallHeuristic, PostdominatingCallerDoesNotCount) {
  // entry -> t | join; t -> join; join contains the call and returns.
  // join postdominates entry, so its call must not trigger.
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *Join = H.F->createBlock("join");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, Join);
  H.B.setInsertBlock(T);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.callVoid(H.Callee, {});
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Call, *Entry), std::nullopt)
      << "the calling successor postdominates the branch";
}

TEST(CallHeuristic, JumpChainToDominatedCall) {
  // t -> mid (jump), mid has the call, t dominates mid.
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *Mid = H.F->createBlock("mid");
  BasicBlock *E = H.F->createBlock("e");
  BasicBlock *Join = H.F->createBlock("join");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, E);
  H.B.setInsertBlock(T);
  H.B.jump(Mid);
  H.B.setInsertBlock(Mid);
  H.B.callVoid(H.Callee, {});
  H.B.jump(Join);
  H.B.setInsertBlock(E);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Call, *Entry), DirFallthru);
}

//===----------------------------------------------------------------------===//
// Return heuristic
//===----------------------------------------------------------------------===//

TEST(ReturnHeuristic, AvoidsReturningSuccessor) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");    // returns (error path)
  BasicBlock *E = H.F->createBlock("e");    // goes on to work
  BasicBlock *Work = H.F->createBlock("w"); // branchy continuation
  BasicBlock *Done = H.F->createBlock("d");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, E);
  H.B.setInsertBlock(T);
  H.B.ret();
  H.B.setInsertBlock(E);
  H.B.jump(Work);
  H.B.setInsertBlock(Work);
  // The continuation is a loop, not an immediate return — otherwise the
  // jump chain would reach a return and both successors would have the
  // property.
  H.B.condBranch(BranchOp::BGTZ, H.param(0), Reg(), Work, Done);
  H.B.setInsertBlock(Done);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Return, *Entry), DirFallthru);
}

TEST(ReturnHeuristic, JumpChainToReturn) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *Mid = H.F->createBlock("mid");
  BasicBlock *E = H.F->createBlock("e");
  BasicBlock *Loop = H.F->createBlock("loop");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, E);
  H.B.setInsertBlock(T);
  H.B.jump(Mid);
  H.B.setInsertBlock(Mid);
  H.B.ret();
  H.B.setInsertBlock(E);
  H.B.jump(Loop);
  H.B.setInsertBlock(Loop);
  H.B.condBranch(BranchOp::BGTZ, H.param(0), Reg(), Loop, Mid);
  EXPECT_EQ(H.apply(HeuristicKind::Return, *Entry), DirFallthru);
}

TEST(ReturnHeuristic, BothReturnMeansNoPrediction) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *E = H.F->createBlock("e");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, E);
  H.B.setInsertBlock(T);
  H.B.ret();
  H.B.setInsertBlock(E);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Return, *Entry), std::nullopt);
}

//===----------------------------------------------------------------------===//
// Store heuristic
//===----------------------------------------------------------------------===//

TEST(StoreHeuristic, AvoidsStoringSuccessor) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *E = H.F->createBlock("e");
  BasicBlock *Join = H.F->createBlock("join");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, E);
  H.B.setInsertBlock(T);
  H.B.store(H.param(0), SpReg, 0, MemWidth::I64);
  H.B.jump(Join);
  H.B.setInsertBlock(E);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Store, *Entry), DirFallthru);
}

TEST(StoreHeuristic, PostdominatingStoreDoesNotCount) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *Join = H.F->createBlock("join");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BEQ, H.param(0), H.param(1), T, Join);
  H.B.setInsertBlock(T);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.store(H.param(0), SpReg, 0, MemWidth::I64);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Store, *Entry), std::nullopt);
}

//===----------------------------------------------------------------------===//
// Guard heuristic
//===----------------------------------------------------------------------===//

/// if (p != 0) use *p  — guard predicts the using successor.
TEST(GuardHeuristic, PrefersUsingSuccessor) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *Use = H.F->createBlock("use");
  BasicBlock *Skip = H.F->createBlock("skip");
  BasicBlock *Join = H.F->createBlock("join");
  Reg P = H.param(0);
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BNE, P, ZeroReg, Use, Skip);
  H.B.setInsertBlock(Use);
  H.B.load(P, 0, MemWidth::I64); // use of p before any def
  H.B.jump(Join);
  H.B.setInsertBlock(Skip);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Guard, *Entry), DirTaken);
}

TEST(GuardHeuristic, DefBeforeUseDefeats) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *Use = H.F->createBlock("use");
  BasicBlock *Skip = H.F->createBlock("skip");
  BasicBlock *Join = H.F->createBlock("join");
  Reg P = H.param(0);
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BNE, P, ZeroReg, Use, Skip);
  H.B.setInsertBlock(Use);
  // p is *redefined* before being used: writeReg via Move into p's reg.
  H.B.moveInto(P, ZeroReg);
  H.B.load(P, 0, MemWidth::I64);
  H.B.jump(Join);
  H.B.setInsertBlock(Skip);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Guard, *Entry), std::nullopt);
}

TEST(GuardHeuristic, FpCompareOperandsAreAnalyzed) {
  // if (a == b) both successors, one uses a.
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *E = H.F->createBlock("e");
  BasicBlock *Join = H.F->createBlock("join");
  Reg A = H.param(0), Bp = H.param(1);
  H.B.setInsertBlock(Entry);
  H.B.fcmp(Opcode::FCmpLt, A, Bp);
  H.B.flagBranch(BranchOp::BC1T, T, E);
  H.B.setInsertBlock(T);
  H.B.fbinop(Opcode::FAdd, A, A); // uses a
  H.B.jump(Join);
  H.B.setInsertBlock(E);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Guard, *Entry), DirTaken)
      << "the paper's guard heuristic analyzes FP branches too";
}

TEST(GuardHeuristic, GeneralizedDepthFindsRemoteUse) {
  // use is two blocks away: depth 1 (paper) misses it, depth 3 finds it.
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *T2 = H.F->createBlock("t2");
  BasicBlock *E = H.F->createBlock("e");
  BasicBlock *Join = H.F->createBlock("join");
  Reg P = H.param(0);
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BNE, P, ZeroReg, T, E);
  H.B.setInsertBlock(T);
  H.B.loadImm(1); // unrelated work, no use of p
  H.B.jump(T2);
  H.B.setInsertBlock(T2);
  H.B.load(P, 0, MemWidth::I64);
  H.B.jump(Join);
  H.B.setInsertBlock(E);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  HeuristicConfig Paper;
  EXPECT_EQ(H.apply(HeuristicKind::Guard, *Entry, Paper), std::nullopt);
  HeuristicConfig Deep;
  Deep.GuardSearchDepth = 3;
  EXPECT_EQ(H.apply(HeuristicKind::Guard, *Entry, Deep), DirTaken);
}

//===----------------------------------------------------------------------===//
// Loop heuristic (non-loop branches choosing to enter loops)
//===----------------------------------------------------------------------===//

TEST(LoopHeuristic, PrefersLoopEnteringSuccessor) {
  // entry: branch -> head | skip; head: loop on itself then to join;
  // skip -> join.
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *Head = H.F->createBlock("head");
  BasicBlock *Skip = H.F->createBlock("skip");
  BasicBlock *Join = H.F->createBlock("join");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BGTZ, H.param(0), Reg(), Head, Skip);
  H.B.setInsertBlock(Head);
  H.B.condBranch(BranchOp::BGTZ, H.param(1), Reg(), Head, Join);
  H.B.setInsertBlock(Skip);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Loop, *Entry), DirTaken);
}

TEST(LoopHeuristic, PreheaderCountsAsLoopEntry) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *Pre = H.F->createBlock("pre");
  BasicBlock *Head = H.F->createBlock("head");
  BasicBlock *Skip = H.F->createBlock("skip");
  BasicBlock *Join = H.F->createBlock("join");
  H.B.setInsertBlock(Entry);
  H.B.condBranch(BranchOp::BGTZ, H.param(0), Reg(), Pre, Skip);
  H.B.setInsertBlock(Pre);
  H.B.jump(Head);
  H.B.setInsertBlock(Head);
  H.B.condBranch(BranchOp::BGTZ, H.param(1), Reg(), Head, Join);
  H.B.setInsertBlock(Skip);
  H.B.jump(Join);
  H.B.setInsertBlock(Join);
  H.B.ret();
  EXPECT_EQ(H.apply(HeuristicKind::Loop, *Entry), DirTaken);
}

//===----------------------------------------------------------------------===//
// Pointer heuristic
//===----------------------------------------------------------------------===//

/// Builds: load p from SP slot; beq/bne p, zero.
struct PointerFixture : HeuristicFixture {
  BasicBlock *Entry, *T, *E;

  void finish(BranchOp Op, Reg Lhs, Reg Rhs) {
    T = F->createBlock("t");
    E = F->createBlock("e");
    B.condBranch(Op, Lhs, Rhs, T, E);
    B.setInsertBlock(T);
    B.ret();
    B.setInsertBlock(E);
    B.ret();
  }
};

TEST(PointerHeuristic, NullTestViaLoadedPointer) {
  PointerFixture H;
  H.Entry = H.F->createBlock("entry");
  H.B.setInsertBlock(H.Entry);
  Reg P = H.B.load(SpReg, 0, MemWidth::I64);
  H.finish(BranchOp::BEQ, P, ZeroReg);
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry), DirFallthru)
      << "p == 0 predicted false";

  PointerFixture H2;
  H2.Entry = H2.F->createBlock("entry");
  H2.B.setInsertBlock(H2.Entry);
  Reg P2 = H2.B.load(SpReg, 0, MemWidth::I64);
  H2.finish(BranchOp::BNE, P2, ZeroReg);
  EXPECT_EQ(H2.apply(HeuristicKind::Pointer, *H2.Entry), DirTaken)
      << "p != 0 predicted true";
}

TEST(PointerHeuristic, TwoLoadedPointers) {
  PointerFixture H;
  H.Entry = H.F->createBlock("entry");
  H.B.setInsertBlock(H.Entry);
  Reg P = H.B.load(SpReg, 0, MemWidth::I64);
  Reg Q = H.B.load(P, 8, MemWidth::I64);
  H.finish(BranchOp::BEQ, P, Q);
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry), DirFallthru);
}

TEST(PointerHeuristic, GpRelativeLoadExcluded) {
  PointerFixture H;
  H.Entry = H.F->createBlock("entry");
  H.B.setInsertBlock(H.Entry);
  Reg P = H.B.load(GpReg, 0, MemWidth::I64);
  H.finish(BranchOp::BEQ, P, ZeroReg);
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry), std::nullopt)
      << "loads off GP are not considered";

  // Ablation: with the GP filter off, the branch is covered.
  HeuristicConfig NoFilter;
  NoFilter.PointerGpFilter = false;
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry, NoFilter),
            DirFallthru);
}

TEST(PointerHeuristic, CallBetweenLoadAndBranchDisqualifies) {
  PointerFixture H;
  H.Entry = H.F->createBlock("entry");
  H.B.setInsertBlock(H.Entry);
  Reg P = H.B.load(SpReg, 0, MemWidth::I64);
  H.B.callVoid(H.Callee, {});
  H.finish(BranchOp::BEQ, P, ZeroReg);
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry), std::nullopt);
}

TEST(PointerHeuristic, LoadAfterCallIsFine) {
  PointerFixture H;
  H.Entry = H.F->createBlock("entry");
  H.B.setInsertBlock(H.Entry);
  H.B.callVoid(H.Callee, {});
  Reg P = H.B.load(SpReg, 0, MemWidth::I64);
  H.finish(BranchOp::BEQ, P, ZeroReg);
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry), DirFallthru);
}

TEST(PointerHeuristic, NonLoadDefDisqualifies) {
  PointerFixture H;
  H.Entry = H.F->createBlock("entry");
  H.B.setInsertBlock(H.Entry);
  Reg P = H.B.addImm(SpReg, 16);
  H.finish(BranchOp::BEQ, P, ZeroReg);
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry), std::nullopt);
}

TEST(PointerHeuristic, TypeInfoVariantUsesAnnotation) {
  PointerFixture H;
  H.Entry = H.F->createBlock("entry");
  H.B.setInsertBlock(H.Entry);
  // Not a load pattern: pointer arrives in a register (parameter).
  H.finish(BranchOp::BEQ, H.param(0), ZeroReg);
  H.Entry->terminator().PointerCompare = true;

  HeuristicConfig Pattern; // default: opcode-pattern variant
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry, Pattern),
            std::nullopt);

  HeuristicConfig Typed;
  Typed.PointerUseTypeInfo = true;
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry, Typed), DirFallthru);

  // Without the annotation, the typed variant declines.
  H.Entry->terminator().PointerCompare = false;
  EXPECT_EQ(H.apply(HeuristicKind::Pointer, *H.Entry, Typed), std::nullopt);
}

//===----------------------------------------------------------------------===//
// applyAllHeuristics masks
//===----------------------------------------------------------------------===//

TEST(ApplyAll, MasksMatchIndividualApplications) {
  HeuristicFixture H;
  BasicBlock *Entry = H.F->createBlock("entry");
  BasicBlock *T = H.F->createBlock("t");
  BasicBlock *E = H.F->createBlock("e");
  BasicBlock *Join = H.F->createBlock("join");
  BasicBlock *Exit = H.F->createBlock("exit");
  H.B.setInsertBlock(Entry);
  Reg P = H.B.load(SpReg, 0, MemWidth::I64);
  H.B.condBranch(BranchOp::BNE, P, ZeroReg, T, E);
  H.B.setInsertBlock(T);
  H.B.load(P, 0, MemWidth::I64);
  H.B.jump(Join);
  H.B.setInsertBlock(E);
  H.B.ret();
  H.B.setInsertBlock(Join);
  // Keep the taken side's continuation branchy so only the fall-thru
  // successor has the Return property.
  H.B.condBranch(BranchOp::BGTZ, P, Reg(), Join, Exit);
  H.B.setInsertBlock(Exit);
  H.B.ret();

  FunctionContext Ctx(*H.F);
  auto [Mask, Dirs] = applyAllHeuristics(*Entry, Ctx);
  for (HeuristicKind K : AllHeuristics) {
    auto Single = applyHeuristic(K, *Entry, Ctx);
    unsigned Bit = 1u << static_cast<unsigned>(K);
    EXPECT_EQ(static_cast<bool>(Mask & Bit), Single.has_value())
        << heuristicName(K);
    if (Single) {
      EXPECT_EQ((Dirs & Bit) ? DirFallthru : DirTaken, *Single)
          << heuristicName(K);
    }
  }
  // This branch is a pointer null check guarding a use and an early
  // return on the other side: Pointer, Guard, and Return must all
  // apply.
  EXPECT_TRUE(Mask & (1u << static_cast<unsigned>(HeuristicKind::Pointer)));
  EXPECT_TRUE(Mask & (1u << static_cast<unsigned>(HeuristicKind::Guard)));
  EXPECT_TRUE(Mask & (1u << static_cast<unsigned>(HeuristicKind::Return)));
}

TEST(HeuristicNames, PaperSpellings) {
  EXPECT_STREQ(heuristicName(HeuristicKind::Pointer), "Point");
  EXPECT_STREQ(heuristicName(HeuristicKind::Opcode), "Opcode");
  EXPECT_STREQ(heuristicName(HeuristicKind::Guard), "Guard");
}

/// heuristicName is a stable external interface (JSON keys, table
/// headers, reports): every kind must have a unique, non-empty name,
/// pinned here so a rename breaks a test instead of silently breaking
/// downstream document consumers — and heuristicFromName must invert it.
TEST(HeuristicNames, UniqueStableAndRoundTrip) {
  const std::map<HeuristicKind, std::string> Expected = {
      {HeuristicKind::Opcode, "Opcode"}, {HeuristicKind::Loop, "Loop"},
      {HeuristicKind::Call, "Call"},     {HeuristicKind::Return, "Return"},
      {HeuristicKind::Guard, "Guard"},   {HeuristicKind::Store, "Store"},
      {HeuristicKind::Pointer, "Point"}};
  ASSERT_EQ(Expected.size(), AllHeuristics.size());
  std::set<std::string> Seen;
  for (HeuristicKind K : AllHeuristics) {
    const std::string Name = heuristicName(K);
    EXPECT_EQ(Name, Expected.at(K));
    EXPECT_TRUE(Seen.insert(Name).second) << "duplicate name " << Name;
    std::optional<HeuristicKind> Back = heuristicFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, K);
  }
  // The trap the doc comment warns about: the paper's spelling is
  // "Point", so the enum spelling must not resolve.
  EXPECT_FALSE(heuristicFromName("Pointer").has_value());
  EXPECT_FALSE(heuristicFromName("").has_value());
  EXPECT_FALSE(heuristicFromName("point").has_value());
}

} // namespace
