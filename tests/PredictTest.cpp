//===- tests/PredictTest.cpp - Predictors, evaluation, ordering -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the static predictors, the evaluation harness (Tables 2,
/// 3, 5, 6 computations), and the ordering machinery, including the
/// key optimality property: no static predictor beats the perfect
/// predictor on any workload.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "predict/Ordering.h"
#include "vm/Interpreter.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <set>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// Compiles, runs under a profiler, and returns (module, ctx, profile,
/// stats) for a MiniC source.
struct CompiledRun {
  std::unique_ptr<Module> M;
  std::unique_ptr<PredictionContext> Ctx;
  std::unique_ptr<EdgeProfile> Profile;
  std::vector<BranchStats> Stats;
  RunResult Result;

  explicit CompiledRun(const std::string &Src, Dataset Data = Dataset(),
                       HeuristicConfig Config = {}) {
    M = minic::compileOrDie(Src);
    Ctx = std::make_unique<PredictionContext>(*M);
    Profile = std::make_unique<EdgeProfile>(*M);
    Interpreter Interp(*M);
    Result = Interp.run(Data, {Profile.get()});
    EXPECT_TRUE(Result.ok()) << Result.TrapMessage;
    Stats = collectBranchStats(*Ctx, *Profile, Config);
  }
};

//===----------------------------------------------------------------------===//
// Basic predictors
//===----------------------------------------------------------------------===//

TEST(PerfectPredictor, PicksMajorityDirection) {
  // Loop runs 9 iterations with i%3==0 taken 3 of 9 times.
  CompiledRun R("int main() { int i; int s = 0;\n"
                "  for (i = 0; i < 9; i++) { if (i % 3 == 0) { s++; } }\n"
                "  return s; }");
  PerfectPredictor P(*R.Profile);
  uint64_t PerfectMisses = 0, Total = 0;
  for (const BranchStats &S : R.Stats) {
    if (S.total() == 0)
      continue;
    Total += S.total();
    PerfectMisses += S.missesFor(P.predict(*S.BB));
    // Perfect's misses on each branch equal min(taken, fallthru).
    EXPECT_EQ(S.missesFor(P.predict(*S.BB)), S.perfectMisses());
  }
  EXPECT_GT(Total, 0u);
  EXPECT_LT(PerfectMisses, Total);
}

TEST(RandomPredictor, DeterministicPerBranch) {
  CompiledRun R("int main() { int i; int s = 0;\n"
                "  for (i = 0; i < 9; i++) { if (i % 3 == 0) { s++; } }\n"
                "  return s; }");
  RandomPredictor P1(7), P2(7), P3(8);
  bool AnyDiffer = false;
  for (const BranchStats &S : R.Stats) {
    EXPECT_EQ(P1.predict(*S.BB), P2.predict(*S.BB));
    if (P1.predict(*S.BB) != P3.predict(*S.BB))
      AnyDiffer = true;
  }
  (void)AnyDiffer; // different seeds usually differ, but not guaranteed
}

TEST(NaivePredictors, TakenAndFallthru) {
  CompiledRun R("int main() { int i; int s = 0;\n"
                "  for (i = 0; i < 100; i++) { s += i; }\n"
                "  return s; }");
  AlwaysTakenPredictor Taken;
  AlwaysFallthruPredictor Fall;
  Ratio TakenMiss = evaluatePredictor(Taken, R.Stats);
  Ratio FallMiss = evaluatePredictor(Fall, R.Stats);
  // Every executed branch contributes to exactly one of the two.
  EXPECT_EQ(TakenMiss.Num + FallMiss.Num, TakenMiss.Den);
  EXPECT_EQ(TakenMiss.Den, FallMiss.Den);
}

//===----------------------------------------------------------------------===//
// The Ball-Larus predictor on characteristic programs
//===----------------------------------------------------------------------===//

TEST(BallLarusPredictor, LoopBranchesPredictedToIterate) {
  // A hot loop: the loop predictor must predict iteration, giving a
  // low miss rate on this program regardless of heuristics.
  CompiledRun R("int main() { int i; int s = 0;\n"
                "  for (i = 0; i < 1000; i++) { s += i; }\n"
                "  return s; }");
  BallLarusPredictor BL(*R.Ctx);
  Ratio Miss = evaluatePredictor(BL, R.Stats);
  EXPECT_LT(Miss.rate(), 0.05) << "1000-iteration loop: ~1/1000 miss";
}

TEST(BallLarusPredictor, NullGuardIdiom) {
  // Pointer-chasing with null guards: the combined heuristic should
  // predict "pointer not null" and beat random by a wide margin.
  CompiledRun R(
      "struct n { int v; struct n *next; };\n"
      "int main() {\n"
      "  struct n *head = 0; int i; int s = 0;\n"
      "  for (i = 0; i < 200; i++) {\n"
      "    struct n *e = malloc(sizeof(struct n));\n"
      "    e->v = i; e->next = head; head = e;\n"
      "  }\n"
      "  while (head != 0) { s += head->v; head = head->next; }\n"
      "  return s % 1000;\n"
      "}");
  BallLarusPredictor BL(*R.Ctx);
  Ratio Miss = evaluatePredictor(BL, R.Stats);
  EXPECT_LT(Miss.rate(), 0.15) << "list-walk branches are predictable";
}

TEST(BallLarusPredictor, ErrorCodeIdiom) {
  // Functions returning negative error codes: the early error return
  // is caught by the Return heuristic (the success path continues
  // working), and the caller's "< 0" check by the Opcode heuristic.
  CompiledRun R(
      "int work(int x) {\n"
      "  int r = 0;\n"
      "  if (x % 97 == 13) { return -1; }\n"
      "  while (x > 0) { r += x % 3; x /= 2; }\n"
      "  return r;\n"
      "}\n"
      "int main() {\n"
      "  int i; int errs = 0; int s = 0;\n"
      "  for (i = 0; i < 500; i++) {\n"
      "    int r = work(i);\n"
      "    if (r < 0) { errs++; } else { s += r; }\n"
      "  }\n"
      "  return errs;\n"
      "}");
  BallLarusPredictor BL(*R.Ctx);
  Ratio Miss = evaluatePredictor(BL, R.Stats);
  EXPECT_LT(Miss.rate(), 0.2);
}

TEST(BallLarusPredictor, ResponsibleHeuristicAttribution) {
  CompiledRun R(
      "int main() {\n"
      "  int i; int s = 0;\n"
      "  for (i = 0; i < 50; i++) { if (i < 0) { s--; } else { s++; } }\n"
      "  return s;\n"
      "}");
  BallLarusPredictor BL(*R.Ctx);
  bool SawOpcode = false;
  for (const BranchStats &S : R.Stats) {
    auto Resp = BL.responsibleHeuristic(*S.BB);
    if (Resp && *Resp == HeuristicKind::Opcode)
      SawOpcode = true;
    if (S.IsLoopBranch) {
      EXPECT_FALSE(Resp.has_value())
          << "loop branches are not attributed to heuristics";
    }
  }
  EXPECT_TRUE(SawOpcode) << "'i < 0' lowers to bltz, opcode-covered";
}

TEST(BallLarusPredictor, DefaultPolicies) {
  CompiledRun R("int main() { int i; int s = 0;\n"
                "  for (i = 0; i < 10; i++) { s += i; } return s; }");
  // Whatever the policy, predictions stay within the two directions
  // and are stable.
  for (DefaultPolicy Policy : {DefaultPolicy::Random, DefaultPolicy::Taken,
                               DefaultPolicy::Fallthru}) {
    BallLarusPredictor BL(*R.Ctx, paperOrder(), {}, Policy);
    for (const BranchStats &S : R.Stats) {
      Direction D1 = BL.predict(*S.BB);
      Direction D2 = BL.predict(*S.BB);
      EXPECT_EQ(D1, D2);
      EXPECT_LE(D1, 1u);
    }
  }
}

//===----------------------------------------------------------------------===//
// Evaluation: loop/non-loop breakdown
//===----------------------------------------------------------------------===//

TEST(Evaluation, LoopNonLoopBreakdownOnRotatedLoop) {
  // One rotated while-loop, executed with many iterations: the latch
  // dominates the dynamic count, so loop-branch share must be high and
  // the loop predictor accurate.
  CompiledRun R("int main() { int i = 0; int s = 0;\n"
                "  while (i < 500) { s += i; i++; }\n"
                "  return s; }");
  LoopNonLoopBreakdown B = computeLoopNonLoopBreakdown(R.Stats);
  EXPECT_GT(B.TotalExecs, 400u);
  EXPECT_LT(B.nonLoopFraction(), 0.2)
      << "latch iterations dominate this program";
  EXPECT_LT(B.LoopPredictorMiss.rate(), 0.05);
  EXPECT_LE(B.LoopPerfectMiss.rate(), B.LoopPredictorMiss.rate());
}

TEST(Evaluation, BigBranchesDetected) {
  // One if inside the loop accounts for ~all non-loop executions.
  CompiledRun R("int main() { int i; int s = 0;\n"
                "  for (i = 0; i < 300; i++) { if (i % 4) { s++; } }\n"
                "  return s; }");
  LoopNonLoopBreakdown B = computeLoopNonLoopBreakdown(R.Stats);
  EXPECT_GE(B.BigBranchCount, 1u);
  EXPECT_GT(B.BigBranchFraction, 0.5);
}

TEST(Evaluation, HeuristicIsolationConsistency) {
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0);
  auto Isolation = computeHeuristicIsolation(Run->Stats);
  ASSERT_EQ(Isolation.size(), NumHeuristics);
  uint64_t NonLoop = 0;
  for (const BranchStats &S : Run->Stats)
    if (!S.IsLoopBranch)
      NonLoop += S.total();
  for (const HeuristicIsolation &H : Isolation) {
    EXPECT_EQ(H.NonLoopExecs, NonLoop);
    EXPECT_LE(H.CoveredExecs, NonLoop);
    EXPECT_LE(H.Miss.Num, H.Miss.Den);
    EXPECT_EQ(H.Miss.Den, H.CoveredExecs);
    EXPECT_EQ(H.PerfectMiss.Den, H.CoveredExecs);
    // Perfect is a lower bound on the heuristic over the same branches.
    EXPECT_LE(H.PerfectMiss.Num, H.Miss.Num) << heuristicName(H.Kind);
  }
}

TEST(Evaluation, CombinedSlotsPartitionNonLoopExecs) {
  auto Run = runWorkloadOrExit(*findWorkload("lisp"), 0);
  CombinedResult C = computeCombined(Run->Stats);
  uint64_t SlotSum = 0;
  for (const auto &Slot : C.Slots)
    SlotSum += Slot.CoveredExecs;
  EXPECT_EQ(SlotSum, C.NonLoopExecs)
      << "every non-loop execution lands in exactly one slot";
  EXPECT_EQ(C.NonLoopMiss.Den, C.NonLoopExecs);
  EXPECT_GE(C.AllMiss.Den, C.NonLoopExecs);
  EXPECT_LE(C.NonLoopPerfectMiss.Num, C.NonLoopMiss.Num);
  EXPECT_LE(C.AllPerfectMiss.Num, C.AllMiss.Num);
}

TEST(Evaluation, CombinedMatchesPredictorObject) {
  // computeCombined (mask-based) and BallLarusPredictor (direct) must
  // yield identical all-branch miss counts for the same order.
  for (const char *Name : {"treesort", "eqn", "circuit"}) {
    auto Run = runWorkloadOrExit(*findWorkload(Name), 0);
    CombinedResult C = computeCombined(Run->Stats);
    BallLarusPredictor BL(*Run->Ctx);
    Ratio Direct = evaluatePredictor(BL, Run->Stats);
    EXPECT_EQ(C.AllMiss.Num, Direct.Num) << Name;
    EXPECT_EQ(C.AllMiss.Den, Direct.Den) << Name;
  }
}

TEST(Evaluation, PerfectIsOptimalAcrossPredictors) {
  // The paper's "perfect static predictor provides an upper bound on
  // the performance of any static predictor".
  auto Run = runWorkloadOrExit(*findWorkload("qsortbench"), 0);
  EdgeProfile &Profile = *Run->Profile;
  PerfectPredictor Perfect(Profile);
  Ratio PerfectMiss = evaluatePredictor(Perfect, Run->Stats);

  AlwaysTakenPredictor Taken;
  AlwaysFallthruPredictor Fall;
  RandomPredictor Rand(3);
  BallLarusPredictor BL(*Run->Ctx);
  LoopRandPredictor LR(*Run->Ctx);
  for (const StaticPredictor *P :
       std::initializer_list<const StaticPredictor *>{&Taken, &Fall, &Rand,
                                                      &BL, &LR}) {
    Ratio Miss = evaluatePredictor(*P, Run->Stats);
    EXPECT_GE(Miss.Num, PerfectMiss.Num) << P->name();
    EXPECT_EQ(Miss.Den, PerfectMiss.Den) << P->name();
  }
}

//===----------------------------------------------------------------------===//
// Ordering machinery
//===----------------------------------------------------------------------===//

TEST(Ordering, AllOrdersEnumerates5040DistinctOrders) {
  const auto &Orders = allOrders();
  ASSERT_EQ(Orders.size(), NumOrders);
  std::set<std::string> Seen;
  for (const HeuristicOrder &O : Orders) {
    // Each order is a permutation of all 7 heuristics.
    std::set<HeuristicKind> Kinds(O.begin(), O.end());
    EXPECT_EQ(Kinds.size(), NumHeuristics);
    Seen.insert(orderToString(O));
  }
  EXPECT_EQ(Seen.size(), NumOrders);
}

TEST(Ordering, PaperOrderIsInTheEnumeration) {
  const auto &Orders = allOrders();
  std::string Paper = orderToString(paperOrder());
  bool Found = false;
  for (const HeuristicOrder &O : Orders)
    if (orderToString(O) == Paper)
      Found = true;
  EXPECT_TRUE(Found);
  EXPECT_EQ(Paper, "Point>Call>Opcode>Return>Store>Loop>Guard");
}

TEST(Ordering, EvaluatorAgreesWithComputeCombined) {
  auto Run = runWorkloadOrExit(*findWorkload("hashwords"), 0);
  OrderEvaluator Eval(Run->Stats);
  Rng R(11);
  const auto &Orders = allOrders();
  for (int Trial = 0; Trial < 25; ++Trial) {
    const HeuristicOrder &O = Orders[R.below(Orders.size())];
    CombinedResult C = computeCombined(Run->Stats, O);
    EXPECT_NEAR(Eval.missRate(O), C.NonLoopMiss.rate(), 1e-12)
        << orderToString(O);
  }
}

TEST(Ordering, OrderSelectionExhaustive) {
  // Three synthetic benchmarks whose per-order miss vectors have known
  // minima: benchmark b prefers order b (miss 0), all others miss 1.
  std::vector<std::vector<double>> PerBench(3,
                                            std::vector<double>(NumOrders, 1));
  PerBench[0][5] = 0.0;
  PerBench[1][5] = 0.1;
  PerBench[2][7] = 0.0;
  OrderSelectionResult R = runOrderSelection(PerBench, 2);
  EXPECT_EQ(R.NumTrials, 3u); // C(3,2)
  // Subsets {0,1} and {0,2}, {1,2}: order 5 wins {0,1} (0.1) and
  // ties/wins others depending on sums.
  EXPECT_GT(R.Frequency[5] + R.Frequency[7], 0u);
  uint64_t TotalFreq = 0;
  for (uint64_t F : R.Frequency)
    TotalFreq += F;
  EXPECT_EQ(TotalFreq, R.NumTrials);
  auto Sorted = R.byFrequency();
  ASSERT_FALSE(Sorted.empty());
  EXPECT_GE(R.Frequency[Sorted[0]],
            R.Frequency[Sorted[Sorted.size() - 1]]);
}

TEST(Ordering, MaxTrialsCapsEnumeration) {
  std::vector<std::vector<double>> PerBench(
      6, std::vector<double>(NumOrders, 0.5));
  OrderSelectionResult R = runOrderSelection(PerBench, 3, 7);
  EXPECT_EQ(R.NumTrials, 7u);
}

TEST(Ordering, OrderChangesMissRateOnRealWorkload) {
  // On a workload with overlapping heuristics, different orders give
  // different miss rates (Graph 1's spread).
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0);
  OrderEvaluator Eval(Run->Stats);
  std::vector<double> Rates = Eval.allMissRates();
  double MinRate = *std::min_element(Rates.begin(), Rates.end());
  double MaxRate = *std::max_element(Rates.begin(), Rates.end());
  EXPECT_LT(MinRate, MaxRate) << "ordering must matter";
  // Every rate is a valid probability.
  for (double Rate : Rates) {
    EXPECT_GE(Rate, 0.0);
    EXPECT_LE(Rate, 1.0);
  }
}

} // namespace
