//===- tests/SimplifyTest.cpp - CFG block-merging tests -------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/IRBuilder.h"
#include "ir/Simplify.h"
#include "ir/Verifier.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

TEST(SimplifyTest, MergesSinglePredJumpChain) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Mid = F->createBlock("mid");
  BasicBlock *End = F->createBlock("end");
  B.setInsertBlock(Entry);
  B.loadImm(1);
  B.jump(Mid);
  B.setInsertBlock(Mid);
  B.loadImm(2);
  B.jump(End);
  B.setInsertBlock(End);
  Reg R = B.loadImm(3);
  B.retValue(R);

  size_t Merged = simplifyCfg(*F);
  EXPECT_EQ(Merged, 2u);
  // Entry now holds all three instructions and returns directly.
  EXPECT_EQ(F->getEntry()->instructions().size(), 3u);
  EXPECT_TRUE(F->getEntry()->isReturnBlock());
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(SimplifyTest, DoesNotMergeMultiPredTarget) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  B.condBranch(BranchOp::BGTZ, F->getParamReg(0), Reg(), T, E);
  B.setInsertBlock(T);
  B.jump(Join);
  B.setInsertBlock(E);
  B.jump(Join);
  B.setInsertBlock(Join);
  B.ret();

  EXPECT_EQ(simplifyCfg(*F), 0u) << "join has two predecessors";
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(SimplifyTest, DoesNotMergeLoopHead) {
  // entry -> head; head -> head | exit. head has 2 preds (entry +
  // backedge), so nothing merges.
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.jump(Head);
  B.setInsertBlock(Head);
  B.condBranch(BranchOp::BGTZ, F->getParamReg(0), Reg(), Head, Exit);
  B.setInsertBlock(Exit);
  B.ret();

  EXPECT_EQ(simplifyCfg(*F), 0u);
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(SimplifyTest, IgnoresDeadPredecessors) {
  // Dead block D also jumps to Mid; Mid still merges because D is
  // unreachable.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Mid = F->createBlock("mid");
  BasicBlock *Dead = F->createBlock("dead");
  B.setInsertBlock(Entry);
  B.jump(Mid);
  B.setInsertBlock(Mid);
  B.ret();
  B.setInsertBlock(Dead);
  B.jump(Mid);

  EXPECT_EQ(simplifyCfg(*F), 1u);
  EXPECT_TRUE(F->getEntry()->isReturnBlock());
}

TEST(SimplifyTest, SemanticsPreservedOnMiniC) {
  // The same program must produce identical output and exit value with
  // simplification applied (compile() already applies it; compare an
  // unsimplified pipeline manually is not exposed, so instead check
  // execution results and that loop latches got merged into body
  // tails: the rotated while-loop's bottom test shares a block with
  // the preceding body instructions).
  const char *Src =
      "struct n { int v; struct n *next; };\n"
      "int main() {\n"
      "  struct n *head = 0; int i; int s = 0;\n"
      "  for (i = 0; i < 50; i++) {\n"
      "    struct n *e = malloc(sizeof(struct n));\n"
      "    e->v = i; e->next = head; head = e;\n"
      "  }\n"
      "  while (head != 0) { s += head->v; head = head->next; }\n"
      "  return s;\n"
      "}";
  auto M = minic::compileOrDie(Src);
  Interpreter Interp(*M);
  RunResult R = Interp.run(Dataset());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 49 * 50 / 2);

  // Find the list-walk bottom test: a BNE against zero in a block that
  // also contains the load of head->next.
  const ir::Function *Main = M->findFunction("main");
  ASSERT_NE(Main, nullptr);
  bool FoundMergedLatch = false;
  for (const auto &BB : *Main) {
    if (!BB->isCondBranch())
      continue;
    const Terminator &T = BB->terminator();
    if (T.BOp != BranchOp::BNE && T.BOp != BranchOp::BEQ)
      continue;
    for (const Instruction &I : BB->instructions())
      if (I.isLoad() && I.def() == T.Lhs)
        FoundMergedLatch = true;
  }
  EXPECT_TRUE(FoundMergedLatch)
      << "the rotated loop's bottom null test must share a block with "
         "the pointer load (pointer-heuristic pattern)";
}

TEST(SimplifyTest, ModuleLevelRunsAllFunctions) {
  Module M;
  for (int I = 0; I < 3; ++I) {
    Function *F = M.createFunction("f" + std::to_string(I), 0);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Next = F->createBlock("next");
    B.setInsertBlock(Entry);
    B.jump(Next);
    B.setInsertBlock(Next);
    B.ret();
  }
  EXPECT_EQ(simplifyCfg(M), 3u);
}

} // namespace
