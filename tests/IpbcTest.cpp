//===- tests/IpbcTest.cpp - Sequence-length / IPBC analysis tests ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/SequenceAnalysis.h"
#include "vm/Interpreter.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bpfree;

namespace {

TEST(SequenceHistogram, BucketingAndTotals) {
  SequenceHistogram H;
  H.record(5);    // bucket 0
  H.record(12);   // bucket 1
  H.record(9990); // bucket 999 (cap)
  H.record(50000);
  EXPECT_EQ(H.NumSequences[0], 1u);
  EXPECT_EQ(H.NumSequences[1], 1u);
  EXPECT_EQ(H.NumSequences[999], 2u);
  EXPECT_EQ(H.TotalInstrs, 5u + 12u + 9990u + 50000u);
  EXPECT_EQ(H.SumLengths[999], 59990u);
}

TEST(SequenceHistogram, IpbcAverage) {
  SequenceHistogram H;
  H.record(100);
  H.record(300);
  H.Breaks = 2;
  EXPECT_DOUBLE_EQ(H.ipbcAverage(), 200.0);
  H.BranchExecs = 8;
  EXPECT_DOUBLE_EQ(H.missRate(), 0.25);
}

TEST(SequenceHistogram, DividingLength) {
  SequenceHistogram H;
  // 10 sequences of length 10 (bucket 1) and one of length 900.
  for (int I = 0; I < 10; ++I)
    H.record(10);
  H.record(900);
  // Total 1000; half = 500; cumulative reaches 500 inside bucket 90.
  double DL = H.dividingLength();
  EXPECT_GE(DL, 100.0);
  EXPECT_LE(DL, 905.0);
}

TEST(SequenceHistogram, CurvesAreMonotoneAndEndAtOne) {
  SequenceHistogram H;
  for (uint64_t L : {3u, 18u, 250u, 4000u, 12000u})
    H.record(L);
  auto Instr = H.instrCurve();
  auto Breaks = H.breakCurve();
  ASSERT_FALSE(Instr.empty());
  double Prev = 0;
  for (auto [X, Y] : Instr) {
    EXPECT_GE(Y, Prev);
    Prev = Y;
  }
  EXPECT_NEAR(Instr.back().second, 1.0, 1e-12);
  EXPECT_NEAR(Breaks.back().second, 1.0, 1e-12);
}

TEST(SequenceModel, MatchesClosedForm) {
  // f(m, s) = 1 - (1-m)^s, the paper's Graph 12.
  EXPECT_NEAR(sequenceModel(0.5, 1), 0.5, 1e-12);
  EXPECT_NEAR(sequenceModel(0.1, 10), 1.0 - std::pow(0.9, 10), 1e-12);
  EXPECT_NEAR(sequenceModel(0.0, 100), 0.0, 1e-12);
  EXPECT_NEAR(sequenceModel(1.0, 3), 1.0, 1e-12);
  // Monotone in both arguments.
  EXPECT_LT(sequenceModel(0.05, 10), sequenceModel(0.10, 10));
  EXPECT_LT(sequenceModel(0.05, 10), sequenceModel(0.05, 20));
}

TEST(SequenceCollector, PerfectNeverBreaksOnBiasedBranch) {
  // All branches go one way: perfect predicts everything, so it sees
  // one unbroken sequence covering the entire run.
  auto M = minic::compileOrDie(
      "int main() { int i; int s = 0;\n"
      "  for (i = 0; i < 200; i++) { if (i >= 0) { s++; } }\n"
      "  return s; }");
  // First pass: profile.
  EdgeProfile Profile(*M);
  Interpreter Interp(*M);
  RunResult R1 = Interp.run(Dataset(), {&Profile});
  ASSERT_TRUE(R1.ok());
  // Second pass: collect sequences for the perfect predictor.
  PerfectPredictor Perfect(Profile);
  SequenceCollector Collector(*M, {&Perfect});
  RunResult R2 = Interp.run(Dataset(), {&Collector});
  ASSERT_TRUE(R2.ok());
  Collector.finalize(R2.InstrCount);
  const SequenceHistogram &H = Collector.histograms()[0];
  // The loop exit is the single potential miss; perfect predicts the
  // majority (iterate) so exactly one break occurs at the end — or zero
  // if ties broke favorably. Either way, almost no breaks.
  EXPECT_LE(H.Breaks, 2u);
  EXPECT_EQ(H.TotalInstrs, R2.InstrCount)
      << "finalize accounts for every executed instruction";
}

TEST(SequenceCollector, MultiplePredictorsInOnePass) {
  auto Run = runWorkloadOrExit(*findWorkload("eqn"), 0);
  PerfectPredictor Perfect(*Run->Profile);
  BallLarusPredictor BL(*Run->Ctx);
  LoopRandPredictor LR(*Run->Ctx);
  SequenceCollector Collector(*Run->M, {&Perfect, &BL, &LR});
  Interpreter Interp(*Run->M);
  RunResult R = Interp.run(Run->dataset(), {&Collector});
  ASSERT_TRUE(R.ok());
  Collector.finalize(R.InstrCount);

  const auto &Hists = Collector.histograms();
  ASSERT_EQ(Hists.size(), 3u);
  // All see the same branch executions.
  EXPECT_EQ(Hists[0].BranchExecs, Hists[1].BranchExecs);
  EXPECT_EQ(Hists[1].BranchExecs, Hists[2].BranchExecs);
  EXPECT_GT(Hists[0].BranchExecs, 1000u);
  // Perfect breaks least; its IPBC average is the largest.
  EXPECT_LE(Hists[0].Breaks, Hists[1].Breaks);
  EXPECT_LE(Hists[0].Breaks, Hists[2].Breaks);
  EXPECT_GE(Hists[0].ipbcAverage(), Hists[1].ipbcAverage());
  // Sequence accounting is exact for every predictor.
  for (const auto &H : Hists) {
    EXPECT_EQ(H.TotalInstrs, R.InstrCount);
    uint64_t Seqs = 0;
    for (uint64_t N : H.NumSequences)
      Seqs += N;
    // #sequences = #breaks + the final unterminated sequence (if any).
    EXPECT_GE(Seqs, H.Breaks);
    EXPECT_LE(Seqs, H.Breaks + 1);
  }
}

TEST(SequenceCollector, MissRateMatchesEvaluation) {
  // The trace-based miss rate must equal the profile-based one: same
  // predictor, same execution.
  auto Run = runWorkloadOrExit(*findWorkload("grep"), 0);
  BallLarusPredictor BL(*Run->Ctx);
  Ratio ProfileMiss = evaluatePredictor(BL, Run->Stats);

  SequenceCollector Collector(*Run->M, {&BL});
  Interpreter Interp(*Run->M);
  RunResult R = Interp.run(Run->dataset(), {&Collector});
  ASSERT_TRUE(R.ok());
  Collector.finalize(R.InstrCount);
  const SequenceHistogram &H = Collector.histograms()[0];
  EXPECT_EQ(H.Breaks, ProfileMiss.Num);
  EXPECT_EQ(H.BranchExecs, ProfileMiss.Den);
  EXPECT_NEAR(H.missRate(), ProfileMiss.rate(), 1e-12);
}

} // namespace
