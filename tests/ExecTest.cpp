//===- tests/ExecTest.cpp - End-to-end MiniC execution tests --------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles MiniC programs and runs them in the VM, checking outputs,
/// exit values, trap behavior, and observer events. This is the
/// substrate integration test: frontend -> IR -> interpreter.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "vm/EdgeProfile.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace bpfree;

namespace {

RunResult runSource(const std::string &Src, Dataset Data = Dataset(),
                    RunLimits Limits = RunLimits()) {
  auto M = minic::compile(Src);
  EXPECT_TRUE(M.hasValue()) << (M ? "" : M.error().render());
  if (!M)
    return RunResult();
  Interpreter Interp(**M, Limits);
  return Interp.run(Data);
}

TEST(ExecTest, ReturnValue) {
  RunResult R = runSource("int main() { return 42; }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 42);
}

TEST(ExecTest, Arithmetic) {
  RunResult R = runSource(
      "int main() { return (7 + 3) * 2 - 6 / 2 - (17 % 5); }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 20 - 3 - 2);
}

TEST(ExecTest, NegativeDivisionAndRemainder) {
  RunResult R = runSource("int main() { return -7 / 2 * 100 + -7 % 2; }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, -300 - 1) << "C truncating semantics";
}

TEST(ExecTest, Bitwise) {
  RunResult R = runSource("int main() { return ((5 & 3) << 4) | (8 >> 2) "
                          "| (1 ^ 3); }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, ((5 & 3) << 4) | (8 >> 2) | (1 ^ 3));
}

TEST(ExecTest, ComparisonValues) {
  RunResult R = runSource(
      "int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) * 10 "
      "+ (4 == 4) + (4 != 4) * 100; }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 1 + 1 + 1 + 0 + 1 + 0);
}

TEST(ExecTest, ShortCircuit) {
  // Division by zero on the unevaluated side must not trap.
  RunResult R = runSource(
      "int zero() { return 0; }\n"
      "int main() {\n"
      "  int a = 0;\n"
      "  if (zero() && 1 / a) { return 1; }\n"
      "  if (1 || 1 / a) { return 7; }\n"
      "  return 2;\n"
      "}");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 7);
}

TEST(ExecTest, WhileAndForLoops) {
  RunResult R = runSource(
      "int main() {\n"
      "  int s = 0; int i;\n"
      "  for (i = 1; i <= 10; i++) { s += i; }\n"
      "  while (s > 50) { s -= 3; }\n"
      "  do { s++; } while (s < 52);\n"
      "  return s;\n"
      "}");
  EXPECT_TRUE(R.ok());
  int S = 55;
  while (S > 50)
    S -= 3;
  do
    S++;
  while (S < 52);
  EXPECT_EQ(R.ExitValue, S);
}

TEST(ExecTest, BreakContinue) {
  RunResult R = runSource(
      "int main() {\n"
      "  int s = 0; int i;\n"
      "  for (i = 0; i < 100; i++) {\n"
      "    if (i % 2 == 0) { continue; }\n"
      "    if (i > 10) { break; }\n"
      "    s += i;\n"
      "  }\n"
      "  return s;\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 1 + 3 + 5 + 7 + 9);
}

TEST(ExecTest, Recursion) {
  RunResult R = runSource(
      "int fib(int n) { if (n < 2) { return n; } "
      "return fib(n - 1) + fib(n - 2); }\n"
      "int main() { return fib(15); }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 610);
}

TEST(ExecTest, MutualRecursion) {
  RunResult R = runSource(
      "int is_even(int n) { if (n == 0) { return 1; } "
      "return is_odd(n - 1); }\n"
      "int is_odd(int n) { if (n == 0) { return 0; } "
      "return is_even(n - 1); }\n"
      "int main() { return is_even(10) * 10 + is_odd(7); }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 11);
}

TEST(ExecTest, GlobalsAndInitializers) {
  RunResult R = runSource(
      "int g = 7; double d = 2.5; int arr[4]; char c = 65;\n"
      "int main() {\n"
      "  arr[0] = g; arr[1] = arr[0] * 2; arr[3] = c;\n"
      "  return arr[1] + (int)(d * 2.0) + arr[3] + arr[2];\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 14 + 5 + 65 + 0);
}

TEST(ExecTest, DoubleArithmetic) {
  RunResult R = runSource(
      "int main() {\n"
      "  double a = 1.5; double b = 2.25;\n"
      "  double c = a * b + a / b - (a - b);\n"
      "  return (int)(c * 1000.0);\n"
      "}");
  EXPECT_TRUE(R.ok());
  double C = 1.5 * 2.25 + 1.5 / 2.25 - (1.5 - 2.25);
  EXPECT_EQ(R.ExitValue, static_cast<int64_t>(C * 1000.0));
}

TEST(ExecTest, DoubleComparisons) {
  RunResult R = runSource(
      "int main() {\n"
      "  double a = 1.5; double b = 2.5; int s = 0;\n"
      "  if (a < b) { s += 1; }\n"
      "  if (a > b) { s += 10; }\n"
      "  if (a <= 1.5) { s += 100; }\n"
      "  if (a >= 1.6) { s += 1000; }\n"
      "  if (a == 1.5) { s += 10000; }\n"
      "  if (a != 1.5) { s += 100000; }\n"
      "  s += (a < b);\n"
      "  return s;\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 1 + 100 + 10000 + 1);
}

TEST(ExecTest, IntDoubleConversions) {
  RunResult R = runSource(
      "int main() {\n"
      "  double d = 7; int i = 2.9; int j = -2.9;\n"
      "  return (int)(d + 0.5) * 100 + i * 10 + j;\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 700 + 20 - 2) << "double->int truncates toward 0";
}

TEST(ExecTest, PointersAndAddressOf) {
  RunResult R = runSource(
      "void bump(int *p) { *p = *p + 5; }\n"
      "int main() {\n"
      "  int x = 10;\n"
      "  int *p = &x;\n"
      "  bump(p);\n"
      "  *p += 2;\n"
      "  return x;\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 17);
}

TEST(ExecTest, PointerArithmetic) {
  RunResult R = runSource(
      "int a[10];\n"
      "int main() {\n"
      "  int *p = a; int *q;\n"
      "  int i;\n"
      "  for (i = 0; i < 10; i++) { a[i] = i * i; }\n"
      "  q = p + 7;\n"
      "  return *q + (q - p);\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 49 + 7);
}

TEST(ExecTest, CharsAndStrings) {
  RunResult R = runSource(
      "int main() {\n"
      "  char buf[16];\n"
      "  char *s = \"hi!\";\n"
      "  int i = 0;\n"
      "  while (s[i] != 0) { buf[i] = s[i]; i++; }\n"
      "  buf[i] = 0;\n"
      "  print_str(buf);\n"
      "  return buf[0] + buf[2];\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Output, "hi!");
  EXPECT_EQ(R.ExitValue, 'h' + '!');
}

TEST(ExecTest, CharSignExtension) {
  RunResult R = runSource(
      "int main() { char c = 200; if (c < 0) { return 1; } return 0; }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 0) << "register-resident char is not re-narrowed";
  R = runSource("char g;\n"
                "int main() { g = 200; if (g < 0) { return 1; } "
                "return 0; }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 1) << "memory chars are signed 8-bit";
}

TEST(ExecTest, StructsAndMalloc) {
  RunResult R = runSource(
      "struct node { int v; struct node *next; };\n"
      "int main() {\n"
      "  struct node *head = 0;\n"
      "  int i; int sum = 0;\n"
      "  for (i = 0; i < 10; i++) {\n"
      "    struct node *n = malloc(sizeof(struct node));\n"
      "    n->v = i; n->next = head; head = n;\n"
      "  }\n"
      "  while (head != 0) { sum = sum * 10 + head->v; head = head->next; }\n"
      "  return sum % 100000;\n"
      "}");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  // List is 9,8,...,0 -> digits 9876543210; mod 1e5 = 43210.
  EXPECT_EQ(R.ExitValue, 43210);
}

TEST(ExecTest, StructByValueMembers) {
  RunResult R = runSource(
      "struct pt { int x; int y; double w; };\n"
      "int main() {\n"
      "  struct pt p;\n"
      "  p.x = 3; p.y = 4; p.w = 1.5;\n"
      "  return p.x * p.y + (int)p.w;\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 13);
}

TEST(ExecTest, IncDecSemantics) {
  RunResult R = runSource(
      "int main() {\n"
      "  int a = 5; int r = 0;\n"
      "  r += a++;\n" // 5, a=6
      "  r += ++a;\n" // 7, a=7
      "  r += a--;\n" // 7, a=6
      "  r += --a;\n" // 5, a=5
      "  return r * 10 + a;\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 24 * 10 + 5);
}

TEST(ExecTest, PrintIntrinsics) {
  RunResult R = runSource(
      "int main() {\n"
      "  print_int(-42);\n"
      "  print_char(44);\n"
      "  print_double(2.5);\n"
      "  print_char(10);\n"
      "  return 0;\n"
      "}");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Output, "-42,2.5\n");
}

TEST(ExecTest, DatasetIntrinsics) {
  Dataset D("t", {10, 20}, {5, 6, 7});
  RunResult R = runSource(
      "int main() { return arg(0) + arg(1) + arg(9) + input_len() * 100 "
      "+ input_byte(2) + input_byte(99); }",
      D);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 10 + 20 + 0 + 300 + 7 + 0);
}

//===----------------------------------------------------------------------===//
// Traps and limits
//===----------------------------------------------------------------------===//

TEST(ExecTest, DivisionByZeroTraps) {
  RunResult R = runSource("int main() { int a = 0; return 5 / a; }");
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.TrapMessage.find("division by zero"), std::string::npos);
}

TEST(ExecTest, NullDereferenceTraps) {
  RunResult R = runSource("int main() { int *p = 0; return *p; }");
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.TrapMessage.find("out of bounds"), std::string::npos);
}

TEST(ExecTest, ExplicitTrap) {
  RunResult R = runSource("int main() { trap(); return 0; }");
  EXPECT_EQ(R.Status, RunStatus::Trap);
}

TEST(ExecTest, InstructionBudget) {
  RunLimits L;
  L.MaxInstructions = 1000;
  RunResult R = runSource("int main() { int i = 0; while (1) { i++; } "
                          "return i; }",
                          Dataset(), L);
  EXPECT_EQ(R.Status, RunStatus::BudgetExceeded);
  EXPECT_EQ(R.InstrCount, 1000u);
}

TEST(ExecTest, StackOverflowTraps) {
  RunResult R = runSource(
      "int f(int n) { int pad[512]; pad[0] = n; return f(n + 1) + "
      "pad[0]; }\n"
      "int main() { return f(0); }");
  EXPECT_EQ(R.Status, RunStatus::Trap);
}

TEST(ExecTest, FloatDivisionByZeroIsIeee) {
  RunResult R = runSource(
      "int main() { double z = 0.0; double x = 1.0 / z; "
      "if (x > 1000000.0) { return 1; } return 0; }");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 1) << "1/0.0 is +inf, no trap";
}

//===----------------------------------------------------------------------===//
// Observers
//===----------------------------------------------------------------------===//

TEST(ExecTest, EdgeProfileCountsBranches) {
  auto M = minic::compileOrDie(
      "int main() {\n"
      "  int i; int odd = 0;\n"
      "  for (i = 0; i < 10; i++) { if (i % 2 == 1) { odd++; } }\n"
      "  return odd;\n"
      "}");
  EdgeProfile Profile(*M);
  Interpreter Interp(*M);
  RunResult R = Interp.run(Dataset(), {&Profile});
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 5);
  // The if takes each direction 5 times; total branch executions cover
  // the loop guard + latch + if.
  uint64_t Total = Profile.totalBranchExecutions();
  EXPECT_GE(Total, 10u + 10u);
  // Sum of per-branch counts is consistent across a second run.
  EdgeProfile P2(*M);
  Interpreter I2(*M);
  I2.run(Dataset(), {&P2});
  EXPECT_EQ(P2.totalBranchExecutions(), Total) << "determinism";
}

TEST(ExecTest, EdgeProfileMerge) {
  auto M = minic::compileOrDie(
      "int main() { int i; int s = 0; for (i = 0; i < arg(0); i++) "
      "{ s += i; } return s; }");
  EdgeProfile A(*M), B(*M);
  Interpreter Interp(*M);
  Interp.run(Dataset("a", {5}), {&A});
  Interp.run(Dataset("b", {9}), {&B});
  uint64_t TotalA = A.totalBranchExecutions();
  uint64_t TotalB = B.totalBranchExecutions();
  A.merge(B);
  EXPECT_EQ(A.totalBranchExecutions(), TotalA + TotalB);
}

TEST(ExecTest, OutputDeterminism) {
  const char *Src = "int main() { int i; for (i = 0; i < 5; i++) "
                    "{ print_int(i * 7); print_char(32); } return 0; }";
  RunResult R1 = runSource(Src);
  RunResult R2 = runSource(Src);
  EXPECT_EQ(R1.Output, "0 7 14 21 28 ");
  EXPECT_EQ(R1.Output, R2.Output);
  EXPECT_EQ(R1.InstrCount, R2.InstrCount);
}

} // namespace
