//===- tests/InterpreterTest.cpp - IR-level interpreter semantics ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct IR-level tests of the VM: per-opcode semantics (parameterized
/// sweeps), branch condition evaluation for every BranchOp, memory
/// widths and bounds, call/return value plumbing, and the dedicated
/// registers. These bypass the frontend entirely.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// Runs a single-function module whose main computes one binary op on
/// two immediates and returns it.
int64_t runBinop(Opcode Op, int64_t A, int64_t B) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg RA = Bld.loadImm(A);
  Reg RB = Bld.loadImm(B);
  Bld.retValue(Bld.binop(Op, RA, RB));
  EXPECT_TRUE(verifyModule(M).empty());
  Interpreter Interp(M);
  RunResult R = Interp.run(Dataset());
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return R.ExitValue;
}

double runFBinop(Opcode Op, double A, double B) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg RA = Bld.loadFImm(A);
  Reg RB = Bld.loadFImm(B);
  Bld.retValue(Bld.fbinop(Op, RA, RB));
  Interpreter Interp(M);
  RunResult R = Interp.run(Dataset());
  EXPECT_TRUE(R.ok());
  double D;
  int64_t V = R.ExitValue;
  std::memcpy(&D, &V, 8);
  return D;
}

//===----------------------------------------------------------------------===//
// Parameterized integer ALU sweep
//===----------------------------------------------------------------------===//

struct AluCase {
  const char *Name;
  Opcode Op;
  int64_t A, B, Expected;
};

class AluSweep : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSweep, Computes) {
  const AluCase &C = GetParam();
  EXPECT_EQ(runBinop(C.Op, C.A, C.B), C.Expected) << C.Name;
}

constexpr int64_t IMin = std::numeric_limits<int64_t>::min();
constexpr int64_t IMax = std::numeric_limits<int64_t>::max();

const AluCase AluCases[] = {
    {"add", Opcode::Add, 2, 3, 5},
    {"add_wrap", Opcode::Add, IMax, 1, IMin},
    {"sub", Opcode::Sub, 2, 5, -3},
    {"sub_wrap", Opcode::Sub, IMin, 1, IMax},
    {"mul", Opcode::Mul, -7, 6, -42},
    {"mul_wrap", Opcode::Mul, IMax, 2, -2},
    {"div_trunc_neg", Opcode::Div, -7, 2, -3},
    {"div_minint", Opcode::Div, IMin, -1, IMin},
    {"rem_sign", Opcode::Rem, -7, 2, -1},
    {"rem_minint", Opcode::Rem, IMin, -1, 0},
    {"and", Opcode::And, 0b1100, 0b1010, 0b1000},
    {"or", Opcode::Or, 0b1100, 0b1010, 0b1110},
    {"xor", Opcode::Xor, 0b1100, 0b1010, 0b0110},
    {"shl", Opcode::Shl, 1, 10, 1024},
    {"shl_mask", Opcode::Shl, 1, 64, 1}, // shift amounts mask to 6 bits
    {"shr_arith", Opcode::Shr, -16, 2, -4},
    {"shr_pos", Opcode::Shr, 1024, 3, 128},
    {"slt_true", Opcode::Slt, -5, 3, 1},
    {"slt_false", Opcode::Slt, 3, -5, 0},
    {"slt_signed", Opcode::Slt, IMin, 0, 1},
    {"seq_true", Opcode::Seq, 9, 9, 1},
    {"seq_false", Opcode::Seq, 9, 8, 0},
    {"sne_true", Opcode::Sne, 9, 8, 1},
    {"sne_false", Opcode::Sne, 9, 9, 0},
};

INSTANTIATE_TEST_SUITE_P(
    Semantics, AluSweep, ::testing::ValuesIn(AluCases),
    [](const ::testing::TestParamInfo<AluCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// FP semantics
//===----------------------------------------------------------------------===//

TEST(FpSemantics, Arithmetic) {
  EXPECT_DOUBLE_EQ(runFBinop(Opcode::FAdd, 1.5, 2.25), 3.75);
  EXPECT_DOUBLE_EQ(runFBinop(Opcode::FSub, 1.5, 2.25), -0.75);
  EXPECT_DOUBLE_EQ(runFBinop(Opcode::FMul, 1.5, -2.0), -3.0);
  EXPECT_DOUBLE_EQ(runFBinop(Opcode::FDiv, 1.0, 4.0), 0.25);
}

TEST(FpSemantics, IeeeSpecials) {
  EXPECT_TRUE(std::isinf(runFBinop(Opcode::FDiv, 1.0, 0.0)));
  EXPECT_TRUE(std::isnan(runFBinop(Opcode::FDiv, 0.0, 0.0)));
}

TEST(FpSemantics, Conversions) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg D = Bld.loadFImm(-2.75);
  Bld.retValue(Bld.funop(Opcode::CvtFI, D));
  Interpreter Interp(M);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, -2) << "truncate toward zero";
}

TEST(FpSemantics, CvtFiSaturates) {
  for (double In : {1e300, -1e300}) {
    Module M;
    Function *F = M.createFunction("main", 0);
    IRBuilder Bld(F);
    Bld.setInsertBlock(F->createBlock("entry"));
    Bld.retValue(Bld.funop(Opcode::CvtFI, Bld.loadFImm(In)));
    Interpreter Interp(M);
    RunResult R = Interp.run(Dataset());
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.ExitValue, In > 0 ? IMax : IMin);
  }
}

//===----------------------------------------------------------------------===//
// Branch condition sweep
//===----------------------------------------------------------------------===//

struct BranchCase {
  const char *Name;
  BranchOp Op;
  int64_t Lhs, Rhs;
  bool ExpectTaken;
};

class BranchSweep : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchSweep, EvaluatesCondition) {
  const BranchCase &C = GetParam();
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  Bld.setInsertBlock(Entry);
  Reg A = Bld.loadImm(C.Lhs);
  Reg B = Bld.loadImm(C.Rhs);
  Bld.condBranch(C.Op, A, B, T, E);
  Bld.setInsertBlock(T);
  Bld.retValue(Bld.loadImm(1));
  Bld.setInsertBlock(E);
  Bld.retValue(Bld.loadImm(0));
  Interpreter Interp(M);
  RunResult R = Interp.run(Dataset());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, C.ExpectTaken ? 1 : 0) << C.Name;
}

const BranchCase BranchCases[] = {
    {"beq_eq", BranchOp::BEQ, 4, 4, true},
    {"beq_ne", BranchOp::BEQ, 4, 5, false},
    {"bne_ne", BranchOp::BNE, 4, 5, true},
    {"bne_eq", BranchOp::BNE, 4, 4, false},
    {"blez_neg", BranchOp::BLEZ, -1, 0, true},
    {"blez_zero", BranchOp::BLEZ, 0, 0, true},
    {"blez_pos", BranchOp::BLEZ, 1, 0, false},
    {"bgtz_pos", BranchOp::BGTZ, 1, 0, true},
    {"bgtz_zero", BranchOp::BGTZ, 0, 0, false},
    {"bltz_neg", BranchOp::BLTZ, -1, 0, true},
    {"bltz_zero", BranchOp::BLTZ, 0, 0, false},
    {"bgez_zero", BranchOp::BGEZ, 0, 0, true},
    {"bgez_neg", BranchOp::BGEZ, -1, 0, false},
    {"beq_minint", BranchOp::BEQ, IMin, IMin, true},
};

INSTANTIATE_TEST_SUITE_P(
    Semantics, BranchSweep, ::testing::ValuesIn(BranchCases),
    [](const ::testing::TestParamInfo<BranchCase> &Info) {
      return Info.param.Name;
    });

TEST(BranchSemantics, FlagBranches) {
  for (bool WantEq : {true, false}) {
    Module M;
    Function *F = M.createFunction("main", 0);
    IRBuilder Bld(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *T = F->createBlock("t");
    BasicBlock *E = F->createBlock("e");
    Bld.setInsertBlock(Entry);
    Reg A = Bld.loadFImm(1.5);
    Reg B = Bld.loadFImm(WantEq ? 1.5 : 2.0);
    Bld.fcmp(Opcode::FCmpEq, A, B);
    Bld.flagBranch(BranchOp::BC1T, T, E);
    Bld.setInsertBlock(T);
    Bld.retValue(Bld.loadImm(1));
    Bld.setInsertBlock(E);
    Bld.retValue(Bld.loadImm(0));
    Interpreter Interp(M);
    EXPECT_EQ(Interp.run(Dataset()).ExitValue, WantEq ? 1 : 0);
  }
}

//===----------------------------------------------------------------------===//
// Memory, registers, calls
//===----------------------------------------------------------------------===//

TEST(VmMemory, ByteWidthSignExtends) {
  Module M;
  uint32_t Off = M.allocateGlobal(8);
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg V = Bld.loadImm(0x1FF); // truncates to 0xFF on byte store
  Bld.store(V, GpReg, Off, MemWidth::I8);
  Bld.retValue(Bld.load(GpReg, Off, MemWidth::I8));
  Interpreter Interp(M);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, -1) << "0xFF sign-extends";
}

TEST(VmMemory, WordRoundTrip) {
  Module M;
  uint32_t Off = M.allocateGlobal(8);
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Bld.store(Bld.loadImm(-123456789012345), GpReg, Off, MemWidth::I64);
  Bld.retValue(Bld.load(GpReg, Off, MemWidth::I64));
  Interpreter Interp(M);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, -123456789012345);
}

TEST(VmMemory, NullPageTraps) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Bld.retValue(Bld.load(ZeroReg, 0, MemWidth::I64));
  Interpreter Interp(M);
  RunResult R = Interp.run(Dataset());
  EXPECT_EQ(R.Status, RunStatus::Trap);
}

TEST(VmMemory, OutOfBoundsTraps) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg Huge = Bld.loadImm(1ll << 60);
  Bld.retValue(Bld.load(Huge, 0, MemWidth::I64));
  Interpreter Interp(M);
  EXPECT_EQ(Interp.run(Dataset()).Status, RunStatus::Trap);
}

// Addr = base + imm wraps modulo 2^64, so UINT64_MAX is a reachable
// byte address; the bounds check must trap rather than let Addr + 1
// overflow to 0 and slip past the limit comparison.
TEST(VmMemory, ByteAccessAtAddressMaxTraps) {
  for (bool IsStore : {false, true}) {
    Module M;
    Function *F = M.createFunction("main", 0);
    IRBuilder Bld(F);
    Bld.setInsertBlock(F->createBlock("entry"));
    Reg Max = Bld.loadImm(-1); // UINT64_MAX
    if (IsStore) {
      Bld.store(Bld.loadImm(1), Max, 0, MemWidth::I8);
      Bld.retValue(Bld.loadImm(0));
    } else {
      Bld.retValue(Bld.load(Max, 0, MemWidth::I8));
    }
    Interpreter Interp(M);
    RunResult R = Interp.run(Dataset());
    EXPECT_EQ(R.Status, RunStatus::Trap) << (IsStore ? "store" : "load");
    EXPECT_NE(R.TrapMessage.find("out of bounds"), std::string::npos);
  }
}

TEST(VmMemory, GlobalImageVisible) {
  Module M;
  std::vector<uint8_t> Data = {'h', 'i', 0};
  uint32_t Off = M.allocateGlobalData(Data);
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg Addr = Bld.addImm(GpReg, Off);
  Bld.callIntrinsicVoid(Intrinsic::PrintStr, {Addr});
  Bld.retValue(Bld.load(GpReg, Off, MemWidth::I8));
  Interpreter Interp(M);
  RunResult R = Interp.run(Dataset());
  EXPECT_EQ(R.Output, "hi");
  EXPECT_EQ(R.ExitValue, 'h');
}

TEST(VmRegisters, ZeroReadsZeroAndGpIsGlobalBase) {
  Module M;
  uint32_t Off = M.allocateGlobal(8);
  ASSERT_EQ(Off, 0u);
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg Z = Bld.move(ZeroReg);
  Reg G = Bld.move(GpReg);
  // zero + gp = address of the first global = the null page size (8).
  Bld.retValue(Bld.add(Z, G));
  Interpreter Interp(M);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, 8);
}

TEST(VmCalls, ArgumentAndReturnPlumbing) {
  Module M;
  Function *Callee = M.createFunction("sub3", 3);
  {
    IRBuilder Bld(Callee);
    Bld.setInsertBlock(Callee->createBlock("entry"));
    Reg T = Bld.sub(Callee->getParamReg(0), Callee->getParamReg(1));
    Bld.retValue(Bld.sub(T, Callee->getParamReg(2)));
  }
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg R = Bld.call(Callee, {Bld.loadImm(100), Bld.loadImm(30),
                            Bld.loadImm(5)});
  Bld.retValue(R);
  Interpreter Interp(M);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, 65);
}

TEST(VmCalls, FramesAreIndependent) {
  // Callee uses the same virtual register ids as the caller; values
  // must not leak between frames.
  Module M;
  Function *Callee = M.createFunction("clobber", 0);
  {
    IRBuilder Bld(Callee);
    Bld.setInsertBlock(Callee->createBlock("entry"));
    Bld.loadImm(999);
    Bld.loadImm(888);
    Bld.ret();
  }
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg X = Bld.loadImm(7);
  Bld.callVoid(Callee, {});
  Bld.retValue(X);
  Interpreter Interp(M);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, 7);
}

TEST(VmCalls, DepthLimitTraps) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Bld.callVoid(F, {}); // infinite self-recursion
  Bld.ret();
  RunLimits Limits;
  Limits.MaxCallDepth = 64;
  Interpreter Interp(M, Limits);
  RunResult R = Interp.run(Dataset());
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.TrapMessage.find("depth"), std::string::npos);
}

TEST(VmIntrinsics, MallocAlignsAndAdvances) {
  Module M;
  Function *F = M.createFunction("main", 0);
  IRBuilder Bld(F);
  Bld.setInsertBlock(F->createBlock("entry"));
  Reg A = Bld.callIntrinsic(Intrinsic::Malloc, {Bld.loadImm(3)});
  Reg B = Bld.callIntrinsic(Intrinsic::Malloc, {Bld.loadImm(1)});
  Bld.retValue(Bld.sub(B, A));
  Interpreter Interp(M);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, 8) << "3 bytes round to 8";
}

TEST(VmIntrinsics, MissingEntryFunction) {
  Module M;
  M.createFunction("not_main", 0);
  Interpreter Interp(M);
  RunResult R = Interp.run(Dataset());
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.TrapMessage.find("not found"), std::string::npos);
}

} // namespace
