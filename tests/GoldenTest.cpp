//===- tests/GoldenTest.cpp - Pinned workload reference outputs -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden outputs of every workload's reference dataset. These pin the
/// whole pipeline end-to-end — any change to the lexer, parser, sema,
/// codegen, simplifier, VM, PRNG, or dataset generators that alters
/// observable behaviour trips exactly the affected workloads.
///
/// Externally validated values hiding in here: queens reports 352
/// solutions for N=9 (the known count); gauss's residual is ~1e-12
/// (the solver actually solves); compress and huffman verified their
/// round-trips internally before printing.
///
/// The FP numbers go through snprintf("%.6g"), identical across
/// IEEE-754/glibc platforms for these values.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <map>

using namespace bpfree;

namespace {

const std::map<std::string, std::string> &goldenOutputs() {
  static const std::map<std::string, std::string> Goldens = {
      {"lisp",
       "lisp cells=126818 adds=15827 acc=13708555\n"},
      {"treesort",
       "treesort nodes=15774 visited=15774 hits=11916 depth=35\n"},
      {"basicinterp",
       "basicinterp steps=631925 acc=11942\n"},
      {"hashwords",
       "hashwords words=51422 distinct=889 max=5314 steps=74557\n"},
      {"qsortbench",
       "qsortbench n=50000 swaps=157627 found=2895\n"},
      {"intsolve",
       "intsolve nodes=2978 prunes=907 total=39809\n"},
      {"queens",
       "queens n=9 solutions=352 placed=8393 nearsol=2 confsum=270908\n"},
      {"dijkstra",
       "dijkstra reached_checksum=350297 relax=11360\n"},
      {"eqn",
       "eqn true=57154 checksum=66043\n"},
      {"espresso",
       "espresso merges=100 deletions=1276 live=1424\n"},
      {"grep",
       "grep lines=5329 m0=4008 m1=4237 m2=1561\n"},
      {"compress",
       "compress in=120000 out=52685 dict=12544\n"},
      {"wordcount",
       "wordcount lines=6622 words=86995 digits=4341 max=96 long=6608 "
       "used=37 peak=32\n"},
      {"hashbits",
       "hashbits n=40000 total=386217 hits=19846 mod=13509\n"},
      {"fsmdispatch",
       "fsmdispatch n=60000 acc=-47358081817747775 pushes=14709 "
       "folds=7557 flips=7503\n"},
      {"ptrchase",
       "ptrchase count=4096 sum=4343235 hops=14816 twist=269799477\n"},
      {"markgc",
       "markgc alloc=8476 collected=8416 gcs=18 steps=1129 chk=7513\n"},
      {"huffman",
       "huffman in=1200000 out=663837 maxlen=11\n"},
      {"matmul300",
       "matmul300 checksum=-0.705979 negs=4613\n"},
      {"relax",
       "relax maxdelta=0.0915866 converged=-1\n"},
      {"gauss",
       "gauss systems=8 singulars=0 resid=9.07718e-13\n"},
      {"conjgrad",
       "conjgrad n=4000 iters=120 rr=1.30951\n"},
      {"nbody",
       "nbody n=100 close=24 e0=-802.47 e1=-793.502\n"},
      {"fpkernels",
       "fpkernels dot=90109.2 horner=-1.00178e+06 min=-1.59256 "
       "max=1.60778 cheb=2765.99\n"},
      {"circuit",
       "circuit iters=3163 halvings=0 hi=3870 mid=611812 lo=16918 "
       "maxv=1.28586\n"},
  };
  return Goldens;
}

class GoldenTest : public ::testing::TestWithParam<const Workload *> {};

TEST_P(GoldenTest, ReferenceOutputPinned) {
  const Workload &W = *GetParam();
  auto It = goldenOutputs().find(W.Name);
  ASSERT_NE(It, goldenOutputs().end())
      << "new workload '" << W.Name
      << "': add its reference output to GoldenTest";
  auto M = minic::compile(W.Source);
  ASSERT_TRUE(M.hasValue());
  Interpreter Interp(**M);
  RunResult R = Interp.run(W.Datasets[0]);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Output, It->second);
}

std::string goldenName(
    const ::testing::TestParamInfo<const Workload *> &Info) {
  return Info.param->Name;
}

std::vector<const Workload *> allWorkloads() {
  std::vector<const Workload *> Ptrs;
  for (const Workload &W : workloadSuite())
    Ptrs.push_back(&W);
  return Ptrs;
}

INSTANTIATE_TEST_SUITE_P(Suite, GoldenTest,
                         ::testing::ValuesIn(allWorkloads()), goldenName);

TEST(GoldenCoverage, NoStaleGoldens) {
  for (const auto &[Name, Output] : goldenOutputs())
    EXPECT_NE(findWorkload(Name), nullptr)
        << "golden entry for removed workload '" << Name << "'";
}

} // namespace
