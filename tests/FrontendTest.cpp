//===- tests/FrontendTest.cpp - Lexer, parser, sema tests -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <gtest/gtest.h>

using namespace bpfree;
using namespace bpfree::minic;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<Token> lexOrDie(const std::string &Src) {
  auto Toks = lex(Src);
  EXPECT_TRUE(Toks.hasValue()) << (Toks ? "" : Toks.error().render());
  return *Toks;
}

TEST(LexerTest, Keywords) {
  auto T = lexOrDie("int char double void struct if else while for do "
                    "return break continue sizeof");
  ASSERT_EQ(T.size(), 15u); // 14 keywords + EOF
  EXPECT_EQ(T[0].Kind, TokKind::KwInt);
  EXPECT_EQ(T[4].Kind, TokKind::KwStruct);
  EXPECT_EQ(T[13].Kind, TokKind::KwSizeof);
  EXPECT_EQ(T.back().Kind, TokKind::Eof);
}

TEST(LexerTest, IdentifiersAndLiterals) {
  auto T = lexOrDie("foo _bar x42 123 3.5 1e3 'a' '\\n' \"hi\\t\"");
  EXPECT_EQ(T[0].Kind, TokKind::Identifier);
  EXPECT_EQ(T[0].Text, "foo");
  EXPECT_EQ(T[1].Text, "_bar");
  EXPECT_EQ(T[2].Text, "x42");
  EXPECT_EQ(T[3].Kind, TokKind::IntLiteral);
  EXPECT_EQ(T[3].IntValue, 123);
  EXPECT_EQ(T[4].Kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(T[4].FloatValue, 3.5);
  EXPECT_EQ(T[5].Kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(T[5].FloatValue, 1000.0);
  EXPECT_EQ(T[6].Kind, TokKind::CharLiteral);
  EXPECT_EQ(T[6].IntValue, 'a');
  EXPECT_EQ(T[7].IntValue, '\n');
  EXPECT_EQ(T[8].Kind, TokKind::StringLiteral);
  EXPECT_EQ(T[8].Text, "hi\t");
}

TEST(LexerTest, Operators) {
  auto T = lexOrDie("+ ++ += - -- -= -> * *= / /= % %= = == ! != < <= << "
                    "> >= >> & && | || ^ ~ . , ; ( ) [ ] { }");
  std::vector<TokKind> Expected = {
      TokKind::Plus,     TokKind::PlusPlus,  TokKind::PlusAssign,
      TokKind::Minus,    TokKind::MinusMinus, TokKind::MinusAssign,
      TokKind::Arrow,    TokKind::Star,      TokKind::StarAssign,
      TokKind::Slash,    TokKind::SlashAssign, TokKind::Percent,
      TokKind::PercentAssign, TokKind::Assign, TokKind::EqEq,
      TokKind::Bang,     TokKind::NotEq,     TokKind::Less,
      TokKind::LessEq,   TokKind::Shl,       TokKind::Greater,
      TokKind::GreaterEq, TokKind::ShrTok,   TokKind::Amp,
      TokKind::AmpAmp,   TokKind::Pipe,      TokKind::PipePipe,
      TokKind::Caret,    TokKind::Tilde,     TokKind::Dot,
      TokKind::Comma,    TokKind::Semi,      TokKind::LParen,
      TokKind::RParen,   TokKind::LBracket,  TokKind::RBracket,
      TokKind::LBrace,   TokKind::RBrace};
  ASSERT_EQ(T.size(), Expected.size() + 1);
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(T[I].Kind, Expected[I]) << "token " << I;
}

TEST(LexerTest, Comments) {
  auto T = lexOrDie("a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto T = lexOrDie("a\n  b");
  EXPECT_EQ(T[0].Line, 1);
  EXPECT_EQ(T[0].Column, 1);
  EXPECT_EQ(T[1].Line, 2);
  EXPECT_EQ(T[1].Column, 3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(lex("int x = @;").hasValue());
  EXPECT_FALSE(lex("\"unterminated").hasValue());
  EXPECT_FALSE(lex("'x").hasValue());
  EXPECT_FALSE(lex("/* unterminated").hasValue());
  auto E = lex("???");
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.error().Line, 1);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> parseOrDie(const std::string &Src) {
  auto P = parseSource(Src);
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.error().render());
  return P ? std::move(*P) : nullptr;
}

TEST(ParserTest, GlobalAndFunction) {
  auto P = parseOrDie("int g = 5; double d = -2.5; int x[10];\n"
                      "int main() { return g; }");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Globals.size(), 3u);
  EXPECT_EQ(P->Globals[0]->Name, "g");
  EXPECT_TRUE(P->Globals[0]->HasInit);
  EXPECT_EQ(P->Globals[0]->InitInt, 5);
  EXPECT_DOUBLE_EQ(P->Globals[1]->InitFloat, -2.5);
  EXPECT_TRUE(P->Globals[2]->Ty.isArray());
  EXPECT_EQ(P->Globals[2]->Ty.arrayCount(), 10u);
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_EQ(P->Functions[0]->Name, "main");
}

TEST(ParserTest, StructDefinition) {
  auto P = parseOrDie("struct node { int key; struct node *next; };\n"
                      "int main() { return 0; }");
  ASSERT_TRUE(P);
  const StructDef *S = P->findStruct("node");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Fields.size(), 2u);
  EXPECT_EQ(S->Fields[0].Offset, 0u);
  EXPECT_EQ(S->Fields[1].Offset, 8u);
  EXPECT_EQ(S->Size, 16u);
  EXPECT_TRUE(S->Fields[1].Ty.isPointer());
  EXPECT_EQ(S->Fields[1].Ty.pointee().structDef(), S);
}

TEST(ParserTest, StructLayoutWithCharArrays) {
  auto P = parseOrDie("struct e { char name[5]; int count; char c; };\n"
                      "int main() { return 0; }");
  const StructDef *S = P->findStruct("e");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Fields[0].Offset, 0u);
  EXPECT_EQ(S->Fields[1].Offset, 8u); // rounded up from 5
  EXPECT_EQ(S->Fields[2].Offset, 16u);
  EXPECT_EQ(S->Size, 24u); // rounded to 8
}

TEST(ParserTest, PrecedenceShape) {
  auto P = parseOrDie("int main() { return 1 + 2 * 3 < 4 && 5 == 6; }");
  const Expr &Root = *P->Functions[0]->Body->Body[0]->Value;
  ASSERT_EQ(Root.Kind, ExprKind::Binary);
  EXPECT_EQ(Root.BOp, BinOp::LogAnd);
  EXPECT_EQ(Root.Lhs->BOp, BinOp::Lt);
  EXPECT_EQ(Root.Lhs->Lhs->BOp, BinOp::Add);
  EXPECT_EQ(Root.Lhs->Lhs->Rhs->BOp, BinOp::Mul);
  EXPECT_EQ(Root.Rhs->BOp, BinOp::Eq);
}

TEST(ParserTest, CastVsParen) {
  auto P = parseOrDie("int main() { int x; double d; d = 1.5;"
                      " x = (int)d; x = (x); return x; }");
  ASSERT_TRUE(P);
  const auto &Body = P->Functions[0]->Body->Body;
  // x = (int)d
  EXPECT_EQ(Body[3]->Value->Rhs->Kind, ExprKind::Cast);
  // x = (x)
  EXPECT_EQ(Body[4]->Value->Rhs->Kind, ExprKind::VarRef);
}

TEST(ParserTest, ControlFlowForms) {
  auto P = parseOrDie(
      "int main() {\n"
      "  int i; int s = 0;\n"
      "  for (i = 0; i < 10; i++) { s += i; }\n"
      "  while (s > 0) { s--; if (s == 5) break; else continue; }\n"
      "  do { s++; } while (s < 3);\n"
      "  return s;\n"
      "}");
  ASSERT_TRUE(P);
  const auto &Body = P->Functions[0]->Body->Body;
  EXPECT_EQ(Body[2]->Kind, StmtKind::For);
  EXPECT_EQ(Body[3]->Kind, StmtKind::While);
  EXPECT_EQ(Body[4]->Kind, StmtKind::DoWhile);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(parseSource("int main( { }").hasValue());
  EXPECT_FALSE(parseSource("int main() { return 1 }").hasValue());
  EXPECT_FALSE(parseSource("int x[0];").hasValue());
  EXPECT_FALSE(parseSource("struct s { };").hasValue());
  EXPECT_FALSE(parseSource("struct s { int a; }; struct s { int b; };")
                   .hasValue());
  EXPECT_FALSE(parseSource("int main() { int x = ; }").hasValue());
  EXPECT_FALSE(parseSource("struct t x;").hasValue()) << "unknown struct";
}

TEST(ParserTest, SelfReferentialStructByValueRejected) {
  EXPECT_FALSE(
      parseSource("struct s { struct s inner; }; int main() { return 0; }")
          .hasValue());
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

Diag semaError(const std::string &Src) {
  auto P = parseSource(Src);
  EXPECT_TRUE(P.hasValue()) << "parse failed: "
                            << (P ? "" : P.error().render());
  if (!P)
    return Diag("parse failed");
  auto R = analyze(**P);
  EXPECT_FALSE(R.hasValue()) << "expected sema error";
  return R ? Diag("no error") : R.error();
}

bool semaOk(const std::string &Src) {
  auto P = parseSource(Src);
  if (!P)
    return false;
  return analyze(**P).hasValue();
}

TEST(SemaTest, AcceptsValidPrograms) {
  EXPECT_TRUE(semaOk("int main() { return 0; }"));
  EXPECT_TRUE(semaOk("int f(int a, int b) { return a + b; }\n"
                     "int main() { return f(1, 2); }"));
  EXPECT_TRUE(semaOk("struct p { int x; int y; };\n"
                     "int main() { struct p a; a.x = 1; return a.x; }"));
  EXPECT_TRUE(semaOk("int main() { int *p; p = 0; if (p) { return 1; } "
                     "return 0; }"));
  EXPECT_TRUE(semaOk("int main() { double d = 1; int i = 2.5; return i; }"))
      << "implicit arithmetic conversions";
  EXPECT_TRUE(semaOk("int main() { char *s; s = malloc(10); return 0; }"));
  EXPECT_TRUE(
      semaOk("struct n { struct n *next; };\n"
             "int main() { struct n *p; p = malloc(sizeof(struct n));"
             " p->next = 0; return p->next == 0; }"));
}

TEST(SemaTest, UndeclaredAndRedefined) {
  EXPECT_NE(semaError("int main() { return zzz; }").Message.find("undeclared"),
            std::string::npos);
  EXPECT_NE(semaError("int main() { int a; int a; return 0; }")
                .Message.find("redefinition"),
            std::string::npos);
  EXPECT_NE(semaError("int f() { return 0; } int f() { return 1; }")
                .Message.find("redefinition"),
            std::string::npos);
  // Shadowing in an inner scope is legal.
  EXPECT_TRUE(semaOk("int main() { int a = 1; { int a = 2; a = a; } "
                     "return a; }"));
}

TEST(SemaTest, TypeErrors) {
  EXPECT_FALSE(semaOk("int main() { int *p; double d; p = d; return 0; }"));
  EXPECT_FALSE(semaOk("int main() { int a; a = \"str\"; return 0; }"));
  EXPECT_FALSE(semaOk("int main() { double d; return d % 2; }"));
  EXPECT_FALSE(semaOk("int main() { int a; return *a; }"));
  EXPECT_FALSE(semaOk("int main() { return &5; }"));
  EXPECT_FALSE(semaOk("struct p { int x; }; int main() { struct p a; "
                      "return a + 1; }"));
  EXPECT_FALSE(semaOk("int main() { int a[5]; a = 0; return 0; }"));
  EXPECT_FALSE(semaOk("int main() { if (main) { } return 0; }"))
      << "functions are not values";
}

TEST(SemaTest, CallChecking) {
  EXPECT_FALSE(semaOk("int f(int a) { return a; } int main() "
                      "{ return f(); }"));
  EXPECT_FALSE(semaOk("int f(int a) { return a; } int main() "
                      "{ return f(1, 2); }"));
  EXPECT_FALSE(semaOk("int main() { return g(); }"));
  EXPECT_FALSE(semaOk("int f(int *p) { return 0; } int main() "
                      "{ return f(1); }"))
      << "int literal (non-zero) is not a pointer";
  EXPECT_TRUE(semaOk("int f(int *p) { return p == 0; } int main() "
                     "{ return f(0); }"))
      << "null literal converts";
  // Builtin arity and shadowing.
  EXPECT_FALSE(semaOk("int main() { print_int(1, 2); return 0; }"));
  EXPECT_FALSE(semaOk("int malloc(int n) { return n; } int main() "
                      "{ return 0; }"));
}

TEST(SemaTest, BreakContinueOutsideLoop) {
  EXPECT_FALSE(semaOk("int main() { break; return 0; }"));
  EXPECT_FALSE(semaOk("int main() { continue; return 0; }"));
  EXPECT_FALSE(semaOk("int main() { if (1) { break; } return 0; }"));
}

TEST(SemaTest, ReturnChecking) {
  EXPECT_FALSE(semaOk("void f() { return 1; } int main() { return 0; }"));
  EXPECT_FALSE(semaOk("int f() { return; } int main() { return 0; }"));
  EXPECT_TRUE(semaOk("void f() { return; } int main() { f(); return 0; }"));
}

TEST(SemaTest, AddressTakenMarksLocal) {
  auto P = parseSource("int main() { int a; int b; int *p; p = &a; "
                       "b = *p; return b; }");
  ASSERT_TRUE(P.hasValue());
  auto R = analyze(**P);
  ASSERT_TRUE(R.hasValue());
  const auto &Locals = R->Funcs[0].Locals;
  ASSERT_EQ(Locals.size(), 3u);
  EXPECT_TRUE(Locals[0].AddressTaken);  // a
  EXPECT_FALSE(Locals[1].AddressTaken); // b
  EXPECT_FALSE(Locals[2].AddressTaken); // p
}

TEST(SemaTest, MemberAccessChecking) {
  EXPECT_FALSE(semaOk("struct p { int x; }; int main() { struct p a; "
                      "return a.y; }"));
  EXPECT_FALSE(semaOk("struct p { int x; }; int main() { struct p a; "
                      "return a->x; }"));
  EXPECT_FALSE(semaOk("int main() { int a; return a.x; }"));
  EXPECT_TRUE(semaOk("struct p { int x; }; int main() { struct p a; "
                     "struct p *q; q = &a; q->x = 3; return q->x; }"));
}

} // namespace
