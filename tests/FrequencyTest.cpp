//===- tests/FrequencyTest.cpp - Static profile estimation tests ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "predict/Frequency.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

TEST(FrequencyTest, StraightLineIsAllOnes) {
  auto M = minic::compileOrDie("int main() { int a = 1; a += 2; "
                               "return a; }");
  const Function *Main = M->findFunction("main");
  std::vector<double> F =
      estimateBlockFrequencies(*Main, uniformOracle());
  // One reachable chain of frequency 1 (dead merged shells get 0).
  EXPECT_DOUBLE_EQ(F[Main->getEntry()->getId()], 1.0);
}

TEST(FrequencyTest, DiamondSplitsByProbability) {
  auto M = minic::compileOrDie(
      "int main() { int x = arg(0); int s;\n"
      "  if (x < 0) { s = 1; } else { s = 2; }\n"
      "  return s; }");
  const Function *Main = M->findFunction("main");
  // Find the branch block and its two arms.
  const BasicBlock *Branch = nullptr;
  for (const auto &BB : *Main)
    if (BB->isCondBranch())
      Branch = BB.get();
  ASSERT_NE(Branch, nullptr);

  // Oracle: 30% taken.
  std::vector<double> F = estimateBlockFrequencies(
      *Main, [&](const BasicBlock &BB) {
        return &BB == Branch ? 0.3 : 0.5;
      });
  EXPECT_NEAR(F[Branch->terminator().Taken->getId()], 0.3, 1e-9);
  EXPECT_NEAR(F[Branch->terminator().Fallthru->getId()], 0.7, 1e-9);
}

TEST(FrequencyTest, LoopFrequencyIsGeometricSeries) {
  // A rotated loop whose backedge probability is p executes the body
  // 1/(1-p) times per entry (after the guard admits it).
  auto M = minic::compileOrDie(
      "int main() { int i = 0;\n"
      "  while (i < arg(0)) { i++; }\n"
      "  return i; }");
  const Function *Main = M->findFunction("main");
  // Identify guard (non-loop) and latch (backedge) branches.
  PredictionContext Ctx(*M);
  const FunctionContext &FC = Ctx.get(*Main);
  const BasicBlock *Latch = nullptr;
  for (const auto &BB : *Main)
    if (BB->isCondBranch() && FC.Loops.isLoopBranch(BB.get()))
      Latch = BB.get();
  ASSERT_NE(Latch, nullptr);

  double P = 0.9; // iterate with probability 0.9
  std::vector<double> F = estimateBlockFrequencies(
      *Main, [&](const BasicBlock &BB) {
        if (&BB == Latch)
          return FC.Loops.predictLoopBranch(Latch) == 0 ? P : 1.0 - P;
        return 0.5; // the guard: half the entries reach the loop
      });
  // Body frequency: guard admits 0.5; each admission iterates
  // geometrically: 0.5 * 1/(1-0.9) = 5.
  double BodyFreq = F[Latch->getId()];
  EXPECT_NEAR(BodyFreq, 5.0, 0.01);
}

TEST(FrequencyTest, CapPreventsDivergence) {
  auto M = minic::compileOrDie(
      "int main() { int i = 0; while (i < arg(0)) { i++; } return i; }");
  const Function *Main = M->findFunction("main");
  // Probability 1 of iterating would diverge; the clamp keeps it
  // finite and below the cap.
  std::vector<double> F = estimateBlockFrequencies(
      *Main, [](const BasicBlock &) { return 1.0; }, 1e6);
  for (double V : F) {
    EXPECT_TRUE(std::isfinite(V));
    EXPECT_LE(V, 1e6);
  }
}

TEST(FrequencyTest, PerfectOracleScoresHighest) {
  for (const char *Name : {"treesort", "grep", "circuit"}) {
    auto Run = runWorkloadOrExit(*findWorkload(Name), 0);
    WuLarusPredictor WL(*Run->Ctx,
                        HeuristicPriors::measured(Run->Stats));

    FrequencyQuality Perfect = scoreFrequencies(
        *Run->M, perfectOracle(*Run->Profile), *Run->Profile);
    FrequencyQuality Heur =
        scoreFrequencies(*Run->M, wuLarusOracle(WL), *Run->Profile);
    FrequencyQuality Coin =
        scoreFrequencies(*Run->M, uniformOracle(), *Run->Profile);

    EXPECT_GT(Perfect.BlocksScored, 10u) << Name;
    EXPECT_GT(Perfect.SpearmanRho, 0.7)
        << Name << ": true probabilities must rank blocks well";
    // NOTE: perfect *marginal* probabilities are not a strict upper
    // bound — frequency propagation assumes branch independence, so
    // correlated branches can make heuristic probabilities rank
    // better by accident. Only require both to carry strong signal.
    EXPECT_GT(Heur.SpearmanRho, 0.3)
        << Name << ": static profile must carry signal";
    EXPECT_GE(Heur.SpearmanRho, Coin.SpearmanRho - 0.15) << Name;
  }
}

TEST(FrequencyTest, UnexecutedFunctionsAreSkipped) {
  auto M = minic::compileOrDie(
      "int unused() { return 1; }\n"
      "int main() { return 0; }");
  EdgeProfile Profile(*M);
  Interpreter Interp(*M);
  ASSERT_TRUE(Interp.run(Dataset(), {&Profile}).ok());
  FrequencyQuality Q =
      scoreFrequencies(*M, uniformOracle(), Profile);
  // Only main's single block chain is scored.
  EXPECT_LE(Q.BlocksScored, 3u);
}

} // namespace
