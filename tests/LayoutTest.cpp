//===- tests/LayoutTest.cpp - Prediction-guided layout tests --------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "predict/Layout.h"
#include "vm/Interpreter.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <set>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

TEST(LayoutTest, OrderIsAPermutationStartingAtEntry) {
  auto M = minic::compileOrDie(
      "int main() { int i; int s = 0;\n"
      "  for (i = 0; i < 10; i++) { if (i % 2) { s++; } else { s--; } }\n"
      "  return s; }");
  PredictionContext Ctx(*M);
  BallLarusPredictor P(Ctx);
  for (const auto &F : *M) {
    BlockOrder Order = computeBlockOrder(*F, P);
    ASSERT_EQ(Order.size(), F->numBlocks());
    EXPECT_EQ(Order.front(), F->getEntry());
    std::set<const BasicBlock *> Seen(Order.begin(), Order.end());
    EXPECT_EQ(Seen.size(), F->numBlocks()) << "no duplicates";
  }
}

TEST(LayoutTest, PredictedSuccessorFollowsWhenFree) {
  // A simple diamond: the predicted arm must be adjacent to the branch.
  auto M = minic::compileOrDie(
      "int main() {\n"
      "  int x = arg(0); int s = 0;\n"
      "  if (x < 0) { s = 1; } else { s = 2; }\n"
      "  return s;\n"
      "}");
  PredictionContext Ctx(*M);
  BallLarusPredictor P(Ctx);
  const Function *Main = M->findFunction("main");
  BlockOrder Order = computeBlockOrder(*Main, P);
  for (size_t I = 0; I + 1 < Order.size(); ++I) {
    if (!Order[I]->isCondBranch())
      continue;
    Direction D = P.predict(*Order[I]);
    const BasicBlock *Predicted =
        Order[I]->getSuccessor(D == DirTaken ? 0 : 1);
    // The predicted successor is adjacent unless it was already placed
    // (possible for loop backedges).
    bool AlreadyPlaced = false;
    for (size_t J = 0; J <= I; ++J)
      if (Order[J] == Predicted)
        AlreadyPlaced = true;
    if (!AlreadyPlaced) {
      EXPECT_EQ(Order[I + 1], Predicted);
    }
  }
}

TEST(LayoutTest, QualityAccountsEveryTransfer) {
  auto Run = runWorkloadOrExit(*findWorkload("grep"), 0);
  PerfectPredictor Perfect(*Run->Profile);
  LayoutQuality Q =
      evaluateModuleLayout(*Run->M, Perfect, *Run->Profile);
  EXPECT_GT(Q.total(), 0u);
  // Total transfers are fixed across layouts: only the split moves.
  LayoutQuality Orig = evaluateOriginalLayout(*Run->M, *Run->Profile);
  EXPECT_EQ(Q.total(), Orig.total());
}

TEST(LayoutTest, PerfectLayoutBeatsOriginalAndHeuristicIsClose) {
  // The headline consumer claim: prediction-guided layout recovers
  // most of profile-guided layout's fall-through improvements.
  for (const char *Name : {"treesort", "circuit", "hashwords"}) {
    auto Run = runWorkloadOrExit(*findWorkload(Name), 0);
    PerfectPredictor Perfect(*Run->Profile);
    BallLarusPredictor Heuristic(*Run->Ctx);

    double Orig =
        evaluateOriginalLayout(*Run->M, *Run->Profile).fallthroughRate();
    double Heur = evaluateModuleLayout(*Run->M, Heuristic, *Run->Profile)
                      .fallthroughRate();
    double Perf = evaluateModuleLayout(*Run->M, Perfect, *Run->Profile)
                      .fallthroughRate();

    EXPECT_GE(Perf, Orig) << Name << ": profile-guided layout can't lose";
    EXPECT_GT(Heur, Orig - 1e-12) << Name;
    EXPECT_LE(Heur, Perf + 1e-12)
        << Name << ": heuristic can't beat the profile-guided bound";
  }
}

TEST(LayoutTest, SingleBlockFunction) {
  auto M = minic::compileOrDie("int main() { return 3; }");
  PredictionContext Ctx(*M);
  BallLarusPredictor P(Ctx);
  const Function *Main = M->findFunction("main");
  BlockOrder Order = computeBlockOrder(*Main, P);
  EXPECT_EQ(Order.size(), Main->numBlocks());
  EdgeProfile Profile(*M);
  Interpreter Interp(*M);
  ASSERT_TRUE(Interp.run(Dataset(), {&Profile}).ok());
  LayoutQuality Q = evaluateLayout(*Main, Order, Profile);
  EXPECT_EQ(Q.total(), 0u) << "a lone return block transfers nowhere";
}

} // namespace
