//===- tests/TextParserTest.cpp - IR text round-trip tests ----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The printer/parser round trip: for hand-written IR, for every
/// compiled workload, and behaviorally (parsed modules run with
/// identical outputs and instruction counts).
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/TextParser.h"
#include "ir/Verifier.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

TEST(TextParserTest, ParsesMinimalModule) {
  auto M = parseModuleText("module: 1 functions, 0 global bytes\n"
                           "func main(0 params) frame=0 regs=9:\n"
                           "entry.0:\n"
                           "  li r8, 42\n"
                           "  ret r8\n");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  EXPECT_TRUE(verifyModule(**M).empty());
  Interpreter Interp(**M);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, 42);
}

TEST(TextParserTest, ParsesBranchesAndCalls) {
  auto M = parseModuleText(
      "module: 2 functions, 0 global bytes\n"
      "func twice(1 params) frame=0 regs=10:\n"
      "entry.0:\n"
      "  add r9, r8, r8\n"
      "  ret r9\n"
      "\n"
      "func main(0 params) frame=0 regs=12:\n"
      "entry.0:\n"
      "  li r8, 21\n"
      "  twice(r8) -> r9\n" // printer spells calls "call name(...)"
      "  ret r9\n");
  // The line above is actually invalid (missing the 'call' mnemonic);
  // expect a diagnostic naming the line.
  ASSERT_FALSE(M.hasValue());
  EXPECT_GT(M.error().Line, 0);

  auto M2 = parseModuleText(
      "module: 2 functions, 0 global bytes\n"
      "func twice(1 params) frame=0 regs=10:\n"
      "entry.0:\n"
      "  add r9, r8, r8\n"
      "  ret r9\n"
      "\n"
      "func main(0 params) frame=0 regs=12:\n"
      "entry.0:\n"
      "  li r8, 21\n"
      "  call twice(r8) -> r9\n"
      "  blez r9 -> neg.1 | pos.2\n"
      "neg.1:\n"
      "  ret zero\n"
      "pos.2:\n"
      "  ret r9\n");
  ASSERT_TRUE(M2.hasValue()) << M2.error().render();
  EXPECT_TRUE(verifyModule(**M2).empty());
  Interpreter Interp(**M2);
  EXPECT_EQ(Interp.run(Dataset()).ExitValue, 42);
}

TEST(TextParserTest, DataSectionRoundTrip) {
  Module M;
  std::vector<uint8_t> Data;
  for (int I = 0; I < 100; ++I)
    Data.push_back(static_cast<uint8_t>(I * 37));
  M.allocateGlobalData(Data);
  Function *F = M.createFunction("main", 0);
  IRBuilder B(F);
  B.setInsertBlock(F->createBlock("entry"));
  B.retValue(B.load(GpReg, 8, MemWidth::I8));

  std::string Text = printModule(M);
  auto Parsed = parseModuleText(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error().render();
  EXPECT_EQ((*Parsed)->getGlobalImage(), M.getGlobalImage());
}

TEST(TextParserTest, Diagnostics) {
  EXPECT_FALSE(parseModuleText("").hasValue());
  EXPECT_FALSE(parseModuleText("nonsense\n").hasValue());
  // Unknown instruction.
  auto M = parseModuleText("module: 1 functions, 0 global bytes\n"
                           "func main(0 params) frame=0 regs=9:\n"
                           "entry.0:\n"
                           "  frobnicate r8\n"
                           "  ret\n");
  ASSERT_FALSE(M.hasValue());
  EXPECT_NE(M.error().Message.find("unknown instruction"),
            std::string::npos);
  // Missing terminator.
  EXPECT_FALSE(parseModuleText("module: 1 functions, 0 global bytes\n"
                               "func main(0 params) frame=0 regs=9:\n"
                               "entry.0:\n"
                               "  li r8, 1\n")
                   .hasValue());
  // Bad block reference.
  EXPECT_FALSE(parseModuleText("module: 1 functions, 0 global bytes\n"
                               "func main(0 params) frame=0 regs=9:\n"
                               "entry.0:\n"
                               "  j nowhere.7\n")
                   .hasValue());
}

class RoundTripTest : public ::testing::TestWithParam<const Workload *> {};

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  const Workload &W = *GetParam();
  auto M = minic::compileOrDie(W.Source);
  std::string Text = printModule(*M);
  auto Parsed = parseModuleText(Text);
  ASSERT_TRUE(Parsed.hasValue())
      << W.Name << ": " << Parsed.error().render();
  EXPECT_TRUE(verifyModule(**Parsed).empty()) << W.Name;
  EXPECT_EQ(printModule(**Parsed), Text)
      << W.Name << ": print -> parse -> print must be a fixpoint";
}

TEST_P(RoundTripTest, ParsedModuleBehavesIdentically) {
  const Workload &W = *GetParam();
  auto M = minic::compileOrDie(W.Source);
  auto Parsed = parseModuleText(printModule(*M));
  ASSERT_TRUE(Parsed.hasValue());

  Interpreter Orig(*M), Re(**Parsed);
  RunResult R1 = Orig.run(W.Datasets[0]);
  RunResult R2 = Re.run(W.Datasets[0]);
  ASSERT_TRUE(R1.ok());
  ASSERT_TRUE(R2.ok()) << R2.TrapMessage;
  EXPECT_EQ(R1.Output, R2.Output) << W.Name;
  EXPECT_EQ(R1.InstrCount, R2.InstrCount) << W.Name;
  EXPECT_EQ(R1.ExitValue, R2.ExitValue) << W.Name;
}

std::string rtName(const ::testing::TestParamInfo<const Workload *> &Info) {
  return Info.param->Name;
}

std::vector<const Workload *> roundTripSample() {
  // A diverse sample keeps runtime modest; the fixpoint property is
  // structural, so a sample suffices alongside the behavioral checks.
  std::vector<const Workload *> Ptrs;
  for (const char *Name : {"lisp", "treesort", "compress", "markgc",
                           "circuit", "gauss", "wordcount"})
    Ptrs.push_back(findWorkload(Name));
  return Ptrs;
}

INSTANTIATE_TEST_SUITE_P(Suite, RoundTripTest,
                         ::testing::ValuesIn(roundTripSample()), rtName);

} // namespace
