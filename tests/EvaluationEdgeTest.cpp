//===- tests/EvaluationEdgeTest.cpp - Evaluation corner cases -------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "predict/Ordering.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace bpfree;

namespace {

TEST(RatioTest, Basics) {
  Ratio R;
  EXPECT_EQ(R.rate(), 0.0) << "empty ratio is 0, not NaN";
  R.add(1, 4);
  R.add(1, 4);
  EXPECT_DOUBLE_EQ(R.rate(), 0.25);
}

TEST(BranchStatsTest, MissAccounting) {
  BranchStats S;
  S.Taken = 30;
  S.Fallthru = 10;
  EXPECT_EQ(S.total(), 40u);
  EXPECT_EQ(S.missesFor(DirTaken), 10u);
  EXPECT_EQ(S.missesFor(DirFallthru), 30u);
  EXPECT_EQ(S.perfectMisses(), 10u);
}

TEST(BranchStatsTest, HeuristicMaskAccessors) {
  BranchStats S;
  unsigned G = static_cast<unsigned>(HeuristicKind::Guard);
  S.AppliesMask = static_cast<uint8_t>(1u << G);
  S.DirMask = static_cast<uint8_t>(1u << G);
  EXPECT_TRUE(S.heuristicApplies(HeuristicKind::Guard));
  EXPECT_FALSE(S.heuristicApplies(HeuristicKind::Opcode));
  EXPECT_EQ(S.heuristicDir(HeuristicKind::Guard), DirFallthru);
}

TEST(EvaluationEdge, NeverExecutedModule) {
  // Compile but never run: all counts zero; every computation must be
  // well-defined.
  auto M = minic::compileOrDie(
      "int main() { int i; int s = 0; for (i = 0; i < 10; i++) "
      "{ s += i; } return s; }");
  PredictionContext Ctx(*M);
  EdgeProfile EmptyProfile(*M);
  std::vector<BranchStats> Stats = collectBranchStats(Ctx, EmptyProfile);
  EXPECT_FALSE(Stats.empty());

  LoopNonLoopBreakdown B = computeLoopNonLoopBreakdown(Stats);
  EXPECT_EQ(B.TotalExecs, 0u);
  EXPECT_EQ(B.nonLoopFraction(), 0.0);
  EXPECT_EQ(B.LoopPredictorMiss.rate(), 0.0);

  CombinedResult C = computeCombined(Stats);
  EXPECT_EQ(C.AllMiss.Den, 0u);
  EXPECT_EQ(C.coverage(), 0.0);

  OrderEvaluator Eval(Stats);
  EXPECT_EQ(Eval.totalExecs(), 0u);
  EXPECT_EQ(Eval.missRate(paperOrder()), 0.0);
}

TEST(EvaluationEdge, StatsCoverEveryStaticBranch) {
  auto M = minic::compileOrDie(
      "int f(int x) { if (x > 0) { return 1; } return 0; }\n"
      "int main() { return f(arg(0)); }");
  PredictionContext Ctx(*M);
  EdgeProfile Profile(*M);
  std::vector<BranchStats> Stats = collectBranchStats(Ctx, Profile);
  size_t Branches = 0;
  for (const auto &F : *M)
    Branches += F->countCondBranches();
  EXPECT_EQ(Stats.size(), Branches);
}

TEST(EvaluationEdge, RandomSeedChangesDefaultDirections) {
  auto M = minic::compileOrDie(
      "int main() { int i; int s = 0; for (i = 0; i < 40; i++) "
      "{ if ((i * 7 + 3) % 5 < 2) { s++; } } return s; }");
  PredictionContext Ctx(*M);
  EdgeProfile Profile(*M);
  Interpreter Interp(*M);
  ASSERT_TRUE(Interp.run(Dataset(), {&Profile}).ok());
  auto A = collectBranchStats(Ctx, Profile, {}, /*RandomSeed=*/1);
  auto B = collectBranchStats(Ctx, Profile, {}, /*RandomSeed=*/2);
  ASSERT_EQ(A.size(), B.size());
  // Same structural facts regardless of seed.
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].AppliesMask, B[I].AppliesMask);
    EXPECT_EQ(A[I].IsLoopBranch, B[I].IsLoopBranch);
    EXPECT_EQ(A[I].Taken, B[I].Taken);
  }
}

TEST(OrderingEdge, SingleBenchmarkSelection) {
  std::vector<std::vector<double>> One(1,
                                       std::vector<double>(NumOrders, 0.3));
  One[0][1234] = 0.1;
  OrderSelectionResult R = runOrderSelection(One, 1);
  EXPECT_EQ(R.NumTrials, 1u);
  EXPECT_EQ(R.Frequency[1234], 1u);
  EXPECT_EQ(R.DistinctOrders, 1u);
}

TEST(OrderingEdge, FullSizeSubsetsAreOneTrial) {
  std::vector<std::vector<double>> Three(
      3, std::vector<double>(NumOrders, 0.5));
  OrderSelectionResult R = runOrderSelection(Three, 3);
  EXPECT_EQ(R.NumTrials, 1u);
}

} // namespace
