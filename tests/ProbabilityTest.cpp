//===- tests/ProbabilityTest.cpp - Wu-Larus probability tests -------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Probability.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

using namespace bpfree;

namespace {

TEST(DsCombine, Identities) {
  // 0.5 is the neutral element.
  EXPECT_DOUBLE_EQ(dsCombine(0.5, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(dsCombine(0.3, 0.5), 0.3);
  // Commutative.
  EXPECT_DOUBLE_EQ(dsCombine(0.8, 0.6), dsCombine(0.6, 0.8));
  // Agreeing evidence strengthens.
  EXPECT_GT(dsCombine(0.7, 0.7), 0.7);
  // Conflicting evidence cancels toward neutral.
  EXPECT_DOUBLE_EQ(dsCombine(0.7, 0.3), 0.5);
  // The Wu-Larus worked example shape: 0.78 (+) 0.84.
  double P = dsCombine(0.78, 0.84);
  EXPECT_NEAR(P, 0.78 * 0.84 / (0.78 * 0.84 + 0.22 * 0.16), 1e-12);
  // Degenerate certainty conflict stays neutral instead of dividing
  // by zero.
  EXPECT_DOUBLE_EQ(dsCombine(1.0, 0.0), 0.5);
}

TEST(TakenProbability, MaskCombination) {
  HeuristicPriors Priors = HeuristicPriors::paperTable3();
  // No heuristics: neutral.
  EXPECT_DOUBLE_EQ(takenProbability(0, 0, Priors), 0.5);
  // Single heuristic predicting taken: its hit rate.
  uint8_t OpcodeBit = 1u << static_cast<unsigned>(HeuristicKind::Opcode);
  EXPECT_DOUBLE_EQ(takenProbability(OpcodeBit, 0, Priors), 0.84);
  // Same heuristic predicting fall-thru: complement.
  EXPECT_DOUBLE_EQ(takenProbability(OpcodeBit, OpcodeBit, Priors),
                   1.0 - 0.84);
  // Two agreeing heuristics beat either alone.
  uint8_t ReturnBit = 1u << static_cast<unsigned>(HeuristicKind::Return);
  double Both = takenProbability(OpcodeBit | ReturnBit, 0, Priors);
  EXPECT_GT(Both, 0.84);
  EXPECT_LT(Both, 1.0);
  // Order of combination is irrelevant (associativity/commutativity):
  // masks encode sets, so this holds by construction, but pin the
  // numeric value against a hand computation.
  EXPECT_NEAR(Both, dsCombine(0.84, 0.72), 1e-12);
}

TEST(Priors, MeasuredFallsBackAndClamps) {
  // Empty stats: measured == paper defaults.
  std::vector<BranchStats> Empty;
  HeuristicPriors P = HeuristicPriors::measured(Empty);
  HeuristicPriors Q = HeuristicPriors::paperTable3();
  for (size_t I = 0; I < NumHeuristics; ++I)
    EXPECT_DOUBLE_EQ(P.HitRate[I], Q.HitRate[I]);

  // A heuristic that is always right gets clamped below 1.
  BranchStats S;
  S.Taken = 100;
  S.Fallthru = 0;
  S.AppliesMask = 1u << static_cast<unsigned>(HeuristicKind::Opcode);
  S.DirMask = 0; // predicts taken
  std::vector<BranchStats> One = {S};
  HeuristicPriors M = HeuristicPriors::measured(One);
  EXPECT_LE(M.HitRate[static_cast<size_t>(HeuristicKind::Opcode)], 0.98);
  EXPECT_GT(M.HitRate[static_cast<size_t>(HeuristicKind::Opcode)], 0.9);
}

TEST(WuLarus, ProbabilityDrivesDirection) {
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0);
  WuLarusPredictor WL(*Run->Ctx);
  for (const BranchStats &S : Run->Stats) {
    double P = WL.probability(*S.BB);
    EXPECT_GE(P, 0.0);
    EXPECT_LE(P, 1.0);
    Direction D = WL.predict(*S.BB);
    if (P > 0.5) {
      EXPECT_EQ(D, DirTaken);
    } else if (P < 0.5) {
      EXPECT_EQ(D, DirFallthru);
    }
  }
}

TEST(WuLarus, CompetitiveWithFirstMatchOnSuiteSamples) {
  // Wu & Larus reported evidence combination matching or beating the
  // fixed priority order; require it to stay within a small margin on
  // a few diverse workloads and to beat Loop+Rand everywhere.
  for (const char *Name : {"treesort", "eqn", "circuit", "hashwords"}) {
    auto Run = runWorkloadOrExit(*findWorkload(Name), 0);
    BallLarusPredictor BL(*Run->Ctx);
    WuLarusPredictor WL(*Run->Ctx,
                        HeuristicPriors::measured(Run->Stats));
    LoopRandPredictor LR(*Run->Ctx);
    double BLMiss = evaluatePredictor(BL, Run->Stats).rate();
    double WLMiss = evaluatePredictor(WL, Run->Stats).rate();
    double LRMiss = evaluatePredictor(LR, Run->Stats).rate();
    EXPECT_LE(WLMiss, BLMiss + 0.08) << Name;
    EXPECT_LE(WLMiss, LRMiss + 1e-12) << Name;
  }
}

TEST(Calibration, OracleAndCoinScores) {
  auto Run = runWorkloadOrExit(*findWorkload("qsortbench"), 0);
  // Oracle: empirical per-branch probability. Brier = weighted
  // variance, strictly below the coin.
  CalibrationReport Oracle = calibrate(Run->Stats, [](const BranchStats &S) {
    return S.total() == 0 ? 0.5
                          : static_cast<double>(S.Taken) /
                                static_cast<double>(S.total());
  });
  CalibrationReport Coin =
      calibrate(Run->Stats, [](const BranchStats &) { return 0.5; });
  EXPECT_NEAR(Coin.Brier, 0.25, 1e-9);
  EXPECT_LT(Oracle.Brier, Coin.Brier);

  // Oracle reliability: every non-empty bucket has predicted ==
  // empirical (it *is* the empirical rate, bucket-averaged).
  for (const auto &B : Oracle.Buckets) {
    if (B.Execs == 0)
      continue;
    EXPECT_NEAR(B.MeanPredicted, B.EmpiricalTaken, 0.1);
  }
}

TEST(Calibration, WuLarusBeatsCoin) {
  for (const char *Name : {"lisp", "circuit"}) {
    auto Run = runWorkloadOrExit(*findWorkload(Name), 0);
    HeuristicPriors Priors = HeuristicPriors::measured(Run->Stats);
    CalibrationReport WL = calibrate(Run->Stats, [&](const BranchStats &S) {
      return takenProbability(S, Priors);
    });
    EXPECT_LT(WL.Brier, 0.25) << Name << ": must carry real information";
  }
}

} // namespace
