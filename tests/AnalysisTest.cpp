//===- tests/AnalysisTest.cpp - Dominators, postdominators, loops ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the CFG analyses, including a reconstruction of the
/// paper's Figure 1 loop example, and property tests over randomly
/// generated CFGs checking the dominator/postdominator axioms and the
/// natural-loop invariants.
///
//===----------------------------------------------------------------------===//

#include "analysis/DomTree.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// Builds the CFG of the paper's Figure 1:
///   A -> B | F;  B -> C | E;  C -> D | F;  D -> B;  E -> B | F;  F: ret
/// Backedges: D->B, E->B. Natural loop of B = {B, C, D, E}.
/// Exit edges: C->F, E->F. Loop branches: C, E (and D has only the
/// backedge... D ends in an unconditional backedge jump here, so the
/// conditional loop branches are B? no — in the paper A and B are
/// non-loop branches, C, D, E are loop branches; we give D a
/// conditional self-iteration to match by branching D -> B | E.
struct Figure1 {
  Module M;
  Function *F = nullptr;
  BasicBlock *A, *B, *C, *D, *E, *X;

  Figure1() {
    F = M.createFunction("fig1", 1);
    IRBuilder Bld(F);
    A = F->createBlock("A");
    B = F->createBlock("B");
    C = F->createBlock("C");
    D = F->createBlock("D");
    E = F->createBlock("E");
    X = F->createBlock("F");
    Reg P = F->getParamReg(0);
    Bld.setInsertBlock(A);
    Bld.condBranch(BranchOp::BGTZ, P, Reg(), B, X);
    Bld.setInsertBlock(B);
    Bld.condBranch(BranchOp::BGTZ, P, Reg(), C, E);
    Bld.setInsertBlock(C);
    Bld.condBranch(BranchOp::BGTZ, P, Reg(), D, X);
    Bld.setInsertBlock(D);
    Bld.jump(B);
    Bld.setInsertBlock(E);
    Bld.condBranch(BranchOp::BGTZ, P, Reg(), B, X);
    Bld.setInsertBlock(X);
    Bld.ret();
  }
};

TEST(DomTreeTest, Figure1Dominators) {
  Figure1 G;
  DomTree DT = DomTree::computeDominators(*G.F);
  EXPECT_TRUE(DT.dominates(G.A, G.A));
  EXPECT_TRUE(DT.dominates(G.A, G.X));
  EXPECT_TRUE(DT.dominates(G.B, G.C));
  EXPECT_TRUE(DT.dominates(G.B, G.D));
  EXPECT_TRUE(DT.dominates(G.B, G.E));
  EXPECT_FALSE(DT.dominates(G.C, G.B));
  EXPECT_FALSE(DT.dominates(G.B, G.X)) << "A -> F bypasses B";
  EXPECT_FALSE(DT.dominates(G.C, G.E));
  EXPECT_EQ(DT.getIdom(G.A), nullptr);
  EXPECT_EQ(DT.getIdom(G.B), G.A);
  EXPECT_EQ(DT.getIdom(G.C), G.B);
  EXPECT_EQ(DT.getIdom(G.X), G.A);
}

TEST(DomTreeTest, Figure1PostDominators) {
  Figure1 G;
  DomTree PDT = DomTree::computePostDominators(*G.F);
  EXPECT_TRUE(PDT.dominates(G.X, G.A));
  EXPECT_TRUE(PDT.dominates(G.X, G.D));
  EXPECT_FALSE(PDT.dominates(G.B, G.A)) << "A can go straight to F";
  EXPECT_TRUE(PDT.dominates(G.B, G.D)) << "D's only successor is B";
  EXPECT_FALSE(PDT.dominates(G.C, G.B));
  EXPECT_TRUE(PDT.isReachable(G.A));
}

TEST(DomTreeTest, InfiniteLoopHasNoPostdomInfo) {
  Module M;
  Function *F = M.createFunction("spin", 0);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  B.setInsertBlock(Entry);
  B.jump(Loop);
  B.setInsertBlock(Loop);
  B.jump(Loop);
  DomTree PDT = DomTree::computePostDominators(*F);
  EXPECT_FALSE(PDT.isReachable(Entry));
  EXPECT_FALSE(PDT.isReachable(Loop));
  // Self-postdominance still holds by convention.
  EXPECT_TRUE(PDT.dominates(Loop, Loop));
  EXPECT_FALSE(PDT.dominates(Loop, Entry));
}

TEST(LoopInfoTest, Figure1Loops) {
  Figure1 G;
  DomTree DT = DomTree::computeDominators(*G.F);
  LoopInfo LI(*G.F, DT);

  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.HeadId, G.B->getId());
  EXPECT_TRUE(L.contains(G.B->getId()));
  EXPECT_TRUE(L.contains(G.C->getId()));
  EXPECT_TRUE(L.contains(G.D->getId()));
  EXPECT_TRUE(L.contains(G.E->getId()));
  EXPECT_FALSE(L.contains(G.A->getId()));
  EXPECT_FALSE(L.contains(G.X->getId()));

  EXPECT_TRUE(LI.isLoopHead(G.B));
  EXPECT_FALSE(LI.isLoopHead(G.C));

  // Backedges: D->B (jump) and E->B (taken successor of E's branch).
  EXPECT_TRUE(LI.isBackedge(G.D, 0));
  EXPECT_TRUE(LI.isBackedge(G.E, 0));
  EXPECT_FALSE(LI.isBackedge(G.B, 0));

  // Exit edges: C->F (successor 1) and E->F (successor 1).
  EXPECT_TRUE(LI.isExitEdge(G.C, 1));
  EXPECT_TRUE(LI.isExitEdge(G.E, 1));
  EXPECT_FALSE(LI.isExitEdge(G.B, 0));
  EXPECT_FALSE(LI.isExitEdge(G.B, 1));

  // Classification: C and E are loop branches; A and B are not.
  EXPECT_TRUE(LI.isLoopBranch(G.C));
  EXPECT_TRUE(LI.isLoopBranch(G.E));
  EXPECT_FALSE(LI.isLoopBranch(G.A));
  EXPECT_FALSE(LI.isLoopBranch(G.B));

  // Predictions (paper): C -> D, E -> B.
  EXPECT_EQ(LI.predictLoopBranch(G.C), 0u) << "C predicts the non-exit edge";
  EXPECT_EQ(LI.predictLoopBranch(G.E), 0u) << "E predicts its backedge";
}

TEST(LoopInfoTest, Depths) {
  // entry -> outer -> inner; inner -> inner | outerLatch;
  // outerLatch -> outer | exit.
  Module M;
  Function *F = M.createFunction("nest", 1);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Outer = F->createBlock("outer");
  BasicBlock *Inner = F->createBlock("inner");
  BasicBlock *Latch = F->createBlock("latch");
  BasicBlock *Exit = F->createBlock("exit");
  Reg P = F->getParamReg(0);
  B.setInsertBlock(Entry);
  B.jump(Outer);
  B.setInsertBlock(Outer);
  B.jump(Inner);
  B.setInsertBlock(Inner);
  B.condBranch(BranchOp::BGTZ, P, Reg(), Inner, Latch);
  B.setInsertBlock(Latch);
  B.condBranch(BranchOp::BGTZ, P, Reg(), Outer, Exit);
  B.setInsertBlock(Exit);
  B.ret();

  DomTree DT = DomTree::computeDominators(*F);
  LoopInfo LI(*F, DT);
  EXPECT_EQ(LI.loops().size(), 2u);
  EXPECT_EQ(LI.getLoopDepth(Inner), 2u);
  EXPECT_EQ(LI.getLoopDepth(Outer), 1u);
  EXPECT_EQ(LI.getLoopDepth(Latch), 1u);
  EXPECT_EQ(LI.getLoopDepth(Entry), 0u);
  EXPECT_EQ(LI.getLoopDepth(Exit), 0u);

  // Inner's self-branch: backedge preferred.
  EXPECT_TRUE(LI.isLoopBranch(Inner));
  EXPECT_EQ(LI.predictLoopBranch(Inner), 0u);
  // Latch: backedge to outer preferred over exit.
  EXPECT_TRUE(LI.isLoopBranch(Latch));
  EXPECT_EQ(LI.predictLoopBranch(Latch), 0u);
}

TEST(LoopInfoTest, PreheaderDetection) {
  // entry -> pre; pre -(jump)-> head; head -> head | exit.
  Module M;
  Function *F = M.createFunction("pre", 1);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Pre = F->createBlock("pre");
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Exit = F->createBlock("exit");
  Reg P = F->getParamReg(0);
  B.setInsertBlock(Entry);
  B.jump(Pre);
  B.setInsertBlock(Pre);
  B.jump(Head);
  B.setInsertBlock(Head);
  B.condBranch(BranchOp::BGTZ, P, Reg(), Head, Exit);
  B.setInsertBlock(Exit);
  B.ret();

  DomTree DT = DomTree::computeDominators(*F);
  LoopInfo LI(*F, DT);
  EXPECT_TRUE(LI.isPreheader(Pre, DT));
  EXPECT_TRUE(LI.isPreheader(Entry, DT)) << "jump chains are followed";
  EXPECT_FALSE(LI.isPreheader(Head, DT));
  EXPECT_FALSE(LI.isPreheader(Exit, DT));
}

//===----------------------------------------------------------------------===//
// Property tests on random CFGs
//===----------------------------------------------------------------------===//

/// Builds a random function with \p NumBlocks blocks whose terminators
/// are chosen randomly (all blocks reachable from entry not guaranteed —
/// that is part of what we test).
Function *randomCfg(Module &M, Rng &R, unsigned NumBlocks,
                    const std::string &Name) {
  Function *F = M.createFunction(Name, 1);
  IRBuilder B(F);
  std::vector<BasicBlock *> Blocks;
  for (unsigned I = 0; I < NumBlocks; ++I)
    Blocks.push_back(F->createBlock("b" + std::to_string(I)));
  Reg P = F->getParamReg(0);
  for (unsigned I = 0; I < NumBlocks; ++I) {
    B.setInsertBlock(Blocks[I]);
    unsigned Kind = static_cast<unsigned>(R.below(10));
    if (Kind < 2 || NumBlocks == 1) {
      B.ret();
    } else if (Kind < 5) {
      B.jump(Blocks[R.below(NumBlocks)]);
    } else {
      unsigned T = static_cast<unsigned>(R.below(NumBlocks));
      unsigned FT = static_cast<unsigned>(R.below(NumBlocks));
      if (T == FT)
        FT = (FT + 1) % NumBlocks;
      B.condBranch(BranchOp::BGTZ, P, Reg(), Blocks[T], Blocks[FT]);
    }
  }
  return F;
}

/// Reference dominance: BFS from entry avoiding \p Avoid; everything
/// not reached (but reachable normally) is dominated by Avoid.
std::vector<bool> reachableAvoiding(const Function &F,
                                    const BasicBlock *Avoid) {
  std::vector<bool> Seen(F.numBlocks(), false);
  std::vector<const BasicBlock *> Work;
  const BasicBlock *Entry = F.getEntry();
  if (Entry != Avoid) {
    Seen[Entry->getId()] = true;
    Work.push_back(Entry);
  }
  while (!Work.empty()) {
    const BasicBlock *Cur = Work.back();
    Work.pop_back();
    for (unsigned I = 0, E = Cur->numSuccessors(); I != E; ++I) {
      const BasicBlock *S = Cur->getSuccessor(I);
      if (S == Avoid || Seen[S->getId()])
        continue;
      Seen[S->getId()] = true;
      Work.push_back(S);
    }
  }
  return Seen;
}

TEST(DomTreeProperty, MatchesPathDefinitionOnRandomCfgs) {
  Rng R(12345);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Module M;
    unsigned N = 2 + static_cast<unsigned>(R.below(12));
    Function *F = randomCfg(M, R, N, "f" + std::to_string(Trial));
    DomTree DT = DomTree::computeDominators(*F);
    std::vector<bool> Reachable = reachableAvoiding(*F, nullptr);

    for (unsigned A = 0; A < N; ++A) {
      const BasicBlock *BA = F->getBlock(A);
      std::vector<bool> ReachWithoutA = reachableAvoiding(*F, BA);
      for (unsigned B = 0; B < N; ++B) {
        const BasicBlock *BB = F->getBlock(B);
        if (!Reachable[A] || !Reachable[B]) {
          EXPECT_EQ(DT.dominates(BA, BB), BA == BB);
          continue;
        }
        // "v dominates w if every path from entry to w includes v":
        // equivalently w is not reachable when v is removed (or w == v).
        bool Expected = (A == B) || !ReachWithoutA[B];
        EXPECT_EQ(DT.dominates(BA, BB), Expected)
            << "trial " << Trial << " blocks " << A << " -> " << B;
      }
    }
  }
}

/// Reference postdominance: can \p From reach any return block without
/// passing through \p Avoid?
bool reachesExitAvoiding(const Function &F, const BasicBlock *From,
                         const BasicBlock *Avoid) {
  assert(From != Avoid && "query not meaningful for From == Avoid");
  std::vector<bool> Seen(F.numBlocks(), false);
  std::vector<const BasicBlock *> Work;
  Seen[From->getId()] = true;
  Work.push_back(From);
  while (!Work.empty()) {
    const BasicBlock *Cur = Work.back();
    Work.pop_back();
    if (Cur->isReturnBlock())
      return true;
    for (unsigned I = 0, E = Cur->numSuccessors(); I != E; ++I) {
      const BasicBlock *S = Cur->getSuccessor(I);
      if (S == Avoid || Seen[S->getId()])
        continue;
      Seen[S->getId()] = true;
      Work.push_back(S);
    }
  }
  return false;
}

TEST(PostDomProperty, MatchesPathDefinitionOnRandomCfgs) {
  // "w postdominates v if every path from v to any exit vertex
  // includes w" — equivalently: v cannot reach an exit once w is
  // removed (for v != w, both able to reach an exit at all).
  Rng R(31337);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Module M;
    unsigned N = 2 + static_cast<unsigned>(R.below(12));
    Function *F = randomCfg(M, R, N, "f" + std::to_string(Trial));
    DomTree PDT = DomTree::computePostDominators(*F);

    for (unsigned V = 0; V < N; ++V) {
      const BasicBlock *BV = F->getBlock(V);
      bool VReaches = reachesExitAvoiding(*F, BV, nullptr);
      EXPECT_EQ(PDT.isReachable(BV), VReaches) << "trial " << Trial;
      for (unsigned W = 0; W < N; ++W) {
        const BasicBlock *BW = F->getBlock(W);
        if (V == W) {
          EXPECT_TRUE(PDT.dominates(BW, BV)) << "reflexive";
          continue;
        }
        bool WReaches = reachesExitAvoiding(*F, BW, nullptr);
        if (!VReaches || !WReaches) {
          EXPECT_FALSE(PDT.dominates(BW, BV))
              << "trial " << Trial << " " << W << " pdom " << V;
          continue;
        }
        bool Expected = !reachesExitAvoiding(*F, BV, BW);
        EXPECT_EQ(PDT.dominates(BW, BV), Expected)
            << "trial " << Trial << ": does " << W << " postdominate "
            << V << "?";
      }
    }
  }
}

TEST(DomTreeProperty, IdomIsStrictDominatorOnRandomCfgs) {
  Rng R(777);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Module M;
    unsigned N = 2 + static_cast<unsigned>(R.below(14));
    Function *F = randomCfg(M, R, N, "f" + std::to_string(Trial));
    DomTree DT = DomTree::computeDominators(*F);
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock *BB = F->getBlock(B);
      const BasicBlock *Idom = DT.getIdom(BB);
      if (!Idom)
        continue;
      EXPECT_TRUE(DT.dominates(Idom, BB));
      EXPECT_NE(Idom, BB);
      EXPECT_LT(DT.getDepth(Idom), DT.getDepth(BB));
    }
  }
}

TEST(LoopInfoProperty, NaturalLoopInvariantsOnRandomCfgs) {
  Rng R(999);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Module M;
    unsigned N = 3 + static_cast<unsigned>(R.below(12));
    Function *F = randomCfg(M, R, N, "f" + std::to_string(Trial));
    DomTree DT = DomTree::computeDominators(*F);
    LoopInfo LI(*F, DT);

    for (const Loop &L : LI.loops()) {
      const BasicBlock *Head = F->getBlock(L.HeadId);
      // Every backedge source is in the loop and dominated by the head.
      for (unsigned Src : L.BackedgeSources) {
        EXPECT_TRUE(L.contains(Src));
        EXPECT_TRUE(DT.dominates(Head, F->getBlock(Src)));
      }
      // Every member except the head has all in-loop paths; at minimum,
      // each member is dominated by the head (reducible-loop property
      // holds because backedges require dominance).
      for (unsigned B = 0; B < N; ++B) {
        if (L.contains(B)) {
          EXPECT_TRUE(DT.dominates(Head, F->getBlock(B)))
              << "trial " << Trial;
        }
      }
    }

    // Paper's claim: "for any vertex, either none of its outgoing edges
    // are exit edges, or exactly one of its outgoing edges is an exit
    // edge" — with nested loops a branch can exit several loops at
    // once, but each single loop contributes at most one exiting edge
    // per vertex... verify the per-loop version.
    for (const Loop &L : LI.loops()) {
      for (unsigned B = 0; B < N; ++B) {
        if (!L.contains(B))
          continue;
        const BasicBlock *BB = F->getBlock(B);
        unsigned ExitsFromThisLoop = 0;
        for (unsigned S = 0, E = BB->numSuccessors(); S != E; ++S)
          if (!L.contains(BB->getSuccessor(S)->getId()))
            ++ExitsFromThisLoop;
        EXPECT_LE(ExitsFromThisLoop, BB->numSuccessors());
      }
    }

    // Loop-branch predictions always pick an edge that stays in (or
    // re-enters) a loop when one exists.
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock *BB = F->getBlock(B);
      if (!BB->isCondBranch() || !LI.isLoopBranch(BB))
        continue;
      unsigned Pick = LI.predictLoopBranch(BB);
      EXPECT_LT(Pick, 2u);
      // If one edge is a backedge and the other is not, the backedge
      // must be chosen.
      bool B0 = LI.isBackedge(BB, 0), B1 = LI.isBackedge(BB, 1);
      if (B0 != B1) {
        // A backedge is always preferred — even when it exits an inner
        // loop on the way back to an outer head ("iterating over
        // exiting").
        EXPECT_EQ(Pick, B0 ? 0u : 1u);
      } else if (!B0 && !B1) {
        // With no backedge, the picked edge exits no more loops than
        // the alternative.
        EXPECT_LE(LI.loopsExited(BB, Pick), LI.loopsExited(BB, 1 - Pick));
      }
    }
  }
}

} // namespace
