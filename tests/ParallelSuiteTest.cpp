//===- tests/ParallelSuiteTest.cpp - Parallel suite determinism -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel suite runner's contract is *bit-identical output*: a
/// runSuite with Jobs=N must produce the same runs (instruction counts,
/// exit values, output, edge profiles, branch statistics) and the same
/// failure records as Jobs=1, in the same registry order, no matter how
/// the pool interleaves — including when deterministic faults are
/// injected mid-run.
///
//===----------------------------------------------------------------------===//

#include "ipbc/TraceReplay.h"
#include "predict/Heuristics.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "vm/FaultInjector.h"
#include "vm/TraceStore.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

using namespace bpfree;

namespace {

/// Unwrap a replay result inside a test: a rejection here is a test
/// failure, not an expected condition.
template <typename T> T take(Expected<T> E) {
  if (!E) {
    ADD_FAILURE() << "unexpected replay rejection: "
                  << E.error().renderWithKind();
    return T{};
  }
  return E.takeValue();
}

/// Worker count for the "parallel" side of every comparison. Forced
/// above the machine's core count on purpose: oversubscription maximizes
/// interleaving, which is what the determinism guarantee must survive.
constexpr unsigned TestJobs = 4;

/// Both runs profile the same workload compiled independently, so the
/// two modules have identical shape; walk them in lockstep and compare
/// every block-entry and branch counter.
void expectProfilesEqual(const WorkloadRun &A, const WorkloadRun &B) {
  auto FA = A.M->begin(), FB = B.M->begin();
  for (; FA != A.M->end() && FB != B.M->end(); ++FA, ++FB) {
    auto BA = (*FA)->begin(), BB = (*FB)->begin();
    for (; BA != (*FA)->end() && BB != (*FB)->end(); ++BA, ++BB) {
      EXPECT_EQ(A.Profile->getBlockCount(**BA),
                B.Profile->getBlockCount(**BB))
          << A.W->Name << " " << (*FA)->getName() << " block "
          << (*BA)->getId();
      if (!(*BA)->isCondBranch())
        continue;
      const EdgeProfile::Counts &CA = A.Profile->get(**BA);
      const EdgeProfile::Counts &CB = B.Profile->get(**BB);
      EXPECT_EQ(CA.Taken, CB.Taken) << A.W->Name;
      EXPECT_EQ(CA.Fallthru, CB.Fallthru) << A.W->Name;
    }
    EXPECT_EQ(BA == (*FA)->end(), BB == (*FB)->end());
  }
  EXPECT_EQ(FA == A.M->end(), FB == B.M->end());
}

void expectStatsEqual(const WorkloadRun &A, const WorkloadRun &B) {
  ASSERT_EQ(A.Stats.size(), B.Stats.size()) << A.W->Name;
  for (size_t I = 0; I < A.Stats.size(); ++I) {
    const BranchStats &SA = A.Stats[I];
    const BranchStats &SB = B.Stats[I];
    EXPECT_EQ(SA.Taken, SB.Taken) << A.W->Name << " branch " << I;
    EXPECT_EQ(SA.Fallthru, SB.Fallthru) << A.W->Name << " branch " << I;
    EXPECT_EQ(SA.IsLoopBranch, SB.IsLoopBranch) << A.W->Name;
    EXPECT_EQ(SA.LoopDir, SB.LoopDir) << A.W->Name;
    EXPECT_EQ(SA.IsBackwardBranch, SB.IsBackwardBranch) << A.W->Name;
    EXPECT_EQ(SA.AppliesMask, SB.AppliesMask) << A.W->Name;
    EXPECT_EQ(SA.DirMask, SB.DirMask) << A.W->Name;
    EXPECT_EQ(SA.RandomDir, SB.RandomDir) << A.W->Name;
  }
}

void expectReportsEqual(const SuiteReport &Serial,
                        const SuiteReport &Parallel) {
  EXPECT_EQ(Serial.Attempted, Parallel.Attempted);
  ASSERT_EQ(Serial.Runs.size(), Parallel.Runs.size());
  ASSERT_EQ(Serial.Failures.size(), Parallel.Failures.size());

  // Registry order is part of the contract: entry I of each list must be
  // the same workload in both reports.
  for (size_t I = 0; I < Serial.Runs.size(); ++I) {
    const WorkloadRun &A = *Serial.Runs[I];
    const WorkloadRun &B = *Parallel.Runs[I];
    ASSERT_EQ(A.W->Name, B.W->Name) << "run order diverged at " << I;
    EXPECT_EQ(A.DatasetIndex, B.DatasetIndex);
    EXPECT_EQ(A.Result.InstrCount, B.Result.InstrCount) << A.W->Name;
    EXPECT_EQ(A.Result.ExitValue, B.Result.ExitValue) << A.W->Name;
    EXPECT_EQ(A.Result.Output, B.Result.Output) << A.W->Name;
    expectProfilesEqual(A, B);
    expectStatsEqual(A, B);
  }

  for (size_t I = 0; I < Serial.Failures.size(); ++I) {
    const WorkloadFailure &A = Serial.Failures[I];
    const WorkloadFailure &B = Parallel.Failures[I];
    EXPECT_EQ(A.Workload, B.Workload) << "failure order diverged at " << I;
    EXPECT_EQ(A.Dataset, B.Dataset) << A.Workload;
    EXPECT_EQ(A.Kind, B.Kind) << A.Workload;
    EXPECT_EQ(A.Message, B.Message) << A.Workload;
    ASSERT_EQ(A.Trap.has_value(), B.Trap.has_value()) << A.Workload;
    if (A.Trap) {
      EXPECT_EQ(A.Trap->render(), B.Trap->render()) << A.Workload;
    }
  }
}

/// Fault-free suite: Jobs=4 must reproduce Jobs=1 bit for bit.
TEST(ParallelSuite, BitIdenticalToSerial) {
  SuiteOptions SerialOpts;
  SerialOpts.Jobs = 1;
  SuiteReport Serial = runSuite({}, SerialOpts);
  ASSERT_TRUE(Serial.allOk()) << Serial.renderFailures();
  ASSERT_GT(Serial.Runs.size(), 0u);

  SuiteOptions ParallelOpts;
  ParallelOpts.Jobs = TestJobs;
  SuiteReport Parallel = runSuite({}, ParallelOpts);
  ASSERT_TRUE(Parallel.allOk()) << Parallel.renderFailures();

  expectReportsEqual(Serial, Parallel);
}

/// Seeded per-workload faults: the parallel run must record the exact
/// same failures (kind, message, backtrace) in the same order, and the
/// surviving workloads must stay bit-identical. Injectors are stateful,
/// so each suite run gets a fresh set built from the same seeds.
TEST(ParallelSuite, FaultedSuiteBitIdentical) {
  auto runWithFaults = [](unsigned Jobs) {
    std::map<std::string, std::unique_ptr<FaultInjector>> Injectors;
    uint64_t Seed = 0x5EED;
    for (const Workload &W : workloadSuite())
      Injectors[W.Name] = std::make_unique<FaultInjector>(
          FaultPlan::fromSeed(Seed++, 1000, 50000));

    SuiteOptions Opts;
    Opts.Jobs = Jobs;
    Opts.ExtraObservers =
        [&](const Workload &W) -> std::vector<ExecObserver *> {
      return {Injectors.at(W.Name).get()};
    };
    return runSuite({}, Opts);
  };

  SuiteReport Serial = runWithFaults(1);
  SuiteReport Parallel = runWithFaults(TestJobs);

  // The seeded plans land inside most workloads' instruction streams, so
  // this exercises the failure path for real.
  EXPECT_FALSE(Serial.Failures.empty());
  expectReportsEqual(Serial, Parallel);
}

/// The Progress callback must see every workload exactly once, tagged
/// with its suite registry index, even when invoked from pool threads.
TEST(ParallelSuite, ProgressIndicesMatchRegistry) {
  const std::vector<Workload> &Suite = workloadSuite();

  std::mutex Mu;
  std::vector<std::pair<size_t, std::string>> Seen;
  SuiteOptions Opts;
  Opts.Jobs = TestJobs;
  Opts.Progress = [&](const Workload &W, size_t Index) {
    std::lock_guard<std::mutex> Lock(Mu);
    Seen.emplace_back(Index, W.Name);
  };

  SuiteReport Report = runSuite({}, Opts);
  ASSERT_TRUE(Report.allOk()) << Report.renderFailures();

  ASSERT_EQ(Seen.size(), Suite.size());
  std::set<size_t> Indices;
  for (const auto &[Index, Name] : Seen) {
    ASSERT_LT(Index, Suite.size());
    EXPECT_EQ(Suite[Index].Name, Name);
    EXPECT_TRUE(Indices.insert(Index).second)
        << "index " << Index << " reported twice";
  }
}

/// Jobs=0 (hardware concurrency) is the default; it must run the whole
/// suite successfully whatever the machine's core count.
TEST(ParallelSuite, DefaultJobsRunsSuite) {
  SuiteReport Report = runSuite();
  EXPECT_TRUE(Report.allOk()) << Report.renderFailures();
  EXPECT_EQ(Report.Runs.size(), Report.Attempted);
}

/// LPT scheduling (a CostHint plus Jobs > 1) reorders only dispatch;
/// the report must stay bit-identical to serial. The hint here is
/// deliberately adversarial — it inverts the registry order — to make
/// the permutation as different from identity as possible.
TEST(ParallelSuite, CostHintReordersDispatchNotResults) {
  SuiteOptions SerialOpts;
  SerialOpts.Jobs = 1;
  SuiteReport Serial = runSuite({}, SerialOpts);
  ASSERT_TRUE(Serial.allOk()) << Serial.renderFailures();

  const size_t N = workloadSuite().size();
  SuiteOptions LptOpts;
  LptOpts.Jobs = TestJobs;
  LptOpts.CostHint = [N](const Workload &, size_t Index) -> uint64_t {
    return N - Index; // highest "cost" first == reverse registry order
  };
  SuiteReport Lpt = runSuite({}, LptOpts);
  ASSERT_TRUE(Lpt.allOk()) << Lpt.renderFailures();

  expectReportsEqual(Serial, Lpt);
}

/// Trace replay fans predictors out over the same shared pool the suite
/// uses; histograms must be identical at every worker count. (This test
/// and the suite tests above are the TSan targets for the pool, so the
/// replay engine's parallelism is exercised here rather than only in
/// trace_replay_test.)
TEST(ParallelSuite, ReplayJobsSweepOnSharedPool) {
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  ASSERT_TRUE(Run->Trace && Run->Trace->finalized());

  PerfectPredictor Perfect(*Run->Profile);
  BallLarusPredictor Heuristic(*Run->Ctx);
  LoopRandPredictor LoopRand(*Run->Ctx);
  std::vector<const StaticPredictor *> Preds{&LoopRand, &Heuristic,
                                             &Perfect};

  std::vector<SequenceHistogram> J1 =
      take(replayTraceAll(*Run->Trace, Preds, 1));
  for (unsigned Jobs : {2u, 4u, 8u}) {
    std::vector<SequenceHistogram> JN =
        take(replayTraceAll(*Run->Trace, Preds, Jobs));
    ASSERT_EQ(J1.size(), JN.size());
    for (size_t P = 0; P < J1.size(); ++P) {
      EXPECT_EQ(J1[P].NumSequences, JN[P].NumSequences) << Jobs;
      EXPECT_EQ(J1[P].SumLengths, JN[P].SumLengths) << Jobs;
      EXPECT_EQ(J1[P].Breaks, JN[P].Breaks) << Jobs;
      EXPECT_EQ(J1[P].TotalInstrs, JN[P].TotalInstrs) << Jobs;
      EXPECT_EQ(J1[P].BranchExecs, JN[P].BranchExecs) << Jobs;
    }
  }
}

/// Metrics are updated from pool worker threads (replay passes, pool
/// task counters, per-workload run records); this test runs in the TSan
/// leg, so it is the data-race check for the whole metrics layer. The
/// counts themselves must also be exact: N workers hammering one
/// counter via parallelFor lose nothing, and a suite run under metrics
/// records every workload exactly once.
TEST(ParallelSuite, MetricsConsistentUnderParallelFor) {
  metrics::setEnabled(true);
  metrics::resetAll();
  metrics::clearRunRecords();

  metrics::Counter &Hits = metrics::counter("test.parallel_hits");
  constexpr size_t PerRound = 1000;
  uint64_t Expected = 0;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    parallelFor(Jobs, PerRound, [&](size_t) { Hits.add(); });
    Expected += PerRound;
    EXPECT_EQ(Hits.value(), Expected) << "Jobs=" << Jobs;
  }

  // Replay fan-out bumps replay.* counters from worker threads; the
  // totals must match the serial run regardless of worker count.
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(*findWorkload("treesort"), 0, {}, RO);
  BallLarusPredictor Heuristic(*Run->Ctx);
  LoopRandPredictor LoopRand(*Run->Ctx);
  std::vector<const StaticPredictor *> Preds{&LoopRand, &Heuristic};

  metrics::Counter &Passes = metrics::counter("replay.passes");
  metrics::Counter &Events = metrics::counter("replay.events");
  for (unsigned Jobs : {1u, 4u}) {
    uint64_t P0 = Passes.value(), E0 = Events.value();
    (void)take(replayTraceAll(*Run->Trace, Preds, Jobs));
    uint64_t DP = Passes.value() - P0, DE = Events.value() - E0;
    // Predictors are fused into between 1 pass (Jobs=1 runs one wide
    // panel) and |Preds| passes (fully split across workers); every
    // pass walks the whole trace once, whichever thread ran it.
    EXPECT_GE(DP, 1u) << "Jobs=" << Jobs;
    EXPECT_LE(DP, Preds.size()) << "Jobs=" << Jobs;
    EXPECT_EQ(DE, DP * Run->Trace->numEvents()) << "Jobs=" << Jobs;
  }

  // A parallel suite run appends one RunRecord per attempted workload,
  // from whichever thread ran it.
  metrics::clearRunRecords();
  SuiteOptions Opts;
  Opts.Jobs = TestJobs;
  SuiteReport Report = runSuite({}, Opts);
  ASSERT_TRUE(Report.allOk()) << Report.renderFailures();
  std::vector<metrics::RunRecord> Records = metrics::runRecords();
  EXPECT_EQ(Records.size(), Report.Attempted);
  std::set<std::string> Names;
  for (const metrics::RunRecord &R : Records) {
    EXPECT_TRUE(R.Ok) << R.Workload << ": " << R.Error;
    Names.insert(R.Workload);
  }
  EXPECT_EQ(Names.size(), Records.size()) << "duplicate run records";

  metrics::setEnabled(false);
  metrics::resetAll();
  metrics::clearRunRecords();
}

/// The durable-store half of capture-once/replay-many, across the whole
/// suite: every workload's capture is persisted, reloaded, and replayed
/// from disk at several worker counts, and the histograms must be
/// bit-identical to resident replay. This runs in the TSan leg, so the
/// per-group stream cursors (one FILE* per replay group) are also the
/// data-race check for parallel disk replay.
TEST(ParallelSuite, DiskReplayMatchesResidentAcrossSuite) {
  SuiteOptions Opts;
  Opts.Jobs = TestJobs;
  Opts.CaptureTrace = true;
  SuiteReport Report = runSuite({}, Opts);
  ASSERT_TRUE(Report.allOk()) << Report.renderFailures();
  EXPECT_TRUE(Report.Warnings.empty());

  // One store at a time: write, replay, compare, delete — suite-wide
  // coverage without suite-wide disk footprint.
  const std::string Path = ::testing::TempDir() + "bpfree_suite_rt.trace";
  for (const std::unique_ptr<WorkloadRun> &Run : Report.Runs) {
    ASSERT_TRUE(Run->Trace && Run->Trace->finalized()) << Run->W->Name;
    const BranchTrace &T = *Run->Trace;
    std::remove(Path.c_str());
    std::optional<Diag> D = writeTraceFile(T, Path);
    ASSERT_FALSE(D.has_value()) << Run->W->Name << ": " << D->render();

    TraceStoreReader Store;
    D = Store.open(Path);
    ASSERT_FALSE(D.has_value()) << Run->W->Name << ": " << D->render();
    ASSERT_TRUE(Store.complete()) << Run->W->Name;
    ASSERT_FALSE(Store.requireModule(*Run->M).has_value()) << Run->W->Name;
    EXPECT_EQ(Store.numEvents(), T.numEvents()) << Run->W->Name;

    const std::vector<uint8_t> Perfect =
        take(perfectDirectionsFromTrace(T));
    EXPECT_EQ(take(perfectDirectionsFromStore(Store, *Run->M)), Perfect)
        << Run->W->Name;
    std::vector<std::vector<uint8_t>> Panel{
        Perfect, std::vector<uint8_t>(Perfect.size(), DirTaken)};
    const std::vector<SequenceHistogram> Resident =
        take(replayTraceAll(T, Panel, 1));
    for (unsigned Jobs : {1u, TestJobs}) {
      const std::vector<SequenceHistogram> Disk =
          take(replayStoreAll(Store, Panel, Jobs));
      ASSERT_EQ(Disk.size(), Resident.size()) << Run->W->Name;
      for (size_t P = 0; P < Disk.size(); ++P) {
        EXPECT_EQ(Disk[P].NumSequences, Resident[P].NumSequences)
            << Run->W->Name << " predictor " << P << " Jobs " << Jobs;
        EXPECT_EQ(Disk[P].SumLengths, Resident[P].SumLengths)
            << Run->W->Name;
        EXPECT_EQ(Disk[P].Breaks, Resident[P].Breaks) << Run->W->Name;
        EXPECT_EQ(Disk[P].TotalInstrs, Resident[P].TotalInstrs)
            << Run->W->Name;
        EXPECT_EQ(Disk[P].BranchExecs, Resident[P].BranchExecs)
            << Run->W->Name;
      }
    }
  }
  std::remove(Path.c_str());
}

/// A suite-wide byte cap that truncates every capture must surface as
/// per-workload warnings on the report, in registry order — capped
/// traces are a qualification on the results, not a silent condition.
TEST(ParallelSuite, TraceOverflowSurfacesInSuiteWarnings) {
  SuiteOptions Opts;
  Opts.Jobs = TestJobs;
  Opts.CaptureTrace = true;
  Opts.TraceMaxBytes = BranchTrace::ChunkWords * 4; // one chunk
  SuiteReport Report = runSuite({}, Opts);
  ASSERT_TRUE(Report.allOk()) << Report.renderFailures();

  ASSERT_FALSE(Report.Warnings.empty());
  size_t WarnAt = 0;
  for (const std::unique_ptr<WorkloadRun> &Run : Report.Runs) {
    if (!Run->Trace->overflowed())
      continue;
    ASSERT_LT(WarnAt, Report.Warnings.size());
    // Registry order: the next suite warning names this workload.
    EXPECT_NE(Report.Warnings[WarnAt].find("'" + Run->W->Name + "'"),
              std::string::npos)
        << Report.Warnings[WarnAt];
    EXPECT_NE(Report.Warnings[WarnAt].find("overflowed"), std::string::npos);
    ++WarnAt;
  }
  EXPECT_EQ(WarnAt, Report.Warnings.size());
}

/// Back-to-back parallelFor calls reuse the shared pool (workers are
/// spawned once, not per call); repeated fan-outs with varying widths
/// must all complete and compute every index exactly once.
TEST(ParallelSuite, SharedPoolSurvivesRepeatedFanOuts) {
  for (unsigned Round = 0; Round < 50; ++Round) {
    const unsigned Jobs = 1 + Round % 8;
    const size_t N = 1 + Round % 13;
    std::vector<std::atomic<unsigned>> Hits(N);
    parallelFor(Jobs, N, [&](size_t I) {
      Hits[I].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Hits[I].load(), 1u) << "round " << Round << " index " << I;
  }
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

} // namespace
