//===- tests/WorkloadTest.cpp - Benchmark suite integration tests ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles and runs every workload on every dataset: each run must
/// complete without trapping, within budget, produce its marker output,
/// and be deterministic. Parameterized over the suite so each workload
/// reports individually.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "vm/EdgeProfile.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace bpfree;

namespace {

class WorkloadTest : public ::testing::TestWithParam<const Workload *> {};

TEST_P(WorkloadTest, CompilesCleanly) {
  const Workload &W = *GetParam();
  auto M = minic::compile(W.Source);
  ASSERT_TRUE(M.hasValue()) << W.Name << ": " << (M ? "" : M.error().render());
  EXPECT_GT((*M)->numFunctions(), 1u) << "runtime library must be linked in";
  EXPECT_GT((*M)->countCondBranches(), 5u);
}

TEST_P(WorkloadTest, RunsAllDatasetsCleanly) {
  const Workload &W = *GetParam();
  auto M = minic::compile(W.Source);
  ASSERT_TRUE(M.hasValue()) << (M ? "" : M.error().render());
  ASSERT_FALSE(W.Datasets.empty()) << "every workload needs datasets";
  EXPECT_GE(W.Datasets.size(), 3u)
      << "Graph 13 needs at least 3 datasets per benchmark";
  Interpreter Interp(**M);
  for (const Dataset &D : W.Datasets) {
    RunResult R = Interp.run(D);
    EXPECT_TRUE(R.ok()) << W.Name << "/" << D.Name
                        << " status=" << static_cast<int>(R.Status) << " "
                        << R.TrapMessage << "\noutput: " << R.Output;
    EXPECT_NE(R.Output.find(W.Name), std::string::npos)
        << W.Name << "/" << D.Name << " marker missing: " << R.Output;
    EXPECT_GT(R.InstrCount, 10000u)
        << W.Name << "/" << D.Name << " suspiciously small run";
    EXPECT_LT(R.InstrCount, 200'000'000u)
        << W.Name << "/" << D.Name << " suspiciously large run";
  }
}

TEST_P(WorkloadTest, ReferenceRunIsDeterministic) {
  const Workload &W = *GetParam();
  auto M = minic::compile(W.Source);
  ASSERT_TRUE(M.hasValue());
  Interpreter Interp(**M);
  RunResult R1 = Interp.run(W.Datasets[0]);
  RunResult R2 = Interp.run(W.Datasets[0]);
  EXPECT_EQ(R1.Output, R2.Output);
  EXPECT_EQ(R1.InstrCount, R2.InstrCount);
  EXPECT_EQ(R1.ExitValue, R2.ExitValue);
}

TEST_P(WorkloadTest, BranchesActuallyExecute) {
  const Workload &W = *GetParam();
  auto M = minic::compile(W.Source);
  ASSERT_TRUE(M.hasValue());
  EdgeProfile Profile(**M);
  Interpreter Interp(**M);
  RunResult R = Interp.run(W.Datasets[0], {&Profile});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_GT(Profile.totalBranchExecutions(), 1000u)
      << W.Name << " must be branchy enough to evaluate predictors";
}

std::string workloadName(
    const ::testing::TestParamInfo<const Workload *> &Info) {
  return Info.param->Name;
}

std::vector<const Workload *> allWorkloads() {
  std::vector<const Workload *> Ptrs;
  for (const Workload &W : workloadSuite())
    Ptrs.push_back(&W);
  return Ptrs;
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadTest,
                         ::testing::ValuesIn(allWorkloads()), workloadName);

TEST(WorkloadRegistryTest, SuiteShape) {
  const auto &Suite = workloadSuite();
  EXPECT_GE(Suite.size(), 18u);
  size_t FloatCount = 0;
  for (const Workload &W : Suite) {
    EXPECT_FALSE(W.Name.empty());
    EXPECT_FALSE(W.Description.empty());
    if (W.FloatingPoint)
      ++FloatCount;
  }
  EXPECT_GE(FloatCount, 5u) << "the paper's second group is FP-heavy";
  EXPECT_NE(findWorkload("matmul300"), nullptr);
  EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(WorkloadRegistryTest, NamesAreUnique) {
  const auto &Suite = workloadSuite();
  for (size_t I = 0; I < Suite.size(); ++I)
    for (size_t J = I + 1; J < Suite.size(); ++J)
      EXPECT_NE(Suite[I].Name, Suite[J].Name);
}

} // namespace
