//===- tests/MetricsTest.cpp - Metrics, spans, and manifests --------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer: counter/gauge/timer semantics (including the
/// disabled-by-default gating the ≤2% overhead budget depends on), run
/// records, time-trace spans, manifest JSON round-trips, and the
/// checkManifests regression gate — self-check passes, an injected 2x
/// timing perturbation fails, instruction drift fails.
///
//===----------------------------------------------------------------------===//

#include "support/Manifest.h"
#include "support/Metrics.h"
#include "support/TimeTrace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>

using namespace bpfree;

namespace {

/// Every test starts from a clean, enabled registry and leaves it
/// disabled and clean: the registry is process-wide, so leakage between
/// tests (and into other suites) would make counts unpredictable.
class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    metrics::setEnabled(true);
    metrics::resetAll();
    timetrace::setEnabled(true);
    timetrace::clear();
  }
  void TearDown() override {
    metrics::setEnabled(false);
    metrics::resetAll();
    timetrace::setEnabled(false);
    timetrace::clear();
  }
};

/// Temp-file path unique to this process; removed on destruction.
class TempFile {
public:
  explicit TempFile(const std::string &Suffix)
      : P(::testing::TempDir() + "bpfree_metrics_" +
          std::to_string(::getpid()) + Suffix) {}
  ~TempFile() { std::remove(P.c_str()); }
  const std::string &path() const { return P; }

private:
  std::string P;
};

TEST_F(MetricsTest, CounterGaugeTimerBasics) {
  metrics::Counter &C = metrics::counter("test.counter");
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);

  metrics::Gauge &G = metrics::gauge("test.gauge");
  G.set(7);
  G.set(3);
  EXPECT_EQ(G.value(), 3u);

  metrics::Timer &T = metrics::timer("test.timer");
  T.addNanos(1000);
  T.addNanos(500);
  EXPECT_EQ(T.nanos(), 1500u);
  EXPECT_EQ(T.count(), 2u);
  {
    metrics::ScopedTimer S(T);
  }
  EXPECT_EQ(T.count(), 3u);

  // Interning: the same name yields the same object.
  EXPECT_EQ(&metrics::counter("test.counter"), &C);
  EXPECT_EQ(&metrics::gauge("test.gauge"), &G);
  EXPECT_EQ(&metrics::timer("test.timer"), &T);
}

TEST_F(MetricsTest, DisabledMutationsAreNoOps) {
  metrics::Counter &C = metrics::counter("test.gated");
  metrics::Gauge &G = metrics::gauge("test.gated_gauge");
  metrics::Timer &T = metrics::timer("test.gated_timer");
  metrics::setEnabled(false);
  C.add(100);
  G.set(100);
  T.addNanos(100);
  {
    metrics::ScopedTimer S(T);
  }
  metrics::RunRecord R;
  R.Workload = "gated";
  metrics::recordRun(R);
  metrics::setEnabled(true);
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0u);
  EXPECT_EQ(T.nanos(), 0u);
  EXPECT_EQ(T.count(), 0u);
  EXPECT_TRUE(metrics::runRecords().empty());
}

TEST_F(MetricsTest, SnapshotAndResetAll) {
  metrics::counter("test.snap_a").add(5);
  metrics::gauge("test.snap_b").set(9);
  metrics::timer("test.snap_c").addNanos(123);

  bool SawA = false, SawB = false, SawC = false;
  std::string Prev;
  for (const metrics::Sample &S : metrics::snapshot()) {
    EXPECT_LE(Prev, S.Name) << "snapshot not sorted";
    Prev = S.Name;
    if (S.Name == "test.snap_a") {
      SawA = true;
      EXPECT_EQ(S.Kind, "counter");
      EXPECT_EQ(S.Value, 5u);
    } else if (S.Name == "test.snap_b") {
      SawB = true;
      EXPECT_EQ(S.Kind, "gauge");
      EXPECT_EQ(S.Value, 9u);
    } else if (S.Name == "test.snap_c") {
      SawC = true;
      EXPECT_EQ(S.Kind, "timer");
      EXPECT_EQ(S.Value, 123u);
      EXPECT_EQ(S.Count, 1u);
    }
  }
  EXPECT_TRUE(SawA && SawB && SawC);

  metrics::resetAll();
  EXPECT_EQ(metrics::counter("test.snap_a").value(), 0u);
  EXPECT_EQ(metrics::gauge("test.snap_b").value(), 0u);
  EXPECT_EQ(metrics::timer("test.snap_c").nanos(), 0u);
}

TEST_F(MetricsTest, RunRecordLog) {
  metrics::RunRecord A;
  A.Workload = "alpha";
  A.Dataset = "d0";
  A.Ok = true;
  A.WallMs = 1.5;
  A.Instructions = 1000;
  metrics::recordRun(A);

  metrics::RunRecord B;
  B.Workload = "beta";
  B.Ok = false;
  B.Error = "[VmTrap] boom";
  metrics::recordRun(B);

  std::vector<metrics::RunRecord> Log = metrics::runRecords();
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0].Workload, "alpha");
  EXPECT_TRUE(Log[0].Ok);
  EXPECT_EQ(Log[1].Workload, "beta");
  EXPECT_EQ(Log[1].Error, "[VmTrap] boom");

  metrics::clearRunRecords();
  EXPECT_TRUE(metrics::runRecords().empty());
}

TEST_F(MetricsTest, TimeTraceSpansAndWrite) {
  {
    timetrace::Span Outer("test.outer", "detail-1");
    timetrace::Span Inner("test.inner");
  }
  std::vector<timetrace::Event> Events = timetrace::events();
  ASSERT_EQ(Events.size(), 2u);
  // Completion order: inner destructs first.
  EXPECT_EQ(Events[0].Name, "test.inner");
  EXPECT_EQ(Events[1].Name, "test.outer");
  EXPECT_EQ(Events[1].Detail, "detail-1");

  TempFile F("_trace.json");
  ASSERT_TRUE(timetrace::write(F.path()));
  std::ifstream In(F.path());
  std::string Json((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("test.outer"), std::string::npos);
  EXPECT_NE(Json.find("detail-1"), std::string::npos);
}

/// Builds a representative manifest without running any workloads.
Manifest sampleManifest() {
  metrics::counter("test.manifest_counter").add(17);
  metrics::timer("test.manifest_timer").addNanos(2500);

  metrics::RunRecord R;
  R.Workload = "treesort";
  R.Dataset = "default";
  R.Ok = true;
  R.WallMs = 12.25;
  R.Instructions = 123456;
  R.BranchExecs = 7890;
  R.Mispredicts = 1234;
  R.HotspotBranch = 57;
  R.TraceEvents = 4321;
  R.CostHint = 99;
  R.DispatchOrder = 2;
  metrics::recordRun(R);

  metrics::RunRecord F;
  F.Workload = "circuit";
  F.Dataset = "default";
  F.Ok = false;
  F.Error = "[VmTrap] divide by zero \"quoted\"";
  F.WallMs = 3.5;
  F.TraceOverflowed = true;
  F.TraceDropped = 12;
  metrics::recordRun(F);

  return collectManifest("metrics_test", "unit");
}

TEST_F(MetricsTest, ManifestRoundTrips) {
  Manifest M = sampleManifest();
  EXPECT_EQ(M.Tool, "metrics_test");
  EXPECT_EQ(M.Config, "unit");
  ASSERT_EQ(M.Workloads.size(), 2u);
  EXPECT_DOUBLE_EQ(M.TotalWallMs, 12.25 + 3.5);

  TempFile F("_manifest.json");
  ASSERT_TRUE(writeManifest(M, F.path()));
  Expected<Manifest> Read = readManifest(F.path());
  ASSERT_TRUE(Read.hasValue()) << Read.error().renderWithKind();
  const Manifest &R = *Read;

  EXPECT_EQ(R.Tool, M.Tool);
  EXPECT_EQ(R.Config, M.Config);
  EXPECT_DOUBLE_EQ(R.TotalWallMs, M.TotalWallMs);
  ASSERT_EQ(R.Workloads.size(), M.Workloads.size());
  for (size_t I = 0; I < M.Workloads.size(); ++I) {
    const metrics::RunRecord &A = M.Workloads[I];
    const metrics::RunRecord &B = R.Workloads[I];
    EXPECT_EQ(A.Workload, B.Workload);
    EXPECT_EQ(A.Dataset, B.Dataset);
    EXPECT_EQ(A.Ok, B.Ok);
    EXPECT_EQ(A.Error, B.Error);
    EXPECT_DOUBLE_EQ(A.WallMs, B.WallMs);
    EXPECT_EQ(A.Instructions, B.Instructions);
    EXPECT_EQ(A.BranchExecs, B.BranchExecs);
    EXPECT_EQ(A.Mispredicts, B.Mispredicts);
    EXPECT_EQ(A.HotspotBranch, B.HotspotBranch);
    EXPECT_EQ(A.TraceEvents, B.TraceEvents);
    EXPECT_EQ(A.TraceDropped, B.TraceDropped);
    EXPECT_EQ(A.TraceOverflowed, B.TraceOverflowed);
    EXPECT_EQ(A.CostHint, B.CostHint);
    EXPECT_EQ(A.DispatchOrder, B.DispatchOrder);
  }
  ASSERT_EQ(R.Metrics.size(), M.Metrics.size());
  for (size_t I = 0; I < M.Metrics.size(); ++I) {
    EXPECT_EQ(M.Metrics[I].Name, R.Metrics[I].Name);
    EXPECT_EQ(M.Metrics[I].Kind, R.Metrics[I].Kind);
    EXPECT_EQ(M.Metrics[I].Value, R.Metrics[I].Value);
    EXPECT_EQ(M.Metrics[I].Count, R.Metrics[I].Count);
  }
}

/// Manifests written before the attribution fields existed carry no
/// "mispredicts"/"hotspot_branch" keys; the reader must default them
/// (0 / -1, i.e. "no hotspot") instead of rejecting the document.
TEST_F(MetricsTest, ManifestWithoutAttributionFieldsReadsDefaults) {
  TempFile F("_old_manifest.json");
  {
    std::ofstream Out(F.path());
    Out << "{\"schema\": \"bpfree-run-manifest-v1\", \"tool\": \"t\",\n"
           " \"config\": \"\", \"total_wall_ms\": 1.0,\n"
           " \"workloads\": [{\"workload\": \"w\", \"dataset\": \"d\",\n"
           "   \"ok\": true, \"wall_ms\": 1.0, \"instructions\": 10,\n"
           "   \"branch_execs\": 5}],\n"
           " \"metrics\": []}";
  }
  Expected<Manifest> Read = readManifest(F.path());
  ASSERT_TRUE(Read.hasValue()) << Read.error().renderWithKind();
  ASSERT_EQ(Read->Workloads.size(), 1u);
  EXPECT_EQ(Read->Workloads[0].Mispredicts, 0u);
  EXPECT_EQ(Read->Workloads[0].HotspotBranch, -1);
}

TEST_F(MetricsTest, ReadManifestRejectsGarbage) {
  TempFile F("_bad.json");
  {
    std::ofstream Out(F.path());
    Out << "{\"schema\": \"bpfree-run-manifest-v1\", \"workloads\": 42}";
  }
  Expected<Manifest> R = readManifest(F.path());
  EXPECT_FALSE(R.hasValue());

  Expected<Manifest> Missing = readManifest(F.path() + ".does_not_exist");
  EXPECT_FALSE(Missing.hasValue());
}

TEST_F(MetricsTest, CheckPassesAgainstItself) {
  Manifest M = sampleManifest();
  CheckResult R = checkManifests(M, M);
  EXPECT_TRUE(R.ok()) << R.render();
}

TEST_F(MetricsTest, CheckFailsUnderTimingPerturbation) {
  Manifest Baseline = sampleManifest();
  Manifest Candidate = Baseline;
  perturbManifestTimings(Candidate, 2.0);
  EXPECT_DOUBLE_EQ(Candidate.TotalWallMs, Baseline.TotalWallMs * 2.0);

  CheckTolerance Tol;
  Tol.WallSlowdown = 1.5;
  CheckResult R = checkManifests(Candidate, Baseline, Tol);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.render().find("treesort"), std::string::npos) << R.render();

  // Asymmetry: getting twice as fast never fails.
  Manifest Fast = Baseline;
  perturbManifestTimings(Fast, 0.5);
  EXPECT_TRUE(checkManifests(Fast, Baseline, Tol).ok());
}

// Perf-phase manifests hold several records per (workload, dataset) —
// the suite runs under more than one configuration, and a traced run is
// slower than an untraced one. Both sides must collapse last-wins;
// collapsing only the candidate compared a workload's early fast record
// against its own later slow one and failed a manifest checked against
// itself.
TEST_F(MetricsTest, CheckCollapsesDuplicateRecordsOnBothSides) {
  Manifest M = sampleManifest();
  metrics::RunRecord Slow = M.Workloads[0]; // "treesort", 12.25 ms
  Slow.WallMs = 100.0;                      // traced re-run, much slower
  M.Workloads.push_back(Slow);
  M.TotalWallMs += Slow.WallMs;

  CheckResult Self = checkManifests(M, M);
  EXPECT_TRUE(Self.ok()) << Self.render();

  // The surviving (last) record is still checked: slow it down past the
  // band and the gate trips.
  Manifest Worse = M;
  Worse.Workloads.back().WallMs = 300.0;
  EXPECT_FALSE(checkManifests(Worse, M).ok());
  // While a candidate that only improved the last record passes.
  Manifest Better = M;
  Better.Workloads.back().WallMs = 10.0;
  EXPECT_TRUE(checkManifests(Better, M).ok());
}

TEST_F(MetricsTest, PhaseRecordsRoundTripThroughManifest) {
  metrics::recordPhase({"ipbc_replay", 42.5, 1000000, 987654});
  metrics::recordPhase({"ipbc_replay_dynamic", 99.125, 7000000, 0});
  Manifest M = sampleManifest();
  ASSERT_EQ(M.Phases.size(), 2u);

  TempFile F("_phase_manifest.json");
  ASSERT_TRUE(writeManifest(M, F.path()));
  Expected<Manifest> Read = readManifest(F.path());
  ASSERT_TRUE(Read.hasValue()) << Read.error().renderWithKind();
  ASSERT_EQ(Read->Phases.size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ(Read->Phases[I].Name, M.Phases[I].Name);
    EXPECT_DOUBLE_EQ(Read->Phases[I].WallMs, M.Phases[I].WallMs);
    EXPECT_EQ(Read->Phases[I].Items, M.Phases[I].Items);
    EXPECT_EQ(Read->Phases[I].Instructions, M.Phases[I].Instructions);
  }

  // Phase records are gated and cleared like the run log.
  metrics::setEnabled(false);
  metrics::recordPhase({"gated", 1.0, 1, 0});
  metrics::setEnabled(true);
  EXPECT_EQ(metrics::phaseRecords().size(), 2u);
  metrics::clearPhaseRecords();
  EXPECT_TRUE(metrics::phaseRecords().empty());
}

// The two-sided phase gate: a phase on only one side of the diff is a
// hard failure regardless of tolerances — the old behavior silently
// compared a deleted phase against a default-valued record and passed.
TEST_F(MetricsTest, CheckFailsWhenPhaseMissingFromEitherSide) {
  metrics::recordPhase({"ipbc_replay", 40.0, 100, 0});
  metrics::recordPhase({"ipbc_replay_dynamic", 80.0, 700, 0});
  Manifest Baseline = sampleManifest();

  CheckResult Self = checkManifests(Baseline, Baseline);
  EXPECT_TRUE(Self.ok()) << Self.render();

  // Candidate dropped a phase the baseline gates.
  Manifest Dropped = Baseline;
  Dropped.Phases.pop_back();
  CheckResult R1 = checkManifests(Dropped, Baseline);
  EXPECT_FALSE(R1.ok());
  EXPECT_NE(R1.render().find("ipbc_replay_dynamic"), std::string::npos)
      << R1.render();
  EXPECT_NE(R1.render().find("present in baseline but missing from candidate"),
            std::string::npos)
      << R1.render();

  // Candidate grew a phase the baseline has never seen: also a hard
  // failure — the baseline must be regenerated before the phase gates.
  Manifest Grew = Baseline;
  Grew.Phases.push_back({"brand_new_phase", 5.0, 1, 0});
  CheckResult R2 = checkManifests(Grew, Baseline);
  EXPECT_FALSE(R2.ok());
  EXPECT_NE(R2.render().find("brand_new_phase"), std::string::npos)
      << R2.render();
  EXPECT_NE(R2.render().find("present in candidate but missing from baseline"),
            std::string::npos)
      << R2.render();

  // And the coverage failure is unconditional: even a tolerance with
  // slack disabled everywhere still reports the missing phase.
  CheckTolerance Loose;
  Loose.WallSlowdown = 0.0;
  Loose.InstrRatio = 0.0;
  Loose.RequireWorkloadCoverage = false;
  EXPECT_FALSE(checkManifests(Dropped, Baseline, Loose).ok());
  EXPECT_FALSE(checkManifests(Grew, Baseline, Loose).ok());
}

TEST_F(MetricsTest, CheckAppliesWallBandToMatchedPhases) {
  metrics::recordPhase({"ipbc_replay_dynamic", 50.0, 700, 0});
  Manifest Baseline = sampleManifest();

  Manifest Slow = Baseline;
  Slow.Phases[0].WallMs = 200.0; // 4x, past the default 1.5x band
  CheckResult R = checkManifests(Slow, Baseline);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.render().find("ipbc_replay_dynamic"), std::string::npos)
      << R.render();
  EXPECT_NE(R.render().find("wall time regressed"), std::string::npos)
      << R.render();

  // Faster never fails, and perturbManifestTimings scales phases too —
  // the negative CI leg exercises exactly this path.
  Manifest Fast = Baseline;
  perturbManifestTimings(Fast, 0.25);
  EXPECT_DOUBLE_EQ(Fast.Phases[0].WallMs, 12.5);
  EXPECT_TRUE(checkManifests(Fast, Baseline).ok());
  Manifest Perturbed = Baseline;
  perturbManifestTimings(Perturbed, 2.0);
  EXPECT_DOUBLE_EQ(Perturbed.Phases[0].WallMs, 100.0);
  EXPECT_FALSE(checkManifests(Perturbed, Baseline).ok());
}

TEST_F(MetricsTest, CheckFailsOnInstructionDriftAndRegression) {
  Manifest Baseline = sampleManifest();

  Manifest Drift = Baseline;
  Drift.Workloads[0].Instructions =
      static_cast<uint64_t>(Baseline.Workloads[0].Instructions * 1.10);
  EXPECT_FALSE(checkManifests(Drift, Baseline).ok());

  // A workload that was ok in the baseline but failed in the candidate.
  Manifest Broke = Baseline;
  Broke.Workloads[0].Ok = false;
  Broke.Workloads[0].Error = "[VmTrap] new failure";
  EXPECT_FALSE(checkManifests(Broke, Baseline).ok());

  // A trace that newly overflowed.
  Manifest Overflow = Baseline;
  Overflow.Workloads[0].TraceOverflowed = true;
  EXPECT_FALSE(checkManifests(Overflow, Baseline).ok());

  // A baseline workload missing from the candidate.
  Manifest Missing = Baseline;
  Missing.Workloads.erase(Missing.Workloads.begin());
  EXPECT_FALSE(checkManifests(Missing, Baseline).ok());
}

} // namespace
