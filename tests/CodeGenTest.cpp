//===- tests/CodeGenTest.cpp - MiniC lowering shape tests -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heuristics only work if codegen produces the MIPS shapes the
/// paper assumes. These tests pin those invariants:
///
///  * comparisons against literal zero lower to blez/bgtz/bltz/bgez,
///  * equality lowers to beq/bne (against $zero for == 0),
///  * general relationals lower to slt + bne/beq,
///  * FP compares lower to c.{eq,lt,le}.d + bc1t/bc1f,
///  * while/for loops are rotated (guard + bottom-test backedge),
///  * pointer comparisons carry the PointerCompare annotation,
///  * globals are addressed off GP, aggregate locals off SP,
///  * non-address-taken scalars live in registers (no loads/stores).
///
//===----------------------------------------------------------------------===//

#include "analysis/DomTree.h"
#include "analysis/LoopInfo.h"
#include "frontend/Compiler.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

std::unique_ptr<Module> compileBody(const std::string &Body) {
  return minic::compileOrDie("int main() {\n" + Body + "\n}");
}

/// Collects the branch opcodes of all conditional branches in main.
std::vector<BranchOp> branchOps(const Module &M) {
  std::vector<BranchOp> Ops;
  const Function *Main = M.findFunction("main");
  for (const auto &BB : *Main)
    if (BB->isCondBranch())
      Ops.push_back(BB->terminator().BOp);
  return Ops;
}

bool containsOp(const std::vector<BranchOp> &Ops, BranchOp Op) {
  for (BranchOp O : Ops)
    if (O == Op)
      return true;
  return false;
}

TEST(LoweringTest, ZeroComparisonsUseMipsOpcodes) {
  struct Case {
    const char *Cond;
    BranchOp Expected;
  } Cases[] = {
      {"x < 0", BranchOp::BLTZ},  {"x <= 0", BranchOp::BLEZ},
      {"x > 0", BranchOp::BGTZ},  {"x >= 0", BranchOp::BGEZ},
      {"0 < x", BranchOp::BGTZ},  {"0 >= x", BranchOp::BLEZ},
      {"x == 0", BranchOp::BEQ},  {"x != 0", BranchOp::BNE},
  };
  for (const auto &C : Cases) {
    auto M = compileBody(std::string("int x = arg(0); if (") + C.Cond +
                         ") { return 1; } return 0;");
    auto Ops = branchOps(*M);
    EXPECT_TRUE(containsOp(Ops, C.Expected))
        << C.Cond << " should lower to " << branchOpName(C.Expected);
  }
}

TEST(LoweringTest, GeneralRelationalUsesSlt) {
  auto M = compileBody("int x = arg(0); int y = arg(1); "
                       "if (x < y) { return 1; } return 0;");
  const Function *Main = M->findFunction("main");
  bool FoundSlt = false;
  for (const auto &BB : *Main)
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::Slt)
        FoundSlt = true;
  EXPECT_TRUE(FoundSlt);
  EXPECT_TRUE(containsOp(branchOps(*M), BranchOp::BNE));
}

TEST(LoweringTest, DoubleComparesUseFlagBranches) {
  auto M = compileBody("double x = 1.5; double y = 2.5; "
                       "if (x == y) { return 1; } "
                       "if (x < y) { return 2; } return 0;");
  auto Ops = branchOps(*M);
  EXPECT_TRUE(containsOp(Ops, BranchOp::BC1T));
  const Function *Main = M->findFunction("main");
  bool FoundEq = false, FoundLt = false;
  for (const auto &BB : *Main)
    for (const Instruction &I : BB->instructions()) {
      if (I.Op == Opcode::FCmpEq)
        FoundEq = true;
      if (I.Op == Opcode::FCmpLt)
        FoundLt = true;
    }
  EXPECT_TRUE(FoundEq);
  EXPECT_TRUE(FoundLt);
}

TEST(LoweringTest, NotEqualDoubleUsesBc1f) {
  auto M = compileBody("double x = 1.5; if (x != 0.25) { return 1; } "
                       "return 0;");
  EXPECT_TRUE(containsOp(branchOps(*M), BranchOp::BC1F));
}

TEST(LoweringTest, PointerComparesAreAnnotated) {
  auto M = minic::compileOrDie(
      "struct n { struct n *next; };\n"
      "int main() {\n"
      "  struct n *p = 0;\n"
      "  int x = arg(0);\n"
      "  if (p == 0) { x++; }\n"
      "  if (p) { x--; }\n"
      "  if (x == 3) { x++; }\n" // integer compare: must NOT be annotated
      "  return x;\n"
      "}");
  const Function *Main = M->findFunction("main");
  unsigned Annotated = 0, Unannotated = 0;
  for (const auto &BB : *Main) {
    if (!BB->isCondBranch())
      continue;
    const Terminator &T = BB->terminator();
    if (T.BOp != BranchOp::BEQ && T.BOp != BranchOp::BNE)
      continue;
    if (T.PointerCompare)
      ++Annotated;
    else
      ++Unannotated;
  }
  EXPECT_EQ(Annotated, 2u) << "p == 0 and if (p)";
  EXPECT_GE(Unannotated, 1u) << "x == 3 stays unannotated";
}

TEST(LoweringTest, WhileLoopsAreRotated) {
  // Rotated shape: the loop's bottom test is a backedge branch; the
  // guard before the loop is a *non-loop* branch (the paper's
  // "if-then around a do-until").
  auto M = compileBody("int i = 0; int s = 0;\n"
                       "while (i < arg(0)) { s += i; i++; }\n"
                       "return s;");
  const Function *Main = M->findFunction("main");
  DomTree DT = DomTree::computeDominators(*Main);
  LoopInfo LI(*Main, DT);
  ASSERT_EQ(LI.loops().size(), 1u);

  unsigned LoopBranches = 0, NonLoopBranches = 0;
  bool BackedgeBranchFound = false;
  for (const auto &BB : *Main) {
    if (!BB->isCondBranch())
      continue;
    if (LI.isLoopBranch(BB.get())) {
      ++LoopBranches;
      if (LI.isBackedge(BB.get(), 0) || LI.isBackedge(BB.get(), 1))
        BackedgeBranchFound = true;
    } else {
      ++NonLoopBranches;
    }
  }
  EXPECT_EQ(LoopBranches, 1u) << "the bottom test";
  EXPECT_EQ(NonLoopBranches, 1u) << "the replicated guard";
  EXPECT_TRUE(BackedgeBranchFound);
}

TEST(LoweringTest, DoWhileHasNoGuard) {
  auto M = compileBody("int i = 0;\n"
                       "do { i++; } while (i < 10);\n"
                       "return i;");
  const Function *Main = M->findFunction("main");
  DomTree DT = DomTree::computeDominators(*Main);
  LoopInfo LI(*Main, DT);
  unsigned CondBranches = 0;
  for (const auto &BB : *Main)
    if (BB->isCondBranch())
      ++CondBranches;
  EXPECT_EQ(CondBranches, 1u) << "do-while tests only at the bottom";
  EXPECT_EQ(LI.loops().size(), 1u);
}

TEST(LoweringTest, GlobalsAddressedOffGp) {
  auto M = minic::compileOrDie("int g; int main() { g = 5; return g; }");
  const Function *Main = M->findFunction("main");
  bool StoreOffGp = false, LoadOffGp = false;
  for (const auto &BB : *Main)
    for (const Instruction &I : BB->instructions()) {
      if (I.Op == Opcode::Store && I.SrcA == GpReg)
        StoreOffGp = true;
      if (I.Op == Opcode::Load && I.SrcA == GpReg)
        LoadOffGp = true;
    }
  EXPECT_TRUE(StoreOffGp);
  EXPECT_TRUE(LoadOffGp);
}

TEST(LoweringTest, AggregateLocalsAddressedOffSp) {
  auto M = compileBody("int a[4]; a[0] = 1; a[1] = a[0] + 1; "
                       "return a[1];");
  const Function *Main = M->findFunction("main");
  EXPECT_GT(Main->getFrameSize(), 0u);
  bool SpAddressing = false;
  for (const auto &BB : *Main)
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::Add && I.SrcA == SpReg && I.BIsImm)
        SpAddressing = true;
  EXPECT_TRUE(SpAddressing);
}

TEST(LoweringTest, ScalarLocalsStayInRegisters) {
  auto M = compileBody("int x = 1; int y = 2; int z;\n"
                       "z = x + y; z = z * 2; return z;");
  const Function *Main = M->findFunction("main");
  EXPECT_EQ(Main->getFrameSize(), 0u) << "no stack traffic for scalars";
  for (const auto &BB : *Main)
    for (const Instruction &I : BB->instructions()) {
      EXPECT_NE(I.Op, Opcode::Load);
      EXPECT_NE(I.Op, Opcode::Store);
    }
}

TEST(LoweringTest, AddressTakenLocalGetsSlot) {
  auto M = compileBody("int x = 1; int *p = &x; *p = 7; return x;");
  const Function *Main = M->findFunction("main");
  EXPECT_GE(Main->getFrameSize(), 8u);
}

TEST(LoweringTest, CopyCoalescingIntoLoadResult) {
  // head = head->next must end as a load whose destination is head's
  // register — not load-then-move — so the Pointer heuristic can match
  // the pattern at the bottom-of-loop test.
  auto M = minic::compileOrDie(
      "struct n { struct n *next; };\n"
      "int main() {\n"
      "  struct n *head = 0; int c = 0;\n"
      "  while (head != 0) { c++; head = head->next; }\n"
      "  return c;\n"
      "}");
  const Function *Main = M->findFunction("main");
  bool LoadFeedsBranch = false;
  for (const auto &BB : *Main) {
    if (!BB->isCondBranch())
      continue;
    const Terminator &T = BB->terminator();
    for (const Instruction &I : BB->instructions())
      if (I.isLoad() && I.def() == T.Lhs)
        LoadFeedsBranch = true;
  }
  EXPECT_TRUE(LoadFeedsBranch);
}

TEST(LoweringTest, StringLiteralsInternedOnce) {
  auto M = compileBody("print_str(\"hello\"); print_str(\"hello\"); "
                       "print_str(\"world\"); return 0;");
  // Two distinct strings: "hello\0" and "world\0" = 12 bytes, padded.
  // Duplicate "hello" must not grow the image.
  EXPECT_LE(M->getGlobalSize(), 24u);
}

TEST(LoweringTest, ShortCircuitCreatesBranchesNotOps) {
  auto M = compileBody("int x = arg(0); int y = arg(1);\n"
                       "if (x > 0 && y > 0) { return 1; } return 0;");
  auto Ops = branchOps(*M);
  // Two bgtz branches, one per operand.
  unsigned Bgtz = 0;
  for (BranchOp O : Ops)
    if (O == BranchOp::BGTZ)
      ++Bgtz;
  EXPECT_EQ(Bgtz, 2u);
}

TEST(LoweringTest, ImplicitReturnForVoidAndValue) {
  auto M = minic::compileOrDie("void f() { } int g() { if (arg(0)) "
                               "{ return 1; } } int main() "
                               "{ f(); return g(); }");
  // All functions verify (done inside compile); execution-safe too.
  EXPECT_EQ(M->numFunctions(), 3u);
}

TEST(LoweringTest, PrintedIrMentionsExpectedPieces) {
  auto M = compileBody("double d = 2.0; if (d == 2.0) { return 1; } "
                       "return 0;");
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("c.eq.d"), std::string::npos);
  EXPECT_NE(Text.find("bc1t"), std::string::npos);
}

} // namespace
