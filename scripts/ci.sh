#!/usr/bin/env bash
# Tier-1 CI for bpfree: build + full test suite, first plain (plus the
# quick perf-phase report), then under AddressSanitizer + UBSan
# (BPFREE_SANITIZE=ON) followed by the durable-trace chaos drills, then
# the parallel-suite and dynamic-replay determinism tests under
# ThreadSanitizer (BPFREE_SANITIZE=thread). Any failure is fatal.
#
# A fallback leg (run_fallback) rebuilds with the portable dispatch loop
# (-DBPFREE_THREADED_DISPATCH=OFF) and the scalar replay row tests
# (-DBPFREE_SIMD=OFF) and runs the dispatch/replay differential suites,
# so the configurations old compilers and non-x86 hosts get are built
# and tested on every run, not just on that hardware.
#
# Usage: scripts/ci.sh [--plain-only|--sanitize-only|--tsan-only|--fallback-only]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_tier1() {
  local build_dir="$1"
  shift
  echo "== configure: ${build_dir} ($*)"
  cmake -B "${build_dir}" -S "${REPO_ROOT}" "$@"
  echo "== build: ${build_dir}"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "== ctest: ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_plain() {
  run_tier1 "${REPO_ROOT}/build"
  echo "== bench_perf --quick: ${REPO_ROOT}/build"
  # Quick perf phases with the run manifest kept as a build artifact
  # (build/MANIFEST_CI.json records per-workload timings, instruction
  # counts, and the full metrics snapshot for this CI run).
  "${REPO_ROOT}/build/bench/bench_perf" \
    "--phases=${REPO_ROOT}/build/BENCH_CI.json" --quick \
    --metrics-json "${REPO_ROOT}/build/MANIFEST_CI.json"

  # Regression gate: diff the fresh manifest against the committed
  # baseline. Tolerances are generous — CI machines vary and the quick
  # phases are short — so only gross regressions (several-fold slower,
  # instruction-count drift, lost workloads, newly overflowed traces)
  # fail the gate. Regenerate the baseline after intentional changes:
  #   build/bench/bench_perf --quick --metrics-json BENCH_BASELINE.json
  echo "== bench_perf --check: regression gate vs BENCH_BASELINE.json"
  "${REPO_ROOT}/build/bench/bench_perf" \
    --check "${REPO_ROOT}/BENCH_BASELINE.json" \
    --check-input "${REPO_ROOT}/build/MANIFEST_CI.json" \
    --check-tolerance 8.0 --check-instr-tolerance 1.5

  # The gate must actually gate: a deterministic 2x timing perturbation
  # of the same manifest has to fail the check.
  echo "== bench_perf --check: negative leg (--perturb 2.0 must fail)"
  if "${REPO_ROOT}/build/bench/bench_perf" \
      --check "${REPO_ROOT}/build/MANIFEST_CI.json" \
      --check-input "${REPO_ROOT}/build/MANIFEST_CI.json" \
      --perturb 2.0 >/dev/null 2>&1; then
    echo "error: perturbed manifest passed the regression check" >&2
    exit 1
  fi

  # Attribution smoke + schema gate: explain one workload, keep the
  # bpfree-explain-v1 document next to the run manifest, and re-read it
  # through the validator (required keys, non-negative counts, bucket-sum
  # conservation). docs/explain.md describes the document.
  echo "== bpfree_explain: treesort attribution -> build/EXPLAIN_CI.json"
  # Fail fast on a stale artifact: if the explain run dies after a
  # previous CI pass, a leftover EXPLAIN_CI.json would let the validate
  # step below pass vacuously — validating last run's document instead
  # of this build's. Remove it first and insist the run regenerated it.
  rm -f "${REPO_ROOT}/build/EXPLAIN_CI.json"
  "${REPO_ROOT}/build/tools/bpfree_explain" --workload treesort \
    --json "${REPO_ROOT}/build/EXPLAIN_CI.json"
  if [ ! -s "${REPO_ROOT}/build/EXPLAIN_CI.json" ]; then
    echo "error: bpfree_explain did not write EXPLAIN_CI.json;" \
      "refusing to run the schema gate against a missing artifact" >&2
    exit 1
  fi
  echo "== bpfree_explain --validate: schema gate"
  "${REPO_ROOT}/build/tools/bpfree_explain" \
    --validate "${REPO_ROOT}/build/EXPLAIN_CI.json"

  # Characterization smoke + schema gate: profile one regular and one
  # adversarial workload, keep the bpfree-char-v1 documents next to the
  # run manifest, and re-read both through the validator (class-count
  # conservation, recomputed classes and residual entropies, H2P
  # verdict). Same stale-artifact discipline as the explain gate above:
  # remove first, insist the runs regenerated them.
  echo "== bpfree_char: treesort + hashbits -> build/CHAR_CI.json"
  rm -f "${REPO_ROOT}/build/CHAR_CI.json" \
    "${REPO_ROOT}/build/CHAR_ADV_CI.json"
  "${REPO_ROOT}/build/tools/bpfree_char" --workload treesort \
    --json "${REPO_ROOT}/build/CHAR_CI.json"
  "${REPO_ROOT}/build/tools/bpfree_char" --workload hashbits \
    --json "${REPO_ROOT}/build/CHAR_ADV_CI.json"
  if [ ! -s "${REPO_ROOT}/build/CHAR_CI.json" ] || \
     [ ! -s "${REPO_ROOT}/build/CHAR_ADV_CI.json" ]; then
    echo "error: bpfree_char did not write its CI documents;" \
      "refusing to run the schema gate against missing artifacts" >&2
    exit 1
  fi
  echo "== bpfree_char --validate: schema gate"
  "${REPO_ROOT}/build/tools/bpfree_char" \
    --validate "${REPO_ROOT}/build/CHAR_CI.json"
  "${REPO_ROOT}/build/tools/bpfree_char" \
    --validate "${REPO_ROOT}/build/CHAR_ADV_CI.json"

  # Dynamic-predictor smoke drill: capture a trace, replay it through the
  # standard dynamic panel in parallel (docs/dynamic.md). The replay
  # itself asserts nothing here — the differential and determinism
  # guarantees live in dynamic_predictor_test — but the drill keeps the
  # whole CLI path (capture -> store -> sharded panel replay) exercised
  # end to end on every CI run.
  echo "== bpfree_trace replay --dynamic panel: smoke drill"
  rm -f "${REPO_ROOT}/build/DYNSMOKE.trace"
  "${REPO_ROOT}/build/tools/bpfree_trace" capture --workload treesort \
    -o "${REPO_ROOT}/build/DYNSMOKE.trace"
  "${REPO_ROOT}/build/tools/bpfree_trace" replay \
    "${REPO_ROOT}/build/DYNSMOKE.trace" --dynamic panel --jobs 4
  rm -f "${REPO_ROOT}/build/DYNSMOKE.trace"
}

# Durable-trace chaos drills, run against the AddressSanitizer build so
# every recovery path is also leak- and overflow-checked: capture a
# store, damage it in targeted ways (byte flips, torn tails, injected
# I/O faults), and assert the reader's verdict through bpfree_trace's
# exit-code contract (0 complete, 3 recovered prefix, 1 rejected).
run_chaos() {
  local build_dir="$1"
  local tr="${build_dir}/tools/bpfree_trace"
  local work="${build_dir}/chaos"
  rm -rf "${work}"
  mkdir -p "${work}"

  expect_rc() {
    local want="$1"
    shift
    local rc=0
    "$@" || rc=$?
    if [ "${rc}" -ne "${want}" ]; then
      echo "error: expected exit ${want}, got ${rc}: $*" >&2
      exit 1
    fi
  }

  echo "== chaos: spill capture + verify + parallel disk replay"
  expect_rc 0 "${tr}" capture --workload treesort -o "${work}/good.trace" \
    --spill
  expect_rc 0 "${tr}" verify "${work}/good.trace" --workload treesort
  expect_rc 0 "${tr}" replay "${work}/good.trace" --workload treesort \
    --jobs 4

  echo "== chaos: payload byte flip degrades to a recovered prefix"
  cp "${work}/good.trace" "${work}/payload.trace"
  expect_rc 0 "${tr}" corrupt "${work}/payload.trace" \
    --corrupt-byte 100000:0x01
  expect_rc 3 "${tr}" verify "${work}/payload.trace"
  expect_rc 1 "${tr}" replay "${work}/payload.trace" --workload treesort

  echo "== chaos: header byte flip rejects the file outright"
  cp "${work}/good.trace" "${work}/header.trace"
  expect_rc 0 "${tr}" corrupt "${work}/header.trace" --corrupt-byte 4
  expect_rc 1 "${tr}" verify "${work}/header.trace"

  echo "== chaos: torn tail recovers the chunk prefix"
  cp "${work}/good.trace" "${work}/torn.trace"
  expect_rc 0 "${tr}" corrupt "${work}/torn.trace" --truncate-to 300000
  expect_rc 3 "${tr}" verify "${work}/torn.trace"

  echo "== chaos: injected write failure fails capture, leaves no file"
  expect_rc 1 "${tr}" capture --workload treesort -o "${work}/fail.trace" \
    --fail-write-after 100000
  if compgen -G "${work}/fail.trace*" > /dev/null; then
    echo "error: failed capture left files behind:" "${work}"/fail.trace* >&2
    exit 1
  fi

  echo "== chaos: injected truncate-at-close surfaces as recovery"
  expect_rc 0 "${tr}" capture --workload treesort -o "${work}/close.trace" \
    --truncate-at-close 300000
  expect_rc 3 "${tr}" verify "${work}/close.trace"

  echo "== chaos: seeded read-fault bit rot never verifies clean"
  local rc=0
  "${tr}" verify "${work}/good.trace" --flip-bits 4 --fault-seed 7 \
    > /dev/null || rc=$?
  if [ "${rc}" -eq 0 ]; then
    echo "error: a bit-rotted store verified as complete" >&2
    exit 1
  fi

  rm -rf "${work}"
  echo "== chaos: all drills recovered as designed"
}

# Portable-fallback leg: the switch dispatch loop and the scalar replay
# row tests are what a compiler without computed goto or a host without
# SSE2/AVX2/NEON gets, and the differential suites assert they produce
# bit-identical runs and histograms. Building them on every CI run keeps
# the fallbacks from rotting until someone boots old hardware. Only the
# suites that exercise those paths run here — the full suite already ran
# in run_plain with the default configuration.
run_fallback() {
  local build_dir="${REPO_ROOT}/build-fallback"
  echo "== configure: ${build_dir} (-DBPFREE_THREADED_DISPATCH=OFF -DBPFREE_SIMD=OFF)"
  cmake -B "${build_dir}" -S "${REPO_ROOT}" \
    -DBPFREE_THREADED_DISPATCH=OFF -DBPFREE_SIMD=OFF
  echo "== build: ${build_dir} (dispatch/replay differential suites)"
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target dispatch_test trace_replay_test interpreter_test
  echo "== dispatch_test (fallback): ${build_dir}"
  "${build_dir}/tests/dispatch_test"
  echo "== trace_replay_test (fallback): ${build_dir}"
  "${build_dir}/tests/trace_replay_test"
  echo "== interpreter_test (fallback): ${build_dir}"
  "${build_dir}/tests/interpreter_test"
}

# TSan wants the threaded code paths, not the whole (serial-dominated)
# test suite: build everything, run the parallel-suite determinism tests
# that exercise runSuite's fan-out from multiple worker threads, plus the
# dynamic-replay suite — its sharded event-stream passes drive a shared
# DynamicPredictor from several workers at once for the per-site shapes,
# exactly the aliasing TSan exists to check — plus the characterization
# suite, whose sharded statistics pass and parallel site pass share the
# event index across the same pool.
run_tsan() {
  local build_dir="${REPO_ROOT}/build-tsan"
  echo "== configure: ${build_dir} (-DBPFREE_SANITIZE=thread)"
  cmake -B "${build_dir}" -S "${REPO_ROOT}" -DBPFREE_SANITIZE=thread
  echo "== build: ${build_dir}"
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target parallel_suite_test dynamic_predictor_test characterize_test
  echo "== parallel_suite_test (TSan): ${build_dir}"
  "${build_dir}/tests/parallel_suite_test"
  echo "== dynamic_predictor_test (TSan): ${build_dir}"
  "${build_dir}/tests/dynamic_predictor_test"
  echo "== characterize_test (TSan): ${build_dir}"
  "${build_dir}/tests/characterize_test"
}

case "${MODE}" in
  all)
    run_plain
    run_fallback
    run_tier1 "${REPO_ROOT}/build-asan" -DBPFREE_SANITIZE=ON
    run_chaos "${REPO_ROOT}/build-asan"
    run_tsan
    ;;
  --plain-only)
    run_plain
    ;;
  --fallback-only)
    run_fallback
    ;;
  --sanitize-only)
    run_tier1 "${REPO_ROOT}/build-asan" -DBPFREE_SANITIZE=ON
    run_chaos "${REPO_ROOT}/build-asan"
    ;;
  --tsan-only)
    run_tsan
    ;;
  *)
    echo "usage: $0 [--plain-only|--sanitize-only|--tsan-only|--fallback-only]" >&2
    exit 2
    ;;
esac

echo "== ci.sh: all green"
