#!/usr/bin/env bash
# Tier-1 CI for bpfree: build + full test suite, first plain (plus the
# quick perf-phase report), then under AddressSanitizer + UBSan
# (BPFREE_SANITIZE=ON), then the parallel-suite determinism tests under
# ThreadSanitizer (BPFREE_SANITIZE=thread). Any failure is fatal.
#
# Usage: scripts/ci.sh [--plain-only|--sanitize-only|--tsan-only]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_tier1() {
  local build_dir="$1"
  shift
  echo "== configure: ${build_dir} ($*)"
  cmake -B "${build_dir}" -S "${REPO_ROOT}" "$@"
  echo "== build: ${build_dir}"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "== ctest: ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_plain() {
  run_tier1 "${REPO_ROOT}/build"
  echo "== bench_perf --quick: ${REPO_ROOT}/build"
  # Quick perf phases with the run manifest kept as a build artifact
  # (build/MANIFEST_CI.json records per-workload timings, instruction
  # counts, and the full metrics snapshot for this CI run).
  "${REPO_ROOT}/build/bench/bench_perf" \
    "--phases=${REPO_ROOT}/build/BENCH_CI.json" --quick \
    --metrics-json "${REPO_ROOT}/build/MANIFEST_CI.json"

  # Regression gate: diff the fresh manifest against the committed
  # baseline. Tolerances are generous — CI machines vary and the quick
  # phases are short — so only gross regressions (several-fold slower,
  # instruction-count drift, lost workloads, newly overflowed traces)
  # fail the gate. Regenerate the baseline after intentional changes:
  #   build/bench/bench_perf --quick --metrics-json BENCH_BASELINE.json
  echo "== bench_perf --check: regression gate vs BENCH_BASELINE.json"
  "${REPO_ROOT}/build/bench/bench_perf" \
    --check "${REPO_ROOT}/BENCH_BASELINE.json" \
    --check-input "${REPO_ROOT}/build/MANIFEST_CI.json" \
    --check-tolerance 8.0 --check-instr-tolerance 1.5

  # The gate must actually gate: a deterministic 2x timing perturbation
  # of the same manifest has to fail the check.
  echo "== bench_perf --check: negative leg (--perturb 2.0 must fail)"
  if "${REPO_ROOT}/build/bench/bench_perf" \
      --check "${REPO_ROOT}/build/MANIFEST_CI.json" \
      --check-input "${REPO_ROOT}/build/MANIFEST_CI.json" \
      --perturb 2.0 >/dev/null 2>&1; then
    echo "error: perturbed manifest passed the regression check" >&2
    exit 1
  fi

  # Attribution smoke + schema gate: explain one workload, keep the
  # bpfree-explain-v1 document next to the run manifest, and re-read it
  # through the validator (required keys, non-negative counts, bucket-sum
  # conservation). docs/explain.md describes the document.
  echo "== bpfree_explain: treesort attribution -> build/EXPLAIN_CI.json"
  "${REPO_ROOT}/build/tools/bpfree_explain" --workload treesort \
    --json "${REPO_ROOT}/build/EXPLAIN_CI.json"
  echo "== bpfree_explain --validate: schema gate"
  "${REPO_ROOT}/build/tools/bpfree_explain" \
    --validate "${REPO_ROOT}/build/EXPLAIN_CI.json"
}

# TSan wants the threaded code paths, not the whole (serial-dominated)
# test suite: build everything, run the parallel-suite determinism tests
# that exercise runSuite's fan-out from multiple worker threads.
run_tsan() {
  local build_dir="${REPO_ROOT}/build-tsan"
  echo "== configure: ${build_dir} (-DBPFREE_SANITIZE=thread)"
  cmake -B "${build_dir}" -S "${REPO_ROOT}" -DBPFREE_SANITIZE=thread
  echo "== build: ${build_dir}"
  cmake --build "${build_dir}" -j "${JOBS}" --target parallel_suite_test
  echo "== parallel_suite_test (TSan): ${build_dir}"
  "${build_dir}/tests/parallel_suite_test"
}

case "${MODE}" in
  all)
    run_plain
    run_tier1 "${REPO_ROOT}/build-asan" -DBPFREE_SANITIZE=ON
    run_tsan
    ;;
  --plain-only)
    run_plain
    ;;
  --sanitize-only)
    run_tier1 "${REPO_ROOT}/build-asan" -DBPFREE_SANITIZE=ON
    ;;
  --tsan-only)
    run_tsan
    ;;
  *)
    echo "usage: $0 [--plain-only|--sanitize-only|--tsan-only]" >&2
    exit 2
    ;;
esac

echo "== ci.sh: all green"
