#!/usr/bin/env bash
# Tier-1 CI for bpfree: build + full test suite, first plain (plus the
# quick perf-phase report), then under AddressSanitizer + UBSan
# (BPFREE_SANITIZE=ON), then the parallel-suite determinism tests under
# ThreadSanitizer (BPFREE_SANITIZE=thread). Any failure is fatal.
#
# Usage: scripts/ci.sh [--plain-only|--sanitize-only|--tsan-only]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_tier1() {
  local build_dir="$1"
  shift
  echo "== configure: ${build_dir} ($*)"
  cmake -B "${build_dir}" -S "${REPO_ROOT}" "$@"
  echo "== build: ${build_dir}"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "== ctest: ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_plain() {
  run_tier1 "${REPO_ROOT}/build"
  echo "== bench_perf --quick: ${REPO_ROOT}/build"
  "${REPO_ROOT}/build/bench/bench_perf" \
    "--phases=${REPO_ROOT}/build/BENCH_CI.json" --quick
}

# TSan wants the threaded code paths, not the whole (serial-dominated)
# test suite: build everything, run the parallel-suite determinism tests
# that exercise runSuite's fan-out from multiple worker threads.
run_tsan() {
  local build_dir="${REPO_ROOT}/build-tsan"
  echo "== configure: ${build_dir} (-DBPFREE_SANITIZE=thread)"
  cmake -B "${build_dir}" -S "${REPO_ROOT}" -DBPFREE_SANITIZE=thread
  echo "== build: ${build_dir}"
  cmake --build "${build_dir}" -j "${JOBS}" --target parallel_suite_test
  echo "== parallel_suite_test (TSan): ${build_dir}"
  "${build_dir}/tests/parallel_suite_test"
}

case "${MODE}" in
  all)
    run_plain
    run_tier1 "${REPO_ROOT}/build-asan" -DBPFREE_SANITIZE=ON
    run_tsan
    ;;
  --plain-only)
    run_plain
    ;;
  --sanitize-only)
    run_tier1 "${REPO_ROOT}/build-asan" -DBPFREE_SANITIZE=ON
    ;;
  --tsan-only)
    run_tsan
    ;;
  *)
    echo "usage: $0 [--plain-only|--sanitize-only|--tsan-only]" >&2
    exit 2
    ;;
esac

echo "== ci.sh: all green"
