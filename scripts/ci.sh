#!/usr/bin/env bash
# Tier-1 CI for bpfree: build + full test suite, first plain, then under
# AddressSanitizer + UBSan (BPFREE_SANITIZE=ON). Any failure is fatal.
#
# Usage: scripts/ci.sh [--plain-only|--sanitize-only]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_tier1() {
  local build_dir="$1"
  shift
  echo "== configure: ${build_dir} ($*)"
  cmake -B "${build_dir}" -S "${REPO_ROOT}" "$@"
  echo "== build: ${build_dir}"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "== ctest: ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

case "${MODE}" in
  all)
    run_tier1 "${REPO_ROOT}/build"
    run_tier1 "${REPO_ROOT}/build-asan" -DBPFREE_SANITIZE=ON
    ;;
  --plain-only)
    run_tier1 "${REPO_ROOT}/build"
    ;;
  --sanitize-only)
    run_tier1 "${REPO_ROOT}/build-asan" -DBPFREE_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [--plain-only|--sanitize-only]" >&2
    exit 2
    ;;
esac

echo "== ci.sh: all green"
