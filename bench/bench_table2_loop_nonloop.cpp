//===- bench/bench_table2_loop_nonloop.cpp - Reproduce Table 2 ------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2: dynamic breakdown of loop vs non-loop branches. Columns
/// (as in the paper): the loop predictor vs perfect on loop branches,
/// the fraction of all dynamic branches that are non-loop, the perfect
/// predictor / always-target / random miss rates on non-loop branches,
/// and the "big branch" statistics. Also prints the paper's Section 3
/// observation data (loop branches whose predicted edge is not a
/// backwards branch) and the backwards-branch-only ablation.
///
/// Expected shape vs the paper: loop predictor ~12%, perfect non-loop
/// ~10%, target/random ~50%, and a wide spread of non-loop fractions.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Statistics.h"

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_table2_loop_nonloop");
  (void)argc;
  (void)argv;
  banner("Table 2 — loop vs non-loop branches",
         "Prd = loop predictor, Prf = perfect; %All = share of dynamic "
         "branches that are non-loop; Tgt/Rnd = naive strategies; "
         "BwOnly = backwards-branch-only ablation.");

  auto Runs = runSuiteVerbose();

  TablePrinter T({"Program", "Loop Prd/Prf", "BwOnly", "%NonBw", "%All",
                  "NL Prf", "NL Tgt/Prf", "NL Rnd/Prf", "Big", "Big%"});

  RunningStat LoopPrd, LoopPrf, All, NlPrf, NlTgt, NlRnd;
  bool PrintedFpSeparator = false;
  for (const auto &Run : Runs) {
    LoopNonLoopBreakdown B = computeLoopNonLoopBreakdown(Run->Stats);
    if (Run->W->FloatingPoint && !PrintedFpSeparator) {
      T.addSeparator();
      PrintedFpSeparator = true;
    }
    T.addRow({Run->W->Name,
              missPair(B.LoopPredictorMiss, B.LoopPerfectMiss),
              pct(B.BackwardOnlyMiss.rate()),
              pct(B.NonBackwardLoopFraction), pct(B.nonLoopFraction()),
              pct(B.NonLoopPerfectMiss.rate()),
              missPair(B.NonLoopTakenMiss, B.NonLoopPerfectMiss),
              missPair(B.NonLoopRandomMiss, B.NonLoopPerfectMiss),
              std::to_string(B.BigBranchCount),
              pct(B.BigBranchFraction)});
    LoopPrd.add(B.LoopPredictorMiss.rate());
    LoopPrf.add(B.LoopPerfectMiss.rate());
    All.add(B.nonLoopFraction());
    NlPrf.add(B.NonLoopPerfectMiss.rate());
    NlTgt.add(B.NonLoopTakenMiss.rate());
    NlRnd.add(B.NonLoopRandomMiss.rate());
  }
  T.addSeparator();
  T.addRow({"MEAN",
            TablePrinter::formatMissPair(LoopPrd.mean(), LoopPrf.mean()),
            "", "", pct(All.mean()), pct(NlPrf.mean()),
            TablePrinter::formatMissPair(NlTgt.mean(), NlPrf.mean()),
            TablePrinter::formatMissPair(NlRnd.mean(), NlPrf.mean()), "",
            ""});
  T.addRow({"Std.Dev.",
            TablePrinter::formatMissPair(LoopPrd.stddev(), LoopPrf.stddev()),
            "", "", pct(All.stddev()), pct(NlPrf.stddev()),
            TablePrinter::formatMissPair(NlTgt.stddev(), NlPrf.stddev()),
            TablePrinter::formatMissPair(NlRnd.stddev(), NlRnd.stddev()),
            "", ""});
  T.print(std::cout);

  std::cout
      << "\nPaper reference points (means): loop predictor 12/8, "
         "non-loop share 43%, NL perfect 10, NL target 51/10, NL "
         "random 49/10.\n"
         "Section 3 observation: many loop branches' predicted edges "
         "are not backwards branches (paper: 40% in xlisp, 45% in "
         "doduc) — see %NonBw.\n";
  return 0;
}
