//===- bench/BenchCommon.h - Shared bench-harness helpers ------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: suite
/// execution with progress output, percent formatting, and the banner
/// convention (each bench prints which paper artifact it regenerates).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_BENCH_BENCHCOMMON_H
#define BPFREE_BENCH_BENCHCOMMON_H

#include "support/TablePrinter.h"
#include "workloads/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bpfree {
namespace bench {

/// Prints the standard banner naming the regenerated artifact.
inline void banner(const std::string &Artifact, const std::string &Note) {
  std::cout << "=====================================================\n"
            << "bpfree reproduction: " << Artifact << "\n"
            << "(Ball & Larus, \"Branch Prediction for Free\", PLDI 1993)\n"
            << Note << "\n"
            << "=====================================================\n\n";
}

/// Runs the whole suite on reference datasets, echoing progress to
/// stderr so long benches show life. Benches need every workload to
/// succeed to fill their tables, so on any failure this prints the
/// per-workload failure summary (with backtraces) and exits nonzero —
/// partial results are reported, the process is never aborted.
///
/// The suite fans out across worker threads; each progress line is
/// emitted by one fprintf call under the driver's callback mutex (no
/// mid-line interleaving) and is tagged with the workload's registry
/// index, since start order is not completion order.
inline std::vector<std::unique_ptr<WorkloadRun>>
runSuiteVerbose(const HeuristicConfig &Config = {}) {
  SuiteOptions Opts;
  Opts.Progress = [](const Workload &W, size_t Index) {
    std::fprintf(stderr, "  [suite #%02zu] %s...\n", Index, W.Name.c_str());
  };
  SuiteReport Report = runSuite(Config, Opts);
  if (!Report.allOk()) {
    std::fprintf(stderr,
                 "bpfree: %zu of %zu suite workloads failed:\n%s",
                 Report.Failures.size(), Report.Attempted,
                 Report.renderFailures().c_str());
    std::exit(1);
  }
  return std::move(Report.Runs);
}

/// Cache of compiled-and-profiled suite runs keyed by (workload name,
/// dataset index). Profiling a workload is the expensive step — hundreds
/// of millions of interpreted instructions — while deriving BranchStats
/// for a new HeuristicConfig from the cached PredictionContext and
/// EdgeProfile is orders of magnitude cheaper. Benches that sweep
/// configs (ablations, order searches) profile once through runs() and
/// call statsFor() per config instead of re-interpreting the suite.
class SuiteCache {
public:
  /// Compiles and profiles the whole suite (reference datasets, default
  /// heuristic config) on first use; later calls return the cached runs.
  /// The profile and trace are config-independent, so there is no Config
  /// parameter — use statsFor() to evaluate a specific config against
  /// the cached profiles. Exits nonzero on any workload failure, like
  /// runSuiteVerbose.
  const std::vector<std::unique_ptr<WorkloadRun>> &runs() {
    if (Runs.empty()) {
      Runs = runSuiteVerbose();
      for (const auto &Run : Runs)
        Index[{Run->W->Name, Run->DatasetIndex}] = Run.get();
    }
    return Runs;
  }

  /// \returns the cached run for (\p Workload, \p Dataset), or nullptr
  /// when it isn't cached (runs() not called yet, or unknown key).
  const WorkloadRun *find(const std::string &Workload,
                          size_t Dataset = 0) const {
    auto It = Index.find({Workload, Dataset});
    return It == Index.end() ? nullptr : It->second;
  }

  /// Per-branch statistics for \p Run under \p Config, recomputed from
  /// the cached profile without re-interpreting the workload.
  std::vector<BranchStats> statsFor(const WorkloadRun &Run,
                                    const HeuristicConfig &Config) const {
    return collectBranchStats(*Run.Ctx, *Run.Profile, Config);
  }

  /// Compiles and trace-captures (\p Name, \p Dataset) on first use;
  /// later calls return the cached run with its finalized
  /// WorkloadRun::Trace. The run carries no edge profile: the trace sink
  /// is the interpretation's only instrumentation (the cheapest capture
  /// configuration), and the trace subsumes the profile for IPBC work —
  /// perfectDirectionsFromTrace derives the Perfect predictor's
  /// directions from the stream itself. This is the capture half of
  /// capture-once/replay-many; every predictor evaluation afterwards is
  /// a replay, not another run. Cached separately from runs() because
  /// traces carry megabytes of packed events; drop one with
  /// releaseTrace() once its workload is fully replayed. Exits nonzero
  /// on failure, like runSuiteVerbose.
  const WorkloadRun *traceRun(const std::string &Name, size_t Dataset = 0) {
    auto It = TraceRuns.find({Name, Dataset});
    if (It != TraceRuns.end())
      return It->second.get();
    const Workload *W = findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "bpfree: unknown workload '%s'\n", Name.c_str());
      std::exit(1);
    }
    RunOptions RO;
    RO.CaptureTrace = true;
    RO.Profile = false;
    std::unique_ptr<WorkloadRun> Run = runWorkloadOrExit(*W, Dataset, {}, RO);
    const WorkloadRun *Raw = Run.get();
    TraceRuns[{Name, Dataset}] = std::move(Run);
    return Raw;
  }

  /// Frees the captured trace (and run) for (\p Name, \p Dataset), if
  /// cached — bounds peak memory when iterating many workloads.
  void releaseTrace(const std::string &Name, size_t Dataset = 0) {
    TraceRuns.erase({Name, Dataset});
  }

private:
  std::vector<std::unique_ptr<WorkloadRun>> Runs;
  std::map<std::pair<std::string, size_t>, const WorkloadRun *> Index;
  std::map<std::pair<std::string, size_t>, std::unique_ptr<WorkloadRun>>
      TraceRuns;
};

/// "26" / "3.1" style percentage of a [0,1] fraction.
inline std::string pct(double Fraction) {
  return TablePrinter::formatPercent(Fraction);
}

/// The paper's "C/D" miss-pair cell.
inline std::string missPair(const Ratio &Miss, const Ratio &Perfect) {
  return TablePrinter::formatMissPair(Miss.rate(), Perfect.rate());
}

} // namespace bench
} // namespace bpfree

#endif // BPFREE_BENCH_BENCHCOMMON_H
