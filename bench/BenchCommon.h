//===- bench/BenchCommon.h - Shared bench-harness helpers ------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: suite
/// execution with progress output, percent formatting, and the banner
/// convention (each bench prints which paper artifact it regenerates).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_BENCH_BENCHCOMMON_H
#define BPFREE_BENCH_BENCHCOMMON_H

#include "support/TablePrinter.h"
#include "workloads/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

namespace bpfree {
namespace bench {

/// Prints the standard banner naming the regenerated artifact.
inline void banner(const std::string &Artifact, const std::string &Note) {
  std::cout << "=====================================================\n"
            << "bpfree reproduction: " << Artifact << "\n"
            << "(Ball & Larus, \"Branch Prediction for Free\", PLDI 1993)\n"
            << Note << "\n"
            << "=====================================================\n\n";
}

/// Runs the whole suite on reference datasets, echoing progress to
/// stderr so long benches show life. Benches need every workload to
/// succeed to fill their tables, so on any failure this prints the
/// per-workload failure summary (with backtraces) and exits nonzero —
/// partial results are reported, the process is never aborted.
inline std::vector<std::unique_ptr<WorkloadRun>>
runSuiteVerbose(const HeuristicConfig &Config = {}) {
  SuiteOptions Opts;
  Opts.Progress = [](const Workload &W) {
    std::fprintf(stderr, "  [suite] %s...\n", W.Name.c_str());
  };
  SuiteReport Report = runSuite(Config, Opts);
  if (!Report.allOk()) {
    std::fprintf(stderr,
                 "bpfree: %zu of %zu suite workloads failed:\n%s",
                 Report.Failures.size(), Report.Attempted,
                 Report.renderFailures().c_str());
    std::exit(1);
  }
  return std::move(Report.Runs);
}

/// "26" / "3.1" style percentage of a [0,1] fraction.
inline std::string pct(double Fraction) {
  return TablePrinter::formatPercent(Fraction);
}

/// The paper's "C/D" miss-pair cell.
inline std::string missPair(const Ratio &Miss, const Ratio &Perfect) {
  return TablePrinter::formatMissPair(Miss.rate(), Perfect.rate());
}

} // namespace bench
} // namespace bpfree

#endif // BPFREE_BENCH_BENCHCOMMON_H
