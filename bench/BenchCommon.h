//===- bench/BenchCommon.h - Shared bench-harness helpers ------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: suite
/// execution with progress output, percent formatting, and the banner
/// convention (each bench prints which paper artifact it regenerates).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_BENCH_BENCHCOMMON_H
#define BPFREE_BENCH_BENCHCOMMON_H

#include "ipbc/Attribution.h"
#include "ipbc/Characterize.h"
#include "support/Manifest.h"
#include "support/Metrics.h"
#include "support/TablePrinter.h"
#include "support/TimeTrace.h"
#include "workloads/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bpfree {
namespace bench {

/// Per-binary observability wiring, shared by every bench main():
/// recognizes `--metrics-json <path>` (write a run manifest on exit) and
/// `--time-trace <path>` (write Chrome trace_event spans on exit),
/// enabling the metrics/span registries when either is requested. The
/// flags are consumed from argv so later argument parsing (including
/// google-benchmark's) never sees them. Construct once at the top of
/// main; the destructor writes the requested files.
class MetricsSession {
public:
  MetricsSession(int &Argc, char **Argv, std::string Tool,
                 std::string Config = "")
      : Tool(std::move(Tool)), Config(std::move(Config)) {
    int Out = 1;
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      std::string *Target = nullptr;
      if (Arg == "--metrics-json" || Arg.rfind("--metrics-json=", 0) == 0)
        Target = &MetricsPath;
      else if (Arg == "--time-trace" || Arg.rfind("--time-trace=", 0) == 0)
        Target = &TracePath;
      if (!Target) {
        Argv[Out++] = Argv[I];
        continue;
      }
      if (size_t Eq = Arg.find('='); Eq != std::string::npos) {
        *Target = Arg.substr(Eq + 1);
      } else if (I + 1 < Argc) {
        *Target = Argv[++I];
      } else {
        std::fprintf(stderr, "bpfree: %s requires a path argument\n",
                     Arg.c_str());
        std::exit(2);
      }
    }
    Argc = Out;
    Argv[Argc] = nullptr;
    if (!MetricsPath.empty())
      metrics::setEnabled(true);
    if (!TracePath.empty())
      timetrace::setEnabled(true);
  }

  ~MetricsSession() {
    if (!MetricsPath.empty()) {
      Manifest M = collectManifest(Tool, Config);
      if (!writeManifest(M, MetricsPath))
        std::fprintf(stderr, "bpfree: cannot write manifest to %s\n",
                     MetricsPath.c_str());
      else
        std::fprintf(stderr, "bpfree: run manifest written to %s\n",
                     MetricsPath.c_str());
    }
    if (!TracePath.empty() && !timetrace::write(TracePath))
      std::fprintf(stderr, "bpfree: cannot write time trace to %s\n",
                   TracePath.c_str());
  }

  MetricsSession(const MetricsSession &) = delete;
  MetricsSession &operator=(const MetricsSession &) = delete;

  bool metricsRequested() const { return !MetricsPath.empty(); }
  const std::string &metricsPath() const { return MetricsPath; }

  /// Overrides the config annotation after flag parsing (e.g. once a
  /// bench knows whether it runs quick or full phases).
  void setConfig(std::string C) { Config = std::move(C); }

private:
  std::string Tool;
  std::string Config;
  std::string MetricsPath;
  std::string TracePath;
};

/// Unwraps an Expected for bench code whose inputs must be sound: on
/// error, prints the diagnostic and exits nonzero (no abort, no core).
template <typename T> T takeOrExit(Expected<T> E, const char *What) {
  if (!E) {
    std::fprintf(stderr, "bpfree: %s: %s\n", What,
                 E.error().renderWithKind().c_str());
    std::exit(1);
  }
  return E.takeValue();
}

// Forward declaration; defined below MetricsSession/takeOrExit.
class SuiteCache;

/// Per-binary provenance/attribution wiring, shared by the suite
/// benches: recognizes `--explain[=N]` (print the per-heuristic
/// attribution table and top-N misprediction hotspots for each
/// explained workload; N defaults to 10) and `--explain-json FILE`
/// (also write the bpfree-explain-v1 document; implies --explain).
/// Both flags are consumed from argv, like MetricsSession's.
///
/// Suite benches explain several workloads in one process, so the
/// JSON path is per-workload: the workload name is inserted before
/// the extension (`out.json` -> `out.treesort.json`). Use the
/// tools/bpfree_explain CLI for single-workload documents at an
/// exact path.
class ExplainSession {
public:
  ExplainSession(int &Argc, char **Argv) {
    int Out = 1;
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg == "--explain") {
        Enabled = true;
      } else if (Arg.rfind("--explain=", 0) == 0) {
        Enabled = true;
        TopN = std::strtoul(Arg.c_str() + std::strlen("--explain="),
                            nullptr, 10);
      } else if (Arg == "--explain-json" ||
                 Arg.rfind("--explain-json=", 0) == 0) {
        Enabled = true;
        if (size_t Eq = Arg.find('='); Eq != std::string::npos) {
          JsonPath = Arg.substr(Eq + 1);
        } else if (I + 1 < Argc) {
          JsonPath = Argv[++I];
        } else {
          std::fprintf(stderr,
                       "bpfree: --explain-json requires a path argument\n");
          std::exit(2);
        }
      } else {
        Argv[Out++] = Argv[I];
      }
    }
    Argc = Out;
    Argv[Argc] = nullptr;
  }

  bool enabled() const { return Enabled; }

  /// Explains \p Run, which must carry a captured trace: prints the
  /// attribution report to stdout and writes the JSON document when
  /// requested. No-op unless --explain/--explain-json was given.
  void explainRun(const WorkloadRun &Run) {
    if (!Enabled)
      return;
    ExplainOptions EO;
    EO.Workload = Run.W->Name;
    EO.Dataset = Run.dataset().Name;
    ExplainReport R =
        takeOrExit(explainTrace(*Run.Ctx, *Run.Trace, EO), "explain");
    std::cout << renderExplainReport(R, TopN);
    if (!JsonPath.empty()) {
      const std::string Path = pathForWorkload(JsonPath, Run.W->Name);
      if (!writeExplainJson(R, Path)) {
        std::fprintf(stderr, "bpfree: cannot write explain JSON to %s\n",
                     Path.c_str());
        std::exit(1);
      }
      std::fprintf(stderr, "bpfree: explain JSON written to %s\n",
                   Path.c_str());
    }
  }

  /// Trace-captures (\p Name, \p Dataset) through \p Cache, explains
  /// it, and releases the trace — for benches that otherwise run
  /// profile-only and have no trace to reuse. Defined after SuiteCache.
  inline void explainWorkload(SuiteCache &Cache, const std::string &Name,
                              size_t Dataset = 0);

private:
  /// `report.json` + `treesort` -> `report.treesort.json`; a path with
  /// no extension just gets `.treesort` appended.
  static std::string pathForWorkload(const std::string &Path,
                                     const std::string &Workload) {
    const size_t Slash = Path.find_last_of('/');
    const size_t Dot = Path.find_last_of('.');
    if (Dot == std::string::npos ||
        (Slash != std::string::npos && Dot < Slash))
      return Path + "." + Workload;
    return Path.substr(0, Dot) + "." + Workload + Path.substr(Dot);
  }

  bool Enabled = false;
  size_t TopN = 10;
  std::string JsonPath;
};

/// Per-binary predictability-observatory wiring, the characterization
/// sibling of ExplainSession: recognizes `--characterize[=N]` (print
/// the per-branch entropy/H2P report with the top-N hardest sites for
/// each characterized workload; N defaults to 10) and
/// `--characterize-json FILE` (also write the bpfree-char-v1 document;
/// implies --characterize). Both flags are consumed from argv. JSON
/// paths are per-workload like ExplainSession's; use tools/bpfree_char
/// for single-workload documents at an exact path.
class CharSession {
public:
  CharSession(int &Argc, char **Argv) {
    int Out = 1;
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg == "--characterize") {
        Enabled = true;
      } else if (Arg.rfind("--characterize=", 0) == 0) {
        Enabled = true;
        TopN = std::strtoul(Arg.c_str() + std::strlen("--characterize="),
                            nullptr, 10);
      } else if (Arg == "--characterize-json" ||
                 Arg.rfind("--characterize-json=", 0) == 0) {
        Enabled = true;
        if (size_t Eq = Arg.find('='); Eq != std::string::npos) {
          JsonPath = Arg.substr(Eq + 1);
        } else if (I + 1 < Argc) {
          JsonPath = Argv[++I];
        } else {
          std::fprintf(
              stderr,
              "bpfree: --characterize-json requires a path argument\n");
          std::exit(2);
        }
      } else {
        Argv[Out++] = Argv[I];
      }
    }
    Argc = Out;
    Argv[Argc] = nullptr;
  }

  bool enabled() const { return Enabled; }

  /// Characterizes \p Run, which must carry a captured trace: prints
  /// the predictability report to stdout and writes the JSON document
  /// when requested. No-op unless --characterize[-json] was given.
  void characterizeRun(const WorkloadRun &Run) {
    if (!Enabled)
      return;
    CharOptions CO;
    CO.Workload = Run.W->Name;
    CO.Dataset = Run.dataset().Name;
    CharReport R =
        takeOrExit(characterizeTrace(*Run.Ctx, *Run.Trace, CO),
                   "characterize");
    std::cout << renderCharReport(R, TopN);
    if (!JsonPath.empty()) {
      const std::string Path = pathForWorkload(JsonPath, Run.W->Name);
      if (!writeCharJson(R, Path)) {
        std::fprintf(stderr, "bpfree: cannot write characterize JSON to %s\n",
                     Path.c_str());
        std::exit(1);
      }
      std::fprintf(stderr, "bpfree: characterize JSON written to %s\n",
                   Path.c_str());
    }
  }

  /// Trace-captures (\p Name, \p Dataset) through \p Cache,
  /// characterizes it, and releases the trace. Defined after
  /// SuiteCache.
  inline void characterizeWorkload(SuiteCache &Cache,
                                   const std::string &Name,
                                   size_t Dataset = 0);

private:
  static std::string pathForWorkload(const std::string &Path,
                                     const std::string &Workload) {
    const size_t Slash = Path.find_last_of('/');
    const size_t Dot = Path.find_last_of('.');
    if (Dot == std::string::npos ||
        (Slash != std::string::npos && Dot < Slash))
      return Path + "." + Workload;
    return Path.substr(0, Dot) + "." + Workload + Path.substr(Dot);
  }

  bool Enabled = false;
  size_t TopN = 10;
  std::string JsonPath;
};

/// Prints the standard banner naming the regenerated artifact.
inline void banner(const std::string &Artifact, const std::string &Note) {
  std::cout << "=====================================================\n"
            << "bpfree reproduction: " << Artifact << "\n"
            << "(Ball & Larus, \"Branch Prediction for Free\", PLDI 1993)\n"
            << Note << "\n"
            << "=====================================================\n\n";
}

/// Runs the whole suite on reference datasets, echoing progress to
/// stderr so long benches show life. Benches need every workload to
/// succeed to fill their tables, so on any failure this prints the
/// per-workload failure summary (with backtraces) and exits nonzero —
/// partial results are reported, the process is never aborted.
///
/// The suite fans out across worker threads; each progress line is
/// emitted by one fprintf call under the driver's callback mutex (no
/// mid-line interleaving) and is tagged with the workload's registry
/// index, since start order is not completion order.
inline std::vector<std::unique_ptr<WorkloadRun>>
runSuiteVerbose(const HeuristicConfig &Config = {}) {
  SuiteOptions Opts;
  Opts.Progress = [](const Workload &W, size_t Index) {
    std::fprintf(stderr, "  [suite #%02zu] %s...\n", Index, W.Name.c_str());
  };
  SuiteReport Report = runSuite(Config, Opts);
  if (!Report.allOk()) {
    std::fprintf(stderr,
                 "bpfree: %zu of %zu suite workloads failed:\n%s",
                 Report.Failures.size(), Report.Attempted,
                 Report.renderFailures().c_str());
    std::exit(1);
  }
  return std::move(Report.Runs);
}

/// Cache of compiled-and-profiled suite runs keyed by (workload name,
/// dataset index). Profiling a workload is the expensive step — hundreds
/// of millions of interpreted instructions — while deriving BranchStats
/// for a new HeuristicConfig from the cached PredictionContext and
/// EdgeProfile is orders of magnitude cheaper. Benches that sweep
/// configs (ablations, order searches) profile once through runs() and
/// call statsFor() per config instead of re-interpreting the suite.
class SuiteCache {
public:
  /// Compiles and profiles the whole suite (reference datasets, default
  /// heuristic config) on first use; later calls return the cached runs.
  /// The profile and trace are config-independent, so there is no Config
  /// parameter — use statsFor() to evaluate a specific config against
  /// the cached profiles. Exits nonzero on any workload failure, like
  /// runSuiteVerbose.
  const std::vector<std::unique_ptr<WorkloadRun>> &runs() {
    if (Runs.empty()) {
      Runs = runSuiteVerbose();
      for (const auto &Run : Runs)
        Index[{Run->W->Name, Run->DatasetIndex}] = Run.get();
    }
    return Runs;
  }

  /// \returns the cached run for (\p Workload, \p Dataset), or nullptr
  /// when it isn't cached (runs() not called yet, or unknown key).
  const WorkloadRun *find(const std::string &Workload,
                          size_t Dataset = 0) const {
    auto It = Index.find({Workload, Dataset});
    return It == Index.end() ? nullptr : It->second;
  }

  /// Per-branch statistics for \p Run under \p Config, recomputed from
  /// the cached profile without re-interpreting the workload.
  std::vector<BranchStats> statsFor(const WorkloadRun &Run,
                                    const HeuristicConfig &Config) const {
    return collectBranchStats(*Run.Ctx, *Run.Profile, Config);
  }

  /// Compiles and trace-captures (\p Name, \p Dataset) on first use;
  /// later calls return the cached run with its finalized
  /// WorkloadRun::Trace. The run carries no edge profile: the trace sink
  /// is the interpretation's only instrumentation (the cheapest capture
  /// configuration), and the trace subsumes the profile for IPBC work —
  /// perfectDirectionsFromTrace derives the Perfect predictor's
  /// directions from the stream itself. This is the capture half of
  /// capture-once/replay-many; every predictor evaluation afterwards is
  /// a replay, not another run. Cached separately from runs() because
  /// traces carry megabytes of packed events; drop one with
  /// releaseTrace() once its workload is fully replayed. Exits nonzero
  /// on failure, like runSuiteVerbose.
  const WorkloadRun *traceRun(const std::string &Name, size_t Dataset = 0) {
    auto It = TraceRuns.find({Name, Dataset});
    if (It != TraceRuns.end())
      return It->second.get();
    const Workload *W = findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "bpfree: unknown workload '%s'\n", Name.c_str());
      std::exit(1);
    }
    RunOptions RO;
    RO.CaptureTrace = true;
    RO.Profile = false;
    std::unique_ptr<WorkloadRun> Run = runWorkloadOrExit(*W, Dataset, {}, RO);
    const WorkloadRun *Raw = Run.get();
    TraceRuns[{Name, Dataset}] = std::move(Run);
    return Raw;
  }

  /// Frees the captured trace (and run) for (\p Name, \p Dataset), if
  /// cached — bounds peak memory when iterating many workloads.
  void releaseTrace(const std::string &Name, size_t Dataset = 0) {
    TraceRuns.erase({Name, Dataset});
  }

private:
  std::vector<std::unique_ptr<WorkloadRun>> Runs;
  std::map<std::pair<std::string, size_t>, const WorkloadRun *> Index;
  std::map<std::pair<std::string, size_t>, std::unique_ptr<WorkloadRun>>
      TraceRuns;
};

inline void ExplainSession::explainWorkload(SuiteCache &Cache,
                                            const std::string &Name,
                                            size_t Dataset) {
  if (!Enabled)
    return;
  explainRun(*Cache.traceRun(Name, Dataset));
  Cache.releaseTrace(Name, Dataset);
}

inline void CharSession::characterizeWorkload(SuiteCache &Cache,
                                              const std::string &Name,
                                              size_t Dataset) {
  if (!Enabled)
    return;
  characterizeRun(*Cache.traceRun(Name, Dataset));
  Cache.releaseTrace(Name, Dataset);
}

/// "26" / "3.1" style percentage of a [0,1] fraction.
inline std::string pct(double Fraction) {
  return TablePrinter::formatPercent(Fraction);
}

/// The paper's "C/D" miss-pair cell.
inline std::string missPair(const Ratio &Miss, const Ratio &Perfect) {
  return TablePrinter::formatMissPair(Miss.rate(), Perfect.rate());
}

} // namespace bench
} // namespace bpfree

#endif // BPFREE_BENCH_BENCHCOMMON_H
