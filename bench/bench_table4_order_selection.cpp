//===- bench/bench_table4_order_selection.cpp - Table 4, Graphs 2-3 -------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5 order-selection experiment. The paper removes
/// matrix300 (leaving 22 benchmarks), then for each of the C(22,11)
/// half-size subsets finds the order minimizing that subset's average
/// non-loop miss rate, and asks how the chosen orders perform on the
/// full set. We do the same over our suite (minus matmul300).
///
///  * Table 4  — the 10 most frequently chosen orders, the % of trials
///    choosing them, and their full-suite average miss rate.
///  * Graph 2  — cumulative share of trials covered by the most common
///    orders.
///  * Graph 3  — full-suite miss rate of the most common orders.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "predict/Ordering.h"

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_table4_order_selection");
  (void)argc;
  (void)argv;
  banner("Table 4 + Graphs 2-3 — order selection over benchmark subsets",
         "Exhaustive half-size subset enumeration, matmul300 excluded.");

  SuiteCache Cache;

  std::vector<std::vector<double>> PerBench;
  size_t N = 0;
  for (const auto &Run : Cache.runs()) {
    if (Run->W->Name == "matmul300")
      continue;
    OrderEvaluator Eval(Run->Stats);
    PerBench.push_back(Eval.allMissRates());
    ++N;
  }
  size_t SubsetSize = N / 2;
  std::fprintf(stderr, "  [order-selection] %zu benchmarks, subsets of %zu"
                       " ...\n",
               N, SubsetSize);

  OrderSelectionResult R = runOrderSelection(PerBench, SubsetSize);
  std::cout << "Benchmarks: " << N << ", subset size: " << SubsetSize
            << ", trials: " << R.NumTrials
            << ", distinct winning orders: " << R.DistinctOrders << "\n\n";

  const auto &Orders = allOrders();
  auto ByFreq = R.byFrequency();

  std::cout << "Table 4 — the 10 most common orders:\n";
  TablePrinter T({"% of Trials", "Full-suite Miss%", "Order"});
  for (size_t I = 0; I < ByFreq.size() && I < 10; ++I) {
    size_t O = ByFreq[I];
    double Share = static_cast<double>(R.Frequency[O]) /
                   static_cast<double>(R.NumTrials);
    T.addRow({TablePrinter::formatDouble(Share * 100.0, 2),
              pct(R.FullSuiteMiss[O]), orderToString(Orders[O])});
  }
  T.print(std::cout);

  // Graph 2: cumulative trial share of the most common orders.
  std::cout << "\nGraph 2 — cumulative % of trials vs most-common orders "
               "(first 101):\n";
  TablePrinter G2({"Top-k orders", "Cumulative % of trials"});
  uint64_t Cum = 0;
  for (size_t I = 0; I < ByFreq.size() && I < 101; ++I) {
    Cum += R.Frequency[ByFreq[I]];
    if (I < 10 || (I + 1) % 10 == 0 || I + 1 == ByFreq.size()) {
      G2.addRow({std::to_string(I + 1),
                 TablePrinter::formatDouble(
                     100.0 * static_cast<double>(Cum) /
                         static_cast<double>(R.NumTrials),
                     1)});
    }
  }
  G2.print(std::cout);

  // Graph 3: full-suite miss rate per common order.
  std::cout << "\nGraph 3 — full-suite miss of the most common orders "
               "(every 10th):\n";
  TablePrinter G3({"Order rank", "Full-suite Miss%"});
  for (size_t I = 0; I < ByFreq.size() && I < 101; I += 10)
    G3.addRow({std::to_string(I + 1), pct(R.FullSuiteMiss[ByFreq[I]])});
  G3.print(std::cout);

  // The paper's checks: how often do the top-3 heuristics include
  // Opcode, Call, Return? And does a frequently chosen order coincide
  // with the global optimum?
  size_t GlobalBest = 0;
  for (size_t O = 1; O < NumOrders; ++O)
    if (R.FullSuiteMiss[O] < R.FullSuiteMiss[GlobalBest])
      GlobalBest = O;
  std::cout << "\nGlobally optimal order: " << orderToString(Orders[GlobalBest])
            << " (" << pct(R.FullSuiteMiss[GlobalBest]) << "%)";
  for (size_t I = 0; I < ByFreq.size(); ++I) {
    if (ByFreq[I] == GlobalBest) {
      std::cout << " — chosen " << I + 1
                << (I == 0 ? "st" : I == 1 ? "nd" : I == 2 ? "rd" : "th")
                << " most frequently";
      break;
    }
  }
  std::cout << "\n\nPaper reference: 705,432 trials chose only 622 distinct "
               "orders; the 40 most common covered ~90% of trials; the "
               "3rd most frequent order was the global optimum; Opcode, "
               "Call, Return consistently in the top 3 slots.\n";
  return 0;
}
