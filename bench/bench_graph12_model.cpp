//===- bench/bench_graph12_model.cpp - Reproduce Graph 12 -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph 12: the analytic model of sequence-length distributions.
/// With unit basic blocks and independent branches of miss rate m, the
/// fraction of executed instructions in sequences of length <= s is
/// f(m, s) = 1 - (1-m)^s. The paper plots f for m = 2.5% .. 30% in
/// 2.5% steps; the point of the figure is that the payoff in sequence
/// length comes from pushing m below ~15%.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "ipbc/SequenceAnalysis.h"

#include <cmath>

using namespace bpfree;
using namespace bpfree::bench;

int main() {
  banner("Graph 12 — analytic sequence-length model",
         "f(m, s) = 1 - (1-m)^s for miss rates 2.5%..30% step 2.5%.");

  const double Lengths[] = {1, 2, 5, 10, 20, 30, 50, 70, 100};

  std::vector<std::string> Headers = {"m \\ s"};
  for (double S : Lengths)
    Headers.push_back(TablePrinter::formatDouble(S, 0));
  TablePrinter T(Headers);

  for (int Step = 1; Step <= 12; ++Step) {
    double M = 0.025 * Step;
    std::vector<std::string> Row = {pct(M) + "%"};
    for (double S : Lengths)
      Row.push_back(pct(sequenceModel(M, S)));
    T.addRow(Row);
  }
  T.print(std::cout);

  // The paper's takeaway: sequence length at which half the execution
  // is covered, per miss rate — the "payoff" column.
  std::cout << "\nSequence length s such that f(m, s) = 50% "
               "(s = ln(0.5) / ln(1-m)):\n";
  TablePrinter Half({"Miss rate", "Half-coverage length"});
  for (int Step = 1; Step <= 12; ++Step) {
    double M = 0.025 * Step;
    double S = std::log(0.5) / std::log(1.0 - M);
    Half.addRow({pct(M) + "%", TablePrinter::formatDouble(S, 1)});
  }
  Half.print(std::cout);

  std::cout << "\nPaper reference: \"The payoff in sequence length comes "
               "not from moving from 30% to 15%, but from reducing the "
               "miss rate to less than 15%.\"\n";
  return 0;
}
