//===- bench/bench_graph12_model.cpp - Reproduce Graph 12 -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph 12: the analytic model of sequence-length distributions.
/// With unit basic blocks and independent branches of miss rate m, the
/// fraction of executed instructions in sequences of length <= s is
/// f(m, s) = 1 - (1-m)^s. The paper plots f for m = 2.5% .. 30% in
/// 2.5% steps; the point of the figure is that the payoff in sequence
/// length comes from pushing m below ~15%.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "ipbc/TraceReplay.h"

#include <cmath>

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_graph12_model");
  (void)argc;
  (void)argv;
  banner("Graph 12 — analytic sequence-length model",
         "f(m, s) = 1 - (1-m)^s for miss rates 2.5%..30% step 2.5%.");

  const double Lengths[] = {1, 2, 5, 10, 20, 30, 50, 70, 100};

  std::vector<std::string> Headers = {"m \\ s"};
  for (double S : Lengths)
    Headers.push_back(TablePrinter::formatDouble(S, 0));
  TablePrinter T(Headers);

  for (int Step = 1; Step <= 12; ++Step) {
    double M = 0.025 * Step;
    std::vector<std::string> Row = {pct(M) + "%"};
    for (double S : Lengths)
      Row.push_back(pct(sequenceModel(M, S)));
    T.addRow(Row);
  }
  T.print(std::cout);

  // The paper's takeaway: sequence length at which half the execution
  // is covered, per miss rate — the "payoff" column.
  std::cout << "\nSequence length s such that f(m, s) = 50% "
               "(s = ln(0.5) / ln(1-m)):\n";
  TablePrinter Half({"Miss rate", "Half-coverage length"});
  for (int Step = 1; Step <= 12; ++Step) {
    double M = 0.025 * Step;
    double S = std::log(0.5) / std::log(1.0 - M);
    Half.addRow({pct(M) + "%", TablePrinter::formatDouble(S, 1)});
  }
  Half.print(std::cout);

  // Model vs measurement: replay the heuristic predictor against
  // captured traces of two real workloads and compare the measured
  // cumulative instruction coverage with f(m, s) at the measured miss
  // rate. The model assumes unit blocks and independent branches, so it
  // tracks the shape but overestimates coverage at short lengths —
  // which is the paper's argument for measuring from traces.
  std::cout << "\nModel vs measured (Heuristic predictor, trace replay):\n";
  SuiteCache Cache;
  for (const char *Name : {"treesort", "circuit"}) {
    const WorkloadRun *Run = Cache.traceRun(Name);
    BallLarusPredictor Heuristic(*Run->Ctx);
    SequenceHistogram H = takeOrExit(
        replayTrace(*Run->Trace, predictorDirections(*Run->M, Heuristic)),
        "trace replay");
    double M = H.missRate();
    std::cout << Name << " (measured miss rate " << pct(M) << "%):\n";
    TablePrinter MT({"s", "model f(m,s)", "measured"});
    std::vector<std::pair<uint64_t, double>> Curve = H.instrCurve();
    for (double S : Lengths) {
      double Measured = 0.0;
      for (auto [Len, Frac] : Curve) {
        if (static_cast<double>(Len) > S)
          break;
        Measured = Frac;
      }
      MT.addRow({TablePrinter::formatDouble(S, 0),
                 pct(sequenceModel(M, S)) + "%", pct(Measured) + "%"});
    }
    MT.print(std::cout);
    Cache.releaseTrace(Name);
  }

  std::cout << "\nPaper reference: \"The payoff in sequence length comes "
               "not from moving from 30% to 15%, but from reducing the "
               "miss rate to less than 15%.\"\n";
  return 0;
}
