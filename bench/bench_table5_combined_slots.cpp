//===- bench/bench_table5_combined_slots.cpp - Reproduce Table 5 ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 5: the combined heuristic applied in the paper's priority
/// order Point > Call > Opcode > Return > Store > Loop > Guard. Each
/// non-loop branch is attributed to the *first* heuristic that applies
/// (or Default); per slot we print dynamic coverage and miss/perfect.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Statistics.h"

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_table5_combined_slots");
  (void)argc;
  (void)argv;
  banner("Table 5 — combined heuristic, per-slot attribution",
         "Order: Point > Call > Opcode > Return > Store > Loop > Guard; "
         "cells are coverage% miss/perfect; blank under 1% coverage.");

  auto Runs = runSuiteVerbose();
  HeuristicOrder Order = paperOrder();

  std::vector<std::string> Headers = {"Program"};
  for (HeuristicKind K : Order)
    Headers.push_back(heuristicName(K));
  Headers.push_back("Default");
  TablePrinter T(Headers);

  std::vector<RunningStat> Miss(NumHeuristics + 1), Prf(NumHeuristics + 1);

  bool PrintedFpSeparator = false;
  for (const auto &Run : Runs) {
    CombinedResult C = computeCombined(Run->Stats, Order);
    if (Run->W->FloatingPoint && !PrintedFpSeparator) {
      T.addSeparator();
      PrintedFpSeparator = true;
    }
    std::vector<std::string> Row = {Run->W->Name};
    for (size_t S = 0; S <= NumHeuristics; ++S) {
      const auto &Slot = C.Slots[S];
      double Cov = C.NonLoopExecs == 0
                       ? 0.0
                       : static_cast<double>(Slot.CoveredExecs) /
                             static_cast<double>(C.NonLoopExecs);
      if (Cov < 0.01) {
        Row.push_back("");
        continue;
      }
      Row.push_back(pct(Cov) + "% " + missPair(Slot.Miss, Slot.PerfectMiss));
      Miss[S].add(Slot.Miss.rate());
      Prf[S].add(Slot.PerfectMiss.rate());
    }
    T.addRow(Row);
  }
  T.addSeparator();
  std::vector<std::string> MeanRow = {"MEAN"}, DevRow = {"Std.Dev."};
  for (size_t S = 0; S <= NumHeuristics; ++S) {
    MeanRow.push_back(
        TablePrinter::formatMissPair(Miss[S].mean(), Prf[S].mean()));
    DevRow.push_back(
        TablePrinter::formatMissPair(Miss[S].stddev(), Prf[S].stddev()));
  }
  T.addRow(MeanRow);
  T.addRow(DevRow);
  T.print(std::cout);

  std::cout << "\nPaper reference MEAN row (same order): Point 41/10, "
               "Call 21/5, Opcode 20/5, Return 28/6, Store 36/7, Loop "
               "35/5, Guard 33/12, Default 45/11.\n";
  return 0;
}
