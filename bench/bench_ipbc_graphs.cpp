//===- bench/bench_ipbc_graphs.cpp - Reproduce Graphs 4-11 ----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6: instructions per break in control, measured from traces.
/// For each of the branchy benchmarks (the paper used gcc, lcc, qpt,
/// xlisp, doduc, fpppp, spice2g6; we use their suite analogs) and for
/// the three predictors Perfect / Heuristic / Loop+Rand:
///
///  * miss rate (all branches) and the profile-based IPBC average,
///  * the dividing length (sequence length at which 50% of executed
///    instructions are covered),
///  * the cumulative distribution of sequence lengths (Graphs 4, 6-11),
///  * for the circuit benchmark also the cumulative distribution of
///    breaks (Graph 5), showing why the IPBC average misleads.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "ipbc/DynamicReplay.h"
#include "ipbc/TraceReplay.h"
#include "predict/DynamicPredictors.h"
#include "support/Error.h"

using namespace bpfree;
using namespace bpfree::bench;

namespace {

/// Sample points of the cumulative curves.
const uint64_t SampleLengths[] = {10,  20,  40,  70,  100, 150, 210,
                                  280, 360, 450, 550, 800, 1200, 2000,
                                  4000, 8000};

double curveAt(const std::vector<std::pair<uint64_t, double>> &Curve,
               uint64_t X) {
  double Last = 0.0;
  for (auto [Len, Frac] : Curve) {
    if (Len > X)
      return Last;
    Last = Frac;
  }
  return Last;
}

void analyzeWorkload(SuiteCache &Cache, ExplainSession &Explain,
                     CharSession &Char, const Workload &W) {
  std::fprintf(stderr, "  [ipbc] %s...\n", W.Name.c_str());
  // One interpretation captures the packed branch trace (its only
  // instrumentation); every predictor below is evaluated by replaying
  // that trace, not by re-running the workload — capture-once/
  // replay-many. Even the Perfect predictor needs no edge profile: its
  // per-branch majority directions are derived from the trace itself.
  const WorkloadRun *Run = Cache.traceRun(W.Name);

  BallLarusPredictor Heuristic(*Run->Ctx);
  LoopRandPredictor LoopRand(*Run->Ctx);
  const char *Names[] = {"Loop+Rand", "Heuristic", "Perfect"};
  std::vector<std::vector<uint8_t>> Dirs;
  Dirs.push_back(predictorDirections(*Run->M, LoopRand));
  Dirs.push_back(predictorDirections(*Run->M, Heuristic));
  Dirs.push_back(takeOrExit(perfectDirectionsFromTrace(*Run->Trace),
                            "perfect directions"));
  std::vector<SequenceHistogram> Hists = takeOrExit(
      replayTraceAll(*Run->Trace, std::move(Dirs)), "trace replay");

  std::cout << "== " << W.Name << " (" << Run->Result.InstrCount
            << " instructions) ==\n";
  TablePrinter Summary({"Predictor", "Miss%", "IPBC avg", "Dividing len"});
  for (size_t P = 0; P < Hists.size(); ++P) {
    const SequenceHistogram &H = Hists[P];
    Summary.addRow({Names[P], pct(H.missRate()),
                    TablePrinter::formatDouble(H.ipbcAverage(), 0),
                    TablePrinter::formatDouble(H.dividingLength(), 0)});
  }
  // The dynamic zoo rides the same captured trace through the per-site
  // event-stream replay — hardware-style predictors (bimodal, two-level,
  // gshare, tournament) side by side with the paper's static ones, under
  // identical Breaks accounting.
  const std::vector<DynPredictorConfig> DynPanel = standardDynamicPanel();
  std::vector<SequenceHistogram> DynHists = takeOrExit(
      replayTraceDynamic(*Run->Trace, DynPanel), "dynamic replay");
  for (size_t P = 0; P < DynHists.size(); ++P) {
    const SequenceHistogram &H = DynHists[P];
    Summary.addRow({DynPanel[P].name(), pct(H.missRate()),
                    TablePrinter::formatDouble(H.ipbcAverage(), 0),
                    TablePrinter::formatDouble(H.dividingLength(), 0)});
  }
  Summary.print(std::cout);

  std::cout << "Cumulative % of executed instructions in sequences of "
               "length < x:\n";
  TablePrinter Curve({"x", "Loop+Rand", "Heuristic", "Perfect"});
  std::vector<std::vector<std::pair<uint64_t, double>>> Curves;
  for (size_t P = 0; P < 3; ++P)
    Curves.push_back(Hists[P].instrCurve());
  for (uint64_t X : SampleLengths) {
    Curve.addRow({std::to_string(X),
                  pct(curveAt(Curves[0], X)),
                  pct(curveAt(Curves[1], X)),
                  pct(curveAt(Curves[2], X))});
  }
  Curve.print(std::cout);

  // Graph 5 analog: for circuit (the spice2g6 stand-in), also the
  // cumulative distribution of *breaks*, demonstrating the skew that
  // makes the IPBC average underestimate sequence lengths.
  if (W.Name == "circuit") {
    std::cout << "Graph 5 analog — cumulative % of breaks in sequences "
                 "of length < x:\n";
    TablePrinter BCurve({"x", "Loop+Rand", "Heuristic", "Perfect"});
    std::vector<std::vector<std::pair<uint64_t, double>>> BCurves;
    for (size_t P = 0; P < 3; ++P)
      BCurves.push_back(Hists[P].breakCurve());
    for (uint64_t X : SampleLengths) {
      BCurve.addRow({std::to_string(X),
                     pct(curveAt(BCurves[0], X)),
                     pct(curveAt(BCurves[1], X)),
                     pct(curveAt(BCurves[2], X))});
    }
    BCurve.print(std::cout);
    const SequenceHistogram &H = Hists[2];
    std::cout << "Perfect predictor: IPBC average "
              << TablePrinter::formatDouble(H.ipbcAverage(), 0)
              << " vs dividing length "
              << TablePrinter::formatDouble(H.dividingLength(), 0)
              << " — the average underestimates available sequence "
                 "length when the break distribution is skewed.\n";
  }
  std::cout << "\n";
  // Under --explain, attribute this workload's mispredictions while the
  // captured trace is still resident — no second interpretation needed.
  Explain.explainRun(*Run);
  // Under --characterize, likewise the per-branch predictability
  // profile and the predictor-by-class tables.
  Char.characterizeRun(*Run);
  // Fully replayed; drop the packed events so peak memory stays one
  // workload's trace, not the whole set's.
  Cache.releaseTrace(W.Name);
}

} // namespace

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_ipbc_graphs");
  bpfree::bench::ExplainSession Explain(argc, argv);
  bpfree::bench::CharSession Char(argc, argv);
  (void)argc;
  (void)argv;
  banner("Graphs 4-11 — instructions per break in control",
         "Trace-based run-length distributions for Loop+Rand / "
         "Heuristic / Perfect on the branchy benchmarks.");

  // Analogs of the paper's gcc, lcc, qpt, xlisp, doduc, fpppp,
  // spice2g6 trace set.
  const char *TraceSet[] = {"treesort", "lisp",      "qsortbench",
                            "basicinterp", "nbody",  "fpkernels",
                            "circuit"};
  SuiteCache Cache;
  for (const char *Name : TraceSet) {
    const Workload *W = findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "bpfree: missing workload %s\n", Name);
      return 1;
    }
    analyzeWorkload(Cache, Explain, Char, *W);
  }

  std::cout << "Paper reference shape: Heuristic sits between Loop+Rand "
               "and Perfect but closer to Loop+Rand on branchy codes — "
               "\"very high accuracy is necessary to obtain long "
               "sequences\"; the payoff comes from pushing the miss "
               "rate below ~15%.\n";
  return 0;
}
