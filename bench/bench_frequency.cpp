//===- bench/bench_frequency.cpp - Static program profiles ----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment completing the Wu-Larus sequel: propagate
/// branch probabilities to *static block-frequency profiles* and score
/// them against measured profiles. Per workload and per probability
/// oracle (uniform 50/50, Wu-Larus heuristic probabilities, true
/// per-branch probabilities):
///
///   * Spearman rank correlation of estimated vs measured block
///     frequencies (intra-function shape, scaled by measured function
///     entry counts),
///   * hot-block overlap: of the measured top-decile blocks, how many
///     the estimate also puts in its top decile — the number that
///     matters for "identify frequently executed regions".
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "predict/Frequency.h"
#include "support/Statistics.h"

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_frequency");
  (void)argc;
  (void)argv;
  banner("Static program profiles from branch probabilities",
         "Wu-Larus MICRO 1994, part 2: block-frequency estimation.");

  TablePrinter T({"Program", "rho uniform", "rho WuLarus", "rho perfect",
                  "hot uniform", "hot WuLarus", "hot perfect"});
  RunningStat RU, RW, RP, HU, HW, HP;

  for (const Workload &W : workloadSuite()) {
    std::fprintf(stderr, "  [frequency] %s...\n", W.Name.c_str());
    auto Run = runWorkloadOrExit(W, 0);
    WuLarusPredictor WL(*Run->Ctx,
                        HeuristicPriors::measured(Run->Stats));

    FrequencyQuality U =
        scoreFrequencies(*Run->M, uniformOracle(), *Run->Profile);
    FrequencyQuality H =
        scoreFrequencies(*Run->M, wuLarusOracle(WL), *Run->Profile);
    FrequencyQuality P = scoreFrequencies(
        *Run->M, perfectOracle(*Run->Profile), *Run->Profile);

    T.addRow({W.Name, TablePrinter::formatDouble(U.SpearmanRho, 2),
              TablePrinter::formatDouble(H.SpearmanRho, 2),
              TablePrinter::formatDouble(P.SpearmanRho, 2),
              pct(U.HotOverlap), pct(H.HotOverlap), pct(P.HotOverlap)});
    RU.add(U.SpearmanRho);
    RW.add(H.SpearmanRho);
    RP.add(P.SpearmanRho);
    HU.add(U.HotOverlap);
    HW.add(H.HotOverlap);
    HP.add(P.HotOverlap);
  }
  T.addSeparator();
  T.addRow({"MEAN", TablePrinter::formatDouble(RU.mean(), 2),
            TablePrinter::formatDouble(RW.mean(), 2),
            TablePrinter::formatDouble(RP.mean(), 2), pct(HU.mean()),
            pct(HW.mean()), pct(HP.mean())});
  T.print(std::cout);

  std::cout << "\nExpected shape (Wu & Larus 1994): heuristic-derived "
               "static profiles rank blocks far better than the uniform "
               "baseline and identify most of the truly hot blocks; the "
               "perfect-probability column bounds what frequency "
               "propagation alone can achieve.\n";
  return 0;
}
