//===- bench/bench_ablation_variants.cpp - Design-choice ablations --------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations of the design choices DESIGN.md §6 calls out, all scored
/// as all-branch miss rate averaged over the suite:
///
///  * Loop classification: natural-loop analysis (paper) vs the
///    "common technique of simply identifying backwards branches".
///  * Default prediction for uncovered non-loop branches: random
///    (paper) vs always-taken vs always-fallthru.
///  * Guard generalization (paper §4.4): search depth 1 (paper) / 2 / 3.
///  * Pointer heuristic variants: GP filter on/off, type-annotated.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Statistics.h"

using namespace bpfree;
using namespace bpfree::bench;

namespace {

/// Average all-branch and non-loop miss over the suite for stats
/// collected under some config, using the standard order and a chosen
/// default policy.
struct SuiteScore {
  RunningStat AllMiss, NonLoopMiss, Coverage;
};

SuiteScore scoreSuite(SuiteCache &Cache, const HeuristicConfig &Config,
                      DefaultPolicy Policy = DefaultPolicy::Random) {
  SuiteScore Score;
  for (const auto &Run : Cache.runs()) {
    std::vector<BranchStats> Stats = Cache.statsFor(*Run, Config);
    // Apply the default policy by rewriting the per-branch random
    // direction (the CombinedResult default slot uses RandomDir).
    if (Policy != DefaultPolicy::Random)
      for (BranchStats &S : Stats)
        S.RandomDir =
            Policy == DefaultPolicy::Taken ? DirTaken : DirFallthru;
    CombinedResult C = computeCombined(Stats);
    Score.AllMiss.add(C.AllMiss.rate());
    Score.NonLoopMiss.add(C.NonLoopMiss.rate());
    Score.Coverage.add(C.coverage());
  }
  return Score;
}

/// Backwards-branch-only loop handling: loop branches predicted by the
/// loop predictor only when the prediction is a backedge; everything
/// else treated like a non-loop branch (heuristics + default).
double backwardOnlyAllMiss(SuiteCache &Cache) {
  RunningStat All;
  for (const auto &Run : Cache.runs()) {
    uint64_t Misses = 0, Total = 0;
    for (const BranchStats &S : Run->Stats) {
      uint64_t T = S.total();
      if (T == 0)
        continue;
      Total += T;
      if (S.IsLoopBranch && S.IsBackwardBranch) {
        Misses += S.missesFor(S.LoopDir);
        continue;
      }
      // Fall back to the combined heuristics (loop branches without a
      // predicted backedge included, as a backwards-only scheme cannot
      // classify them).
      Direction D = S.RandomDir;
      for (HeuristicKind K : paperOrder()) {
        if (S.heuristicApplies(K)) {
          D = S.heuristicDir(K);
          break;
        }
      }
      Misses += S.missesFor(D);
    }
    All.add(Total ? static_cast<double>(Misses) / static_cast<double>(Total)
                  : 0.0);
  }
  return All.mean();
}

} // namespace

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_ablation_variants");
  (void)argc;
  (void)argv;
  banner("Ablations — natural loops, default policy, guard depth, "
         "pointer variants",
         "All numbers are suite-average miss rates under the paper "
         "order.");

  // One profiling pass feeds every variant below: each config only needs
  // BranchStats recomputed from the cached profiles.
  SuiteCache Cache;

  HeuristicConfig Paper;
  SuiteScore Base = scoreSuite(Cache, Paper);

  TablePrinter T({"Variant", "All-branch Miss%", "Non-loop Miss%",
                  "NL Coverage%"});
  auto addScore = [&](const std::string &Name, const SuiteScore &S) {
    T.addRow({Name, pct(S.AllMiss.mean()), pct(S.NonLoopMiss.mean()),
              pct(S.Coverage.mean())});
  };

  addScore("paper baseline", Base);

  // Loop classification ablation.
  T.addRow({"backwards-branches-only loops",
            pct(backwardOnlyAllMiss(Cache)), "-", "-"});

  // Default policy.
  addScore("default = always taken",
           scoreSuite(Cache, Paper, DefaultPolicy::Taken));
  addScore("default = always fallthru",
           scoreSuite(Cache, Paper, DefaultPolicy::Fallthru));

  // Guard search depth (paper's "Generalizations" future work).
  for (unsigned Depth : {2u, 3u}) {
    HeuristicConfig C;
    C.GuardSearchDepth = Depth;
    addScore("guard depth = " + std::to_string(Depth),
             scoreSuite(Cache, C));
  }

  // Pointer variants.
  {
    HeuristicConfig C;
    C.PointerGpFilter = false;
    addScore("pointer: no GP filter", scoreSuite(Cache, C));
  }
  {
    HeuristicConfig C;
    C.PointerUseTypeInfo = true;
    addScore("pointer: type-annotated", scoreSuite(Cache, C));
  }
  T.print(std::cout);

  std::cout << "\nExpected shape: natural-loop classification beats "
               "backwards-only; default policy barely matters (small "
               "coverage gap); deeper guard search shifts coverage but "
               "not dramatically; the typed pointer heuristic "
               "matches or beats the opcode-pattern version (paper "
               "§4.3's suggested improvement).\n";
  return 0;
}
