//===- bench/bench_table1_suite.cpp - Reproduce Table 1 -------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1 of the paper lists the benchmarks with a one-line
/// description, language, and code size, split into an integer/pointer
/// group and a floating-point group. This binary prints the same table
/// for our workload suite, with static IR statistics standing in for
/// object-code size.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "frontend/Compiler.h"

#include <algorithm>

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_table1_suite");
  (void)argc;
  (void)argv;
  banner("Table 1 — benchmark suite",
         "Workloads stand in for the paper's SPEC89 + misc programs; "
         "size columns are static IR statistics.");

  struct Row {
    const Workload *W;
    size_t Functions, Blocks, Branches, Instrs, SourceLines;
  };
  std::vector<Row> Rows;
  for (const Workload &W : workloadSuite()) {
    auto M = minic::compileOrDie(W.Source);
    Row R;
    R.W = &W;
    R.Functions = M->numFunctions();
    R.Instrs = M->countInstructions();
    R.Branches = M->countCondBranches();
    R.Blocks = 0;
    for (const auto &F : *M)
      R.Blocks += F->numBlocks();
    R.SourceLines = static_cast<size_t>(
        std::count(W.Source.begin(), W.Source.end(), '\n'));
    Rows.push_back(R);
  }

  // Sort each group by size (the paper sorts by object code size).
  std::stable_sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    if (A.W->FloatingPoint != B.W->FloatingPoint)
      return !A.W->FloatingPoint;
    return A.Instrs > B.Instrs;
  });

  TablePrinter T({"Program", "Description", "Grp", "SrcLn", "Funcs",
                  "Blocks", "Branches", "IR Instrs"});
  bool PrintedFpSeparator = false;
  for (const Row &R : Rows) {
    if (R.W->FloatingPoint && !PrintedFpSeparator) {
      T.addSeparator();
      PrintedFpSeparator = true;
    }
    T.addRow({R.W->Name, R.W->Description, R.W->FloatingPoint ? "FP" : "int",
              std::to_string(R.SourceLines), std::to_string(R.Functions),
              std::to_string(R.Blocks), std::to_string(R.Branches),
              std::to_string(R.Instrs)});
  }
  T.print(std::cout);

  std::cout << "\nDatasets per workload (dataset 0 is the reference "
               "input used by Tables 2-6):\n";
  TablePrinter D({"Program", "Datasets", "Names"});
  for (const Workload &W : workloadSuite()) {
    std::string Names;
    for (const Dataset &DS : W.Datasets) {
      if (!Names.empty())
        Names += ", ";
      Names += DS.Name;
    }
    D.addRow({W.Name, std::to_string(W.Datasets.size()), Names});
  }
  D.print(std::cout);
  return 0;
}
