//===- bench/bench_profile_based.cpp - Program- vs profile-based ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's framing claim (Sections 1-2, citing Fisher &
/// Freudenberger): profile-based static prediction transfers across
/// datasets because branches keep their dominant direction, and
/// "program-based prediction is a factor of two worse, on the average,
/// than profile-based prediction". This bench measures exactly that on
/// our suite: for each workload, evaluate on the reference dataset
///
///   * Perfect      — profile from the same run (upper bound),
///   * Cross-profile — perfect predictor derived from a *different*
///     dataset's profile (realistic profile-based prediction),
///   * Heuristic    — the program-based Ball-Larus predictor,
///   * Loop+Rand    — the baseline.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "vm/Interpreter.h"

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_profile_based");
  (void)argc;
  (void)argv;
  banner("Program-based vs profile-based prediction (Sections 1-2)",
         "Cross = perfect predictor trained on dataset 1, scored on "
         "dataset 0.");

  TablePrinter T({"Program", "Perfect", "Cross-profile", "Heuristic",
                  "Loop+Rand"});
  RunningStat SelfStat, CrossStat, HeurStat, LoopRandStat;

  for (const Workload &W : workloadSuite()) {
    std::fprintf(stderr, "  [profiles] %s...\n", W.Name.c_str());
    if (W.Datasets.size() < 2)
      continue;
    // Reference run (scored) and training run (dataset 1).
    auto Ref = runWorkloadOrExit(W, 0);
    EdgeProfile TrainProfile(*Ref->M);
    Interpreter Interp(*Ref->M);
    RunResult TrainResult = Interp.run(W.Datasets[1], {&TrainProfile});
    if (!TrainResult.ok()) {
      std::fprintf(stderr, "bpfree: training run failed for %s:\n%s\n",
                   W.Name.c_str(),
                   TrainResult.Trap ? TrainResult.Trap->render().c_str()
                                    : TrainResult.TrapMessage.c_str());
      return 1;
    }

    PerfectPredictor Self(*Ref->Profile);
    PerfectPredictor Cross(TrainProfile);
    BallLarusPredictor Heuristic(*Ref->Ctx);
    LoopRandPredictor LoopRand(*Ref->Ctx);

    Ratio SelfMiss = evaluatePredictor(Self, Ref->Stats);
    Ratio CrossMiss = evaluatePredictor(Cross, Ref->Stats);
    Ratio HeurMiss = evaluatePredictor(Heuristic, Ref->Stats);
    Ratio LoopRandMiss = evaluatePredictor(LoopRand, Ref->Stats);

    T.addRow({W.Name, pct(SelfMiss.rate()), pct(CrossMiss.rate()),
              pct(HeurMiss.rate()), pct(LoopRandMiss.rate())});
    SelfStat.add(SelfMiss.rate());
    CrossStat.add(CrossMiss.rate());
    HeurStat.add(HeurMiss.rate());
    LoopRandStat.add(LoopRandMiss.rate());
  }
  T.addSeparator();
  T.addRow({"MEAN", pct(SelfStat.mean()), pct(CrossStat.mean()),
            pct(HeurStat.mean()), pct(LoopRandStat.mean())});
  T.addRow({"Std.Dev.", pct(SelfStat.stddev()), pct(CrossStat.stddev()),
            pct(HeurStat.stddev()), pct(LoopRandStat.stddev())});
  T.print(std::cout);

  std::cout << "\nClaims to check:\n"
               "  1. Cross-profile sits close to Perfect (Fisher & "
               "Freudenberger: dominant directions transfer across "
               "inputs).\n"
               "  2. Heuristic is roughly a factor of two above "
               "profile-based (the paper's Section 1 assessment), yet "
               "far below Loop+Rand.\n"
            << "Measured ratios: heuristic/cross = "
            << TablePrinter::formatDouble(
                   CrossStat.mean() > 0
                       ? HeurStat.mean() / CrossStat.mean()
                       : 0,
                   2)
            << ", cross/perfect = "
            << TablePrinter::formatDouble(
                   SelfStat.mean() > 0
                       ? CrossStat.mean() / SelfStat.mean()
                       : 0,
                   2)
            << "\n";
  return 0;
}
