//===- bench/bench_table6_final.cpp - Reproduce Tables 6 and 7 ------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 6: final results of the combined predictor. Columns:
/// Heuristics (coverage% + miss/perfect on covered non-loop branches),
/// +Default (all non-loop), All (loop predictor added, all branches),
/// Loop+Rand (baseline). Table 7: means over all benchmarks and over
/// "most" (excluding the few-big-branch programs eqn, grep, relax,
/// matmul300 — the analogs of eqntott, grep, tomcatv, matrix300).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Statistics.h"

#include <set>

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_table6_final");
  bpfree::bench::ExplainSession Explain(argc, argv);
  (void)argc;
  (void)argv;
  banner("Tables 6-7 — final results of the combined predictor",
         "Heuristics = covered non-loop branches; +Default = all "
         "non-loop; All = loop + non-loop; Loop+Rand = baseline.");

  auto Runs = runSuiteVerbose();

  TablePrinter T({"Program", "Heuristics", "+Default", "All",
                  "Loop+Rand"});

  // The analogs of the paper's "eqntott, grep, tomcatv, matrix300":
  // programs where a handful of non-loop branches dominate.
  const std::set<std::string> BigBranchPrograms = {"eqn", "grep", "relax",
                                                   "matmul300"};

  struct Acc {
    RunningStat Cov, HeurMiss, HeurPrf, NlMiss, NlPrf, AllMiss, AllPrf,
        LoopRand, NlTgt, NlRnd;
  } AccAll, AccMost;

  bool PrintedFpSeparator = false;
  for (const auto &Run : Runs) {
    CombinedResult C = computeCombined(Run->Stats);
    LoopNonLoopBreakdown B = computeLoopNonLoopBreakdown(Run->Stats);
    if (Run->W->FloatingPoint && !PrintedFpSeparator) {
      T.addSeparator();
      PrintedFpSeparator = true;
    }
    T.addRow({Run->W->Name,
              pct(C.coverage()) + "% " +
                  pct(C.HeuristicOnlyMiss.rate()),
              missPair(C.NonLoopMiss, C.NonLoopPerfectMiss),
              missPair(C.AllMiss, C.AllPerfectMiss),
              missPair(C.LoopRandMiss, C.AllPerfectMiss)});

    for (Acc *A : {&AccAll, BigBranchPrograms.count(Run->W->Name)
                                ? nullptr
                                : &AccMost}) {
      if (!A)
        continue;
      A->Cov.add(C.coverage());
      A->HeurMiss.add(C.HeuristicOnlyMiss.rate());
      A->NlMiss.add(C.NonLoopMiss.rate());
      A->NlPrf.add(C.NonLoopPerfectMiss.rate());
      A->AllMiss.add(C.AllMiss.rate());
      A->AllPrf.add(C.AllPerfectMiss.rate());
      A->LoopRand.add(C.LoopRandMiss.rate());
      A->NlTgt.add(B.NonLoopTakenMiss.rate());
      A->NlRnd.add(B.NonLoopRandomMiss.rate());
    }
  }
  T.print(std::cout);

  std::cout << "\nTable 7 — means (and std devs):\n";
  TablePrinter S({"Set", "Metric", "Heuristics", "+Default", "All",
                  "Loop+Rand", "NL Target", "NL Random"});
  auto addAccRows = [&](const char *Name, Acc &A) {
    S.addRow({Name, "mean",
              pct(A.Cov.mean()) + "% " + pct(A.HeurMiss.mean()),
              TablePrinter::formatMissPair(A.NlMiss.mean(), A.NlPrf.mean()),
              TablePrinter::formatMissPair(A.AllMiss.mean(),
                                           A.AllPrf.mean()),
              pct(A.LoopRand.mean()), pct(A.NlTgt.mean()),
              pct(A.NlRnd.mean())});
    S.addRow({Name, "stddev", pct(A.HeurMiss.stddev()),
              TablePrinter::formatMissPair(A.NlMiss.stddev(),
                                           A.NlPrf.stddev()),
              TablePrinter::formatMissPair(A.AllMiss.stddev(),
                                           A.AllPrf.stddev()),
              pct(A.LoopRand.stddev()), pct(A.NlTgt.stddev()),
              pct(A.NlRnd.stddev())});
  };
  addAccRows("all", AccAll);
  addAccRows("most", AccMost);
  S.print(std::cout);

  // Under --explain, attribute each workload's mispredictions to the
  // deciding heuristic. The table above is profile-based (no traces),
  // so this captures a trace per workload, explaining and releasing
  // one at a time to bound peak memory.
  if (Explain.enabled()) {
    std::cout << "\n";
    SuiteCache TraceCache;
    for (const auto &Run : Runs)
      Explain.explainWorkload(TraceCache, Run->W->Name, Run->DatasetIndex);
  }

  std::cout << "\nPaper reference (Table 7, all): non-loop heuristics "
               "~26%, +Default ~29/10, All ~20/8, Loop+Rand ~30/8, NL "
               "target 51%, NL random 49%.\n"
               "Headline claims to verify: (1) combined heuristic is "
               "roughly 2x the perfect miss rate; (2) it clearly beats "
               "target/random on non-loop branches; (3) 'All' lands "
               "near 20%.\n";
  return 0;
}
