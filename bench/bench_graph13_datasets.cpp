//===- bench/bench_graph13_datasets.cpp - Reproduce Graph 13 --------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph 13 / Section 7: stability of the predictor across datasets.
/// For every workload and every dataset, print the all-branch miss
/// rates of the Heuristic predictor (whose predictions are dataset-
/// independent) and the perfect static predictor (re-derived per
/// dataset). The paper's observation to reproduce: miss rates do not
/// vary widely across inputs, and where the heuristic's rate moves,
/// the perfect rate usually moves with it.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "ipbc/TraceReplay.h"
#include "support/Statistics.h"

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_graph13_datasets");
  (void)argc;
  (void)argv;
  banner("Graph 13 — miss rates across datasets",
         "Heuristic predictions are fixed per program; Perfect is "
         "recomputed per dataset.");

  TablePrinter T({"Program", "Dataset", "Heuristic Miss%", "Perfect Miss%",
                  "IPBC avg (H)", "Div len (H)", "Dyn branches"});

  RunningStat Spread;
  for (const Workload &W : workloadSuite()) {
    std::fprintf(stderr, "  [datasets] %s...\n", W.Name.c_str());
    double MinMiss = 1.0, MaxMiss = 0.0;
    for (size_t D = 0; D < W.Datasets.size(); ++D) {
      // Capture a branch trace alongside the profile (one
      // interpretation), then replay the heuristic predictor against it
      // for the per-dataset sequence statistics — dataset stability is
      // about sequence lengths too, not just miss rates.
      RunOptions RO;
      RO.CaptureTrace = true;
      auto Run = runWorkloadOrExit(W, D, {}, RO);
      CombinedResult C = computeCombined(Run->Stats);
      BallLarusPredictor Heuristic(*Run->Ctx);
      SequenceHistogram H = takeOrExit(
          replayTrace(*Run->Trace,
                      predictorDirections(*Run->M, Heuristic)),
          "trace replay");
      T.addRow({W.Name, W.Datasets[D].Name, pct(C.AllMiss.rate()),
                pct(C.AllPerfectMiss.rate()),
                TablePrinter::formatDouble(H.ipbcAverage(), 0),
                TablePrinter::formatDouble(H.dividingLength(), 0),
                std::to_string(C.AllMiss.Den)});
      MinMiss = std::min(MinMiss, C.AllMiss.rate());
      MaxMiss = std::max(MaxMiss, C.AllMiss.rate());
    }
    Spread.add(MaxMiss - MinMiss);
    T.addSeparator();
  }
  T.print(std::cout);

  std::cout << "\nMean per-program spread (max - min heuristic miss "
               "across datasets): "
            << pct(Spread.mean()) << "% (paper: \"the miss rates do not "
            << "vary too widely\").\n";
  return 0;
}
