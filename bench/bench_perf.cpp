//===- bench/bench_perf.cpp - Throughput microbenchmarks ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the library itself: MiniC
/// compilation, CFG analyses, heuristic application, prediction,
/// interpretation, and order evaluation. These back the paper's
/// "inexpensive to employ" claim with numbers: program-based
/// prediction costs one pass of local analysis per function.
///
/// Besides the microbenchmarks, `--phases[=PATH]` runs a whole-pipeline
/// phase harness and writes machine-readable JSON (per-phase wall time,
/// instructions/sec, suite totals) to PATH (default BENCH_PR2.json),
/// including the pre-change baseline recorded in this repo so speedups
/// are tracked in-tree. `--quick` is the single-repetition variant for
/// CI.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/SequenceAnalysis.h"
#include "predict/Ordering.h"
#include "support/ThreadPool.h"
#include "vm/Interpreter.h"
#include "workloads/Driver.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

using namespace bpfree;

namespace {

const Workload &benchWorkload() { return *findWorkload("treesort"); }

void BM_CompileMiniC(benchmark::State &State) {
  const Workload &W = benchWorkload();
  for (auto _ : State) {
    auto M = minic::compile(W.Source);
    benchmark::DoNotOptimize(M.hasValue());
  }
}
BENCHMARK(BM_CompileMiniC)->Unit(benchmark::kMillisecond);

void BM_AnalyzeCfg(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  for (auto _ : State) {
    PredictionContext Ctx(*M);
    benchmark::DoNotOptimize(&Ctx);
  }
}
BENCHMARK(BM_AnalyzeCfg)->Unit(benchmark::kMillisecond);

void BM_ApplyAllHeuristics(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  size_t Branches = 0;
  for (auto _ : State) {
    for (const auto &F : *M) {
      const FunctionContext &FC = Ctx.get(*F);
      for (const auto &BB : *F) {
        if (!BB->isCondBranch())
          continue;
        auto Masks = applyAllHeuristics(*BB, FC);
        benchmark::DoNotOptimize(Masks);
        ++Branches;
      }
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Branches));
}
BENCHMARK(BM_ApplyAllHeuristics);

void BM_PredictWholeModule(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  BallLarusPredictor BL(Ctx);
  size_t Branches = 0;
  for (auto _ : State) {
    for (const auto &F : *M)
      for (const auto &BB : *F) {
        if (!BB->isCondBranch())
          continue;
        benchmark::DoNotOptimize(BL.predict(*BB));
        ++Branches;
      }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Branches));
}
BENCHMARK(BM_PredictWholeModule);

void BM_InterpretSmallRun(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    RunResult R = Interp.run(Small);
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(R.ExitValue);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretSmallRun)->Unit(benchmark::kMillisecond);

void BM_InterpretWithProfile(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    EdgeProfile Profile(*M);
    RunResult R = Interp.run(Small, {&Profile});
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(Profile.totalBranchExecutions());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretWithProfile)->Unit(benchmark::kMillisecond);

void BM_InterpretWithTraceCollector(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  BallLarusPredictor BL(Ctx);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SequenceCollector Collector(*M, {&BL});
    RunResult R = Interp.run(Small, {&Collector});
    Collector.finalize(R.InstrCount);
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(Collector.histograms()[0].Breaks);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretWithTraceCollector)->Unit(benchmark::kMillisecond);

void BM_OrderEvaluation(benchmark::State &State) {
  auto Run = runWorkloadOrExit(benchWorkload(), 0);
  OrderEvaluator Eval(Run->Stats);
  const auto &Orders = allOrders();
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Eval.missRate(Orders[I]));
    I = (I + 1) % Orders.size();
  }
}
BENCHMARK(BM_OrderEvaluation);

void BM_AllOrdersSweep(benchmark::State &State) {
  auto Run = runWorkloadOrExit(benchWorkload(), 0);
  OrderEvaluator Eval(Run->Stats);
  for (auto _ : State) {
    std::vector<double> Rates = Eval.allMissRates();
    benchmark::DoNotOptimize(Rates.data());
  }
}
BENCHMARK(BM_AllOrdersSweep)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// --phases: whole-pipeline phase harness with JSON output
//===----------------------------------------------------------------------===//

/// Pre-change reference point for the suite-profiling phase, measured on
/// the commit named below (serial interpreter without the decoded-
/// instruction cache), best of 3 repetitions on the same machine class
/// this harness targets. Instruction totals are deterministic, so a
/// matching "instructions" value proves the two measurements executed
/// the same work.
struct Baseline {
  const char *Commit = "6816159";
  double SuiteProfileMs = 6687.1;
  uint64_t Instructions = 952560424ull;
};

struct Phase {
  std::string Name;
  double WallMs = 0.0;
  uint64_t Items = 0;        ///< workloads processed
  uint64_t Instructions = 0; ///< 0 when the phase does not interpret
};

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Runs the full compile -> analyze -> profile -> stats -> order-sweep
/// pipeline, timing each phase (best of \p Reps repetitions), and writes
/// the JSON report to \p Path.
int runPhases(const std::string &Path, bool Quick) {
  const int Reps = Quick ? 1 : 3;
  const std::vector<Workload> &Suite = workloadSuite();
  std::vector<Phase> Phases;

  // Times Body (which fills Items/Instructions) Reps times and records
  // the best repetition. The counters are deterministic across reps.
  // CoolDownSec sleeps before each repetition of a heavyweight phase:
  // sustained interpreter load degrades the effective clock on shared
  // hosts, so without a pause rep N pays for rep N-1's heat and only the
  // first repetition measures the machine at its nominal speed.
  auto timePhase = [&](const std::string &Name, int CoolDownSec,
                       auto Body) {
    Phase Best;
    Best.Name = Name;
    for (int R = 0; R < Reps; ++R) {
      if (CoolDownSec > 0 && R > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDownSec));
      Phase Cur;
      Cur.Name = Name;
      auto T0 = std::chrono::steady_clock::now();
      Body(Cur);
      Cur.WallMs = msSince(T0);
      if (R == 0 || Cur.WallMs < Best.WallMs)
        Best = Cur;
    }
    std::fprintf(stderr, "  [phase] %-22s %10.1f ms\n", Best.Name.c_str(),
                 Best.WallMs);
    Phases.push_back(Best);
  };

  // The expensive phase: interpret every workload under an edge
  // profiler. Measured once serially (the comparable configuration for
  // the recorded baseline) and once with the default thread fan-out.
  // These run FIRST, on a cold machine, because sustained interpreter
  // load degrades the clock on shared hosts — the baseline was measured
  // the same way, so cold-vs-cold is the fair comparison. The remaining
  // phases are millisecond-scale and insensitive to ordering.
  SuiteReport Serial;
  auto profileSuite = [&](unsigned Jobs, Phase &P) {
    SuiteOptions Opts;
    Opts.Jobs = Jobs;
    SuiteReport Report = runSuite({}, Opts);
    if (!Report.allOk()) {
      std::fprintf(stderr, "bpfree: suite failures:\n%s",
                   Report.renderFailures().c_str());
      std::exit(1);
    }
    for (const auto &Run : Report.Runs) {
      P.Instructions += Run->Result.InstrCount;
      ++P.Items;
    }
    return Report;
  };
  const int CoolDown = Quick ? 0 : 5;
  timePhase("suite_profile_serial", CoolDown,
            [&](Phase &P) { Serial = profileSuite(1, P); });
  timePhase("suite_profile_parallel", CoolDown,
            [&](Phase &P) { profileSuite(0, P); });

  timePhase("compile", 0, [&](Phase &P) {
    for (const Workload &W : Suite) {
      auto M = minic::compile(W.Source);
      if (!M) {
        std::fprintf(stderr, "bpfree: %s failed to compile: %s\n",
                     W.Name.c_str(), M.error().render().c_str());
        std::exit(1);
      }
      benchmark::DoNotOptimize(*M);
      ++P.Items;
    }
  });

  std::vector<std::unique_ptr<ir::Module>> Modules;
  for (const Workload &W : Suite)
    Modules.push_back(minic::compileOrDie(W.Source));
  timePhase("analyze", 0, [&](Phase &P) {
    for (const auto &M : Modules) {
      PredictionContext Ctx(*M);
      benchmark::DoNotOptimize(&Ctx);
      ++P.Items;
    }
  });

  timePhase("stats", 0, [&](Phase &P) {
    for (const auto &Run : Serial.Runs) {
      std::vector<BranchStats> Stats =
          collectBranchStats(*Run->Ctx, *Run->Profile, {});
      benchmark::DoNotOptimize(Stats.data());
      ++P.Items;
    }
  });

  timePhase("order_sweep", 0, [&](Phase &P) {
    for (const auto &Run : Serial.Runs) {
      OrderEvaluator Eval(Run->Stats);
      std::vector<double> Rates = Eval.allMissRates();
      benchmark::DoNotOptimize(Rates.data());
      ++P.Items;
    }
  });

  const Baseline Base;
  const Phase *SerialPhase = nullptr;
  for (const Phase &P : Phases)
    if (P.Name == "suite_profile_serial")
      SerialPhase = &P;

  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "bpfree: cannot write %s\n", Path.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"bench\": \"bpfree pipeline phases\",\n");
  std::fprintf(Out, "  \"mode\": \"%s\",\n", Quick ? "quick" : "full");
  std::fprintf(Out, "  \"repetitions\": %d,\n", Reps);
  std::fprintf(Out, "  \"jobs_default\": %u,\n",
               ThreadPool::defaultConcurrency());
  std::fprintf(Out, "  \"suite\": {\"workloads\": %llu},\n",
               static_cast<unsigned long long>(Suite.size()));
  std::fprintf(Out, "  \"phases\": [\n");
  for (size_t I = 0; I < Phases.size(); ++I) {
    const Phase &P = Phases[I];
    std::fprintf(Out, "    {\"name\": \"%s\", \"wall_ms\": %.1f, "
                      "\"items\": %llu",
                 P.Name.c_str(), P.WallMs,
                 static_cast<unsigned long long>(P.Items));
    if (P.Instructions) {
      std::fprintf(Out, ", \"instructions\": %llu, "
                        "\"instr_per_sec\": %.0f",
                   static_cast<unsigned long long>(P.Instructions),
                   static_cast<double>(P.Instructions) /
                       (P.WallMs / 1000.0));
    }
    std::fprintf(Out, "}%s\n", I + 1 == Phases.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out,
               "  \"baseline\": {\"commit\": \"%s\", "
               "\"suite_profile_serial_ms\": %.1f, "
               "\"instructions\": %llu},\n",
               Base.Commit, Base.SuiteProfileMs,
               static_cast<unsigned long long>(Base.Instructions));
  if (SerialPhase && SerialPhase->WallMs > 0.0) {
    std::fprintf(Out, "  \"speedup_vs_baseline\": %.2f,\n",
                 Base.SuiteProfileMs / SerialPhase->WallMs);
    std::fprintf(Out, "  \"work_matches_baseline\": %s\n",
                 SerialPhase->Instructions == Base.Instructions ? "true"
                                                                : "false");
  } else {
    std::fprintf(Out, "  \"speedup_vs_baseline\": null\n");
  }
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  std::fprintf(stderr, "  [phase] report written to %s\n", Path.c_str());
  return 0;
}

} // namespace

// BENCHMARK_MAIN with a --phases / --quick escape hatch in front: those
// flags divert into the JSON phase harness instead of google-benchmark.
int main(int argc, char **argv) {
  std::string Path = "BENCH_PR2.json";
  bool Phases = false, Quick = false;
  std::vector<char *> Rest{argv[0]};
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--phases") {
      Phases = true;
    } else if (A.rfind("--phases=", 0) == 0) {
      Phases = true;
      Path = A.substr(9);
    } else if (A == "--quick") {
      Phases = true;
      Quick = true;
    } else {
      Rest.push_back(argv[I]);
    }
  }
  if (Phases)
    return runPhases(Path, Quick);

  int RestArgc = static_cast<int>(Rest.size());
  benchmark::Initialize(&RestArgc, Rest.data());
  if (benchmark::ReportUnrecognizedArguments(RestArgc, Rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
