//===- bench/bench_perf.cpp - Throughput microbenchmarks ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the library itself: MiniC
/// compilation, CFG analyses, heuristic application, prediction,
/// interpretation, and order evaluation. These back the paper's
/// "inexpensive to employ" claim with numbers: program-based
/// prediction costs one pass of local analysis per function.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ipbc/SequenceAnalysis.h"
#include "predict/Ordering.h"
#include "vm/Interpreter.h"
#include "workloads/Driver.h"

#include <benchmark/benchmark.h>

using namespace bpfree;

namespace {

const Workload &benchWorkload() { return *findWorkload("treesort"); }

void BM_CompileMiniC(benchmark::State &State) {
  const Workload &W = benchWorkload();
  for (auto _ : State) {
    auto M = minic::compile(W.Source);
    benchmark::DoNotOptimize(M.hasValue());
  }
}
BENCHMARK(BM_CompileMiniC)->Unit(benchmark::kMillisecond);

void BM_AnalyzeCfg(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  for (auto _ : State) {
    PredictionContext Ctx(*M);
    benchmark::DoNotOptimize(&Ctx);
  }
}
BENCHMARK(BM_AnalyzeCfg)->Unit(benchmark::kMillisecond);

void BM_ApplyAllHeuristics(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  size_t Branches = 0;
  for (auto _ : State) {
    for (const auto &F : *M) {
      const FunctionContext &FC = Ctx.get(*F);
      for (const auto &BB : *F) {
        if (!BB->isCondBranch())
          continue;
        auto Masks = applyAllHeuristics(*BB, FC);
        benchmark::DoNotOptimize(Masks);
        ++Branches;
      }
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Branches));
}
BENCHMARK(BM_ApplyAllHeuristics);

void BM_PredictWholeModule(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  BallLarusPredictor BL(Ctx);
  size_t Branches = 0;
  for (auto _ : State) {
    for (const auto &F : *M)
      for (const auto &BB : *F) {
        if (!BB->isCondBranch())
          continue;
        benchmark::DoNotOptimize(BL.predict(*BB));
        ++Branches;
      }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Branches));
}
BENCHMARK(BM_PredictWholeModule);

void BM_InterpretSmallRun(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    RunResult R = Interp.run(Small);
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(R.ExitValue);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretSmallRun)->Unit(benchmark::kMillisecond);

void BM_InterpretWithProfile(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    EdgeProfile Profile(*M);
    RunResult R = Interp.run(Small, {&Profile});
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(Profile.totalBranchExecutions());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretWithProfile)->Unit(benchmark::kMillisecond);

void BM_InterpretWithTraceCollector(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  BallLarusPredictor BL(Ctx);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SequenceCollector Collector(*M, {&BL});
    RunResult R = Interp.run(Small, {&Collector});
    Collector.finalize(R.InstrCount);
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(Collector.histograms()[0].Breaks);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretWithTraceCollector)->Unit(benchmark::kMillisecond);

void BM_OrderEvaluation(benchmark::State &State) {
  auto Run = runWorkloadOrExit(benchWorkload(), 0);
  OrderEvaluator Eval(Run->Stats);
  const auto &Orders = allOrders();
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Eval.missRate(Orders[I]));
    I = (I + 1) % Orders.size();
  }
}
BENCHMARK(BM_OrderEvaluation);

void BM_AllOrdersSweep(benchmark::State &State) {
  auto Run = runWorkloadOrExit(benchWorkload(), 0);
  OrderEvaluator Eval(Run->Stats);
  for (auto _ : State) {
    std::vector<double> Rates = Eval.allMissRates();
    benchmark::DoNotOptimize(Rates.data());
  }
}
BENCHMARK(BM_AllOrdersSweep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
