//===- bench/bench_perf.cpp - Throughput microbenchmarks ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the library itself: MiniC
/// compilation, CFG analyses, heuristic application, prediction,
/// interpretation, and order evaluation. These back the paper's
/// "inexpensive to employ" claim with numbers: program-based
/// prediction costs one pass of local analysis per function.
///
/// Besides the microbenchmarks, `--phases[=PATH]` runs a whole-pipeline
/// phase harness and writes machine-readable JSON (per-phase wall time,
/// instructions/sec, suite totals, the observer-vs-replay IPBC pipeline
/// comparison, and the dispatch/replay-kernel old-vs-new comparisons) to
/// PATH (default BENCH_PR8.json), including the pre-change baseline
/// recorded in this repo so speedups are tracked in-tree. `--quick` is
/// the single-repetition variant for CI.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "frontend/Compiler.h"
#include "ipbc/Characterize.h"
#include "ipbc/DynamicReplay.h"
#include "ipbc/SequenceAnalysis.h"
#include "ipbc/TraceReplay.h"
#include "predict/DynamicPredictors.h"
#include "predict/Ordering.h"
#include "support/Manifest.h"
#include "support/Metrics.h"
#include "support/Simd.h"
#include "support/ThreadPool.h"
#include "vm/Decode.h"
#include "vm/Interpreter.h"
#include "vm/TraceStore.h"
#include "workloads/Driver.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

using namespace bpfree;

namespace {

const Workload &benchWorkload() { return *findWorkload("treesort"); }

void BM_CompileMiniC(benchmark::State &State) {
  const Workload &W = benchWorkload();
  for (auto _ : State) {
    auto M = minic::compile(W.Source);
    benchmark::DoNotOptimize(M.hasValue());
  }
}
BENCHMARK(BM_CompileMiniC)->Unit(benchmark::kMillisecond);

void BM_AnalyzeCfg(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  for (auto _ : State) {
    PredictionContext Ctx(*M);
    benchmark::DoNotOptimize(&Ctx);
  }
}
BENCHMARK(BM_AnalyzeCfg)->Unit(benchmark::kMillisecond);

void BM_ApplyAllHeuristics(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  size_t Branches = 0;
  for (auto _ : State) {
    for (const auto &F : *M) {
      const FunctionContext &FC = Ctx.get(*F);
      for (const auto &BB : *F) {
        if (!BB->isCondBranch())
          continue;
        auto Masks = applyAllHeuristics(*BB, FC);
        benchmark::DoNotOptimize(Masks);
        ++Branches;
      }
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Branches));
}
BENCHMARK(BM_ApplyAllHeuristics);

void BM_PredictWholeModule(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  BallLarusPredictor BL(Ctx);
  size_t Branches = 0;
  for (auto _ : State) {
    for (const auto &F : *M)
      for (const auto &BB : *F) {
        if (!BB->isCondBranch())
          continue;
        benchmark::DoNotOptimize(BL.predict(*BB));
        ++Branches;
      }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Branches));
}
BENCHMARK(BM_PredictWholeModule);

void BM_InterpretSmallRun(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    RunResult R = Interp.run(Small);
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(R.ExitValue);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretSmallRun)->Unit(benchmark::kMillisecond);

void BM_InterpretWithProfile(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    EdgeProfile Profile(*M);
    RunResult R = Interp.run(Small, {&Profile});
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(Profile.totalBranchExecutions());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretWithProfile)->Unit(benchmark::kMillisecond);

void BM_InterpretWithTraceCollector(benchmark::State &State) {
  auto M = minic::compileOrDie(benchWorkload().Source);
  PredictionContext Ctx(*M);
  BallLarusPredictor BL(Ctx);
  Interpreter Interp(*M);
  Dataset Small("bench", {500, 500, 2000, 3});
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SequenceCollector Collector(*M, {&BL});
    RunResult R = Interp.run(Small, {&Collector});
    Collector.finalize(R.InstrCount);
    Instrs += R.InstrCount;
    benchmark::DoNotOptimize(Collector.histograms()[0].Breaks);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpretWithTraceCollector)->Unit(benchmark::kMillisecond);

void BM_OrderEvaluation(benchmark::State &State) {
  auto Run = runWorkloadOrExit(benchWorkload(), 0);
  OrderEvaluator Eval(Run->Stats);
  const auto &Orders = allOrders();
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Eval.missRate(Orders[I]));
    I = (I + 1) % Orders.size();
  }
}
BENCHMARK(BM_OrderEvaluation);

void BM_AllOrdersSweep(benchmark::State &State) {
  auto Run = runWorkloadOrExit(benchWorkload(), 0);
  OrderEvaluator Eval(Run->Stats);
  for (auto _ : State) {
    std::vector<double> Rates = Eval.allMissRates();
    benchmark::DoNotOptimize(Rates.data());
  }
}
BENCHMARK(BM_AllOrdersSweep)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// --phases: whole-pipeline phase harness with JSON output
//===----------------------------------------------------------------------===//

/// Pre-change reference point for the suite-profiling phase, measured on
/// the commit named below (serial interpreter without the decoded-
/// instruction cache), best of 3 repetitions on the same machine class
/// this harness targets. Instruction totals are deterministic, so a
/// matching "instructions" value proves the two measurements executed
/// the same work.
struct Baseline {
  const char *Commit = "6816159";
  double SuiteProfileMs = 6687.1;
  uint64_t Instructions = 952560424ull;
};

struct Phase {
  std::string Name;
  double WallMs = 0.0;
  uint64_t Items = 0;        ///< workloads processed
  uint64_t Instructions = 0; ///< 0 when the phase does not interpret
};

/// The full predictor panel the IPBC benches evaluate: the three graph
/// predictors, the three naive references, and the seven single-
/// heuristic configurations from Table 5. Predictions are deterministic
/// functions of the module and profile, so panels built over separate
/// runs of the same workload predict identically.
struct PredictorPanel {
  PerfectPredictor Perfect;
  BallLarusPredictor Heuristic;
  LoopRandPredictor LoopRand;
  AlwaysTakenPredictor Taken;
  AlwaysFallthruPredictor Fallthru;
  RandomPredictor Random;
  std::vector<std::unique_ptr<SingleHeuristicPredictor>> Singles;
  std::vector<const StaticPredictor *> All;

  PredictorPanel(const PredictionContext &Ctx, const EdgeProfile &Profile)
      : Perfect(Profile), Heuristic(Ctx), LoopRand(Ctx) {
    All = {&LoopRand, &Heuristic, &Perfect, &Taken, &Fallthru, &Random};
    for (HeuristicKind K : paperOrder()) {
      Singles.push_back(std::make_unique<SingleHeuristicPredictor>(Ctx, K));
      All.push_back(Singles.back().get());
    }
  }
};

/// Direction arrays for the full panel, in PredictorPanel::All order,
/// built without an edge profile: the Perfect slot is derived from the
/// captured trace itself (per-branch majority — bit-identical to
/// PerfectPredictor over an edge profile of the same run), so trace-mode
/// capture needs no profiling instrumentation at all.
std::vector<std::vector<uint8_t>>
panelDirectionsFromTrace(const PredictionContext &Ctx,
                         const BranchTrace &Trace) {
  const ir::Module &M = Trace.getModule();
  LoopRandPredictor LoopRand(Ctx);
  BallLarusPredictor Heuristic(Ctx);
  AlwaysTakenPredictor Taken;
  AlwaysFallthruPredictor Fallthru;
  RandomPredictor Random;
  std::vector<std::vector<uint8_t>> Dirs;
  Dirs.push_back(predictorDirections(M, LoopRand));
  Dirs.push_back(predictorDirections(M, Heuristic));
  Dirs.push_back(bench::takeOrExit(perfectDirectionsFromTrace(Trace),
                                   "perfect directions"));
  Dirs.push_back(predictorDirections(M, Taken));
  Dirs.push_back(predictorDirections(M, Fallthru));
  Dirs.push_back(predictorDirections(M, Random));
  for (HeuristicKind K : paperOrder()) {
    SingleHeuristicPredictor S(Ctx, K);
    Dirs.push_back(predictorDirections(M, S));
  }
  return Dirs;
}

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

void BM_DecodeTrace(benchmark::State &State) {
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(benchWorkload(), 0, {}, RO);
  for (auto _ : State) {
    uint64_t Sum = 0;
    Run->Trace->forEach(
        [&](uint32_t Idx, bool Taken, uint64_t Delta) {
          Sum += Delta + Idx + Taken;
        });
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations() * Run->Trace->numEvents()));
}
BENCHMARK(BM_DecodeTrace)->Unit(benchmark::kMillisecond);

void BM_ReplayTracePanel(benchmark::State &State) {
  RunOptions RO;
  RO.CaptureTrace = true;
  auto Run = runWorkloadOrExit(benchWorkload(), 0, {}, RO);
  PredictorPanel Panel(*Run->Ctx, *Run->Profile);
  for (auto _ : State) {
    std::vector<SequenceHistogram> Hists = bench::takeOrExit(
        replayTraceAll(*Run->Trace, Panel.All), "panel replay");
    benchmark::DoNotOptimize(Hists.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(
      State.iterations() * Run->Trace->numEvents() * Panel.All.size()));
}
BENCHMARK(BM_ReplayTracePanel)->Unit(benchmark::kMillisecond);

/// Runs the full compile -> analyze -> profile -> stats -> order-sweep
/// pipeline, timing each phase (best of \p Reps repetitions), and writes
/// the JSON report to \p Path.
int runPhases(const std::string &Path, bool Quick) {
  const int Reps = Quick ? 1 : 3;
  const std::vector<Workload> &Suite = workloadSuite();
  std::vector<Phase> Phases;

  // Times Body (which fills Items/Instructions) Reps times and records
  // the best repetition. The counters are deterministic across reps.
  // CoolDownSec sleeps before *every* repetition of a heavyweight phase,
  // including the first: sustained interpreter load degrades the
  // effective clock on shared hosts, so a phase starting right after
  // another heavyweight phase would pay for its predecessor's heat on
  // rep 0 and never measure the machine at nominal speed. (That bias is
  // exactly what made suite_profile_parallel look slower than serial in
  // the PR 2 report on a single-core host, where the two phases run
  // identical code.)
  auto timePhase = [&](const std::string &Name, int CoolDownSec,
                       auto Body) {
    Phase Best;
    Best.Name = Name;
    for (int R = 0; R < Reps; ++R) {
      if (CoolDownSec > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDownSec));
      Phase Cur;
      Cur.Name = Name;
      auto T0 = std::chrono::steady_clock::now();
      Body(Cur);
      Cur.WallMs = msSince(T0);
      if (R == 0 || Cur.WallMs < Best.WallMs)
        Best = Cur;
    }
    std::fprintf(stderr, "  [phase] %-22s %10.1f ms\n", Best.Name.c_str(),
                 Best.WallMs);
    Phases.push_back(Best);
  };

  // The expensive phase: interpret every workload under an edge
  // profiler. Measured once serially (the comparable configuration for
  // the recorded baseline) and once with the default thread fan-out.
  // These run FIRST, on a cold machine, because sustained interpreter
  // load degrades the clock on shared hosts — the baseline was measured
  // the same way, so cold-vs-cold is the fair comparison. The remaining
  // phases are millisecond-scale and insensitive to ordering.
  SuiteReport Serial;
  std::map<std::string, uint64_t> InstrByName;
  auto profileSuite = [&](unsigned Jobs, Phase &P) {
    SuiteOptions Opts;
    Opts.Jobs = Jobs;
    // LPT cost hints from the serial run's instruction counts (the ideal
    // cost measure: deterministic and proportional to interpreter time);
    // the serial phase always runs first, so the parallel phase is warm.
    if (Jobs != 1 && !InstrByName.empty())
      Opts.CostHint = [&](const Workload &W, size_t) -> uint64_t {
        auto It = InstrByName.find(W.Name);
        return It == InstrByName.end() ? W.Source.size() : It->second;
      };
    SuiteReport Report = runSuite({}, Opts);
    if (!Report.allOk()) {
      std::fprintf(stderr, "bpfree: suite failures:\n%s",
                   Report.renderFailures().c_str());
      std::exit(1);
    }
    for (const auto &Run : Report.Runs) {
      P.Instructions += Run->Result.InstrCount;
      ++P.Items;
    }
    return Report;
  };
  const int CoolDown = Quick ? 0 : 5;
  timePhase("suite_profile_serial", CoolDown, [&](Phase &P) {
    Serial = profileSuite(1, P);
    for (const auto &Run : Serial.Runs)
      InstrByName[Run->W->Name] = Run->Result.InstrCount;
  });
  timePhase("suite_profile_parallel", CoolDown,
            [&](Phase &P) { profileSuite(0, P); });

  // IPBC pipeline, old vs new, over the Section 6 trace set. Both modes
  // produce the identical artifact — one SequenceHistogram per predictor
  // in the full 13-predictor panel (the 3 graph predictors, the 3 naive
  // references, and the 7 single-heuristic configurations of Table 5) —
  // so the wall-clock comparison is apples-to-apples. Observer mode is
  // what the graph benches ran before this change, scaled to the panel:
  // one interpretation under the edge profiler plus a second full
  // interpretation under the online SequenceCollector carrying all 13
  // predictors. Trace mode is capture-once/replay-many: one
  // interpretation with the trace sink as its *only* instrumentation
  // (no edge profiler — the Perfect predictor's directions are derived
  // from the trace itself), then a fused replay pass evaluating the
  // whole panel from the captured stream.
  // Each mode gets a cooldown before its pass (full mode) so neither
  // pays for the other's heat; observer mode runs first so any residual
  // warmth in quick mode biases *against* the new pipeline. Traces are
  // dropped right after replay, so peak memory stays bounded by one
  // workload's trace. Histograms are compared field-by-field across the
  // two modes on every workload and repetition.
  const char *TraceSet[] = {"treesort",    "lisp",  "qsortbench",
                            "basicinterp", "nbody", "fpkernels",
                            "circuit"};
  bool IpbcHistsMatch = true;
  uint64_t IpbcEvents = 0; ///< captured branch events across the set
  uint64_t IpbcBreaks = 0; ///< total breaks across all panel histograms
  {
    Phase BestBase, BestObs, BestCap, BestRep, BestDisk;
    for (int R = 0; R < Reps; ++R) {
      Phase Base, Obs, Cap, Rpl, Disk;
      Base.Name = "ipbc_interp_base";
      Obs.Name = "ipbc_observer";
      Cap.Name = "ipbc_trace";
      Rpl.Name = "ipbc_replay";
      Disk.Name = "ipbc_replay_disk";

      // Un-instrumented interpretation of the trace set: the floor any
      // IPBC pipeline must pay at least once to execute the workloads.
      // Subtracting it from either mode isolates the cost of the
      // measurement machinery itself.
      if (CoolDown > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDown));
      for (const char *Name : TraceSet) {
        const Workload &W = *findWorkload(Name);
        RunOptions RO;
        RO.Profile = false;
        auto T0 = std::chrono::steady_clock::now();
        auto BRun = runWorkloadOrExit(W, 0, {}, RO);
        Base.WallMs += msSince(T0);
        Base.Instructions += BRun->Result.InstrCount;
        ++Base.Items;
      }

      // Observer mode: profile run, then a second full interpretation
      // under the online collector evaluating the whole panel.
      if (CoolDown > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDown));
      std::map<std::string, std::vector<SequenceHistogram>> ObsHists;
      for (const char *Name : TraceSet) {
        const Workload &W = *findWorkload(Name);
        auto T0 = std::chrono::steady_clock::now();
        auto ORun = runWorkloadOrExit(W, 0);
        PredictorPanel Panel(*ORun->Ctx, *ORun->Profile);
        SequenceCollector Collector(*ORun->M, Panel.All);
        Interpreter Interp(*ORun->M);
        RunResult RR = Interp.run(ORun->dataset(), {&Collector});
        if (!RR.ok()) {
          std::fprintf(stderr, "bpfree: collector run failed for %s\n",
                       W.Name.c_str());
          std::exit(1);
        }
        Collector.finalize(RR.InstrCount);
        Obs.WallMs += msSince(T0);
        Obs.Instructions += ORun->Result.InstrCount + RR.InstrCount;
        ++Obs.Items;
        ObsHists[Name] = Collector.histograms();
      }

      // Trace mode: one interpretation captures profile + trace, then a
      // fused replay evaluates the panel from the captured stream.
      if (CoolDown > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDown));
      for (const char *Name : TraceSet) {
        const Workload &W = *findWorkload(Name);
        auto T0 = std::chrono::steady_clock::now();
        RunOptions RO;
        RO.CaptureTrace = true;
        RO.Profile = false;
        auto TRun = runWorkloadOrExit(W, 0, {}, RO);
        Cap.WallMs += msSince(T0);
        Cap.Instructions += TRun->Result.InstrCount;
        ++Cap.Items;

        // Direction resolution (including perfect-from-trace) is part of
        // the replay bill, just as the online collector pays for its
        // lazily-filled direction cache inside the observer timing.
        T0 = std::chrono::steady_clock::now();
        std::vector<std::vector<uint8_t>> Dirs =
            panelDirectionsFromTrace(*TRun->Ctx, *TRun->Trace);
        const size_t PanelSize = Dirs.size();
        std::vector<std::vector<uint8_t>> DiskDirs = Dirs;
        std::vector<SequenceHistogram> Hists = bench::takeOrExit(
            replayTraceAll(*TRun->Trace, std::move(Dirs)),
            "panel replay");
        benchmark::DoNotOptimize(Hists.data());
        Rpl.WallMs += msSince(T0);
        Rpl.Items += PanelSize;
        if (R == 0) {
          IpbcEvents += TRun->Trace->numEvents();
          for (const SequenceHistogram &H : Hists)
            IpbcBreaks += H.Breaks;
        }

        const std::vector<SequenceHistogram> &Ref = ObsHists[Name];
        for (size_t P = 0; P < Hists.size(); ++P) {
          const SequenceHistogram &A = Ref[P];
          const SequenceHistogram &B = Hists[P];
          if (A.NumSequences != B.NumSequences ||
              A.SumLengths != B.SumLengths || A.Breaks != B.Breaks ||
              A.TotalInstrs != B.TotalInstrs ||
              A.BranchExecs != B.BranchExecs)
            IpbcHistsMatch = false;
        }

        // Disk replay: persist the capture, stream it back through the
        // verified store, and replay the identical panel off disk. Only
        // the replay pass is timed — persisting is capture-side cost —
        // and the histograms MUST be bit-identical to the resident
        // replay above: any divergence means the store or decoder broke,
        // so it hard-fails the run rather than shipping a wrong number.
        const std::string StorePath = Path + ".ipbc.trace";
        if (std::optional<Diag> D =
                writeTraceFile(*TRun->Trace, StorePath)) {
          std::fprintf(stderr, "bpfree: persisting %s trace failed: %s\n",
                       W.Name.c_str(), D->render().c_str());
          std::exit(1);
        }
        TraceStoreReader Reader;
        if (std::optional<Diag> D = Reader.open(StorePath)) {
          std::fprintf(stderr, "bpfree: reopening %s trace failed: %s\n",
                       W.Name.c_str(), D->render().c_str());
          std::exit(1);
        }
        T0 = std::chrono::steady_clock::now();
        std::vector<SequenceHistogram> DiskHists = bench::takeOrExit(
            replayStoreAll(Reader, std::move(DiskDirs)),
            "disk panel replay");
        benchmark::DoNotOptimize(DiskHists.data());
        Disk.WallMs += msSince(T0);
        Disk.Items += PanelSize;
        std::remove(StorePath.c_str());
        for (size_t P = 0; P < Hists.size(); ++P) {
          const SequenceHistogram &A = Hists[P];
          const SequenceHistogram &B = DiskHists[P];
          if (A.NumSequences != B.NumSequences ||
              A.SumLengths != B.SumLengths || A.Breaks != B.Breaks ||
              A.TotalInstrs != B.TotalInstrs ||
              A.BranchExecs != B.BranchExecs) {
            std::fprintf(stderr,
                         "bpfree: disk replay of %s diverged from "
                         "resident replay (predictor %zu)\n",
                         W.Name.c_str(), P);
            std::exit(1);
          }
        }
      }
      auto keepBest = [R](Phase &Best, Phase &Cur) {
        if (R == 0 || Cur.WallMs < Best.WallMs)
          Best = Cur;
      };
      keepBest(BestBase, Base);
      keepBest(BestObs, Obs);
      keepBest(BestCap, Cap);
      keepBest(BestRep, Rpl);
      keepBest(BestDisk, Disk);
    }
    for (Phase *P : {&BestBase, &BestObs, &BestCap, &BestRep, &BestDisk}) {
      std::fprintf(stderr, "  [phase] %-22s %10.1f ms\n", P->Name.c_str(),
                   P->WallMs);
      Phases.push_back(*P);
    }
  }

  // Interpreter dispatch, old vs new, over the same trace set: each
  // workload interpreted bare (no observers — the pure inner-loop
  // configuration, where dispatch cost is the measurement) with the
  // pre-change configuration (portable switch loop, no superinstruction
  // fusion) and with the new default (computed-goto threaded loop +
  // fusion). The two legs alternate order per workload inside each
  // repetition, so clock drift on a shared host biases the ratio in
  // neither direction; only the run loop is timed (decode happens
  // before T0 on both legs). Instruction counts must agree exactly —
  // that is the proof both legs executed identical work — and the knob
  // is restored to the build default afterwards.
  bool DispatchInstrsMatch = true;
  {
    Phase BestSw, BestTh;
    for (int R = 0; R < Reps; ++R) {
      Phase Sw, Th;
      Sw.Name = "interp_switch_unfused";
      Th.Name = "interp_threaded";
      if (CoolDown > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDown));
      size_t WI = 0;
      for (const char *Name : TraceSet) {
        const Workload &W = *findWorkload(Name);
        auto M = minic::compileOrDie(W.Source);
        auto Leg = [&](DispatchMode Mode, bool Fuse, Phase &P) {
          setDispatchMode(Mode);
          DecodeOptions DO;
          DO.EnableFusion = Fuse;
          Interpreter Interp(*M, RunLimits(), DO);
          auto T0 = std::chrono::steady_clock::now();
          RunResult RR = Interp.run(W.Datasets[0]);
          P.WallMs += msSince(T0);
          if (!RR.ok()) {
            std::fprintf(stderr, "bpfree: dispatch leg failed for %s\n",
                         W.Name.c_str());
            std::exit(1);
          }
          P.Instructions += RR.InstrCount;
          ++P.Items;
          return RR.InstrCount;
        };
        uint64_t A, B;
        if (WI++ % 2 == 0) {
          A = Leg(DispatchMode::Switch, false, Sw);
          B = Leg(DispatchMode::Threaded, true, Th);
        } else {
          B = Leg(DispatchMode::Threaded, true, Th);
          A = Leg(DispatchMode::Switch, false, Sw);
        }
        if (A != B)
          DispatchInstrsMatch = false;
      }
      setDispatchMode(DispatchMode::Threaded);
      if (R == 0 || Sw.WallMs < BestSw.WallMs)
        BestSw = Sw;
      if (R == 0 || Th.WallMs < BestTh.WallMs)
        BestTh = Th;
    }
    for (Phase *P : {&BestSw, &BestTh}) {
      std::fprintf(stderr, "  [phase] %-22s %10.1f ms\n", P->Name.c_str(),
                   P->WallMs);
      Phases.push_back(*P);
    }
  }

  // Replay kernel, legacy vs widened, over the same captured traces.
  // Two panel families probe the two regimes the kernel lives in:
  //
  //  * "cycled" — the full 13-predictor panel cycled out to 32, 64, and
  //    128 lanes (lane J predicts like real predictor J mod 13). The
  //    naive lanes (random, always-taken/fallthru) mispredict ~half the
  //    events, so the panel is maximally break-dense and the shared
  //    per-break bookkeeping dominates both kernels — the worst case
  //    for any row format.
  //  * "sweep" — 64 near-identical candidate predictors (the trace's
  //    perfect directions, each lane perturbed at a J-dependent static
  //    stride), the predictor-zoo shape the widened kernel exists for:
  //    mostly-correct lanes, so throughput is bound by the per-event
  //    row test the widening accelerates.
  //
  // 32 lanes is the head-to-head at the old u32-row kernel's ceiling;
  // 64 and 128 lanes are panels the old bit-row kernel could not
  // express and served through its byte-matrix fallback. Leg order
  // alternates per panel inside each repetition; every lane is compared
  // bit-for-bit across kernels.
  bool ReplayRowsMatch = true;
  uint64_t ReplayEvents = 0;
  struct ReplayPanelCfg {
    size_t Predictors;
    bool Sweep;
    const char *Tag;
  };
  constexpr ReplayPanelCfg ReplayPanels[] = {{32, false, "32"},
                                             {64, false, "64"},
                                             {128, false, "128"},
                                             {64, true, "sweep64"}};
  constexpr size_t NumReplayPanels = std::size(ReplayPanels);
  Phase BestRk[2][NumReplayPanels]; ///< [narrow=0|wide=1][panel]
  {
    for (int R = 0; R < Reps; ++R) {
      Phase Rk[2][NumReplayPanels];
      for (size_t PI = 0; PI < NumReplayPanels; ++PI) {
        Rk[0][PI].Name =
            std::string("ipbc_replay_narrow") + ReplayPanels[PI].Tag;
        Rk[1][PI].Name =
            PI == 0 ? "ipbc_replay_wide"
                    : std::string("ipbc_replay_wide") + ReplayPanels[PI].Tag;
      }
      if (CoolDown > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDown));
      size_t WI = 0;
      for (const char *Name : TraceSet) {
        const Workload &W = *findWorkload(Name);
        RunOptions RO;
        RO.CaptureTrace = true;
        RO.Profile = false;
        auto TRun = runWorkloadOrExit(W, 0, {}, RO); // capture untimed
        if (R == 0)
          ReplayEvents += TRun->Trace->numEvents();
        std::vector<std::vector<uint8_t>> Dirs13 =
            panelDirectionsFromTrace(*TRun->Ctx, *TRun->Trace);
        // Sweep lanes: perfect directions (panel slot 2), lane J flipped
        // at every (5 + 3*(J%11))-th branch block starting at block J.
        std::vector<std::vector<uint8_t>> SweepDirs;
        {
          const std::vector<uint8_t> &Perfect = Dirs13[2];
          const size_t SweepLanes = 64;
          SweepDirs.assign(SweepLanes, Perfect);
          for (size_t J = 0; J < SweepLanes; ++J)
            for (size_t B = J; B < SweepDirs[J].size();
                 B += 5 + 3 * (J % 11))
              if (SweepDirs[J][B] != 0xFF)
                SweepDirs[J][B] ^= 1;
        }
        ++WI;
        for (size_t PI = 0; PI < NumReplayPanels; ++PI) {
          std::vector<const std::vector<uint8_t> *> Panel;
          for (size_t J = 0; J < ReplayPanels[PI].Predictors; ++J)
            Panel.push_back(ReplayPanels[PI].Sweep
                                ? &SweepDirs[J]
                                : &Dirs13[J % Dirs13.size()]);
          auto Leg = [&](ReplayKernel K, Phase &P) {
            setReplayKernel(K);
            auto T0 = std::chrono::steady_clock::now();
            std::vector<SequenceHistogram> H = bench::takeOrExit(
                replayTraceFused(*TRun->Trace, Panel), "kernel replay");
            P.WallMs += msSince(T0);
            P.Items += Panel.size();
            return H;
          };
          std::vector<SequenceHistogram> Narrow, Wide;
          if ((WI + PI) % 2 == 0) {
            Narrow = Leg(ReplayKernel::Narrow32, Rk[0][PI]);
            Wide = Leg(ReplayKernel::Wide, Rk[1][PI]);
          } else {
            Wide = Leg(ReplayKernel::Wide, Rk[1][PI]);
            Narrow = Leg(ReplayKernel::Narrow32, Rk[0][PI]);
          }
          for (size_t J = 0; J < Wide.size(); ++J) {
            const SequenceHistogram &A = Narrow[J];
            const SequenceHistogram &B = Wide[J];
            if (A.NumSequences != B.NumSequences ||
                A.SumLengths != B.SumLengths || A.Breaks != B.Breaks ||
                A.TotalInstrs != B.TotalInstrs ||
                A.BranchExecs != B.BranchExecs)
              ReplayRowsMatch = false;
          }
        }
      }
      setReplayKernel(ReplayKernel::Wide);
      for (int K = 0; K < 2; ++K)
        for (size_t PI = 0; PI < NumReplayPanels; ++PI)
          if (R == 0 || Rk[K][PI].WallMs < BestRk[K][PI].WallMs)
            BestRk[K][PI] = Rk[K][PI];
    }
    for (size_t PI = 0; PI < NumReplayPanels; ++PI)
      for (int K = 0; K < 2; ++K) {
        std::fprintf(stderr, "  [phase] %-22s %10.1f ms\n",
                     BestRk[K][PI].Name.c_str(), BestRk[K][PI].WallMs);
        Phases.push_back(BestRk[K][PI]);
      }
  }

  // Dynamic-predictor replay: the captured event streams feed the
  // SimpleScalar-style dynamic panel (bimodal, two-level, gshare,
  // tournament) — predictors that need per-site outcome *history*, not
  // just one static direction per block, so they ride the per-site
  // event-stream replay mode instead of the direction-vector kernels
  // above. Capture is untimed (the trace is the same artifact the IPBC
  // block already bills); only the panel replay is timed. Rep 0
  // additionally proves the determinism contract: histograms must be
  // bit-identical across Jobs ∈ {1, 4, 8} and across resident-vs-disk
  // sources, and any divergence hard-fails the run — a wrong-but-fast
  // replay is not a benchmark result.
  uint64_t DynEvents = 0, DynBreaks = 0;
  const size_t DynPanelSize = standardDynamicPanel().size();
  {
    Phase BestDyn;
    for (int R = 0; R < Reps; ++R) {
      Phase Dyn;
      Dyn.Name = "ipbc_replay_dynamic";
      if (CoolDown > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDown));
      for (const char *Name : TraceSet) {
        const Workload &W = *findWorkload(Name);
        RunOptions RO;
        RO.CaptureTrace = true;
        RO.Profile = false;
        auto TRun = runWorkloadOrExit(W, 0, {}, RO); // capture untimed
        const std::vector<DynPredictorConfig> Panel =
            standardDynamicPanel();
        auto T0 = std::chrono::steady_clock::now();
        std::vector<SequenceHistogram> Hists = bench::takeOrExit(
            replayTraceDynamic(*TRun->Trace, Panel), "dynamic replay");
        benchmark::DoNotOptimize(Hists.data());
        Dyn.WallMs += msSince(T0);
        Dyn.Items += Panel.size();
        if (R == 0) {
          DynEvents += TRun->Trace->numEvents();
          for (const SequenceHistogram &H : Hists)
            DynBreaks += H.Breaks;
          auto same = [](const SequenceHistogram &A,
                         const SequenceHistogram &B) {
            return A.NumSequences == B.NumSequences &&
                   A.SumLengths == B.SumLengths && A.Breaks == B.Breaks &&
                   A.TotalInstrs == B.TotalInstrs &&
                   A.BranchExecs == B.BranchExecs;
          };
          for (unsigned Jobs : {1u, 4u, 8u}) {
            std::vector<SequenceHistogram> JH = bench::takeOrExit(
                replayTraceDynamic(*TRun->Trace, Panel, Jobs),
                "dynamic replay determinism leg");
            for (size_t P = 0; P < Hists.size(); ++P)
              if (!same(Hists[P], JH[P])) {
                std::fprintf(stderr,
                             "bpfree: dynamic replay of %s diverged at "
                             "jobs=%u (predictor %zu)\n",
                             W.Name.c_str(), Jobs, P);
                std::exit(1);
              }
          }
          const std::string StorePath = Path + ".dyn.trace";
          if (std::optional<Diag> D =
                  writeTraceFile(*TRun->Trace, StorePath)) {
            std::fprintf(stderr,
                         "bpfree: persisting %s trace failed: %s\n",
                         W.Name.c_str(), D->render().c_str());
            std::exit(1);
          }
          TraceStoreReader Reader;
          if (std::optional<Diag> D = Reader.open(StorePath)) {
            std::fprintf(stderr,
                         "bpfree: reopening %s trace failed: %s\n",
                         W.Name.c_str(), D->render().c_str());
            std::exit(1);
          }
          std::vector<SequenceHistogram> DiskHists = bench::takeOrExit(
              replayStoreDynamic(Reader, Panel), "disk dynamic replay");
          std::remove(StorePath.c_str());
          for (size_t P = 0; P < Hists.size(); ++P)
            if (!same(Hists[P], DiskHists[P])) {
              std::fprintf(stderr,
                           "bpfree: disk dynamic replay of %s diverged "
                           "from resident replay (predictor %zu)\n",
                           W.Name.c_str(), P);
              std::exit(1);
            }
        }
      }
      if (R == 0 || Dyn.WallMs < BestDyn.WallMs)
        BestDyn = Dyn;
    }
    std::fprintf(stderr, "  [phase] %-22s %10.1f ms\n",
                 BestDyn.Name.c_str(), BestDyn.WallMs);
    Phases.push_back(BestDyn);
  }

  // Characterization pass: the third replay mode over the same captured
  // traces — per-site entropy/H2P statistics joined against provenance
  // and the static + dynamic predictor panels. Capture is untimed, as
  // above. Rep 0 proves the determinism contract at full strength:
  // reports (including every floating-point statistic) must be
  // bit-identical across Jobs ∈ {1, 4, 8} and across resident-vs-disk
  // sources, and class counts must conserve sites and executions.
  uint64_t CharEvents = 0, CharSitesTotal = 0, CharHardSites = 0;
  {
    auto sameChar = [](const CharReport &A, const CharReport &B) {
      if (A.TotalInstrs != B.TotalInstrs ||
          A.BranchExecs != B.BranchExecs || A.NumSites != B.NumSites ||
          A.Sites.size() != B.Sites.size() ||
          A.Predictors.size() != B.Predictors.size())
        return false;
      for (unsigned C = 0; C < NumBranchClasses; ++C)
        if (A.ClassSites[C] != B.ClassSites[C] ||
            A.ClassExecs[C] != B.ClassExecs[C])
          return false;
      for (size_t I = 0; I < A.Sites.size(); ++I) {
        const SiteCharacter &X = A.Sites[I];
        const SiteCharacter &Y = B.Sites[I];
        if (X.FlatIndex != Y.FlatIndex || X.Execs != Y.Execs ||
            X.Taken != Y.Taken || X.Transitions != Y.Transitions ||
            X.MaxRun != Y.MaxRun || X.Entropy != Y.Entropy ||
            X.PredictBits != Y.PredictBits || X.Class != Y.Class)
          return false;
        for (size_t D = 0; D < NumCharDepths; ++D)
          if (X.CondEntropy[D] != Y.CondEntropy[D])
            return false;
      }
      for (size_t P = 0; P < A.Predictors.size(); ++P) {
        if (A.Predictors[P].Mispredicts != B.Predictors[P].Mispredicts)
          return false;
        for (unsigned C = 0; C < NumBranchClasses; ++C) {
          const ClassSlice &X = A.Predictors[P].Classes[C];
          const ClassSlice &Y = B.Predictors[P].Classes[C];
          if (X.Sites != Y.Sites || X.Execs != Y.Execs ||
              X.Mispredicts != Y.Mispredicts)
            return false;
        }
      }
      return true;
    };
    Phase BestChar;
    for (int R = 0; R < Reps; ++R) {
      Phase Ch;
      Ch.Name = "ipbc_characterize";
      if (CoolDown > 0)
        std::this_thread::sleep_for(std::chrono::seconds(CoolDown));
      for (const char *Name : TraceSet) {
        const Workload &W = *findWorkload(Name);
        RunOptions RO;
        RO.CaptureTrace = true;
        RO.Profile = false;
        auto TRun = runWorkloadOrExit(W, 0, {}, RO); // capture untimed
        CharOptions CO;
        CO.Workload = W.Name;
        CO.Dataset = TRun->dataset().Name;
        auto T0 = std::chrono::steady_clock::now();
        CharReport Rep = bench::takeOrExit(
            characterizeTrace(*TRun->Ctx, *TRun->Trace, CO),
            "characterize");
        benchmark::DoNotOptimize(&Rep);
        Ch.WallMs += msSince(T0);
        ++Ch.Items;
        if (R == 0) {
          CharEvents += Rep.BranchExecs;
          CharSitesTotal += Rep.NumSites;
          CharHardSites +=
              Rep.ClassSites[static_cast<unsigned>(BranchClass::Hard)];
          uint64_t SiteSum = 0, ExecSum = 0;
          for (unsigned C = 0; C < NumBranchClasses; ++C) {
            SiteSum += Rep.ClassSites[C];
            ExecSum += Rep.ClassExecs[C];
          }
          if (SiteSum != Rep.NumSites || ExecSum != Rep.BranchExecs) {
            std::fprintf(stderr,
                         "bpfree: characterization of %s broke class "
                         "conservation\n",
                         W.Name.c_str());
            std::exit(1);
          }
          for (unsigned Jobs : {1u, 4u, 8u}) {
            CharOptions JCO = CO;
            JCO.Jobs = Jobs;
            CharReport JR = bench::takeOrExit(
                characterizeTrace(*TRun->Ctx, *TRun->Trace, JCO),
                "characterize determinism leg");
            if (!sameChar(Rep, JR)) {
              std::fprintf(stderr,
                           "bpfree: characterization of %s diverged at "
                           "jobs=%u\n",
                           W.Name.c_str(), Jobs);
              std::exit(1);
            }
          }
          const std::string StorePath = Path + ".char.trace";
          if (std::optional<Diag> D =
                  writeTraceFile(*TRun->Trace, StorePath)) {
            std::fprintf(stderr,
                         "bpfree: persisting %s trace failed: %s\n",
                         W.Name.c_str(), D->render().c_str());
            std::exit(1);
          }
          TraceStoreReader Reader;
          if (std::optional<Diag> D = Reader.open(StorePath)) {
            std::fprintf(stderr,
                         "bpfree: reopening %s trace failed: %s\n",
                         W.Name.c_str(), D->render().c_str());
            std::exit(1);
          }
          CharReport DiskRep = bench::takeOrExit(
              characterizeStore(*TRun->Ctx, Reader, CO),
              "disk characterize");
          std::remove(StorePath.c_str());
          if (!sameChar(Rep, DiskRep)) {
            std::fprintf(stderr,
                         "bpfree: disk characterization of %s diverged "
                         "from resident characterization\n",
                         W.Name.c_str());
            std::exit(1);
          }
        }
      }
      if (R == 0 || Ch.WallMs < BestChar.WallMs)
        BestChar = Ch;
    }
    std::fprintf(stderr, "  [phase] %-22s %10.1f ms\n",
                 BestChar.Name.c_str(), BestChar.WallMs);
    Phases.push_back(BestChar);
  }

  timePhase("compile", 0, [&](Phase &P) {
    for (const Workload &W : Suite) {
      auto M = minic::compile(W.Source);
      if (!M) {
        std::fprintf(stderr, "bpfree: %s failed to compile: %s\n",
                     W.Name.c_str(), M.error().render().c_str());
        std::exit(1);
      }
      benchmark::DoNotOptimize(*M);
      ++P.Items;
    }
  });

  std::vector<std::unique_ptr<ir::Module>> Modules;
  for (const Workload &W : Suite)
    Modules.push_back(minic::compileOrDie(W.Source));
  timePhase("analyze", 0, [&](Phase &P) {
    for (const auto &M : Modules) {
      PredictionContext Ctx(*M);
      benchmark::DoNotOptimize(&Ctx);
      ++P.Items;
    }
  });

  timePhase("stats", 0, [&](Phase &P) {
    for (const auto &Run : Serial.Runs) {
      std::vector<BranchStats> Stats =
          collectBranchStats(*Run->Ctx, *Run->Profile, {});
      benchmark::DoNotOptimize(Stats.data());
      ++P.Items;
    }
  });

  timePhase("order_sweep", 0, [&](Phase &P) {
    for (const auto &Run : Serial.Runs) {
      OrderEvaluator Eval(Run->Stats);
      std::vector<double> Rates = Eval.allMissRates();
      benchmark::DoNotOptimize(Rates.data());
      ++P.Items;
    }
  });

  // Mirror every timed phase into the metrics phase log so the manifest
  // (and --check's two-sided phase coverage) sees the same best-rep
  // numbers this report prints. recordPhase is gated on enabled(), so a
  // plain --phases run without --metrics-json pays nothing.
  for (const Phase &P : Phases)
    metrics::recordPhase({P.Name, P.WallMs, P.Items, P.Instructions});

  const Baseline Base;
  auto findPhase = [&](const char *Name) -> const Phase * {
    for (const Phase &P : Phases)
      if (P.Name == Name)
        return &P;
    return nullptr;
  };
  const Phase *SerialPhase = findPhase("suite_profile_serial");
  const Phase *ParallelPhase = findPhase("suite_profile_parallel");
  const Phase *BasePhase = findPhase("ipbc_interp_base");
  const Phase *ObsPhase = findPhase("ipbc_observer");
  const Phase *CapPhase = findPhase("ipbc_trace");
  const Phase *RepPhase = findPhase("ipbc_replay");

  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "bpfree: cannot write %s\n", Path.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"bench\": \"bpfree pipeline phases\",\n");
  std::fprintf(Out, "  \"mode\": \"%s\",\n", Quick ? "quick" : "full");
  std::fprintf(Out, "  \"repetitions\": %d,\n", Reps);
  std::fprintf(Out, "  \"jobs_default\": %u,\n",
               ThreadPool::defaultConcurrency());
  std::fprintf(Out, "  \"suite\": {\"workloads\": %llu},\n",
               static_cast<unsigned long long>(Suite.size()));
  std::fprintf(Out, "  \"phases\": [\n");
  for (size_t I = 0; I < Phases.size(); ++I) {
    const Phase &P = Phases[I];
    std::fprintf(Out, "    {\"name\": \"%s\", \"wall_ms\": %.1f, "
                      "\"items\": %llu",
                 P.Name.c_str(), P.WallMs,
                 static_cast<unsigned long long>(P.Items));
    if (P.Instructions) {
      std::fprintf(Out, ", \"instructions\": %llu, "
                        "\"instr_per_sec\": %.0f",
                   static_cast<unsigned long long>(P.Instructions),
                   static_cast<double>(P.Instructions) /
                       (P.WallMs / 1000.0));
    }
    std::fprintf(Out, "}%s\n", I + 1 == Phases.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out,
               "  \"baseline\": {\"commit\": \"%s\", "
               "\"suite_profile_serial_ms\": %.1f, "
               "\"instructions\": %llu},\n",
               Base.Commit, Base.SuiteProfileMs,
               static_cast<unsigned long long>(Base.Instructions));
  if (BasePhase && ObsPhase && CapPhase && RepPhase &&
      CapPhase->WallMs + RepPhase->WallMs > 0.0) {
    // The headline comparison: the full IPBC panel (all 13 predictors)
    // via capture + replay vs the same panel via the observer pipeline,
    // on bit-identical histograms. Two honest views of the same data:
    //  - "speedup" is end-to-end: (profile run + collector run) vs
    //    (capture run + replay), everything included. Interpretation is
    //    the floor of both pipelines (see interp_base_ms), so this
    //    ratio is bounded near 2x-plus on a one-core host no matter how
    //    cheap replay gets: observer mode interprets twice, trace mode
    //    once.
    //  - "measurement_speedup" subtracts the one un-instrumented
    //    interpretation either methodology must pay to execute the
    //    workloads at all, leaving just the measurement machinery:
    //    observer mode's extra interpretation + online panel evaluation
    //    vs trace mode's capture overhead + replay. This is the
    //    capture-once/replay-many claim proper — what adding predictors
    //    or re-evaluating actually costs.
    const double MeasObs = ObsPhase->WallMs - BasePhase->WallMs;
    const double MeasTrace =
        std::max(0.0, CapPhase->WallMs - BasePhase->WallMs) +
        RepPhase->WallMs;
    std::fprintf(Out,
                 "  \"ipbc\": {\"workloads\": %llu, "
                 "\"interp_base_ms\": %.1f, "
                 "\"observer_ms\": %.1f, \"trace_ms\": %.1f, "
                 "\"replay_ms\": %.1f, "
                 "\"panel_predictors\": %llu, "
                 "\"branch_events\": %llu, \"breaks\": %llu, "
                 "\"histograms_match\": %s, \"speedup\": %.2f, "
                 "\"measurement_speedup\": %.2f},\n",
                 static_cast<unsigned long long>(CapPhase->Items),
                 BasePhase->WallMs, ObsPhase->WallMs, CapPhase->WallMs,
                 RepPhase->WallMs,
                 static_cast<unsigned long long>(
                     CapPhase->Items ? RepPhase->Items / CapPhase->Items
                                     : 0),
                 static_cast<unsigned long long>(IpbcEvents),
                 static_cast<unsigned long long>(IpbcBreaks),
                 IpbcHistsMatch ? "true" : "false",
                 ObsPhase->WallMs /
                     (CapPhase->WallMs + RepPhase->WallMs),
                 MeasTrace > 0.0 ? MeasObs / MeasTrace : 0.0);
  }
  const Phase *DynPhase = findPhase("ipbc_replay_dynamic");
  if (DynPhase && DynPhase->WallMs > 0.0) {
    // Dynamic-zoo headline: the SimpleScalar-style panel replayed from
    // the same captured traces. "deterministic" is structural — a
    // divergence across jobs or sources exits before this report is
    // written, so reaching here means the rep-0 cross-checks passed.
    std::fprintf(Out,
                 "  \"ipbc_dynamic\": {\"workloads\": %llu, "
                 "\"panel_predictors\": %llu, "
                 "\"branch_events\": %llu, \"breaks\": %llu, "
                 "\"replay_ms\": %.1f, \"deterministic\": true},\n",
                 static_cast<unsigned long long>(std::size(TraceSet)),
                 static_cast<unsigned long long>(DynPanelSize),
                 static_cast<unsigned long long>(DynEvents),
                 static_cast<unsigned long long>(DynBreaks),
                 DynPhase->WallMs);
  }
  const Phase *CharPhase = findPhase("ipbc_characterize");
  if (CharPhase && CharPhase->WallMs > 0.0) {
    // Characterization headline: per-site predictability statistics for
    // the same trace set. As with the dynamic zoo, "deterministic" is
    // structural — the rep-0 jobs/source cross-checks and the class
    // conservation check exit before this report is written.
    std::fprintf(Out,
                 "  \"ipbc_characterize\": {\"workloads\": %llu, "
                 "\"branch_events\": %llu, \"sites\": %llu, "
                 "\"h2p_sites\": %llu, "
                 "\"characterize_ms\": %.1f, \"deterministic\": true},\n",
                 static_cast<unsigned long long>(std::size(TraceSet)),
                 static_cast<unsigned long long>(CharEvents),
                 static_cast<unsigned long long>(CharSitesTotal),
                 static_cast<unsigned long long>(CharHardSites),
                 CharPhase->WallMs);
  }
  const Phase *SwPhase = findPhase("interp_switch_unfused");
  const Phase *ThPhase = findPhase("interp_threaded");
  if (SwPhase && ThPhase && ThPhase->WallMs > 0.0) {
    // Threaded-dispatch headline: same workloads, same instruction
    // totals (instructions_match proves it), interleaved legs — the
    // ratio is the interpreter-loop speedup of this PR's dispatch work.
    std::fprintf(Out,
                 "  \"interp_dispatch\": {\"workloads\": %llu, "
                 "\"threaded_available\": %s, "
                 "\"switch_unfused_ms\": %.1f, \"threaded_ms\": %.1f, "
                 "\"instructions\": %llu, \"instructions_match\": %s, "
                 "\"speedup\": %.2f},\n",
                 static_cast<unsigned long long>(ThPhase->Items),
                 threadedDispatchAvailable() ? "true" : "false",
                 SwPhase->WallMs, ThPhase->WallMs,
                 static_cast<unsigned long long>(ThPhase->Instructions),
                 DispatchInstrsMatch ? "true" : "false",
                 ThPhase->WallMs > 0.0 ? SwPhase->WallMs / ThPhase->WallMs
                                       : 0.0);
  }
  if (BestRk[1][0].WallMs > 0.0) {
    // Widened-kernel headline: per-panel-size legacy-vs-wide wall time
    // on bit-identical histograms (rows_match). row_words is the row
    // width the wide kernel selected; the legacy kernel serves 32 lanes
    // from u32 rows and anything larger from its byte matrix.
    std::fprintf(Out,
                 "  \"replay_kernel\": {\"workloads\": %llu, "
                 "\"branch_events\": %llu, \"rows_match\": %s, "
                 "\"simd_path\": \"%s\", \"max_predictors\": %llu, "
                 "\"panels\": [\n",
                 static_cast<unsigned long long>(std::size(TraceSet)),
                 static_cast<unsigned long long>(ReplayEvents),
                 ReplayRowsMatch ? "true" : "false",
                 simd::pathName(replaySimdPath()),
                 static_cast<unsigned long long>(MaxReplayPredictors));
    for (size_t PI = 0; PI < NumReplayPanels; ++PI) {
      const size_t P = ReplayPanels[PI].Predictors;
      std::fprintf(Out,
                   "    {\"predictors\": %llu, \"panel\": \"%s\", "
                   "\"row_words\": %llu, "
                   "\"narrow_ms\": %.1f, \"wide_ms\": %.1f, "
                   "\"speedup\": %.2f}%s\n",
                   static_cast<unsigned long long>(P),
                   ReplayPanels[PI].Sweep ? "sweep" : "cycled",
                   static_cast<unsigned long long>(P <= 64 ? 1 : 2),
                   BestRk[0][PI].WallMs, BestRk[1][PI].WallMs,
                   BestRk[1][PI].WallMs > 0.0
                       ? BestRk[0][PI].WallMs / BestRk[1][PI].WallMs
                       : 0.0,
                   PI + 1 == NumReplayPanels ? "" : ",");
    }
    std::fprintf(Out, "  ]},\n");
  }
  if (SerialPhase && ParallelPhase && ParallelPhase->WallMs > 0.0)
    std::fprintf(Out, "  \"suite_parallel_speedup\": %.2f,\n",
                 SerialPhase->WallMs / ParallelPhase->WallMs);
  if (SerialPhase && SerialPhase->WallMs > 0.0) {
    std::fprintf(Out, "  \"speedup_vs_baseline\": %.2f,\n",
                 Base.SuiteProfileMs / SerialPhase->WallMs);
    std::fprintf(Out, "  \"work_matches_baseline\": %s\n",
                 SerialPhase->Instructions == Base.Instructions ? "true"
                                                                : "false");
  } else {
    std::fprintf(Out, "  \"speedup_vs_baseline\": null\n");
  }
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  std::fprintf(stderr, "  [phase] report written to %s\n", Path.c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// --check: manifest regression gate
//===----------------------------------------------------------------------===//

/// Diffs a candidate run manifest against a committed baseline manifest
/// with tolerance bands (support/Manifest.h). The candidate comes from
/// `--check-input <manifest.json>` when given (e.g. the manifest the CI
/// phase run just wrote), otherwise a fresh quick phase run is measured
/// on the spot. `--perturb <factor>` scales the candidate's timings
/// before the diff — the injection hook proving the gate actually trips
/// on a regression. Exit status is the gate: 0 passes, nonzero fails.
int runCheck(const std::string &BaselinePath, const std::string &InputPath,
             const std::string &PhasePath, bool Quick, double WallTol,
             double InstrTol, double Perturb) {
  Manifest Candidate;
  if (!InputPath.empty()) {
    Candidate = bench::takeOrExit(readManifest(InputPath),
                                  "reading --check-input manifest");
  } else {
    metrics::setEnabled(true);
    metrics::resetAll();
    if (int RC = runPhases(PhasePath, Quick))
      return RC;
    Candidate = collectManifest("bench_perf", Quick ? "quick" : "full");
  }
  if (Perturb != 1.0) {
    std::fprintf(stderr,
                 "  [check] perturbing candidate timings by %.2fx\n",
                 Perturb);
    perturbManifestTimings(Candidate, Perturb);
  }
  Manifest Base = bench::takeOrExit(readManifest(BaselinePath),
                                    "reading --check baseline manifest");
  CheckTolerance Tol;
  if (WallTol > 0.0)
    Tol.WallSlowdown = WallTol;
  if (InstrTol > 0.0)
    Tol.InstrRatio = InstrTol;
  CheckResult Result = checkManifests(Candidate, Base, Tol);
  if (!Result.ok()) {
    std::fprintf(stderr,
                 "bpfree: regression check FAILED against %s "
                 "(%zu failure%s):\n%s",
                 BaselinePath.c_str(), Result.Failures.size(),
                 Result.Failures.size() == 1 ? "" : "s",
                 Result.render().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "bpfree: regression check passed against %s "
               "(%zu workloads, wall tolerance %.2fx, instr band %.3f)\n",
               BaselinePath.c_str(), Candidate.Workloads.size(),
               Tol.WallSlowdown, Tol.InstrRatio);
  return 0;
}

} // namespace

// BENCHMARK_MAIN with a --phases / --quick / --check escape hatch in
// front: those flags divert into the JSON phase harness or the manifest
// regression gate instead of google-benchmark. MetricsSession consumes
// --metrics-json/--time-trace first, so every mode can emit a manifest.
int main(int argc, char **argv) {
  bench::MetricsSession Session(argc, argv, "bench_perf", "micro");
  std::string Path = "BENCH_PR8.json";
  bool Phases = false, Quick = false;
  std::string CheckBaseline, CheckInput;
  double WallTol = 0.0, InstrTol = 0.0, Perturb = 1.0;
  std::vector<char *> Rest{argv[0]};
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto nextArg = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "bpfree: %s requires an argument\n",
                     A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--phases") {
      Phases = true;
    } else if (A.rfind("--phases=", 0) == 0) {
      Phases = true;
      Path = A.substr(9);
    } else if (A == "--quick") {
      Phases = true;
      Quick = true;
    } else if (A == "--check") {
      CheckBaseline = nextArg();
    } else if (A == "--check-input") {
      CheckInput = nextArg();
    } else if (A == "--check-tolerance") {
      WallTol = std::atof(nextArg());
    } else if (A == "--check-instr-tolerance") {
      InstrTol = std::atof(nextArg());
    } else if (A == "--perturb") {
      Perturb = std::atof(nextArg());
    } else {
      Rest.push_back(argv[I]);
    }
  }
  if (!CheckBaseline.empty()) {
    // A fresh check run (no --check-input) measures the quick phase set
    // unless --phases asked for the full one; its report goes to a
    // separate default path so it never clobbers a real phase report.
    Session.setConfig("check");
    return runCheck(CheckBaseline, CheckInput,
                    Phases ? Path : "BENCH_CHECK.json",
                    Phases ? Quick : true, WallTol, InstrTol, Perturb);
  }
  if (Session.metricsRequested() && !Phases) {
    // A manifest was requested without choosing a mode: run the quick
    // phase harness, the mode whose manifest covers the whole suite.
    Phases = Quick = true;
  }
  if (Phases) {
    Session.setConfig(Quick ? "phases-quick" : "phases-full");
    return runPhases(Path, Quick);
  }

  int RestArgc = static_cast<int>(Rest.size());
  benchmark::Initialize(&RestArgc, Rest.data());
  if (benchmark::ReportUnrecognizedArguments(RestArgc, Rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
