//===- bench/bench_layout.cpp - Code-positioning consumer -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's introduction motivates program-based prediction with
/// the compilers that consume it — Pettis & Hanson's profile-guided
/// code positioning above all. This bench closes that loop: lay out
/// each workload's blocks three ways and measure the dynamic
/// fall-through rate (fraction of control transfers that reach the
/// next block in the layout — on a machine predicting forward branches
/// not-taken, higher is directly cheaper):
///
///   * original   — codegen emission order,
///   * heuristic  — chains grown along Ball-Larus predictions
///                  (profile-free!),
///   * profile    — chains grown along the perfect predictor
///                  (the Pettis-Hanson upper bound).
///
/// The claim to check: profile-free layout recovers most of the gap
/// between the original order and profile-guided positioning.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "predict/Layout.h"
#include "support/Statistics.h"

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_layout");
  (void)argc;
  (void)argv;
  banner("Code positioning with program-based predictions",
         "Dynamic fall-through rate per layout; higher is better.");

  TablePrinter T({"Program", "Original", "Heuristic layout",
                  "Profile layout", "Gap recovered"});
  RunningStat OrigStat, HeurStat, PerfStat, Recovered;

  for (const Workload &W : workloadSuite()) {
    std::fprintf(stderr, "  [layout] %s...\n", W.Name.c_str());
    auto Run = runWorkloadOrExit(W, 0);
    PerfectPredictor Perfect(*Run->Profile);
    BallLarusPredictor Heuristic(*Run->Ctx);

    double Orig =
        evaluateOriginalLayout(*Run->M, *Run->Profile).fallthroughRate();
    double Heur = evaluateModuleLayout(*Run->M, Heuristic, *Run->Profile)
                      .fallthroughRate();
    double Perf = evaluateModuleLayout(*Run->M, Perfect, *Run->Profile)
                      .fallthroughRate();
    double Gap = Perf - Orig;
    double Rec = Gap > 1e-9 ? (Heur - Orig) / Gap : 1.0;

    T.addRow({W.Name, pct(Orig), pct(Heur), pct(Perf),
              pct(std::max(0.0, Rec))});
    OrigStat.add(Orig);
    HeurStat.add(Heur);
    PerfStat.add(Perf);
    Recovered.add(std::max(0.0, Rec));
  }
  T.addSeparator();
  T.addRow({"MEAN", pct(OrigStat.mean()), pct(HeurStat.mean()),
            pct(PerfStat.mean()), pct(Recovered.mean())});
  T.print(std::cout);

  std::cout << "\nInterpretation: 'Gap recovered' is how much of the "
               "profile-guided improvement the profile-free layout "
               "achieves — the paper's thesis (program-based prediction "
               "is a usable substitute for profiles) applied to its "
               "flagship consumer.\n";
  return 0;
}
