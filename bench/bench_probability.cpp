//===- bench/bench_probability.cpp - Wu-Larus evidence combination --------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment: the sequel paper (Wu & Larus, MICRO 1994)
/// replaced the first-match priority order with Dempster-Shafer
/// evidence combination, producing branch *probabilities*. This bench
/// compares, over the suite:
///
///   * miss rates: Ball-Larus first-match vs Wu-Larus combination
///     (with paper priors and with priors calibrated on each program),
///   * probability quality: execution-weighted Brier scores for the
///     coin baseline, Wu-Larus, and the per-branch empirical oracle,
///   * a reliability table (predicted taken-probability deciles vs
///     empirical taken fraction).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "predict/Probability.h"
#include "support/Statistics.h"

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_probability");
  (void)argc;
  (void)argv;
  banner("Wu-Larus evidence combination (MICRO 1994 sequel)",
         "First-match priority vs Dempster-Shafer probabilities.");

  auto Runs = runSuiteVerbose();

  TablePrinter T({"Program", "BallLarus", "WuLarus(paper)",
                  "WuLarus(calib)", "Brier WL", "Brier coin=0.25"});
  RunningStat BLStat, WLPaperStat, WLCalStat, BrierStat;

  // Global reliability accumulation (suite-wide).
  std::array<long double, 10> PredSum{};
  std::array<uint64_t, 10> TakenSum{}, ExecSum{};

  for (const auto &Run : Runs) {
    BallLarusPredictor BL(*Run->Ctx);
    WuLarusPredictor WLPaper(*Run->Ctx);
    HeuristicPriors Calibrated = HeuristicPriors::measured(Run->Stats);
    WuLarusPredictor WLCal(*Run->Ctx, Calibrated);

    double BLMiss = evaluatePredictor(BL, Run->Stats).rate();
    double WLPaperMiss = evaluatePredictor(WLPaper, Run->Stats).rate();
    double WLCalMiss = evaluatePredictor(WLCal, Run->Stats).rate();
    CalibrationReport Rep =
        calibrate(Run->Stats, [&](const BranchStats &S) {
          return takenProbability(S, Calibrated);
        });

    T.addRow({Run->W->Name, pct(BLMiss), pct(WLPaperMiss), pct(WLCalMiss),
              TablePrinter::formatDouble(Rep.Brier, 3), ""});
    BLStat.add(BLMiss);
    WLPaperStat.add(WLPaperMiss);
    WLCalStat.add(WLCalMiss);
    BrierStat.add(Rep.Brier);

    for (const BranchStats &S : Run->Stats) {
      uint64_t Execs = S.total();
      if (Execs == 0)
        continue;
      double P = takenProbability(S, Calibrated);
      size_t B = P >= 1.0 ? 9 : static_cast<size_t>(P * 10.0);
      PredSum[B] += static_cast<long double>(P) * Execs;
      TakenSum[B] += S.Taken;
      ExecSum[B] += Execs;
    }
  }
  T.addSeparator();
  T.addRow({"MEAN", pct(BLStat.mean()), pct(WLPaperStat.mean()),
            pct(WLCalStat.mean()),
            TablePrinter::formatDouble(BrierStat.mean(), 3), "0.250"});
  T.print(std::cout);

  std::cout << "\nSuite-wide reliability of the calibrated Wu-Larus "
               "probabilities (perfect calibration: predicted == "
               "empirical):\n";
  TablePrinter R({"P(taken) decile", "Executions", "Mean predicted",
                  "Empirical taken"});
  for (size_t B = 0; B < 10; ++B) {
    if (ExecSum[B] == 0)
      continue;
    double MeanP = static_cast<double>(
        PredSum[B] / static_cast<long double>(ExecSum[B]));
    double Emp = static_cast<double>(TakenSum[B]) /
                 static_cast<double>(ExecSum[B]);
    R.addRow({TablePrinter::formatDouble(B * 0.1, 1) + "-" +
                  TablePrinter::formatDouble(B * 0.1 + 0.1, 1),
              std::to_string(ExecSum[B]), pct(MeanP) + "%",
              pct(Emp) + "%"});
  }
  R.print(std::cout);

  std::cout << "\nExpected shape (Wu & Larus 1994): evidence combination "
               "matches or slightly beats the fixed priority order, and "
               "the probabilities are informative (Brier well below the "
               "0.25 coin) and roughly calibrated — extreme deciles "
               "less so, since D-S combination overstates confidence "
               "when heuristics correlate.\n";
  return 0;
}
