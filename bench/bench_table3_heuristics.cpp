//===- bench/bench_table3_heuristics.cpp - Reproduce Table 3 --------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 3: each heuristic applied in isolation to the non-loop
/// branches. Per benchmark and heuristic: dynamic coverage (bold in
/// the paper) and miss/perfect rates on the covered branches. Entries
/// under 1% coverage are blank and excluded from the means, as in the
/// paper. Also prints the Pointer-heuristic GP-filter ablation
/// (DESIGN.md §6).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Statistics.h"

using namespace bpfree;
using namespace bpfree::bench;

namespace {

void printIsolationTable(
    const std::vector<std::unique_ptr<WorkloadRun>> &Runs) {
  std::vector<std::string> Headers = {"Program", "NL%"};
  for (HeuristicKind K : AllHeuristics)
    Headers.push_back(heuristicName(K));
  TablePrinter T(Headers);

  std::vector<RunningStat> MissStats(NumHeuristics), PrfStats(NumHeuristics),
      CovStats(NumHeuristics);

  bool PrintedFpSeparator = false;
  for (const auto &Run : Runs) {
    LoopNonLoopBreakdown B = computeLoopNonLoopBreakdown(Run->Stats);
    auto Isolation = computeHeuristicIsolation(Run->Stats);
    if (Run->W->FloatingPoint && !PrintedFpSeparator) {
      T.addSeparator();
      PrintedFpSeparator = true;
    }
    std::vector<std::string> Row = {Run->W->Name, pct(B.nonLoopFraction())};
    for (size_t H = 0; H < Isolation.size(); ++H) {
      const HeuristicIsolation &I = Isolation[H];
      if (I.coverage() < 0.01) {
        Row.push_back(""); // blank, like the paper
        continue;
      }
      Row.push_back(pct(I.coverage()) + "% " +
                    missPair(I.Miss, I.PerfectMiss));
      CovStats[H].add(I.coverage());
      MissStats[H].add(I.Miss.rate());
      PrfStats[H].add(I.PerfectMiss.rate());
    }
    T.addRow(Row);
  }
  T.addSeparator();
  std::vector<std::string> MeanRow = {"MEAN", ""};
  std::vector<std::string> DevRow = {"Std.Dev.", ""};
  for (size_t H = 0; H < NumHeuristics; ++H) {
    MeanRow.push_back(TablePrinter::formatMissPair(MissStats[H].mean(),
                                                   PrfStats[H].mean()));
    DevRow.push_back(TablePrinter::formatMissPair(MissStats[H].stddev(),
                                                  PrfStats[H].stddev()));
  }
  T.addRow(MeanRow);
  T.addRow(DevRow);
  T.print(std::cout);
}

} // namespace

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_table3_heuristics");
  (void)argc;
  (void)argv;
  banner("Table 3 — heuristics in isolation",
         "Per cell: coverage% then miss/perfect on covered non-loop "
         "branches. Blank = under 1% coverage (excluded from means).");

  auto Runs = runSuiteVerbose();
  printIsolationTable(Runs);

  std::cout << "\nPaper reference MEAN row: Opcode 16/4, Loop 25/4, "
               "Call 22/6, Return 28/4, Guard 38/8, Store 45/8, "
               "Point 41/10.\n";

  // Ablation: pointer heuristic without the GP filter (the paper's
  // refinement excludes GP-relative loads; turning it off lets global
  // scalar compares masquerade as pointer tests).
  std::cout << "\n--- Ablation: Pointer heuristic without the GP filter "
               "---\n";
  HeuristicConfig NoFilter;
  NoFilter.PointerGpFilter = false;
  TablePrinter A({"Program", "Point (GP filter)", "Point (no filter)"});
  for (const auto &Run : Runs) {
    auto Base = computeHeuristicIsolation(Run->Stats);
    auto Alt = computeHeuristicIsolation(
        collectBranchStats(*Run->Ctx, *Run->Profile, NoFilter));
    const auto &BP = Base[static_cast<size_t>(HeuristicKind::Pointer)];
    const auto &AP = Alt[static_cast<size_t>(HeuristicKind::Pointer)];
    auto Cell = [](const HeuristicIsolation &I) {
      if (I.coverage() < 0.01)
        return std::string("-");
      return pct(I.coverage()) + "% " +
             TablePrinter::formatMissPair(I.Miss.rate(),
                                          I.PerfectMiss.rate());
    };
    A.addRow({Run->W->Name, Cell(BP), Cell(AP)});
  }
  A.print(std::cout);

  // Extension: the type-aware pointer heuristic (paper Section 4.3:
  // "could easily be improved by incorporating type information").
  std::cout << "\n--- Extension: type-annotated Pointer heuristic ---\n";
  HeuristicConfig Typed;
  Typed.PointerUseTypeInfo = true;
  TablePrinter X({"Program", "Point (pattern)", "Point (typed)"});
  for (const auto &Run : Runs) {
    auto Base = computeHeuristicIsolation(Run->Stats);
    auto Alt = computeHeuristicIsolation(
        collectBranchStats(*Run->Ctx, *Run->Profile, Typed));
    const auto &BP = Base[static_cast<size_t>(HeuristicKind::Pointer)];
    const auto &AP = Alt[static_cast<size_t>(HeuristicKind::Pointer)];
    auto Cell = [](const HeuristicIsolation &I) {
      if (I.coverage() < 0.01)
        return std::string("-");
      return pct(I.coverage()) + "% " +
             TablePrinter::formatMissPair(I.Miss.rate(),
                                          I.PerfectMiss.rate());
    };
    X.addRow({Run->W->Name, Cell(BP), Cell(AP)});
  }
  X.print(std::cout);
  return 0;
}
