//===- bench/bench_graph1_orderings.cpp - Reproduce Graph 1 ---------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph 1: average non-loop miss rate of every one of the 7! = 5040
/// heuristic priority orders, sorted by miss rate. As in the paper,
/// matmul300 (matrix300) is excluded — "the least interesting of the
/// benchmarks in terms of non-loop branch prediction". Prints the
/// sorted curve sampled at regular intervals, the best/worst orders,
/// and where the paper's published order lands.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "predict/Ordering.h"

#include <algorithm>

using namespace bpfree;
using namespace bpfree::bench;

int main(int argc, char **argv) {
  bpfree::bench::MetricsSession Session(argc, argv, "bench_graph1_orderings");
  (void)argc;
  (void)argv;
  banner("Graph 1 — miss rate of all 5040 heuristic orders",
         "Average non-loop miss rate per order (matmul300 excluded), "
         "sorted ascending.");

  SuiteCache Cache;

  std::vector<std::vector<double>> PerBench;
  for (const auto &Run : Cache.runs()) {
    if (Run->W->Name == "matmul300")
      continue;
    OrderEvaluator Eval(Run->Stats);
    PerBench.push_back(Eval.allMissRates());
  }

  std::vector<double> Avg(NumOrders, 0.0);
  for (const auto &V : PerBench)
    for (size_t O = 0; O < NumOrders; ++O)
      Avg[O] += V[O];
  for (double &A : Avg)
    A /= static_cast<double>(PerBench.size());

  std::vector<size_t> Sorted(NumOrders);
  for (size_t I = 0; I < NumOrders; ++I)
    Sorted[I] = I;
  std::sort(Sorted.begin(), Sorted.end(),
            [&](size_t A, size_t B) { return Avg[A] < Avg[B]; });

  // The sorted curve, sampled every 252 orders (20 samples) with a
  // crude ASCII profile.
  double Best = Avg[Sorted.front()], Worst = Avg[Sorted.back()];
  TablePrinter T({"Rank", "Miss%", "Profile"});
  for (size_t I = 0; I < NumOrders; I += 252) {
    double V = Avg[Sorted[I]];
    size_t Bar =
        Worst > Best
            ? static_cast<size_t>((V - Best) / (Worst - Best) * 40.0)
            : 0;
    T.addRow({std::to_string(I), pct(V), std::string(Bar, '#')});
  }
  T.addRow({std::to_string(NumOrders - 1), pct(Worst),
            std::string(40, '#')});
  T.print(std::cout);

  const auto &Orders = allOrders();
  std::cout << "\nBest order:  " << orderToString(Orders[Sorted.front()])
            << "  (" << pct(Best) << "%)\n";
  std::cout << "Worst order: " << orderToString(Orders[Sorted.back()])
            << "  (" << pct(Worst) << "%)\n";

  // Where does the paper's published order land?
  std::string Paper = orderToString(paperOrder());
  for (size_t Rank = 0; Rank < NumOrders; ++Rank) {
    if (orderToString(Orders[Sorted[Rank]]) == Paper) {
      std::cout << "Paper order " << Paper << ": rank " << Rank << " of "
                << NumOrders << " (" << pct(Avg[Sorted[Rank]]) << "%)\n";
      break;
    }
  }
  std::cout << "\nPaper reference: the sorted curve spans roughly 25% to "
               "36% with a long flat region — the best orders cluster "
               "tightly.\n";
  return 0;
}
