//===- workloads/Workloads.cpp - The benchmark suite registry -------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/Rng.h"
#include "workloads/suite/Suites.h"

using namespace bpfree;

const std::vector<Workload> &bpfree::workloadSuite() {
  static const std::vector<Workload> Suite = [] {
    std::vector<Workload> S;
    // Integer/pointer group first, FP group second — the paper's
    // Table 1 layout.
    suite::addPointerSuite(S);
    suite::addIntegerSuite(S);
    suite::addTextSuite(S);
    suite::addExtraSuite(S);
    suite::addAdversarialSuite(S);
    suite::addFloatSuite(S);
    return S;
  }();
  return Suite;
}

const Workload *bpfree::findWorkload(const std::string &Name) {
  for (const Workload &W : workloadSuite())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

std::vector<uint8_t> suite::synthText(uint64_t Seed, size_t Bytes) {
  Rng R(Seed * 0x9E3779B97F4A7C15ULL + 17);

  // Build a fixed vocabulary, then sample it with a Zipf-like skew so
  // the text repeats words the way natural language does (word-count
  // and hash-table workloads depend on hit-dominated lookups).
  constexpr size_t VocabSize = 900;
  std::vector<std::string> Vocab;
  Vocab.reserve(VocabSize);
  // A few real high-frequency words first, so literal search patterns
  // ("the", "ation") have genuine hits in the synthetic text.
  for (const char *Common : {"the", "and", "for", "that", "with", "this",
                             "nation", "station", "creation", "other"})
    Vocab.push_back(Common);
  static const char Alphabet[] = "etaoinshrdlucmfwypvbgkqjxz";
  while (Vocab.size() < VocabSize) {
    size_t WordLen = 1 + R.below(3) + R.below(4) + R.below(4);
    std::string Word;
    for (size_t I = 0; I < WordLen; ++I) {
      size_t Idx = R.below(26);
      Idx = Idx < 13 ? Idx / 2 : Idx; // skew toward frequent letters
      Word += Alphabet[Idx];
    }
    Vocab.push_back(Word);
  }

  std::vector<uint8_t> Out;
  Out.reserve(Bytes);
  size_t LineLen = 0;
  while (Out.size() < Bytes) {
    // Zipf-ish rank: squaring the uniform sample concentrates mass on
    // low ranks (common words).
    double U = R.unit();
    size_t Rank = static_cast<size_t>(U * U * U * VocabSize);
    const std::string &Word = Vocab[Rank % VocabSize];
    for (char C : Word) {
      if (Out.size() >= Bytes)
        break;
      Out.push_back(static_cast<uint8_t>(C));
    }
    LineLen += Word.size();
    if (Out.size() >= Bytes)
      break;
    if (R.chance(0.05))
      Out.push_back(static_cast<uint8_t>('0' + R.below(10)));
    if (R.chance(0.08))
      Out.push_back('.');
    if (LineLen > 50 + R.below(20)) {
      Out.push_back('\n');
      LineLen = 0;
    } else {
      Out.push_back(' ');
    }
  }
  if (!Out.empty())
    Out.back() = '\n';
  return Out;
}

std::vector<uint8_t> suite::synthNoise(uint64_t Seed, size_t Bytes) {
  Rng R(Seed * 0x94D049BB133111EBULL + 11);
  std::vector<uint8_t> Out;
  Out.reserve(Bytes);
  for (size_t I = 0; I < Bytes; ++I)
    Out.push_back(static_cast<uint8_t>(R.below(256)));
  return Out;
}

std::vector<uint8_t> suite::synthBytes(uint64_t Seed, size_t Bytes) {
  Rng R(Seed * 0xBF58476D1CE4E5B9ULL + 3);
  std::vector<uint8_t> Out;
  Out.reserve(Bytes);
  // Mix runs (compressible) with noise (incompressible) so compression
  // workloads take both match and literal paths.
  while (Out.size() < Bytes) {
    if (R.chance(0.4)) {
      uint8_t B = static_cast<uint8_t>(R.below(256));
      size_t RunLen = 2 + R.below(30);
      for (size_t I = 0; I < RunLen && Out.size() < Bytes; ++I)
        Out.push_back(B);
    } else {
      size_t NoiseLen = 1 + R.below(12);
      for (size_t I = 0; I < NoiseLen && Out.size() < Bytes; ++I)
        Out.push_back(static_cast<uint8_t>(R.below(256)));
    }
  }
  return Out;
}
