//===- workloads/Driver.cpp - Compile-run-profile-evaluate driver ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Driver.h"

#include "frontend/Compiler.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/TimeTrace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace bpfree;

std::string WorkloadFailure::render() const {
  std::string S = "workload '" + Workload + "'";
  if (!Dataset.empty())
    S += " dataset '" + Dataset + "'";
  S += " failed: [" + std::string(errorKindName(Kind)) + "] " + Message;
  if (Trap)
    S += "\n  " + Trap->render();
  return S;
}

namespace {

/// Fills one metrics::RunRecord from whatever the driver produced —
/// called for successes and failures alike, so the manifest's workload
/// list covers every attempt. Gated inside recordRun(), so unobserved
/// runs pay only the enabled() check made by the caller.
void recordWorkloadRun(const Workload &W, size_t DatasetIndex,
                       const RunOptions &Opts, bool Ok,
                       const WorkloadRun *Run,
                       const WorkloadFailure &Failure, double WallMs) {
  metrics::RunRecord Rec;
  Rec.Workload = W.Name;
  Rec.Dataset = DatasetIndex < W.Datasets.size()
                    ? W.Datasets[DatasetIndex].Name
                    : "";
  Rec.Ok = Ok;
  if (!Ok)
    Rec.Error =
        "[" + std::string(errorKindName(Failure.Kind)) + "] " +
        Failure.Message;
  Rec.WallMs = WallMs;
  Rec.CostHint = Opts.CostHint;
  Rec.DispatchOrder = Opts.DispatchOrder;
  if (Run) {
    Rec.Instructions = Run->Result.InstrCount;
    if (Run->Profile) {
      // Replicate the combined predictor's decision per site from the
      // collected stats (loop predictor, then the paper-order cascade,
      // then the random default — BallLarusPredictor's exact procedure)
      // to charge each site its mispredicts; the worst site's flat
      // index becomes the manifest's hotspot pointer into the explain
      // report. First site wins ties, and stats are in flat-index
      // order, so the choice is deterministic.
      const std::vector<uint32_t> Offsets = flatBlockOffsets(*Run->M);
      uint64_t WorstMisses = 0;
      for (const BranchStats &S : Run->Stats) {
        Rec.BranchExecs += S.Taken + S.Fallthru;
        Direction D = S.RandomDir;
        if (S.IsLoopBranch) {
          D = S.LoopDir;
        } else {
          for (HeuristicKind K : paperOrder())
            if (S.heuristicApplies(K)) {
              D = S.heuristicDir(K);
              break;
            }
        }
        const uint64_t Misses = S.missesFor(D);
        Rec.Mispredicts += Misses;
        if (Misses > WorstMisses) {
          WorstMisses = Misses;
          Rec.HotspotBranch =
              Offsets[S.BB->getParent()->getIndex()] + S.BB->getId();
        }
      }
    }
    if (Run->Trace) {
      Rec.TraceEvents = Run->Trace->numEvents();
      Rec.TraceDropped = Run->Trace->droppedEvents();
      Rec.TraceOverflowed = Run->Trace->overflowed();
      if (!Rec.BranchExecs)
        Rec.BranchExecs =
            Run->Trace->numEvents() + Run->Trace->droppedEvents();
    }
  }
  metrics::recordRun(std::move(Rec));
}

} // namespace

std::unique_ptr<WorkloadRun>
bpfree::runWorkloadDetailed(const Workload &W, size_t DatasetIndex,
                            const HeuristicConfig &Config,
                            const RunOptions &Opts,
                            WorkloadFailure &Failure) {
  Failure = WorkloadFailure();
  Failure.Workload = W.Name;

  // Per-workload observability: one span plus one RunRecord per attempt.
  // Sampled once up front — the clock reads bracket compile+run+stats,
  // the granularity manifests report at.
  const bool Observe = metrics::enabled();
  std::chrono::steady_clock::time_point T0;
  if (Observe)
    T0 = std::chrono::steady_clock::now();
  timetrace::Span WorkloadSpan("suite.workload", W.Name);
  auto finish = [&](bool Ok, const WorkloadRun *Run) {
    if (!Observe)
      return;
    const double WallMs =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - T0)
            .count();
    static metrics::Timer &WorkloadTimer =
        metrics::timer("driver.workload");
    WorkloadTimer.addNanos(static_cast<uint64_t>(WallMs * 1e6));
    static metrics::Counter &OkRuns =
        metrics::counter("driver.workloads_ok");
    static metrics::Counter &FailedRuns =
        metrics::counter("driver.workloads_failed");
    (Ok ? OkRuns : FailedRuns).add();
    recordWorkloadRun(W, DatasetIndex, Opts, Ok, Run, Failure, WallMs);
  };

  if (DatasetIndex >= W.Datasets.size()) {
    Failure.Kind = ErrorKind::InvalidArgument;
    Failure.Message = "no dataset " + std::to_string(DatasetIndex) +
                      " (have " + std::to_string(W.Datasets.size()) + ")";
    finish(false, nullptr);
    return nullptr;
  }
  Failure.Dataset = W.Datasets[DatasetIndex].Name;

  auto Run = std::make_unique<WorkloadRun>();
  Run->W = &W;
  Run->DatasetIndex = DatasetIndex;

  Expected<std::unique_ptr<ir::Module>> M = minic::compile(W.Source);
  if (!M) {
    Diag D = M.takeError();
    Failure.Kind = D.Kind;
    Failure.Message = D.render();
    finish(false, nullptr);
    return nullptr;
  }
  Run->M = std::move(*M);
  Run->Ctx = std::make_unique<PredictionContext>(*Run->M);

  std::vector<ExecObserver *> Observers;
  if (Opts.Profile) {
    Run->Profile = std::make_unique<EdgeProfile>(*Run->M);
    Observers.push_back(Run->Profile.get());
  }
  if (Opts.CaptureTrace) {
    Run->Trace = std::make_unique<BranchTrace>(
        *Run->M, Opts.TraceMaxBytes ? Opts.TraceMaxBytes
                                    : BranchTrace::DefaultMaxBytes);
    if (!Opts.TraceSpillPath.empty()) {
      // Opening the store is part of honoring the capture request: if the
      // destination is unwritable the caller should know before paying
      // for the interpretation, so this is a failure, not a warning.
      if (std::optional<Diag> D = Run->Trace->spillTo(Opts.TraceSpillPath)) {
        Failure.Kind = D->Kind;
        Failure.Message = D->render();
        finish(false, nullptr);
        return nullptr;
      }
    }
    Observers.push_back(Run->Trace.get());
  }
  Observers.insert(Observers.end(), Opts.ExtraObservers.begin(),
                   Opts.ExtraObservers.end());

  Interpreter Interp(*Run->M, Opts.Limits);
  Run->Result = Interp.run(W.Datasets[DatasetIndex], Observers);
  if (!Run->Result.ok()) {
    Failure.Kind = Run->Result.errorKind();
    Failure.Message = Run->Result.TrapMessage;
    Failure.Trap = Run->Result.Trap;
    // The record keeps the partial results (instruction count at the
    // fault, trace so far) while still counting as a failure.
    finish(false, Run.get());
    return nullptr;
  }
  if (Run->Trace) {
    Run->Trace->finalize(Run->Result.InstrCount);
    if (Run->Trace->spilling()) {
      if (std::optional<Diag> D = Run->Trace->closeSpill())
        Run->Warnings.push_back("trace store '" + Opts.TraceSpillPath +
                                "' was not sealed: " + D->render());
      else
        Run->TraceFile = Opts.TraceSpillPath;
    }
    if (Run->Trace->overflowed())
      // The run itself is fine — the cap exists to be hit — but anything
      // derived from this trace covers a truncated prefix, so say so
      // where reports can see it, not only in the trace.overflows metric.
      Run->Warnings.push_back(
          "branch trace overflowed its " +
          std::to_string(Opts.TraceMaxBytes ? Opts.TraceMaxBytes
                                            : BranchTrace::DefaultMaxBytes) +
          "-byte cap: " + std::to_string(Run->Trace->droppedEvents()) +
          " events dropped after " +
          std::to_string(Run->Trace->numEvents()) +
          " stored; replay would cover a truncated prefix (raise "
          "TraceMaxBytes or set TraceSpillPath)");
  }

  if (Run->Profile)
    Run->Stats = collectBranchStats(*Run->Ctx, *Run->Profile, Config);
  finish(true, Run.get());
  return Run;
}

Expected<std::unique_ptr<WorkloadRun>>
bpfree::runWorkload(const Workload &W, size_t DatasetIndex,
                    const HeuristicConfig &Config, const RunOptions &Opts) {
  WorkloadFailure Failure;
  std::unique_ptr<WorkloadRun> Run =
      runWorkloadDetailed(W, DatasetIndex, Config, Opts, Failure);
  if (!Run)
    return Diag(Failure.Kind, Failure.render());
  return Run;
}

std::unique_ptr<WorkloadRun>
bpfree::runWorkloadOrExit(const Workload &W, size_t DatasetIndex,
                          const HeuristicConfig &Config,
                          const RunOptions &Opts) {
  Expected<std::unique_ptr<WorkloadRun>> Run =
      runWorkload(W, DatasetIndex, Config, Opts);
  if (!Run) {
    std::fprintf(stderr, "bpfree: %s\n", Run.error().render().c_str());
    std::exit(1);
  }
  return std::move(*Run);
}

const WorkloadFailure *
SuiteReport::failureFor(const std::string &Workload) const {
  for (const WorkloadFailure &F : Failures)
    if (F.Workload == Workload)
      return &F;
  return nullptr;
}

std::string SuiteReport::renderFailures() const {
  std::string S;
  for (const WorkloadFailure &F : Failures)
    S += F.render() + "\n";
  return S;
}

SuiteReport bpfree::runSuite(const HeuristicConfig &Config,
                             const SuiteOptions &Opts) {
  const std::vector<Workload> &Suite = workloadSuite();
  const size_t N = Suite.size();
  const unsigned Jobs =
      Opts.Jobs == 0 ? ThreadPool::defaultConcurrency() : Opts.Jobs;

  // Each workload writes into its own slot, so no two threads ever touch
  // the same state: runWorkloadDetailed builds a private module, context,
  // profile, and Machine per call, and the user callbacks below are the
  // only shared code — serialized under a mutex. Assembling the report
  // from the slots in registry order afterwards makes the output
  // bit-identical to the Jobs=1 loop no matter how the pool interleaves.
  std::vector<std::unique_ptr<WorkloadRun>> Runs(N);
  std::vector<std::optional<WorkloadFailure>> Failures(N);
  std::mutex CallbackMu;

  // LPT (longest-processing-time-first): dispatch the most expensive
  // workloads first, so the long poles overlap with everything else
  // instead of starting last against an otherwise drained pool. Cost
  // comes from the caller's hint (instruction counts from a cached run,
  // typically) or, cold, from the static source size — a rough but
  // monotone-enough proxy. Only the dispatch order changes; slots are
  // still keyed by registry index, so the report is bit-identical.
  std::vector<size_t> Order(N);
  for (size_t I = 0; I < N; ++I)
    Order[I] = I;
  std::vector<uint64_t> Cost(N, 0);
  if (Jobs > 1 && N > 1) {
    for (size_t I = 0; I < N; ++I)
      Cost[I] = Opts.CostHint ? Opts.CostHint(Suite[I], I)
                              : Suite[I].Source.size();
    std::stable_sort(Order.begin(), Order.end(),
                     [&](size_t A, size_t B) { return Cost[A] > Cost[B]; });
  }

  // Suite-level observability: configuration gauges plus one timer
  // interval per suite run; the per-workload records carry the cost hint
  // and queue position each dispatch used, so a manifest shows hinted
  // vs. actual cost side by side.
  metrics::gauge("suite.jobs").set(Jobs);
  metrics::gauge("suite.workloads").set(N);
  static metrics::Timer &SuiteTimer = metrics::timer("driver.suite");
  metrics::ScopedTimer SuiteTime(SuiteTimer);
  timetrace::Span SuiteSpan("suite.run",
                            std::to_string(N) + " workloads, jobs=" +
                                std::to_string(Jobs));

  parallelFor(Jobs, N, [&](size_t K) {
    const size_t I = Order[K];
    const Workload &W = Suite[I];
    RunOptions RO;
    RO.Limits = Opts.Limits;
    RO.CaptureTrace = Opts.CaptureTrace;
    RO.TraceMaxBytes = Opts.TraceMaxBytes;
    RO.CostHint = Cost[I];
    RO.DispatchOrder = Jobs > 1 && N > 1 ? static_cast<int>(K) : -1;
    if (Opts.Progress || Opts.ExtraObservers) {
      std::lock_guard<std::mutex> Lock(CallbackMu);
      if (Opts.Progress)
        Opts.Progress(W, I);
      if (Opts.ExtraObservers)
        RO.ExtraObservers = Opts.ExtraObservers(W);
    }
    WorkloadFailure Failure;
    std::unique_ptr<WorkloadRun> Run =
        runWorkloadDetailed(W, 0, Config, RO, Failure);
    if (Run)
      Runs[I] = std::move(Run);
    else
      Failures[I] = std::move(Failure);
  });

  SuiteReport Report;
  Report.Attempted = N;
  for (size_t I = 0; I < N; ++I) {
    if (Runs[I]) {
      // Surface per-run warnings at the suite level too, in registry
      // order (deterministic regardless of Jobs), and echo them to
      // stderr so a capped capture is visible even when the caller never
      // looks at the report.
      for (const std::string &W : Runs[I]->Warnings) {
        Report.Warnings.push_back("workload '" + Runs[I]->W->Name +
                                  "': " + W);
        std::fprintf(stderr, "bpfree: warning: %s\n",
                     Report.Warnings.back().c_str());
      }
      Report.Runs.push_back(std::move(Runs[I]));
    } else if (Failures[I]) {
      Report.Failures.push_back(std::move(*Failures[I]));
    }
  }
  return Report;
}
