//===- workloads/Driver.cpp - Compile-run-profile-evaluate driver ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Driver.h"

#include "frontend/Compiler.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace bpfree;

std::string WorkloadFailure::render() const {
  std::string S = "workload '" + Workload + "'";
  if (!Dataset.empty())
    S += " dataset '" + Dataset + "'";
  S += " failed: [" + std::string(errorKindName(Kind)) + "] " + Message;
  if (Trap)
    S += "\n  " + Trap->render();
  return S;
}

std::unique_ptr<WorkloadRun>
bpfree::runWorkloadDetailed(const Workload &W, size_t DatasetIndex,
                            const HeuristicConfig &Config,
                            const RunOptions &Opts,
                            WorkloadFailure &Failure) {
  Failure = WorkloadFailure();
  Failure.Workload = W.Name;

  if (DatasetIndex >= W.Datasets.size()) {
    Failure.Kind = ErrorKind::InvalidArgument;
    Failure.Message = "no dataset " + std::to_string(DatasetIndex) +
                      " (have " + std::to_string(W.Datasets.size()) + ")";
    return nullptr;
  }
  Failure.Dataset = W.Datasets[DatasetIndex].Name;

  auto Run = std::make_unique<WorkloadRun>();
  Run->W = &W;
  Run->DatasetIndex = DatasetIndex;

  Expected<std::unique_ptr<ir::Module>> M = minic::compile(W.Source);
  if (!M) {
    Diag D = M.takeError();
    Failure.Kind = D.Kind;
    Failure.Message = D.render();
    return nullptr;
  }
  Run->M = std::move(*M);
  Run->Ctx = std::make_unique<PredictionContext>(*Run->M);

  std::vector<ExecObserver *> Observers;
  if (Opts.Profile) {
    Run->Profile = std::make_unique<EdgeProfile>(*Run->M);
    Observers.push_back(Run->Profile.get());
  }
  if (Opts.CaptureTrace) {
    Run->Trace = std::make_unique<BranchTrace>(*Run->M);
    Observers.push_back(Run->Trace.get());
  }
  Observers.insert(Observers.end(), Opts.ExtraObservers.begin(),
                   Opts.ExtraObservers.end());

  Interpreter Interp(*Run->M, Opts.Limits);
  Run->Result = Interp.run(W.Datasets[DatasetIndex], Observers);
  if (!Run->Result.ok()) {
    Failure.Kind = Run->Result.errorKind();
    Failure.Message = Run->Result.TrapMessage;
    Failure.Trap = Run->Result.Trap;
    return nullptr;
  }
  if (Run->Trace)
    Run->Trace->finalize(Run->Result.InstrCount);

  if (Run->Profile)
    Run->Stats = collectBranchStats(*Run->Ctx, *Run->Profile, Config);
  return Run;
}

Expected<std::unique_ptr<WorkloadRun>>
bpfree::runWorkload(const Workload &W, size_t DatasetIndex,
                    const HeuristicConfig &Config, const RunOptions &Opts) {
  WorkloadFailure Failure;
  std::unique_ptr<WorkloadRun> Run =
      runWorkloadDetailed(W, DatasetIndex, Config, Opts, Failure);
  if (!Run)
    return Diag(Failure.Kind, Failure.render());
  return Run;
}

std::unique_ptr<WorkloadRun>
bpfree::runWorkloadOrExit(const Workload &W, size_t DatasetIndex,
                          const HeuristicConfig &Config,
                          const RunOptions &Opts) {
  Expected<std::unique_ptr<WorkloadRun>> Run =
      runWorkload(W, DatasetIndex, Config, Opts);
  if (!Run) {
    std::fprintf(stderr, "bpfree: %s\n", Run.error().render().c_str());
    std::exit(1);
  }
  return std::move(*Run);
}

const WorkloadFailure *
SuiteReport::failureFor(const std::string &Workload) const {
  for (const WorkloadFailure &F : Failures)
    if (F.Workload == Workload)
      return &F;
  return nullptr;
}

std::string SuiteReport::renderFailures() const {
  std::string S;
  for (const WorkloadFailure &F : Failures)
    S += F.render() + "\n";
  return S;
}

SuiteReport bpfree::runSuite(const HeuristicConfig &Config,
                             const SuiteOptions &Opts) {
  const std::vector<Workload> &Suite = workloadSuite();
  const size_t N = Suite.size();
  const unsigned Jobs =
      Opts.Jobs == 0 ? ThreadPool::defaultConcurrency() : Opts.Jobs;

  // Each workload writes into its own slot, so no two threads ever touch
  // the same state: runWorkloadDetailed builds a private module, context,
  // profile, and Machine per call, and the user callbacks below are the
  // only shared code — serialized under a mutex. Assembling the report
  // from the slots in registry order afterwards makes the output
  // bit-identical to the Jobs=1 loop no matter how the pool interleaves.
  std::vector<std::unique_ptr<WorkloadRun>> Runs(N);
  std::vector<std::optional<WorkloadFailure>> Failures(N);
  std::mutex CallbackMu;

  // LPT (longest-processing-time-first): dispatch the most expensive
  // workloads first, so the long poles overlap with everything else
  // instead of starting last against an otherwise drained pool. Cost
  // comes from the caller's hint (instruction counts from a cached run,
  // typically) or, cold, from the static source size — a rough but
  // monotone-enough proxy. Only the dispatch order changes; slots are
  // still keyed by registry index, so the report is bit-identical.
  std::vector<size_t> Order(N);
  for (size_t I = 0; I < N; ++I)
    Order[I] = I;
  if (Jobs > 1 && N > 1) {
    std::vector<uint64_t> Cost(N);
    for (size_t I = 0; I < N; ++I)
      Cost[I] = Opts.CostHint ? Opts.CostHint(Suite[I], I)
                              : Suite[I].Source.size();
    std::stable_sort(Order.begin(), Order.end(),
                     [&](size_t A, size_t B) { return Cost[A] > Cost[B]; });
  }

  parallelFor(Jobs, N, [&](size_t K) {
    const size_t I = Order[K];
    const Workload &W = Suite[I];
    RunOptions RO;
    RO.Limits = Opts.Limits;
    RO.CaptureTrace = Opts.CaptureTrace;
    if (Opts.Progress || Opts.ExtraObservers) {
      std::lock_guard<std::mutex> Lock(CallbackMu);
      if (Opts.Progress)
        Opts.Progress(W, I);
      if (Opts.ExtraObservers)
        RO.ExtraObservers = Opts.ExtraObservers(W);
    }
    WorkloadFailure Failure;
    std::unique_ptr<WorkloadRun> Run =
        runWorkloadDetailed(W, 0, Config, RO, Failure);
    if (Run)
      Runs[I] = std::move(Run);
    else
      Failures[I] = std::move(Failure);
  });

  SuiteReport Report;
  Report.Attempted = N;
  for (size_t I = 0; I < N; ++I) {
    if (Runs[I])
      Report.Runs.push_back(std::move(Runs[I]));
    else if (Failures[I])
      Report.Failures.push_back(std::move(*Failures[I]));
  }
  return Report;
}
