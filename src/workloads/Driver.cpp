//===- workloads/Driver.cpp - Compile-run-profile-evaluate driver ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Driver.h"

#include "frontend/Compiler.h"
#include "support/Error.h"

using namespace bpfree;

std::unique_ptr<WorkloadRun>
bpfree::runWorkload(const Workload &W, size_t DatasetIndex,
                    const HeuristicConfig &Config) {
  if (DatasetIndex >= W.Datasets.size())
    reportFatalError("workload '" + W.Name + "' has no dataset " +
                     std::to_string(DatasetIndex));

  auto Run = std::make_unique<WorkloadRun>();
  Run->W = &W;
  Run->DatasetIndex = DatasetIndex;
  Run->M = minic::compileOrDie(W.Source);
  Run->Ctx = std::make_unique<PredictionContext>(*Run->M);
  Run->Profile = std::make_unique<EdgeProfile>(*Run->M);

  Interpreter Interp(*Run->M);
  Run->Result = Interp.run(W.Datasets[DatasetIndex], {Run->Profile.get()});
  if (!Run->Result.ok())
    reportFatalError("workload '" + W.Name + "' dataset '" +
                     W.Datasets[DatasetIndex].Name +
                     "' failed: " + Run->Result.TrapMessage);

  Run->Stats = collectBranchStats(*Run->Ctx, *Run->Profile, Config);
  return Run;
}

std::vector<std::unique_ptr<WorkloadRun>>
bpfree::runSuite(const HeuristicConfig &Config) {
  std::vector<std::unique_ptr<WorkloadRun>> Runs;
  for (const Workload &W : workloadSuite())
    Runs.push_back(runWorkload(W, 0, Config));
  return Runs;
}
