//===- workloads/Runtime.h - Shared MiniC runtime library ------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small runtime library written in MiniC and appended to every
/// workload's source. It plays the role of the DEC Ultrix library
/// procedures in the paper's measurements: "The numbers in this paper
/// include DEC Ultrix 4.2 library procedures as well as application
/// procedures" — our predictor analyzes these branches too.
///
/// Provided routines (all prefixed to avoid collisions):
///   rt_srand/rt_rand/rt_rand_range  deterministic LCG
///   str_len/str_cmp/str_copy        C-string helpers
///   mem_set/mem_copy                byte-block helpers
///   i_abs/i_min/i_max               integer math
///   d_abs/d_sqrt/d_floor            double math (sqrt via Newton)
///   print_nl/print_spc              output sugar
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_WORKLOADS_RUNTIME_H
#define BPFREE_WORKLOADS_RUNTIME_H

#include <string>

namespace bpfree {

/// \returns the MiniC source of the runtime library.
const std::string &runtimeSource();

/// \returns \p Body with the runtime library appended.
std::string withRuntime(const std::string &Body);

} // namespace bpfree

#endif // BPFREE_WORKLOADS_RUNTIME_H
