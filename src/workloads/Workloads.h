//===- workloads/Workloads.h - The benchmark suite --------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload suite standing in for the paper's 23 C/Fortran
/// benchmarks (Table 1). Each workload is a MiniC program plus a set of
/// deterministic datasets; the registry exposes them to tests, benches,
/// and examples. Programs are written to exercise the same branch
/// idioms the paper attributes to its benchmarks: pointer-chasing with
/// null guards, error-code checks against negative values, conditional
/// calls for exceptional cases, loop-heavy FP kernels, and so on.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_WORKLOADS_WORKLOADS_H
#define BPFREE_WORKLOADS_WORKLOADS_H

#include "vm/Dataset.h"

#include <string>
#include <vector>

namespace bpfree {

/// One benchmark: a named MiniC source plus its input datasets.
/// Dataset 0 is the "reference" input used for the single-execution
/// tables; the rest feed the Graph-13 cross-dataset experiment.
struct Workload {
  std::string Name;
  std::string Description; ///< one line, as in the paper's Table 1
  bool FloatingPoint;      ///< second (Fortran-like) group when true
  std::string Source;      ///< MiniC program text
  std::vector<Dataset> Datasets;
};

/// The full suite, integer/pointer programs first, FP programs second
/// (the paper's Table 1 grouping). Built once; subsequent calls return
/// the same registry.
const std::vector<Workload> &workloadSuite();

/// \returns the workload named \p Name, or nullptr.
const Workload *findWorkload(const std::string &Name);

} // namespace bpfree

#endif // BPFREE_WORKLOADS_WORKLOADS_H
