//===- workloads/Runtime.cpp - Shared MiniC runtime library ---------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Runtime.h"

using namespace bpfree;

const std::string &bpfree::runtimeSource() {
  static const std::string Source = R"MC(
/* ---- bpfree MiniC runtime (the suite's "libc") ---- */

int rt_state = 88172645463325252;

void rt_srand(int s) {
  rt_state = s * 2654435761 + 1;
  if (rt_state == 0) {
    rt_state = 88172645463325252;
  }
}

/* Deterministic LCG; returns a value in [0, 2^30). */
int rt_rand() {
  rt_state = rt_state * 6364136223846793005 + 1442695040888963407;
  return (rt_state >> 33) & 1073741823;
}

/* Uniform value in [0, n); n must be positive. */
int rt_rand_range(int n) {
  if (n <= 0) {
    trap();
  }
  return rt_rand() % n;
}

int str_len(char *s) {
  int n = 0;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

int str_cmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) {
    i = i + 1;
  }
  return a[i] - b[i];
}

void str_copy(char *dst, char *src) {
  int i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
}

void mem_set(char *p, int v, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    p[i] = v;
  }
}

void mem_copy(char *dst, char *src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    dst[i] = src[i];
  }
}

int i_abs(int x) {
  if (x < 0) {
    return -x;
  }
  return x;
}

int i_min(int a, int b) {
  if (a < b) {
    return a;
  }
  return b;
}

int i_max(int a, int b) {
  if (a > b) {
    return a;
  }
  return b;
}

double d_abs(double x) {
  if (x < 0.0) {
    return -x;
  }
  return x;
}

/* Newton-Raphson square root; returns 0 for non-positive inputs. */
double d_sqrt(double x) {
  double guess;
  double next;
  int iter;
  if (x <= 0.0) {
    return 0.0;
  }
  guess = x;
  if (guess > 1.0) {
    guess = x / 2.0;
  }
  for (iter = 0; iter < 64; iter = iter + 1) {
    next = (guess + x / guess) / 2.0;
    if (d_abs(next - guess) < 0.0000000001 * (next + 1.0)) {
      return next;
    }
    guess = next;
  }
  return guess;
}

/* Largest integral double <= x (for the modest ranges the suite uses). */
double d_floor(double x) {
  int i = (int)x;
  double d = (double)i;
  if (d > x) {
    return d - 1.0;
  }
  return d;
}

void print_nl() {
  print_char(10);
}

void print_spc() {
  print_char(32);
}
)MC";
  return Source;
}

std::string bpfree::withRuntime(const std::string &Body) {
  return Body + "\n" + runtimeSource();
}
