//===- workloads/Driver.h - Compile-run-profile-evaluate driver -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver gluing the pipeline together:
/// workload source -> IR module -> analyses -> profiled execution ->
/// per-branch statistics. Every bench binary and the integration tests
/// go through this entry point, so the paper's tables are all computed
/// from the same per-branch records.
///
/// The driver is *recoverable*: a compile error, runtime trap, or limit
/// exhaustion in one workload is returned as a structured failure (with
/// a TrapInfo backtrace when the VM was involved) instead of aborting
/// the process, and runSuite degrades gracefully — it keeps executing
/// the remaining workloads and reports every failure in a SuiteReport.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_WORKLOADS_DRIVER_H
#define BPFREE_WORKLOADS_DRIVER_H

#include "predict/Evaluation.h"
#include "support/Error.h"
#include "vm/BranchTrace.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <functional>
#include <memory>
#include <optional>

namespace bpfree {

/// Everything produced by compiling and profiling one workload on one
/// dataset.
struct WorkloadRun {
  const Workload *W = nullptr;
  size_t DatasetIndex = 0;
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<PredictionContext> Ctx;
  std::unique_ptr<EdgeProfile> Profile;
  /// Captured branch trace; non-null only when RunOptions::CaptureTrace
  /// was set, finalized with the run's instruction count.
  std::unique_ptr<BranchTrace> Trace;
  /// Final path of the sealed on-disk trace store, when
  /// RunOptions::TraceSpillPath was set and the spill closed cleanly;
  /// "" otherwise.
  std::string TraceFile;
  /// Human-readable conditions that did not fail the run but mean its
  /// outputs need qualification — a trace that overflowed its byte cap,
  /// a spill store that could not be sealed. Surfaced so capped or lost
  /// captures are visible in reports, not just in metrics.
  std::vector<std::string> Warnings;
  std::vector<BranchStats> Stats;
  RunResult Result;

  const Dataset &dataset() const { return W->Datasets[DatasetIndex]; }
};

/// Structured record of one workload that failed to compile or run.
struct WorkloadFailure {
  std::string Workload;
  std::string Dataset; ///< "" when the failure precedes dataset selection
  ErrorKind Kind = ErrorKind::Unknown;
  std::string Message;
  std::optional<TrapInfo> Trap; ///< set when the VM reached the fault

  /// Multi-line rendering: headline plus the TrapInfo backtrace if any.
  std::string render() const;
};

/// Per-run knobs threaded through the driver into the VM.
struct RunOptions {
  RunLimits Limits;
  /// Attach a BranchTrace observer and hand it back in WorkloadRun::Trace,
  /// finalized with the run's instruction count. With no other extra
  /// observers the profile and the trace are both filled on the
  /// interpreter's specialized direct path, so capture costs one
  /// interpretation — the capture half of capture-once/replay-many.
  bool CaptureTrace = false;
  /// Attach the edge profiler and collect per-branch statistics. Off,
  /// WorkloadRun::Profile stays null and Stats empty — the right mode
  /// for pure trace capture, where the interpreter runs with the trace
  /// sink as its only instrumentation and the perfect predictor's
  /// directions are derived from the trace itself
  /// (perfectDirectionsFromTrace).
  bool Profile = true;
  /// Byte cap for the captured trace; 0 uses BranchTrace::DefaultMaxBytes.
  /// A capture that hits the cap completes the run but stores only a
  /// truncated prefix — the driver reports it via WorkloadRun::Warnings.
  uint64_t TraceMaxBytes = 0;
  /// When non-empty (and CaptureTrace is set), stream completed chunks to
  /// this bpfree-trace-v1 store during the run instead of accumulating
  /// them in memory: flat memory for any stream length, with the sealed
  /// store's path handed back in WorkloadRun::TraceFile. The resident
  /// trace then holds only the tail chunk and must be replayed from the
  /// store, not from memory.
  std::string TraceSpillPath;
  /// Attached after the edge profiler (and the trace, if capturing);
  /// useful for trace collectors and fault injectors. Not owned.
  std::vector<ExecObserver *> ExtraObservers;
  /// Observability pass-through: the LPT cost estimate this run was
  /// scheduled with and its position in the dispatch queue (-1 when not
  /// dispatched by runSuite). Copied verbatim into the run's
  /// metrics::RunRecord so manifests can compare hinted vs. actual cost.
  uint64_t CostHint = 0;
  int DispatchOrder = -1;
};

/// Compiles \p W, runs dataset \p DatasetIndex under an edge profiler,
/// and collects per-branch statistics under \p Config. All recoverable
/// failures (compile errors, traps, limit exhaustion, injected faults)
/// come back as a Diag tagged with the error taxonomy; the process is
/// never aborted for a bad workload.
Expected<std::unique_ptr<WorkloadRun>>
runWorkload(const Workload &W, size_t DatasetIndex = 0,
            const HeuristicConfig &Config = {}, const RunOptions &Opts = {});

/// Like runWorkload but reports failures through \p Failure (including
/// the structured TrapInfo), returning null on failure. This is the
/// primitive runSuite builds on.
std::unique_ptr<WorkloadRun>
runWorkloadDetailed(const Workload &W, size_t DatasetIndex,
                    const HeuristicConfig &Config, const RunOptions &Opts,
                    WorkloadFailure &Failure);

/// Unwraps runWorkload for known-good workloads: on failure, prints the
/// diagnostic to stderr and exits with status 1 (no abort, no core).
/// For tests and bench binaries whose inputs must be healthy.
std::unique_ptr<WorkloadRun>
runWorkloadOrExit(const Workload &W, size_t DatasetIndex = 0,
                  const HeuristicConfig &Config = {},
                  const RunOptions &Opts = {});

/// Suite-wide execution knobs.
struct SuiteOptions {
  RunLimits Limits;
  /// Worker threads for the suite fan-out; 0 picks the hardware
  /// concurrency, 1 forces the serial path. Each (workload, dataset)
  /// pair runs in its own Machine with its own observers, so the report
  /// is bit-identical to a serial run regardless of Jobs.
  unsigned Jobs = 0;
  /// Per-workload extra observers (e.g. a FaultInjector keyed by name);
  /// called once per workload before it runs (serialized under a mutex
  /// when Jobs > 1). The returned observers are used only by that
  /// workload's run, which may execute on a pool thread. May return {}.
  std::function<std::vector<ExecObserver *>(const Workload &)>
      ExtraObservers;
  /// Invoked before each workload runs (progress reporting), with the
  /// workload's index in the suite registry. Serialized under a mutex
  /// when Jobs > 1; start and completion order across workloads is
  /// unspecified (and changes under cost-aware scheduling).
  std::function<void(const Workload &, size_t Index)> Progress;
  /// Estimated cost of a workload (by registry index), in any consistent
  /// unit — executed instruction counts from a previous run are ideal.
  /// When Jobs > 1 the driver dispatches workloads in descending cost
  /// order (LPT scheduling) so a heavyweight never starts last against an
  /// otherwise drained pool; unset falls back to the static source size.
  /// Never affects results, only dispatch order: the report is assembled
  /// in registry order either way.
  std::function<uint64_t(const Workload &, size_t Index)> CostHint;
  /// Capture a branch trace for every workload (RunOptions::CaptureTrace
  /// per run); traces come back on the runs in WorkloadRun::Trace.
  bool CaptureTrace = false;
  /// Per-run trace byte cap (RunOptions::TraceMaxBytes); 0 uses
  /// BranchTrace::DefaultMaxBytes. Overflows surface as warnings on the
  /// runs and in SuiteReport::Warnings.
  uint64_t TraceMaxBytes = 0;
};

/// Outcome of a whole-suite run: the successful runs in suite order plus
/// a failure record for every workload that did not complete.
struct SuiteReport {
  std::vector<std::unique_ptr<WorkloadRun>> Runs;
  std::vector<WorkloadFailure> Failures;
  /// Aggregated per-workload warnings ("workload 'x': ..."), in registry
  /// order — non-fatal conditions like a trace hitting its byte cap.
  /// runSuite also prints each to stderr so capped captures are visible
  /// even when the caller never inspects the report.
  std::vector<std::string> Warnings;
  size_t Attempted = 0;

  bool allOk() const { return Failures.empty(); }

  /// \returns the failure record for \p Workload, or nullptr.
  const WorkloadFailure *failureFor(const std::string &Workload) const;

  /// Multi-line per-workload failure summary ("" when all succeeded).
  std::string renderFailures() const;
};

/// Runs the whole suite (reference datasets). Failures are isolated per
/// workload: one bad program no longer kills the run — the remaining
/// workloads still execute and the report carries the failure records.
///
/// Independent workloads run concurrently across SuiteOptions::Jobs
/// threads; results are written into per-workload slots and assembled in
/// registry order, so the report (runs, stats, profiles, failure
/// records) is bit-identical to a Jobs=1 run.
SuiteReport runSuite(const HeuristicConfig &Config = {},
                     const SuiteOptions &Opts = {});

} // namespace bpfree

#endif // BPFREE_WORKLOADS_DRIVER_H
