//===- workloads/Driver.h - Compile-run-profile-evaluate driver -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver gluing the pipeline together:
/// workload source -> IR module -> analyses -> profiled execution ->
/// per-branch statistics. Every bench binary and the integration tests
/// go through this entry point, so the paper's tables are all computed
/// from the same per-branch records.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_WORKLOADS_DRIVER_H
#define BPFREE_WORKLOADS_DRIVER_H

#include "predict/Evaluation.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <memory>

namespace bpfree {

/// Everything produced by compiling and profiling one workload on one
/// dataset.
struct WorkloadRun {
  const Workload *W = nullptr;
  size_t DatasetIndex = 0;
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<PredictionContext> Ctx;
  std::unique_ptr<EdgeProfile> Profile;
  std::vector<BranchStats> Stats;
  RunResult Result;

  const Dataset &dataset() const { return W->Datasets[DatasetIndex]; }
};

/// Compiles \p W, runs dataset \p DatasetIndex under an edge profiler,
/// and collects per-branch statistics under \p Config. Aborts on
/// compile errors or runtime traps (workload programs are known-good;
/// failures indicate library bugs).
std::unique_ptr<WorkloadRun> runWorkload(const Workload &W,
                                         size_t DatasetIndex = 0,
                                         const HeuristicConfig &Config = {});

/// Runs the whole suite (reference datasets) and returns the runs in
/// suite order. \p Config selects heuristic variants.
std::vector<std::unique_ptr<WorkloadRun>>
runSuite(const HeuristicConfig &Config = {});

} // namespace bpfree

#endif // BPFREE_WORKLOADS_DRIVER_H
