//===- workloads/suite/FloatSuite.cpp - Floating-point workloads ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Floating-point workloads standing in for the paper's Fortran group
/// (matrix300, tomcatv, sgefat, dcg, doduc, dnasa7/fpppp, spice2g6):
/// dense matrix multiply, Jacobi relaxation with max-tracking (the
/// exact guard-vs-store showdown the paper dissects for tomcatv),
/// Gaussian elimination with partial pivoting, conjugate gradients,
/// an N-body stepper, straight-line FP kernels, and an RC-network
/// transient simulator with piecewise device models.
///
//===----------------------------------------------------------------------===//

#include "workloads/Runtime.h"
#include "workloads/suite/Suites.h"

using namespace bpfree;

namespace {

//===----------------------------------------------------------------------===//
// matmul300 — dense matrix multiply (matrix300 stand-in)
//===----------------------------------------------------------------------===//

const char *MatmulSource = R"MC(
/* C = A * B on n x n doubles (flattened 1-D arrays), then a checksum
   pass. Branch behavior is almost purely loop branches — the paper's
   matrix300 has only 4% non-loop branches. */

double A[16384];
double B[16384];
double C[16384];

int main() {
  int n = arg(0);
  int reps = arg(1);
  int r;
  int i;
  int j;
  int k;
  double checksum = 0.0;
  int negs = 0;
  rt_srand(arg(2));
  if (n > 128) {
    n = 128;
  }
  for (i = 0; i < n * n; i = i + 1) {
    A[i] = (double)(rt_rand_range(2000) - 1000) / 997.0;
    B[i] = (double)(rt_rand_range(2000) - 1000) / 991.0;
  }
  for (r = 0; r < reps; r = r + 1) {
    for (i = 0; i < n; i = i + 1) {
      for (j = 0; j < n; j = j + 1) {
        double acc = 0.0;
        for (k = 0; k < n; k = k + 1) {
          acc = acc + A[i * n + k] * B[k * n + j];
        }
        C[i * n + j] = acc;
      }
    }
    /* fold C back into A to keep iterations dependent */
    for (i = 0; i < n * n; i = i + 1) {
      A[i] = C[i] / 64.0;
    }
  }
  for (i = 0; i < n * n; i = i + 1) {
    checksum = checksum + C[i];
    if (C[i] < 0.0) {
      negs = negs + 1;
    }
  }
  print_str("matmul300 checksum=");
  print_double(checksum);
  print_str(" negs=");
  print_int(negs);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// relax — Jacobi relaxation with max tracking (tomcatv stand-in)
//===----------------------------------------------------------------------===//

const char *RelaxSource = R"MC(
/* Jacobi relaxation on an n x n grid with fixed boundary, tracking the
   maximum update per sweep: "if (delta > max) max = delta" — the exact
   branch pair the paper shows the Guard heuristic mispredicting and the
   Store heuristic predicting perfectly on tomcatv. */

double grid[16900];
double next_grid[16900];

int main() {
  int n = arg(0);
  int sweeps = arg(1);
  int s;
  int i;
  int j;
  double maxdelta = 0.0;
  double tol = 0.0000001;
  int converged_at = -1;
  rt_srand(arg(2));
  if (n > 130) {
    n = 130;
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      if (i == 0 || j == 0 || i == n - 1 || j == n - 1) {
        grid[i * n + j] = (double)((i + j) % 17) / 4.0;
      } else {
        grid[i * n + j] = (double)rt_rand_range(1000) / 500.0;
      }
      next_grid[i * n + j] = grid[i * n + j];
    }
  }
  for (s = 0; s < sweeps; s = s + 1) {
    maxdelta = 0.0;
    for (i = 1; i < n - 1; i = i + 1) {
      for (j = 1; j < n - 1; j = j + 1) {
        double v = (grid[(i - 1) * n + j] + grid[(i + 1) * n + j] +
                    grid[i * n + j - 1] + grid[i * n + j + 1]) /
                   4.0;
        double delta = d_abs(v - grid[i * n + j]);
        next_grid[i * n + j] = v;
        if (delta > maxdelta) {
          maxdelta = delta;
        }
      }
    }
    for (i = 1; i < n - 1; i = i + 1) {
      for (j = 1; j < n - 1; j = j + 1) {
        grid[i * n + j] = next_grid[i * n + j];
      }
    }
    if (maxdelta < tol) {
      converged_at = s;
      break;
    }
  }
  print_str("relax maxdelta=");
  print_double(maxdelta);
  print_str(" converged=");
  print_int(converged_at);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// gauss — Gaussian elimination with partial pivoting (sgefat stand-in)
//===----------------------------------------------------------------------===//

const char *GaussSource = R"MC(
/* Solves A x = b via LU with partial pivoting plus back-substitution;
   verifies the residual. The pivot-search "if (fabs > best)" is the
   same max-tracking idiom as relax. */

double A[16384];
double b[128];
double x[128];
double orig[16384];
double origb[128];

int main() {
  int n = arg(0);
  int systems = arg(1);
  int sys;
  int i;
  int j;
  int k;
  int singulars = 0;
  double worst_resid = 0.0;
  rt_srand(arg(2));
  if (n > 128) {
    n = 128;
  }
  for (sys = 0; sys < systems; sys = sys + 1) {
    for (i = 0; i < n; i = i + 1) {
      for (j = 0; j < n; j = j + 1) {
        A[i * n + j] = (double)(rt_rand_range(2000) - 1000) / 487.0;
        if (i == j) {
          A[i * n + j] = A[i * n + j] + 8.0; /* diagonally dominant */
        }
        orig[i * n + j] = A[i * n + j];
      }
      b[i] = (double)(rt_rand_range(2000) - 1000) / 333.0;
      origb[i] = b[i];
    }
    /* forward elimination with partial pivoting */
    for (k = 0; k < n; k = k + 1) {
      int piv = k;
      double best = d_abs(A[k * n + k]);
      for (i = k + 1; i < n; i = i + 1) {
        double cand = d_abs(A[i * n + k]);
        if (cand > best) {
          best = cand;
          piv = i;
        }
      }
      if (best < 0.000000000001) {
        singulars = singulars + 1;
        break;
      }
      if (piv != k) {
        double t;
        for (j = k; j < n; j = j + 1) {
          t = A[k * n + j];
          A[k * n + j] = A[piv * n + j];
          A[piv * n + j] = t;
        }
        t = b[k];
        b[k] = b[piv];
        b[piv] = t;
      }
      for (i = k + 1; i < n; i = i + 1) {
        double f = A[i * n + k] / A[k * n + k];
        if (f != 0.0) {
          for (j = k; j < n; j = j + 1) {
            A[i * n + j] = A[i * n + j] - f * A[k * n + j];
          }
          b[i] = b[i] - f * b[k];
        }
      }
    }
    /* back substitution */
    for (i = n - 1; i >= 0; i = i - 1) {
      double s = b[i];
      for (j = i + 1; j < n; j = j + 1) {
        s = s - A[i * n + j] * x[j];
      }
      x[i] = s / A[i * n + i];
    }
    /* residual check against the original system */
    for (i = 0; i < n; i = i + 1) {
      double r = origb[i];
      for (j = 0; j < n; j = j + 1) {
        r = r - orig[i * n + j] * x[j];
      }
      if (d_abs(r) > worst_resid) {
        worst_resid = d_abs(r);
      }
    }
  }
  if (worst_resid > 0.001) {
    print_str("gauss RESIDUAL ERROR\n");
    trap();
  }
  print_str("gauss systems=");
  print_int(systems);
  print_str(" singulars=");
  print_int(singulars);
  print_str(" resid=");
  print_double(worst_resid);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// conjgrad — conjugate gradients on a stencil matrix (dcg stand-in)
//===----------------------------------------------------------------------===//

const char *ConjgradSource = R"MC(
/* Conjugate gradients on the 1-D Poisson (tridiagonal) operator:
   A = tridiag(-1, 2+eps, -1). Matrix-free products keep the inner loop
   tight; iteration count depends on the tolerance — the convergence
   test is the interesting rare branch. */

double xv[32768];
double rv[32768];
double pv[32768];
double Ap[32768];
double rhs[32768];

int n = 0;

/* Ap = A * p for the tridiagonal operator. */
void apply(double *p, double *out) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    double v = 2.001 * p[i];
    if (i > 0) {
      v = v - p[i - 1];
    }
    if (i < n - 1) {
      v = v - p[i + 1];
    }
    out[i] = v;
  }
}

double dot(double *a, double *b) {
  double s = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    s = s + a[i] * b[i];
  }
  return s;
}

int main() {
  int iters = arg(1);
  int it;
  int used = 0;
  double rr;
  double tol = 0.000000001;
  int i;
  n = arg(0);
  rt_srand(arg(2));
  if (n > 32768) {
    n = 32768;
  }
  for (i = 0; i < n; i = i + 1) {
    xv[i] = 0.0;
    rhs[i] = (double)(rt_rand_range(2000) - 1000) / 999.0;
    rv[i] = rhs[i];
    pv[i] = rhs[i];
  }
  rr = dot(rv, rv);
  for (it = 0; it < iters; it = it + 1) {
    double alpha;
    double beta;
    double rrnew;
    double pap;
    used = it + 1;
    apply(pv, Ap);
    pap = dot(pv, Ap);
    if (pap == 0.0) {
      break; /* degenerate direction */
    }
    alpha = rr / pap;
    for (i = 0; i < n; i = i + 1) {
      xv[i] = xv[i] + alpha * pv[i];
      rv[i] = rv[i] - alpha * Ap[i];
    }
    rrnew = dot(rv, rv);
    if (rrnew < tol) {
      break;
    }
    beta = rrnew / rr;
    rr = rrnew;
    for (i = 0; i < n; i = i + 1) {
      pv[i] = rv[i] + beta * pv[i];
    }
  }
  print_str("conjgrad n=");
  print_int(n);
  print_str(" iters=");
  print_int(used);
  print_str(" rr=");
  print_double(rr);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// nbody — gravitational N-body stepper (doduc stand-in)
//===----------------------------------------------------------------------===//

const char *NbodySource = R"MC(
/* Plane N-body simulation with softened gravity and leapfrog steps.
   Close encounters (dist < soft) take a rare special-case path, and an
   energy audit runs every k steps — doduc-like mixed control flow. */

double px[512];
double py[512];
double vx[512];
double vy[512];
double mass[512];
int nb = 0;
int close_calls = 0;

double energy() {
  double e = 0.0;
  int i;
  int j;
  for (i = 0; i < nb; i = i + 1) {
    e = e + 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i]);
    for (j = i + 1; j < nb; j = j + 1) {
      double dx = px[j] - px[i];
      double dy = py[j] - py[i];
      double d = d_sqrt(dx * dx + dy * dy + 0.01);
      e = e - mass[i] * mass[j] / d;
    }
  }
  return e;
}

int main() {
  int steps = arg(1);
  int s;
  int i;
  int j;
  double dt = 0.001;
  double soft = 0.05;
  double e0;
  double e1;
  nb = arg(0);
  rt_srand(arg(2));
  if (nb > 512) {
    nb = 512;
  }
  for (i = 0; i < nb; i = i + 1) {
    px[i] = (double)(rt_rand_range(2000) - 1000) / 100.0;
    py[i] = (double)(rt_rand_range(2000) - 1000) / 100.0;
    vx[i] = (double)(rt_rand_range(200) - 100) / 1000.0;
    vy[i] = (double)(rt_rand_range(200) - 100) / 1000.0;
    mass[i] = 0.5 + (double)rt_rand_range(100) / 100.0;
  }
  e0 = energy();
  for (s = 0; s < steps; s = s + 1) {
    for (i = 0; i < nb; i = i + 1) {
      double ax = 0.0;
      double ay = 0.0;
      for (j = 0; j < nb; j = j + 1) {
        double dx;
        double dy;
        double d2;
        double d;
        double f;
        if (j == i) {
          continue;
        }
        dx = px[j] - px[i];
        dy = py[j] - py[i];
        d2 = dx * dx + dy * dy;
        if (d2 < soft * soft) {
          /* rare close encounter: clamp the force */
          d2 = soft * soft;
          close_calls = close_calls + 1;
        }
        d = d_sqrt(d2);
        f = mass[j] / (d2 * d);
        ax = ax + f * dx;
        ay = ay + f * dy;
      }
      vx[i] = vx[i] + ax * dt;
      vy[i] = vy[i] + ay * dt;
    }
    for (i = 0; i < nb; i = i + 1) {
      px[i] = px[i] + vx[i] * dt;
      py[i] = py[i] + vy[i] * dt;
    }
  }
  e1 = energy();
  print_str("nbody n=");
  print_int(nb);
  print_str(" close=");
  print_int(close_calls);
  print_str(" e0=");
  print_double(e0);
  print_str(" e1=");
  print_double(e1);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// fpkernels — straight-line FP kernel battery (dnasa7/fpppp stand-in)
//===----------------------------------------------------------------------===//

const char *FpkernelsSource = R"MC(
/* A battery of dense FP kernels: daxpy, dot, Horner polynomial
   evaluation, running min/max, and a Chebyshev recurrence — long
   straight-line loop bodies with few non-loop branches, like fpppp. */

double va[65536];
double vb[65536];
double vc[65536];

int main() {
  int n = arg(0);
  int reps = arg(1);
  int r;
  int i;
  double dotsum = 0.0;
  double horner = 0.0;
  double vmin = 1000000000.0;
  double vmax = -1000000000.0;
  double cheb = 0.0;
  rt_srand(arg(2));
  if (n > 65536) {
    n = 65536;
  }
  for (i = 0; i < n; i = i + 1) {
    va[i] = (double)(rt_rand_range(2000) - 1000) / 1000.0;
    vb[i] = (double)(rt_rand_range(2000) - 1000) / 1000.0;
  }
  for (r = 0; r < reps; r = r + 1) {
    double alpha = 0.5 + (double)r / 100.0;
    /* daxpy */
    for (i = 0; i < n; i = i + 1) {
      vc[i] = alpha * va[i] + vb[i];
    }
    /* dot */
    for (i = 0; i < n; i = i + 1) {
      dotsum = dotsum + va[i] * vc[i];
    }
    /* Horner: p(x) = ((x*c3 + c2)*x + c1)*x + c0 at many points */
    for (i = 0; i < n; i = i + 1) {
      double xp = va[i];
      horner = horner + ((xp * 1.5 - 0.25) * xp + 0.125) * xp - 2.0;
    }
    /* running min/max */
    for (i = 0; i < n; i = i + 1) {
      if (vc[i] < vmin) {
        vmin = vc[i];
      }
      if (vc[i] > vmax) {
        vmax = vc[i];
      }
    }
    /* Chebyshev recurrence T_k(x) summed at x = vb[i] (clamped) */
    for (i = 0; i < n; i = i + 1) {
      double xp = vb[i];
      double t0 = 1.0;
      double t1 = xp;
      double t2 = 2.0 * xp * t1 - t0;
      double t3 = 2.0 * xp * t2 - t1;
      cheb = cheb + t3;
    }
  }
  print_str("fpkernels dot=");
  print_double(dotsum);
  print_str(" horner=");
  print_double(horner);
  print_str(" min=");
  print_double(vmin);
  print_str(" max=");
  print_double(vmax);
  print_str(" cheb=");
  print_double(cheb);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// circuit — RC network transient simulation (spice2g6 stand-in)
//===----------------------------------------------------------------------===//

const char *CircuitSource = R"MC(
/* Transient simulation of a nonlinear RC ladder driven by a square
   wave. Each node has a capacitor to ground, resistors to neighbors,
   and a piecewise diode-like element (three operating regions — the
   conditional device-model evaluation that dominates spice). Implicit
   Euler with fixed-point iteration; the step halves on non-convergence
   (rare branch). */

double volt[1024];
double vnew[1024];
int nn = 0;
int halvings = 0;
int device_hi = 0;
int device_mid = 0;
int device_lo = 0;

/* Piecewise diode current: exponential region approximated by a
   quadratic, plus linear leakage elsewhere. */
double diode(double v) {
  if (v > 0.7) {
    device_hi = device_hi + 1;
    return 10.0 * (v - 0.7) * (v - 0.7) + 0.01 * v;
  }
  if (v > 0.0) {
    device_mid = device_mid + 1;
    return 0.01 * v * v;
  }
  device_lo = device_lo + 1;
  return 0.0001 * v; /* reverse leakage */
}

int main() {
  int steps = arg(1);
  int s;
  int i;
  double dt = 0.01;
  double drive;
  double maxv = 0.0;
  int total_iters = 0;
  nn = arg(0);
  rt_srand(arg(2));
  if (nn > 1024) {
    nn = 1024;
  }
  for (i = 0; i < nn; i = i + 1) {
    volt[i] = 0.0;
  }
  for (s = 0; s < steps; s = s + 1) {
    int iter;
    int converged = 0;
    double h = dt;
    int attempts = 0;
    /* square-wave drive on node 0 */
    if ((s / 50) % 2 == 0) {
      drive = 5.0;
    } else {
      drive = 0.0;
    }
    while (converged == 0 && attempts < 4) {
      attempts = attempts + 1;
      for (i = 0; i < nn; i = i + 1) {
        vnew[i] = volt[i];
      }
      for (iter = 0; iter < 30; iter = iter + 1) {
        double maxchange = 0.0;
        total_iters = total_iters + 1;
        for (i = 0; i < nn; i = i + 1) {
          double left;
          double right;
          double inject = 0.0;
          double target;
          double change;
          if (i == 0) {
            left = drive;
          } else {
            left = vnew[i - 1];
          }
          if (i == nn - 1) {
            right = vnew[i];
          } else {
            right = vnew[i + 1];
          }
          inject = (left - vnew[i]) + 0.5 * (right - vnew[i]) -
                   diode(vnew[i]);
          target = volt[i] + h * inject;
          change = d_abs(target - vnew[i]);
          if (change > maxchange) {
            maxchange = change;
          }
          vnew[i] = 0.5 * vnew[i] + 0.5 * target;
        }
        if (maxchange < 0.0001) {
          converged = 1;
          break;
        }
      }
      if (converged == 0) {
        h = h / 2.0; /* halve the step and retry */
        halvings = halvings + 1;
      }
    }
    for (i = 0; i < nn; i = i + 1) {
      volt[i] = vnew[i];
      if (volt[i] > maxv) {
        maxv = volt[i];
      }
    }
  }
  print_str("circuit iters=");
  print_int(total_iters);
  print_str(" halvings=");
  print_int(halvings);
  print_str(" hi=");
  print_int(device_hi);
  print_str(" mid=");
  print_int(device_mid);
  print_str(" lo=");
  print_int(device_lo);
  print_str(" maxv=");
  print_double(maxv);
  print_nl();
  return 0;
}
)MC";

} // namespace

void suite::addFloatSuite(std::vector<Workload> &Out) {
  Out.push_back({"matmul300",
                 "Dense matrix multiply (matrix300 stand-in)",
                 true,
                 withRuntime(MatmulSource),
                 {
                     Dataset("ref", {96, 3, 7}),
                     Dataset("small", {48, 4, 9}),
                     Dataset("big", {128, 2, 3}),
                 }});
  Out.push_back({"relax",
                 "Jacobi relaxation with max tracking (tomcatv stand-in)",
                 true,
                 withRuntime(RelaxSource),
                 {
                     Dataset("ref", {80, 150, 5}),
                     Dataset("small", {40, 300, 8}),
                     Dataset("big", {120, 60, 2}),
                 }});
  Out.push_back({"gauss",
                 "Gaussian elimination with pivoting (sgefat stand-in)",
                 true,
                 withRuntime(GaussSource),
                 {
                     Dataset("ref", {96, 8, 3}),
                     Dataset("small", {40, 20, 6}),
                     Dataset("big", {128, 4, 1}),
                 }});
  Out.push_back({"conjgrad",
                 "Conjugate gradients on a stencil (dcg stand-in)",
                 true,
                 withRuntime(ConjgradSource),
                 {
                     Dataset("ref", {4000, 120, 4}),
                     Dataset("small", {1000, 160, 5}),
                     Dataset("long", {12000, 55, 6}),
                 }});
  Out.push_back({"nbody",
                 "Softened-gravity N-body stepper (doduc stand-in)",
                 true,
                 withRuntime(NbodySource),
                 {
                     Dataset("ref", {100, 25, 7}),
                     Dataset("small", {50, 80, 9}),
                     Dataset("dense", {200, 7, 2}),
                 }});
  Out.push_back({"fpkernels",
                 "Straight-line FP kernel battery (dnasa7 stand-in)",
                 true,
                 withRuntime(FpkernelsSource),
                 {
                     Dataset("ref", {40000, 12, 5}),
                     Dataset("small", {8000, 20, 8}),
                     Dataset("long", {65536, 8, 1}),
                 }});
  Out.push_back({"circuit",
                 "Nonlinear RC transient simulation (spice2g6 stand-in)",
                 true,
                 withRuntime(CircuitSource),
                 {
                     Dataset("ref", {200, 400, 3}),
                     Dataset("small", {50, 600, 6}),
                     Dataset("big", {600, 150, 9}),
                 }});
}
