//===- workloads/suite/AdversarialSuite.cpp - H2P frontier workloads ------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adversarial frontier of the suite: workloads constructed so that
/// the MAJORITY of their branch executions are data-dependent bit tests
/// that no small amount of branch-local history explains — the
/// hard-to-predict (H2P) regime of the modern predictability
/// literature, and the stress case for the characterization layer
/// (ipbc/Characterize.h). The paper's heuristics are expected to do
/// poorly here and the per-class tables are expected to say WHY: the
/// misses sit on hard-class sites where the perfect static predictor
/// and the dynamic zoo miss almost as often.
///
///  * hashbits — branches on individual bits of a well-mixed hash
///    stream; every test is an independent coin flip (or a 1/4 / 1/3
///    skew chosen to stay above the hard-entropy threshold).
///  * fsmdispatch — an input-driven state-machine interpreter whose
///    dispatch ladder decodes uniform random opcodes: the classic
///    interpreter-dispatch H2P pattern.
///  * ptrchase — a pointer walk over a randomly linked graph where the
///    walk direction and the side effects branch on payload bits of
///    the node just reached.
///
/// Each also carries a few deliberately easy contrast branches (loop
/// back-edges, never-null guards) so class tables show separation, not
/// a single bucket.
///
//===----------------------------------------------------------------------===//

#include "workloads/Runtime.h"
#include "workloads/suite/Suites.h"

using namespace bpfree;

namespace {

//===----------------------------------------------------------------------===//
// hashbits — data-dependent hash-bit branch ladder
//===----------------------------------------------------------------------===//

const char *HashBitsSource = R"MC(
/* Branches on individual bits of a mixed hash stream. rt_rand()'s
   value bits come from the high half of a 64-bit LCG, so each tested
   bit is an independent fair coin; the 2-bit and mod-3 tests give
   taken rates of 1/4 and 1/3 (entropy 0.81 and 0.92 bits). */

int c_lo = 0;
int c_mid = 0;
int c_pair = 0;
int c_odd = 0;
int c_mod = 0;
int c_hit = 0;

int score(int h) {
  int s = 0;
  if (h & 1) {
    c_lo = c_lo + 1;
    s = s + 1;
  }
  if ((h >> 3) & 1) {
    c_mid = c_mid + 1;
    s = s + 2;
  }
  if ((h >> 7) & 1) {
    if ((h >> 11) & 1) {
      c_pair = c_pair + 1;
      s = s + 4;
    } else {
      s = s - 1;
    }
  }
  if (((h >> 14) & 3) == 0) {
    c_odd = c_odd + 1;
    s = s + 8;
  }
  if ((h >> 17) % 3 == 0) {
    c_mod = c_mod + 1;
    s = s + 16;
  }
  return s;
}

int main() {
  int n = arg(0);
  int i;
  int h;
  int total = 0;
  rt_srand(arg(1));
  for (i = 0; i < n; i = i + 1) {
    h = rt_rand();
    total = total + score(h);
    if ((h >> 20) & 1) {
      c_hit = c_hit + 1;
    }
  }
  print_str("hashbits n=");
  print_int(n);
  print_str(" total=");
  print_int(total);
  print_str(" hits=");
  print_int(c_hit);
  print_str(" mod=");
  print_int(c_mod);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// fsmdispatch — input-driven state-machine interpreter dispatch
//===----------------------------------------------------------------------===//

const char *FsmDispatchSource = R"MC(
/* A four-opcode stack machine driven by random input bytes. The
   dispatch ladder decodes a uniform 2-bit opcode — taken rates 1/4,
   1/3, 1/2 down the ladder, all above the hard-entropy threshold —
   and the handlers branch on data-dependent accumulator and state
   bits. The stack-depth guards are the easy contrast: almost never
   taken. */

int stack[64];
int sp = 0;
int state = 0;
int acc = 0;
int pushes = 0;
int folds = 0;
int flips = 0;

void step(int b) {
  int op = b & 3;
  if (op == 0) {
    if (sp < 60) {
      stack[sp] = b >> 2;
      sp = sp + 1;
      pushes = pushes + 1;
    }
    acc = acc + b;
  } else if (op == 1) {
    if (sp > 0) {
      sp = sp - 1;
      acc = acc + stack[sp];
    }
    if (acc & 1) {
      acc = acc * 3 + 1;
      folds = folds + 1;
    } else {
      acc = acc / 2;
    }
  } else if (op == 2) {
    state = (state * 5 + (b >> 2)) & 15;
    if (state & 1) {
      flips = flips + 1;
      acc = acc ^ state;
    }
  } else {
    if ((acc ^ b) & 2) {
      acc = acc - (b & 63);
    } else {
      acc = acc + (b & 63);
    }
  }
}

int main() {
  int n = input_len();
  int i;
  for (i = 0; i < n; i = i + 1) {
    step(input_byte(i));
  }
  print_str("fsmdispatch n=");
  print_int(n);
  print_str(" acc=");
  print_int(acc);
  print_str(" pushes=");
  print_int(pushes);
  print_str(" folds=");
  print_int(folds);
  print_str(" flips=");
  print_int(flips);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// ptrchase — payload-steered walk over a randomly linked graph
//===----------------------------------------------------------------------===//

const char *PtrChaseSource = R"MC(
/* Nodes carry a random key and two successor pointers aimed at random
   nodes. The walk picks its next edge from a key bit of the node just
   reached, so the selector branch is unpredictable by construction;
   the never-null guard is the easy contrast. */

struct node {
  int key;
  struct node *a;
  struct node *b;
};

struct node *nodes[4096];

int main() {
  int count = arg(0);
  int steps = arg(1);
  int i;
  int k;
  int sum = 0;
  int hops = 0;
  int twist = 0;
  struct node *cur;
  if (count > 4096) {
    trap();
  }
  rt_srand(arg(2));
  for (i = 0; i < count; i = i + 1) {
    cur = (struct node *)malloc(sizeof(struct node));
    if (cur == 0) {
      trap();
    }
    cur->key = rt_rand();
    cur->a = 0;
    cur->b = 0;
    nodes[i] = cur;
  }
  for (i = 0; i < count; i = i + 1) {
    nodes[i]->a = nodes[rt_rand_range(count)];
    nodes[i]->b = nodes[rt_rand_range(count)];
  }
  cur = nodes[0];
  for (i = 0; i < steps; i = i + 1) {
    if (cur == 0) {
      trap();
    }
    k = cur->key;
    /* Refresh the payload as the walk consumes it: a static functional
       graph is eventually periodic, and a periodic walk is exactly
       what history predictors learn. */
    cur->key = rt_rand();
    if (k & 1) {
      cur = cur->a;
    } else {
      cur = cur->b;
    }
    if ((k >> 5) & 1) {
      sum = sum + (k & 255);
    }
    if (((k >> 9) & 3) == 0) {
      hops = hops + 1;
    }
    if ((k >> 13) & 1) {
      twist = twist ^ k;
    }
  }
  print_str("ptrchase count=");
  print_int(count);
  print_str(" sum=");
  print_int(sum);
  print_str(" hops=");
  print_int(hops);
  print_str(" twist=");
  print_int(twist);
  print_nl();
  return 0;
}
)MC";

} // namespace

void suite::addAdversarialSuite(std::vector<Workload> &Out) {
  Out.push_back({"hashbits",
                 "Data-dependent hash-bit branch ladder (H2P frontier)",
                 false,
                 withRuntime(HashBitsSource),
                 {
                     Dataset("ref", {40000, 12345}),
                     Dataset("small", {8000, 999}),
                     Dataset("reseed", {40000, 77777}),
                 }});
  Out.push_back({"fsmdispatch",
                 "Input-driven state-machine interpreter dispatch "
                 "(H2P frontier)",
                 false,
                 withRuntime(FsmDispatchSource),
                 {
                     Dataset("ref", {}, synthNoise(50, 60000)),
                     Dataset("small", {}, synthNoise(51, 12000)),
                     Dataset("runs", {}, synthBytes(52, 60000)),
                 }});
  Out.push_back({"ptrchase",
                 "Payload-steered walk over a randomly linked graph "
                 "(H2P frontier)",
                 false,
                 withRuntime(PtrChaseSource),
                 {
                     Dataset("ref", {4096, 60000, 4242}),
                     Dataset("small", {512, 12000, 11}),
                     Dataset("dense", {128, 60000, 5150}),
                 }});
}
