//===- workloads/suite/IntegerSuite.cpp - Integer workloads ---------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer workloads standing in for the paper's addalg, poly,
/// costScale, eqntott, and espresso benchmarks: a branch-and-bound
/// knapsack solver, N-queens, Dijkstra shortest paths, a boolean
/// equation-to-truth-table converter, and a cube-cover minimizer.
///
//===----------------------------------------------------------------------===//

#include "workloads/Runtime.h"
#include "workloads/suite/Suites.h"

using namespace bpfree;

namespace {

//===----------------------------------------------------------------------===//
// intsolve — branch-and-bound 0/1 knapsack (addalg stand-in)
//===----------------------------------------------------------------------===//

const char *IntsolveSource = R"MC(
/* 0/1 knapsack by branch and bound with a fractional upper bound.
   Items are pre-sorted by value density; pruning branches fire often,
   giving the error-guard-heavy profile of integer solvers. */

int weight[64];
int value[64];
int nitems = 0;
int capacity = 0;
int best = 0;
int nodes = 0;
int prunes = 0;

/* Fractional (LP) bound for the subtree at item i. */
int bound(int i, int curw, int curv) {
  int b = curv;
  int w = curw;
  while (i < nitems && w + weight[i] <= capacity) {
    w = w + weight[i];
    b = b + value[i];
    i = i + 1;
  }
  if (i < nitems) {
    b = b + (capacity - w) * value[i] / weight[i];
  }
  return b;
}

void search(int i, int curw, int curv) {
  nodes = nodes + 1;
  if (curv > best) {
    best = curv;
  }
  if (i >= nitems) {
    return;
  }
  if (bound(i, curw, curv) <= best) {
    prunes = prunes + 1;
    return;
  }
  if (curw + weight[i] <= capacity) {
    search(i + 1, curw + weight[i], curv + value[i]);
  }
  search(i + 1, curw, curv);
}

/* Insertion sort by value density (value/weight), descending. */
void sort_items() {
  int i;
  for (i = 1; i < nitems; i = i + 1) {
    int w = weight[i];
    int v = value[i];
    int j = i - 1;
    while (j >= 0 && value[j] * w < v * weight[j]) {
      weight[j + 1] = weight[j];
      value[j + 1] = value[j];
      j = j - 1;
    }
    weight[j + 1] = w;
    value[j + 1] = v;
  }
}

int main() {
  int n = arg(0);
  int rounds = arg(1);
  int r;
  int total = 0;
  rt_srand(arg(2));
  if (n > 64) {
    n = 64;
  }
  nitems = n;
  for (r = 0; r < rounds; r = r + 1) {
    int i;
    int sumw = 0;
    for (i = 0; i < n; i = i + 1) {
      weight[i] = 1 + rt_rand_range(100);
      value[i] = 1 + rt_rand_range(120);
      sumw = sumw + weight[i];
    }
    capacity = sumw / 3 + 1;
    sort_items();
    best = 0;
    search(0, 0, 0);
    total = total + best;
  }
  print_str("intsolve nodes=");
  print_int(nodes);
  print_str(" prunes=");
  print_int(prunes);
  print_str(" total=");
  print_int(total);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// queens — N-queens backtracking (poly stand-in)
//===----------------------------------------------------------------------===//

const char *QueensSource = R"MC(
/* Classic N-queens backtracking solution counter, plus a variant that
   counts boards with exactly one conflicting pair (near-solutions). */

int colused[32];
int diag1[64];
int diag2[64];
int n = 8;
int solutions = 0;
int placed_total = 0;

void place(int row) {
  int col;
  if (row == n) {
    solutions = solutions + 1;
    return;
  }
  for (col = 0; col < n; col = col + 1) {
    if (colused[col] == 0 && diag1[row + col] == 0 &&
        diag2[row - col + n] == 0) {
      colused[col] = 1;
      diag1[row + col] = 1;
      diag2[row - col + n] = 1;
      placed_total = placed_total + 1;
      place(row + 1);
      colused[col] = 0;
      diag1[row + col] = 0;
      diag2[row - col + n] = 0;
    }
  }
}

/* Random boards: count conflicts (exercises data-dependent branches). */
int board[32];

int conflicts() {
  int i;
  int j;
  int c = 0;
  for (i = 0; i < n; i = i + 1) {
    for (j = i + 1; j < n; j = j + 1) {
      if (board[i] == board[j]) {
        c = c + 1;
      } else if (i_abs(board[i] - board[j]) == j - i) {
        c = c + 1;
      }
    }
  }
  return c;
}

int main() {
  int boards = arg(1);
  int b;
  int nearsol = 0;
  int confsum = 0;
  n = arg(0);
  rt_srand(arg(2));
  if (n > 12) {
    n = 12;
  }
  if (n < 4) {
    n = 4;
  }
  place(0);
  for (b = 0; b < boards; b = b + 1) {
    int i;
    for (i = 0; i < n; i = i + 1) {
      board[i] = rt_rand_range(n);
    }
    i = conflicts();
    confsum = confsum + i;
    if (i == 1) {
      nearsol = nearsol + 1;
    }
  }
  print_str("queens n=");
  print_int(n);
  print_str(" solutions=");
  print_int(solutions);
  print_str(" placed=");
  print_int(placed_total);
  print_str(" nearsol=");
  print_int(nearsol);
  print_str(" confsum=");
  print_int(confsum);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// dijkstra — shortest paths on a random graph (costScale stand-in)
//===----------------------------------------------------------------------===//

const char *DijkstraSource = R"MC(
/* Dijkstra single-source shortest paths over a random sparse digraph in
   adjacency-array form, selecting the minimum-distance vertex by linear
   scan (the O(V^2) formulation). Repeated from several sources. */

int head[2048];     /* first edge index per vertex, -1 = none */
int enext[16384];   /* next edge in the same adjacency list   */
int eto[16384];
int ecost[16384];
int dist[2048];
int done[2048];
int nv = 0;
int ne = 0;

void add_edge(int from, int to, int cost) {
  if (ne >= 16384) {
    return; /* graph full: drop extra edges */
  }
  eto[ne] = to;
  ecost[ne] = cost;
  enext[ne] = head[from];
  head[from] = ne;
  ne = ne + 1;
}

int INF = 1000000000;

int relaxations = 0;

int run_dijkstra(int src) {
  int i;
  int iter;
  int reached = 0;
  for (i = 0; i < nv; i = i + 1) {
    dist[i] = INF;
    done[i] = 0;
  }
  dist[src] = 0;
  for (iter = 0; iter < nv; iter = iter + 1) {
    int bestv = -1;
    int bestd = INF;
    int e;
    for (i = 0; i < nv; i = i + 1) {
      if (done[i] == 0 && dist[i] < bestd) {
        bestd = dist[i];
        bestv = i;
      }
    }
    if (bestv < 0) {
      return reached; /* remaining vertices unreachable */
    }
    done[bestv] = 1;
    reached = reached + 1;
    e = head[bestv];
    while (e >= 0) {
      int nd = dist[bestv] + ecost[e];
      if (nd < dist[eto[e]]) {
        dist[eto[e]] = nd;
        relaxations = relaxations + 1;
      }
      e = enext[e];
    }
  }
  return reached;
}

int main() {
  int v = arg(0);
  int degree = arg(1);
  int sources = arg(2);
  int i;
  int s;
  int checksum = 0;
  rt_srand(arg(3));
  if (v > 2048) {
    v = 2048;
  }
  nv = v;
  for (i = 0; i < nv; i = i + 1) {
    head[i] = -1;
  }
  for (i = 0; i < nv * degree; i = i + 1) {
    add_edge(rt_rand_range(nv), rt_rand_range(nv), 1 + rt_rand_range(1000));
  }
  for (s = 0; s < sources; s = s + 1) {
    int reached = run_dijkstra(rt_rand_range(nv));
    checksum = checksum + reached;
    for (i = 0; i < nv; i = i + 1) {
      if (dist[i] < INF) {
        checksum = checksum + dist[i] % 97;
      }
    }
  }
  print_str("dijkstra reached_checksum=");
  print_int(checksum);
  print_str(" relax=");
  print_int(relaxations);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// eqn — boolean equations to truth table (eqntott stand-in)
//===----------------------------------------------------------------------===//

const char *EqnSource = R"MC(
/* Converts random boolean expressions over k variables into truth
   tables by exhaustive evaluation, then sorts the minterms — eqntott's
   hot branches were in exactly such compare/sort loops. Expression
   nodes: 0=VAR k, 1=NOT, 2=AND, 3=OR, 4=XOR (flat arrays). */

int op[512];
int opa[512];
int opb[512];
int nnodes = 0;

int add_node(int o, int a, int b) {
  if (nnodes >= 512) {
    trap();
  }
  op[nnodes] = o;
  opa[nnodes] = a;
  opb[nnodes] = b;
  nnodes = nnodes + 1;
  return nnodes - 1;
}

int build(int depth, int vars) {
  int pick;
  int a;
  int b;
  if (depth <= 0) {
    return add_node(0, rt_rand_range(vars), 0);
  }
  pick = rt_rand_range(8);
  if (pick == 0) {
    return add_node(0, rt_rand_range(vars), 0);
  }
  a = build(depth - 1, vars);
  if (pick <= 2) {
    return add_node(1, a, 0);
  }
  b = build(depth - 1, vars);
  if (pick <= 4) {
    return add_node(2, a, b);
  }
  if (pick <= 6) {
    return add_node(3, a, b);
  }
  return add_node(4, a, b);
}

int eval_node(int node, int assignment) {
  int o = op[node];
  int l;
  int r;
  if (o == 0) {
    return (assignment >> opa[node]) & 1;
  }
  l = eval_node(opa[node], assignment);
  if (o == 1) {
    if (l != 0) {
      return 0;
    }
    return 1;
  }
  r = eval_node(opb[node], assignment);
  if (o == 2) {
    if (l != 0 && r != 0) {
      return 1;
    }
    return 0;
  }
  if (o == 3) {
    if (l != 0 || r != 0) {
      return 1;
    }
    return 0;
  }
  if (l != r) {
    return 1;
  }
  return 0;
}

int minterms[4096];
int nmin = 0;

/* eqntott's cmppt-style comparison: lexicographic over variable bits. */
int cmp_minterm(int a, int b, int vars) {
  int k;
  for (k = vars - 1; k >= 0; k = k - 1) {
    int ba = (a >> k) & 1;
    int bb = (b >> k) & 1;
    if (ba != bb) {
      return ba - bb;
    }
  }
  return 0;
}

void sort_minterms(int vars) {
  int i;
  for (i = 1; i < nmin; i = i + 1) {
    int v = minterms[i];
    int j = i - 1;
    while (j >= 0 && cmp_minterm(minterms[j], v, vars) > 0) {
      minterms[j + 1] = minterms[j];
      j = j - 1;
    }
    minterms[j + 1] = v;
  }
}

int main() {
  int vars = arg(0);
  int exprs = arg(1);
  int depth = arg(2);
  int e;
  int total_true = 0;
  int checksum = 0;
  rt_srand(arg(3));
  if (vars > 12) {
    vars = 12;
  }
  for (e = 0; e < exprs; e = e + 1) {
    int root;
    int a;
    int limit = 1 << vars;
    nnodes = 0;
    nmin = 0;
    root = build(depth, vars);
    for (a = 0; a < limit; a = a + 1) {
      if (eval_node(root, a) != 0) {
        if (nmin < 4096) {
          minterms[nmin] = a;
          nmin = nmin + 1;
        }
      }
    }
    total_true = total_true + nmin;
    sort_minterms(vars);
    for (a = 1; a < nmin; a = a + 1) {
      if (cmp_minterm(minterms[a - 1], minterms[a], vars) > 0) {
        trap(); /* sort broke */
      }
    }
    if (nmin > 0) {
      checksum = checksum + minterms[nmin / 2];
    }
  }
  print_str("eqn true=");
  print_int(total_true);
  print_str(" checksum=");
  print_int(checksum);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// espresso — two-level cube-cover minimizer (espresso stand-in)
//===----------------------------------------------------------------------===//

const char *EspressoSource = R"MC(
/* Simplified two-level logic minimization: cubes over v variables are
   (mask, value) pairs; repeatedly merge distance-1 cubes and delete
   covered cubes until a fixpoint — espresso's expand/irredundant loops
   in miniature. */

int cmask[2048];
int cval[2048];
int alive[2048];
int ncubes = 0;

int covered(int i, int j) {
  /* cube j covers cube i if j's care-set is a subset of i's and they
     agree on j's cares. */
  if ((cmask[j] & cmask[i]) != cmask[j]) {
    return 0;
  }
  if ((cval[i] & cmask[j]) != (cval[j] & cmask[j])) {
    return 0;
  }
  return 1;
}

int popcount(int x) {
  int n = 0;
  while (x != 0) {
    n = n + (x & 1);
    x = x >> 1;
  }
  return n;
}

int merges = 0;
int deletions = 0;

int one_pass() {
  int changed = 0;
  int i;
  int j;
  for (i = 0; i < ncubes; i = i + 1) {
    if (alive[i] == 0) {
      continue;
    }
    for (j = 0; j < ncubes; j = j + 1) {
      int diff;
      if (i == j || alive[j] == 0) {
        continue;
      }
      /* identical masks differing in exactly one care bit: merge */
      if (cmask[i] == cmask[j]) {
        diff = (cval[i] ^ cval[j]) & cmask[i];
        if (popcount(diff) == 1) {
          cmask[i] = cmask[i] & ~diff;
          cval[i] = cval[i] & cmask[i];
          alive[j] = 0;
          merges = merges + 1;
          changed = 1;
          continue;
        }
      }
      if (covered(j, i)) {
        alive[j] = 0;
        deletions = deletions + 1;
        changed = 1;
      }
    }
  }
  return changed;
}

int main() {
  int vars = arg(0);
  int n = arg(1);
  int rounds = arg(2);
  int r;
  int live_total = 0;
  rt_srand(arg(3));
  if (vars > 16) {
    vars = 16;
  }
  if (n > 2048) {
    n = 2048;
  }
  for (r = 0; r < rounds; r = r + 1) {
    int i;
    int passes = 0;
    int full = (1 << vars) - 1;
    ncubes = n;
    for (i = 0; i < n; i = i + 1) {
      /* random cube with mostly-care bits */
      cmask[i] = full & ~(rt_rand_range(full + 1) & rt_rand_range(full + 1));
      cval[i] = rt_rand_range(full + 1) & cmask[i];
      alive[i] = 1;
    }
    while (one_pass() != 0 && passes < 40) {
      passes = passes + 1;
    }
    for (i = 0; i < ncubes; i = i + 1) {
      if (alive[i] != 0) {
        live_total = live_total + 1;
      }
    }
  }
  print_str("espresso merges=");
  print_int(merges);
  print_str(" deletions=");
  print_int(deletions);
  print_str(" live=");
  print_int(live_total);
  print_nl();
  return 0;
}
)MC";

} // namespace

void suite::addIntegerSuite(std::vector<Workload> &Out) {
  Out.push_back({"intsolve",
                 "Branch-and-bound knapsack solver (addalg stand-in)",
                 false,
                 withRuntime(IntsolveSource),
                 {
                     Dataset("ref", {26, 40, 7}),
                     Dataset("small", {18, 20, 3}),
                     Dataset("hard", {30, 12, 31}),
                 }});
  Out.push_back({"queens",
                 "N-queens backtracking + conflict counting",
                 false,
                 withRuntime(QueensSource),
                 {
                     Dataset("ref", {9, 30000, 5}),
                     Dataset("big", {10, 5000, 11}),
                     Dataset("boardy", {8, 120000, 2}),
                 }});
  Out.push_back({"dijkstra",
                 "Shortest paths on random graphs (costScale stand-in)",
                 false,
                 withRuntime(DijkstraSource),
                 {
                     Dataset("ref", {600, 6, 12, 3}),
                     Dataset("dense", {300, 20, 12, 5}),
                     Dataset("small", {150, 5, 20, 7}),
                 }});
  Out.push_back({"eqn",
                 "Boolean equations to truth tables (eqntott stand-in)",
                 false,
                 withRuntime(EqnSource),
                 {
                     Dataset("ref", {10, 120, 6, 13}),
                     Dataset("widevars", {12, 40, 5, 17}),
                     Dataset("deep", {8, 120, 9, 19}),
                 }});
  Out.push_back({"espresso",
                 "Two-level cube-cover minimizer (espresso stand-in)",
                 false,
                 withRuntime(EspressoSource),
                 {
                     Dataset("ref", {10, 700, 4, 23}),
                     Dataset("small", {8, 250, 6, 29}),
                     Dataset("big", {12, 1100, 2, 37}),
                 }});
}
