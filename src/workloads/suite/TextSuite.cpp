//===- workloads/suite/TextSuite.cpp - Text-processing workloads ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text workloads standing in for the paper's grep, compress, and awk
/// benchmarks: a substring/character-class matcher, an LZW compressor
/// with round-trip verification, and a wc-style counting state machine.
/// grep and compress are the paper's poster children for "a handful of
/// branches produce most of the dynamic non-loop branches".
///
//===----------------------------------------------------------------------===//

#include "workloads/Runtime.h"
#include "workloads/suite/Suites.h"

using namespace bpfree;

namespace {

//===----------------------------------------------------------------------===//
// grep — line matcher with literal and class patterns
//===----------------------------------------------------------------------===//

const char *GrepSource = R"MC(
/* Scans the input line by line and counts lines matching any of a small
   set of patterns. Patterns support literals and '.' wildcards; the
   inner match loop's first-character test is the classic grep "big
   branch". */

char line[512];
int line_len = 0;

/* Does pat match starting at line[pos]? '.' matches anything. */
int match_at(char *pat, int pos) {
  int i = 0;
  while (pat[i] != 0) {
    if (pos + i >= line_len) {
      return 0;
    }
    if (pat[i] != 46 && pat[i] != line[pos + i]) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

int match_line(char *pat) {
  int pos;
  char first = pat[0];
  for (pos = 0; pos < line_len; pos = pos + 1) {
    /* fast path: check the first character before full match */
    if (first == 46 || line[pos] == first) {
      if (match_at(pat, pos)) {
        return 1;
      }
    }
  }
  return 0;
}

int main() {
  int n = input_len();
  int i;
  int matched0 = 0;
  int matched1 = 0;
  int matched2 = 0;
  int lines = 0;
  for (i = 0; i <= n; i = i + 1) {
    int c = 10;
    if (i < n) {
      c = input_byte(i);
    }
    if (c == 10) {
      if (line_len > 0) {
        lines = lines + 1;
        if (match_line("the")) {
          matched0 = matched0 + 1;
        }
        if (match_line("t.e")) {
          matched1 = matched1 + 1;
        }
        if (match_line("ation")) {
          matched2 = matched2 + 1;
        }
      }
      line_len = 0;
    } else if (line_len < 510) {
      line[line_len] = c;
      line_len = line_len + 1;
    }
  }
  print_str("grep lines=");
  print_int(lines);
  print_str(" m0=");
  print_int(matched0);
  print_str(" m1=");
  print_int(matched1);
  print_str(" m2=");
  print_int(matched2);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// compress — LZW with round-trip verification
//===----------------------------------------------------------------------===//

const char *CompressSource = R"MC(
/* LZW compression with a (prefix, char) hash dictionary, followed by
   decompression and byte-for-byte verification against the input. The
   hash-probe hit/miss branch is compress(1)'s famous hot branch. */

int hash_code[16384];   /* dictionary: open addressing        */
int hash_prefix[16384];
int hash_char[16384];
int next_code = 256;

int out_codes[131072];
int nout = 0;

int probe(int prefix, int ch) {
  int h = ((prefix << 5) ^ ch) & 16383;
  while (hash_code[h] != -1) {
    if (hash_prefix[h] == prefix && hash_char[h] == ch) {
      return hash_code[h];
    }
    h = (h + 61) & 16383;
  }
  return -(h + 1); /* not found: return insertion slot as -(slot+1) */
}

void compress() {
  int i;
  int n = input_len();
  int prefix;
  if (n == 0) {
    return;
  }
  prefix = input_byte(0);
  for (i = 1; i < n; i = i + 1) {
    int c = input_byte(i);
    int f = probe(prefix, c);
    if (f >= 0) {
      prefix = f;
    } else {
      int slot = -f - 1;
      out_codes[nout] = prefix;
      nout = nout + 1;
      if (nout >= 131072) {
        trap(); /* output overflow: dataset too large */
      }
      /* Cap the dictionary at 12288 entries so the 16384-slot hash
         table never exceeds 75% load (compress(1) similarly freezes
         its dictionary when full). */
      if (next_code < 12544) {
        hash_code[slot] = next_code;
        hash_prefix[slot] = prefix;
        hash_char[slot] = c;
        next_code = next_code + 1;
      }
      prefix = c;
    }
  }
  out_codes[nout] = prefix;
  nout = nout + 1;
}

/* Decoder tables rebuilt from the code stream. */
int dec_prefix[65536];
int dec_char[65536];
char stackbuf[65536];

int emit_pos = 0;
int mismatches = 0;

void emit_byte(int b) {
  if (input_byte(emit_pos) != b) {
    mismatches = mismatches + 1;
  }
  emit_pos = emit_pos + 1;
}

/* Writes the expansion of code, returning its first byte. */
int expand(int code) {
  int sp = 0;
  int first;
  while (code >= 256) {
    stackbuf[sp] = dec_char[code];
    sp = sp + 1;
    if (sp >= 65536) {
      trap(); /* corrupt chain */
    }
    code = dec_prefix[code];
  }
  first = code;
  emit_byte(code);
  while (sp > 0) {
    sp = sp - 1;
    /* chars are signed; mask back to the 0..255 byte value */
    emit_byte(stackbuf[sp] & 255);
  }
  return first;
}

void decompress() {
  int dec_next = 256;
  int i;
  int prev;
  int first = 0;
  if (nout == 0) {
    return;
  }
  prev = out_codes[0];
  first = expand(prev);
  for (i = 1; i < nout; i = i + 1) {
    int code = out_codes[i];
    if (code < dec_next) {
      first = expand(code);
    } else if (code == dec_next) {
      /* KwKwK case: expand prev then repeat its first byte */
      first = expand(prev);
      emit_byte(first);
    } else {
      trap(); /* corrupt stream */
    }
    if (dec_next < 12544) { /* must match the encoder's cap */
      dec_prefix[dec_next] = prev;
      dec_char[dec_next] = first;
      dec_next = dec_next + 1;
    }
    prev = code;
  }
}

int main() {
  int i;
  for (i = 0; i < 16384; i = i + 1) {
    hash_code[i] = -1;
  }
  compress();
  decompress();
  if (mismatches > 0 || emit_pos != input_len()) {
    print_str("compress ROUNDTRIP ERROR mism=");
    print_int(mismatches);
    print_str(" pos=");
    print_int(emit_pos);
    print_nl();
    trap();
  }
  print_str("compress in=");
  print_int(input_len());
  print_str(" out=");
  print_int(nout);
  print_str(" dict=");
  print_int(next_code);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// wordcount — wc-style counting state machine (awk flavor)
//===----------------------------------------------------------------------===//

const char *WordcountSource = R"MC(
/* Counts lines, words, characters, digits and tracks line-length
   statistics in one pass — awk's field-splitting inner loop, distilled.
   A second pass computes a letter histogram and its entropy class. */

int histogram[256];

int main() {
  int n = input_len();
  int i;
  int lines = 0;
  int words = 0;
  int digits = 0;
  int inword = 0;
  int linelen = 0;
  int maxline = 0;
  int minline = 1000000;
  int longlines = 0;
  int peak;
  int peakchar;
  int used;
  for (i = 0; i < n; i = i + 1) {
    int c = input_byte(i);
    histogram[c] = histogram[c] + 1;
    if (c == 10) {
      lines = lines + 1;
      if (linelen > maxline) {
        maxline = linelen;
      }
      if (linelen < minline) {
        minline = linelen;
      }
      if (linelen > 60) {
        longlines = longlines + 1;
      }
      linelen = 0;
    } else {
      linelen = linelen + 1;
    }
    if (c >= 48 && c <= 57) {
      digits = digits + 1;
    }
    if (c == 32 || c == 10 || c == 9) {
      if (inword != 0) {
        words = words + 1;
      }
      inword = 0;
    } else {
      inword = 1;
    }
  }
  if (inword != 0) {
    words = words + 1;
  }
  peak = 0;
  peakchar = 0;
  used = 0;
  for (i = 0; i < 256; i = i + 1) {
    if (histogram[i] > 0) {
      used = used + 1;
      if (histogram[i] > peak) {
        peak = histogram[i];
        peakchar = i;
      }
    }
  }
  print_str("wordcount lines=");
  print_int(lines);
  print_str(" words=");
  print_int(words);
  print_str(" digits=");
  print_int(digits);
  print_str(" max=");
  print_int(maxline);
  print_str(" long=");
  print_int(longlines);
  print_str(" used=");
  print_int(used);
  print_str(" peak=");
  print_int(peakchar);
  print_nl();
  return 0;
}
)MC";

} // namespace

void suite::addTextSuite(std::vector<Workload> &Out) {
  Out.push_back({"grep",
                 "Line matcher with literal and wildcard patterns",
                 false,
                 withRuntime(GrepSource),
                 {
                     Dataset("ref", {}, synthText(10, 400000)),
                     Dataset("small", {}, synthText(11, 80000)),
                     Dataset("large", {}, synthText(12, 900000)),
                 }});
  Out.push_back({"compress",
                 "LZW compression with round-trip verification",
                 false,
                 withRuntime(CompressSource),
                 {
                     Dataset("ref", {}, synthBytes(20, 120000)),
                     Dataset("text", {}, synthText(21, 120000)),
                     Dataset("small", {}, synthBytes(22, 30000)),
                 }});
  Out.push_back({"wordcount",
                 "wc-style counting state machine (awk stand-in)",
                 false,
                 withRuntime(WordcountSource),
                 {
                     Dataset("ref", {}, synthText(30, 500000)),
                     Dataset("small", {}, synthText(31, 100000)),
                     Dataset("binary", {}, synthBytes(32, 300000)),
                 }});
}
