//===- workloads/suite/PointerSuite.cpp - Pointer-chasing workloads -------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pointer-manipulating workloads standing in for the paper's xlisp,
/// gcc/lcc, qpt, and congress benchmarks: a tiny lisp-style expression
/// evaluator, a binary search tree, a bytecode interpreter, a chained
/// hash table over text, and a pointer-heavy quicksort. These exercise
/// the null-guard and pointer-comparison idioms the Pointer and Guard
/// heuristics target.
///
//===----------------------------------------------------------------------===//

#include "workloads/Runtime.h"
#include "workloads/suite/Suites.h"

using namespace bpfree;

namespace {

//===----------------------------------------------------------------------===//
// lisp — tagged-cell expression evaluator (xlisp stand-in)
//===----------------------------------------------------------------------===//

const char *LispSource = R"MC(
/* Tiny lisp-style evaluator: builds random tagged expression trees out
   of cons cells and evaluates them recursively. Tags: 0=NUM, 1=ADD,
   2=SUB, 3=MUL, 4=IF (cond/then/else via nested cells), 5=LT, 6=VAR. */

struct cell {
  int tag;
  int value;
  struct cell *left;
  struct cell *right;
};

int cells_made = 0;
int env_x = 0;

struct cell *new_cell(int tag, int value) {
  struct cell *c;
  c = (struct cell *)malloc(sizeof(struct cell));
  if (c == 0) {
    trap();
  }
  c->tag = tag;
  c->value = value;
  c->left = 0;
  c->right = 0;
  cells_made = cells_made + 1;
  return c;
}

/* Builds a random expression tree of the given depth. */
struct cell *build(int depth) {
  int pick;
  struct cell *c;
  if (depth <= 0) {
    if (rt_rand_range(3) == 0) {
      return new_cell(6, 0); /* VAR */
    }
    return new_cell(0, rt_rand_range(100) - 50);
  }
  pick = rt_rand_range(10);
  if (pick < 3) {
    c = new_cell(1, 0);
  } else if (pick < 5) {
    c = new_cell(2, 0);
  } else if (pick < 7) {
    c = new_cell(3, 0);
  } else if (pick < 9) {
    c = new_cell(4, 0);
  } else {
    c = new_cell(5, 0);
  }
  c->left = build(depth - 1);
  c->right = build(depth - 1);
  if (c->tag == 4) {
    /* IF reuses right as a then/else pair cell. */
    struct cell *pair = new_cell(0, 0);
    pair->left = c->right;
    pair->right = build(depth - 1);
    c->right = pair;
  }
  return c;
}

int eval(struct cell *c) {
  int l;
  int r;
  if (c == 0) {
    return 0; /* defensive: never happens for well-formed trees */
  }
  if (c->tag == 0) {
    return c->value;
  }
  if (c->tag == 6) {
    return env_x;
  }
  if (c->tag == 4) {
    if (eval(c->left) != 0) {
      return eval(c->right->left);
    }
    return eval(c->right->right);
  }
  l = eval(c->left);
  r = eval(c->right);
  if (c->tag == 1) {
    return l + r;
  }
  if (c->tag == 2) {
    return l - r;
  }
  if (c->tag == 3) {
    return (l % 1000) * (r % 1000);
  }
  if (c->tag == 5) {
    if (l < r) {
      return 1;
    }
    return 0;
  }
  trap(); /* unknown tag: corrupted tree */
  return 0;
}

/* Counts cells with a given tag (another pointer walk). */
int count_tag(struct cell *c, int tag) {
  int n = 0;
  if (c == 0) {
    return 0;
  }
  if (c->tag == tag) {
    n = 1;
  }
  return n + count_tag(c->left, tag) + count_tag(c->right, tag);
}

int main() {
  int trees = arg(0);
  int depth = arg(1);
  int t;
  int acc = 0;
  int adds = 0;
  rt_srand(arg(2));
  for (t = 0; t < trees; t = t + 1) {
    struct cell *e = build(depth);
    env_x = t;
    acc = acc + eval(e);
    acc = acc + eval(e); /* evaluate twice with same env */
    env_x = -t;
    acc = acc + eval(e);
    adds = adds + count_tag(e, 1);
  }
  print_str("lisp cells=");
  print_int(cells_made);
  print_str(" adds=");
  print_int(adds);
  print_str(" acc=");
  print_int(acc);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// treesort — binary search tree insert/search/traverse (gcc/lcc flavor)
//===----------------------------------------------------------------------===//

const char *TreesortSource = R"MC(
/* Binary search tree: N random inserts (with duplicate handling), M
   lookups, an in-order traversal checking sortedness, and a node-depth
   histogram. Null-pointer guards dominate. */

struct node {
  int key;
  int count;
  struct node *left;
  struct node *right;
};

int nodes_made = 0;

struct node *mk_node(int key) {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  if (n == 0) {
    trap();
  }
  n->key = key;
  n->count = 1;
  n->left = 0;
  n->right = 0;
  nodes_made = nodes_made + 1;
  return n;
}

struct node *insert(struct node *root, int key) {
  struct node *cur;
  struct node *parent;
  if (root == 0) {
    return mk_node(key);
  }
  cur = root;
  parent = 0;
  while (cur != 0) {
    parent = cur;
    if (key == cur->key) {
      cur->count = cur->count + 1;
      return root;
    }
    if (key < cur->key) {
      cur = cur->left;
    } else {
      cur = cur->right;
    }
  }
  if (key < parent->key) {
    parent->left = mk_node(key);
  } else {
    parent->right = mk_node(key);
  }
  return root;
}

int lookup(struct node *root, int key) {
  struct node *cur = root;
  while (cur != 0) {
    if (key == cur->key) {
      return cur->count;
    }
    if (key < cur->key) {
      cur = cur->left;
    } else {
      cur = cur->right;
    }
  }
  return 0;
}

int last_seen = -1000000000;
int order_errors = 0;
int visited = 0;

void traverse(struct node *n) {
  if (n == 0) {
    return;
  }
  traverse(n->left);
  if (n->key < last_seen) {
    order_errors = order_errors + 1; /* would indicate a bug */
  }
  last_seen = n->key;
  visited = visited + 1;
  traverse(n->right);
}

int depth_of(struct node *n) {
  int dl;
  int dr;
  if (n == 0) {
    return 0;
  }
  dl = depth_of(n->left);
  dr = depth_of(n->right);
  return 1 + i_max(dl, dr);
}

int main() {
  int n = arg(0);
  int lookups = arg(1);
  int range = arg(2);
  int i;
  int hits = 0;
  struct node *root = 0;
  rt_srand(arg(3));
  if (range <= 0) {
    range = 1;
  }
  for (i = 0; i < n; i = i + 1) {
    root = insert(root, rt_rand_range(range));
  }
  for (i = 0; i < lookups; i = i + 1) {
    if (lookup(root, rt_rand_range(range)) > 0) {
      hits = hits + 1;
    }
  }
  traverse(root);
  if (order_errors > 0) {
    print_str("treesort ORDER ERROR\n");
    trap();
  }
  print_str("treesort nodes=");
  print_int(nodes_made);
  print_str(" visited=");
  print_int(visited);
  print_str(" hits=");
  print_int(hits);
  print_str(" depth=");
  print_int(depth_of(root));
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// basicinterp — stack-machine bytecode interpreter (congress flavor)
//===----------------------------------------------------------------------===//

const char *BasicInterpSource = R"MC(
/* A stack-machine interpreter. Opcodes: 0 HALT, 1 PUSH k, 2 ADD, 3 SUB,
   4 MUL, 5 DUP, 6 SWAP, 7 JZ addr, 8 JMP addr, 9 LOAD slot,
   10 STORE slot, 11 LT, 12 MOD, 13 PRINTACC (accumulate, not print).
   The interpreter runs two embedded programs: a prime counter and an
   iterative fibonacci, each driven by dataset parameters. */

int code_op[256];
int code_arg[256];
int stack[256];
int slots[16];
int out_acc = 0;

int run(int limit) {
  int pc = 0;
  int sp = 0;
  int steps = 0;
  int a;
  int b;
  while (steps < limit) {
    int op = code_op[pc];
    int k = code_arg[pc];
    steps = steps + 1;
    pc = pc + 1;
    if (op == 0) {
      return steps;
    } else if (op == 1) {
      stack[sp] = k;
      sp = sp + 1;
    } else if (op == 2) {
      sp = sp - 1;
      stack[sp - 1] = stack[sp - 1] + stack[sp];
    } else if (op == 3) {
      sp = sp - 1;
      stack[sp - 1] = stack[sp - 1] - stack[sp];
    } else if (op == 4) {
      sp = sp - 1;
      stack[sp - 1] = stack[sp - 1] * stack[sp];
    } else if (op == 5) {
      stack[sp] = stack[sp - 1];
      sp = sp + 1;
    } else if (op == 6) {
      a = stack[sp - 1];
      stack[sp - 1] = stack[sp - 2];
      stack[sp - 2] = a;
    } else if (op == 7) {
      sp = sp - 1;
      if (stack[sp] == 0) {
        pc = k;
      }
    } else if (op == 8) {
      pc = k;
    } else if (op == 9) {
      stack[sp] = slots[k];
      sp = sp + 1;
    } else if (op == 10) {
      sp = sp - 1;
      slots[k] = stack[sp];
    } else if (op == 11) {
      sp = sp - 1;
      a = stack[sp - 1];
      b = stack[sp];
      if (a < b) {
        stack[sp - 1] = 1;
      } else {
        stack[sp - 1] = 0;
      }
    } else if (op == 12) {
      sp = sp - 1;
      if (stack[sp] == 0) {
        trap();
      }
      stack[sp - 1] = stack[sp - 1] % stack[sp];
    } else if (op == 13) {
      sp = sp - 1;
      out_acc = out_acc + stack[sp];
    } else {
      trap(); /* illegal opcode */
    }
    if (sp < 0 || sp > 250) {
      trap(); /* interpreter stack over/underflow */
    }
  }
  return steps;
}

int emit_at = 0;

void emit(int op, int k) {
  code_op[emit_at] = op;
  code_arg[emit_at] = k;
  emit_at = emit_at + 1;
}

/* Bytecode: count primes below n by trial division; the prime count
   accumulates into out_acc via PRINTACC. Slots: 0=cand, 1=div,
   3=isprime. */
void gen_primes(int n) {
  emit_at = 0;
  emit(1, 2);   /*  0: push 2                 */
  emit(10, 0);  /*  1: cand = 2               */
  emit(9, 0);   /*  2: outer: load cand       */
  emit(1, n);   /*  3: push n                 */
  emit(11, 0);  /*  4: cand < n               */
  emit(7, 37);  /*  5: jz end                 */
  emit(1, 1);   /*  6: push 1                 */
  emit(10, 3);  /*  7: isprime = 1            */
  emit(1, 2);   /*  8: push 2                 */
  emit(10, 1);  /*  9: div = 2                */
  emit(9, 0);   /* 10: inner: load cand       */
  emit(9, 1);   /* 11: load div               */
  emit(9, 1);   /* 12: load div               */
  emit(4, 0);   /* 13: div*div                */
  emit(11, 0);  /* 14: cand < div*div         */
  emit(7, 17);  /* 15: jz body (d*d <= cand)  */
  emit(8, 28);  /* 16: jmp check (inner done) */
  emit(9, 0);   /* 17: body: load cand        */
  emit(9, 1);   /* 18: load div               */
  emit(12, 0);  /* 19: cand % div             */
  emit(7, 26);  /* 20: jz notprime            */
  emit(9, 1);   /* 21: load div               */
  emit(1, 1);   /* 22: push 1                 */
  emit(2, 0);   /* 23: add                    */
  emit(10, 1);  /* 24: div = div + 1          */
  emit(8, 10);  /* 25: jmp inner              */
  emit(1, 0);   /* 26: notprime: push 0       */
  emit(10, 3);  /* 27: isprime = 0            */
  emit(9, 3);   /* 28: check: load isprime    */
  emit(7, 32);  /* 29: jz next                */
  emit(9, 3);   /* 30: load isprime           */
  emit(13, 0);  /* 31: acc += isprime         */
  emit(9, 0);   /* 32: next: load cand        */
  emit(1, 1);   /* 33: push 1                 */
  emit(2, 0);   /* 34: add                    */
  emit(10, 0);  /* 35: cand = cand + 1        */
  emit(8, 2);   /* 36: jmp outer              */
  emit(0, 0);   /* 37: halt                   */
}

/* Bytecode: iterative fibonacci mod 9973. Slots: 0=a, 1=b, 2=i. */
void gen_fib(int n) {
  emit_at = 0;
  emit(1, 0);    /*  0: push 0            */
  emit(10, 0);   /*  1: a = 0             */
  emit(1, 1);    /*  2: push 1            */
  emit(10, 1);   /*  3: b = 1             */
  emit(1, 0);    /*  4: push 0            */
  emit(10, 2);   /*  5: i = 0             */
  emit(9, 2);    /*  6: loop: load i      */
  emit(1, n);    /*  7: push n            */
  emit(11, 0);   /*  8: i < n             */
  emit(7, 23);   /*  9: jz end            */
  emit(9, 0);    /* 10: load a            */
  emit(9, 1);    /* 11: load b            */
  emit(2, 0);    /* 12: a + b             */
  emit(1, 9973); /* 13: push 9973         */
  emit(12, 0);   /* 14: (a+b) % 9973      */
  emit(9, 1);    /* 15: load b            */
  emit(10, 0);   /* 16: a = b             */
  emit(10, 1);   /* 17: b = (a+b) % 9973  */
  emit(9, 2);    /* 18: load i            */
  emit(1, 1);    /* 19: push 1            */
  emit(2, 0);    /* 20: add               */
  emit(10, 2);   /* 21: i = i + 1         */
  emit(8, 6);    /* 22: jmp loop          */
  emit(0, 0);    /* 23: halt              */
}

int main() {
  int nprimes = arg(0);
  int nfib = arg(1);
  int limit = arg(2);
  int steps = 0;
  int i;
  gen_primes(nprimes);
  steps = steps + run(limit);
  for (i = 0; i < 4; i = i + 1) {
    gen_fib(nfib + i * 7);
    steps = steps + run(limit);
    out_acc = out_acc + slots[0];
  }
  print_str("basicinterp steps=");
  print_int(steps);
  print_str(" acc=");
  print_int(out_acc);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// hashwords — chained hash table over text (awk flavor)
//===----------------------------------------------------------------------===//

const char *HashwordsSource = R"MC(
/* Word-frequency counting with a chained hash table: reads the dataset
   text, splits it into words, hashes each into one of 1024 buckets,
   walks the chain comparing strings, and bumps or inserts. */

struct entry {
  char name[24];
  int count;
  struct entry *next;
};

struct entry *buckets[1024];
int distinct = 0;
int total_words = 0;
int chain_steps = 0;

int hash_word(char *w, int len) {
  int h = 5381;
  int i;
  for (i = 0; i < len; i = i + 1) {
    h = h * 33 + w[i];
  }
  h = h & 1023;
  if (h < 0) {
    h = 0;
  }
  return h;
}

void add_word(char *w, int len) {
  int h;
  struct entry *e;
  if (len <= 0 || len >= 24) {
    return; /* overlong words are dropped, like awk field limits */
  }
  w[len] = 0;
  total_words = total_words + 1;
  h = hash_word(w, len);
  e = buckets[h];
  while (e != 0) {
    chain_steps = chain_steps + 1;
    if (str_cmp(e->name, w) == 0) {
      e->count = e->count + 1;
      return;
    }
    e = e->next;
  }
  e = (struct entry *)malloc(sizeof(struct entry));
  if (e == 0) {
    trap();
  }
  str_copy(e->name, w);
  e->count = 1;
  e->next = buckets[h];
  buckets[h] = e;
  distinct = distinct + 1;
}

int is_letter(int c) {
  if (c >= 97 && c <= 122) {
    return 1;
  }
  if (c >= 65 && c <= 90) {
    return 1;
  }
  return 0;
}

int main() {
  int n = input_len();
  int i;
  int wlen = 0;
  int maxcount = 0;
  char word[32];
  struct entry *e;
  int b;
  for (i = 0; i < n; i = i + 1) {
    int c = input_byte(i);
    if (is_letter(c)) {
      if (wlen < 30) {
        word[wlen] = c;
        wlen = wlen + 1;
      }
    } else {
      if (wlen > 0) {
        add_word(word, wlen);
      }
      wlen = 0;
    }
  }
  if (wlen > 0) {
    add_word(word, wlen);
  }
  for (b = 0; b < 1024; b = b + 1) {
    e = buckets[b];
    while (e != 0) {
      if (e->count > maxcount) {
        maxcount = e->count;
      }
      e = e->next;
    }
  }
  print_str("hashwords words=");
  print_int(total_words);
  print_str(" distinct=");
  print_int(distinct);
  print_str(" max=");
  print_int(maxcount);
  print_str(" steps=");
  print_int(chain_steps);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// qsortbench — quicksort + binary search battery (qpt flavor)
//===----------------------------------------------------------------------===//

const char *QsortSource = R"MC(
/* Quicksort with median-of-three pivoting and an insertion-sort cutoff
   for small partitions, followed by a binary-search battery and a
   sortedness audit. */

int data[65536];
int nelems = 0;
int swaps = 0;

void swap_at(int i, int j) {
  int t = data[i];
  data[i] = data[j];
  data[j] = t;
  swaps = swaps + 1;
}

void isort(int lo, int hi) {
  int i;
  for (i = lo + 1; i <= hi; i = i + 1) {
    int v = data[i];
    int j = i - 1;
    while (j >= lo && data[j] > v) {
      data[j + 1] = data[j];
      j = j - 1;
    }
    data[j + 1] = v;
  }
}

void qsort_range(int lo, int hi) {
  int pivot;
  int i;
  int j;
  int mid;
  if (hi - lo < 12) {
    isort(lo, hi);
    return;
  }
  mid = lo + (hi - lo) / 2;
  /* median of three */
  if (data[mid] < data[lo]) {
    swap_at(mid, lo);
  }
  if (data[hi] < data[lo]) {
    swap_at(hi, lo);
  }
  if (data[hi] < data[mid]) {
    swap_at(hi, mid);
  }
  pivot = data[mid];
  i = lo;
  j = hi;
  while (i <= j) {
    while (data[i] < pivot) {
      i = i + 1;
    }
    while (data[j] > pivot) {
      j = j - 1;
    }
    if (i <= j) {
      swap_at(i, j);
      i = i + 1;
      j = j - 1;
    }
  }
  qsort_range(lo, j);
  qsort_range(i, hi);
}

int bsearch_key(int key) {
  int lo = 0;
  int hi = nelems - 1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (data[mid] == key) {
      return mid;
    }
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

int main() {
  int n = arg(0);
  int searches = arg(1);
  int i;
  int found = 0;
  int bad = 0;
  rt_srand(arg(2));
  if (n > 65536) {
    n = 65536;
  }
  nelems = n;
  for (i = 0; i < n; i = i + 1) {
    data[i] = rt_rand_range(1000000);
  }
  qsort_range(0, n - 1);
  for (i = 1; i < n; i = i + 1) {
    if (data[i - 1] > data[i]) {
      bad = bad + 1;
    }
  }
  if (bad > 0) {
    print_str("qsortbench SORT ERROR\n");
    trap();
  }
  for (i = 0; i < searches; i = i + 1) {
    if (bsearch_key(rt_rand_range(1000000)) >= 0) {
      found = found + 1;
    }
  }
  print_str("qsortbench n=");
  print_int(n);
  print_str(" swaps=");
  print_int(swaps);
  print_str(" found=");
  print_int(found);
  print_nl();
  return 0;
}
)MC";

} // namespace

void suite::addPointerSuite(std::vector<Workload> &Out) {
  Out.push_back({"lisp",
                 "Tagged-cell expression evaluator (xlisp stand-in)",
                 false,
                 withRuntime(LispSource),
                 {
                     Dataset("ref", {260, 7, 42}),
                     Dataset("small", {60, 6, 7}),
                     Dataset("deep", {40, 10, 99}),
                     Dataset("wide", {600, 5, 1234}),
                 }});
  Out.push_back({"treesort",
                 "Binary search tree insert/search/traverse",
                 false,
                 withRuntime(TreesortSource),
                 {
                     Dataset("ref", {20000, 30000, 40000, 11}),
                     Dataset("dense", {20000, 30000, 2000, 13}),
                     Dataset("small", {2000, 4000, 5000, 17}),
                     Dataset("sparse", {8000, 40000, 10000000, 23}),
                 }});
  Out.push_back({"basicinterp",
                 "Stack-machine bytecode interpreter",
                 false,
                 withRuntime(BasicInterpSource),
                 {
                     Dataset("ref", {2200, 5500, 4000000}),
                     Dataset("small", {500, 1200, 1000000}),
                     Dataset("fibheavy", {200, 40000, 4000000}),
                 }});
  Out.push_back({"hashwords",
                 "Word-frequency hash table over text",
                 false,
                 withRuntime(HashwordsSource),
                 {
                     Dataset("ref", {}, synthText(1, 300000)),
                     Dataset("small", {}, synthText(2, 60000)),
                     Dataset("large", {}, synthText(3, 700000)),
                 }});
  Out.push_back({"qsortbench",
                 "Quicksort + binary search battery (qpt stand-in)",
                 false,
                 withRuntime(QsortSource),
                 {
                     Dataset("ref", {50000, 60000, 5}),
                     Dataset("small", {5000, 10000, 9}),
                     Dataset("searchy", {20000, 200000, 21}),
                 }});
}
