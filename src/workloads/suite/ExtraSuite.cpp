//===- workloads/suite/ExtraSuite.cpp - GC and Huffman workloads ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two further workloads rounding out the suite's coverage of branch
/// idioms: a mark-sweep collector over a mutating object graph (the
/// part of xlisp the paper's pointer/guard heuristics love most), and
/// a Huffman coder (tree building + bit-level I/O, compress's
/// entropy-coding sibling).
///
//===----------------------------------------------------------------------===//

#include "workloads/Runtime.h"
#include "workloads/suite/Suites.h"

using namespace bpfree;

namespace {

//===----------------------------------------------------------------------===//
// markgc — mark-sweep collection over a mutating object graph
//===----------------------------------------------------------------------===//

const char *MarkGcSource = R"MC(
/* A two-field object heap with root set, mutation phases, and
   mark-sweep collections. Mark is an explicit-stack graph walk full of
   null and mark-bit tests; sweep is a linear pass with a free-list
   rebuild. */

struct obj {
  int marked;
  int payload;
  struct obj *left;
  struct obj *right;
};

struct obj *objects[8192];  /* all allocated objects, by slot */
int live[8192];             /* slot in use? */
int freelist[8192];         /* recycled slots (filled by sweep) */
int nfree = 0;
struct obj *roots[64];
int nroots = 0;
int nslots = 0;
int allocated = 0;
int collected = 0;
int mark_steps = 0;
int collections = 0;

struct obj *stack[8192];

struct obj *alloc_obj(int payload) {
  int slot;
  struct obj *o = (struct obj *)malloc(sizeof(struct obj));
  if (o == 0) {
    trap();
  }
  o->marked = 0;
  o->payload = payload;
  o->left = 0;
  o->right = 0;
  if (nfree > 0) {
    nfree = nfree - 1;
    slot = freelist[nfree];
  } else {
    if (nslots >= 8192) {
      trap(); /* heap table full */
    }
    slot = nslots;
    nslots = nslots + 1;
  }
  objects[slot] = o;
  live[slot] = 1;
  allocated = allocated + 1;
  return o;
}

void mark() {
  int sp = 0;
  int r;
  for (r = 0; r < nroots; r = r + 1) {
    if (roots[r] != 0 && roots[r]->marked == 0) {
      roots[r]->marked = 1;
      stack[sp] = roots[r];
      sp = sp + 1;
    }
  }
  while (sp > 0) {
    struct obj *o;
    sp = sp - 1;
    o = stack[sp];
    mark_steps = mark_steps + 1;
    if (o->left != 0 && o->left->marked == 0) {
      o->left->marked = 1;
      stack[sp] = o->left;
      sp = sp + 1;
    }
    if (o->right != 0 && o->right->marked == 0) {
      o->right->marked = 1;
      stack[sp] = o->right;
      sp = sp + 1;
    }
    if (sp >= 8190) {
      trap(); /* mark stack overflow */
    }
  }
}

void sweep() {
  int i;
  for (i = 0; i < nslots; i = i + 1) {
    if (live[i] != 0) {
      if (objects[i]->marked == 0) {
        live[i] = 0; /* slot recycles; the VM heap is a bump allocator */
        freelist[nfree] = i;
        nfree = nfree + 1;
        collected = collected + 1;
      } else {
        objects[i]->marked = 0;
      }
    }
  }
}

void collect() {
  collections = collections + 1;
  mark();
  sweep();
}

/* Random descent: mutations hit interior nodes, not just roots, so
   the live graph develops real depth between collections. */
struct obj *walk_down(struct obj *o, int steps) {
  int k;
  for (k = 0; k < steps; k = k + 1) {
    if (o == 0) {
      return 0;
    }
    if (rt_rand_range(2) == 0) {
      if (o->left != 0) {
        o = o->left;
      }
    } else {
      if (o->right != 0) {
        o = o->right;
      }
    }
  }
  return o;
}

int main() {
  int phases = arg(0);
  int churn = arg(1);
  int p;
  int checksum = 0;
  rt_srand(arg(2));
  nroots = 8;
  {
    int r;
    for (r = 0; r < nroots; r = r + 1) {
      roots[r] = alloc_obj(r);
    }
  }
  for (p = 0; p < phases; p = p + 1) {
    int c;
    for (c = 0; c < churn; c = c + 1) {
      int pick = rt_rand_range(100);
      struct obj *victim =
          walk_down(roots[rt_rand_range(nroots)], rt_rand_range(7));
      if (victim == 0) {
        continue;
      }
      if (pick < 62) {
        /* grow: hang a fresh object off a random reachable edge */
        struct obj *fresh = alloc_obj(p * 1000 + c);
        if (pick % 2 == 0) {
          fresh->left = victim->left;
          victim->left = fresh;
        } else {
          fresh->right = victim->right;
          victim->right = fresh;
        }
      } else if (pick < 72) {
        /* drop a subtree (creates garbage) */
        if (pick % 2 == 0) {
          victim->left = 0;
        } else {
          victim->right = 0;
        }
      } else if (pick < 95) {
        /* rewire: share structure across the graph */
        struct obj *other =
            walk_down(roots[rt_rand_range(nroots)], rt_rand_range(4));
        if (other != 0 && other != victim) {
          victim->right = other->left;
        }
      } else {
        /* replace a root */
        roots[rt_rand_range(nroots)] = alloc_obj(-p);
      }
      if (allocated - collected > 6000) {
        collect();
      }
    }
    collect();
    checksum = checksum + mark_steps % 1000;
  }
  print_str("markgc alloc=");
  print_int(allocated);
  print_str(" collected=");
  print_int(collected);
  print_str(" gcs=");
  print_int(collections);
  print_str(" steps=");
  print_int(mark_steps);
  print_str(" chk=");
  print_int(checksum);
  print_nl();
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// huffman — Huffman coding with round-trip verification
//===----------------------------------------------------------------------===//

const char *HuffmanSource = R"MC(
/* Classic Huffman: byte histogram, tree built by repeated min-pair
   selection, code table by tree walk, bit-packed encode, tree-walking
   decode, byte-for-byte verification. */

int freq[512];      /* node weights (leaves 0..255, internal 256..) */
int left[512];
int right[512];
int parent_of[512];
int active[512];
int nnodes = 256;

int code_bits[256];
int code_len[256];

char bitbuf[1200000];
int bitpos = 0;

void put_bit(int b) {
  if (bitpos >= 9600000) {
    trap(); /* output overflow */
  }
  if (b != 0) {
    bitbuf[bitpos >> 3] = bitbuf[bitpos >> 3] | (1 << (bitpos & 7));
  }
  bitpos = bitpos + 1;
}

int get_bit(int pos) {
  return (bitbuf[pos >> 3] >> (pos & 7)) & 1;
}

/* Returns the active node with smallest weight, or -1. */
int take_min() {
  int best = -1;
  int i;
  for (i = 0; i < nnodes; i = i + 1) {
    if (active[i] != 0 && freq[i] > 0) {
      if (best < 0 || freq[i] < freq[best]) {
        best = i;
      }
    }
  }
  if (best >= 0) {
    active[best] = 0;
  }
  return best;
}

int build_tree() {
  int i;
  for (i = 0; i < 256; i = i + 1) {
    active[i] = freq[i] > 0;
    left[i] = -1;
    right[i] = -1;
  }
  nnodes = 256;
  while (1) {
    int a = take_min();
    int b;
    if (a < 0) {
      trap(); /* empty input handled by caller */
    }
    b = take_min();
    if (b < 0) {
      return a; /* single symbol class or final root */
    }
    left[nnodes] = a;
    right[nnodes] = b;
    freq[nnodes] = freq[a] + freq[b];
    parent_of[a] = nnodes;
    parent_of[b] = nnodes;
    active[nnodes] = 1;
    nnodes = nnodes + 1;
    if (nnodes >= 512) {
      trap();
    }
  }
  return -1;
}

/* Compute each leaf's code by climbing to the root. */
void assign_codes(int root) {
  int s;
  for (s = 0; s < 256; s = s + 1) {
    int bits = 0;
    int len = 0;
    int node = s;
    if (freq[s] == 0) {
      continue;
    }
    while (node != root) {
      int up = parent_of[node];
      bits = bits << 1;
      if (right[up] == node) {
        bits = bits | 1;
      }
      len = len + 1;
      node = up;
    }
    /* bits were collected leaf-to-root: reverse them */
    {
      int rev = 0;
      int k;
      for (k = 0; k < len; k = k + 1) {
        rev = (rev << 1) | ((bits >> k) & 1);
      }
      code_bits[s] = rev;
    }
    code_len[s] = len;
  }
}

int main() {
  int n = input_len();
  int i;
  int root;
  int maxlen = 0;
  int errors = 0;
  if (n == 0) {
    print_str("huffman empty\n");
    return 0;
  }
  for (i = 0; i < n; i = i + 1) {
    freq[input_byte(i)] = freq[input_byte(i)] + 1;
  }
  root = build_tree();
  assign_codes(root);
  for (i = 0; i < 256; i = i + 1) {
    if (code_len[i] > maxlen) {
      maxlen = code_len[i];
    }
  }
  /* encode */
  for (i = 0; i < n; i = i + 1) {
    int s = input_byte(i);
    int k;
    for (k = code_len[s] - 1; k >= 0; k = k - 1) {
      put_bit((code_bits[s] >> k) & 1);
    }
  }
  /* decode + verify */
  {
    int pos = 0;
    for (i = 0; i < n; i = i + 1) {
      int node = root;
      while (left[node] >= 0) {
        if (get_bit(pos) != 0) {
          node = right[node];
        } else {
          node = left[node];
        }
        pos = pos + 1;
      }
      if (node != input_byte(i)) {
        errors = errors + 1;
      }
    }
    if (pos != bitpos || errors > 0) {
      print_str("huffman ROUNDTRIP ERROR\n");
      trap();
    }
  }
  print_str("huffman in=");
  print_int(n * 8);
  print_str(" out=");
  print_int(bitpos);
  print_str(" maxlen=");
  print_int(maxlen);
  print_nl();
  return 0;
}
)MC";

} // namespace

void suite::addExtraSuite(std::vector<Workload> &Out) {
  Out.push_back({"markgc",
                 "Mark-sweep collector over a mutating object graph",
                 false,
                 withRuntime(MarkGcSource),
                 {
                     Dataset("ref", {18, 700, 5}),
                     Dataset("small", {8, 400, 9}),
                     Dataset("churny", {30, 350, 13}),
                 }});
  Out.push_back({"huffman",
                 "Huffman coding with round-trip verification",
                 false,
                 withRuntime(HuffmanSource),
                 {
                     Dataset("ref", {}, synthText(40, 150000)),
                     Dataset("binary", {}, synthBytes(41, 100000)),
                     Dataset("small", {}, synthText(42, 30000)),
                 }});
}
