//===- workloads/suite/Suites.h - Suite construction internals -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header shared by the suite/*.cpp files: each contributes a
/// group of workloads to the registry. Also provides the synthetic text
/// generator used by text workloads' datasets (deterministic stand-in
/// for the paper's file inputs).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_WORKLOADS_SUITE_SUITES_H
#define BPFREE_WORKLOADS_SUITE_SUITES_H

#include "workloads/Workloads.h"

#include <cstdint>
#include <vector>

namespace bpfree {
namespace suite {

void addIntegerSuite(std::vector<Workload> &Out);
void addPointerSuite(std::vector<Workload> &Out);
void addTextSuite(std::vector<Workload> &Out);
void addExtraSuite(std::vector<Workload> &Out);
void addFloatSuite(std::vector<Workload> &Out);
void addAdversarialSuite(std::vector<Workload> &Out);

/// Deterministic synthetic English-like text: lowercase words of mixed
/// length separated by spaces and newlines, with occasional digits and
/// punctuation. Used as the byte input of the text workloads.
std::vector<uint8_t> synthText(uint64_t Seed, size_t Bytes);

/// Deterministic pseudo-random bytes (full 0-255 range), for the
/// compression workload's binary-ish datasets.
std::vector<uint8_t> synthBytes(uint64_t Seed, size_t Bytes);

/// Deterministic iid-uniform bytes: pure noise, no runs. The
/// adversarial workloads' inputs — synthBytes' deliberate run
/// structure is exactly what a history predictor learns, so H2P
/// datasets need bytes with no local correlation at all.
std::vector<uint8_t> synthNoise(uint64_t Seed, size_t Bytes);

} // namespace suite
} // namespace bpfree

#endif // BPFREE_WORKLOADS_SUITE_SUITES_H
