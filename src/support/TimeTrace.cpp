//===- support/TimeTrace.cpp - Chrome trace_event scoped spans ------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TimeTrace.h"

#include <atomic>
#include <cstdio>
#include <mutex>

using namespace bpfree;
using namespace bpfree::timetrace;

namespace {

std::atomic<bool> Enabled{false};

struct Buffer {
  std::mutex Mu;
  std::vector<Event> Events;
  std::chrono::steady_clock::time_point Epoch;
  bool EpochSet = false;
  uint64_t NextTid = 1;
};

Buffer &buffer() {
  static Buffer *B = new Buffer(); // never destroyed (see Metrics.cpp)
  return *B;
}

/// Small dense thread id: assigned on a thread's first completed span.
uint64_t threadId() {
  thread_local uint64_t Tid = 0;
  if (Tid == 0) {
    Buffer &B = buffer();
    std::lock_guard<std::mutex> Lock(B.Mu);
    Tid = B.NextTid++;
  }
  return Tid;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

bool bpfree::timetrace::enabled() {
  return Enabled.load(std::memory_order_relaxed);
}

void bpfree::timetrace::setEnabled(bool On) {
  if (On) {
    Buffer &B = buffer();
    std::lock_guard<std::mutex> Lock(B.Mu);
    if (!B.EpochSet) {
      B.Epoch = std::chrono::steady_clock::now();
      B.EpochSet = true;
    }
  }
  Enabled.store(On, std::memory_order_relaxed);
}

Span::Span(std::string Name, std::string Detail)
    : Name(std::move(Name)), Detail(std::move(Detail)), Active(enabled()) {
  if (Active)
    Start = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!Active)
    return;
  const auto End = std::chrono::steady_clock::now();
  Buffer &B = buffer();
  Event E;
  E.Name = std::move(Name);
  E.Detail = std::move(Detail);
  E.Tid = threadId();
  std::lock_guard<std::mutex> Lock(B.Mu);
  E.StartUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Start - B.Epoch)
          .count());
  E.DurUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count());
  B.Events.push_back(std::move(E));
}

std::vector<Event> bpfree::timetrace::events() {
  Buffer &B = buffer();
  std::lock_guard<std::mutex> Lock(B.Mu);
  return B.Events;
}

void bpfree::timetrace::clear() {
  Buffer &B = buffer();
  std::lock_guard<std::mutex> Lock(B.Mu);
  B.Events.clear();
}

bool bpfree::timetrace::write(const std::string &Path) {
  std::vector<Event> Evs = events();
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  std::fprintf(Out, "{\"traceEvents\": [\n");
  for (size_t I = 0; I < Evs.size(); ++I) {
    const Event &E = Evs[I];
    std::fprintf(Out,
                 "  {\"ph\": \"X\", \"pid\": 1, \"tid\": %llu, "
                 "\"name\": \"%s\", \"ts\": %llu, \"dur\": %llu",
                 static_cast<unsigned long long>(E.Tid),
                 escape(E.Name).c_str(),
                 static_cast<unsigned long long>(E.StartUs),
                 static_cast<unsigned long long>(E.DurUs));
    if (!E.Detail.empty())
      std::fprintf(Out, ", \"args\": {\"detail\": \"%s\"}",
                   escape(E.Detail).c_str());
    std::fprintf(Out, "}%s\n", I + 1 == Evs.size() ? "" : ",");
  }
  std::fprintf(Out, "]}\n");
  std::fclose(Out);
  return true;
}
