//===- support/Crc32.cpp - CRC32C checksums -------------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Crc32.h"

#include <array>

using namespace bpfree;

namespace {

/// Reflected CRC32C polynomial.
constexpr uint32_t Poly = 0x82F63B78u;

/// Slicing-by-4 tables: Tables[0] is the classic byte-at-a-time table,
/// Tables[K][B] extends it so four input bytes fold in one step. Built
/// at static-init time (64 KiB of arithmetic) instead of being embedded
/// as a 4 KiB literal blob — cheaper to review and impossible to
/// mistranscribe.
struct CrcTables {
  std::array<std::array<uint32_t, 256>, 4> T;

  CrcTables() {
    for (uint32_t B = 0; B < 256; ++B) {
      uint32_t C = B;
      for (int K = 0; K < 8; ++K)
        C = (C >> 1) ^ ((C & 1) ? Poly : 0);
      T[0][B] = C;
    }
    for (uint32_t B = 0; B < 256; ++B)
      for (size_t K = 1; K < 4; ++K)
        T[K][B] = (T[K - 1][B] >> 8) ^ T[0][T[K - 1][B] & 0xFF];
  }
};

const CrcTables Tables;

} // namespace

uint32_t bpfree::crc32c(const void *Data, size_t Size, uint32_t Seed) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t C = ~Seed;
  const auto &T = Tables.T;
  while (Size >= 4) {
    C ^= static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
    C = T[3][C & 0xFF] ^ T[2][(C >> 8) & 0xFF] ^ T[1][(C >> 16) & 0xFF] ^
        T[0][C >> 24];
    P += 4;
    Size -= 4;
  }
  while (Size--)
    C = (C >> 8) ^ T[0][(C ^ *P++) & 0xFF];
  return ~C;
}
