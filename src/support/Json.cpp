//===- support/Json.cpp - Minimal JSON reading and writing ----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace bpfree;
using json::Value;

namespace {

/// Recursive-descent parser over the document subset our writers emit.
class Parser {
public:
  Parser(const char *Begin, const char *End) : P(Begin), E(End) {}

  bool parse(Value &Out) { return value(Out) && (ws(), P == E); }

private:
  /// Containers may nest at most this deep. Object and array parsing
  /// recurse, so without a ceiling a hostile document ("[[[[..." a few
  /// hundred thousand bytes long) overflows the stack before the parser
  /// ever sees a syntax error; 256 is far beyond anything our writers
  /// emit while keeping worst-case stack use a few hundred frames.
  static constexpr int MaxDepth = 256;

  const char *P;
  const char *E;
  int Depth = 0;

  void ws() {
    while (P != E && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }
  bool lit(const char *S, size_t N) {
    if (static_cast<size_t>(E - P) < N || std::strncmp(P, S, N) != 0)
      return false;
    P += N;
    return true;
  }

  bool value(Value &Out) {
    ws();
    if (P == E)
      return false;
    switch (*P) {
    case '{':
    case '[': {
      if (Depth >= MaxDepth)
        return false;
      ++Depth;
      const bool Ok = *P == '{' ? object(Out) : array(Out);
      --Depth;
      return Ok;
    }
    case '"':
      Out.K = Value::String;
      return string(Out.Str);
    case 't':
      Out.K = Value::Bool;
      Out.B = true;
      return lit("true", 4);
    case 'f':
      Out.K = Value::Bool;
      Out.B = false;
      return lit("false", 5);
    case 'n':
      Out.K = Value::Null;
      return lit("null", 4);
    default:
      return number(Out);
    }
  }

  bool object(Value &Out) {
    Out.K = Value::Object;
    ++P; // '{'
    ws();
    if (P != E && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      ws();
      std::string Key;
      if (P == E || *P != '"' || !string(Key))
        return false;
      ws();
      if (P == E || *P != ':')
        return false;
      ++P;
      Value V;
      if (!value(V))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      ws();
      if (P == E)
        return false;
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }

  bool array(Value &Out) {
    Out.K = Value::Array;
    ++P; // '['
    ws();
    if (P != E && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      Value V;
      if (!value(V))
        return false;
      Out.Arr.push_back(std::move(V));
      ws();
      if (P == E)
        return false;
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }

  bool string(std::string &Out) {
    ++P; // '"'
    Out.clear();
    while (P != E && *P != '"') {
      if (*P == '\\') {
        if (++P == E)
          return false;
        switch (*P) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'u': {
          if (E - P < 5)
            return false;
          char Hex[5] = {P[1], P[2], P[3], P[4], 0};
          Out += static_cast<char>(std::strtoul(Hex, nullptr, 16));
          P += 4;
          break;
        }
        default:
          return false;
        }
        ++P;
      } else {
        Out += *P++;
      }
    }
    if (P == E)
      return false;
    ++P; // closing '"'
    return true;
  }

  bool number(Value &Out) {
    char *End = nullptr;
    Out.K = Value::Number;
    Out.Num = std::strtod(P, &End);
    if (End == P || End > E)
      return false;
    P = End;
    return true;
  }
};

} // namespace

Expected<Value> json::parse(const std::string &Text, const std::string &What) {
  Value Root;
  Parser P(Text.data(), Text.data() + Text.size());
  if (!P.parse(Root))
    return Diag(ErrorKind::InvalidArgument, "malformed " + What);
  return Root;
}

Expected<Value> json::parseFile(const std::string &Path) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In)
    return Diag(ErrorKind::InvalidArgument, "cannot open '" + Path + "'");
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Text.append(Buf, N);
  std::fclose(In);
  return parse(Text, "JSON in '" + Path + "'");
}

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

uint64_t json::asU64(double D) {
  return D <= 0 ? 0 : static_cast<uint64_t>(D + 0.5);
}
