//===- support/Metrics.cpp - Process-wide metrics registry ----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

using namespace bpfree;
using namespace bpfree::metrics;

namespace {

std::atomic<bool> Enabled{false};

/// The registry proper. Metrics are heap-allocated and never freed while
/// the process lives, so references handed out by counter()/gauge()/
/// timer() stay valid without further locking. One map per kind keeps
/// the same name usable for at most one kind (first registration wins —
/// reusing a counter name as a timer is a bug we surface by returning
/// the original object's kind in snapshot()).
struct Registry {
  std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Timer>> Timers;
  std::vector<RunRecord> Runs;
  std::vector<PhaseRecord> Phases;
};

Registry &registry() {
  static Registry *R = new Registry(); // never destroyed: metrics may be
                                       // touched during static teardown
  return *R;
}

template <class T>
T &intern(std::map<std::string, std::unique_ptr<T>> &Map,
          const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::unique_ptr<T> &Slot = Map[Name];
  if (!Slot)
    Slot = std::make_unique<T>();
  return *Slot;
}

} // namespace

bool bpfree::metrics::enabled() {
  return Enabled.load(std::memory_order_relaxed);
}

void bpfree::metrics::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

Counter &bpfree::metrics::counter(const std::string &Name) {
  return intern(registry().Counters, Name);
}

Gauge &bpfree::metrics::gauge(const std::string &Name) {
  return intern(registry().Gauges, Name);
}

Timer &bpfree::metrics::timer(const std::string &Name) {
  return intern(registry().Timers, Name);
}

std::vector<Sample> bpfree::metrics::snapshot() {
  Registry &R = registry();
  std::vector<Sample> Out;
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (const auto &[Name, C] : R.Counters)
    Out.push_back({Name, "counter", C->value(), 0});
  for (const auto &[Name, G] : R.Gauges)
    Out.push_back({Name, "gauge", G->value(), 0});
  for (const auto &[Name, T] : R.Timers)
    Out.push_back({Name, "timer", T->nanos(), T->count()});
  std::sort(Out.begin(), Out.end(),
            [](const Sample &A, const Sample &B) { return A.Name < B.Name; });
  return Out;
}

void bpfree::metrics::resetAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (auto &[Name, C] : R.Counters)
    C->reset();
  for (auto &[Name, G] : R.Gauges)
    G->reset();
  for (auto &[Name, T] : R.Timers)
    T->reset();
  R.Runs.clear();
  R.Phases.clear();
}

void bpfree::metrics::recordRun(RunRecord Rec) {
  if (!enabled())
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Runs.push_back(std::move(Rec));
}

std::vector<RunRecord> bpfree::metrics::runRecords() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Runs;
}

void bpfree::metrics::clearRunRecords() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Runs.clear();
}

void bpfree::metrics::recordPhase(PhaseRecord Rec) {
  if (!enabled())
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Phases.push_back(std::move(Rec));
}

std::vector<PhaseRecord> bpfree::metrics::phaseRecords() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Phases;
}

void bpfree::metrics::clearPhaseRecords() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Phases.clear();
}
