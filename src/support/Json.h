//===- support/Json.h - Minimal JSON reading and writing --------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON subset every machine-readable document in the project uses
/// (run manifests, explain reports): objects, arrays, strings with the
/// usual escapes, numbers, booleans, and null. One tree type (Value),
/// one recursive-descent parser, and the string escaper the writers
/// share. Writers emit JSON by hand with fprintf — the documents are
/// flat and the code reads better next to its schema — so this header
/// deliberately offers no serializer, only the escape helper.
///
/// Readers built on parse() skip unknown keys (the accessors return
/// defaults for missing members), so older binaries tolerate newer
/// documents — the forward-compatibility rule the manifest check and
/// the explain validator both rely on.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_JSON_H
#define BPFREE_SUPPORT_JSON_H

#include "support/Error.h"

#include <string>
#include <utility>
#include <vector>

namespace bpfree {
namespace json {

/// One parsed JSON value. Object members keep document order.
struct Value {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;

  /// \returns the member named \p Key, or nullptr (objects only).
  const Value *find(const std::string &Key) const {
    for (const auto &[K2, V] : Obj)
      if (K2 == Key)
        return &V;
    return nullptr;
  }
  /// String member \p Key, or "" when absent or not a string.
  std::string str(const std::string &Key) const {
    const Value *V = find(Key);
    return V && V->K == String ? V->Str : "";
  }
  /// Numeric member \p Key, or \p Default when absent or not a number.
  double num(const std::string &Key, double Default = 0.0) const {
    const Value *V = find(Key);
    return V && V->K == Number ? V->Num : Default;
  }
  /// Boolean member \p Key; false when absent or not a boolean.
  bool boolean(const std::string &Key) const {
    const Value *V = find(Key);
    return V && V->K == Bool && V->B;
  }
  /// True when the object has a member named \p Key (any type).
  bool has(const std::string &Key) const { return find(Key) != nullptr; }
};

/// Parses \p Text as one JSON document. A syntax error or trailing
/// garbage yields a Diag of kind InvalidArgument mentioning \p What.
Expected<Value> parse(const std::string &Text,
                      const std::string &What = "JSON document");

/// Reads and parses the file at \p Path. Open failures and malformed
/// documents yield a Diag of kind InvalidArgument.
Expected<Value> parseFile(const std::string &Path);

/// Escapes \p S for embedding in a JSON string literal (quotes not
/// included).
std::string escape(const std::string &S);

/// Non-negative integer from a parsed number (negatives clamp to 0,
/// halves round) — the counters every schema in the project stores.
uint64_t asU64(double D);

} // namespace json
} // namespace bpfree

#endif // BPFREE_SUPPORT_JSON_H
