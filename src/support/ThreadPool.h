//===- support/ThreadPool.h - Minimal deterministic work pool ---*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small thread pool plus the parallelFor helper the suite driver and
/// the trace-replay engine fan out on. Determinism contract: the pool
/// schedules *when* tasks run, never *what* they compute — callers index
/// results by task id into preallocated slots, so the output of a
/// parallel run is bit-identical to the serial one regardless of
/// interleaving.
///
/// parallelFor(Jobs <= 1, ...) never spawns a thread; the serial path is
/// a plain loop, which keeps single-core machines and determinism
/// baselines free of threading overhead.
///
/// Parallel invocations share one process-wide pool (ThreadPool::shared)
/// instead of constructing and joining a fresh pool per call: thread
/// creation costs dominate short fan-outs (a 22-item suite sweep paid
/// ~N thread spawns per parallelFor before this), so workers are spawned
/// once, grown on demand, and reused. Each parallelFor tracks completion
/// with its own latch, so concurrent calls from different threads don't
/// observe each other's tasks. parallelFor must not be called from inside
/// a pool task (no nesting): the inner call's tasks would wait behind the
/// outer ones on the same workers and can deadlock a small pool.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_THREADPOOL_H
#define BPFREE_SUPPORT_THREADPOOL_H

#include "support/Metrics.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <new>
#include <queue>
#include <thread>
#include <vector>

namespace bpfree {

/// Pool of worker threads draining a FIFO task queue. Grows on demand
/// (ensure), never shrinks.
class ThreadPool {
public:
  explicit ThreadPool(unsigned Threads) {
    if (Threads == 0)
      Threads = 1;
    std::lock_guard<std::mutex> Lock(Mu);
    spawnLocked(Threads);
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stopping = true;
    }
    QueueCv.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return static_cast<unsigned>(Workers.size());
  }

  /// Grows the pool to at least \p Threads workers; no-op if already that
  /// large. Safe to call concurrently with running tasks.
  void ensure(unsigned Threads) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Threads > Workers.size())
      spawnLocked(Threads - static_cast<unsigned>(Workers.size()));
  }

  /// Enqueues \p Task; it runs on some worker thread. Tasks must not
  /// call submit()/wait() on their own pool. Throws std::bad_alloc when
  /// queue storage cannot be allocated (callers like parallelFor must
  /// account for tasks that never made it in — see below).
  void submit(std::function<void()> Task) {
    {
      // Test shim: a countdown of -1 is disabled; 0 fails this submit.
      // Lets tests exercise the mid-dispatch allocation-failure path
      // without an actual failing allocator.
      int C = DebugFailSubmitCountdown.load(std::memory_order_relaxed);
      if (C >= 0) [[unlikely]] {
        if (C == 0) {
          // One-shot: disarm before throwing so the process recovers.
          DebugFailSubmitCountdown.store(-1, std::memory_order_relaxed);
          throw std::bad_alloc();
        }
        DebugFailSubmitCountdown.store(C - 1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> Lock(Mu);
      Queue.push(std::move(Task));
      ++Outstanding;
    }
    QueueCv.notify_one();
  }

  /// Makes the (countdown+1)-th subsequent submit() throw std::bad_alloc;
  /// -1 disables the shim (the default). Testing hook only.
  static void debugFailSubmitAfter(int Countdown) {
    DebugFailSubmitCountdown.store(Countdown, std::memory_order_relaxed);
  }

  /// Blocks until every submitted task has finished running. On the
  /// shared pool this includes tasks submitted by other callers; prefer
  /// a caller-local latch (as parallelFor does) for scoped joins.
  void wait() {
    std::unique_lock<std::mutex> Lock(Mu);
    IdleCv.wait(Lock, [this] { return Outstanding == 0; });
  }

  /// hardware_concurrency with a floor of 1 (the standard may report 0).
  static unsigned defaultConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

  /// The process-wide pool every parallelFor call reuses. Created on
  /// first use with defaultConcurrency() workers; grow with ensure().
  /// Joined at static destruction, after every parallelFor has drained.
  static ThreadPool &shared() {
    static ThreadPool Pool(defaultConcurrency());
    return Pool;
  }

private:
  void spawnLocked(unsigned Count) {
    for (unsigned I = 0; I < Count; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  void workerLoop() {
    // Worker-level observability: tasks executed plus busy/idle wall
    // time, accumulated per dequeue (tasks are coarse — a parallelFor
    // worker drains many indices in one task — so two clock samples per
    // task are noise). Clocks are sampled only while metrics collection
    // is enabled; the disabled path costs one predictable branch.
    for (;;) {
      std::function<void()> Task;
      const bool Observe = metrics::enabled();
      std::chrono::steady_clock::time_point T0;
      if (Observe)
        T0 = std::chrono::steady_clock::now();
      {
        std::unique_lock<std::mutex> Lock(Mu);
        QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained
        Task = std::move(Queue.front());
        Queue.pop();
      }
      std::chrono::steady_clock::time_point T1;
      if (Observe) {
        T1 = std::chrono::steady_clock::now();
        static metrics::Timer &Idle = metrics::timer("pool.idle");
        Idle.addNanos(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count()));
      }
      Task();
      if (Observe) {
        static metrics::Counter &Tasks = metrics::counter("pool.tasks");
        static metrics::Timer &Busy = metrics::timer("pool.busy");
        Tasks.add();
        Busy.addNanos(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - T1)
                .count()));
      }
      {
        std::lock_guard<std::mutex> Lock(Mu);
        if (--Outstanding == 0)
          IdleCv.notify_all();
      }
    }
  }

  /// See debugFailSubmitAfter. Inline so the header-only pool needs no
  /// dedicated translation unit.
  inline static std::atomic<int> DebugFailSubmitCountdown{-1};

  mutable std::mutex Mu;
  std::condition_variable QueueCv;
  std::condition_variable IdleCv;
  std::queue<std::function<void()>> Queue;
  size_t Outstanding = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

/// Runs Body(0..N-1), using up to \p Jobs workers of the shared pool.
/// Jobs <= 1 (or N <= 1) executes inline on the calling thread with no
/// pool at all. Bodies for different indices run concurrently; each
/// index runs exactly once. Returns after every index has completed (the
/// join gives the caller a happens-before edge on everything the bodies
/// wrote). Must not be called from inside a pool task (no nesting).
///
/// If a Body throws, the first exception is captured and rethrown on the
/// calling thread after this call's tasks drain — same observable
/// behavior as the serial path (minus the indices that raced ahead),
/// never std::terminate. Remaining indices are skipped once an exception
/// is recorded.
///
/// If submit() itself throws mid-dispatch (queue allocation failure),
/// the tasks that never made it into the pool are subtracted from the
/// completion latch before waiting — the old code initialized the latch
/// to the full worker count and deadlocked in that case, since fewer
/// workers than planned would ever decrement it. The workers that *were*
/// submitted still drain every index through the shared Next counter, so
/// the call completes all N bodies; if not even one task was submitted,
/// the bodies run inline on the calling thread instead.
inline void parallelFor(unsigned Jobs, size_t N,
                        const std::function<void(size_t)> &Body) {
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  const unsigned Threads = static_cast<unsigned>(std::min<size_t>(Jobs, N));
  ThreadPool &Pool = ThreadPool::shared();
  Pool.ensure(Threads);

  // Caller-local completion latch: the shared pool may be running tasks
  // for other callers, so Pool.wait() would over-wait; count down only
  // this call's tasks instead.
  std::mutex LatchMu;
  std::condition_variable LatchCv;
  unsigned Remaining = Threads;
  std::atomic<size_t> Next{0};
  std::atomic<bool> Failed{false};
  std::exception_ptr FirstError;
  std::mutex ErrorMu;
  unsigned Submitted = 0;
  try {
    for (unsigned W = 0; W < Threads; ++W) {
      Pool.submit([&] {
        for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
             I = Next.fetch_add(1, std::memory_order_relaxed)) {
          if (Failed.load(std::memory_order_relaxed))
            break;
          try {
            Body(I);
          } catch (...) {
            std::lock_guard<std::mutex> Lock(ErrorMu);
            if (!FirstError)
              FirstError = std::current_exception();
            Failed.store(true, std::memory_order_relaxed);
          }
        }
        // Notify while holding the lock: the caller cannot pass its wait
        // predicate (and destroy the latch) until we release, so the cv
        // is guaranteed alive for the notify call.
        std::lock_guard<std::mutex> Lock(LatchMu);
        --Remaining;
        LatchCv.notify_one();
      });
      ++Submitted;
    }
  } catch (...) {
    // Dispatch failure (e.g. bad_alloc pushing onto the queue). The
    // exception is swallowed, not rethrown: the submitted workers still
    // complete every index, so the caller's contract — all N bodies run
    // exactly once — holds; degraded parallelism is not an error.
    static metrics::Counter &DispatchFailures =
        metrics::counter("pool.dispatch_failures");
    DispatchFailures.add();
  }
  if (Submitted == 0) {
    // Nothing made it into the pool: run the serial path. Body
    // exceptions propagate directly, as in the Jobs <= 1 case.
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  {
    std::unique_lock<std::mutex> Lock(LatchMu);
    // Account for the tasks that never reached the queue — only the
    // Submitted workers will ever decrement the latch.
    Remaining -= Threads - Submitted;
    LatchCv.wait(Lock, [&] { return Remaining == 0; });
  }
  if (FirstError)
    std::rethrow_exception(FirstError);
}

} // namespace bpfree

#endif // BPFREE_SUPPORT_THREADPOOL_H
