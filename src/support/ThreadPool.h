//===- support/ThreadPool.h - Minimal deterministic work pool ---*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool plus the parallelFor helper the suite
/// driver fans out on. Determinism contract: the pool schedules *when*
/// tasks run, never *what* they compute — callers index results by task
/// id into preallocated slots, so the output of a parallel run is
/// bit-identical to the serial one regardless of interleaving.
///
/// parallelFor(Jobs <= 1, ...) never spawns a thread; the serial path is
/// a plain loop, which keeps single-core machines and determinism
/// baselines free of threading overhead.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_THREADPOOL_H
#define BPFREE_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bpfree {

/// Fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  explicit ThreadPool(unsigned Threads) {
    if (Threads == 0)
      Threads = 1;
    Workers.reserve(Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stopping = true;
    }
    QueueCv.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task; it runs on some worker thread. Tasks must not
  /// call submit()/wait() on their own pool.
  void submit(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Queue.push(std::move(Task));
      ++Outstanding;
    }
    QueueCv.notify_one();
  }

  /// Blocks until every submitted task has finished running.
  void wait() {
    std::unique_lock<std::mutex> Lock(Mu);
    IdleCv.wait(Lock, [this] { return Outstanding == 0; });
  }

  /// hardware_concurrency with a floor of 1 (the standard may report 0).
  static unsigned defaultConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained
        Task = std::move(Queue.front());
        Queue.pop();
      }
      Task();
      {
        std::lock_guard<std::mutex> Lock(Mu);
        if (--Outstanding == 0)
          IdleCv.notify_all();
      }
    }
  }

  std::mutex Mu;
  std::condition_variable QueueCv;
  std::condition_variable IdleCv;
  std::queue<std::function<void()>> Queue;
  size_t Outstanding = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

/// Runs Body(0..N-1), using up to \p Jobs workers. Jobs <= 1 (or N <= 1)
/// executes inline on the calling thread with no pool at all. Bodies for
/// different indices run concurrently; each index runs exactly once.
/// Returns after every index has completed (the join gives the caller a
/// happens-before edge on everything the bodies wrote).
///
/// If a Body throws, the first exception is captured and rethrown on the
/// calling thread after all workers drain — same observable behavior as
/// the serial path (minus the indices that raced ahead), never
/// std::terminate. Remaining indices are skipped once an exception is
/// recorded.
inline void parallelFor(unsigned Jobs, size_t N,
                        const std::function<void(size_t)> &Body) {
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  unsigned Threads = static_cast<unsigned>(
      std::min<size_t>(Jobs, N));
  ThreadPool Pool(Threads);
  std::atomic<size_t> Next{0};
  std::atomic<bool> Failed{false};
  std::exception_ptr FirstError;
  std::mutex ErrorMu;
  for (unsigned W = 0; W < Threads; ++W)
    Pool.submit([&] {
      for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
           I = Next.fetch_add(1, std::memory_order_relaxed)) {
        if (Failed.load(std::memory_order_relaxed))
          return;
        try {
          Body(I);
        } catch (...) {
          std::lock_guard<std::mutex> Lock(ErrorMu);
          if (!FirstError)
            FirstError = std::current_exception();
          Failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  Pool.wait();
  if (FirstError)
    std::rethrow_exception(FirstError);
}

} // namespace bpfree

#endif // BPFREE_SUPPORT_THREADPOOL_H
