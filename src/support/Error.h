//===- support/Error.h - Lightweight result/error types --------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-handling vocabulary for the library. We follow the LLVM
/// convention of separating programmatic errors (asserts) from recoverable
/// errors (bad source programs, runtime traps), but the library is small
/// enough that a string-carrying Diag plus Expected<T> suffices.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_ERROR_H
#define BPFREE_SUPPORT_ERROR_H

#include <cassert>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace bpfree {

/// A recoverable diagnostic with an optional source location. Used by the
/// MiniC frontend (parse/type errors) and the VM (runtime traps).
struct Diag {
  std::string Message;
  int Line = 0;   ///< 1-based source line, 0 when not applicable.
  int Column = 0; ///< 1-based source column, 0 when not applicable.

  Diag() = default;
  explicit Diag(std::string Message, int Line = 0, int Column = 0)
      : Message(std::move(Message)), Line(Line), Column(Column) {}

  /// Renders "line:col: message" or just "message" without a location.
  std::string render() const {
    if (Line == 0)
      return Message;
    return std::to_string(Line) + ":" + std::to_string(Column) + ": " +
           Message;
  }
};

/// Either a value or a Diag. Modeled on llvm::Expected but non-owning and
/// copyable; callers must check hasValue() before dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Diag D) : Err(std::move(D)) {}

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &operator*() {
    assert(hasValue() && "dereferencing an error Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(hasValue() && "dereferencing an error Expected");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Diag &error() const {
    assert(!hasValue() && "no error present");
    return Err;
  }

private:
  std::optional<T> Value;
  Diag Err;
};

/// Terminates the program with a message. Used for violated invariants on
/// paths where assert may be compiled out; mirrors llvm::report_fatal_error.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace bpfree

#endif // BPFREE_SUPPORT_ERROR_H
