//===- support/Error.h - Lightweight result/error types --------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-handling vocabulary for the library. We follow the LLVM
/// convention of separating programmatic errors (asserts) from recoverable
/// errors (bad source programs, runtime traps), but the library is small
/// enough that a string-carrying Diag plus Expected<T> suffices.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_ERROR_H
#define BPFREE_SUPPORT_ERROR_H

#include <cassert>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace bpfree {

/// Classifies every recoverable failure the library can report. The
/// pipeline (frontend -> verifier -> VM -> workload driver) tags each
/// Diag with one of these so callers can react per category instead of
/// string-matching messages, and so suite reports can aggregate by kind.
enum class ErrorKind {
  Unknown,         ///< untagged legacy diagnostics
  CompileError,    ///< MiniC lexical / syntactic / semantic error
  VerifyError,     ///< IR failed structural verification
  Trap,            ///< VM runtime fault (bad address, div by zero, trap())
  BudgetExceeded,  ///< instruction budget exhausted
  Timeout,         ///< wall-clock watchdog (RunLimits::MaxMillis) fired
  OutputOverflow,  ///< print budget exceeded with overflow trapping on
  Injected,        ///< manufactured by a FaultInjector (chaos testing)
  InvalidArgument, ///< bad API usage (unknown workload, dataset index...)
  Internal,        ///< invariant violation surfaced as a diagnostic
  CorruptData,     ///< persisted data failed checksum / structure checks
};

/// \returns a stable lower-case name for \p Kind ("compile-error", ...).
const char *errorKindName(ErrorKind Kind);

/// A recoverable diagnostic with an optional source location. Used by the
/// MiniC frontend (parse/type errors) and the VM (runtime traps).
struct Diag {
  std::string Message;
  int Line = 0;   ///< 1-based source line, 0 when not applicable.
  int Column = 0; ///< 1-based source column, 0 when not applicable.
  ErrorKind Kind = ErrorKind::Unknown;

  Diag() = default;
  explicit Diag(std::string Message, int Line = 0, int Column = 0)
      : Message(std::move(Message)), Line(Line), Column(Column) {}
  Diag(ErrorKind Kind, std::string Message)
      : Message(std::move(Message)), Kind(Kind) {}

  /// Renders "line:col: message" or just "message" without a location.
  std::string render() const {
    if (Line == 0)
      return Message;
    return std::to_string(Line) + ":" + std::to_string(Column) + ": " +
           Message;
  }

  /// Renders "[kind] message" for reports that group failures by kind.
  std::string renderWithKind() const {
    return "[" + std::string(errorKindName(Kind)) + "] " + render();
  }
};

/// Either a value or a Diag. Modeled on llvm::Expected but non-owning and
/// copyable; callers must check hasValue() before dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Diag D) : Err(std::move(D)) {}

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &operator*() {
    assert(hasValue() && "dereferencing an error Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(hasValue() && "dereferencing an error Expected");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Diag &error() const {
    assert(!hasValue() && "no error present");
    return Err;
  }

  /// Moves the diagnostic out of an error-state Expected.
  Diag takeError() {
    assert(!hasValue() && "no error present");
    return std::move(Err);
  }

  /// Moves the value out of a value-state Expected.
  T takeValue() {
    assert(hasValue() && "no value present");
    return std::move(*Value);
  }

  /// \returns the contained value, or \p Default when this holds an
  /// error. The rvalue overload supports move-only payloads.
  T valueOr(T Default) const & {
    return hasValue() ? *Value : std::move(Default);
  }
  T valueOr(T Default) && {
    return hasValue() ? std::move(*Value) : std::move(Default);
  }

private:
  std::optional<T> Value;
  Diag Err;
};

/// Terminates the program with a message. Used for violated invariants on
/// paths where assert may be compiled out; mirrors llvm::report_fatal_error.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace bpfree

#endif // BPFREE_SUPPORT_ERROR_H
