//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight process-wide registry of named counters, gauges, and
/// timers — the observability layer every hot subsystem (interpreter,
/// trace capture, replay, suite driver, thread pool) reports through.
/// Design constraints, in order:
///
///   1. Near-zero cost when disabled. Collection is off by default;
///      every mutation starts with one relaxed atomic-bool load and a
///      perfectly-predicted branch. Instrumentation sites therefore sit
///      at *aggregate* boundaries (per run, per chunk, per replay pass),
///      never inside the interpreter's per-instruction loop.
///   2. Thread-safe. Counters and timers are relaxed atomics; the
///      name->metric registry is mutex-protected and append-only, so a
///      reference returned by counter()/gauge()/timer() stays valid for
///      the life of the process and can be cached in a function-local
///      static at the instrumentation site.
///   3. Machine-readable. snapshot() flattens the registry for the run
///      manifest (support/Manifest.h); recordRun() accumulates one
///      structured record per workload execution for the same purpose.
///
/// Naming convention: dotted lower-case paths, subsystem first —
/// "vm.instructions", "trace.events_dropped", "replay.passes",
/// "suite.workloads_ok", "pool.tasks". docs/observability.md lists the
/// metrics each subsystem emits.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_METRICS_H
#define BPFREE_SUPPORT_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {
namespace metrics {

/// \returns true when metric collection is on (off by default).
bool enabled();
/// Turns collection on or off process-wide. Existing values are kept;
/// use resetAll() for a clean slate.
void setEnabled(bool On);

/// Monotonically increasing event count.
class Counter {
public:
  /// Adds \p N when collection is enabled; no-op otherwise.
  void add(uint64_t N = 1) {
    if (enabled())
      V.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written value (e.g. a configuration knob: suite jobs, pool size).
class Gauge {
public:
  void set(uint64_t N) {
    if (enabled())
      V.store(N, std::memory_order_relaxed);
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Accumulated wall time plus an interval count.
class Timer {
public:
  void addNanos(uint64_t Ns) {
    if (enabled()) {
      Nanos.fetch_add(Ns, std::memory_order_relaxed);
      Count.fetch_add(1, std::memory_order_relaxed);
    }
  }
  uint64_t nanos() const { return Nanos.load(std::memory_order_relaxed); }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double millis() const { return static_cast<double>(nanos()) / 1e6; }
  void reset() {
    Nanos.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Nanos{0};
  std::atomic<uint64_t> Count{0};
};

/// RAII interval feeding a Timer. Samples the clock only when collection
/// is enabled at construction, so a disabled registry costs one branch.
class ScopedTimer {
public:
  explicit ScopedTimer(Timer &T) : T(T), Active(enabled()) {
    if (Active)
      Start = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (Active)
      T.addNanos(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()));
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Timer &T;
  bool Active;
  std::chrono::steady_clock::time_point Start;
};

/// Interns \p Name and returns its counter. The reference is valid for
/// the life of the process; cache it in a function-local static at hot
/// call sites so the registry lookup happens once.
Counter &counter(const std::string &Name);
Gauge &gauge(const std::string &Name);
Timer &timer(const std::string &Name);

/// One registry entry flattened for reporting. Timers carry nanoseconds
/// in Value and intervals in Count; counters and gauges leave Count 0.
struct Sample {
  std::string Name;
  std::string Kind; ///< "counter", "gauge", or "timer"
  uint64_t Value = 0;
  uint64_t Count = 0;
};

/// \returns every registered metric, sorted by name.
std::vector<Sample> snapshot();

/// Zeroes every registered metric and clears the run records (the
/// registry itself — the interned names — is never shrunk).
void resetAll();

/// Structured record of one workload execution, appended by the suite
/// driver for every run — successes and failures alike — and embedded
/// per-workload in the run manifest.
struct RunRecord {
  std::string Workload;
  std::string Dataset;
  bool Ok = false;
  std::string Error;     ///< "[kind] message" when !Ok, "" otherwise
  double WallMs = 0.0;   ///< compile + run + stats, one workload
  uint64_t Instructions = 0;
  uint64_t BranchExecs = 0;  ///< executed conditional branches (0 if
                             ///< the run carried no profile)
  uint64_t TraceEvents = 0;  ///< stored trace events (0 without capture)
  uint64_t TraceDropped = 0; ///< events dropped at the trace byte cap
  bool TraceOverflowed = false;
  uint64_t CostHint = 0;     ///< LPT cost estimate used for dispatch
  int DispatchOrder = -1;    ///< position in the LPT queue, -1 = serial
  /// Combined-predictor mispredicts over this run's executed branches
  /// (0 when the run carried no profile). Computed from the per-branch
  /// statistics with the paper-order heuristic cascade — the same
  /// decision procedure the explain layer attributes (ipbc/Attribution).
  uint64_t Mispredicts = 0;
  /// Flat block index of the branch charged the most mispredicts, -1
  /// when no branch executed. The manifest's pointer into the explain
  /// report's hotspot table.
  int64_t HotspotBranch = -1;
};

/// Appends \p R to the process-wide run log (thread-safe). Like the
/// registry, this is gated on enabled(), so unobserved runs stay free.
void recordRun(RunRecord R);

/// \returns a copy of the run log, in record order.
std::vector<RunRecord> runRecords();

/// Clears the run log (resetAll() also does this).
void clearRunRecords();

/// One named benchmark phase's best-rep timing, recorded by bench_perf
/// and embedded in the run manifest so the --check regression gate can
/// compare phase coverage and timings structurally — a phase missing
/// from either side of a check is a hard failure, not a default-valued
/// record.
struct PhaseRecord {
  std::string Name;
  double WallMs = 0.0;
  uint64_t Items = 0;        ///< phase-defined unit count (events, runs…)
  uint64_t Instructions = 0; ///< interpreted instructions, 0 if untracked
};

/// Appends \p P to the process-wide phase log (thread-safe, gated on
/// enabled() like the run log).
void recordPhase(PhaseRecord P);

/// \returns a copy of the phase log, in record order.
std::vector<PhaseRecord> phaseRecords();

/// Clears the phase log (resetAll() also does this).
void clearPhaseRecords();

} // namespace metrics
} // namespace bpfree

#endif // BPFREE_SUPPORT_METRICS_H
