//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the bpfree project: a reproduction of Ball & Larus,
// "Branch Prediction for Free", PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic xorshift-based PRNG. Every experiment in this
/// repository is seeded explicitly, so results are reproducible bit-for-bit
/// across runs and machines. Do not replace with std::mt19937 unless you pin
/// the distribution algorithms as well.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_RNG_H
#define BPFREE_SUPPORT_RNG_H

#include <cstdint>

namespace bpfree {

/// xorshift128+ generator with splitmix64 seeding.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Re-initialize the state from \p Seed via splitmix64 so that nearby
  /// seeds produce unrelated streams.
  void reseed(uint64_t Seed) {
    S0 = splitmix64(Seed);
    S1 = splitmix64(S0 ^ 0xBF58476D1CE4E5B9ULL);
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability \p P of returning true.
  bool chance(double P) { return unit() < P; }

  /// Stateless 64-bit mix, usable for per-key deterministic "random" bits
  /// (for example the Default predictor's per-branch coin flip).
  static uint64_t splitmix64(uint64_t X) {
    X += 0x9E3779B97F4A7C15ULL;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
    return X ^ (X >> 31);
  }

private:
  uint64_t S0, S1;
};

} // namespace bpfree

#endif // BPFREE_SUPPORT_RNG_H
