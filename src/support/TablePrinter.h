//===- support/TablePrinter.h - Fixed-width text tables ---------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-width table renderer used by the bench binaries to print
/// reproductions of the paper's tables. Columns auto-size to their widest
/// cell; numeric cells are right-aligned, text cells left-aligned.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_TABLEPRINTER_H
#define BPFREE_SUPPORT_TABLEPRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace bpfree {

/// Collects rows of string cells and renders them column-aligned.
class TablePrinter {
public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends one row; missing trailing cells render empty, extra cells are
  /// an error (asserted).
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line at this position.
  void addSeparator();

  /// Renders the table to \p OS.
  void print(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

  /// Formats a percentage like the paper: "26" for 26.4%, one decimal only
  /// when below 10 to keep the tables compact ("3.1").
  static std::string formatPercent(double Fraction);

  /// Formats the paper's "C/D" cell: predictor miss rate over perfect miss
  /// rate, both as percentages.
  static std::string formatMissPair(double Miss, double Perfect);

  /// Formats a plain double with \p Decimals digits after the point.
  static std::string formatDouble(double Value, int Decimals);

private:
  std::vector<std::string> Headers;
  // A row is either cells, or empty() == separator marker.
  std::vector<std::vector<std::string>> Rows;
  std::vector<bool> IsSeparator;
};

} // namespace bpfree

#endif // BPFREE_SUPPORT_TABLEPRINTER_H
