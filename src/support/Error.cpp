//===- support/Error.cpp - Lightweight result/error types ----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>

const char *bpfree::errorKindName(ErrorKind Kind) {
  switch (Kind) {
  case ErrorKind::Unknown:
    return "unknown";
  case ErrorKind::CompileError:
    return "compile-error";
  case ErrorKind::VerifyError:
    return "verify-error";
  case ErrorKind::Trap:
    return "trap";
  case ErrorKind::BudgetExceeded:
    return "budget-exceeded";
  case ErrorKind::Timeout:
    return "timeout";
  case ErrorKind::OutputOverflow:
    return "output-overflow";
  case ErrorKind::Injected:
    return "injected";
  case ErrorKind::InvalidArgument:
    return "invalid-argument";
  case ErrorKind::Internal:
    return "internal";
  case ErrorKind::CorruptData:
    return "corrupt-data";
  }
  return "unknown";
}

void bpfree::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "bpfree fatal error: %s\n", Message.c_str());
  std::abort();
}
