//===- support/Error.cpp - Lightweight result/error types ----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>

void bpfree::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "bpfree fatal error: %s\n", Message.c_str());
  std::abort();
}
