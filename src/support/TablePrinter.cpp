//===- support/TablePrinter.cpp - Fixed-width text tables -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace bpfree;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Headers.size() && "row has more cells than headers");
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
  IsSeparator.push_back(false);
}

void TablePrinter::addSeparator() {
  Rows.emplace_back();
  IsSeparator.push_back(true);
}

static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if ((C < '0' || C > '9') && C != '.' && C != '-' && C != '+' && C != '/' &&
        C != '%' && C != 'e')
      return false;
  return true;
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (size_t R = 0; R < Rows.size(); ++R) {
    if (IsSeparator[R])
      continue;
    for (size_t I = 0; I < Rows[R].size(); ++I)
      if (Rows[R][I].size() > Widths[I])
        Widths[I] = Rows[R][I].size();
  }

  auto printSeparator = [&] {
    for (size_t I = 0; I < Widths.size(); ++I) {
      OS << '+';
      for (size_t J = 0; J < Widths[I] + 2; ++J)
        OS << '-';
    }
    OS << "+\n";
  };

  auto printCells = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string &Cell = I < Cells.size() ? Cells[I] : std::string();
      OS << "| ";
      // Right-align numeric-looking cells, left-align everything else.
      size_t Pad = Widths[I] - Cell.size();
      if (looksNumeric(Cell)) {
        for (size_t J = 0; J < Pad; ++J)
          OS << ' ';
        OS << Cell;
      } else {
        OS << Cell;
        for (size_t J = 0; J < Pad; ++J)
          OS << ' ';
      }
      OS << ' ';
    }
    OS << "|\n";
  };

  printSeparator();
  printCells(Headers);
  printSeparator();
  for (size_t R = 0; R < Rows.size(); ++R) {
    if (IsSeparator[R])
      printSeparator();
    else
      printCells(Rows[R]);
  }
  printSeparator();
}

std::string TablePrinter::formatPercent(double Fraction) {
  double Pct = Fraction * 100.0;
  char Buf[32];
  if (Pct != 0.0 && std::fabs(Pct) < 9.95)
    std::snprintf(Buf, sizeof(Buf), "%.1f", Pct);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0f", Pct);
  return Buf;
}

std::string TablePrinter::formatMissPair(double Miss, double Perfect) {
  return formatPercent(Miss) + "/" + formatPercent(Perfect);
}

std::string TablePrinter::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}
