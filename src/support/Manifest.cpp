//===- support/Manifest.cpp - Run manifests and regression checks ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Manifest.h"

#include "support/Json.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <map>

#if defined(_WIN32)
#else
#include <unistd.h>
#endif

using namespace bpfree;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

namespace {

const char *SchemaName = "bpfree-run-manifest-v1";

std::string platformName() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "darwin";
#elif defined(_WIN32)
  return "windows";
#else
  return "unknown";
#endif
}

std::string hostName() {
#if defined(_WIN32)
  return "";
#else
  char Buf[256] = {0};
  if (gethostname(Buf, sizeof(Buf) - 1) != 0)
    return "";
  return Buf;
#endif
}

} // namespace

Manifest bpfree::collectManifest(const std::string &Tool,
                                 const std::string &Config) {
  Manifest M;
  M.Tool = Tool;
  M.Config = Config;
  M.Host = hostName();
  M.Platform = platformName();
  M.HardwareConcurrency = ThreadPool::defaultConcurrency();
  M.Workloads = metrics::runRecords();
  M.Phases = metrics::phaseRecords();
  M.Metrics = metrics::snapshot();
  for (const metrics::RunRecord &R : M.Workloads)
    M.TotalWallMs += R.WallMs;
  return M;
}

bool bpfree::writeManifest(const Manifest &M, const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"%s\",\n", SchemaName);
  std::fprintf(Out, "  \"tool\": \"%s\",\n", json::escape(M.Tool).c_str());
  std::fprintf(Out, "  \"config\": \"%s\",\n", json::escape(M.Config).c_str());
  std::fprintf(Out,
               "  \"host\": {\"hostname\": \"%s\", \"platform\": \"%s\", "
               "\"hardware_concurrency\": %u},\n",
               json::escape(M.Host).c_str(), json::escape(M.Platform).c_str(),
               M.HardwareConcurrency);
  std::fprintf(Out, "  \"total_wall_ms\": %.3f,\n", M.TotalWallMs);
  std::fprintf(Out, "  \"workloads\": [\n");
  for (size_t I = 0; I < M.Workloads.size(); ++I) {
    const metrics::RunRecord &R = M.Workloads[I];
    std::fprintf(
        Out,
        "    {\"name\": \"%s\", \"dataset\": \"%s\", \"ok\": %s, "
        "\"error\": \"%s\", \"wall_ms\": %.3f, \"instructions\": %llu, "
        "\"branch_execs\": %llu, \"trace_events\": %llu, "
        "\"trace_dropped\": %llu, \"trace_overflowed\": %s, "
        "\"cost_hint\": %llu, \"dispatch_order\": %d, "
        "\"mispredicts\": %llu, \"hotspot_branch\": %lld}%s\n",
        json::escape(R.Workload).c_str(), json::escape(R.Dataset).c_str(),
        R.Ok ? "true" : "false", json::escape(R.Error).c_str(), R.WallMs,
        static_cast<unsigned long long>(R.Instructions),
        static_cast<unsigned long long>(R.BranchExecs),
        static_cast<unsigned long long>(R.TraceEvents),
        static_cast<unsigned long long>(R.TraceDropped),
        R.TraceOverflowed ? "true" : "false",
        static_cast<unsigned long long>(R.CostHint), R.DispatchOrder,
        static_cast<unsigned long long>(R.Mispredicts),
        static_cast<long long>(R.HotspotBranch),
        I + 1 == M.Workloads.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"phases\": [\n");
  for (size_t I = 0; I < M.Phases.size(); ++I) {
    const metrics::PhaseRecord &P = M.Phases[I];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"wall_ms\": %.3f, "
                 "\"items\": %llu, \"instructions\": %llu}%s\n",
                 json::escape(P.Name).c_str(), P.WallMs,
                 static_cast<unsigned long long>(P.Items),
                 static_cast<unsigned long long>(P.Instructions),
                 I + 1 == M.Phases.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"metrics\": [\n");
  for (size_t I = 0; I < M.Metrics.size(); ++I) {
    const metrics::Sample &S = M.Metrics[I];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"kind\": \"%s\", "
                 "\"value\": %llu, \"count\": %llu}%s\n",
                 json::escape(S.Name).c_str(), json::escape(S.Kind).c_str(),
                 static_cast<unsigned long long>(S.Value),
                 static_cast<unsigned long long>(S.Count),
                 I + 1 == M.Metrics.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n");
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// Reading. Built on support/Json; unknown keys are skipped so older
// readers tolerate newer manifests, and the optional fields added after
// v1 shipped (mispredicts, hotspot_branch) default when absent.
//===----------------------------------------------------------------------===//

Expected<Manifest> bpfree::readManifest(const std::string &Path) {
  Expected<json::Value> Parsed = json::parseFile(Path);
  if (!Parsed)
    return Parsed.takeError();
  const json::Value &Root = *Parsed;
  if (Root.K != json::Value::Object)
    return Diag(ErrorKind::InvalidArgument,
                "malformed manifest JSON in '" + Path + "'");
  if (Root.str("schema") != SchemaName)
    return Diag(ErrorKind::InvalidArgument,
                "'" + Path + "' is not a " + SchemaName + " document");

  Manifest M;
  M.Tool = Root.str("tool");
  M.Config = Root.str("config");
  M.TotalWallMs = Root.num("total_wall_ms");
  if (const json::Value *Host = Root.find("host")) {
    M.Host = Host->str("hostname");
    M.Platform = Host->str("platform");
    M.HardwareConcurrency =
        static_cast<unsigned>(Host->num("hardware_concurrency"));
  }
  if (const json::Value *Ws = Root.find("workloads")) {
    if (Ws->K != json::Value::Array)
      return Diag(ErrorKind::InvalidArgument,
                  "'workloads' is not an array in '" + Path + "'");
    for (const json::Value &W : Ws->Arr) {
      metrics::RunRecord R;
      R.Workload = W.str("name");
      R.Dataset = W.str("dataset");
      R.Ok = W.boolean("ok");
      R.Error = W.str("error");
      R.WallMs = W.num("wall_ms");
      R.Instructions = json::asU64(W.num("instructions"));
      R.BranchExecs = json::asU64(W.num("branch_execs"));
      R.TraceEvents = json::asU64(W.num("trace_events"));
      R.TraceDropped = json::asU64(W.num("trace_dropped"));
      R.TraceOverflowed = W.boolean("trace_overflowed");
      R.CostHint = json::asU64(W.num("cost_hint"));
      R.DispatchOrder = static_cast<int>(W.num("dispatch_order", -1));
      R.Mispredicts = json::asU64(W.num("mispredicts"));
      R.HotspotBranch = static_cast<int64_t>(W.num("hotspot_branch", -1));
      M.Workloads.push_back(std::move(R));
    }
  }
  // Added after v1 shipped; absent in older manifests (the coverage
  // check then sees zero phases on that side, which is the honest state
  // of such a baseline — regenerate it to adopt phase checking).
  if (const json::Value *Ps = Root.find("phases")) {
    if (Ps->K != json::Value::Array)
      return Diag(ErrorKind::InvalidArgument,
                  "'phases' is not an array in '" + Path + "'");
    for (const json::Value &P : Ps->Arr) {
      metrics::PhaseRecord R;
      R.Name = P.str("name");
      R.WallMs = P.num("wall_ms");
      R.Items = json::asU64(P.num("items"));
      R.Instructions = json::asU64(P.num("instructions"));
      M.Phases.push_back(std::move(R));
    }
  }
  if (const json::Value *Ms = Root.find("metrics")) {
    if (Ms->K != json::Value::Array)
      return Diag(ErrorKind::InvalidArgument,
                  "'metrics' is not an array in '" + Path + "'");
    for (const json::Value &S : Ms->Arr) {
      metrics::Sample Smp;
      Smp.Name = S.str("name");
      Smp.Kind = S.str("kind");
      Smp.Value = json::asU64(S.num("value"));
      Smp.Count = json::asU64(S.num("count"));
      M.Metrics.push_back(std::move(Smp));
    }
  }
  return M;
}

//===----------------------------------------------------------------------===//
// Checking
//===----------------------------------------------------------------------===//

std::string CheckResult::render() const {
  std::string S;
  for (const std::string &F : Failures)
    S += F + "\n";
  return S;
}

CheckResult bpfree::checkManifests(const Manifest &Candidate,
                                   const Manifest &Baseline,
                                   const CheckTolerance &Tol) {
  CheckResult Res;
  auto fail = [&](std::string Msg) { Res.Failures.push_back(std::move(Msg)); };

  // A manifest may hold several records for the same (workload, dataset)
  // — the perf phases run the suite more than once under different
  // configurations. Collapse BOTH sides last-wins so like is compared
  // with like; baseline and candidate are generated by the same flow, so
  // the last record per key corresponds on both sides.
  std::map<std::pair<std::string, std::string>, const metrics::RunRecord *>
      ByKey, BaseByKey;
  for (const metrics::RunRecord &R : Candidate.Workloads)
    ByKey[{R.Workload, R.Dataset}] = &R;
  for (const metrics::RunRecord &R : Baseline.Workloads)
    BaseByKey[{R.Workload, R.Dataset}] = &R;

  for (const metrics::RunRecord &B : Baseline.Workloads) {
    if (BaseByKey[{B.Workload, B.Dataset}] != &B)
      continue; // superseded by a later record for the same key
    auto It = ByKey.find({B.Workload, B.Dataset});
    if (It == ByKey.end()) {
      if (Tol.RequireWorkloadCoverage)
        fail("workload '" + B.Workload + "' (dataset '" + B.Dataset +
             "') present in baseline but missing from candidate");
      continue;
    }
    const metrics::RunRecord &C = *It->second;
    const std::string Tag = "workload '" + B.Workload + "'";
    if (B.Ok && !C.Ok)
      fail(Tag + " succeeded in baseline but failed in candidate: " +
           C.Error);
    if (Tol.WallSlowdown > 1.0 && B.WallMs > 0.0 &&
        C.WallMs > B.WallMs * Tol.WallSlowdown) {
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf),
                    "%s wall time regressed: %.2f ms vs baseline %.2f ms "
                    "(band %.2fx, got %.2fx)",
                    Tag.c_str(), C.WallMs, B.WallMs, Tol.WallSlowdown,
                    C.WallMs / B.WallMs);
      fail(Buf);
    }
    if (Tol.InstrRatio > 0.0 && B.Instructions > 0) {
      const double Ratio = static_cast<double>(C.Instructions) /
                           static_cast<double>(B.Instructions);
      if (Ratio > Tol.InstrRatio || Ratio < 1.0 / Tol.InstrRatio) {
        char Buf[200];
        std::snprintf(
            Buf, sizeof(Buf),
            "%s instruction count drifted: %llu vs baseline %llu "
            "(band %.2fx) — the executed work changed, not just its speed",
            Tag.c_str(), static_cast<unsigned long long>(C.Instructions),
            static_cast<unsigned long long>(B.Instructions),
            Tol.InstrRatio);
        fail(Buf);
      }
    }
    if (!B.TraceOverflowed && C.TraceOverflowed)
      fail(Tag + " trace overflowed its byte cap (baseline's did not)");
  }

  // Phase coverage is two-sided and unconditional: a benchmark phase
  // that exists on only one side means the binaries measure different
  // things — a deleted/renamed phase must never pass the gate as a
  // default-valued record, and a new phase needs a regenerated
  // baseline before it is gated at all. Last-wins collapse by name,
  // like the workload records.
  std::map<std::string, const metrics::PhaseRecord *> PhaseByName,
      BasePhaseByName;
  for (const metrics::PhaseRecord &P : Candidate.Phases)
    PhaseByName[P.Name] = &P;
  for (const metrics::PhaseRecord &P : Baseline.Phases)
    BasePhaseByName[P.Name] = &P;
  for (const auto &[Name, B] : BasePhaseByName) {
    auto It = PhaseByName.find(Name);
    if (It == PhaseByName.end()) {
      fail("phase '" + Name +
           "' present in baseline but missing from candidate — deleted or "
           "renamed phases must fail the gate, not default to zero");
      continue;
    }
    const metrics::PhaseRecord &C = *It->second;
    if (Tol.WallSlowdown > 1.0 && B->WallMs > 0.0 &&
        C.WallMs > B->WallMs * Tol.WallSlowdown) {
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf),
                    "phase '%s' wall time regressed: %.2f ms vs baseline "
                    "%.2f ms (band %.2fx, got %.2fx)",
                    Name.c_str(), C.WallMs, B->WallMs, Tol.WallSlowdown,
                    C.WallMs / B->WallMs);
      fail(Buf);
    }
  }
  for (const auto &[Name, C] : PhaseByName)
    if (BasePhaseByName.find(Name) == BasePhaseByName.end())
      fail("phase '" + Name +
           "' present in candidate but missing from baseline — regenerate "
           "the baseline to gate the new phase");

  if (Tol.WallSlowdown > 1.0 && Baseline.TotalWallMs > 0.0 &&
      Candidate.TotalWallMs > Baseline.TotalWallMs * Tol.WallSlowdown) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "suite total wall time regressed: %.2f ms vs baseline "
                  "%.2f ms (band %.2fx)",
                  Candidate.TotalWallMs, Baseline.TotalWallMs,
                  Tol.WallSlowdown);
    fail(Buf);
  }
  return Res;
}

void bpfree::perturbManifestTimings(Manifest &M, double Factor) {
  M.TotalWallMs *= Factor;
  for (metrics::RunRecord &R : M.Workloads)
    R.WallMs *= Factor;
  for (metrics::PhaseRecord &P : M.Phases)
    P.WallMs *= Factor;
}
