//===- support/Manifest.cpp - Run manifests and regression checks ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Manifest.h"

#include "support/ThreadPool.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#if defined(_WIN32)
#else
#include <unistd.h>
#endif

using namespace bpfree;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

namespace {

const char *SchemaName = "bpfree-run-manifest-v1";

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string platformName() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "darwin";
#elif defined(_WIN32)
  return "windows";
#else
  return "unknown";
#endif
}

std::string hostName() {
#if defined(_WIN32)
  return "";
#else
  char Buf[256] = {0};
  if (gethostname(Buf, sizeof(Buf) - 1) != 0)
    return "";
  return Buf;
#endif
}

} // namespace

Manifest bpfree::collectManifest(const std::string &Tool,
                                 const std::string &Config) {
  Manifest M;
  M.Tool = Tool;
  M.Config = Config;
  M.Host = hostName();
  M.Platform = platformName();
  M.HardwareConcurrency = ThreadPool::defaultConcurrency();
  M.Workloads = metrics::runRecords();
  M.Metrics = metrics::snapshot();
  for (const metrics::RunRecord &R : M.Workloads)
    M.TotalWallMs += R.WallMs;
  return M;
}

bool bpfree::writeManifest(const Manifest &M, const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"%s\",\n", SchemaName);
  std::fprintf(Out, "  \"tool\": \"%s\",\n", jsonEscape(M.Tool).c_str());
  std::fprintf(Out, "  \"config\": \"%s\",\n", jsonEscape(M.Config).c_str());
  std::fprintf(Out,
               "  \"host\": {\"hostname\": \"%s\", \"platform\": \"%s\", "
               "\"hardware_concurrency\": %u},\n",
               jsonEscape(M.Host).c_str(), jsonEscape(M.Platform).c_str(),
               M.HardwareConcurrency);
  std::fprintf(Out, "  \"total_wall_ms\": %.3f,\n", M.TotalWallMs);
  std::fprintf(Out, "  \"workloads\": [\n");
  for (size_t I = 0; I < M.Workloads.size(); ++I) {
    const metrics::RunRecord &R = M.Workloads[I];
    std::fprintf(
        Out,
        "    {\"name\": \"%s\", \"dataset\": \"%s\", \"ok\": %s, "
        "\"error\": \"%s\", \"wall_ms\": %.3f, \"instructions\": %llu, "
        "\"branch_execs\": %llu, \"trace_events\": %llu, "
        "\"trace_dropped\": %llu, \"trace_overflowed\": %s, "
        "\"cost_hint\": %llu, \"dispatch_order\": %d}%s\n",
        jsonEscape(R.Workload).c_str(), jsonEscape(R.Dataset).c_str(),
        R.Ok ? "true" : "false", jsonEscape(R.Error).c_str(), R.WallMs,
        static_cast<unsigned long long>(R.Instructions),
        static_cast<unsigned long long>(R.BranchExecs),
        static_cast<unsigned long long>(R.TraceEvents),
        static_cast<unsigned long long>(R.TraceDropped),
        R.TraceOverflowed ? "true" : "false",
        static_cast<unsigned long long>(R.CostHint), R.DispatchOrder,
        I + 1 == M.Workloads.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"metrics\": [\n");
  for (size_t I = 0; I < M.Metrics.size(); ++I) {
    const metrics::Sample &S = M.Metrics[I];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"kind\": \"%s\", "
                 "\"value\": %llu, \"count\": %llu}%s\n",
                 jsonEscape(S.Name).c_str(), jsonEscape(S.Kind).c_str(),
                 static_cast<unsigned long long>(S.Value),
                 static_cast<unsigned long long>(S.Count),
                 I + 1 == M.Metrics.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n");
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// Reading: a minimal JSON parser for the subset writeManifest emits
// (objects, arrays, strings with the escapes above, numbers, booleans,
// null). Unknown keys are skipped so older readers tolerate newer
// manifests.
//===----------------------------------------------------------------------===//

namespace {

struct JValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JValue> Arr;
  std::vector<std::pair<std::string, JValue>> Obj;

  const JValue *find(const std::string &Key) const {
    for (const auto &[K2, V] : Obj)
      if (K2 == Key)
        return &V;
    return nullptr;
  }
  std::string str(const std::string &Key) const {
    const JValue *V = find(Key);
    return V && V->K == String ? V->Str : "";
  }
  double num(const std::string &Key, double Default = 0.0) const {
    const JValue *V = find(Key);
    return V && V->K == Number ? V->Num : Default;
  }
  bool boolean(const std::string &Key) const {
    const JValue *V = find(Key);
    return V && V->K == Bool && V->B;
  }
};

class JsonParser {
public:
  JsonParser(const char *Begin, const char *End) : P(Begin), E(End) {}

  bool parse(JValue &Out) { return value(Out) && (ws(), P == E); }

private:
  const char *P;
  const char *E;

  void ws() {
    while (P != E && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }
  bool lit(const char *S, size_t N) {
    if (static_cast<size_t>(E - P) < N || std::strncmp(P, S, N) != 0)
      return false;
    P += N;
    return true;
  }

  bool value(JValue &Out) {
    ws();
    if (P == E)
      return false;
    switch (*P) {
    case '{':
      return object(Out);
    case '[':
      return array(Out);
    case '"':
      Out.K = JValue::String;
      return string(Out.Str);
    case 't':
      Out.K = JValue::Bool;
      Out.B = true;
      return lit("true", 4);
    case 'f':
      Out.K = JValue::Bool;
      Out.B = false;
      return lit("false", 5);
    case 'n':
      Out.K = JValue::Null;
      return lit("null", 4);
    default:
      return number(Out);
    }
  }

  bool object(JValue &Out) {
    Out.K = JValue::Object;
    ++P; // '{'
    ws();
    if (P != E && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      ws();
      std::string Key;
      if (P == E || *P != '"' || !string(Key))
        return false;
      ws();
      if (P == E || *P != ':')
        return false;
      ++P;
      JValue V;
      if (!value(V))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      ws();
      if (P == E)
        return false;
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }

  bool array(JValue &Out) {
    Out.K = JValue::Array;
    ++P; // '['
    ws();
    if (P != E && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      JValue V;
      if (!value(V))
        return false;
      Out.Arr.push_back(std::move(V));
      ws();
      if (P == E)
        return false;
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }

  bool string(std::string &Out) {
    ++P; // '"'
    Out.clear();
    while (P != E && *P != '"') {
      if (*P == '\\') {
        if (++P == E)
          return false;
        switch (*P) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'u': {
          if (E - P < 5)
            return false;
          char Hex[5] = {P[1], P[2], P[3], P[4], 0};
          Out += static_cast<char>(std::strtoul(Hex, nullptr, 16));
          P += 4;
          break;
        }
        default:
          return false;
        }
        ++P;
      } else {
        Out += *P++;
      }
    }
    if (P == E)
      return false;
    ++P; // closing '"'
    return true;
  }

  bool number(JValue &Out) {
    char *End = nullptr;
    Out.K = JValue::Number;
    Out.Num = std::strtod(P, &End);
    if (End == P || End > E)
      return false;
    P = End;
    return true;
  }
};

uint64_t asU64(double D) {
  return D <= 0 ? 0 : static_cast<uint64_t>(D + 0.5);
}

} // namespace

Expected<Manifest> bpfree::readManifest(const std::string &Path) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In)
    return Diag(ErrorKind::InvalidArgument,
                "cannot open manifest '" + Path + "'");
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Text.append(Buf, N);
  std::fclose(In);

  JValue Root;
  JsonParser Parser(Text.data(), Text.data() + Text.size());
  if (!Parser.parse(Root) || Root.K != JValue::Object)
    return Diag(ErrorKind::InvalidArgument,
                "malformed manifest JSON in '" + Path + "'");
  if (Root.str("schema") != SchemaName)
    return Diag(ErrorKind::InvalidArgument,
                "'" + Path + "' is not a " + SchemaName + " document");

  Manifest M;
  M.Tool = Root.str("tool");
  M.Config = Root.str("config");
  M.TotalWallMs = Root.num("total_wall_ms");
  if (const JValue *Host = Root.find("host")) {
    M.Host = Host->str("hostname");
    M.Platform = Host->str("platform");
    M.HardwareConcurrency =
        static_cast<unsigned>(Host->num("hardware_concurrency"));
  }
  if (const JValue *Ws = Root.find("workloads")) {
    if (Ws->K != JValue::Array)
      return Diag(ErrorKind::InvalidArgument,
                  "'workloads' is not an array in '" + Path + "'");
    for (const JValue &W : Ws->Arr) {
      metrics::RunRecord R;
      R.Workload = W.str("name");
      R.Dataset = W.str("dataset");
      R.Ok = W.boolean("ok");
      R.Error = W.str("error");
      R.WallMs = W.num("wall_ms");
      R.Instructions = asU64(W.num("instructions"));
      R.BranchExecs = asU64(W.num("branch_execs"));
      R.TraceEvents = asU64(W.num("trace_events"));
      R.TraceDropped = asU64(W.num("trace_dropped"));
      R.TraceOverflowed = W.boolean("trace_overflowed");
      R.CostHint = asU64(W.num("cost_hint"));
      R.DispatchOrder = static_cast<int>(W.num("dispatch_order", -1));
      M.Workloads.push_back(std::move(R));
    }
  }
  if (const JValue *Ms = Root.find("metrics")) {
    if (Ms->K != JValue::Array)
      return Diag(ErrorKind::InvalidArgument,
                  "'metrics' is not an array in '" + Path + "'");
    for (const JValue &S : Ms->Arr) {
      metrics::Sample Smp;
      Smp.Name = S.str("name");
      Smp.Kind = S.str("kind");
      Smp.Value = asU64(S.num("value"));
      Smp.Count = asU64(S.num("count"));
      M.Metrics.push_back(std::move(Smp));
    }
  }
  return M;
}

//===----------------------------------------------------------------------===//
// Checking
//===----------------------------------------------------------------------===//

std::string CheckResult::render() const {
  std::string S;
  for (const std::string &F : Failures)
    S += F + "\n";
  return S;
}

CheckResult bpfree::checkManifests(const Manifest &Candidate,
                                   const Manifest &Baseline,
                                   const CheckTolerance &Tol) {
  CheckResult Res;
  auto fail = [&](std::string Msg) { Res.Failures.push_back(std::move(Msg)); };

  // A manifest may hold several records for the same (workload, dataset)
  // — the perf phases run the suite more than once under different
  // configurations. Collapse BOTH sides last-wins so like is compared
  // with like; baseline and candidate are generated by the same flow, so
  // the last record per key corresponds on both sides.
  std::map<std::pair<std::string, std::string>, const metrics::RunRecord *>
      ByKey, BaseByKey;
  for (const metrics::RunRecord &R : Candidate.Workloads)
    ByKey[{R.Workload, R.Dataset}] = &R;
  for (const metrics::RunRecord &R : Baseline.Workloads)
    BaseByKey[{R.Workload, R.Dataset}] = &R;

  for (const metrics::RunRecord &B : Baseline.Workloads) {
    if (BaseByKey[{B.Workload, B.Dataset}] != &B)
      continue; // superseded by a later record for the same key
    auto It = ByKey.find({B.Workload, B.Dataset});
    if (It == ByKey.end()) {
      if (Tol.RequireWorkloadCoverage)
        fail("workload '" + B.Workload + "' (dataset '" + B.Dataset +
             "') present in baseline but missing from candidate");
      continue;
    }
    const metrics::RunRecord &C = *It->second;
    const std::string Tag = "workload '" + B.Workload + "'";
    if (B.Ok && !C.Ok)
      fail(Tag + " succeeded in baseline but failed in candidate: " +
           C.Error);
    if (Tol.WallSlowdown > 1.0 && B.WallMs > 0.0 &&
        C.WallMs > B.WallMs * Tol.WallSlowdown) {
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf),
                    "%s wall time regressed: %.2f ms vs baseline %.2f ms "
                    "(band %.2fx, got %.2fx)",
                    Tag.c_str(), C.WallMs, B.WallMs, Tol.WallSlowdown,
                    C.WallMs / B.WallMs);
      fail(Buf);
    }
    if (Tol.InstrRatio > 0.0 && B.Instructions > 0) {
      const double Ratio = static_cast<double>(C.Instructions) /
                           static_cast<double>(B.Instructions);
      if (Ratio > Tol.InstrRatio || Ratio < 1.0 / Tol.InstrRatio) {
        char Buf[200];
        std::snprintf(
            Buf, sizeof(Buf),
            "%s instruction count drifted: %llu vs baseline %llu "
            "(band %.2fx) — the executed work changed, not just its speed",
            Tag.c_str(), static_cast<unsigned long long>(C.Instructions),
            static_cast<unsigned long long>(B.Instructions),
            Tol.InstrRatio);
        fail(Buf);
      }
    }
    if (!B.TraceOverflowed && C.TraceOverflowed)
      fail(Tag + " trace overflowed its byte cap (baseline's did not)");
  }

  if (Tol.WallSlowdown > 1.0 && Baseline.TotalWallMs > 0.0 &&
      Candidate.TotalWallMs > Baseline.TotalWallMs * Tol.WallSlowdown) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "suite total wall time regressed: %.2f ms vs baseline "
                  "%.2f ms (band %.2fx)",
                  Candidate.TotalWallMs, Baseline.TotalWallMs,
                  Tol.WallSlowdown);
    fail(Buf);
  }
  return Res;
}

void bpfree::perturbManifestTimings(Manifest &M, double Factor) {
  M.TotalWallMs *= Factor;
  for (metrics::RunRecord &R : M.Workloads)
    R.WallMs *= Factor;
}
