//===- support/Manifest.h - Run manifests and regression checks -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run manifest: one JSON document per bench/suite invocation
/// recording what ran (per-workload timings, instruction counts, trace
/// statistics, LPT scheduling decisions), the full metrics snapshot, and
/// enough host/config context to interpret the numbers later. Every
/// bench binary emits one via `--metrics-json <path>`, and
/// `bench_perf --check <baseline.json>` diffs a fresh manifest against a
/// committed baseline with tolerance bands — the CI regression gate.
///
/// The check is asymmetric on purpose: getting *faster* than the
/// baseline never fails, getting slower beyond the band does, and
/// deterministic fields (workload coverage, instruction counts) use
/// their own, tighter band. docs/observability.md documents the schema
/// and how to read a failing check.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_MANIFEST_H
#define BPFREE_SUPPORT_MANIFEST_H

#include "support/Error.h"
#include "support/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {

/// In-memory form of the manifest document; field names mirror the JSON
/// keys (see docs/observability.md for the schema).
struct Manifest {
  std::string Tool;    ///< emitting binary, e.g. "bench_perf"
  std::string Config;  ///< free-form config summary, e.g. "quick"
  std::string Host;    ///< hostname ("" when unavailable)
  std::string Platform;///< "linux", "darwin", ... (compile-time)
  unsigned HardwareConcurrency = 0;
  double TotalWallMs = 0.0; ///< sum of per-workload wall times
  std::vector<metrics::RunRecord> Workloads;
  /// Named benchmark phases (bench_perf's timed sections). Checked
  /// structurally by checkManifests: a phase present on either side of
  /// a diff but missing from the other is a hard failure, so a deleted
  /// or renamed phase can never slip through the regression gate as a
  /// default-valued record.
  std::vector<metrics::PhaseRecord> Phases;
  std::vector<metrics::Sample> Metrics;
};

/// Builds a manifest from the current metrics registry and run log.
/// \p Tool and \p Config annotate the document; host fields are filled
/// from the environment.
Manifest collectManifest(const std::string &Tool,
                         const std::string &Config = "");

/// Serializes \p M to \p Path as JSON. \returns false when the file
/// cannot be opened.
bool writeManifest(const Manifest &M, const std::string &Path);

/// Parses a manifest previously written by writeManifest. Unknown keys
/// are ignored (forward compatibility); a malformed document or missing
/// required structure yields a Diag of kind InvalidArgument.
Expected<Manifest> readManifest(const std::string &Path);

/// Tolerance bands for checkManifests. Ratios are candidate/baseline
/// upper bounds; values <= 1.0 disable slack for that dimension.
struct CheckTolerance {
  /// A workload (or the suite total) may be up to this factor slower
  /// than the baseline before the check fails. Faster never fails.
  double WallSlowdown = 1.5;
  /// Instruction counts must satisfy
  ///   baseline/InstrRatio <= candidate <= baseline*InstrRatio.
  /// They are deterministic for unchanged code, so the default band is
  /// tight; widen it (or regenerate the baseline) when workloads change.
  double InstrRatio = 1.01;
  /// When true, every baseline workload must appear in the candidate.
  bool RequireWorkloadCoverage = true;
};

/// Outcome of a manifest diff: empty Failures means the gate passes.
struct CheckResult {
  std::vector<std::string> Failures;
  bool ok() const { return Failures.empty(); }
  /// One failure per line, "" when ok.
  std::string render() const;
};

/// Diffs \p Candidate against \p Baseline under \p Tol. Workloads are
/// matched by (name, dataset); per-workload wall time, instruction
/// count, and trace health (a candidate trace overflowing where the
/// baseline's did not) are checked, plus the suite-total wall time.
/// Phases are matched by name with UNCONDITIONAL two-sided coverage: a
/// phase missing from either side fails the check outright (naming the
/// phase), and matched phases get the WallSlowdown band.
CheckResult checkManifests(const Manifest &Candidate,
                           const Manifest &Baseline,
                           const CheckTolerance &Tol = {});

/// Scales every wall-time field of \p M by \p Factor — the injection
/// hook the CI gate and tests use to prove a timing regression actually
/// trips the check.
void perturbManifestTimings(Manifest &M, double Factor);

} // namespace bpfree

#endif // BPFREE_SUPPORT_MANIFEST_H
