//===- support/Crc32.h - CRC32C checksums -----------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected
/// 0x82F63B78) for the durable trace store. The Castagnoli polynomial is
/// the storage-industry choice (iSCSI, ext4, Btrfs) because its error
/// detection on short frames is strictly better than the zlib CRC32, and
/// a table-driven software implementation keeps the project free of
/// intrinsics while still checksumming hundreds of MB/s — a rounding
/// error next to the file I/O it guards.
///
/// The incremental form (seed in, checksum out) lets the trace writer
/// checksum a header in pieces and the reader verify a frame straight
/// out of its read buffer.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_CRC32_H
#define BPFREE_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>

namespace bpfree {

/// \returns the CRC32C of \p Size bytes at \p Data, continuing from
/// \p Seed (pass the previous call's result to checksum a buffer in
/// pieces; 0 starts a fresh checksum). The conventional init/final
/// XOR with ~0 is applied internally, so crc32c(A+B) ==
/// crc32c(B, len, crc32c(A, len)) and equal data always gives equal
/// checksums regardless of how it was split.
uint32_t crc32c(const void *Data, size_t Size, uint32_t Seed = 0);

} // namespace bpfree

#endif // BPFREE_SUPPORT_CRC32_H
