//===- support/TimeTrace.h - Chrome trace_event scoped spans ----*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped wall-clock spans emitting Chrome `trace_event` JSON — load the
/// output into chrome://tracing or https://ui.perfetto.dev to see where
/// a bench or suite run spends its time, per thread. Complements the
/// metrics registry (support/Metrics.h): metrics answer "how much,
/// total", spans answer "when, and on which worker".
///
/// Spans are coarse by design — one per workload run, per replay pass,
/// per bench phase — so the mutex-guarded event buffer is never on a hot
/// path. Collection is off by default; a disabled Span costs one relaxed
/// atomic load at construction and nothing at destruction.
///
/// Span naming mirrors the metric convention (subsystem first):
/// "suite.workload" with the workload name as detail, "replay.fused",
/// "bench.phase". docs/observability.md lists the spans each subsystem
/// emits.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_TIMETRACE_H
#define BPFREE_SUPPORT_TIMETRACE_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {
namespace timetrace {

/// \returns true when span collection is on (off by default).
bool enabled();
void setEnabled(bool On);

/// One completed span, microseconds relative to the process's first
/// enable() call.
struct Event {
  std::string Name;
  std::string Detail; ///< rendered as args.detail, "" omitted
  uint64_t StartUs = 0;
  uint64_t DurUs = 0;
  uint64_t Tid = 0; ///< stable small id per OS thread
};

/// RAII span: records [construction, destruction) under \p Name when
/// collection is enabled. \p Detail distinguishes instances of the same
/// span kind (e.g. the workload name).
class Span {
public:
  explicit Span(std::string Name, std::string Detail = "");
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  std::string Name;
  std::string Detail;
  bool Active;
  std::chrono::steady_clock::time_point Start;
};

/// \returns a copy of every completed span, in completion order.
std::vector<Event> events();

/// Discards all recorded spans.
void clear();

/// Writes the recorded spans to \p Path in Chrome trace_event JSON
/// ({"traceEvents": [...]}); \returns false when the file cannot be
/// opened.
bool write(const std::string &Path);

} // namespace timetrace
} // namespace bpfree

#endif // BPFREE_SUPPORT_TIMETRACE_H
