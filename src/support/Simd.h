//===- support/Simd.h - Portable SIMD shims for the replay kernel -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one vector primitive the widened trace-replay kernel needs: an
/// all-zero test over a row of W contiguous 64-bit words (W is 1, 2, or
/// 4 — 64, 128, or 256 predictor lanes). The overwhelmingly common event
/// mispredicts no lane, so this test is the kernel's per-event hot path;
/// everything past it runs once per break and stays scalar.
///
/// Selection is layered so every build works everywhere:
///
///  * BPFREE_SIMD=0 (CMake option) pins the portable scalar fallback.
///  * On x86-64, the 256-bit row test uses AVX2 through a per-function
///    target attribute (BPFREE_SIMD_TARGET_ATTR, probed at configure
///    time) with runtime CPU detection — no global -mavx2, so the rest
///    of the build keeps baseline codegen and the binary still runs on
///    pre-AVX2 hosts. The 128-bit test uses baseline SSE2.
///  * On AArch64/ARM with NEON, both wide tests use 128-bit loads.
///  * Anywhere else, scalar OR-reduction (which compilers vectorize
///    respectably on their own).
///
/// pathId() reports which path the 256-bit test takes at runtime, for
/// the "replay.simd_path" gauge: 0 scalar, 1 SSE2, 2 AVX2, 3 NEON.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_SIMD_H
#define BPFREE_SUPPORT_SIMD_H

#include <cstddef>
#include <cstdint>

#ifndef BPFREE_SIMD
#define BPFREE_SIMD 1
#endif
#ifndef BPFREE_SIMD_TARGET_ATTR
#define BPFREE_SIMD_TARGET_ATTR 0
#endif

#if BPFREE_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define BPFREE_SIMD_X86 1
#include <emmintrin.h>
#if BPFREE_SIMD_TARGET_ATTR
#include <immintrin.h>
#endif
#elif BPFREE_SIMD && (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define BPFREE_SIMD_NEON 1
#include <arm_neon.h>
#else
#define BPFREE_SIMD_SCALAR 1
#endif

namespace bpfree::simd {

enum Path : int {
  PathScalar = 0,
  PathSse2 = 1,
  PathAvx2 = 2,
  PathNeon = 3,
};

namespace detail {

#if defined(BPFREE_SIMD_X86) && BPFREE_SIMD_TARGET_ATTR
inline bool haveAvx2() {
  static const bool Have = __builtin_cpu_supports("avx2");
  return Have;
}

__attribute__((target("avx2"))) inline bool allZero256(const uint64_t *P) {
  const __m256i V =
      _mm256_loadu_si256(reinterpret_cast<const __m256i *>(P));
  return _mm256_testz_si256(V, V) != 0;
}
#endif

#if defined(BPFREE_SIMD_X86)
inline bool allZero128(const uint64_t *P) {
  const __m128i V = _mm_loadu_si128(reinterpret_cast<const __m128i *>(P));
  // SSE2 baseline: byte-equality against zero, then the lane mask must
  // be all-ones. (PTEST is SSE4.1; not worth a second dispatch tier.)
  return _mm_movemask_epi8(_mm_cmpeq_epi8(V, _mm_setzero_si128())) ==
         0xFFFF;
}
#elif defined(BPFREE_SIMD_NEON)
inline bool allZero128(const uint64_t *P) {
  const uint64x2_t V = vld1q_u64(P);
  return (vgetq_lane_u64(V, 0) | vgetq_lane_u64(V, 1)) == 0;
}
#endif

} // namespace detail

/// The row-test path the widest (W=4) test takes on this host/build.
inline int pathId() {
#if defined(BPFREE_SIMD_X86) && BPFREE_SIMD_TARGET_ATTR
  return detail::haveAvx2() ? PathAvx2 : PathSse2;
#elif defined(BPFREE_SIMD_X86)
  return PathSse2;
#elif defined(BPFREE_SIMD_NEON)
  return PathNeon;
#else
  return PathScalar;
#endif
}

inline const char *pathName(int Id) {
  switch (Id) {
  case PathSse2: return "sse2";
  case PathAvx2: return "avx2";
  case PathNeon: return "neon";
  default:       return "scalar";
  }
}

/// True when all \p W contiguous 64-bit words at \p P are zero. W is a
/// compile-time constant (the replay kernel is templated on it), so each
/// width lowers to its own best sequence.
template <size_t W> inline bool allZero(const uint64_t *P) {
  static_assert(W == 1 || W == 2 || W == 4, "unsupported row width");
  if constexpr (W == 1) {
    return P[0] == 0;
  } else if constexpr (W == 2) {
#if defined(BPFREE_SIMD_X86) || defined(BPFREE_SIMD_NEON)
    return detail::allZero128(P);
#else
    return (P[0] | P[1]) == 0;
#endif
  } else {
#if defined(BPFREE_SIMD_X86) && BPFREE_SIMD_TARGET_ATTR
    if (detail::haveAvx2())
      return detail::allZero256(P);
#endif
#if defined(BPFREE_SIMD_X86) || defined(BPFREE_SIMD_NEON)
    return detail::allZero128(P) && detail::allZero128(P + 2);
#else
    return (P[0] | P[1] | P[2] | P[3]) == 0;
#endif
  }
}

} // namespace bpfree::simd

#endif // BPFREE_SUPPORT_SIMD_H
