//===- support/Statistics.h - Mean / stddev accumulators --------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics used by the evaluation tables. The paper reports
/// per-benchmark means and (population) standard deviations, e.g. the
/// "MEAN" and "Std.Dev." rows of Tables 2, 3, and 5.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_SUPPORT_STATISTICS_H
#define BPFREE_SUPPORT_STATISTICS_H

#include <cmath>
#include <cstddef>

namespace bpfree {

/// Accumulates samples and reports count, mean, and standard deviation.
/// Uses Welford's online algorithm for numerical stability.
class RunningStat {
public:
  void add(double X) {
    ++N;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(N);
    M2 += Delta * (X - Mean);
  }

  size_t count() const { return N; }
  bool empty() const { return N == 0; }

  /// Mean of the samples so far; 0 when empty.
  double mean() const { return Mean; }

  /// Population variance (divide by N); 0 when fewer than one sample.
  double variance() const {
    return N > 0 ? M2 / static_cast<double>(N) : 0.0;
  }

  /// Population standard deviation, matching the paper's Std.Dev. rows.
  double stddev() const { return std::sqrt(variance()); }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
};

} // namespace bpfree

#endif // BPFREE_SUPPORT_STATISTICS_H
