//===- vm/Dataset.h - Program input datasets --------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Dataset is everything a workload run can observe from the outside
/// world: a vector of integer parameters (read with the `arg` intrinsic)
/// and a byte buffer (read with `input_len` / `input_byte`). Workloads
/// declare several datasets so the Graph-13 cross-dataset experiment has
/// multiple executions per benchmark, mirroring the paper's use of
/// alternate SPEC inputs.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_DATASET_H
#define BPFREE_VM_DATASET_H

#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {

/// Immutable run input for one program execution.
struct Dataset {
  std::string Name;
  std::vector<int64_t> Scalars;
  std::vector<uint8_t> Bytes;

  Dataset() = default;
  Dataset(std::string Name, std::vector<int64_t> Scalars,
          std::vector<uint8_t> Bytes = {})
      : Name(std::move(Name)), Scalars(std::move(Scalars)),
        Bytes(std::move(Bytes)) {}

  /// Scalar parameter \p I, or 0 when out of range (programs probe
  /// optional parameters this way).
  int64_t scalar(size_t I) const {
    return I < Scalars.size() ? Scalars[I] : 0;
  }

  /// Byte \p I of the input buffer, or 0 past the end.
  uint8_t byte(size_t I) const { return I < Bytes.size() ? Bytes[I] : 0; }
};

} // namespace bpfree

#endif // BPFREE_VM_DATASET_H
