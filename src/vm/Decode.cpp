//===- vm/Decode.cpp - Pre-decoded instruction cache ----------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Decode.h"

#include "vm/BranchTrace.h"

#include <algorithm>
#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// Destinations are always virtual registers (the builder and verifier
/// enforce this); the slot index is the raw id because frames carry a
/// window for the dedicated registers too (see Machine::pushFrame).
uint32_t dstSlot(Reg R) {
  if (!R.isValid())
    return NoSlot;
  assert(R.Id >= FirstVirtualReg && "write to dedicated register");
  return R.Id;
}

/// Register-flavour decoded opcode for a binary ir::Opcode.
DOp regFlavour(Opcode Op) {
  switch (Op) {
  case Opcode::Add:  return DOp::Add;
  case Opcode::Sub:  return DOp::Sub;
  case Opcode::Mul:  return DOp::Mul;
  case Opcode::Div:  return DOp::Div;
  case Opcode::Rem:  return DOp::Rem;
  case Opcode::And:  return DOp::And;
  case Opcode::Or:   return DOp::Or;
  case Opcode::Xor:  return DOp::Xor;
  case Opcode::Shl:  return DOp::Shl;
  case Opcode::Shr:  return DOp::Shr;
  case Opcode::Slt:  return DOp::Slt;
  case Opcode::Seq:  return DOp::Seq;
  case Opcode::Sne:  return DOp::Sne;
  case Opcode::FAdd: return DOp::FAdd;
  case Opcode::FSub: return DOp::FSub;
  case Opcode::FMul: return DOp::FMul;
  case Opcode::FDiv: return DOp::FDiv;
  default:
    assert(false && "not a binary opcode");
    return DOp::Add;
  }
}

/// Immediate-flavour decoded opcode for a binary ir::Opcode.
DOp immFlavour(Opcode Op) {
  switch (Op) {
  case Opcode::Add:  return DOp::AddI;
  case Opcode::Sub:  return DOp::SubI;
  case Opcode::Mul:  return DOp::MulI;
  case Opcode::Div:  return DOp::DivI;
  case Opcode::Rem:  return DOp::RemI;
  case Opcode::And:  return DOp::AndI;
  case Opcode::Or:   return DOp::OrI;
  case Opcode::Xor:  return DOp::XorI;
  case Opcode::Shl:  return DOp::ShlI;
  case Opcode::Shr:  return DOp::ShrI;
  case Opcode::Slt:  return DOp::SltI;
  case Opcode::Seq:  return DOp::SeqI;
  case Opcode::Sne:  return DOp::SneI;
  case Opcode::FAdd: return DOp::FAddI;
  case Opcode::FSub: return DOp::FSubI;
  case Opcode::FMul: return DOp::FMulI;
  case Opcode::FDiv: return DOp::FDivI;
  default:
    assert(false && "not a binary opcode");
    return DOp::AddI;
  }
}

DecodedInst decodeInst(const Instruction &I, const DecodedModule &DM,
                       DecodedFunction &DF) {
  DecodedInst D;
  D.Src = &I;
  D.Dst = dstSlot(I.Dst);
  D.SrcA = I.SrcA.Id;
  D.SrcB = I.SrcB.Id;
  D.Imm = I.Imm;
  D.Width = I.Width;
  switch (I.Op) {
  case Opcode::LoadImm:
    D.Op = DOp::LoadImm;
    break;
  case Opcode::Move:
    D.Op = DOp::Move;
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Slt:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    D.Op = I.BIsImm ? immFlavour(I.Op) : regFlavour(I.Op);
    break;
  case Opcode::FNeg:
    D.Op = DOp::FNeg;
    break;
  case Opcode::CvtIF:
    D.Op = DOp::CvtIF;
    break;
  case Opcode::CvtFI:
    D.Op = DOp::CvtFI;
    break;
  case Opcode::FCmpEq:
    D.Op = DOp::FCmpEq;
    break;
  case Opcode::FCmpLt:
    D.Op = DOp::FCmpLt;
    break;
  case Opcode::FCmpLe:
    D.Op = DOp::FCmpLe;
    break;
  case Opcode::Load:
    D.Op = I.Width == MemWidth::I8 ? DOp::LoadI8 : DOp::LoadI64;
    break;
  case Opcode::Store:
    D.Op = I.Width == MemWidth::I8 ? DOp::StoreI8 : DOp::StoreI64;
    break;
  case Opcode::Call:
    D.Op = DOp::Call;
    D.Callee = DM.get(I.CalleeIndex);
    assert(I.Args.size() == D.Callee->NumParams &&
           "call argument count mismatch");
    break;
  case Opcode::CallIntrinsic:
    D.Op = DOp::CallIntrinsic;
    D.Intr = I.Intr;
    break;
  }
  if (I.isCall()) {
    D.ArgsOff = static_cast<uint32_t>(DF.ArgPool.size());
    D.NumArgs = static_cast<uint32_t>(I.Args.size());
    for (Reg R : I.Args)
      DF.ArgPool.push_back(R.Id);
  }
  return D;
}

void decodeFunction(const Function &F, const DecodedModule &DM,
                    DecodedFunction &DF, uint32_t FlatBase) {
  DF.F = &F;
  // The window covers raw register ids, so the dedicated registers
  // (zero/SP/GP) get slots of their own and operand reads need no
  // special-casing; hence the floor of FirstVirtualReg slots.
  DF.NumRegSlots = std::max<uint32_t>(F.getNumRegs(), FirstVirtualReg);
  DF.NumParams = F.getNumParams();
  DF.FrameBytes = (static_cast<uint64_t>(F.getFrameSize()) + 7u) & ~7ull;
  if (F.numBlocks() == 0)
    return; // body-less function: never executable, Entry stays null
  DF.Blocks.resize(F.numBlocks());

  // Fill the instruction pool first (exact reservation keeps the block
  // pointers stable), then wire up per-block views and successor links.
  size_t TotalInsts = 0;
  for (const auto &BB : F)
    TotalInsts += BB->instructions().size();
  DF.InstPool.reserve(TotalInsts);

  std::vector<size_t> BlockStart(F.numBlocks(), 0);
  for (const auto &BB : F) {
    BlockStart[BB->getId()] = DF.InstPool.size();
    for (const Instruction &I : BB->instructions())
      DF.InstPool.push_back(decodeInst(I, DM, DF));
  }

  for (const auto &BB : F) {
    DecodedBlock &DB = DF.Blocks[BB->getId()];
    DB.BB = BB.get();
    DB.Insts = DF.InstPool.data() + BlockStart[BB->getId()];
    DB.NumInsts = static_cast<uint32_t>(BB->instructions().size());
    DB.FlatIndex = FlatBase + BB->getId();

    const Terminator &T = BB->terminator();
    DB.Term.Kind = T.Kind;
    DB.Term.BOp = T.BOp;
    DB.Term.Lhs = T.Lhs.Id;
    DB.Term.Rhs = T.Rhs.Id;
    DB.Term.RetValue = T.RetValue.Id;
    DB.Term.HasRetValue = T.HasRetValue;
    switch (T.Kind) {
    case TermKind::Jump:
      assert(T.Taken && "jump without target");
      DB.Term.Taken = &DF.Blocks[T.Taken->getId()];
      break;
    case TermKind::CondBranch:
      assert(T.Taken && T.Fallthru && "branch without both successors");
      DB.Term.Taken = &DF.Blocks[T.Taken->getId()];
      DB.Term.Fallthru = &DF.Blocks[T.Fallthru->getId()];
      break;
    case TermKind::Return:
      break;
    }
  }
  DF.Entry = &DF.Blocks[F.getEntry()->getId()];
}

} // namespace

const DecodedFunction *DecodedModule::find(const std::string &Name) const {
  const Function *F = M->findFunction(Name);
  return F ? get(F->getIndex()) : nullptr;
}

DecodedModule bpfree::decodeModule(const Module &M) {
  DecodedModule DM;
  DM.M = &M;
  // Size the function table up front so Call decoding can take stable
  // DecodedFunction pointers (and see callee arity) before every callee
  // is itself decoded.
  DM.Functions.resize(M.numFunctions());
  for (uint32_t I = 0; I < M.numFunctions(); ++I) {
    DM.Functions[I].F = M.getFunction(I);
    DM.Functions[I].NumParams = M.getFunction(I)->getNumParams();
  }
  uint32_t FlatBase = 0;
  for (uint32_t I = 0; I < M.numFunctions(); ++I) {
    decodeFunction(*M.getFunction(I), DM, DM.Functions[I], FlatBase);
    FlatBase += static_cast<uint32_t>(M.getFunction(I)->numBlocks());
  }
  return DM;
}

std::string BranchSite::describe() const {
  if (!valid())
    return "<invalid site>";
  std::string S = F->getName() + ":" + BB->getName();
  if (SrcLine > 0)
    S += " (line " + std::to_string(SrcLine) + ")";
  return S;
}

BranchSite bpfree::siteForFlatIndex(const Module &M,
                                    const std::vector<uint32_t> &Offsets,
                                    uint32_t FlatIndex) {
  BranchSite Site;
  // Offsets holds one entry per function plus the total block count, so
  // upper_bound lands one past the owning function.
  if (Offsets.size() < 2 || FlatIndex >= Offsets.back())
    return Site;
  auto It = std::upper_bound(Offsets.begin(), Offsets.end(), FlatIndex);
  const uint32_t FuncIdx =
      static_cast<uint32_t>(It - Offsets.begin()) - 1;
  Site.F = M.getFunction(FuncIdx);
  Site.BB = Site.F->getBlock(FlatIndex - Offsets[FuncIdx]);
  if (Site.BB->hasTerminator())
    Site.SrcLine = Site.BB->terminator().SrcLine;
  return Site;
}

BranchSite bpfree::siteForFlatIndex(const Module &M, uint32_t FlatIndex) {
  return siteForFlatIndex(M, flatBlockOffsets(M), FlatIndex);
}
