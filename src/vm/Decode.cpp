//===- vm/Decode.cpp - Pre-decoded instruction cache ----------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Decode.h"

#include "support/Metrics.h"
#include "vm/BranchTrace.h"

#include <algorithm>
#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// Destinations are always virtual registers (the builder and verifier
/// enforce this); the slot index is the raw id because frames carry a
/// window for the dedicated registers too (see Machine::pushFrame).
uint32_t dstSlot(Reg R) {
  if (!R.isValid())
    return NoSlot;
  assert(R.Id >= FirstVirtualReg && "write to dedicated register");
  return R.Id;
}

/// Register-flavour decoded opcode for a binary ir::Opcode.
DOp regFlavour(Opcode Op) {
  switch (Op) {
  case Opcode::Add:  return DOp::Add;
  case Opcode::Sub:  return DOp::Sub;
  case Opcode::Mul:  return DOp::Mul;
  case Opcode::Div:  return DOp::Div;
  case Opcode::Rem:  return DOp::Rem;
  case Opcode::And:  return DOp::And;
  case Opcode::Or:   return DOp::Or;
  case Opcode::Xor:  return DOp::Xor;
  case Opcode::Shl:  return DOp::Shl;
  case Opcode::Shr:  return DOp::Shr;
  case Opcode::Slt:  return DOp::Slt;
  case Opcode::Seq:  return DOp::Seq;
  case Opcode::Sne:  return DOp::Sne;
  case Opcode::FAdd: return DOp::FAdd;
  case Opcode::FSub: return DOp::FSub;
  case Opcode::FMul: return DOp::FMul;
  case Opcode::FDiv: return DOp::FDiv;
  default:
    assert(false && "not a binary opcode");
    return DOp::Add;
  }
}

/// Immediate-flavour decoded opcode for a binary ir::Opcode.
DOp immFlavour(Opcode Op) {
  switch (Op) {
  case Opcode::Add:  return DOp::AddI;
  case Opcode::Sub:  return DOp::SubI;
  case Opcode::Mul:  return DOp::MulI;
  case Opcode::Div:  return DOp::DivI;
  case Opcode::Rem:  return DOp::RemI;
  case Opcode::And:  return DOp::AndI;
  case Opcode::Or:   return DOp::OrI;
  case Opcode::Xor:  return DOp::XorI;
  case Opcode::Shl:  return DOp::ShlI;
  case Opcode::Shr:  return DOp::ShrI;
  case Opcode::Slt:  return DOp::SltI;
  case Opcode::Seq:  return DOp::SeqI;
  case Opcode::Sne:  return DOp::SneI;
  case Opcode::FAdd: return DOp::FAddI;
  case Opcode::FSub: return DOp::FSubI;
  case Opcode::FMul: return DOp::FMulI;
  case Opcode::FDiv: return DOp::FDivI;
  default:
    assert(false && "not a binary opcode");
    return DOp::AddI;
  }
}

DecodedInst decodeInst(const Instruction &I, const DecodedModule &DM,
                       DecodedFunction &DF) {
  DecodedInst D;
  D.Src = &I;
  D.Dst = dstSlot(I.Dst);
  D.SrcA = I.SrcA.Id;
  D.SrcB = I.SrcB.Id;
  D.Imm = I.Imm;
  D.Width = I.Width;
  switch (I.Op) {
  case Opcode::LoadImm:
    D.Op = DOp::LoadImm;
    break;
  case Opcode::Move:
    D.Op = DOp::Move;
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Slt:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    D.Op = I.BIsImm ? immFlavour(I.Op) : regFlavour(I.Op);
    break;
  case Opcode::FNeg:
    D.Op = DOp::FNeg;
    break;
  case Opcode::CvtIF:
    D.Op = DOp::CvtIF;
    break;
  case Opcode::CvtFI:
    D.Op = DOp::CvtFI;
    break;
  case Opcode::FCmpEq:
    D.Op = DOp::FCmpEq;
    break;
  case Opcode::FCmpLt:
    D.Op = DOp::FCmpLt;
    break;
  case Opcode::FCmpLe:
    D.Op = DOp::FCmpLe;
    break;
  case Opcode::Load:
    D.Op = I.Width == MemWidth::I8 ? DOp::LoadI8 : DOp::LoadI64;
    break;
  case Opcode::Store:
    D.Op = I.Width == MemWidth::I8 ? DOp::StoreI8 : DOp::StoreI64;
    break;
  case Opcode::Call:
    D.Op = DOp::Call;
    D.Callee = DM.get(I.CalleeIndex);
    assert(I.Args.size() == D.Callee->NumParams &&
           "call argument count mismatch");
    break;
  case Opcode::CallIntrinsic:
    D.Op = DOp::CallIntrinsic;
    D.Intr = I.Intr;
    break;
  }
  if (I.isCall()) {
    D.ArgsOff = static_cast<uint32_t>(DF.ArgPool.size());
    D.NumArgs = static_cast<uint32_t>(I.Args.size());
    for (Reg R : I.Args)
      DF.ArgPool.push_back(R.Id);
  }
  return D;
}

/// Fused opcode for an adjacent (First, Second) instruction pair, or
/// DOp::Move (never a fusion result) when the pair is not in the table.
/// The table is the top of the dynamic pair-frequency profile measured
/// across the workload suite; together these pairs cover ~40% of all
/// dynamic instructions.
DOp pairFusion(DOp First, DOp Second) {
  switch (First) {
  case DOp::Add:
    if (Second == DOp::LoadI64) return DOp::AddLoadI64;
    if (Second == DOp::MulI)    return DOp::AddMulI;
    break;
  case DOp::MulI:
    if (Second == DOp::Add)     return DOp::MulIAdd;
    break;
  case DOp::AddI:
    if (Second == DOp::MulI)    return DOp::AddIMulI;
    if (Second == DOp::Mul)     return DOp::AddIMul;
    break;
  case DOp::LoadImm:
    if (Second == DOp::Add)     return DOp::LoadImmAdd;
    break;
  case DOp::Mul:
    if (Second == DOp::Add)     return DOp::MulAdd;
    break;
  case DOp::LoadI64:
    if (Second == DOp::Slt)     return DOp::LoadI64Slt;
    break;
  default:
    break;
  }
  return DOp::Move;
}

/// Fused compare+branch opcode for a compare DOp, or DOp::Move when the
/// opcode is not a fusible integer compare.
DOp cmpBrFusion(DOp Cmp) {
  switch (Cmp) {
  case DOp::Slt:  return DOp::SltBr;
  case DOp::SltI: return DOp::SltIBr;
  case DOp::Seq:  return DOp::SeqBr;
  case DOp::SeqI: return DOp::SeqIBr;
  case DOp::Sne:  return DOp::SneBr;
  case DOp::SneI: return DOp::SneIBr;
  default:        return DOp::Move;
  }
}

/// Fused compare+branch opcode for an FP compare DOp (the flag-branch
/// BC1T/BC1F forms), or DOp::Move when not an FP compare.
DOp fcmpBrFusion(DOp Cmp) {
  switch (Cmp) {
  case DOp::FCmpEq: return DOp::FCmpEqBr;
  case DOp::FCmpLt: return DOp::FCmpLtBr;
  case DOp::FCmpLe: return DOp::FCmpLeBr;
  default:          return DOp::Move;
  }
}

/// Rewrites hot instruction pairs in \p DF into superinstructions.
/// Runs after terminator wiring (the compare+branch rewrite inspects
/// DecodedTerm). Only opcodes (and the Fuse flag byte) change; operands,
/// Src pointers, and pool layout stay exactly as decoded, so observers
/// and trap reporting see the original instruction stream.
/// \returns the number of rewritten sites.
uint64_t fuseFunction(DecodedFunction &DF) {
  uint64_t Fused = 0;
  for (DecodedBlock &DB : DF.Blocks) {
    DecodedInst *Insts =
        DF.InstPool.data() + (DB.Insts - DF.InstPool.data());
    // Compare feeding the block's conditional branch: fusible when the
    // branch is a zero-test of the compare's destination. The branch
    // direction then follows the 0/1 compare result directly (Fuse bit 0
    // records the inverted BEQ/BLEZ forms). Do this first so the pair
    // scan below can never claim the compare as a pair member.
    if (DB.NumInsts > 0 && DB.Term.Kind == TermKind::CondBranch) {
      DecodedInst &L = Insts[DB.NumInsts - 1];
      const DOp FusedOp = cmpBrFusion(L.Op);
      if (FusedOp != DOp::Move && L.Dst != NoSlot) {
        const DecodedTerm &T = DB.Term;
        const bool EqForm =
            (T.BOp == BranchOp::BNE || T.BOp == BranchOp::BEQ) &&
            ((T.Lhs == L.Dst && T.Rhs == ZeroReg.Id) ||
             (T.Rhs == L.Dst && T.Lhs == ZeroReg.Id));
        const bool SignForm =
            (T.BOp == BranchOp::BGTZ || T.BOp == BranchOp::BLEZ) &&
            T.Lhs == L.Dst;
        if (EqForm || SignForm) {
          L.Op = FusedOp;
          L.Fuse = (T.BOp == BranchOp::BEQ || T.BOp == BranchOp::BLEZ)
                       ? 1
                       : 0;
          ++Fused;
        }
      } else {
        // FP compare feeding the block's flag branch: there is only one
        // FP condition flag, so BC1T/BC1F after a trailing fcmp always
        // reads this compare's result — no operand match to verify.
        const DOp FpFusedOp = fcmpBrFusion(L.Op);
        const DecodedTerm &T = DB.Term;
        if (FpFusedOp != DOp::Move &&
            (T.BOp == BranchOp::BC1T || T.BOp == BranchOp::BC1F)) {
          L.Op = FpFusedOp;
          L.Fuse = T.BOp == BranchOp::BC1F ? 1 : 0;
          ++Fused;
        }
      }
    }
    // Greedy left-to-right adjacent-pair scan. A rewritten first half
    // consumes its second half (advance by 2), so chains fuse at most
    // every other seam and a fused compare above (no longer Slt/...)
    // can't match as a pair member.
    for (uint32_t I = 0; I + 1 < DB.NumInsts;) {
      const DOp FusedOp = pairFusion(Insts[I].Op, Insts[I + 1].Op);
      if (FusedOp != DOp::Move) {
        Insts[I].Op = FusedOp;
        ++Fused;
        I += 2;
      } else {
        ++I;
      }
    }
  }
  return Fused;
}

void decodeFunction(const Function &F, const DecodedModule &DM,
                    DecodedFunction &DF, uint32_t FlatBase) {
  DF.F = &F;
  // The window covers raw register ids, so the dedicated registers
  // (zero/SP/GP) get slots of their own and operand reads need no
  // special-casing; hence the floor of FirstVirtualReg slots.
  DF.NumRegSlots = std::max<uint32_t>(F.getNumRegs(), FirstVirtualReg);
  DF.NumParams = F.getNumParams();
  DF.FrameBytes = (static_cast<uint64_t>(F.getFrameSize()) + 7u) & ~7ull;
  if (F.numBlocks() == 0)
    return; // body-less function: never executable, Entry stays null
  DF.Blocks.resize(F.numBlocks());

  // Fill the instruction pool first (exact reservation keeps the block
  // pointers stable), then wire up per-block views and successor links.
  // Each block's run is followed by one terminator pseudo-instruction
  // (see the DOp doc comment) which DecodedBlock::NumInsts excludes.
  size_t TotalInsts = 0;
  for (const auto &BB : F)
    TotalInsts += BB->instructions().size() + 1;
  DF.InstPool.reserve(TotalInsts);

  std::vector<size_t> BlockStart(F.numBlocks(), 0);
  for (const auto &BB : F) {
    BlockStart[BB->getId()] = DF.InstPool.size();
    for (const Instruction &I : BB->instructions())
      DF.InstPool.push_back(decodeInst(I, DM, DF));
    DecodedInst TermPseudo;
    switch (BB->terminator().Kind) {
    case TermKind::Jump:       TermPseudo.Op = DOp::TermJump; break;
    case TermKind::CondBranch: TermPseudo.Op = DOp::TermCondBranch; break;
    case TermKind::Return:     TermPseudo.Op = DOp::TermReturn; break;
    }
    DF.InstPool.push_back(TermPseudo);
  }

  for (const auto &BB : F) {
    DecodedBlock &DB = DF.Blocks[BB->getId()];
    DB.BB = BB.get();
    DB.Insts = DF.InstPool.data() + BlockStart[BB->getId()];
    DB.NumInsts = static_cast<uint32_t>(BB->instructions().size());
    DB.FlatIndex = FlatBase + BB->getId();

    const Terminator &T = BB->terminator();
    DB.Term.Kind = T.Kind;
    DB.Term.BOp = T.BOp;
    DB.Term.Lhs = T.Lhs.Id;
    DB.Term.Rhs = T.Rhs.Id;
    DB.Term.RetValue = T.RetValue.Id;
    DB.Term.HasRetValue = T.HasRetValue;
    switch (T.Kind) {
    case TermKind::Jump:
      assert(T.Taken && "jump without target");
      DB.Term.Taken = &DF.Blocks[T.Taken->getId()];
      break;
    case TermKind::CondBranch:
      assert(T.Taken && T.Fallthru && "branch without both successors");
      DB.Term.Taken = &DF.Blocks[T.Taken->getId()];
      DB.Term.Fallthru = &DF.Blocks[T.Fallthru->getId()];
      break;
    case TermKind::Return:
      break;
    }
  }
  DF.Entry = &DF.Blocks[F.getEntry()->getId()];
}

} // namespace

const DecodedFunction *DecodedModule::find(const std::string &Name) const {
  const Function *F = M->findFunction(Name);
  return F ? get(F->getIndex()) : nullptr;
}

DecodedModule bpfree::decodeModule(const Module &M) {
  return decodeModule(M, DecodeOptions());
}

DecodedModule bpfree::decodeModule(const Module &M,
                                   const DecodeOptions &Opts) {
  DecodedModule DM;
  DM.M = &M;
  // Size the function table up front so Call decoding can take stable
  // DecodedFunction pointers (and see callee arity) before every callee
  // is itself decoded.
  DM.Functions.resize(M.numFunctions());
  for (uint32_t I = 0; I < M.numFunctions(); ++I) {
    DM.Functions[I].F = M.getFunction(I);
    DM.Functions[I].NumParams = M.getFunction(I)->getNumParams();
  }
  uint32_t FlatBase = 0;
  uint64_t Fused = 0;
  for (uint32_t I = 0; I < M.numFunctions(); ++I) {
    decodeFunction(*M.getFunction(I), DM, DM.Functions[I], FlatBase);
    if (Opts.EnableFusion)
      Fused += fuseFunction(DM.Functions[I]);
    FlatBase += static_cast<uint32_t>(M.getFunction(I)->numBlocks());
  }
  if (Fused && metrics::enabled()) {
    static metrics::Counter &FusedPairs =
        metrics::counter("interp.fused_pairs");
    FusedPairs.add(Fused);
  }
  return DM;
}

std::string BranchSite::describe() const {
  if (!valid())
    return "<invalid site>";
  std::string S = F->getName() + ":" + BB->getName();
  if (SrcLine > 0)
    S += " (line " + std::to_string(SrcLine) + ")";
  return S;
}

BranchSite bpfree::siteForFlatIndex(const Module &M,
                                    const std::vector<uint32_t> &Offsets,
                                    uint32_t FlatIndex) {
  BranchSite Site;
  // Offsets holds one entry per function plus the total block count, so
  // upper_bound lands one past the owning function.
  if (Offsets.size() < 2 || FlatIndex >= Offsets.back())
    return Site;
  auto It = std::upper_bound(Offsets.begin(), Offsets.end(), FlatIndex);
  const uint32_t FuncIdx =
      static_cast<uint32_t>(It - Offsets.begin()) - 1;
  Site.F = M.getFunction(FuncIdx);
  Site.BB = Site.F->getBlock(FlatIndex - Offsets[FuncIdx]);
  if (Site.BB->hasTerminator())
    Site.SrcLine = Site.BB->terminator().SrcLine;
  return Site;
}

BranchSite bpfree::siteForFlatIndex(const Module &M, uint32_t FlatIndex) {
  return siteForFlatIndex(M, flatBlockOffsets(M), FlatIndex);
}
