//===- vm/BranchTrace.cpp - Packed branch-outcome traces ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/BranchTrace.h"

#include "support/Metrics.h"
#include "vm/TraceStore.h"

using namespace bpfree;
using namespace bpfree::ir;

std::vector<uint32_t> bpfree::flatBlockOffsets(const Module &M) {
  std::vector<uint32_t> Offsets(M.numFunctions() + 1);
  uint32_t Off = 0;
  for (uint32_t I = 0; I < M.numFunctions(); ++I) {
    Offsets[I] = Off;
    Off += static_cast<uint32_t>(M.getFunction(I)->numBlocks());
  }
  Offsets[M.numFunctions()] = Off;
  return Offsets;
}

BranchTrace::BranchTrace(const Module &M, uint64_t MaxBytes)
    : M(M), FuncOffsets(flatBlockOffsets(M)), MaxBytes(MaxBytes) {}

BranchTrace::~BranchTrace() = default;

void BranchTrace::onCondBranch(const BasicBlock &BB, bool Taken,
                               uint64_t InstrCount) {
  append(FuncOffsets[BB.getParent()->getIndex()] + BB.getId(), Taken,
         InstrCount);
}

bool BranchTrace::grow() {
  if (Spill && !Chunks.empty()) {
    // Spill mode: the just-filled chunk goes to disk and its buffer is
    // reused, so exactly one chunk stays resident and the byte cap never
    // comes into play — memory is flat for any stream length.
    if (Overflowed)
      return false; // an earlier storage failure already froze capture
    if (std::optional<Diag> D =
            Spill->appendChunk(Chunks.back().get(), ChunkWords)) {
      // Storage failed mid-capture: freeze like a cap overflow (the
      // on-disk stream is abandoned; closeSpill() reports the Diag).
      SpillError = std::move(D);
      Overflowed = true;
      static metrics::Counter &SpillFailures =
          metrics::counter("trace.spill_failures");
      SpillFailures.add();
      return false;
    }
    ++SpilledChunks;
    SpilledWords += ChunkWords;
    Cur = Chunks.back().get();
    static metrics::Counter &Spilled =
        metrics::counter("trace.spilled_chunks");
    Spilled.add();
    return true;
  }
  if (Overflowed || (Chunks.size() + 1) * ChunkWords * 4 > MaxBytes) {
    if (!Overflowed) {
      static metrics::Counter &Overflows = metrics::counter("trace.overflows");
      Overflows.add();
    }
    Overflowed = true;
    return false;
  }
  Chunks.push_back(std::make_unique<uint32_t[]>(ChunkWords));
  Cur = Chunks.back().get();
  End = Cur + ChunkWords;
  static metrics::Counter &ChunkCount = metrics::counter("trace.chunks");
  ChunkCount.add();
  return true;
}

std::optional<Diag> BranchTrace::spillTo(const std::string &Path,
                                         const IoFaultPlan *Faults) {
  assert(Events == 0 && Chunks.empty() &&
         "spillTo must be called before the first append");
  assert(!Spill && "already spilling");
  auto W = std::make_unique<TraceWriter>();
  if (std::optional<Diag> D =
          W->open(Path, moduleTraceHash(M), FuncOffsets.back(),
                  Faults ? *Faults : IoFaultPlan{}))
    return D;
  Spill = std::move(W);
  SpillPath = Path;
  return std::nullopt;
}

std::optional<Diag> BranchTrace::closeSpill() {
  assert(Spill && "not spilling");
  assert(Finalized && "finalize() before closeSpill()");
  std::unique_ptr<TraceWriter> W = std::move(Spill);
  if (SpillError) {
    W->discard();
    return SpillError;
  }
  // Flush the partial tail chunk — complete records only; RolledBack is
  // always zero here (rollback implies a storage failure, handled above).
  const uint64_t Tail =
      Chunks.empty()
          ? 0
          : static_cast<uint64_t>(Cur - Chunks.back().get()) - RolledBack;
  if (Tail > 0)
    if (std::optional<Diag> D = W->appendChunk(Chunks.back().get(), Tail)) {
      SpillError = D;
      return D;
    }
  if (std::optional<Diag> D = W->finish(Events, TotalInstrs_)) {
    SpillError = D;
    return D;
  }
  return std::nullopt;
}

void BranchTrace::appendEscape(uint32_t FlatIndex, bool Taken,
                               uint64_t Delta) {
  // Either the whole four-word record lands or none of it does: discount
  // the words written before a mid-record overflow so the decoded stream
  // only ever contains complete events.
  const uint64_t Saved = storedWords();
  pushWord((EscapeDelta << (IdxBits + 1)) | (Taken ? 1u : 0u));
  pushWord(FlatIndex);
  pushWord(static_cast<uint32_t>(Delta));
  pushWord(static_cast<uint32_t>(Delta >> 32));
  if (Overflowed) {
    RolledBack += storedWords() - Saved;
    return;
  }
  static metrics::Counter &Escapes = metrics::counter("trace.escapes");
  Escapes.add();
}
