//===- vm/BranchTrace.cpp - Packed branch-outcome traces ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/BranchTrace.h"

#include "support/Metrics.h"

using namespace bpfree;
using namespace bpfree::ir;

std::vector<uint32_t> bpfree::flatBlockOffsets(const Module &M) {
  std::vector<uint32_t> Offsets(M.numFunctions() + 1);
  uint32_t Off = 0;
  for (uint32_t I = 0; I < M.numFunctions(); ++I) {
    Offsets[I] = Off;
    Off += static_cast<uint32_t>(M.getFunction(I)->numBlocks());
  }
  Offsets[M.numFunctions()] = Off;
  return Offsets;
}

BranchTrace::BranchTrace(const Module &M, uint64_t MaxBytes)
    : M(M), FuncOffsets(flatBlockOffsets(M)), MaxBytes(MaxBytes) {}

void BranchTrace::onCondBranch(const BasicBlock &BB, bool Taken,
                               uint64_t InstrCount) {
  append(FuncOffsets[BB.getParent()->getIndex()] + BB.getId(), Taken,
         InstrCount);
}

bool BranchTrace::grow() {
  if (Overflowed || (Chunks.size() + 1) * ChunkWords * 4 > MaxBytes) {
    if (!Overflowed) {
      static metrics::Counter &Overflows = metrics::counter("trace.overflows");
      Overflows.add();
    }
    Overflowed = true;
    return false;
  }
  Chunks.push_back(std::make_unique<uint32_t[]>(ChunkWords));
  Cur = Chunks.back().get();
  End = Cur + ChunkWords;
  static metrics::Counter &ChunkCount = metrics::counter("trace.chunks");
  ChunkCount.add();
  return true;
}

void BranchTrace::appendEscape(uint32_t FlatIndex, bool Taken,
                               uint64_t Delta) {
  // Either the whole four-word record lands or none of it does: discount
  // the words written before a mid-record overflow so the decoded stream
  // only ever contains complete events.
  const uint64_t Saved = storedWords();
  pushWord((EscapeDelta << (IdxBits + 1)) | (Taken ? 1u : 0u));
  pushWord(FlatIndex);
  pushWord(static_cast<uint32_t>(Delta));
  pushWord(static_cast<uint32_t>(Delta >> 32));
  if (Overflowed) {
    RolledBack += storedWords() - Saved;
    return;
  }
  static metrics::Counter &Escapes = metrics::counter("trace.escapes");
  Escapes.add();
}
