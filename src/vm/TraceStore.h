//===- vm/TraceStore.h - Durable on-disk branch traces ----------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable half of capture-once/replay-many: a checksummed,
/// versioned on-disk container (`bpfree-trace-v1`) for BranchTrace's
/// packed event words, built for the roadmap's out-of-core scale where
/// traces outlive processes and travel between machines. Layout, all
/// fields little-endian:
///
///   header   (28 B)  magic "BPFT" | version | module hash | flat block
///                    count | flags | CRC32C of the preceding 24 B
///   frame*   (16 B + payload)  tag "FRAM" | word count | payload
///                    CRC32C | CRC32C of the preceding 12 B, then the
///                    chunk's event words
///   footer   (44 B)  tag "FOOT" | finalized | event count | total
///                    instructions | total words | chunk count | CRC32C
///                    of the preceding 40 B
///
/// Every structure is independently checksummed, so the reader can tell
/// exactly where damage starts: a bad header rejects the file
/// (ErrorKind::CorruptData — there is nothing trustworthy to recover),
/// while a bad frame, torn tail, or bad footer degrades gracefully to
/// the longest valid chunk prefix, with the damage described in a
/// structured TraceStoreStats and counted under trace.store.* metrics.
/// A module-hash mismatch is a usage error (ErrorKind::InvalidArgument),
/// not corruption: the file is fine, it just belongs to different code.
///
/// The writer streams to `path + ".tmp"` and renames into place only
/// after the footer is flushed, so a crashed or failed capture never
/// leaves a partial file at the final path — readers either see nothing
/// or a store whose tail was at least syntactically complete.
/// Deterministic I/O faults (IoFaultPlan, vm/FaultInjector.h) can be
/// armed on both ends to drive every recovery path from tests.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_TRACESTORE_H
#define BPFREE_VM_TRACESTORE_H

#include "support/Error.h"
#include "vm/BranchTrace.h"
#include "vm/FaultInjector.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bpfree {

/// \returns a structural fingerprint of \p M for trace/module pairing:
/// function names and block counts, plus every block's id, branchiness,
/// and successor list. Any CFG change that could re-map flat block
/// indices changes the hash, so a store replayed against the wrong (or
/// drifted) module is rejected instead of silently producing garbage
/// histograms.
uint64_t moduleTraceHash(const ir::Module &M);

/// What the reader found when it opened and verified a store.
struct TraceStoreStats {
  uint64_t ValidChunks = 0;   ///< frames in the recovered prefix
  uint64_t CorruptChunks = 0; ///< frames that failed CRC / framing checks
  /// Frames that verified fine but sit beyond the first damage; the
  /// prefix contract drops them (the stream is delta-encoded, so a gap
  /// poisons everything after it).
  uint64_t DroppedChunks = 0;
  uint64_t RecoveredEvents = 0; ///< complete events in the valid prefix
  uint64_t RecoveredWords = 0;  ///< words in the valid prefix
  bool FooterValid = false;     ///< footer present, checksummed, consistent
  bool Recovered = false;       ///< damage found; contents are a prefix
  std::string Detail;           ///< one-line damage description ("" if none)
};

/// Streams completed chunks into a bpfree-trace-v1 file. Lifecycle:
/// open() creates `path + ".tmp"` and writes the header; appendChunk()
/// per chunk; finish() writes the footer, flushes, and atomically
/// renames onto the final path. Destroying an unfinished writer (or
/// calling discard()) removes the temp file, so failed captures leave
/// nothing behind. Write failures are sticky: the first Diag is
/// returned from every later call too.
class TraceWriter {
public:
  TraceWriter() = default;
  ~TraceWriter();
  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

  std::optional<Diag> open(const std::string &Path, uint64_t ModuleHash,
                           uint32_t NumBlocks,
                           const IoFaultPlan &Faults = {});
  /// Appends one frame of \p N event words (1..BranchTrace::ChunkWords).
  std::optional<Diag> appendChunk(const uint32_t *Words, uint64_t N);
  /// Seals the store: footer, flush, fsync, rename. \p NumEvents and
  /// \p TotalInstrs come from the finalized BranchTrace.
  std::optional<Diag> finish(uint64_t NumEvents, uint64_t TotalInstrs);
  /// Aborts: closes and removes the temp file (idempotent).
  void discard();

  bool isOpen() const { return Out != nullptr; }
  uint64_t bytesWritten() const { return Written; }
  uint64_t chunksWritten() const { return ChunksWritten; }
  const std::string &path() const { return FinalPath; }

private:
  std::optional<Diag> writeBytes(const void *Data, size_t N);
  std::optional<Diag> fail(Diag D);

  std::FILE *Out = nullptr;
  std::string FinalPath;
  std::string TmpPath;
  IoFaultPlan Faults;
  uint64_t Written = 0;
  uint64_t ChunksWritten = 0;
  uint64_t WordsWritten = 0;
  std::optional<Diag> Err; ///< sticky first failure
};

/// One-shot convenience: persist a finalized resident \p Trace to
/// \p Path. The trace must be replayable (finalized, not overflowed,
/// not spilled — a spilling trace already owns a writer).
std::optional<Diag> writeTraceFile(const BranchTrace &Trace,
                                   const std::string &Path,
                                   const IoFaultPlan &Faults = {});

class TraceStoreReader;

/// A sequential cursor over a store's recovered chunk prefix. Each
/// stream owns its file handle and a one-chunk buffer, so any number of
/// replay workers can walk the same immutable TraceStoreReader
/// concurrently. Payload checksums are re-verified on every read —
/// bit rot between open and replay surfaces as a Diag, never as silent
/// histogram corruption.
class TraceStream {
public:
  TraceStream() = default;
  ~TraceStream();
  TraceStream(TraceStream &&O) noexcept { *this = std::move(O); }
  TraceStream &operator=(TraceStream &&O) noexcept;
  TraceStream(const TraceStream &) = delete;
  TraceStream &operator=(const TraceStream &) = delete;

  /// Reads and verifies the next chunk. \returns its word count with
  /// \p Words pointing at the internal buffer (valid until the next
  /// call), 0 at end of the prefix, or a Diag on I/O or checksum
  /// failure.
  Expected<uint64_t> next(const uint32_t *&Words);

private:
  friend class TraceStoreReader;
  const TraceStoreReader *Owner = nullptr;
  std::FILE *In = nullptr;
  size_t NextFrame = 0;
  std::unique_ptr<uint32_t[]> Buf;
};

/// Opens, verifies, and indexes a bpfree-trace-v1 file. open() walks
/// the whole store once — every checksum checked, every event decoded —
/// so anything the reader reports (event counts, totals, completeness)
/// is backed by verified bytes, and replay streams can trust the frame
/// index. Damage past the header degrades to the longest valid prefix;
/// see stats().
class TraceStoreReader {
public:
  TraceStoreReader() = default;
  TraceStoreReader(TraceStoreReader &&) = default;
  TraceStoreReader &operator=(TraceStoreReader &&) = default;

  /// Verifies the store at \p Path. Diag(CorruptData) when the header is
  /// damaged or the file is not a trace store; Diag(InvalidArgument) for
  /// an unsupported version. Frame/footer damage is NOT an error — the
  /// reader recovers the valid prefix and reports it via stats().
  std::optional<Diag> open(const std::string &Path,
                           const IoFaultPlan &Faults = {});

  const TraceStoreStats &stats() const { return Stats; }
  /// True when the store is the complete, finalized capture: valid
  /// footer, no damage. Only complete stores may be replayed — a
  /// recovered prefix has no defined trailing sequence.
  bool complete() const {
    return Opened && Stats.FooterValid && !Stats.Recovered && Finalized;
  }
  uint64_t numEvents() const { return Stats.RecoveredEvents; }
  uint64_t totalInstrs() const { return TotalInstrs_; }
  uint64_t moduleHash() const { return ModuleHash; }
  uint32_t numBlocks() const { return NumBlocks; }
  uint64_t numChunks() const { return Frames.size(); }
  const std::string &path() const { return Path; }

  /// Checks that \p M is the module this store was captured from.
  /// \returns Diag(InvalidArgument) naming both hashes on mismatch.
  std::optional<Diag> requireModule(const ir::Module &M) const;

  /// Opens an independent read cursor over the recovered prefix.
  std::optional<Diag> openStream(TraceStream &Out) const;

private:
  friend class TraceStream;
  struct Frame {
    uint64_t PayloadOffset; ///< absolute file offset of the event words
    uint32_t Words;
    uint32_t PayloadCrc;
  };

  /// Reads \p N bytes at the current position of \p F into \p Dst,
  /// applying any armed read-fault bit flips for [\p Pos, Pos + N).
  bool readBytes(std::FILE *F, uint64_t Pos, void *Dst, size_t N) const;

  std::string Path;
  std::vector<Frame> Frames;
  TraceStoreStats Stats;
  /// Seed-drawn (byte offset, XOR mask) read faults, sorted by offset.
  std::vector<std::pair<uint64_t, uint8_t>> ReadFlips;
  uint64_t ModuleHash = 0;
  uint64_t TotalInstrs_ = 0;
  uint32_t NumBlocks = 0;
  bool Finalized = false;
  bool Opened = false;
};

} // namespace bpfree

#endif // BPFREE_VM_TRACESTORE_H
