//===- vm/Interpreter.h - IR interpreter -------------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate: an interpreter for bpfree IR modules with a
/// flat byte-addressable memory (globals / heap / stack), an explicit
/// call stack, deterministic intrinsics, and observer hooks. Together
/// with the observers it replaces the paper's instrumented-executable
/// methodology: running a module under an EdgeProfile observer yields
/// the QPT edge profile; custom observers yield instruction traces.
///
/// Memory layout (addresses are plain 64-bit integers):
///
///   0 .. 7              unmapped null page (loads/stores trap)
///   8 .. 8+G            global segment (GP points at 8)
///   heap                grows upward after the globals
///   ...                 gap
///   stack               grows downward from the top of memory (SP)
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_INTERPRETER_H
#define BPFREE_VM_INTERPRETER_H

#include "ir/Module.h"
#include "support/Error.h"
#include "vm/Dataset.h"
#include "vm/ExecObserver.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace bpfree {

/// Why a run ended.
enum class RunStatus {
  Ok,             ///< main returned normally
  Trap,           ///< runtime error (bad address, div by zero, trap())
  BudgetExceeded, ///< instruction budget exhausted
  Timeout,        ///< wall-clock watchdog (RunLimits::MaxMillis) fired
  OutputOverflow, ///< print budget exceeded with overflow trapping on
};

/// One activation record of the trap backtrace, innermost first.
struct TrapFrame {
  std::string Function;
  std::string Block;     ///< block name at the faulting point
  unsigned BlockId = 0;  ///< dense block id within the function
  size_t InstIdx = 0;    ///< next-instruction index within the block
};

/// Structured description of where and why a run failed, built from the
/// interpreter's explicit frame stack at the moment of the fault. Cheap
/// to produce (a handful of string copies on the failure path only) and
/// rich enough for suite reports to print real backtraces.
struct TrapInfo {
  ErrorKind Kind = ErrorKind::Trap;
  std::string Message;
  std::string Function;  ///< innermost function, "" if no frame was live
  std::string Block;     ///< innermost block name
  unsigned BlockId = 0;
  size_t InstIdx = 0;    ///< faulting instruction index in Block
  uint64_t InstrCount = 0; ///< dynamic instruction count at the fault
  std::vector<TrapFrame> Backtrace; ///< innermost first

  /// Renders "kind: message at func:block[i] (#N)\n  #0 func block[i]..."
  std::string render() const;
};

/// Outcome of one execution.
struct RunResult {
  RunStatus Status = RunStatus::Ok;
  std::string TrapMessage;  ///< set when Status != Ok
  int64_t ExitValue = 0;    ///< main's return value (0 if void)
  uint64_t InstrCount = 0;  ///< instructions executed (terminators count)
  std::string Output;       ///< bytes written by the print intrinsics
  bool OutputTruncated = false; ///< prints were dropped at MaxOutputBytes
  std::optional<TrapInfo> Trap; ///< set when Status != Ok

  bool ok() const { return Status == RunStatus::Ok; }

  /// Maps the failure to the error taxonomy; ErrorKind::Unknown when ok.
  ErrorKind errorKind() const;
};

/// Tunable execution limits.
struct RunLimits {
  uint64_t MaxInstructions = 400'000'000; ///< trap-free upper bound
  uint64_t MemoryBytes = 64u << 20;       ///< flat memory size
  size_t MaxCallDepth = 8192;             ///< frames
  size_t MaxOutputBytes = 4u << 20;       ///< print budget
  /// Wall-clock watchdog in milliseconds; 0 disables it. Checked every
  /// few thousand instructions, so overshoot is bounded and runs without
  /// a deadline stay bit-for-bit deterministic.
  uint64_t MaxMillis = 0;
  /// When true, exceeding MaxOutputBytes ends the run with
  /// RunStatus::OutputOverflow instead of silently dropping prints.
  bool TrapOnOutputOverflow = false;
};

struct DecodedModule;
struct DecodeOptions;

/// How the machine's inner loop dispatches decoded opcodes.
enum class DispatchMode {
  /// Computed-goto (token-threaded) loop: one indirect jump per handler,
  /// so the host BTB predicts each opcode transition separately. Used
  /// when available and the run carries no per-instruction observers.
  Threaded,
  /// Portable switch loop — the fallback on compilers without
  /// labels-as-values and the only loop that can fan out
  /// per-instruction observer events.
  Switch,
};

/// True when this build carries the computed-goto loop (GCC/Clang with
/// BPFREE_THREADED_DISPATCH on). When false, the mode knob is pinned to
/// DispatchMode::Switch.
bool threadedDispatchAvailable();

/// Process-wide dispatch-mode knob, defaulting to Threaded when
/// available. Exists for the differential tests and benchmark baselines;
/// production callers never touch it. Setting Threaded without
/// threadedDispatchAvailable() silently keeps Switch.
void setDispatchMode(DispatchMode Mode);
DispatchMode dispatchMode();

/// Executes IR modules. Construct once per module; construction builds
/// the pre-decoded instruction cache (see vm/Decode.h), so run() may be
/// invoked repeatedly with different datasets and observers without
/// re-resolving operands. The decoded cache is immutable, which makes
/// run() reentrant: concurrent runs of the same Interpreter from
/// different threads are safe as long as they don't share observers.
class Interpreter {
public:
  /// \p M must verify cleanly (see ir::verifyModule); the interpreter
  /// asserts rather than diagnoses structural errors.
  explicit Interpreter(const ir::Module &M, RunLimits Limits = RunLimits());
  /// As above with explicit decode knobs (the differential tests decode
  /// with superinstruction fusion off).
  Interpreter(const ir::Module &M, RunLimits Limits,
              const DecodeOptions &DecOpts);
  ~Interpreter();

  Interpreter(Interpreter &&) = default;
  Interpreter &operator=(Interpreter &&) = delete;

  /// Runs \p EntryName (default "main", no arguments) against \p Data,
  /// notifying each observer in \p Observers of dynamic events.
  RunResult run(const Dataset &Data,
                const std::vector<ExecObserver *> &Observers = {},
                const std::string &EntryName = "main");

private:
  const ir::Module &M;
  RunLimits Limits;
  std::unique_ptr<const DecodedModule> DM;
};

} // namespace bpfree

#endif // BPFREE_VM_INTERPRETER_H
