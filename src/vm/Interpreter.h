//===- vm/Interpreter.h - IR interpreter -------------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate: an interpreter for bpfree IR modules with a
/// flat byte-addressable memory (globals / heap / stack), an explicit
/// call stack, deterministic intrinsics, and observer hooks. Together
/// with the observers it replaces the paper's instrumented-executable
/// methodology: running a module under an EdgeProfile observer yields
/// the QPT edge profile; custom observers yield instruction traces.
///
/// Memory layout (addresses are plain 64-bit integers):
///
///   0 .. 7              unmapped null page (loads/stores trap)
///   8 .. 8+G            global segment (GP points at 8)
///   heap                grows upward after the globals
///   ...                 gap
///   stack               grows downward from the top of memory (SP)
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_INTERPRETER_H
#define BPFREE_VM_INTERPRETER_H

#include "ir/Module.h"
#include "vm/Dataset.h"
#include "vm/ExecObserver.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {

/// Why a run ended.
enum class RunStatus {
  Ok,             ///< main returned normally
  Trap,           ///< runtime error (bad address, div by zero, trap())
  BudgetExceeded, ///< instruction budget exhausted
};

/// Outcome of one execution.
struct RunResult {
  RunStatus Status = RunStatus::Ok;
  std::string TrapMessage;  ///< set when Status == Trap
  int64_t ExitValue = 0;    ///< main's return value (0 if void)
  uint64_t InstrCount = 0;  ///< instructions executed (terminators count)
  std::string Output;       ///< bytes written by the print intrinsics

  bool ok() const { return Status == RunStatus::Ok; }
};

/// Tunable execution limits.
struct RunLimits {
  uint64_t MaxInstructions = 400'000'000; ///< trap-free upper bound
  uint64_t MemoryBytes = 64u << 20;       ///< flat memory size
  size_t MaxCallDepth = 8192;             ///< frames
  size_t MaxOutputBytes = 4u << 20;       ///< print budget
};

/// Executes IR modules. Construct once per module; run() may be invoked
/// repeatedly with different datasets and observers.
class Interpreter {
public:
  /// \p M must verify cleanly (see ir::verifyModule); the interpreter
  /// asserts rather than diagnoses structural errors.
  explicit Interpreter(const ir::Module &M, RunLimits Limits = RunLimits());

  /// Runs \p EntryName (default "main", no arguments) against \p Data,
  /// notifying each observer in \p Observers of dynamic events.
  RunResult run(const Dataset &Data,
                const std::vector<ExecObserver *> &Observers = {},
                const std::string &EntryName = "main");

private:
  const ir::Module &M;
  RunLimits Limits;
};

} // namespace bpfree

#endif // BPFREE_VM_INTERPRETER_H
