//===- vm/FaultInjector.h - Deterministic fault injection -------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the VM. A FaultPlan names a trigger
/// (dynamic instruction count, function entry, or intrinsic call) and an
/// action (trap, budget exhaustion, memory fault, output flood); a
/// FaultInjector is an ExecObserver that watches execution and asks the
/// interpreter to take the action when the trigger matches. Because the
/// VM itself is deterministic, a plan reproduces the same failure —
/// same backtrace, same instruction count — on every run, which is what
/// lets the chaos tests assert exact failure records. Plans can also be
/// derived from a seed via support/Rng.h so randomized campaigns replay
/// bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_FAULTINJECTOR_H
#define BPFREE_VM_FAULTINJECTOR_H

#include "ir/Opcodes.h"
#include "vm/ExecObserver.h"

#include <cstdint>
#include <string>

namespace bpfree {

/// When the planned fault fires.
enum class FaultTrigger {
  AtInstruction,   ///< first event with InstrCount >= TriggerInstr
  OnFunctionEntry, ///< Skip-th execution of FunctionName's entry block
  OnIntrinsic,     ///< Skip-th call of intrinsic Intr
};

/// Which failure mode is manufactured (maps onto ExecAction).
enum class FaultAction {
  Trap,          ///< runtime trap, ErrorKind::Injected
  ExhaustBudget, ///< instruction budget exhaustion
  MemoryFault,   ///< out-of-bounds access trap, ErrorKind::Injected
  FloodOutput,   ///< blow the print budget, RunStatus::OutputOverflow
};

/// A fully deterministic description of one fault to inject.
struct FaultPlan {
  FaultTrigger Trigger = FaultTrigger::AtInstruction;
  FaultAction Action = FaultAction::Trap;
  uint64_t TriggerInstr = 0;    ///< AtInstruction threshold
  std::string FunctionName;     ///< OnFunctionEntry target
  ir::Intrinsic Intr = ir::Intrinsic::PrintInt; ///< OnIntrinsic target
  uint64_t Skip = 0;            ///< trigger matches to let pass first

  static FaultPlan atInstruction(uint64_t InstrCount,
                                 FaultAction Action = FaultAction::Trap);
  static FaultPlan onFunctionEntry(std::string Name,
                                   FaultAction Action = FaultAction::Trap,
                                   uint64_t Skip = 0);
  static FaultPlan onIntrinsic(ir::Intrinsic Intr,
                               FaultAction Action = FaultAction::Trap,
                               uint64_t Skip = 0);

  /// Derives a plan from \p Seed: the trigger point is drawn uniformly
  /// from [WindowLo, WindowHi) and the action from the four actions,
  /// both through support/Rng.h, so equal seeds give equal plans and
  /// therefore bit-identical failures.
  static FaultPlan fromSeed(uint64_t Seed, uint64_t WindowLo,
                            uint64_t WindowHi);

  /// One-line human-readable description for logs and reports.
  std::string describe() const;
};

/// \returns a stable name for \p Action ("trap", "exhaust-budget", ...).
const char *faultActionName(FaultAction Action);

/// A fully deterministic description of storage-layer faults for the
/// trace store (vm/TraceStore.h). Where FaultPlan manufactures VM
/// failures, an IoFaultPlan manufactures the storage failures real trace
/// pipelines hit — a full disk mid-write, bit rot under the reader, a
/// torn tail from a crash at close — so ChaosTest and the ci.sh chaos
/// leg can drive the recovery paths on demand. All triggers are byte- or
/// seed-addressed, never time- or load-dependent, so a plan reproduces
/// the same damage on every run.
struct IoFaultPlan {
  /// Fail the write that would carry the running byte count past this
  /// offset (ENOSPC-style); 0 disarms.
  uint64_t FailWriteAfterBytes = 0;
  /// Flip this many bits at seed-drawn positions as data is read back
  /// (bit rot); 0 disarms. Positions are drawn over the file size when
  /// the reader opens, so equal seeds on equal files flip equal bits.
  uint32_t FlipBitsOnRead = 0;
  /// Truncate the finished file to this many bytes at close, after the
  /// atomic rename (the crash-while-flushing torn tail); 0 disarms.
  uint64_t TruncateAtClose = 0;
  /// Seed for FlipBitsOnRead positions (support/Rng.h).
  uint64_t Seed = 0;

  static IoFaultPlan failWriteAfter(uint64_t Bytes);
  static IoFaultPlan flipBitsOnRead(uint32_t Bits, uint64_t Seed);
  static IoFaultPlan truncateAtClose(uint64_t Bytes);

  /// Derives a plan from \p Seed alone: one of the three fault modes,
  /// with its byte trigger drawn uniformly below \p FileBytesHint —
  /// the randomized-campaign analogue of FaultPlan::fromSeed.
  static IoFaultPlan fromSeed(uint64_t Seed, uint64_t FileBytesHint);

  /// True when any fault is armed.
  bool armed() const {
    return FailWriteAfterBytes || FlipBitsOnRead || TruncateAtClose;
  }

  /// One-line human-readable description for logs and reports.
  std::string describe() const;
};

/// Observer that carries out a FaultPlan. Attach to Interpreter::run (or
/// through the workload driver's extra-observer hook); fires at most once.
class FaultInjector : public ExecObserver {
public:
  explicit FaultInjector(FaultPlan Plan) : Plan(std::move(Plan)) {}

  bool wantsInstructionEvents() const override { return true; }
  ExecAction onInstruction(const ExecEvent &E) override;

  const FaultPlan &plan() const { return Plan; }

  /// True once the fault has been delivered.
  bool fired() const { return Fired; }

  /// Instruction count at which the fault was delivered (0 if not yet).
  uint64_t firedAt() const { return FiredAt; }

  /// Re-arms the injector so the same plan can drive another run.
  void reset() {
    Fired = false;
    FiredAt = 0;
    Matches = 0;
  }

private:
  FaultPlan Plan;
  uint64_t Matches = 0; ///< trigger matches seen so far (for Skip)
  bool Fired = false;
  uint64_t FiredAt = 0;
};

} // namespace bpfree

#endif // BPFREE_VM_FAULTINJECTOR_H
