//===- vm/FaultInjector.h - Deterministic fault injection -------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the VM. A FaultPlan names a trigger
/// (dynamic instruction count, function entry, or intrinsic call) and an
/// action (trap, budget exhaustion, memory fault, output flood); a
/// FaultInjector is an ExecObserver that watches execution and asks the
/// interpreter to take the action when the trigger matches. Because the
/// VM itself is deterministic, a plan reproduces the same failure —
/// same backtrace, same instruction count — on every run, which is what
/// lets the chaos tests assert exact failure records. Plans can also be
/// derived from a seed via support/Rng.h so randomized campaigns replay
/// bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_FAULTINJECTOR_H
#define BPFREE_VM_FAULTINJECTOR_H

#include "ir/Opcodes.h"
#include "vm/ExecObserver.h"

#include <cstdint>
#include <string>

namespace bpfree {

/// When the planned fault fires.
enum class FaultTrigger {
  AtInstruction,   ///< first event with InstrCount >= TriggerInstr
  OnFunctionEntry, ///< Skip-th execution of FunctionName's entry block
  OnIntrinsic,     ///< Skip-th call of intrinsic Intr
};

/// Which failure mode is manufactured (maps onto ExecAction).
enum class FaultAction {
  Trap,          ///< runtime trap, ErrorKind::Injected
  ExhaustBudget, ///< instruction budget exhaustion
  MemoryFault,   ///< out-of-bounds access trap, ErrorKind::Injected
  FloodOutput,   ///< blow the print budget, RunStatus::OutputOverflow
};

/// A fully deterministic description of one fault to inject.
struct FaultPlan {
  FaultTrigger Trigger = FaultTrigger::AtInstruction;
  FaultAction Action = FaultAction::Trap;
  uint64_t TriggerInstr = 0;    ///< AtInstruction threshold
  std::string FunctionName;     ///< OnFunctionEntry target
  ir::Intrinsic Intr = ir::Intrinsic::PrintInt; ///< OnIntrinsic target
  uint64_t Skip = 0;            ///< trigger matches to let pass first

  static FaultPlan atInstruction(uint64_t InstrCount,
                                 FaultAction Action = FaultAction::Trap);
  static FaultPlan onFunctionEntry(std::string Name,
                                   FaultAction Action = FaultAction::Trap,
                                   uint64_t Skip = 0);
  static FaultPlan onIntrinsic(ir::Intrinsic Intr,
                               FaultAction Action = FaultAction::Trap,
                               uint64_t Skip = 0);

  /// Derives a plan from \p Seed: the trigger point is drawn uniformly
  /// from [WindowLo, WindowHi) and the action from the four actions,
  /// both through support/Rng.h, so equal seeds give equal plans and
  /// therefore bit-identical failures.
  static FaultPlan fromSeed(uint64_t Seed, uint64_t WindowLo,
                            uint64_t WindowHi);

  /// One-line human-readable description for logs and reports.
  std::string describe() const;
};

/// \returns a stable name for \p Action ("trap", "exhaust-budget", ...).
const char *faultActionName(FaultAction Action);

/// Observer that carries out a FaultPlan. Attach to Interpreter::run (or
/// through the workload driver's extra-observer hook); fires at most once.
class FaultInjector : public ExecObserver {
public:
  explicit FaultInjector(FaultPlan Plan) : Plan(std::move(Plan)) {}

  bool wantsInstructionEvents() const override { return true; }
  ExecAction onInstruction(const ExecEvent &E) override;

  const FaultPlan &plan() const { return Plan; }

  /// True once the fault has been delivered.
  bool fired() const { return Fired; }

  /// Instruction count at which the fault was delivered (0 if not yet).
  uint64_t firedAt() const { return FiredAt; }

  /// Re-arms the injector so the same plan can drive another run.
  void reset() {
    Fired = false;
    FiredAt = 0;
    Matches = 0;
  }

private:
  FaultPlan Plan;
  uint64_t Matches = 0; ///< trigger matches seen so far (for Skip)
  bool Fired = false;
  uint64_t FiredAt = 0;
};

} // namespace bpfree

#endif // BPFREE_VM_FAULTINJECTOR_H
