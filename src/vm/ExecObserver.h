//===- vm/ExecObserver.h - Execution observation hooks ----------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observer interface through which the VM reports dynamic events. This
/// plays the role of QPT's instrumentation: an edge profiler and a trace
/// consumer are both observers; the IPBC experiments attach observers
/// that watch every executed conditional branch together with the running
/// instruction count.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_EXECOBSERVER_H
#define BPFREE_VM_EXECOBSERVER_H

#include <cstdint>

namespace bpfree {

namespace ir {
class BasicBlock;
} // namespace ir

/// Callbacks invoked by the interpreter during execution. The default
/// implementations do nothing, so observers override only what they need.
class ExecObserver {
public:
  virtual ~ExecObserver();

  /// Called after each executed conditional branch. \p Taken says which
  /// direction the branch went; \p InstrCount is the number of
  /// instructions executed so far, the branch itself included.
  virtual void onCondBranch(const ir::BasicBlock &BB, bool Taken,
                            uint64_t InstrCount);

  /// Called when a basic block begins executing.
  virtual void onBlockEnter(const ir::BasicBlock &BB);
};

} // namespace bpfree

#endif // BPFREE_VM_EXECOBSERVER_H
