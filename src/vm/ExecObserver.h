//===- vm/ExecObserver.h - Execution observation hooks ----------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observer interface through which the VM reports dynamic events. This
/// plays the role of QPT's instrumentation: an edge profiler and a trace
/// consumer are both observers; the IPBC experiments attach observers
/// that watch every executed conditional branch together with the running
/// instruction count.
///
/// Observers that opt in (wantsInstructionEvents) additionally see every
/// executed instruction and may *steer* the VM: the returned ExecAction
/// lets a FaultInjector manufacture deterministic failures for chaos
/// testing without any special-case code in the interpreter loop.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_EXECOBSERVER_H
#define BPFREE_VM_EXECOBSERVER_H

#include <cstddef>
#include <cstdint>

namespace bpfree {

class BranchTrace;
class EdgeProfile;

namespace ir {
class BasicBlock;
class Function;
struct Instruction;
} // namespace ir

/// What an instruction-level observer asks the VM to do next. Continue is
/// the normal case; the Inject* actions deliberately push the machine into
/// one of its failure modes (used by the fault-injection harness).
enum class ExecAction {
  Continue,                ///< execute the instruction normally
  InjectTrap,              ///< raise a runtime trap here
  InjectBudgetExhaustion,  ///< behave as if MaxInstructions was reached
  InjectMemoryFault,       ///< raise an out-of-bounds memory trap
  InjectOutputFlood,       ///< blow the MaxOutputBytes print budget
};

/// Snapshot handed to instruction-level observers before each executed
/// instruction or terminator.
struct ExecEvent {
  const ir::Function *F = nullptr;   ///< function of the active frame
  const ir::BasicBlock *BB = nullptr;
  size_t InstIdx = 0;                ///< index within BB; == size() for
                                     ///< the block terminator
  const ir::Instruction *I = nullptr; ///< null when at the terminator
  uint64_t InstrCount = 0;           ///< executed so far, this one included
};

/// Callbacks invoked by the interpreter during execution. The default
/// implementations do nothing, so observers override only what they need.
class ExecObserver {
public:
  virtual ~ExecObserver();

  /// Called after each executed conditional branch. \p Taken says which
  /// direction the branch went; \p InstrCount is the number of
  /// instructions executed so far, the branch itself included.
  virtual void onCondBranch(const ir::BasicBlock &BB, bool Taken,
                            uint64_t InstrCount);

  /// Called when a basic block begins executing.
  virtual void onBlockEnter(const ir::BasicBlock &BB);

  /// Observers returning true here receive onInstruction for every
  /// executed instruction and terminator. Checked once at run start so
  /// runs without such observers pay nothing per instruction.
  virtual bool wantsInstructionEvents() const;

  /// Called before each instruction for observers that opted in via
  /// wantsInstructionEvents. Returning anything but Continue makes the
  /// VM take that failure action instead of executing the instruction.
  virtual ExecAction onInstruction(const ExecEvent &E);

  /// Identity hook (RTTI-free): the interpreter uses it to recognize the
  /// overwhelmingly common observer set — a single EdgeProfile — and
  /// switch to a loop that bumps the profile's counters directly instead
  /// of fanning out virtual calls per executed block.
  virtual EdgeProfile *asEdgeProfile();

  /// Identity hook for branch-trace sinks, the trace-capture analog of
  /// asEdgeProfile: when every observer of a run is an EdgeProfile or a
  /// BranchTrace (at most one of each), the interpreter appends packed
  /// branch events to the trace inline on its specialized loop instead
  /// of making a virtual call per executed conditional branch.
  virtual BranchTrace *asTraceSink();
};

} // namespace bpfree

#endif // BPFREE_VM_EXECOBSERVER_H
