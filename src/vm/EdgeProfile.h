//===- vm/EdgeProfile.h - Branch edge profiles -------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An edge profile records, for each conditional branch, how many times
/// control passed to the target and to the fall-thru successor — the
/// exact information QPT's edge profiles gave the paper, and all a
/// *perfect static predictor* needs (it predicts the more frequently
/// executed outgoing edge of each branch).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_EDGEPROFILE_H
#define BPFREE_VM_EDGEPROFILE_H

#include "ir/Module.h"
#include "vm/ExecObserver.h"

#include <cstdint>
#include <vector>

namespace bpfree {

/// Per-branch taken/fall-thru counters for one module execution (or the
/// sum of several; profiles can be merged).
class EdgeProfile : public ExecObserver {
public:
  struct Counts {
    uint64_t Taken = 0;
    uint64_t Fallthru = 0;

    uint64_t total() const { return Taken + Fallthru; }
    /// Executions the perfect static predictor mispredicts: the less
    /// frequent direction.
    uint64_t perfectMisses() const {
      return Taken < Fallthru ? Taken : Fallthru;
    }
  };

  explicit EdgeProfile(const ir::Module &M);

  void onCondBranch(const ir::BasicBlock &BB, bool Taken,
                    uint64_t InstrCount) override;
  void onBlockEnter(const ir::BasicBlock &BB) override;

  /// Counters for the branch terminating \p BB.
  const Counts &get(const ir::BasicBlock &BB) const;

  /// How many times \p BB began executing (used by the layout
  /// evaluator to weight unconditional-jump transitions).
  uint64_t getBlockCount(const ir::BasicBlock &BB) const;

  /// Adds another profile of the same module into this one.
  void merge(const EdgeProfile &Other);

  /// Sum of all branch executions.
  uint64_t totalBranchExecutions() const;

  const ir::Module &getModule() const { return M; }

  // Interpreter fast path -------------------------------------------
  //
  // Raw counter arrays indexed by flat block index: the sum of
  // numBlocks() over all preceding functions, plus the block id. This is
  // exactly the FlatIndex the decoder precomputes per DecodedBlock, so
  // the specialized profiling loop increments counters with one indexed
  // add and no virtual dispatch. Not part of the observer contract.

  Counts *directCounts() { return Flat.data(); }
  uint64_t *directEntries() { return Entries.data(); }
  EdgeProfile *asEdgeProfile() override { return this; }

private:
  size_t flatIndex(const ir::BasicBlock &BB) const;

  const ir::Module &M;
  /// Flat block index of each function's block 0, plus a trailing total
  /// (see flatBlockOffsets in vm/BranchTrace.h).
  std::vector<uint32_t> FuncOffsets;
  std::vector<Counts> Flat;      ///< branch counters, flat block index
  std::vector<uint64_t> Entries; ///< block-entry counters, same index
};

} // namespace bpfree

#endif // BPFREE_VM_EDGEPROFILE_H
