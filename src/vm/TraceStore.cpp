//===- vm/TraceStore.cpp - Durable on-disk branch traces ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/TraceStore.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "support/Crc32.h"
#include "support/Metrics.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace bpfree;
using namespace bpfree::ir;

namespace {

// "BPFT", "FRAM", "FOOT" read as little-endian u32s.
constexpr uint32_t Magic = 0x54465042u;
constexpr uint32_t FormatVersion = 1;
constexpr uint32_t FrameTag = 0x4D415246u;
constexpr uint32_t FooterTag = 0x544F4F46u;

constexpr size_t HeaderBytes = 28;
constexpr size_t FrameHeaderBytes = 16;
constexpr size_t FooterBytes = 44;

// Byte-serialized little-endian accessors: the format is defined in
// bytes, not in host struct layout, so files travel between machines.
void put32(uint8_t *P, uint32_t V) {
  P[0] = static_cast<uint8_t>(V);
  P[1] = static_cast<uint8_t>(V >> 8);
  P[2] = static_cast<uint8_t>(V >> 16);
  P[3] = static_cast<uint8_t>(V >> 24);
}
void put64(uint8_t *P, uint64_t V) {
  put32(P, static_cast<uint32_t>(V));
  put32(P + 4, static_cast<uint32_t>(V >> 32));
}
uint32_t get32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}
uint64_t get64(const uint8_t *P) {
  return static_cast<uint64_t>(get32(P)) |
         (static_cast<uint64_t>(get32(P + 4)) << 32);
}

metrics::Counter &corruptChunksCounter() {
  static metrics::Counter &C = metrics::counter("trace.store.corrupt_chunks");
  return C;
}
metrics::Counter &recoveredEventsCounter() {
  static metrics::Counter &C =
      metrics::counter("trace.store.recovered_events");
  return C;
}

} // namespace

uint64_t bpfree::moduleTraceHash(const Module &M) {
  // FNV-1a over the structural facts that pin the flat block index map
  // and the CFG shape replay depends on.
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (8 * I)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  };
  auto MixStr = [&H](const std::string &S) {
    for (unsigned char C : S) {
      H ^= C;
      H *= 0x100000001B3ull;
    }
  };
  Mix(M.numFunctions());
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = *M.getFunction(F);
    MixStr(Fn.getName());
    Mix(Fn.numBlocks());
    for (const auto &BB : Fn) {
      Mix(BB->getId());
      Mix(BB->isCondBranch() ? 1 : 0);
      const unsigned Succs = BB->numSuccessors();
      Mix(Succs);
      for (unsigned S = 0; S < Succs; ++S)
        Mix(BB->getSuccessor(S)->getId());
    }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// TraceWriter
//===----------------------------------------------------------------------===//

TraceWriter::~TraceWriter() { discard(); }

std::optional<Diag> TraceWriter::fail(Diag D) {
  if (!Err)
    Err = std::move(D);
  static metrics::Counter &Failures =
      metrics::counter("trace.store.write_failures");
  Failures.add();
  return Err;
}

std::optional<Diag> TraceWriter::writeBytes(const void *Data, size_t N) {
  if (Err)
    return Err;
  size_t Allowed = N;
  bool Injected = false;
  if (Faults.FailWriteAfterBytes &&
      Written + N > Faults.FailWriteAfterBytes) {
    // Simulate ENOSPC: part of this write lands, the rest does not.
    Allowed = Faults.FailWriteAfterBytes > Written
                  ? static_cast<size_t>(Faults.FailWriteAfterBytes - Written)
                  : 0;
    Injected = true;
  }
  if (Allowed &&
      std::fwrite(Data, 1, Allowed, Out) != Allowed)
    return fail(Diag(ErrorKind::Internal,
                     "write failed on '" + TmpPath + "' after " +
                         std::to_string(Written) + " bytes"));
  Written += Allowed;
  if (Injected)
    return fail(Diag(ErrorKind::Injected,
                     "injected io fault: write failed after " +
                         std::to_string(Faults.FailWriteAfterBytes) +
                         " bytes on '" + TmpPath + "'"));
  return std::nullopt;
}

std::optional<Diag> TraceWriter::open(const std::string &Path,
                                      uint64_t ModuleHash, uint32_t NumBlocks,
                                      const IoFaultPlan &FaultsIn) {
  assert(!Out && "writer already open");
  FinalPath = Path;
  TmpPath = Path + ".tmp";
  Faults = FaultsIn;
  Out = std::fopen(TmpPath.c_str(), "wb");
  if (!Out)
    return fail(Diag(ErrorKind::InvalidArgument,
                     "cannot create '" + TmpPath + "'"));
  uint8_t H[HeaderBytes];
  put32(H, Magic);
  put32(H + 4, FormatVersion);
  put64(H + 8, ModuleHash);
  put32(H + 16, NumBlocks);
  put32(H + 20, 0); // flags, reserved
  put32(H + 24, crc32c(H, 24));
  return writeBytes(H, sizeof(H));
}

std::optional<Diag> TraceWriter::appendChunk(const uint32_t *Words,
                                             uint64_t N) {
  assert(Out && "writer not open");
  assert(N >= 1 && N <= BranchTrace::ChunkWords && "bad frame length");
  if (Err)
    return Err;
  uint8_t FH[FrameHeaderBytes];
  put32(FH, FrameTag);
  put32(FH + 4, static_cast<uint32_t>(N));
  put32(FH + 8, crc32c(Words, N * 4));
  put32(FH + 12, crc32c(FH, 12));
  if (std::optional<Diag> D = writeBytes(FH, sizeof(FH)))
    return D;
  // Event words are already little-endian in memory on every supported
  // host; a big-endian port would byte-swap here and in the reader.
  if (std::optional<Diag> D = writeBytes(Words, N * 4))
    return D;
  ++ChunksWritten;
  WordsWritten += N;
  static metrics::Counter &Chunks =
      metrics::counter("trace.store.chunks_written");
  Chunks.add();
  return std::nullopt;
}

std::optional<Diag> TraceWriter::finish(uint64_t NumEvents,
                                        uint64_t TotalInstrs) {
  assert(Out && "writer not open");
  if (Err) {
    discard();
    return Err;
  }
  uint8_t F[FooterBytes];
  put32(F, FooterTag);
  put32(F + 4, 1); // finalized
  put64(F + 8, NumEvents);
  put64(F + 16, TotalInstrs);
  put64(F + 24, WordsWritten);
  put64(F + 32, ChunksWritten);
  put32(F + 40, crc32c(F, 40));
  if (std::optional<Diag> D = writeBytes(F, sizeof(F))) {
    discard();
    return D;
  }
  if (std::fflush(Out) != 0) {
    Diag D(ErrorKind::Internal, "flush failed on '" + TmpPath + "'");
    discard();
    return fail(std::move(D));
  }
#ifndef _WIN32
  // Durability before visibility: the rename must not outrun the data.
  fsync(fileno(Out));
  if (Faults.TruncateAtClose && Faults.TruncateAtClose < Written) {
    // Injected torn tail: the file as a crash mid-flush would leave it.
    if (ftruncate(fileno(Out), static_cast<off_t>(Faults.TruncateAtClose)) !=
        0) {
      Diag D(ErrorKind::Internal, "truncate failed on '" + TmpPath + "'");
      discard();
      return fail(std::move(D));
    }
  }
#endif
  std::fclose(Out);
  Out = nullptr;
  if (std::rename(TmpPath.c_str(), FinalPath.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return fail(Diag(ErrorKind::Internal, "cannot rename '" + TmpPath +
                                              "' to '" + FinalPath + "'"));
  }
  static metrics::Counter &Files =
      metrics::counter("trace.store.files_written");
  static metrics::Counter &Bytes =
      metrics::counter("trace.store.bytes_written");
  Files.add();
  Bytes.add(Written);
  return std::nullopt;
}

void TraceWriter::discard() {
  if (!Out)
    return;
  std::fclose(Out);
  Out = nullptr;
  std::remove(TmpPath.c_str());
}

std::optional<Diag> bpfree::writeTraceFile(const BranchTrace &Trace,
                                           const std::string &Path,
                                           const IoFaultPlan &Faults) {
  if (!Trace.finalized())
    return Diag(ErrorKind::InvalidArgument,
                "cannot persist an unfinalized trace");
  if (Trace.overflowed())
    return Diag(ErrorKind::InvalidArgument,
                "cannot persist an overflowed trace: the stored stream "
                "is a truncated prefix");
  if (Trace.spilling())
    return Diag(ErrorKind::InvalidArgument,
                "trace is spilling to '" + Trace.spillPath() +
                    "'; closeSpill() already persists it");
  TraceWriter W;
  if (std::optional<Diag> D =
          W.open(Path, moduleTraceHash(Trace.getModule()),
                 static_cast<uint32_t>(
                     flatBlockOffsets(Trace.getModule()).back()),
                 Faults))
    return D;
  // Frames are the resident chunks verbatim — full chunks except the
  // last — so the file's word stream is bit-identical to memory and to
  // what a spilled capture of the same run would have written.
  uint64_t Remaining = Trace.storedWordCount();
  for (size_t C = 0; Remaining > 0; ++C) {
    const uint64_t N = std::min<uint64_t>(BranchTrace::ChunkWords, Remaining);
    if (std::optional<Diag> D = W.appendChunk(Trace.chunkWords(C), N))
      return D;
    Remaining -= N;
  }
  return W.finish(Trace.numEvents(), Trace.totalInstrs());
}

//===----------------------------------------------------------------------===//
// TraceStoreReader
//===----------------------------------------------------------------------===//

bool TraceStoreReader::readBytes(std::FILE *F, uint64_t Pos, void *Dst,
                                 size_t N) const {
  if (std::fread(Dst, 1, N, F) != N)
    return false;
  if (!ReadFlips.empty()) {
    // Apply the seeded bit-rot overlay for [Pos, Pos + N): the flips
    // live at absolute file offsets, so every cursor over the file sees
    // the same damage — exactly like rot on the medium itself.
    auto It = std::lower_bound(
        ReadFlips.begin(), ReadFlips.end(), Pos,
        [](const std::pair<uint64_t, uint8_t> &A, uint64_t B) {
          return A.first < B;
        });
    for (; It != ReadFlips.end() && It->first < Pos + N; ++It)
      static_cast<uint8_t *>(Dst)[It->first - Pos] ^= It->second;
  }
  return true;
}

std::optional<Diag> TraceStoreReader::open(const std::string &PathIn,
                                           const IoFaultPlan &Faults) {
  assert(!Opened && "reader already open");
  Path = PathIn;
  static metrics::Counter &Opens = metrics::counter("trace.store.opens");
  Opens.add();
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In)
    return Diag(ErrorKind::InvalidArgument, "cannot open '" + Path + "'");
  std::fseek(In, 0, SEEK_END);
  const uint64_t Size = static_cast<uint64_t>(std::ftell(In));
  std::fseek(In, 0, SEEK_SET);

  if (Faults.FlipBitsOnRead && Size > 0) {
    Rng R(Faults.Seed);
    for (uint32_t K = 0; K < Faults.FlipBitsOnRead; ++K)
      ReadFlips.emplace_back(R.below(Size),
                             static_cast<uint8_t>(1u << R.below(8)));
    std::sort(ReadFlips.begin(), ReadFlips.end());
  }

  auto Close = [&](std::optional<Diag> D) {
    std::fclose(In);
    return D;
  };

  // Header: any damage here rejects the file — with the module hash and
  // block count untrustworthy, a "recovered" prefix could replay against
  // the wrong code.
  uint8_t H[HeaderBytes];
  if (Size < HeaderBytes || !readBytes(In, 0, H, sizeof(H)))
    return Close(Diag(ErrorKind::CorruptData,
                      "'" + Path + "': truncated header (" +
                          std::to_string(Size) + " bytes)"));
  if (crc32c(H, 24) != get32(H + 24))
    return Close(Diag(ErrorKind::CorruptData,
                      "'" + Path + "': header checksum mismatch"));
  if (get32(H) != Magic)
    return Close(Diag(ErrorKind::CorruptData,
                      "'" + Path + "': not a bpfree-trace-v1 file"));
  if (get32(H + 4) != FormatVersion)
    return Close(Diag(ErrorKind::InvalidArgument,
                      "'" + Path + "': unsupported trace format version " +
                          std::to_string(get32(H + 4))));
  ModuleHash = get64(H + 8);
  NumBlocks = get32(H + 16);

  // Scan the frame sequence, decoding as we verify so the recovered
  // event count is backed by decoded bytes, not by trusting the footer.
  std::vector<uint32_t> Payload(BranchTrace::ChunkWords);
  TraceDecoder Decoder;
  uint64_t Events = 0;
  uint64_t LastIC = 0;
  uint64_t Pos = HeaderBytes;
  // After the first damaged frame the prefix is fixed, but keep walking
  // frames whose headers still verify so stats can say how many intact
  // chunks the damage stranded (DroppedChunks).
  bool Damaged = false;
  auto Damage = [&](std::string What, bool CountChunk) {
    if (!Damaged) {
      Stats.Recovered = true;
      Stats.Detail = std::move(What);
      Damaged = true;
    }
    if (CountChunk)
      ++Stats.CorruptChunks;
  };

  while (true) {
    const uint64_t Remaining = Size - Pos;
    if (Remaining == 0) {
      Damage("missing footer: file ends after chunk " +
                 std::to_string(Stats.ValidChunks + Stats.CorruptChunks +
                                Stats.DroppedChunks),
             false);
      break;
    }
    if (Remaining < FrameHeaderBytes) {
      Damage("torn frame at offset " + std::to_string(Pos) + " (" +
                 std::to_string(Remaining) + " trailing bytes)",
             true);
      break;
    }
    uint8_t FH[FrameHeaderBytes];
    if (!readBytes(In, Pos, FH, 4))
      return Close(Diag(ErrorKind::Internal,
                        "'" + Path + "': read failed at offset " +
                            std::to_string(Pos)));
    const uint32_t Tag = get32(FH);

    if (Tag == FooterTag) {
      if (Remaining < FooterBytes) {
        Damage("torn footer at offset " + std::to_string(Pos), false);
        break;
      }
      uint8_t F[FooterBytes];
      std::memcpy(F, FH, 4);
      if (!readBytes(In, Pos + 4, F + 4, FooterBytes - 4))
        return Close(Diag(ErrorKind::Internal,
                          "'" + Path + "': read failed at offset " +
                              std::to_string(Pos)));
      if (crc32c(F, 40) != get32(F + 40)) {
        Damage("footer checksum mismatch", false);
        break;
      }
      if (Damaged)
        break; // prefix already fixed; the footer describes a fuller file
      const uint64_t FEvents = get64(F + 8);
      const uint64_t FWords = get64(F + 24);
      const uint64_t FChunks = get64(F + 32);
      if (FEvents != Events || FWords != Stats.RecoveredWords ||
          FChunks != Stats.ValidChunks || Decoder.midRecord()) {
        Damage("footer disagrees with stream (footer: " +
                   std::to_string(FEvents) + " events, " +
                   std::to_string(FChunks) + " chunks; stream: " +
                   std::to_string(Events) + " events, " +
                   std::to_string(Stats.ValidChunks) + " chunks)",
               false);
        break;
      }
      if (Pos + FooterBytes != Size) {
        Damage(std::to_string(Size - Pos - FooterBytes) +
                   " trailing bytes after footer",
               false);
        break;
      }
      Stats.FooterValid = true;
      Finalized = get32(F + 4) != 0;
      TotalInstrs_ = get64(F + 16);
      break;
    }

    if (Tag != FrameTag) {
      Damage("unrecognized tag at offset " + std::to_string(Pos) +
                 " (chunk " + std::to_string(Stats.ValidChunks) + ")",
             true);
      break;
    }
    if (!readBytes(In, Pos + 4, FH + 4, FrameHeaderBytes - 4))
      return Close(Diag(ErrorKind::Internal,
                        "'" + Path + "': read failed at offset " +
                            std::to_string(Pos)));
    if (crc32c(FH, 12) != get32(FH + 12)) {
      // The frame extent itself is untrustworthy: no resync possible.
      Damage("frame header checksum mismatch at offset " +
                 std::to_string(Pos) + " (chunk " +
                 std::to_string(Stats.ValidChunks) + ")",
             true);
      break;
    }
    const uint32_t Words = get32(FH + 4);
    if (Words == 0 || Words > BranchTrace::ChunkWords) {
      Damage("implausible frame length " + std::to_string(Words) +
                 " at offset " + std::to_string(Pos),
             true);
      break;
    }
    if (Remaining < FrameHeaderBytes + static_cast<uint64_t>(Words) * 4) {
      Damage("torn chunk payload at offset " + std::to_string(Pos) +
                 " (chunk " + std::to_string(Stats.ValidChunks) + ")",
             true);
      break;
    }
    const uint64_t PayloadOff = Pos + FrameHeaderBytes;
    if (!readBytes(In, PayloadOff, Payload.data(), Words * 4))
      return Close(Diag(ErrorKind::Internal,
                        "'" + Path + "': read failed at offset " +
                            std::to_string(PayloadOff)));
    Pos = PayloadOff + static_cast<uint64_t>(Words) * 4;
    const uint32_t Crc = get32(FH + 8);
    if (crc32c(Payload.data(), Words * 4) != Crc) {
      // The header verified, so the extent is known: keep scanning to
      // count what the damage strands.
      Damage("chunk " + std::to_string(Stats.ValidChunks) +
                 " payload checksum mismatch",
             true);
      continue;
    }
    if (Damaged) {
      ++Stats.DroppedChunks;
      continue;
    }
    Frames.push_back({PayloadOff, Words, Crc});
    ++Stats.ValidChunks;
    Stats.RecoveredWords += Words;
    Decoder.feed(Payload.data(), Words, [&](uint32_t, bool, uint64_t Delta) {
      ++Events;
      LastIC += Delta;
    });
  }

  std::fclose(In);
  Stats.RecoveredEvents = Events;
  if (!Stats.FooterValid)
    TotalInstrs_ = LastIC; // best effort: up to the last decoded branch
  if (Stats.Recovered) {
    static metrics::Counter &RecoveredOpens =
        metrics::counter("trace.store.recovered_opens");
    RecoveredOpens.add();
    corruptChunksCounter().add(Stats.CorruptChunks);
    recoveredEventsCounter().add(Stats.RecoveredEvents);
  }
  Opened = true;
  return std::nullopt;
}

std::optional<Diag> TraceStoreReader::requireModule(const Module &M) const {
  assert(Opened && "reader not open");
  const uint64_t Expect = moduleTraceHash(M);
  const uint32_t Blocks =
      static_cast<uint32_t>(flatBlockOffsets(M).back());
  if (Expect != ModuleHash || Blocks != NumBlocks)
    return Diag(ErrorKind::InvalidArgument,
                "'" + Path + "' was captured from a different module "
                "(store hash " +
                    std::to_string(ModuleHash) + ", " +
                    std::to_string(NumBlocks) + " blocks; module hash " +
                    std::to_string(Expect) + ", " + std::to_string(Blocks) +
                    " blocks)");
  return std::nullopt;
}

std::optional<Diag> TraceStoreReader::openStream(TraceStream &S) const {
  assert(Opened && "reader not open");
  S = TraceStream();
  S.In = std::fopen(Path.c_str(), "rb");
  if (!S.In)
    return Diag(ErrorKind::InvalidArgument,
                "cannot reopen '" + Path + "' for streaming");
  S.Owner = this;
  S.Buf = std::make_unique<uint32_t[]>(BranchTrace::ChunkWords);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// TraceStream
//===----------------------------------------------------------------------===//

TraceStream::~TraceStream() {
  if (In)
    std::fclose(In);
}

TraceStream &TraceStream::operator=(TraceStream &&O) noexcept {
  if (this != &O) {
    if (In)
      std::fclose(In);
    Owner = O.Owner;
    In = O.In;
    NextFrame = O.NextFrame;
    Buf = std::move(O.Buf);
    O.In = nullptr;
    O.Owner = nullptr;
    O.NextFrame = 0;
  }
  return *this;
}

Expected<uint64_t> TraceStream::next(const uint32_t *&Words) {
  assert(Owner && In && "stream not open");
  if (NextFrame == Owner->Frames.size())
    return uint64_t(0);
  const TraceStoreReader::Frame &F = Owner->Frames[NextFrame];
  if (std::fseek(In, static_cast<long>(F.PayloadOffset), SEEK_SET) != 0 ||
      !Owner->readBytes(In, F.PayloadOffset, Buf.get(), F.Words * 4))
    return Diag(ErrorKind::Internal,
                "'" + Owner->Path + "': read failed at offset " +
                    std::to_string(F.PayloadOffset));
  // Re-verify against the checksum captured at open: damage that arrives
  // while a replay is underway is detected, not folded into histograms.
  if (crc32c(Buf.get(), F.Words * 4) != F.PayloadCrc)
    return Diag(ErrorKind::CorruptData,
                "'" + Owner->Path + "': chunk " + std::to_string(NextFrame) +
                    " payload checksum mismatch during streaming read");
  ++NextFrame;
  static metrics::Counter &ReadChunks =
      metrics::counter("trace.store.chunks_read");
  ReadChunks.add();
  Words = Buf.get();
  return static_cast<uint64_t>(F.Words);
}
