//===- vm/FaultInjector.cpp - Deterministic fault injection ---------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/FaultInjector.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "support/Rng.h"

#include <cassert>

using namespace bpfree;

FaultPlan FaultPlan::atInstruction(uint64_t InstrCount, FaultAction Action) {
  FaultPlan P;
  P.Trigger = FaultTrigger::AtInstruction;
  P.Action = Action;
  P.TriggerInstr = InstrCount;
  return P;
}

FaultPlan FaultPlan::onFunctionEntry(std::string Name, FaultAction Action,
                                     uint64_t Skip) {
  FaultPlan P;
  P.Trigger = FaultTrigger::OnFunctionEntry;
  P.Action = Action;
  P.FunctionName = std::move(Name);
  P.Skip = Skip;
  return P;
}

FaultPlan FaultPlan::onIntrinsic(ir::Intrinsic Intr, FaultAction Action,
                                 uint64_t Skip) {
  FaultPlan P;
  P.Trigger = FaultTrigger::OnIntrinsic;
  P.Action = Action;
  P.Intr = Intr;
  P.Skip = Skip;
  return P;
}

FaultPlan FaultPlan::fromSeed(uint64_t Seed, uint64_t WindowLo,
                              uint64_t WindowHi) {
  assert(WindowLo < WindowHi && "empty trigger window");
  Rng R(Seed);
  FaultPlan P;
  P.Trigger = FaultTrigger::AtInstruction;
  P.TriggerInstr = WindowLo + R.below(WindowHi - WindowLo);
  P.Action = static_cast<FaultAction>(R.below(4));
  return P;
}

IoFaultPlan IoFaultPlan::failWriteAfter(uint64_t Bytes) {
  IoFaultPlan P;
  P.FailWriteAfterBytes = Bytes;
  return P;
}

IoFaultPlan IoFaultPlan::flipBitsOnRead(uint32_t Bits, uint64_t Seed) {
  IoFaultPlan P;
  P.FlipBitsOnRead = Bits;
  P.Seed = Seed;
  return P;
}

IoFaultPlan IoFaultPlan::truncateAtClose(uint64_t Bytes) {
  IoFaultPlan P;
  P.TruncateAtClose = Bytes;
  return P;
}

IoFaultPlan IoFaultPlan::fromSeed(uint64_t Seed, uint64_t FileBytesHint) {
  assert(FileBytesHint > 0 && "empty byte window");
  Rng R(Seed);
  IoFaultPlan P;
  P.Seed = Seed;
  switch (R.below(3)) {
  case 0:
    P.FailWriteAfterBytes = 1 + R.below(FileBytesHint);
    break;
  case 1:
    P.FlipBitsOnRead = 1 + static_cast<uint32_t>(R.below(8));
    break;
  default:
    P.TruncateAtClose = 1 + R.below(FileBytesHint);
    break;
  }
  return P;
}

std::string IoFaultPlan::describe() const {
  if (FailWriteAfterBytes)
    return "fail write after " + std::to_string(FailWriteAfterBytes) +
           " bytes";
  if (FlipBitsOnRead)
    return "flip " + std::to_string(FlipBitsOnRead) +
           " bits on read (seed " + std::to_string(Seed) + ")";
  if (TruncateAtClose)
    return "truncate to " + std::to_string(TruncateAtClose) +
           " bytes at close";
  return "no io fault";
}

const char *bpfree::faultActionName(FaultAction Action) {
  switch (Action) {
  case FaultAction::Trap:
    return "trap";
  case FaultAction::ExhaustBudget:
    return "exhaust-budget";
  case FaultAction::MemoryFault:
    return "memory-fault";
  case FaultAction::FloodOutput:
    return "flood-output";
  }
  return "unknown";
}

std::string FaultPlan::describe() const {
  std::string S = std::string(faultActionName(Action)) + " ";
  switch (Trigger) {
  case FaultTrigger::AtInstruction:
    S += "at instruction " + std::to_string(TriggerInstr);
    break;
  case FaultTrigger::OnFunctionEntry:
    S += "on entry to '" + FunctionName + "'";
    break;
  case FaultTrigger::OnIntrinsic:
    S += "on intrinsic " + std::string(ir::intrinsicName(Intr));
    break;
  }
  if (Skip)
    S += " (skipping first " + std::to_string(Skip) + ")";
  return S;
}

ExecAction FaultInjector::onInstruction(const ExecEvent &E) {
  if (Fired)
    return ExecAction::Continue;

  bool Matched = false;
  switch (Plan.Trigger) {
  case FaultTrigger::AtInstruction:
    Matched = E.InstrCount >= Plan.TriggerInstr;
    break;
  case FaultTrigger::OnFunctionEntry:
    // The first instruction (or terminator) of the entry block marks a
    // fresh activation of the function.
    Matched = E.InstIdx == 0 && E.BB == E.F->getEntry() &&
              E.F->getName() == Plan.FunctionName;
    break;
  case FaultTrigger::OnIntrinsic:
    Matched = E.I && E.I->Op == ir::Opcode::CallIntrinsic &&
              E.I->Intr == Plan.Intr;
    break;
  }
  if (!Matched)
    return ExecAction::Continue;
  if (Matches++ < Plan.Skip)
    return ExecAction::Continue;

  Fired = true;
  FiredAt = E.InstrCount;
  switch (Plan.Action) {
  case FaultAction::Trap:
    return ExecAction::InjectTrap;
  case FaultAction::ExhaustBudget:
    return ExecAction::InjectBudgetExhaustion;
  case FaultAction::MemoryFault:
    return ExecAction::InjectMemoryFault;
  case FaultAction::FloodOutput:
    return ExecAction::InjectOutputFlood;
  }
  return ExecAction::Continue;
}
