//===- vm/Decode.h - Pre-decoded instruction cache --------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's pre-decoded form of a module. The ir::Instruction
/// encoding is optimized for analyses (flat fields, easy use/def
/// queries); executing it directly makes the dispatch loop re-resolve
/// operands on every dynamic instruction: the register-vs-immediate
/// choice of SrcB, the memory width, the callee function index, and the
/// branch-target block of every terminator. decodeModule() resolves all
/// of that once per static instruction:
///
///  * register/immediate binary ops split into separate decoded opcodes,
///  * loads/stores split by width,
///  * call instructions carry the callee DecodedFunction pointer,
///  * terminators carry DecodedBlock successor pointers,
///  * destination registers are pre-validated to be virtual (the decoder
///    asserts), so the machine writes frame slots unchecked.
///
/// A DecodedModule is immutable once built and holds only const pointers
/// into the source module, so any number of concurrent Machine runs may
/// share one cache — this is what keeps Interpreter reentrant and the
/// parallel suite runner race-free.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_DECODE_H
#define BPFREE_VM_DECODE_H

#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace bpfree {

struct DecodedBlock;
struct DecodedFunction;

/// Decoded opcodes. Binary ALU/FP ops come in a register flavour and an
/// immediate flavour (suffix I) so the executed path has no BIsImm test;
/// loads and stores are split by access width for the same reason.
///
/// The opcodes past CallIntrinsic are superinstructions: decode-time
/// rewrites of the hottest adjacent instruction pairs (and of a compare
/// feeding the block's conditional branch), chosen from dynamic pair
/// frequencies measured across the workload suite. A pair fusion
/// rewrites only the FIRST instruction's opcode — the second stays
/// intact in the pool, so a handler that must stop between the halves
/// (budget/watchdog limit) leaves the instruction pointer at a plain
/// instruction and resumption is bit-identical to unfused execution.
/// defusedOp() maps each superinstruction back to its first half, which
/// is how the per-instruction-observer loop executes a fused module one
/// original instruction at a time.
enum class DOp : uint8_t {
  LoadImm,
  Move,
  // Integer ALU, register second operand.
  Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Slt, Seq, Sne,
  // Integer ALU, immediate second operand.
  AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI, ShlI, ShrI, SltI, SeqI,
  SneI,
  // FP arithmetic (doubles bit-cast in registers).
  FAdd, FSub, FMul, FDiv,
  FAddI, FSubI, FMulI, FDivI,
  FNeg, CvtIF, CvtFI,
  // FP compares set the frame's FP condition flag.
  FCmpEq, FCmpLt, FCmpLe,
  // Memory, split by width.
  LoadI8, LoadI64, StoreI8, StoreI64,
  // Calls.
  Call, CallIntrinsic,
  // Superinstructions: hottest adjacent pairs (first op names the
  // rewritten slot, second op follows intact in the pool).
  AddLoadI64, MulIAdd, AddIMulI, LoadImmAdd, AddMulI, MulAdd, LoadI64Slt,
  AddIMul,
  // Compare fused with the block's conditional branch. The compare must
  // be the block's last instruction and the terminator must test its
  // destination against zero; DecodedInst::Fuse is 1 when the branch
  // takes on a FALSE compare (BEQ/BLEZ forms).
  SltBr, SltIBr, SeqBr, SeqIBr, SneBr, SneIBr,
  // FP compare fused with the block's flag branch (BC1T/BC1F). The
  // handlers still set the frame's FP condition flag before branching,
  // both for budget-bail resumption (the plain terminator re-reads it)
  // and for any later flag branch; Fuse is 1 for the BC1F form.
  FCmpEqBr, FCmpLtBr, FCmpLeBr,
  // Terminator pseudo-ops. Every block's instruction run is followed by
  // one pseudo-instruction at Insts[NumInsts] carrying the terminator
  // kind, so the threaded loop dispatches terminators through the jump
  // table with no per-instruction end-of-block test. The switch loop
  // detects terminators via IP == End and never dispatches these. Keep
  // TermReturn last: NumDOps below anchors the dispatch tables.
  TermJump, TermCondBranch, TermReturn,
};

/// Number of decoded opcodes — sizes the threaded-dispatch jump table.
/// Must track the last DOp enumerator.
inline constexpr size_t NumDOps = static_cast<size_t>(DOp::TermReturn) + 1;

/// The first half of a superinstruction (the opcode originally in its
/// rewritten slot), or \p Op itself for plain opcodes. The observer-
/// carrying dispatch loop executes fused modules through this mapping so
/// per-instruction event streams stay identical to unfused execution.
constexpr DOp defusedOp(DOp Op) {
  switch (Op) {
  case DOp::AddLoadI64: return DOp::Add;
  case DOp::MulIAdd:    return DOp::MulI;
  case DOp::AddIMulI:   return DOp::AddI;
  case DOp::LoadImmAdd: return DOp::LoadImm;
  case DOp::AddMulI:    return DOp::Add;
  case DOp::MulAdd:     return DOp::Mul;
  case DOp::LoadI64Slt: return DOp::LoadI64;
  case DOp::AddIMul:    return DOp::AddI;
  case DOp::SltBr:      return DOp::Slt;
  case DOp::SltIBr:     return DOp::SltI;
  case DOp::SeqBr:      return DOp::Seq;
  case DOp::SeqIBr:     return DOp::SeqI;
  case DOp::SneBr:      return DOp::Sne;
  case DOp::SneIBr:     return DOp::SneI;
  case DOp::FCmpEqBr:   return DOp::FCmpEq;
  case DOp::FCmpLtBr:   return DOp::FCmpLt;
  case DOp::FCmpLeBr:   return DOp::FCmpLe;
  default:              return Op;
  }
}

/// Sentinel slot for "no destination register".
constexpr uint32_t NoSlot = ~0u;

/// One pre-decoded straight-line instruction. All operands are raw
/// register ids: every frame's register window has slots for the
/// dedicated registers too (zero/SP/GP are materialized at frame entry,
/// where SP is constant), so reads and writes index the window directly
/// with no special-casing.
struct DecodedInst {
  DOp Op = DOp::Move;
  ir::MemWidth Width = ir::MemWidth::I64;
  ir::Intrinsic Intr = ir::Intrinsic::PrintInt;
  /// Superinstruction flag byte. For the fused compare+branch opcodes,
  /// bit 0 set means the branch takes when the compare is FALSE (the
  /// BEQ/BLEZ zero-test forms). Unused (0) for everything else.
  uint8_t Fuse = 0;
  uint32_t Dst = NoSlot;  ///< frame slot (raw id; always virtual)
  uint32_t SrcA = 0;      ///< raw register id
  uint32_t SrcB = 0;      ///< raw register id (register flavours only)
  uint32_t ArgsOff = 0;   ///< offset into DecodedFunction::ArgPool
  uint32_t NumArgs = 0;
  int64_t Imm = 0;
  const DecodedFunction *Callee = nullptr; ///< Call only
  const ir::Instruction *Src = nullptr;    ///< for observer events
};

/// Pre-decoded terminator with resolved successor pointers.
struct DecodedTerm {
  ir::TermKind Kind = ir::TermKind::Return;
  ir::BranchOp BOp = ir::BranchOp::BEQ;
  uint32_t Lhs = 0;      ///< raw register id
  uint32_t Rhs = 0;      ///< raw register id
  uint32_t RetValue = 0; ///< raw register id
  bool HasRetValue = false;
  const DecodedBlock *Taken = nullptr;
  const DecodedBlock *Fallthru = nullptr;
};

/// One basic block: a dense instruction run plus its terminator.
struct DecodedBlock {
  const ir::BasicBlock *BB = nullptr; ///< source block (observers, traps)
  const DecodedInst *Insts = nullptr; ///< into DecodedFunction::InstPool
  uint32_t NumInsts = 0;
  /// Module-wide dense block index (blocks of preceding functions +
  /// block id) — the key of EdgeProfile's direct counter arrays.
  uint32_t FlatIndex = 0;
  DecodedTerm Term;
};

/// One function: its blocks (indexed by block id) and frame metadata the
/// machine needs at call sites without touching the ir::Function.
struct DecodedFunction {
  const ir::Function *F = nullptr;
  std::vector<DecodedInst> InstPool;  ///< all instructions, block order
  std::vector<uint32_t> ArgPool;      ///< call argument registers
  std::vector<DecodedBlock> Blocks;   ///< indexed by block id
  const DecodedBlock *Entry = nullptr;
  uint32_t NumRegSlots = 0; ///< window size: raw ids incl. dedicated regs
  uint32_t NumParams = 0;
  uint64_t FrameBytes = 0;  ///< frame size, pre-aligned to 8 bytes
};

/// The whole-module decode cache. Build once per module (Interpreter does
/// this at construction), then share freely: everything is immutable.
struct DecodedModule {
  const ir::Module *M = nullptr;
  std::vector<DecodedFunction> Functions; ///< indexed by function index

  const DecodedFunction *get(uint32_t Index) const {
    return &Functions[Index];
  }
  /// \returns the decoded function for \p Name, or nullptr.
  const DecodedFunction *find(const std::string &Name) const;
};

/// Knobs for decodeModule. The differential tests and the benchmark's
/// baseline legs decode with fusion off to compare against the plain
/// one-op-per-dispatch form.
struct DecodeOptions {
  /// Rewrite hot adjacent pairs (and compare+branch tails) into the
  /// superinstruction opcodes. Semantics are identical either way; this
  /// only changes how many dispatches the machine performs.
  bool EnableFusion = true;
};

/// Decodes \p M. The module must verify cleanly (see ir::verifyModule);
/// structural errors are caught by assertions, as in the interpreter.
DecodedModule decodeModule(const ir::Module &M);
DecodedModule decodeModule(const ir::Module &M, const DecodeOptions &Opts);

/// A module-wide flat block index resolved back to its source site — the
/// inverse of DecodedBlock::FlatIndex, for reports that must name a
/// branch by function and source line rather than by dense index (the
/// explain layer's hotspot table).
struct BranchSite {
  const ir::Function *F = nullptr;
  const ir::BasicBlock *BB = nullptr;
  /// Terminator::SrcLine of the block; 0 for hand-built IR or blocks
  /// without a conditional branch.
  int SrcLine = 0;

  bool valid() const { return BB != nullptr; }
  /// "func:block" or "func:block (line N)" — the hotspot-report label.
  std::string describe() const;
};

/// Maps \p FlatIndex back to its (function, block, source line) in \p M.
/// Out-of-range indices yield an invalid site. O(log #functions) via the
/// flat block offsets; callers resolving many indices should hold the
/// result of flatBlockOffsets(M) themselves and reuse the overload below.
BranchSite siteForFlatIndex(const ir::Module &M, uint32_t FlatIndex);
BranchSite siteForFlatIndex(const ir::Module &M,
                            const std::vector<uint32_t> &Offsets,
                            uint32_t FlatIndex);

} // namespace bpfree

#endif // BPFREE_VM_DECODE_H
