//===- vm/Interpreter.cpp - IR interpreter --------------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
// The dispatch loop executes the pre-decoded module form (vm/Decode.h):
// operand registers, immediates, access widths, callee functions, and
// branch-target blocks are all resolved once at Interpreter construction,
// so the per-instruction work is a single switch on the decoded opcode.
//
// Two further structural choices keep the loop tight:
//
//  * Every frame's register window has slots for the dedicated registers
//    (zero/SP/GP) as well; they are materialized at frame entry, where SP
//    is constant for the whole activation. Operand reads and writes are
//    therefore single unchecked loads/stores off the window base.
//  * The execution point (instruction pointer, block end, instruction
//    count, window base) lives in locals; the frame is only synced on
//    calls, returns, and cold paths. The budget and the wall-clock
//    watchdog probe share one fused per-instruction limit compare.
//
// The loop is specialized on whether any observer asked for
// per-instruction events; plain profiling runs take the variant with no
// per-instruction observer fan-out at all.
//
// Two dispatch loops share one set of handler bodies (InterpOps.inc /
// InterpTerm.inc): the portable switch loop, and — on compilers with the
// labels-as-values extension, when BPFREE_THREADED_DISPATCH is on — a
// computed-goto token-threaded loop whose per-handler indirect jumps let
// the host BTB predict opcode transitions individually. Decode-time
// superinstruction fusion (vm/Decode.cpp) additionally collapses the
// hottest adjacent pairs and compare+branch tails into single dispatches;
// both loops execute the fused opcodes, and the observer-carrying switch
// loop executes them one original instruction at a time via defusedOp()
// so event streams, instruction counts, and trap points are identical in
// every configuration.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "support/Error.h"
#include "support/Metrics.h"
#include "support/TimeTrace.h"
#include "vm/BranchTrace.h"
#include "vm/Decode.h"
#include "vm/EdgeProfile.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <limits>

// Computed-goto dispatch needs the GCC/Clang labels-as-values extension;
// the CMake option BPFREE_THREADED_DISPATCH (default ON) gates it so the
// portable switch loop can be forced for differential testing and for
// compilers without the extension.
#ifndef BPFREE_THREADED_DISPATCH
#define BPFREE_THREADED_DISPATCH 1
#endif
#if BPFREE_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define BPFREE_HAVE_THREADED 1
#else
#define BPFREE_HAVE_THREADED 0
#endif

using namespace bpfree;
using namespace bpfree::ir;

namespace {

constexpr uint64_t NullPageSize = 8;

inline double asDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

inline uint64_t fromDouble(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

/// Evaluates a conditional-branch terminator's outcome. Shared by the
/// terminator handler and the budget-bail resumption path of the fused
/// compare+branch superinstructions (which re-derive the outcome from
/// the compare's register result).
inline bool branchTaken(const DecodedTerm &T, const uint64_t *Regs,
                        bool FpFlag) {
  switch (T.BOp) {
  case BranchOp::BEQ:
    return Regs[T.Lhs] == Regs[T.Rhs];
  case BranchOp::BNE:
    return Regs[T.Lhs] != Regs[T.Rhs];
  case BranchOp::BLEZ:
    return static_cast<int64_t>(Regs[T.Lhs]) <= 0;
  case BranchOp::BGTZ:
    return static_cast<int64_t>(Regs[T.Lhs]) > 0;
  case BranchOp::BLTZ:
    return static_cast<int64_t>(Regs[T.Lhs]) < 0;
  case BranchOp::BGEZ:
    return static_cast<int64_t>(Regs[T.Lhs]) >= 0;
  case BranchOp::BC1T:
    return FpFlag;
  case BranchOp::BC1F:
    return !FpFlag;
  }
  return false;
}

/// One activation record. Registers live in the machine's shared
/// register stack at [RegBase, RegBase + DF->NumRegSlots) so that calls
/// do not allocate.
struct Frame {
  const DecodedFunction *DF = nullptr;
  const DecodedBlock *DB = nullptr; ///< executing block
  uint32_t InstIdx = 0;             ///< next instruction to execute
  size_t RegBase = 0;               ///< base slot in the register stack
  uint64_t SavedSp = 0;             ///< SP to restore on return
  uint32_t CallerDst = NoSlot;      ///< caller slot receiving the result
  bool FpFlag = false;              ///< FP condition flag
};

/// Execution engine for a single run; holds all mutable state so that
/// Interpreter::run is reentrant.
class Machine {
public:
  Machine(const DecodedModule &DM, const RunLimits &Limits,
          const Dataset &Data, const std::vector<ExecObserver *> &Observers)
      : DM(DM), Limits(Limits), Data(Data), Observers(Observers) {}

  RunResult run(const DecodedFunction *Entry);

private:
  // Register access ---------------------------------------------------
  //
  // Frames carry window slots for the dedicated registers too, so reads
  // and writes are branch-free window indexing with raw register ids.

  uint64_t readOp(const Frame &F, uint32_t R) const {
    return RegStack[F.RegBase + R];
  }

  /// Destinations were validated at decode time: \p Slot is always a
  /// live virtual-register slot of F's window.
  void writeSlot(const Frame &F, uint32_t Slot, uint64_t V) {
    RegStack[F.RegBase + Slot] = V;
  }

  // Faults ---------------------------------------------------------------

  /// Builds the structured TrapInfo from the live frame stack; called
  /// exactly once, on the first fault of the run.
  TrapInfo snapshotFault(ErrorKind Kind, const std::string &Message) const {
    TrapInfo T;
    T.Kind = Kind;
    T.Message = Message;
    T.InstrCount = Result.InstrCount;
    for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
      TrapFrame TF;
      TF.Function = It->DF->F->getName();
      TF.Block = It->DB->BB->getName();
      TF.BlockId = It->DB->BB->getId();
      // InstIdx is the *next* instruction; the faulting one, when inside
      // the block, is the previous index. Terminators report size().
      TF.InstIdx = It->InstIdx;
      T.Backtrace.push_back(std::move(TF));
    }
    if (!T.Backtrace.empty()) {
      T.Function = T.Backtrace.front().Function;
      T.Block = T.Backtrace.front().Block;
      T.BlockId = T.Backtrace.front().BlockId;
      T.InstIdx = T.Backtrace.front().InstIdx;
    }
    return T;
  }

  /// Ends the run with \p Status unless it already failed (first fault
  /// wins, so injected and organic faults never overwrite each other).
  void fail(RunStatus Status, ErrorKind Kind, const std::string &Message) {
    if (Result.Status != RunStatus::Ok)
      return;
    Result.Status = Status;
    Result.TrapMessage = Message;
    Result.Trap = snapshotFault(Kind, Message);
  }

  void trap(const std::string &Message, ErrorKind Kind = ErrorKind::Trap) {
    fail(RunStatus::Trap, Kind, Message);
  }

  /// Applies a non-Continue observer action (fault injection).
  void applyInjectedAction(ExecAction Action, const Frame &F) {
    switch (Action) {
    case ExecAction::Continue:
      break;
    case ExecAction::InjectTrap:
      trap("injected trap in '" + F.DF->F->getName() + "'",
           ErrorKind::Injected);
      break;
    case ExecAction::InjectBudgetExhaustion:
      // The budget check at the top of the main loop turns this into a
      // regular BudgetExceeded failure on the next iteration.
      Result.InstrCount = Limits.MaxInstructions;
      break;
    case ExecAction::InjectMemoryFault:
      trap("injected memory fault: access out of bounds at address " +
               std::to_string(Memory.size()),
           ErrorKind::Injected);
      break;
    case ExecAction::InjectOutputFlood:
      Result.Output.resize(Limits.MaxOutputBytes, '#');
      Result.OutputTruncated = true;
      fail(RunStatus::OutputOverflow, ErrorKind::Injected,
           "injected output flood: print budget (" +
               std::to_string(Limits.MaxOutputBytes) +
               " bytes) exhausted in '" + F.DF->F->getName() + "'");
      break;
    }
  }

  // Helpers ----------------------------------------------------------

  void output(const std::string &S) {
    if (Result.Output.size() + S.size() <= Limits.MaxOutputBytes) {
      Result.Output += S;
      return;
    }
    Result.OutputTruncated = true;
    if (Limits.TrapOnOutputOverflow)
      fail(RunStatus::OutputOverflow, ErrorKind::OutputOverflow,
           "print budget (" + std::to_string(Limits.MaxOutputBytes) +
               " bytes) exhausted");
  }

  bool pushFrame(const DecodedFunction *DF, const uint32_t *ArgRegs,
                 uint32_t NumArgs, uint32_t CallerDst);
  void popFrame(uint64_t RetValue, bool HasRetValue);
  bool execIntrinsic(Frame &F, const DecodedInst &I);
  template <bool HasInstrObs, bool DirectProfile, bool DirectTraceSink>
  void execLoop();
#if BPFREE_HAVE_THREADED
  template <bool DirectProfile, bool DirectTraceSink>
  void execLoopThreaded();
#endif

  const DecodedModule &DM;
  const RunLimits &Limits;
  const Dataset &Data;
  const std::vector<ExecObserver *> &Observers;
  /// Subset of Observers that asked for per-instruction callbacks;
  /// empty for plain profiling runs, which take the execLoop<false>
  /// specialization and pay nothing per instruction.
  std::vector<ExecObserver *> InstrObservers;
  /// Non-null when every observer is an EdgeProfile or a BranchTrace
  /// (at most one of each): the loop bumps the profile's flat counter
  /// arrays (keyed by DecodedBlock::FlatIndex) and appends packed trace
  /// events directly instead of making virtual observer calls per block.
  EdgeProfile::Counts *DirectCounts = nullptr;
  uint64_t *DirectEntries = nullptr;
  BranchTrace *DirectTrace = nullptr;

  std::vector<uint8_t> Memory;
  uint64_t Sp = 0;
  uint64_t HeapTop = 0;
  std::vector<Frame> Frames;
  /// Register windows of all live frames, innermost last; grows and
  /// shrinks with the call stack so frames never allocate individually.
  std::vector<uint64_t> RegStack;
  RunResult Result;
};

bool Machine::pushFrame(const DecodedFunction *DF, const uint32_t *ArgRegs,
                        uint32_t NumArgs, uint32_t CallerDst) {
  assert(NumArgs == DF->NumParams && "argument count mismatch");
  if (Frames.size() >= Limits.MaxCallDepth) {
    trap("call depth limit exceeded in '" + DF->F->getName() + "'");
    return false;
  }
  // Reserve the frame: SP moves down, 8-byte aligned (pre-aligned at
  // decode time).
  if (Sp < HeapTop + DF->FrameBytes) {
    trap("stack overflow entering '" + DF->F->getName() + "'");
    return false;
  }
  const size_t RegBase = RegStack.size();
  RegStack.resize(RegBase + DF->NumRegSlots, 0);
  if (!Frames.empty()) {
    // Argument registers are read from the caller's window, which the
    // resize above left untouched (indices, not pointers); parameters
    // land in the callee's first virtual registers.
    const Frame &Caller = Frames.back();
    for (uint32_t I = 0; I < NumArgs; ++I)
      RegStack[RegBase + FirstVirtualReg + I] = readOp(Caller, ArgRegs[I]);
  }
  Frame Fr;
  Fr.DF = DF;
  Fr.DB = DF->Entry;
  Fr.InstIdx = 0;
  Fr.RegBase = RegBase;
  Fr.SavedSp = Sp;
  Fr.CallerDst = CallerDst;
  Frames.push_back(Fr);
  Sp -= DF->FrameBytes;
  // Materialize the dedicated registers: within one activation SP is
  // constant, so operand reads become plain window loads.
  RegStack[RegBase + SpReg.Id] = Sp;
  RegStack[RegBase + GpReg.Id] = NullPageSize;
  if (DirectEntries)
    ++DirectEntries[DF->Entry->FlatIndex];
  else
    for (ExecObserver *O : Observers)
      O->onBlockEnter(*DF->Entry->BB);
  return true;
}

void Machine::popFrame(uint64_t RetValue, bool HasRetValue) {
  const Frame &F = Frames.back();
  Sp = F.SavedSp;
  const uint32_t Dst = F.CallerDst;
  RegStack.resize(F.RegBase);
  Frames.pop_back();
  if (!Frames.empty() && Dst != NoSlot && HasRetValue)
    writeSlot(Frames.back(), Dst, RetValue);
  if (Frames.empty()) {
    Result.ExitValue = static_cast<int64_t>(RetValue);
  }
}

bool Machine::execIntrinsic(Frame &F, const DecodedInst &I) {
  const uint32_t *ArgRegs = F.DF->ArgPool.data() + I.ArgsOff;
  auto Arg = [&](uint32_t Idx) -> uint64_t {
    return Idx < I.NumArgs ? readOp(F, ArgRegs[Idx]) : 0;
  };
  uint64_t Ret = 0;
  switch (I.Intr) {
  case Intrinsic::PrintInt: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64,
                  static_cast<int64_t>(Arg(0)));
    output(Buf);
    break;
  }
  case Intrinsic::PrintChar:
    output(std::string(1, static_cast<char>(Arg(0))));
    break;
  case Intrinsic::PrintDouble: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", asDouble(Arg(0)));
    output(Buf);
    break;
  }
  case Intrinsic::PrintStr: {
    uint64_t Addr = Arg(0);
    std::string S;
    for (uint64_t K = 0; K < 1u << 20; ++K) {
      if (Addr + K < NullPageSize || Addr + K >= Memory.size()) {
        trap("print_str reads out of bounds");
        return false;
      }
      char C = static_cast<char>(Memory[Addr + K]);
      if (C == '\0')
        break;
      S += C;
    }
    output(S);
    break;
  }
  case Intrinsic::Malloc: {
    uint64_t Bytes = (Arg(0) + 7u) & ~7ull;
    if (Bytes == 0)
      Bytes = 8;
    if (HeapTop + Bytes >= Sp || HeapTop + Bytes < HeapTop) {
      trap("out of heap memory");
      return false;
    }
    Ret = HeapTop;
    HeapTop += Bytes;
    break;
  }
  case Intrinsic::Arg:
    Ret = static_cast<uint64_t>(Data.scalar(static_cast<size_t>(Arg(0))));
    break;
  case Intrinsic::InputLen:
    Ret = Data.Bytes.size();
    break;
  case Intrinsic::InputByte:
    Ret = Data.byte(static_cast<size_t>(Arg(0)));
    break;
  case Intrinsic::Trap:
    trap("explicit trap() in '" + F.DF->F->getName() + "'");
    return false;
  }
  if (I.Dst != NoSlot)
    writeSlot(F, I.Dst, Ret);
  return true;
}

// Takes the current block's conditional branch with outcome \p TakenExpr:
// packed trace append, direct profile counts, or virtual observer
// fan-out, exactly once per executed branch, then re-enters dispatch.
// Shared by the CondBranch terminator (InterpTerm.inc) and the fused
// compare+branch handlers (InterpOps.inc); expands inside the dispatch
// loops, which provide DB, EnterBlock, IC, Observers, BPFREE_NEXT, and
// the DirectProfile/DirectTraceSink template parameters.
#define BPFREE_BRANCH(TakenExpr)                                           \
  {                                                                        \
    const bool Taken = (TakenExpr);                                        \
    const DecodedTerm &BrT = DB->Term;                                     \
    if constexpr (DirectTraceSink)                                         \
      DirectTrace->append(DB->FlatIndex, Taken, IC);                       \
    if constexpr (DirectProfile) {                                         \
      EdgeProfile::Counts &C = DirectCounts[DB->FlatIndex];                \
      if (Taken)                                                           \
        ++C.Taken;                                                         \
      else                                                                 \
        ++C.Fallthru;                                                      \
      EnterBlock(Taken ? BrT.Taken : BrT.Fallthru);                        \
      ++DirectEntries[DB->FlatIndex];                                      \
    } else if constexpr (DirectTraceSink) {                                \
      EnterBlock(Taken ? BrT.Taken : BrT.Fallthru);                        \
    } else {                                                               \
      const ir::BasicBlock &BranchBlock = *DB->BB;                         \
      EnterBlock(Taken ? BrT.Taken : BrT.Fallthru);                        \
      for (ExecObserver *O : Observers)                                    \
        O->onCondBranch(BranchBlock, Taken, IC);                           \
      for (ExecObserver *O : Observers)                                    \
        O->onBlockEnter(*DB->BB);                                          \
    }                                                                      \
    BPFREE_NEXT;                                                           \
  }

/// The dispatch loop, specialized three ways decided once at run start:
/// HasInstrObs hoists the per-instruction observer guard (plain runs pay
/// nothing per instruction), DirectProfile replaces the per-block
/// virtual observer fan-out with direct increments of the sole
/// EdgeProfile's flat counter arrays, and DirectTraceSink appends packed
/// branch events to the sole BranchTrace inline (capture runs stay on
/// the fast path instead of paying a virtual call per branch).
template <bool HasInstrObs, bool DirectProfile, bool DirectTraceSink>
void Machine::execLoop() {
  // Watchdog bookkeeping: the clock is only read every WatchdogStride
  // instructions, so deadline-free runs stay deterministic and cheap.
  constexpr uint64_t WatchdogStride = 16384;
  const uint64_t MaxInstructions = Limits.MaxInstructions;
  const bool HasDeadline = Limits.MaxMillis > 0;
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Limits.MaxMillis);
  uint64_t NextWatchdogCheck = WatchdogStride;
  // One fused compare per instruction covers both the budget and the
  // watchdog probe: Limit is whichever comes first.
  uint64_t Limit = HasDeadline ? std::min(MaxInstructions, NextWatchdogCheck)
                               : MaxInstructions;

  // The execution point lives in locals; Sync spills it back into the
  // frame / result for cold paths (traps, calls, snapshots) and Reload
  // re-derives it after the active frame changed. Regs is refreshed
  // whenever RegStack may have reallocated (pushFrame).
  uint64_t IC = Result.InstrCount;
  Frame *F = &Frames.back();
  const DecodedBlock *DB = F->DB;
  const DecodedInst *BlockInsts = DB->Insts;
  const DecodedInst *IP = BlockInsts + F->InstIdx;
  const DecodedInst *End = BlockInsts + DB->NumInsts;
  uint64_t *Regs = RegStack.data() + F->RegBase;
  uint8_t *const Mem = Memory.data();
  const uint64_t MemSize = Memory.size();

  auto Sync = [&] {
    F->DB = DB;
    F->InstIdx = static_cast<uint32_t>(IP - BlockInsts);
    Result.InstrCount = IC;
  };
  auto Reload = [&] {
    F = &Frames.back();
    DB = F->DB;
    BlockInsts = DB->Insts;
    IP = BlockInsts + F->InstIdx;
    End = BlockInsts + DB->NumInsts;
    Regs = RegStack.data() + F->RegBase;
  };
  auto EnterBlock = [&](const DecodedBlock *NewDB) {
    DB = NewDB;
    BlockInsts = DB->Insts;
    IP = BlockInsts;
    End = BlockInsts + DB->NumInsts;
  };

  for (;;) {
    if (IC >= Limit) [[unlikely]] {
      Sync();
      if (IC >= MaxInstructions) {
        fail(RunStatus::BudgetExceeded, ErrorKind::BudgetExceeded,
             "instruction budget (" + std::to_string(MaxInstructions) +
                 ") exhausted in '" + F->DF->F->getName() + "'");
        return;
      }
      NextWatchdogCheck = IC + WatchdogStride;
      Limit = std::min(MaxInstructions, NextWatchdogCheck);
      if (std::chrono::steady_clock::now() >= Deadline) {
        fail(RunStatus::Timeout, ErrorKind::Timeout,
             "wall-clock limit (" + std::to_string(Limits.MaxMillis) +
                 " ms) exceeded in '" + F->DF->F->getName() + "'");
        return;
      }
    }
    ++IC;

    if constexpr (HasInstrObs) {
      ExecEvent E;
      E.F = F->DF->F;
      E.BB = DB->BB;
      E.InstIdx = static_cast<size_t>(IP - BlockInsts);
      E.I = IP == End ? nullptr : IP->Src;
      E.InstrCount = IC;
      ExecAction Action = ExecAction::Continue;
      for (ExecObserver *O : InstrObservers) {
        Action = O->onInstruction(E);
        if (Action != ExecAction::Continue)
          break;
      }
      if (Action != ExecAction::Continue) {
        Sync();
        applyInjectedAction(Action, *F);
        if (Result.Status != RunStatus::Ok)
          return;
        IC = Result.InstrCount; // budget injection advances the count
        continue;
      }
    }

    if (IP != End) {
      const DecodedInst &I = *IP++;
      // Under per-instruction observers, fused opcodes execute one
      // original instruction at a time so event streams stay exact.
      const DOp Op = HasInstrObs ? defusedOp(I.Op) : I.Op;
      switch (Op) {
// Switch-loop expansion of the shared handler bodies: plain case labels,
// `break` advances (the for loop re-checks the limit), the fuse gate
// bails to the loop top with IP at the intact second instruction.
#define BPFREE_OP(N) case DOp::N: {
#define BPFREE_OP2(A, B) case DOp::A: case DOp::B: {
#define BPFREE_OP_END                                                      \
  }                                                                        \
  break;
#define BPFREE_NEXT continue
#define BPFREE_FUSE_GATE                                                   \
  if (IC >= Limit) [[unlikely]]                                            \
    break;                                                                 \
  ++IC
#include "vm/InterpOps.inc"
#undef BPFREE_OP
#undef BPFREE_OP2
#undef BPFREE_OP_END
#undef BPFREE_FUSE_GATE
      case DOp::TermJump:
      case DOp::TermCondBranch:
      case DOp::TermReturn:
        // Unreachable: the switch loop detects terminators via IP == End
        // and never dispatches the pseudo-instruction at Insts[NumInsts].
        assert(false && "terminator pseudo-op dispatched as instruction");
        break;
      }
    } else {
      switch (DB->Term.Kind) {
#define BPFREE_TERM(K)                                                     \
  case TermKind::K: {                                                      \
    const DecodedTerm &T = DB->Term;
#define BPFREE_TERM_END                                                    \
  }                                                                        \
  break;
#include "vm/InterpTerm.inc"
#undef BPFREE_TERM
#undef BPFREE_TERM_END
      }
#undef BPFREE_NEXT
    }
  }
}

#if BPFREE_HAVE_THREADED
/// The computed-goto (token-threaded) dispatch loop. Each handler body
/// ends with its own copy of the dispatch sequence — limit check,
/// instruction count, indirect jump through the label table — so the
/// host branch predictor learns opcode-to-opcode transition patterns
/// per handler instead of funneling every prediction through a single
/// switch branch. Handler bodies are shared with the switch loop
/// (InterpOps.inc / InterpTerm.inc); control effects are bit-identical,
/// including budget/watchdog timing and trap points. Runs with
/// per-instruction observers always take the switch loop (they need the
/// defused dispatch), so this is only specialized on the direct
/// profile/trace configurations.
template <bool DirectProfile, bool DirectTraceSink>
void Machine::execLoopThreaded() {
  constexpr uint64_t WatchdogStride = 16384;
  const uint64_t MaxInstructions = Limits.MaxInstructions;
  const bool HasDeadline = Limits.MaxMillis > 0;
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Limits.MaxMillis);
  uint64_t NextWatchdogCheck = WatchdogStride;
  uint64_t Limit = HasDeadline ? std::min(MaxInstructions, NextWatchdogCheck)
                               : MaxInstructions;

  // No End pointer here: the terminator pseudo-instruction at
  // Insts[NumInsts] routes end-of-block through the jump table, so the
  // dispatch sequence never compares IP against a block bound.
  uint64_t IC = Result.InstrCount;
  Frame *F = &Frames.back();
  const DecodedBlock *DB = F->DB;
  const DecodedInst *BlockInsts = DB->Insts;
  const DecodedInst *IP = BlockInsts + F->InstIdx;
  uint64_t *Regs = RegStack.data() + F->RegBase;
  uint8_t *const Mem = Memory.data();
  const uint64_t MemSize = Memory.size();

  auto Sync = [&] {
    F->DB = DB;
    F->InstIdx = static_cast<uint32_t>(IP - BlockInsts);
    Result.InstrCount = IC;
  };
  auto Reload = [&] {
    F = &Frames.back();
    DB = F->DB;
    BlockInsts = DB->Insts;
    IP = BlockInsts + F->InstIdx;
    Regs = RegStack.data() + F->RegBase;
  };
  auto EnterBlock = [&](const DecodedBlock *NewDB) {
    DB = NewDB;
    BlockInsts = DB->Insts;
    IP = BlockInsts;
  };

  // One label per DOp, in exact enum order; NumDOps anchors the count so
  // a new opcode without a table entry fails to compile.
  static const void *const JumpTable[NumDOps] = {
      &&L_LoadImm, &&L_Move,
      &&L_Add, &&L_Sub, &&L_Mul, &&L_Div, &&L_Rem, &&L_And, &&L_Or,
      &&L_Xor, &&L_Shl, &&L_Shr, &&L_Slt, &&L_Seq, &&L_Sne,
      &&L_AddI, &&L_SubI, &&L_MulI, &&L_DivI, &&L_RemI, &&L_AndI,
      &&L_OrI, &&L_XorI, &&L_ShlI, &&L_ShrI, &&L_SltI, &&L_SeqI,
      &&L_SneI,
      &&L_FAdd, &&L_FSub, &&L_FMul, &&L_FDiv,
      &&L_FAddI, &&L_FSubI, &&L_FMulI, &&L_FDivI,
      &&L_FNeg, &&L_CvtIF, &&L_CvtFI,
      &&L_FCmpEq, &&L_FCmpLt, &&L_FCmpLe,
      &&L_LoadI8, &&L_LoadI64, &&L_StoreI8, &&L_StoreI64,
      &&L_Call, &&L_CallIntrinsic,
      &&L_AddLoadI64, &&L_MulIAdd, &&L_AddIMulI, &&L_LoadImmAdd,
      &&L_AddMulI, &&L_MulAdd, &&L_LoadI64Slt, &&L_AddIMul,
      &&L_SltBr, &&L_SltIBr, &&L_SeqBr, &&L_SeqIBr, &&L_SneBr,
      &&L_SneIBr,
      &&L_FCmpEqBr, &&L_FCmpLtBr, &&L_FCmpLeBr,
      &&L_TermJump, &&L_TermCondBranch, &&L_TermReturn,
  };

// Threaded-loop expansion of the shared handler bodies: goto labels with
// per-handler operand fetch, the dispatch sequence replicated inline at
// every handler end, and the fuse gate bailing to the shared cold limit
// block with IP at the intact second instruction. Terminators get labels
// of their own (the pseudo-instruction's opcode routes to them), so the
// dispatch sequence is just limit check, count, indirect jump.
#define BPFREE_NEXT                                                        \
  if (IC >= Limit) [[unlikely]]                                            \
    goto CheckLimit_;                                                      \
  ++IC;                                                                    \
  goto *JumpTable[static_cast<size_t>(IP->Op)]
#define BPFREE_OP(N)                                                       \
  L_##N : {                                                                \
    const DecodedInst &I = *IP++;
#define BPFREE_OP2(A, B)                                                   \
  L_##A : L_##B : {                                                        \
    const DecodedInst &I = *IP++;
#define BPFREE_OP_END                                                      \
  }                                                                        \
  BPFREE_NEXT;
#define BPFREE_FUSE_GATE                                                   \
  if (IC >= Limit) [[unlikely]]                                            \
    goto CheckLimit_;                                                      \
  ++IC
#define BPFREE_TERM(K)                                                     \
  L_Term##K : {                                                            \
    const DecodedTerm &T = DB->Term;
#define BPFREE_TERM_END }

  BPFREE_NEXT; // enter the loop exactly as the switch loop's first pass

#include "vm/InterpOps.inc"
#include "vm/InterpTerm.inc"

CheckLimit_:
  Sync();
  if (IC >= MaxInstructions) {
    fail(RunStatus::BudgetExceeded, ErrorKind::BudgetExceeded,
         "instruction budget (" + std::to_string(MaxInstructions) +
             ") exhausted in '" + F->DF->F->getName() + "'");
    return;
  }
  NextWatchdogCheck = IC + WatchdogStride;
  Limit = std::min(MaxInstructions, NextWatchdogCheck);
  // Only reachable with a deadline set: without one, Limit equals the
  // budget, so the bail above already returned.
  if (std::chrono::steady_clock::now() >= Deadline) {
    fail(RunStatus::Timeout, ErrorKind::Timeout,
         "wall-clock limit (" + std::to_string(Limits.MaxMillis) +
             " ms) exceeded in '" + F->DF->F->getName() + "'");
    return;
  }
  BPFREE_NEXT;

#undef BPFREE_OP
#undef BPFREE_OP2
#undef BPFREE_OP_END
#undef BPFREE_FUSE_GATE
#undef BPFREE_TERM
#undef BPFREE_TERM_END
#undef BPFREE_NEXT
}
#endif // BPFREE_HAVE_THREADED

RunResult Machine::run(const DecodedFunction *Entry) {
  const Module &M = *DM.M;
  Memory.assign(Limits.MemoryBytes, 0);
  // Map the global image just past the null page; GP reads as its base.
  const std::vector<uint8_t> &Image = M.getGlobalImage();
  if (NullPageSize + Image.size() > Memory.size()) {
    trap("global segment larger than VM memory");
    return Result;
  }
  if (!Image.empty())
    std::memcpy(Memory.data() + NullPageSize, Image.data(), Image.size());
  HeapTop = (NullPageSize + Image.size() + 7u) & ~7ull;
  Sp = Memory.size();

  for (ExecObserver *O : Observers)
    if (O->wantsInstructionEvents())
      InstrObservers.push_back(O);
  if (InstrObservers.empty() && !Observers.empty() &&
      Observers.size() <= 2) {
    // The direct configurations: every observer is an EdgeProfile or a
    // BranchTrace, at most one of each. Anything else falls back to the
    // virtual fan-out.
    EdgeProfile *EP = nullptr;
    BranchTrace *BT = nullptr;
    bool AllDirect = true;
    for (ExecObserver *O : Observers) {
      if (EdgeProfile *P = O->asEdgeProfile()) {
        AllDirect = AllDirect && !EP;
        EP = P;
      } else if (BranchTrace *T = O->asTraceSink()) {
        AllDirect = AllDirect && !BT;
        BT = T;
      } else {
        AllDirect = false;
      }
    }
    if (AllDirect) {
      if (EP) {
        DirectCounts = EP->directCounts();
        DirectEntries = EP->directEntries();
      }
      DirectTrace = BT;
    }
  }

  RegStack.reserve(4096);

  if (!pushFrame(Entry, nullptr, 0, NoSlot))
    return Result;

#if BPFREE_HAVE_THREADED
  // Per-instruction observers need the switch loop's defused dispatch;
  // everything else takes the threaded loop unless the knob says switch.
  if (InstrObservers.empty() && dispatchMode() == DispatchMode::Threaded) {
    if (DirectEntries && DirectTrace)
      execLoopThreaded<true, true>();
    else if (DirectEntries)
      execLoopThreaded<true, false>();
    else if (DirectTrace)
      execLoopThreaded<false, true>();
    else
      execLoopThreaded<false, false>();
    return Result;
  }
#endif
  if (!InstrObservers.empty())
    execLoop<true, false, false>();
  else if (DirectEntries && DirectTrace)
    execLoop<false, true, true>();
  else if (DirectEntries)
    execLoop<false, true, false>();
  else if (DirectTrace)
    execLoop<false, false, true>();
  else
    execLoop<false, false, false>();
  return Result;
}

/// Process-wide dispatch-mode knob. Threaded when the build carries the
/// computed-goto loop; the setter silently pins Switch otherwise so
/// callers need no availability checks of their own.
std::atomic<DispatchMode> GDispatchMode{
#if BPFREE_HAVE_THREADED
    DispatchMode::Threaded
#else
    DispatchMode::Switch
#endif
};

} // namespace

bool bpfree::threadedDispatchAvailable() {
  return BPFREE_HAVE_THREADED != 0;
}

void bpfree::setDispatchMode(DispatchMode Mode) {
  if (Mode == DispatchMode::Threaded && !threadedDispatchAvailable())
    Mode = DispatchMode::Switch;
  GDispatchMode.store(Mode, std::memory_order_relaxed);
}

DispatchMode bpfree::dispatchMode() {
  return GDispatchMode.load(std::memory_order_relaxed);
}

std::string TrapInfo::render() const {
  std::string S = std::string(errorKindName(Kind)) + ": " + Message;
  if (!Function.empty())
    S += " at " + Function + ":" + Block + "[" + std::to_string(InstIdx) +
         "]";
  S += " (instr #" + std::to_string(InstrCount) + ")";
  for (size_t I = 0; I < Backtrace.size(); ++I) {
    const TrapFrame &F = Backtrace[I];
    S += "\n  #" + std::to_string(I) + " " + F.Function + " " + F.Block +
         "[" + std::to_string(F.InstIdx) + "]";
  }
  return S;
}

ErrorKind RunResult::errorKind() const {
  if (Trap)
    return Trap->Kind;
  switch (Status) {
  case RunStatus::Ok:
    return ErrorKind::Unknown;
  case RunStatus::Trap:
    return ErrorKind::Trap;
  case RunStatus::BudgetExceeded:
    return ErrorKind::BudgetExceeded;
  case RunStatus::Timeout:
    return ErrorKind::Timeout;
  case RunStatus::OutputOverflow:
    return ErrorKind::OutputOverflow;
  }
  return ErrorKind::Unknown;
}

Interpreter::Interpreter(const Module &M, RunLimits Limits)
    : Interpreter(M, Limits, DecodeOptions()) {}

Interpreter::Interpreter(const Module &M, RunLimits Limits,
                         const DecodeOptions &DecOpts)
    : M(M), Limits(Limits) {
  // The decoded-instruction cache build is the one-time cost run() then
  // amortizes; tracked so manifests can attribute setup vs. execution.
  static metrics::Timer &DecodeTimer = metrics::timer("vm.decode");
  metrics::ScopedTimer Time(DecodeTimer);
  timetrace::Span DecodeSpan("vm.decode");
  DM = std::make_unique<DecodedModule>(decodeModule(M, DecOpts));
  static metrics::Counter &Builds = metrics::counter("vm.decode_builds");
  Builds.add();
}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run(const Dataset &Data,
                           const std::vector<ExecObserver *> &Observers,
                           const std::string &EntryName) {
  const DecodedFunction *Entry = DM->find(EntryName);
  if (!Entry) {
    RunResult R;
    R.Status = RunStatus::Trap;
    R.TrapMessage = "entry function '" + EntryName + "' not found";
    R.Trap = TrapInfo();
    R.Trap->Kind = ErrorKind::InvalidArgument;
    R.Trap->Message = R.TrapMessage;
    return R;
  }
  // Run-level observability only: totals are read off RunResult and the
  // attached trace sink after the run, so the dispatch loops (including
  // the specialized ones) carry zero extra per-instruction work.
  const bool Observe = metrics::enabled();
  BranchTrace *Sink = nullptr;
  uint64_t SinkEventsBefore = 0;
  if (Observe) [[unlikely]] {
    for (ExecObserver *O : Observers)
      if (BranchTrace *T = O->asTraceSink()) {
        Sink = T;
        SinkEventsBefore = T->numEvents() + T->droppedEvents();
        break;
      }
  }
  Machine Mach(*DM, Limits, Data, Observers);
  RunResult R = Mach.run(Entry);
  if (Observe) [[unlikely]] {
    static metrics::Counter &Runs = metrics::counter("vm.runs");
    static metrics::Counter &Instrs = metrics::counter("vm.instructions");
    Runs.add();
    Instrs.add(R.InstrCount);
    if (!R.ok()) {
      static metrics::Counter &Traps = metrics::counter("vm.traps");
      Traps.add();
    }
    if (Sink) {
      // Executed conditional branches, visible whenever a capture trace
      // rode along (dropped events still represent executed branches).
      static metrics::Counter &Branches = metrics::counter("vm.branches");
      Branches.add(Sink->numEvents() + Sink->droppedEvents() -
                   SinkEventsBefore);
    }
  }
  return R;
}
