//===- vm/Interpreter.cpp - IR interpreter --------------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "support/Error.h"

#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <limits>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

constexpr uint64_t NullPageSize = 8;

inline double asDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

inline uint64_t fromDouble(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

/// One activation record.
struct Frame {
  const Function *F = nullptr;
  const BasicBlock *Block = nullptr;
  size_t InstIdx = 0;          ///< next instruction to execute
  std::vector<uint64_t> Regs;  ///< virtual register file
  uint64_t SavedSp = 0;        ///< SP to restore on return
  Reg CallerDst;               ///< caller register receiving the result
  bool FpFlag = false;         ///< FP condition flag
};

/// Execution engine for a single run; holds all mutable state so that
/// Interpreter::run is reentrant.
class Machine {
public:
  Machine(const Module &M, const RunLimits &Limits, const Dataset &Data,
          const std::vector<ExecObserver *> &Observers)
      : M(M), Limits(Limits), Data(Data), Observers(Observers) {}

  RunResult run(const Function *Entry);

private:
  // Register access ---------------------------------------------------

  uint64_t readReg(const Frame &F, Reg R) const {
    if (R == ZeroReg)
      return 0;
    if (R == SpReg)
      return Sp;
    if (R == GpReg)
      return NullPageSize;
    assert(R.Id >= FirstVirtualReg && R.Id < F.Regs.size() + FirstVirtualReg);
    return F.Regs[R.Id - FirstVirtualReg];
  }

  void writeReg(Frame &F, Reg R, uint64_t V) {
    assert(R.isValid() && R.Id >= FirstVirtualReg && "write to dedicated reg");
    assert(R.Id - FirstVirtualReg < F.Regs.size());
    F.Regs[R.Id - FirstVirtualReg] = V;
  }

  // Memory access ------------------------------------------------------

  bool checkAddr(uint64_t Addr, uint64_t Size) {
    if (Addr < NullPageSize || Addr + Size > Memory.size() ||
        Addr + Size < Addr) {
      trap("memory access out of bounds at address " + std::to_string(Addr));
      return false;
    }
    return true;
  }

  bool loadMem(uint64_t Addr, MemWidth W, uint64_t &Out) {
    uint64_t Size = W == MemWidth::I8 ? 1 : 8;
    if (!checkAddr(Addr, Size))
      return false;
    if (W == MemWidth::I8) {
      // Sign-extend: MiniC chars behave like signed C chars.
      Out = static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int8_t>(Memory[Addr])));
    } else {
      uint64_t V;
      std::memcpy(&V, Memory.data() + Addr, 8);
      Out = V;
    }
    return true;
  }

  bool storeMem(uint64_t Addr, MemWidth W, uint64_t V) {
    uint64_t Size = W == MemWidth::I8 ? 1 : 8;
    if (!checkAddr(Addr, Size))
      return false;
    if (W == MemWidth::I8)
      Memory[Addr] = static_cast<uint8_t>(V);
    else
      std::memcpy(Memory.data() + Addr, &V, 8);
    return true;
  }

  // Faults ---------------------------------------------------------------

  /// Builds the structured TrapInfo from the live frame stack; called
  /// exactly once, on the first fault of the run.
  TrapInfo snapshotFault(ErrorKind Kind, const std::string &Message) const {
    TrapInfo T;
    T.Kind = Kind;
    T.Message = Message;
    T.InstrCount = Result.InstrCount;
    for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
      TrapFrame TF;
      TF.Function = It->F->getName();
      TF.Block = It->Block->getName();
      TF.BlockId = It->Block->getId();
      // InstIdx is the *next* instruction; the faulting one, when inside
      // the block, is the previous index. Terminators report size().
      TF.InstIdx = It->InstIdx;
      T.Backtrace.push_back(std::move(TF));
    }
    if (!T.Backtrace.empty()) {
      T.Function = T.Backtrace.front().Function;
      T.Block = T.Backtrace.front().Block;
      T.BlockId = T.Backtrace.front().BlockId;
      T.InstIdx = T.Backtrace.front().InstIdx;
    }
    return T;
  }

  /// Ends the run with \p Status unless it already failed (first fault
  /// wins, so injected and organic faults never overwrite each other).
  void fail(RunStatus Status, ErrorKind Kind, const std::string &Message) {
    if (Result.Status != RunStatus::Ok)
      return;
    Result.Status = Status;
    Result.TrapMessage = Message;
    Result.Trap = snapshotFault(Kind, Message);
  }

  void trap(const std::string &Message, ErrorKind Kind = ErrorKind::Trap) {
    fail(RunStatus::Trap, Kind, Message);
  }

  /// Applies a non-Continue observer action (fault injection).
  void applyInjectedAction(ExecAction Action, const Frame &F) {
    switch (Action) {
    case ExecAction::Continue:
      break;
    case ExecAction::InjectTrap:
      trap("injected trap in '" + F.F->getName() + "'",
           ErrorKind::Injected);
      break;
    case ExecAction::InjectBudgetExhaustion:
      // The budget check at the top of the main loop turns this into a
      // regular BudgetExceeded failure on the next iteration.
      Result.InstrCount = Limits.MaxInstructions;
      break;
    case ExecAction::InjectMemoryFault:
      trap("injected memory fault: access out of bounds at address " +
               std::to_string(Memory.size()),
           ErrorKind::Injected);
      break;
    case ExecAction::InjectOutputFlood:
      Result.Output.resize(Limits.MaxOutputBytes, '#');
      Result.OutputTruncated = true;
      fail(RunStatus::OutputOverflow, ErrorKind::Injected,
           "injected output flood: print budget (" +
               std::to_string(Limits.MaxOutputBytes) +
               " bytes) exhausted in '" + F.F->getName() + "'");
      break;
    }
  }

  // Helpers ----------------------------------------------------------

  void output(const std::string &S) {
    if (Result.Output.size() + S.size() <= Limits.MaxOutputBytes) {
      Result.Output += S;
      return;
    }
    Result.OutputTruncated = true;
    if (Limits.TrapOnOutputOverflow)
      fail(RunStatus::OutputOverflow, ErrorKind::OutputOverflow,
           "print budget (" + std::to_string(Limits.MaxOutputBytes) +
               " bytes) exhausted");
  }

  bool pushFrame(const Function *F, const std::vector<uint64_t> &Args,
                 Reg CallerDst);
  void popFrame(uint64_t RetValue, bool HasRetValue);
  bool execInstruction(Frame &F, const Instruction &I);
  void execTerminator(Frame &F);
  bool execIntrinsic(Frame &F, const Instruction &I);

  const Module &M;
  const RunLimits &Limits;
  const Dataset &Data;
  const std::vector<ExecObserver *> &Observers;
  /// Subset of Observers that asked for per-instruction callbacks;
  /// empty for plain profiling runs, which therefore pay nothing extra.
  std::vector<ExecObserver *> InstrObservers;

  std::vector<uint8_t> Memory;
  uint64_t Sp = 0;
  uint64_t HeapTop = 0;
  std::vector<Frame> Frames;
  RunResult Result;
};

bool Machine::pushFrame(const Function *F, const std::vector<uint64_t> &Args,
                        Reg CallerDst) {
  assert(Args.size() == F->getNumParams() && "argument count mismatch");
  if (Frames.size() >= Limits.MaxCallDepth) {
    trap("call depth limit exceeded in '" + F->getName() + "'");
    return false;
  }
  // Reserve the frame: SP moves down, 8-byte aligned.
  uint64_t FrameBytes = (F->getFrameSize() + 7u) & ~7u;
  if (Sp < HeapTop + FrameBytes) {
    trap("stack overflow entering '" + F->getName() + "'");
    return false;
  }
  Frames.emplace_back();
  Frame &Fr = Frames.back();
  Fr.F = F;
  Fr.Block = F->getEntry();
  Fr.InstIdx = 0;
  Fr.SavedSp = Sp;
  Fr.CallerDst = CallerDst;
  Fr.Regs.assign(F->getNumRegs() - FirstVirtualReg, 0);
  Sp -= FrameBytes;
  for (size_t I = 0; I < Args.size(); ++I)
    Fr.Regs[I] = Args[I];
  for (ExecObserver *O : Observers)
    O->onBlockEnter(*Fr.Block);
  return true;
}

void Machine::popFrame(uint64_t RetValue, bool HasRetValue) {
  Sp = Frames.back().SavedSp;
  Reg Dst = Frames.back().CallerDst;
  Frames.pop_back();
  if (!Frames.empty() && Dst.isValid() && HasRetValue)
    writeReg(Frames.back(), Dst, RetValue);
  if (Frames.empty()) {
    Result.ExitValue = static_cast<int64_t>(RetValue);
  }
}

bool Machine::execIntrinsic(Frame &F, const Instruction &I) {
  auto Arg = [&](size_t Idx) -> uint64_t {
    return Idx < I.Args.size() ? readReg(F, I.Args[Idx]) : 0;
  };
  uint64_t Ret = 0;
  switch (I.Intr) {
  case Intrinsic::PrintInt: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64,
                  static_cast<int64_t>(Arg(0)));
    output(Buf);
    break;
  }
  case Intrinsic::PrintChar:
    output(std::string(1, static_cast<char>(Arg(0))));
    break;
  case Intrinsic::PrintDouble: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", asDouble(Arg(0)));
    output(Buf);
    break;
  }
  case Intrinsic::PrintStr: {
    uint64_t Addr = Arg(0);
    std::string S;
    for (uint64_t K = 0; K < 1u << 20; ++K) {
      if (Addr + K < NullPageSize || Addr + K >= Memory.size()) {
        trap("print_str reads out of bounds");
        return false;
      }
      char C = static_cast<char>(Memory[Addr + K]);
      if (C == '\0')
        break;
      S += C;
    }
    output(S);
    break;
  }
  case Intrinsic::Malloc: {
    uint64_t Bytes = (Arg(0) + 7u) & ~7ull;
    if (Bytes == 0)
      Bytes = 8;
    if (HeapTop + Bytes >= Sp || HeapTop + Bytes < HeapTop) {
      trap("out of heap memory");
      return false;
    }
    Ret = HeapTop;
    HeapTop += Bytes;
    break;
  }
  case Intrinsic::Arg:
    Ret = static_cast<uint64_t>(Data.scalar(static_cast<size_t>(Arg(0))));
    break;
  case Intrinsic::InputLen:
    Ret = Data.Bytes.size();
    break;
  case Intrinsic::InputByte:
    Ret = Data.byte(static_cast<size_t>(Arg(0)));
    break;
  case Intrinsic::Trap:
    trap("explicit trap() in '" + F.F->getName() + "'");
    return false;
  }
  if (I.Dst.isValid())
    writeReg(F, I.Dst, Ret);
  return true;
}

bool Machine::execInstruction(Frame &F, const Instruction &I) {
  auto B = [&]() -> uint64_t {
    return I.BIsImm ? static_cast<uint64_t>(I.Imm) : readReg(F, I.SrcB);
  };
  switch (I.Op) {
  case Opcode::LoadImm:
    writeReg(F, I.Dst, static_cast<uint64_t>(I.Imm));
    break;
  case Opcode::Move:
    writeReg(F, I.Dst, readReg(F, I.SrcA));
    break;
  case Opcode::Add:
    writeReg(F, I.Dst, readReg(F, I.SrcA) + B());
    break;
  case Opcode::Sub:
    writeReg(F, I.Dst, readReg(F, I.SrcA) - B());
    break;
  case Opcode::Mul:
    writeReg(F, I.Dst, readReg(F, I.SrcA) * B());
    break;
  case Opcode::Div: {
    int64_t Num = static_cast<int64_t>(readReg(F, I.SrcA));
    int64_t Den = static_cast<int64_t>(B());
    if (Den == 0) {
      trap("integer division by zero in '" + F.F->getName() + "'");
      return false;
    }
    int64_t Q = (Num == std::numeric_limits<int64_t>::min() && Den == -1)
                    ? Num
                    : Num / Den;
    writeReg(F, I.Dst, static_cast<uint64_t>(Q));
    break;
  }
  case Opcode::Rem: {
    int64_t Num = static_cast<int64_t>(readReg(F, I.SrcA));
    int64_t Den = static_cast<int64_t>(B());
    if (Den == 0) {
      trap("integer remainder by zero in '" + F.F->getName() + "'");
      return false;
    }
    int64_t R = (Num == std::numeric_limits<int64_t>::min() && Den == -1)
                    ? 0
                    : Num % Den;
    writeReg(F, I.Dst, static_cast<uint64_t>(R));
    break;
  }
  case Opcode::And:
    writeReg(F, I.Dst, readReg(F, I.SrcA) & B());
    break;
  case Opcode::Or:
    writeReg(F, I.Dst, readReg(F, I.SrcA) | B());
    break;
  case Opcode::Xor:
    writeReg(F, I.Dst, readReg(F, I.SrcA) ^ B());
    break;
  case Opcode::Shl:
    writeReg(F, I.Dst, readReg(F, I.SrcA) << (B() & 63));
    break;
  case Opcode::Shr:
    writeReg(F, I.Dst,
             static_cast<uint64_t>(static_cast<int64_t>(readReg(F, I.SrcA)) >>
                                   (B() & 63)));
    break;
  case Opcode::Slt:
    writeReg(F, I.Dst,
             static_cast<int64_t>(readReg(F, I.SrcA)) <
                     static_cast<int64_t>(B())
                 ? 1
                 : 0);
    break;
  case Opcode::Seq:
    writeReg(F, I.Dst, readReg(F, I.SrcA) == B() ? 1 : 0);
    break;
  case Opcode::Sne:
    writeReg(F, I.Dst, readReg(F, I.SrcA) != B() ? 1 : 0);
    break;
  case Opcode::FAdd:
    writeReg(F, I.Dst,
             fromDouble(asDouble(readReg(F, I.SrcA)) + asDouble(B())));
    break;
  case Opcode::FSub:
    writeReg(F, I.Dst,
             fromDouble(asDouble(readReg(F, I.SrcA)) - asDouble(B())));
    break;
  case Opcode::FMul:
    writeReg(F, I.Dst,
             fromDouble(asDouble(readReg(F, I.SrcA)) * asDouble(B())));
    break;
  case Opcode::FDiv:
    // IEEE semantics: x/0 is inf/nan, no trap — matches the hardware the
    // paper measured on.
    writeReg(F, I.Dst,
             fromDouble(asDouble(readReg(F, I.SrcA)) / asDouble(B())));
    break;
  case Opcode::FNeg:
    writeReg(F, I.Dst, fromDouble(-asDouble(readReg(F, I.SrcA))));
    break;
  case Opcode::CvtIF:
    writeReg(F, I.Dst,
             fromDouble(static_cast<double>(
                 static_cast<int64_t>(readReg(F, I.SrcA)))));
    break;
  case Opcode::CvtFI: {
    double D = asDouble(readReg(F, I.SrcA));
    int64_t V;
    if (D >= 9.2233720368547758e18)
      V = std::numeric_limits<int64_t>::max();
    else if (D <= -9.2233720368547758e18 || D != D)
      V = std::numeric_limits<int64_t>::min();
    else
      V = static_cast<int64_t>(D);
    writeReg(F, I.Dst, static_cast<uint64_t>(V));
    break;
  }
  case Opcode::FCmpEq:
    F.FpFlag = asDouble(readReg(F, I.SrcA)) == asDouble(readReg(F, I.SrcB));
    break;
  case Opcode::FCmpLt:
    F.FpFlag = asDouble(readReg(F, I.SrcA)) < asDouble(readReg(F, I.SrcB));
    break;
  case Opcode::FCmpLe:
    F.FpFlag = asDouble(readReg(F, I.SrcA)) <= asDouble(readReg(F, I.SrcB));
    break;
  case Opcode::Load: {
    uint64_t Addr = readReg(F, I.SrcA) + static_cast<uint64_t>(I.Imm);
    uint64_t V;
    if (!loadMem(Addr, I.Width, V))
      return false;
    writeReg(F, I.Dst, V);
    break;
  }
  case Opcode::Store: {
    uint64_t Addr = readReg(F, I.SrcA) + static_cast<uint64_t>(I.Imm);
    if (!storeMem(Addr, I.Width, readReg(F, I.SrcB)))
      return false;
    break;
  }
  case Opcode::Call: {
    const Function *Callee = M.getFunction(I.CalleeIndex);
    std::vector<uint64_t> Args;
    Args.reserve(I.Args.size());
    for (Reg R : I.Args)
      Args.push_back(readReg(F, R));
    // pushFrame may reallocate Frames and invalidate F; the main loop
    // re-fetches the active frame before every instruction.
    return pushFrame(Callee, Args, I.Dst);
  }
  case Opcode::CallIntrinsic:
    return execIntrinsic(F, I);
  }
  return true;
}

void Machine::execTerminator(Frame &F) {
  const Terminator &T = F.Block->terminator();
  switch (T.Kind) {
  case TermKind::Jump:
    F.Block = T.Taken;
    F.InstIdx = 0;
    for (ExecObserver *O : Observers)
      O->onBlockEnter(*F.Block);
    return;
  case TermKind::CondBranch: {
    bool Taken = false;
    // Flag branches have no register operands; only read Lhs otherwise.
    int64_t L = isFlagBranch(T.BOp)
                    ? 0
                    : static_cast<int64_t>(readReg(F, T.Lhs));
    switch (T.BOp) {
    case BranchOp::BEQ:
      Taken = readReg(F, T.Lhs) == readReg(F, T.Rhs);
      break;
    case BranchOp::BNE:
      Taken = readReg(F, T.Lhs) != readReg(F, T.Rhs);
      break;
    case BranchOp::BLEZ:
      Taken = L <= 0;
      break;
    case BranchOp::BGTZ:
      Taken = L > 0;
      break;
    case BranchOp::BLTZ:
      Taken = L < 0;
      break;
    case BranchOp::BGEZ:
      Taken = L >= 0;
      break;
    case BranchOp::BC1T:
      Taken = F.FpFlag;
      break;
    case BranchOp::BC1F:
      Taken = !F.FpFlag;
      break;
    }
    const BasicBlock &BranchBlock = *F.Block;
    F.Block = Taken ? T.Taken : T.Fallthru;
    F.InstIdx = 0;
    for (ExecObserver *O : Observers)
      O->onCondBranch(BranchBlock, Taken, Result.InstrCount);
    for (ExecObserver *O : Observers)
      O->onBlockEnter(*F.Block);
    return;
  }
  case TermKind::Return: {
    uint64_t V = T.HasRetValue ? readReg(F, T.RetValue) : 0;
    popFrame(V, T.HasRetValue);
    return;
  }
  }
}

RunResult Machine::run(const Function *Entry) {
  Memory.assign(Limits.MemoryBytes, 0);
  // Map the global image just past the null page; GP reads as its base.
  const std::vector<uint8_t> &Image = M.getGlobalImage();
  if (NullPageSize + Image.size() > Memory.size()) {
    trap("global segment larger than VM memory");
    return Result;
  }
  if (!Image.empty())
    std::memcpy(Memory.data() + NullPageSize, Image.data(), Image.size());
  HeapTop = (NullPageSize + Image.size() + 7u) & ~7ull;
  Sp = Memory.size();

  for (ExecObserver *O : Observers)
    if (O->wantsInstructionEvents())
      InstrObservers.push_back(O);

  // Watchdog bookkeeping: the clock is only read every WatchdogStride
  // instructions, so deadline-free runs stay deterministic and cheap.
  constexpr uint64_t WatchdogStride = 16384;
  const bool HasDeadline = Limits.MaxMillis > 0;
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Limits.MaxMillis);
  uint64_t NextWatchdogCheck = WatchdogStride;

  if (!pushFrame(Entry, {}, Reg()))
    return Result;

  while (!Frames.empty() && Result.Status == RunStatus::Ok) {
    Frame &F = Frames.back();
    if (Result.InstrCount >= Limits.MaxInstructions) {
      fail(RunStatus::BudgetExceeded, ErrorKind::BudgetExceeded,
           "instruction budget (" + std::to_string(Limits.MaxInstructions) +
               ") exhausted in '" + F.F->getName() + "'");
      break;
    }
    if (HasDeadline && Result.InstrCount >= NextWatchdogCheck) {
      NextWatchdogCheck = Result.InstrCount + WatchdogStride;
      if (std::chrono::steady_clock::now() >= Deadline) {
        fail(RunStatus::Timeout, ErrorKind::Timeout,
             "wall-clock limit (" + std::to_string(Limits.MaxMillis) +
                 " ms) exceeded in '" + F.F->getName() + "'");
        break;
      }
    }
    ++Result.InstrCount;
    const bool AtTerminator = F.InstIdx >= F.Block->instructions().size();
    if (!InstrObservers.empty()) {
      ExecEvent E;
      E.F = F.F;
      E.BB = F.Block;
      E.InstIdx = F.InstIdx;
      E.I = AtTerminator ? nullptr : &F.Block->instructions()[F.InstIdx];
      E.InstrCount = Result.InstrCount;
      ExecAction Action = ExecAction::Continue;
      for (ExecObserver *O : InstrObservers) {
        Action = O->onInstruction(E);
        if (Action != ExecAction::Continue)
          break;
      }
      if (Action != ExecAction::Continue) {
        applyInjectedAction(Action, F);
        continue; // re-check status / budget at the top of the loop
      }
    }
    if (!AtTerminator) {
      const Instruction &I = F.Block->instructions()[F.InstIdx++];
      // Calls push a frame; all other instructions stay in F.
      if (!execInstruction(F, I))
        continue; // either trapped or entered a callee
    } else {
      execTerminator(F);
    }
  }
  return Result;
}

} // namespace

std::string TrapInfo::render() const {
  std::string S = std::string(errorKindName(Kind)) + ": " + Message;
  if (!Function.empty())
    S += " at " + Function + ":" + Block + "[" + std::to_string(InstIdx) +
         "]";
  S += " (instr #" + std::to_string(InstrCount) + ")";
  for (size_t I = 0; I < Backtrace.size(); ++I) {
    const TrapFrame &F = Backtrace[I];
    S += "\n  #" + std::to_string(I) + " " + F.Function + " " + F.Block +
         "[" + std::to_string(F.InstIdx) + "]";
  }
  return S;
}

ErrorKind RunResult::errorKind() const {
  if (Trap)
    return Trap->Kind;
  switch (Status) {
  case RunStatus::Ok:
    return ErrorKind::Unknown;
  case RunStatus::Trap:
    return ErrorKind::Trap;
  case RunStatus::BudgetExceeded:
    return ErrorKind::BudgetExceeded;
  case RunStatus::Timeout:
    return ErrorKind::Timeout;
  case RunStatus::OutputOverflow:
    return ErrorKind::OutputOverflow;
  }
  return ErrorKind::Unknown;
}

Interpreter::Interpreter(const Module &M, RunLimits Limits)
    : M(M), Limits(Limits) {}

RunResult Interpreter::run(const Dataset &Data,
                           const std::vector<ExecObserver *> &Observers,
                           const std::string &EntryName) {
  const Function *Entry = M.findFunction(EntryName);
  if (!Entry) {
    RunResult R;
    R.Status = RunStatus::Trap;
    R.TrapMessage = "entry function '" + EntryName + "' not found";
    R.Trap = TrapInfo();
    R.Trap->Kind = ErrorKind::InvalidArgument;
    R.Trap->Message = R.TrapMessage;
    return R;
  }
  Machine Mach(M, Limits, Data, Observers);
  return Mach.run(Entry);
}
